module Rdt_check = Rdt_ccp.Rdt_check
module Ccp = Rdt_ccp.Ccp
module Zigzag = Rdt_ccp.Zigzag
module Figures = Rdt_scenarios.Figures
module Protocol = Rdt_protocols.Protocol
module Script = Rdt_scenarios.Script

let test_figure1_is_rdt () =
  let f = Figures.figure1 () in
  Alcotest.(check bool) "holds" true (Rdt_check.holds f.ccp)

let test_figure1_without_m3_is_not () =
  let ccp = Figures.figure1_without_m3 () in
  Alcotest.(check bool) "violated" false (Rdt_check.holds ccp);
  (* the specific violation the paper names: s1_p0 ~~> s2_p2 untracked *)
  let violations = Rdt_check.violations ccp in
  let expected (v : Rdt_check.violation) =
    v.source = { Ccp.pid = 0; index = 1 } && v.target = { Ccp.pid = 2; index = 2 }
  in
  Alcotest.(check bool) "paper's violation reported" true
    (List.exists expected violations)

let test_figure2_is_not_rdt () =
  let f = Figures.figure2 () in
  Alcotest.(check bool) "domino pattern violates RDT" false
    (Rdt_check.holds f.ccp)

let test_violations_limit () =
  let ccp = Figures.figure1_without_m3 () in
  Alcotest.(check int) "limit respected" 1
    (List.length (Rdt_check.violations ~limit:1 ccp))

let test_empty_execution_is_rdt () =
  let t = Rdt_ccp.Trace.init_with_initial_checkpoints ~n:3 in
  Alcotest.(check bool) "trivially RDT" true (Rdt_check.holds (Ccp.of_trace t))

(* Every protocol that claims RDT must produce RD-trackable CCPs on the
   figure-2 adversarial interleaving. *)
let test_protocols_break_figure2 () =
  List.iter
    (fun p ->
      let s = Figures.figure2_with_protocol p in
      let ccp = Script.ccp s in
      Alcotest.(check bool)
        (Printf.sprintf "%s yields RDT on the domino interleaving"
           p.Protocol.id)
        true (Rdt_check.holds ccp))
    Protocol.rdt_protocols

let test_no_forced_reproduces_domino () =
  let s = Figures.figure2_with_protocol Protocol.no_forced in
  let ccp = Script.ccp s in
  Alcotest.(check bool) "no forced checkpoints" true
    (Script.forced_taken s 0 = 0 && Script.forced_taken s 1 = 0);
  Alcotest.(check bool) "not RDT" false (Rdt_check.holds ccp);
  Alcotest.(check bool) "has useless checkpoints" true
    (Zigzag.useless ccp <> [])

let test_fdas_prevents_domino () =
  let s = Figures.figure2_with_protocol Protocol.fdas in
  Alcotest.(check bool) "took at least one forced checkpoint" true
    (Script.forced_taken s 0 + Script.forced_taken s 1 > 0);
  Alcotest.(check (list string)) "no useless checkpoints" []
    (List.map
       (fun (c : Ccp.ckpt) -> Printf.sprintf "%d_%d" c.pid c.index)
       (Zigzag.useless (Script.ccp s)))

(* RDT implies no useless checkpoints (the paper's Section 2.3 argument),
   checked on protocol-driven random executions via the runner. *)
let prop_rdt_protocols_yield_rdt =
  QCheck.Test.make ~name:"protocol executions are RD-trackable" ~count:40
    QCheck.(make Gen.(int_bound 1_000))
    (fun case ->
      let t = Helpers.run_case case in
      let ccp = Rdt_core.Runner.ccp t in
      Rdt_check.holds ccp && Zigzag.useless ccp = [])

(* BCS does not guarantee RDT, but it does guarantee the absence of
   zigzag cycles — no checkpoint it takes is ever useless. *)
let prop_bcs_z_cycle_free =
  QCheck.Test.make ~name:"BCS executions are Z-cycle free" ~count:20
    QCheck.(make Gen.(int_bound 1_000))
    (fun case ->
      let cfg =
        {
          (Helpers.sim_config_of_case ~gc:Rdt_core.Sim_config.No_gc case) with
          Rdt_core.Sim_config.protocol = Protocol.bcs;
        }
      in
      let t = Rdt_core.Runner.create cfg in
      Rdt_core.Runner.run t;
      Zigzag.useless (Rdt_core.Runner.ccp t) = [])

let suite =
  [
    Alcotest.test_case "figure 1 is RDT" `Quick test_figure1_is_rdt;
    Alcotest.test_case "figure 1 without m3 is not" `Quick
      test_figure1_without_m3_is_not;
    Alcotest.test_case "figure 2 is not RDT" `Quick test_figure2_is_not_rdt;
    Alcotest.test_case "violations limit" `Quick test_violations_limit;
    Alcotest.test_case "empty execution is RDT" `Quick
      test_empty_execution_is_rdt;
    Alcotest.test_case "RDT protocols fix the domino interleaving" `Quick
      test_protocols_break_figure2;
    Alcotest.test_case "no-forced reproduces the domino effect" `Quick
      test_no_forced_reproduces_domino;
    Alcotest.test_case "FDAS prevents the domino effect" `Quick
      test_fdas_prevents_domino;
    QCheck_alcotest.to_alcotest prop_rdt_protocols_yield_rdt;
    QCheck_alcotest.to_alcotest prop_bcs_z_cycle_free;
  ]
