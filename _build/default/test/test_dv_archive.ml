module A = Rdt_storage.Dv_archive

let test_record_and_find () =
  let a = A.create ~me:2 in
  Alcotest.(check int) "owner" 2 (A.me a);
  Alcotest.(check int) "empty" (-1) (A.last_index a);
  A.record a ~index:0 ~dv:[| 0; 0 |];
  A.record a ~index:1 ~dv:[| 1; 3 |];
  Alcotest.(check int) "count" 2 (A.count a);
  (match A.find a ~index:1 with
  | Some dv -> Alcotest.(check (array int)) "stored" [| 1; 3 |] dv
  | None -> Alcotest.fail "missing");
  Alcotest.(check bool) "absent" true (A.find a ~index:2 = None);
  Alcotest.(check bool) "negative" true (A.find a ~index:(-1) = None)

let test_record_copies () =
  let a = A.create ~me:0 in
  let dv = [| 7 |] in
  A.record a ~index:0 ~dv;
  dv.(0) <- 9;
  match A.find a ~index:0 with
  | Some stored -> Alcotest.(check int) "isolated" 7 stored.(0)
  | None -> Alcotest.fail "missing"

let test_record_out_of_order () =
  let a = A.create ~me:0 in
  A.record a ~index:0 ~dv:[| 0 |];
  Alcotest.(check bool) "gap rejected" true
    (try
       A.record a ~index:2 ~dv:[| 2 |];
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "duplicate rejected" true
    (try
       A.record a ~index:0 ~dv:[| 0 |];
       false
     with Invalid_argument _ -> true)

let test_truncate () =
  let a = A.create ~me:0 in
  for i = 0 to 4 do
    A.record a ~index:i ~dv:[| i |]
  done;
  A.truncate_above a ~index:2;
  Alcotest.(check int) "count" 3 (A.count a);
  Alcotest.(check int) "last" 2 (A.last_index a);
  (* recording continues from the rewound point *)
  A.record a ~index:3 ~dv:[| 33 |];
  match A.find a ~index:3 with
  | Some dv -> Alcotest.(check int) "overwritten" 33 dv.(0)
  | None -> Alcotest.fail "missing"

let test_truncate_noop () =
  let a = A.create ~me:0 in
  A.record a ~index:0 ~dv:[| 0 |];
  A.truncate_above a ~index:5;
  Alcotest.(check int) "unchanged" 1 (A.count a)

let test_archive_tracks_store () =
  (* the middleware archive always covers 0 .. last taken, even after
     collection removed checkpoints from the store *)
  let module Script = Rdt_scenarios.Script in
  let s =
    Script.create ~n:2 ~protocol:Rdt_protocols.Protocol.fdas ~with_lgc:true
  in
  for _ = 1 to 5 do
    Script.checkpoint s 0
  done;
  let mw = Script.middleware s 0 in
  let archive = Rdt_protocols.Middleware.archive mw in
  Alcotest.(check int) "archive complete" 6 (A.count archive);
  Alcotest.(check bool) "store collected" true
    (Rdt_storage.Stable_store.count (Rdt_protocols.Middleware.store mw) < 6)

let suite =
  [
    Alcotest.test_case "record and find" `Quick test_record_and_find;
    Alcotest.test_case "record copies" `Quick test_record_copies;
    Alcotest.test_case "out-of-order rejected" `Quick test_record_out_of_order;
    Alcotest.test_case "truncate" `Quick test_truncate;
    Alcotest.test_case "truncate noop" `Quick test_truncate_noop;
    Alcotest.test_case "archive outlives collection" `Quick
      test_archive_tracks_store;
  ]
