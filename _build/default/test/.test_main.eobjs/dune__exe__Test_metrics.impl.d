test/test_metrics.ml: Alcotest List Rdt_metrics String
