test/test_causality.ml: Alcotest Array Fun List Printf QCheck QCheck_alcotest Rdt_causality String
