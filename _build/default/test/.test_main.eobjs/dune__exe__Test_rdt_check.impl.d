test/test_rdt_check.ml: Alcotest Gen Helpers List Printf QCheck QCheck_alcotest Rdt_ccp Rdt_core Rdt_protocols Rdt_scenarios
