test/test_event_queue.ml: Alcotest List Rdt_sim
