test/test_dv_archive.ml: Alcotest Array Rdt_protocols Rdt_scenarios Rdt_storage
