test/helpers.ml: Alcotest Array Format List Rdt_causality Rdt_ccp Rdt_core Rdt_gc Rdt_protocols Rdt_recovery Rdt_sim Rdt_storage Rdt_workload String
