test/test_edge_cases.ml: Alcotest Array Helpers List Printf Rdt_ccp Rdt_core Rdt_gc Rdt_protocols Rdt_recovery Rdt_scenarios Rdt_sim Rdt_storage Rdt_workload
