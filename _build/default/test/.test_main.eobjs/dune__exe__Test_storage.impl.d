test/test_storage.ml: Alcotest Array List Rdt_storage
