test/test_runner.ml: Alcotest Array Helpers List Rdt_core Rdt_metrics Rdt_protocols Rdt_sim Rdt_storage Rdt_workload
