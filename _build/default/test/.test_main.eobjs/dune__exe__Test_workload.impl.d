test/test_workload.ml: Alcotest List Rdt_sim Rdt_workload
