test/test_prng.ml: Alcotest Array Float Fun List Rdt_sim
