test/test_engine.ml: Alcotest List Rdt_sim
