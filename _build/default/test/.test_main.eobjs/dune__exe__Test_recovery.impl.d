test/test_recovery.ml: Alcotest Array Fun List Printf Rdt_ccp Rdt_gc Rdt_protocols Rdt_recovery Rdt_scenarios Rdt_storage String
