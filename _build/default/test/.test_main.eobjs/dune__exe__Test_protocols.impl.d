test/test_protocols.ml: Alcotest Array List Option Printf Rdt_ccp Rdt_protocols Rdt_scenarios Rdt_storage
