test/test_zigzag.ml: Alcotest Array Format Fun Gen Helpers List Printf QCheck QCheck_alcotest Rdt_ccp Rdt_scenarios
