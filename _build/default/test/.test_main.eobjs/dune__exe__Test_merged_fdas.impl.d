test/test_merged_fdas.ml: Alcotest Array Gen List Printf QCheck QCheck_alcotest Rdt_gc Rdt_protocols Rdt_scenarios Rdt_sim Rdt_storage
