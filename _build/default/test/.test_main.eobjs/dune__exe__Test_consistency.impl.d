test/test_consistency.ml: Alcotest Array Fun Gen Helpers Printf QCheck QCheck_alcotest Rdt_ccp Rdt_scenarios Rdt_sim
