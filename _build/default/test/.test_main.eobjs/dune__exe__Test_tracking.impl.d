test/test_tracking.ml: Alcotest Array Fun Gen Helpers List QCheck QCheck_alcotest Rdt_causality Rdt_ccp Rdt_core Rdt_gc Rdt_protocols Rdt_recovery Rdt_scenarios Rdt_sim Rdt_storage
