test/test_trace_ccp.ml: Alcotest Array Filename Fun Gen Helpers List QCheck QCheck_alcotest Rdt_causality Rdt_ccp String Sys
