test/test_rdt_lgc.ml: Alcotest Array Gen Helpers List Printf QCheck QCheck_alcotest Rdt_ccp Rdt_core Rdt_gc Rdt_protocols Rdt_recovery Rdt_scenarios Rdt_storage
