test/test_theorems.ml: Array Fun Gen Hashtbl Helpers List QCheck QCheck_alcotest Rdt_ccp Rdt_core Rdt_gc Rdt_protocols Rdt_recovery Rdt_sim
