test/test_global_gc.ml: Alcotest Array Fun Gen Helpers List Printf QCheck QCheck_alcotest Rdt_ccp Rdt_core Rdt_gc Rdt_protocols Rdt_recovery Rdt_scenarios Rdt_sim Rdt_storage
