module Stats = Rdt_metrics.Stats
module Series = Rdt_metrics.Series
module Table = Rdt_metrics.Table

let feps = Alcotest.float 1e-9

let test_stats_basic () =
  let s = Stats.of_list [ 1.0; 2.0; 3.0; 4.0 ] in
  Alcotest.check feps "mean" 2.5 (Stats.mean s);
  Alcotest.check feps "min" 1.0 (Stats.min s);
  Alcotest.check feps "max" 4.0 (Stats.max s);
  Alcotest.check feps "sum" 10.0 (Stats.sum s);
  Alcotest.(check int) "count" 4 (Stats.count s)

let test_stats_stddev () =
  let s = Stats.of_list [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] in
  (* known sample stddev ~ 2.138 *)
  Alcotest.check (Alcotest.float 1e-3) "stddev" 2.138 (Stats.stddev s)

let test_stats_empty () =
  let s = Stats.create () in
  Alcotest.check feps "mean of empty" 0.0 (Stats.mean s);
  Alcotest.check feps "stddev of empty" 0.0 (Stats.stddev s);
  Alcotest.(check int) "count" 0 (Stats.count s)

let test_stats_single () =
  let s = Stats.of_list [ 42.0 ] in
  Alcotest.check feps "mean" 42.0 (Stats.mean s);
  Alcotest.check feps "stddev single" 0.0 (Stats.stddev s)

let test_stats_welford_stability () =
  let s = Stats.create () in
  for _ = 1 to 10_000 do
    Stats.add s 1e9;
    Stats.add s (1e9 +. 2.0)
  done;
  Alcotest.check (Alcotest.float 1e-3) "mean stable" (1e9 +. 1.0) (Stats.mean s);
  Alcotest.check (Alcotest.float 1e-3) "stddev stable" 1.0 (Stats.stddev s)

let test_percentile () =
  let l = List.init 100 (fun i -> float_of_int (i + 1)) in
  Alcotest.check feps "p50" 50.0 (Stats.percentile l ~p:50.0);
  Alcotest.check feps "p99" 99.0 (Stats.percentile l ~p:99.0);
  Alcotest.check feps "p0 -> min" 1.0 (Stats.percentile l ~p:0.0);
  Alcotest.check feps "p100 -> max" 100.0 (Stats.percentile l ~p:100.0)

let test_series () =
  let s = Series.create ~name:"x" in
  Series.add s ~time:0.0 ~value:1.0;
  Series.add_int s ~time:1.0 ~value:3;
  Alcotest.(check int) "length" 2 (Series.length s);
  Alcotest.check feps "max" 3.0 (Series.max_value s);
  (match Series.last s with
  | Some p -> Alcotest.check feps "last" 3.0 p.Series.value
  | None -> Alcotest.fail "empty");
  Alcotest.check feps "mean via stats" 2.0 (Stats.mean (Series.stats s))

let test_series_point_order () =
  let s = Series.create ~name:"x" in
  List.iter (fun i -> Series.add_int s ~time:(float_of_int i) ~value:i) [ 1; 2; 3 ];
  Alcotest.(check (list int)) "in insertion order" [ 1; 2; 3 ]
    (List.map (fun p -> int_of_float p.Series.value) (Series.points s))

let test_table_render () =
  let t = Table.create ~columns:[ ("name", Table.Left); ("value", Table.Right) ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  let rendered = Table.render t in
  let lines = String.split_on_char '\n' rendered in
  Alcotest.(check int) "header + rule + 2 rows" 4 (List.length lines);
  (* all lines same width *)
  let widths = List.map String.length lines in
  Alcotest.(check bool) "aligned" true
    (List.for_all (fun w -> w = List.hd widths) widths);
  Alcotest.(check bool) "right alignment" true
    (String.length (List.nth lines 2) = String.length (List.nth lines 3))

let test_table_arity () =
  let t = Table.create ~columns:[ ("a", Table.Left) ] in
  Alcotest.(check bool) "arity mismatch rejected" true
    (try
       Table.add_row t [ "x"; "y" ];
       false
     with Invalid_argument _ -> true)

let test_table_separator () =
  let t = Table.create ~columns:[ ("a", Table.Left) ] in
  Table.add_row t [ "x" ];
  Table.add_separator t;
  Table.add_row t [ "y" ];
  Alcotest.(check int) "5 lines" 5
    (List.length (String.split_on_char '\n' (Table.render t)))

let test_fmt_helpers () =
  Alcotest.(check string) "float" "3.14" (Table.fmt_float ~decimals:2 3.14159);
  Alcotest.(check string) "ratio" "3/4 (75.0%)" (Table.fmt_ratio 3.0 4.0);
  Alcotest.(check string) "ratio by zero" "-" (Table.fmt_ratio 3.0 0.0)

let suite =
  [
    Alcotest.test_case "stats basic" `Quick test_stats_basic;
    Alcotest.test_case "stats stddev" `Quick test_stats_stddev;
    Alcotest.test_case "stats empty" `Quick test_stats_empty;
    Alcotest.test_case "stats single" `Quick test_stats_single;
    Alcotest.test_case "welford stability" `Quick test_stats_welford_stability;
    Alcotest.test_case "percentile" `Quick test_percentile;
    Alcotest.test_case "series" `Quick test_series;
    Alcotest.test_case "series order" `Quick test_series_point_order;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table arity" `Quick test_table_arity;
    Alcotest.test_case "table separator" `Quick test_table_separator;
    Alcotest.test_case "format helpers" `Quick test_fmt_helpers;
  ]
