module Engine = Rdt_sim.Engine
module Network = Rdt_sim.Network

let make ?(n = 3) ?(net = Network.default) () = Engine.create ~n ~seed:5 ~net ()

let test_delivery () =
  let e = make () in
  let got = ref [] in
  for p = 0 to 2 do
    Engine.set_receiver e p (fun ~src msg -> got := (p, src, msg) :: !got)
  done;
  Engine.send e ~src:0 ~dst:1 "hello";
  Engine.send e ~src:1 ~dst:2 "world";
  Engine.run e;
  Alcotest.(check (list (triple int int string)))
    "both delivered"
    [ (1, 0, "hello"); (2, 1, "world") ]
    (List.sort compare !got)

let test_delay_bounds () =
  let net = { Network.default with min_delay = 1.0; max_delay = 2.0 } in
  let e = make ~net () in
  let arrival = ref nan in
  Engine.set_receiver e 1 (fun ~src:_ _ -> arrival := Engine.now e);
  Engine.set_receiver e 0 (fun ~src:_ _ -> ());
  Engine.set_receiver e 2 (fun ~src:_ _ -> ());
  Engine.send e ~src:0 ~dst:1 ();
  Engine.run e;
  if !arrival < 1.0 || !arrival >= 2.0 then
    Alcotest.failf "delivery at %f outside [1,2)" !arrival

let test_loss () =
  let net = { Network.default with loss_probability = 1.0 } in
  let e = make ~net () in
  Engine.set_receiver e 1 (fun ~src:_ _ -> Alcotest.fail "must be lost");
  Engine.send e ~src:0 ~dst:1 ();
  Engine.run e;
  Alcotest.(check int) "lost counted" 1 (Engine.stats e).Engine.lost

let test_reliable_bypasses_loss () =
  let net = { Network.default with loss_probability = 1.0 } in
  let e = make ~net () in
  let got = ref 0 in
  Engine.set_receiver e 1 (fun ~src:_ _ -> incr got);
  Engine.send e ~reliable:true ~src:0 ~dst:1 ();
  Engine.run e;
  Alcotest.(check int) "delivered despite loss model" 1 !got

let test_fifo_order () =
  let net = { Network.default with fifo = true; min_delay = 0.1; max_delay = 5.0 } in
  let e = make ~net () in
  let got = ref [] in
  Engine.set_receiver e 1 (fun ~src:_ msg -> got := msg :: !got);
  for i = 1 to 20 do
    Engine.send e ~src:0 ~dst:1 i
  done;
  Engine.run e;
  Alcotest.(check (list int)) "fifo preserves send order" (List.init 20 (fun i -> i + 1))
    (List.rev !got)

let test_non_fifo_can_reorder () =
  let net = { Network.default with fifo = false; min_delay = 0.1; max_delay = 10.0 } in
  let e = Engine.create ~n:2 ~seed:11 ~net () in
  let got = ref [] in
  Engine.set_receiver e 1 (fun ~src:_ msg -> got := msg :: !got);
  for i = 1 to 30 do
    Engine.send e ~src:0 ~dst:1 i
  done;
  Engine.run e;
  Alcotest.(check bool) "some reordering happened" true
    (List.rev !got <> List.init 30 (fun i -> i + 1))

let test_down_process_drops () =
  let e = make () in
  Engine.set_receiver e 1 (fun ~src:_ _ -> Alcotest.fail "down process received");
  Engine.set_up e 1 false;
  Engine.send e ~src:0 ~dst:1 ();
  Engine.run e;
  Alcotest.(check int) "counted as dropped" 1
    (Engine.stats e).Engine.dropped_down

let test_owned_action_skipped_when_down () =
  let e = make () in
  let fired = ref false in
  ignore (Engine.schedule e ~owner:1 ~at:1.0 (fun () -> fired := true));
  Engine.set_up e 1 false;
  Engine.run e;
  Alcotest.(check bool) "skipped" false !fired

let test_unowned_action_runs () =
  let e = make () in
  let fired = ref false in
  ignore (Engine.schedule e ~at:1.0 (fun () -> fired := true));
  Engine.run e;
  Alcotest.(check bool) "ran" true !fired

let test_flush_in_flight () =
  let e = make () in
  Engine.set_receiver e 1 (fun ~src:_ _ -> Alcotest.fail "flushed message arrived");
  Engine.send e ~src:0 ~dst:1 ();
  Engine.flush_in_flight e;
  Engine.run e;
  Alcotest.(check int) "flushed counted" 1 (Engine.stats e).Engine.flushed

let test_run_until () =
  let e = make () in
  let count = ref 0 in
  ignore (Engine.schedule e ~at:1.0 (fun () -> incr count));
  ignore (Engine.schedule e ~at:10.0 (fun () -> incr count));
  Engine.run ~until:5.0 e;
  Alcotest.(check int) "only events before the limit" 1 !count;
  Alcotest.(check (float 1e-9)) "clock advanced to limit" 5.0 (Engine.now e)

let test_cancel_action () =
  let e = make () in
  let fired = ref false in
  let h = Engine.schedule e ~at:1.0 (fun () -> fired := true) in
  Engine.cancel e h;
  Engine.run e;
  Alcotest.(check bool) "cancelled" false !fired

let test_clock_monotone () =
  let e = make () in
  let times = ref [] in
  for i = 1 to 10 do
    ignore
      (Engine.schedule e ~at:(float_of_int i) (fun () ->
           times := Engine.now e :: !times))
  done;
  Engine.run e;
  let ts = List.rev !times in
  Alcotest.(check (list (float 1e-9))) "monotone" (List.sort compare ts) ts

let test_schedule_in_past_rejected () =
  let e = make () in
  ignore (Engine.schedule e ~at:5.0 (fun () -> ()));
  Engine.run e;
  Alcotest.check_raises "past time"
    (Invalid_argument "Engine.schedule: time in the past") (fun () ->
      ignore (Engine.schedule e ~at:1.0 (fun () -> ())))

let suite =
  [
    Alcotest.test_case "delivery" `Quick test_delivery;
    Alcotest.test_case "delay bounds" `Quick test_delay_bounds;
    Alcotest.test_case "loss" `Quick test_loss;
    Alcotest.test_case "reliable bypasses loss" `Quick test_reliable_bypasses_loss;
    Alcotest.test_case "fifo order" `Quick test_fifo_order;
    Alcotest.test_case "non-fifo reorders" `Quick test_non_fifo_can_reorder;
    Alcotest.test_case "down process drops" `Quick test_down_process_drops;
    Alcotest.test_case "owned action skipped when down" `Quick
      test_owned_action_skipped_when_down;
    Alcotest.test_case "unowned action runs" `Quick test_unowned_action_runs;
    Alcotest.test_case "flush in flight" `Quick test_flush_in_flight;
    Alcotest.test_case "run until" `Quick test_run_until;
    Alcotest.test_case "cancel action" `Quick test_cancel_action;
    Alcotest.test_case "clock monotone" `Quick test_clock_monotone;
    Alcotest.test_case "schedule in past rejected" `Quick
      test_schedule_in_past_rejected;
  ]
