module S = Rdt_storage.Stable_store

let store_simple t index =
  S.store t ~index ~dv:[| index; 0 |] ~now:(float_of_int index) ~size_bytes:10
    ~payload:(100 + index) ()

let test_store_and_find () =
  let t = S.create ~me:0 in
  store_simple t 0;
  store_simple t 1;
  Alcotest.(check bool) "mem 0" true (S.mem t ~index:0);
  Alcotest.(check bool) "mem 2" false (S.mem t ~index:2);
  match S.find t ~index:1 with
  | None -> Alcotest.fail "missing"
  | Some e ->
    Alcotest.(check int) "index" 1 e.S.index;
    Alcotest.(check (array int)) "dv copied" [| 1; 0 |] e.S.dv;
    Alcotest.(check int) "payload kept" 101 e.S.payload

let test_store_out_of_order_rejected () =
  let t = S.create ~me:0 in
  store_simple t 0;
  store_simple t 1;
  Alcotest.(check bool) "duplicate rejected" true
    (try
       store_simple t 1;
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "regression rejected" true
    (try
       store_simple t 0;
       false
     with Invalid_argument _ -> true)

let test_dv_isolation () =
  let t = S.create ~me:0 in
  let dv = [| 5; 5 |] in
  S.store t ~index:0 ~dv ~now:0.0 ~size_bytes:1 ();
  dv.(0) <- 99;
  match S.find t ~index:0 with
  | Some e -> Alcotest.(check int) "stored copy unaffected" 5 e.S.dv.(0)
  | None -> Alcotest.fail "missing"

let test_eliminate () =
  let t = S.create ~me:0 in
  store_simple t 0;
  store_simple t 1;
  S.eliminate t ~index:0;
  Alcotest.(check (list int)) "only 1 left" [ 1 ] (S.retained_indices t);
  Alcotest.(check bool) "eliminate missing rejected" true
    (try
       S.eliminate t ~index:0;
       false
     with Invalid_argument _ -> true)

let test_truncate_above () =
  let t = S.create ~me:0 in
  List.iter (store_simple t) [ 0; 1; 2; 3; 4 ];
  let removed = S.truncate_above t ~index:2 in
  Alcotest.(check int) "two removed" 2 removed;
  Alcotest.(check (list int)) "kept prefix" [ 0; 1; 2 ] (S.retained_indices t);
  Alcotest.(check int) "idempotent" 0 (S.truncate_above t ~index:2)

let test_byte_accounting () =
  let t = S.create ~me:0 in
  S.store t ~index:0 ~dv:[| 0 |] ~now:0.0 ~size_bytes:100 ();
  S.store t ~index:1 ~dv:[| 1 |] ~now:1.0 ~size_bytes:50 ();
  Alcotest.(check int) "bytes" 150 (S.bytes t);
  S.eliminate t ~index:0;
  Alcotest.(check int) "bytes after eliminate" 50 (S.bytes t)

let test_stats () =
  let t = S.create ~me:0 in
  List.iter (store_simple t) [ 0; 1; 2 ];
  S.eliminate t ~index:1;
  store_simple t 3;
  let stats = S.stats t in
  Alcotest.(check int) "stored total" 4 stats.S.stored_total;
  Alcotest.(check int) "eliminated total" 1 stats.S.eliminated_total;
  Alcotest.(check int) "peak count" 3 stats.S.peak_count;
  Alcotest.(check int) "current count" 3 (S.count t)

let test_last_index () =
  let t = S.create ~me:0 in
  Alcotest.(check int) "empty" (-1) (S.last_index t);
  store_simple t 0;
  store_simple t 1;
  Alcotest.(check int) "last" 1 (S.last_index t);
  S.eliminate t ~index:1;
  Alcotest.(check int) "after eliminating the top" 0 (S.last_index t)

let test_retained_order () =
  let t = S.create ~me:0 in
  List.iter (store_simple t) [ 0; 1; 2; 3 ];
  S.eliminate t ~index:1;
  Alcotest.(check (list int)) "ascending" [ 0; 2; 3 ]
    (List.map (fun e -> e.S.index) (S.retained t))

let suite =
  [
    Alcotest.test_case "store and find" `Quick test_store_and_find;
    Alcotest.test_case "out-of-order rejected" `Quick
      test_store_out_of_order_rejected;
    Alcotest.test_case "dv isolation" `Quick test_dv_isolation;
    Alcotest.test_case "eliminate" `Quick test_eliminate;
    Alcotest.test_case "truncate above" `Quick test_truncate_above;
    Alcotest.test_case "byte accounting" `Quick test_byte_accounting;
    Alcotest.test_case "stats" `Quick test_stats;
    Alcotest.test_case "last index" `Quick test_last_index;
    Alcotest.test_case "retained order" `Quick test_retained_order;
  ]
