(* End-to-end integration: full simulations across protocols, GC policies,
   network conditions and fault plans, audited against the oracle. *)

module Runner = Rdt_core.Runner
module Sim_config = Rdt_core.Sim_config
module Workload = Rdt_workload.Workload
module Protocol = Rdt_protocols.Protocol
module Stable_store = Rdt_storage.Stable_store
module Middleware = Rdt_protocols.Middleware
module Series = Rdt_metrics.Series

let run cfg =
  let t = Runner.create cfg in
  Runner.run t;
  t

let base = Helpers.sim_config_of_case 1

let test_deterministic_replay () =
  let s1 = Runner.summary (run base) in
  let s2 = Runner.summary (run base) in
  Alcotest.(check int) "same stored" s1.Runner.stored_total s2.Runner.stored_total;
  Alcotest.(check int) "same eliminated" s1.Runner.eliminated_total
    s2.Runner.eliminated_total;
  Alcotest.(check int) "same messages" s1.Runner.app_messages
    s2.Runner.app_messages

let test_seed_changes_execution () =
  let s1 = Runner.summary (run base) in
  let s2 = Runner.summary (run { base with seed = base.seed + 1 }) in
  Alcotest.(check bool) "different executions" true
    (s1.Runner.app_messages <> s2.Runner.app_messages
    || s1.Runner.stored_total <> s2.Runner.stored_total)

let test_all_protocols_run_clean () =
  List.iter
    (fun p ->
      let t = run { base with protocol = p; gc = Sim_config.Local } in
      Helpers.audit_safety t;
      Helpers.audit_bound t;
      Helpers.audit_rdt t)
    Protocol.rdt_protocols

let test_no_gc_keeps_everything () =
  let t = run { base with gc = Sim_config.No_gc } in
  let s = Runner.summary t in
  Alcotest.(check int) "nothing eliminated" 0 s.Runner.eliminated_total;
  Alcotest.(check int) "all stored retained" s.Runner.stored_total
    (Array.fold_left ( + ) 0 s.Runner.final_retained)

let test_local_gc_collects () =
  let t = run base in
  let s = Runner.summary t in
  Alcotest.(check bool) "collected a meaningful share" true
    (s.Runner.eliminated_total > s.Runner.stored_total / 2)

let test_coordinated_gc () =
  let t = run { base with gc = Sim_config.Coordinated { period = 5.0 } } in
  Helpers.audit_safety t;
  let s = Runner.summary t in
  Alcotest.(check bool) "rounds ran" true (s.Runner.gc_rounds > 0);
  Alcotest.(check bool) "control messages flowed" true
    (s.Runner.control_messages > 0);
  Alcotest.(check bool) "collected something" true
    (s.Runner.eliminated_total > 0)

let test_simple_gc () =
  let t = run { base with gc = Sim_config.Simple { period = 5.0 } } in
  Helpers.audit_safety t;
  let s = Runner.summary t in
  Alcotest.(check bool) "collected something" true
    (s.Runner.eliminated_total > 0)

let test_lazy_local_gc () =
  let t = run { base with gc = Sim_config.Local_lazy { period = 2.0 } } in
  Helpers.audit_safety t;
  (* lazy sweeps never collect anything RDT-LGC would not: the retained
     set is always a superset of the Theorem-2 optimum *)
  Helpers.audit_optimality ~exact:false t;
  let s = Runner.summary t in
  Alcotest.(check bool) "collected something" true
    (s.Runner.eliminated_total > 0);
  Alcotest.(check int) "asynchronous: no control messages" 0
    s.Runner.control_messages

let test_lazy_dominates_incremental_pointwise () =
  (* identical executions (no control traffic): the lazy variant can only
     hold more than the incremental collector at any sample *)
  let t_lazy = run { base with gc = Sim_config.Local_lazy { period = 5.0 } } in
  let t_inc = run { base with gc = Sim_config.Local } in
  List.iter2
    (fun lazy_v inc_v ->
      if lazy_v < inc_v -. 1e-9 then
        Alcotest.failf "lazy retained %.0f < incremental %.0f" lazy_v inc_v)
    (Series.values (Runner.total_retained_series t_lazy))
    (Series.values (Runner.total_retained_series t_inc))

let test_oracle_gc () =
  let t = run { base with gc = Sim_config.Oracle_periodic { period = 2.0 } } in
  Helpers.audit_safety t;
  let s = Runner.summary t in
  Alcotest.(check bool) "collected something" true
    (s.Runner.eliminated_total > 0)

let test_gc_effectiveness_ordering () =
  (* Instantaneous Theorem-1 knowledge is a pointwise lower bound on what
     any safe collector retains, and no-gc a pointwise upper bound.  A
     *periodic* oracle, by contrast, legitimately holds more than RDT-LGC
     between its rounds, so only pointwise-in-one-run comparisons are
     meaningful. *)
  let t = run { base with gc = Sim_config.Local } in
  let totals = Series.values (Runner.total_retained_series t) in
  let optimals = Series.values (Runner.optimal_retained_series t) in
  List.iter2
    (fun opt actual ->
      if opt > actual +. 1e-9 then
        Alcotest.failf "optimal %.0f above actual %.0f" opt actual)
    optimals totals;
  (* no-gc and rdt-lgc see byte-identical executions (no control traffic,
     same seed), so their sampled totals compare pointwise too *)
  let t_none = run { base with gc = Sim_config.No_gc } in
  let totals_none = Series.values (Runner.total_retained_series t_none) in
  List.iter2
    (fun with_gc without ->
      if with_gc > without +. 1e-9 then
        Alcotest.failf "rdt-lgc retains %.0f > no-gc %.0f" with_gc without)
    totals totals_none

let test_local_gc_needs_no_control_messages () =
  let t = run base in
  let s = Runner.summary t in
  Alcotest.(check int) "asynchronous: zero control messages" 0
    s.Runner.control_messages

let test_bound_under_stress () =
  let cfg =
    {
      base with
      n = 6;
      duration = 80.0;
      workload =
        {
          Workload.default with
          pattern = Workload.Uniform;
          send_mean_interval = 0.3;
          basic_ckpt_mean_interval = 2.0;
        };
    }
  in
  let t = run cfg in
  Helpers.audit_bound t;
  Helpers.audit_safety t

let test_lossy_network () =
  let cfg =
    {
      base with
      net = { Rdt_sim.Network.default with loss_probability = 0.3 };
    }
  in
  let t = run cfg in
  Helpers.audit_safety t;
  Helpers.audit_optimality ~exact:true t;
  Helpers.audit_rdt t

let test_reordering_network () =
  let cfg =
    {
      base with
      net =
        {
          Rdt_sim.Network.default with
          fifo = false;
          min_delay = 0.1;
          max_delay = 4.0;
        };
    }
  in
  let t = run cfg in
  Helpers.audit_safety t;
  Helpers.audit_rdt t

(* --- faults ----------------------------------------------------------- *)

let fault_cfg =
  {
    base with
    duration = 60.0;
    faults =
      [
        { Sim_config.crash_at = 20.0; pid = 1; repair_after = 3.0 };
        { Sim_config.crash_at = 40.0; pid = 0; repair_after = 2.0 };
      ];
  }

let test_crash_recovery_runs () =
  let t = run fault_cfg in
  let s = Runner.summary t in
  Alcotest.(check int) "two sessions" 2 s.Runner.recovery_sessions;
  Alcotest.(check bool) "rollbacks happened" true
    (s.Runner.checkpoints_rolled_back > 0)

let test_crash_recovery_consistency () =
  let t = run fault_cfg in
  (* the post-recovery trace must rebuild into a valid, RD-trackable CCP *)
  Helpers.audit_rdt t;
  Helpers.audit_safety t;
  Helpers.audit_bound t

let test_crash_recovery_causal_knowledge () =
  let t = run { fault_cfg with knowledge = `Causal } in
  Helpers.audit_rdt t;
  Helpers.audit_safety t;
  (* optimality still holds in the weaker, subset sense *)
  Helpers.audit_optimality ~exact:false t

let test_concurrent_crashes () =
  let cfg =
    {
      base with
      duration = 60.0;
      n = 4;
      faults =
        [
          { Sim_config.crash_at = 20.0; pid = 1; repair_after = 5.0 };
          { Sim_config.crash_at = 21.0; pid = 2; repair_after = 8.0 };
        ];
    }
  in
  let t = run cfg in
  Helpers.audit_rdt t;
  Helpers.audit_safety t

let test_crash_with_coordinated_gc () =
  let cfg = { fault_cfg with gc = Sim_config.Coordinated { period = 5.0 } } in
  let t = run cfg in
  Helpers.audit_safety t;
  Alcotest.(check bool) "sessions happened" true
    ((Runner.summary t).Runner.recovery_sessions > 0)

let test_coordinator_crash_during_rounds () =
  (* process 0 plays GC coordinator; crashing it must stall rounds safely
     (no round completes on partial membership, nothing unsafe happens) *)
  let cfg =
    {
      base with
      duration = 60.0;
      gc = Sim_config.Coordinated { period = 4.0 };
      faults = [ { Sim_config.crash_at = 15.0; pid = 0; repair_after = 10.0 } ];
    }
  in
  let t = run cfg in
  Helpers.audit_safety t;
  Helpers.audit_rdt t;
  Alcotest.(check bool) "rounds still completed around the outage" true
    ((Runner.summary t).Runner.gc_rounds > 0)

let test_participant_crash_during_rounds () =
  let cfg =
    {
      base with
      duration = 60.0;
      gc = Sim_config.Coordinated { period = 4.0 };
      faults = [ { Sim_config.crash_at = 15.0; pid = 2; repair_after = 10.0 } ];
    }
  in
  let t = run cfg in
  Helpers.audit_safety t;
  Helpers.audit_rdt t

let test_crash_with_lossy_network () =
  let cfg =
    {
      fault_cfg with
      net = { Rdt_sim.Network.default with loss_probability = 0.2 };
    }
  in
  let t = run cfg in
  Helpers.audit_safety t;
  Helpers.audit_rdt t;
  Helpers.audit_bound t

let test_faults_under_every_protocol () =
  List.iter
    (fun p ->
      let t = run { fault_cfg with protocol = p } in
      Helpers.audit_safety t;
      Helpers.audit_rdt t)
    Protocol.rdt_protocols

(* --- metrics ----------------------------------------------------------- *)

let test_series_recorded () =
  let t = run base in
  Alcotest.(check bool) "total series sampled" true
    (Series.length (Runner.total_retained_series t) > 5);
  Alcotest.(check bool) "optimal series sampled" true
    (Series.length (Runner.optimal_retained_series t) > 5);
  Alcotest.(check int) "per-process series" base.n
    (Array.length (Runner.retained_series t))

let test_summary_accounting () =
  let t = run base in
  let s = Runner.summary t in
  (* stored = eliminated + retained *)
  Alcotest.(check int) "conservation" s.Runner.stored_total
    (s.Runner.eliminated_total + Array.fold_left ( + ) 0 s.Runner.final_retained);
  (* checkpoint counts match store totals: basic + forced + n initials *)
  Alcotest.(check int) "checkpoint counts"
    (s.Runner.basic_checkpoints + s.Runner.forced_checkpoints + base.n)
    s.Runner.stored_total

let test_validation_rejects_bad_configs () =
  let bad cfg = try Sim_config.validate cfg; false with Invalid_argument _ -> true in
  Alcotest.(check bool) "n too small" true (bad { base with n = 1 });
  Alcotest.(check bool) "negative duration" true (bad { base with duration = -1.0 });
  Alcotest.(check bool) "overlapping faults" true
    (bad
       {
         base with
         faults =
           [
             { Sim_config.crash_at = 5.0; pid = 0; repair_after = 10.0 };
             { Sim_config.crash_at = 8.0; pid = 0; repair_after = 1.0 };
           ];
       })

let suite =
  [
    Alcotest.test_case "deterministic replay" `Quick test_deterministic_replay;
    Alcotest.test_case "seed changes execution" `Quick
      test_seed_changes_execution;
    Alcotest.test_case "all RDT protocols run clean" `Slow
      test_all_protocols_run_clean;
    Alcotest.test_case "no-gc keeps everything" `Quick test_no_gc_keeps_everything;
    Alcotest.test_case "rdt-lgc collects" `Quick test_local_gc_collects;
    Alcotest.test_case "coordinated gc" `Quick test_coordinated_gc;
    Alcotest.test_case "simple gc" `Quick test_simple_gc;
    Alcotest.test_case "lazy local gc" `Quick test_lazy_local_gc;
    Alcotest.test_case "lazy dominates incremental pointwise" `Quick
      test_lazy_dominates_incremental_pointwise;
    Alcotest.test_case "oracle gc" `Quick test_oracle_gc;
    Alcotest.test_case "gc effectiveness ordering" `Slow
      test_gc_effectiveness_ordering;
    Alcotest.test_case "rdt-lgc sends no control messages" `Quick
      test_local_gc_needs_no_control_messages;
    Alcotest.test_case "bound under stress" `Slow test_bound_under_stress;
    Alcotest.test_case "lossy network" `Quick test_lossy_network;
    Alcotest.test_case "reordering network" `Quick test_reordering_network;
    Alcotest.test_case "crash/recovery runs" `Quick test_crash_recovery_runs;
    Alcotest.test_case "crash/recovery consistency" `Quick
      test_crash_recovery_consistency;
    Alcotest.test_case "crash/recovery with causal knowledge" `Quick
      test_crash_recovery_causal_knowledge;
    Alcotest.test_case "concurrent crashes" `Quick test_concurrent_crashes;
    Alcotest.test_case "crash with coordinated gc" `Quick
      test_crash_with_coordinated_gc;
    Alcotest.test_case "coordinator crash during rounds" `Quick
      test_coordinator_crash_during_rounds;
    Alcotest.test_case "participant crash during rounds" `Quick
      test_participant_crash_during_rounds;
    Alcotest.test_case "crash with lossy network" `Quick
      test_crash_with_lossy_network;
    Alcotest.test_case "faults under every protocol" `Slow
      test_faults_under_every_protocol;
    Alcotest.test_case "series recorded" `Quick test_series_recorded;
    Alcotest.test_case "summary accounting" `Quick test_summary_accounting;
    Alcotest.test_case "config validation" `Quick
      test_validation_rejects_bad_configs;
  ]
