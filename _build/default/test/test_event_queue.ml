module Q = Rdt_sim.Event_queue

let drain q =
  let rec loop acc =
    match Q.pop q with None -> List.rev acc | Some (t, v) -> loop ((t, v) :: acc)
  in
  loop []

let test_time_order () =
  let q = Q.create () in
  ignore (Q.add q ~time:3.0 "c");
  ignore (Q.add q ~time:1.0 "a");
  ignore (Q.add q ~time:2.0 "b");
  Alcotest.(check (list (pair (float 0.0) string)))
    "sorted by time"
    [ (1.0, "a"); (2.0, "b"); (3.0, "c") ]
    (drain q)

let test_fifo_ties () =
  let q = Q.create () in
  ignore (Q.add q ~time:1.0 "first");
  ignore (Q.add q ~time:1.0 "second");
  ignore (Q.add q ~time:1.0 "third");
  Alcotest.(check (list string)) "insertion order on ties"
    [ "first"; "second"; "third" ]
    (List.map snd (drain q))

let test_cancel () =
  let q = Q.create () in
  ignore (Q.add q ~time:1.0 "keep1");
  let h = Q.add q ~time:2.0 "drop" in
  ignore (Q.add q ~time:3.0 "keep2");
  Q.cancel q h;
  Alcotest.(check (list string)) "cancelled skipped" [ "keep1"; "keep2" ]
    (List.map snd (drain q))

let test_cancel_idempotent () =
  let q = Q.create () in
  let h = Q.add q ~time:1.0 () in
  Q.cancel q h;
  Q.cancel q h;
  Alcotest.(check int) "length zero" 0 (Q.length q);
  Alcotest.(check bool) "empty" true (Q.is_empty q)

let test_length_and_empty () =
  let q = Q.create () in
  Alcotest.(check bool) "fresh empty" true (Q.is_empty q);
  ignore (Q.add q ~time:1.0 ());
  ignore (Q.add q ~time:2.0 ());
  Alcotest.(check int) "two live" 2 (Q.length q);
  ignore (Q.pop q);
  Alcotest.(check int) "one live" 1 (Q.length q)

let test_peek_skips_cancelled () =
  let q = Q.create () in
  let h = Q.add q ~time:1.0 "x" in
  ignore (Q.add q ~time:5.0 "y");
  Q.cancel q h;
  Alcotest.(check (option (float 0.0))) "peek" (Some 5.0) (Q.peek_time q)

let test_interleaved_operations () =
  let q = Q.create () in
  ignore (Q.add q ~time:2.0 2);
  ignore (Q.add q ~time:1.0 1);
  (match Q.pop q with
  | Some (_, 1) -> ()
  | _ -> Alcotest.fail "expected 1 first");
  ignore (Q.add q ~time:0.5 0);
  Alcotest.(check (option (float 0.0))) "peek after add" (Some 0.5)
    (Q.peek_time q)

let test_many_random () =
  let rng = Rdt_sim.Prng.create ~seed:99 in
  let q = Q.create () in
  let times = List.init 500 (fun _ -> Rdt_sim.Prng.float rng 100.0) in
  List.iter (fun t -> ignore (Q.add q ~time:t ())) times;
  let popped = List.map fst (drain q) in
  Alcotest.(check (list (float 1e-9))) "heap sorts" (List.sort compare times)
    popped

let suite =
  [
    Alcotest.test_case "time order" `Quick test_time_order;
    Alcotest.test_case "fifo on ties" `Quick test_fifo_ties;
    Alcotest.test_case "cancel" `Quick test_cancel;
    Alcotest.test_case "cancel idempotent" `Quick test_cancel_idempotent;
    Alcotest.test_case "length / is_empty" `Quick test_length_and_empty;
    Alcotest.test_case "peek skips cancelled" `Quick test_peek_skips_cancelled;
    Alcotest.test_case "interleaved ops" `Quick test_interleaved_operations;
    Alcotest.test_case "random stress sorts" `Quick test_many_random;
  ]
