module Ccp = Rdt_ccp.Ccp
module Trace = Rdt_ccp.Trace
module Consistency = Rdt_ccp.Consistency
module Figures = Rdt_scenarios.Figures

let ck pid index : Ccp.ckpt = { pid; index }

let global_c = Alcotest.(array int)

let test_is_consistent () =
  let f = Figures.figure1 () in
  (* the paper's examples: {v1, s1_2, s1_3} consistent (pids 0,1,2 with
     volatile of p0 at index 2); {s0_1, s1_2, s1_3} inconsistent *)
  Alcotest.(check bool) "consistent example" true
    (Consistency.is_consistent f.ccp [| 2; 1; 1 |]);
  Alcotest.(check bool) "inconsistent example" false
    (Consistency.is_consistent f.ccp [| 0; 1; 1 |])

let test_all_initial_consistent () =
  let f = Figures.figure1 () in
  Alcotest.(check bool) "all-zero consistent" true
    (Consistency.is_consistent f.ccp [| 0; 0; 0 |])

let test_count_rolled_back () =
  let f = Figures.figure1 () in
  (* volatile indices: p0=2 p1=2 p2=3; all-volatile global rolls back 0 *)
  Alcotest.(check int) "nothing rolled back" 0
    (Consistency.count_rolled_back f.ccp [| 2; 2; 3 |]);
  Alcotest.(check int) "all rolled back" 7
    (Consistency.count_rolled_back f.ccp [| 0; 0; 0 |])

let test_max_consistent_matches_brute_force_figures () =
  let check_ccp name ccp =
    let n = Ccp.n ccp in
    (* try all bounds that cap exactly one process at each stable level *)
    for pid = 0 to n - 1 do
      for cap = 0 to Ccp.last_stable ccp pid do
        let bound =
          Array.init n (fun i ->
              if i = pid then cap else Ccp.volatile_index ccp i)
        in
        let fast = Consistency.max_consistent ccp ~bound in
        let brute = Consistency.brute_force_max_consistent ccp ~bound in
        match (fast, brute) with
        | Some f, Some b ->
          Alcotest.check global_c
            (Printf.sprintf "%s pid=%d cap=%d" name pid cap)
            b f
        | _ -> Alcotest.failf "%s: missing solution" name
      done
    done
  in
  check_ccp "figure1" (Figures.figure1 ()).ccp;
  check_ccp "figure2" (Figures.figure2 ()).ccp;
  check_ccp "recovery" (Figures.recovery_ccp ())

let test_figure2_domino_line () =
  let f = Figures.figure2 () in
  (* excluding p1's volatile dominoes all the way to the initial state *)
  let bound = [| Ccp.volatile_index f.ccp 0; Ccp.last_stable f.ccp 1 |] in
  match Consistency.max_consistent f.ccp ~bound with
  | Some line -> Alcotest.check global_c "initial state" [| 0; 0 |] line
  | None -> Alcotest.fail "no line"

let test_max_consistent_containing () =
  let f = Figures.figure1 () in
  (* the maximum consistent global checkpoint containing s1_p1 *)
  match Consistency.max_consistent_containing f.ccp [ ck 1 1 ] with
  | None -> Alcotest.fail "no solution"
  | Some g ->
    Alcotest.(check int) "contains target" 1 g.(1);
    Alcotest.(check bool) "consistent" true (Consistency.is_consistent f.ccp g);
    (* maximality: no per-process increase keeps it consistent *)
    Array.iteri
      (fun i gi ->
        if i <> 1 && gi < Ccp.volatile_index f.ccp i then begin
          let g' = Array.copy g in
          g'.(i) <- gi + 1;
          Alcotest.(check bool)
            (Printf.sprintf "raising p%d breaks consistency" i)
            false
            (Consistency.is_consistent f.ccp g')
        end)
      g

let test_min_consistent_containing () =
  let f = Figures.figure1 () in
  (* minimum consistent global checkpoint containing s1_p2 (which depends
     on s0_p0 and p1's first interval) *)
  match Consistency.min_consistent_containing f.ccp [ ck 2 1 ] with
  | None -> Alcotest.fail "no solution"
  | Some g ->
    Alcotest.(check int) "contains target" 1 g.(2);
    Alcotest.(check bool) "consistent" true (Consistency.is_consistent f.ccp g);
    (* minimality *)
    Array.iteri
      (fun i gi ->
        if i <> 2 && gi > 0 then begin
          let g' = Array.copy g in
          g'.(i) <- gi - 1;
          Alcotest.(check bool)
            (Printf.sprintf "lowering p%d breaks consistency" i)
            false
            (Consistency.is_consistent f.ccp g')
        end)
      g

let test_containing_inconsistent_targets () =
  let f = Figures.figure1 () in
  (* s0_p0 -> s1_p1: no consistent global checkpoint contains both *)
  Alcotest.(check bool) "max: none" true
    (Consistency.max_consistent_containing f.ccp [ ck 0 0; ck 1 1 ] = None);
  Alcotest.(check bool) "min: none" true
    (Consistency.min_consistent_containing f.ccp [ ck 0 0; ck 1 1 ] = None)

(* Properties on random (not necessarily RDT) traces. *)

let arb_case = QCheck.(make Gen.(pair (int_bound 10_000) (int_range 2 4)))

let prop_fixpoint_equals_brute =
  QCheck.Test.make ~name:"max_consistent = brute force" ~count:40 arb_case
    (fun (seed, n) ->
      let trace = Helpers.random_trace ~seed ~n ~ops:40 in
      let ccp = Ccp.of_trace trace in
      let rng = Rdt_sim.Prng.create ~seed:(seed + 1) in
      let ok = ref true in
      for _ = 1 to 5 do
        let bound =
          Array.init n (fun i ->
              Rdt_sim.Prng.int rng (Ccp.volatile_index ccp i + 1))
        in
        let fast = Consistency.max_consistent ccp ~bound in
        let brute = Consistency.brute_force_max_consistent ccp ~bound in
        if fast <> brute then ok := false
      done;
      !ok)

let prop_max_containing_is_max =
  QCheck.Test.make ~name:"max_consistent_containing maximal and consistent"
    ~count:40 arb_case (fun (seed, n) ->
      let trace = Helpers.random_trace ~seed ~n ~ops:40 in
      let ccp = Ccp.of_trace trace in
      let rng = Rdt_sim.Prng.create ~seed:(seed + 7) in
      let pid = Rdt_sim.Prng.int rng n in
      let index = Rdt_sim.Prng.int rng (Ccp.volatile_index ccp pid + 1) in
      match Consistency.max_consistent_containing ccp [ ck pid index ] with
      | None ->
        (* then even the all-min completion must fail: the target must be
           preceded by some initial checkpoint, impossible, OR precede
           every completion; just require that the target is involved in
           some dependency with every candidate at the bound *)
        true
      | Some g ->
        g.(pid) = index
        && Consistency.is_consistent ccp g
        && Array.for_all Fun.id
             (Array.mapi
                (fun i gi ->
                  i = pid
                  || gi = Ccp.volatile_index ccp i
                  ||
                  let g' = Array.copy g in
                  g'.(i) <- gi + 1;
                  not (Consistency.is_consistent ccp g'))
                g))

let prop_min_containing_is_min =
  QCheck.Test.make ~name:"min_consistent_containing minimal and consistent"
    ~count:40 arb_case (fun (seed, n) ->
      let trace = Helpers.random_trace ~seed ~n ~ops:40 in
      let ccp = Ccp.of_trace trace in
      let rng = Rdt_sim.Prng.create ~seed:(seed + 13) in
      let pid = Rdt_sim.Prng.int rng n in
      let index = Rdt_sim.Prng.int rng (Ccp.volatile_index ccp pid + 1) in
      match Consistency.min_consistent_containing ccp [ ck pid index ] with
      | None -> true
      | Some g ->
        g.(pid) = index
        && Consistency.is_consistent ccp g
        && Array.for_all Fun.id
             (Array.mapi
                (fun i gi ->
                  i = pid || gi = 0
                  ||
                  let g' = Array.copy g in
                  g'.(i) <- gi - 1;
                  not (Consistency.is_consistent ccp g'))
                g))

let suite =
  [
    Alcotest.test_case "is_consistent on figure 1 examples" `Quick
      test_is_consistent;
    Alcotest.test_case "all-initial consistent" `Quick
      test_all_initial_consistent;
    Alcotest.test_case "count_rolled_back" `Quick test_count_rolled_back;
    Alcotest.test_case "fixpoint = brute force on figures" `Quick
      test_max_consistent_matches_brute_force_figures;
    Alcotest.test_case "figure 2 domino line" `Quick test_figure2_domino_line;
    Alcotest.test_case "max containing" `Quick test_max_consistent_containing;
    Alcotest.test_case "min containing" `Quick test_min_consistent_containing;
    Alcotest.test_case "containing inconsistent targets" `Quick
      test_containing_inconsistent_targets;
    QCheck_alcotest.to_alcotest prop_fixpoint_equals_brute;
    QCheck_alcotest.to_alcotest prop_max_containing_is_max;
    QCheck_alcotest.to_alcotest prop_min_containing_is_min;
  ]
