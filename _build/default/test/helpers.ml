(* Shared utilities for the test suite: deterministic random simulations,
   ground-truth audits against the trace-based oracle, and alcotest
   shorthands. *)

module Ccp = Rdt_ccp.Ccp
module Trace = Rdt_ccp.Trace
module Oracle = Rdt_gc.Oracle
module Global_gc = Rdt_gc.Global_gc
module Rdt_lgc = Rdt_gc.Rdt_lgc
module Middleware = Rdt_protocols.Middleware
module Stable_store = Rdt_storage.Stable_store
module Dependency_vector = Rdt_causality.Dependency_vector
module Runner = Rdt_core.Runner
module Sim_config = Rdt_core.Sim_config
module Workload = Rdt_workload.Workload

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int
let ints_c = Alcotest.(list int)

let sorted l = List.sort compare l

(* A compact deterministic simulation: derive every parameter from one
   integer so qcheck can drive whole executions from a single seed. *)
let sim_config_of_case ?(gc = Sim_config.Local) ?(faults = []) case =
  let patterns =
    [|
      Workload.Uniform;
      Workload.Ring;
      Workload.Client_server { servers = 1 };
      Workload.Pipeline;
      Workload.Broadcast;
      Workload.Bursty { burst = 3 };
    |]
  in
  let protocols = Rdt_protocols.Protocol.rdt_protocols in
  let n = 2 + (case mod 5) in
  let pattern = patterns.(case / 5 mod Array.length patterns) in
  let protocol = List.nth protocols (case / 25 mod List.length protocols) in
  let lossy = case mod 3 = 0 in
  let fifo = case mod 2 = 0 in
  (* vary communication/checkpoint rates across cases so the properties
     see sparse and dense patterns alike *)
  let send_mean = [| 0.4; 0.8; 1.6 |].(case / 7 mod 3) in
  let ckpt_mean = [| 2.0; 4.0; 8.0 |].(case / 11 mod 3) in
  {
    Sim_config.default with
    n;
    seed = case;
    duration = 40.0;
    protocol;
    gc;
    faults;
    workload =
      {
        Workload.default with
        pattern;
        send_mean_interval = send_mean;
        basic_ckpt_mean_interval = ckpt_mean;
      };
    net =
      {
        Rdt_sim.Network.default with
        loss_probability = (if lossy then 0.1 else 0.0);
        fifo;
      };
    sample_interval = 4.0;
  }

let run_case ?gc ?faults case =
  let t = Runner.create (sim_config_of_case ?gc ?faults case) in
  Runner.run t;
  t

(* Random raw traces (arbitrary interleavings, not necessarily RDT) for
   exercising the CCP analyzers themselves. *)
let random_trace ~seed ~n ~ops =
  let rng = Rdt_sim.Prng.create ~seed in
  let t = Trace.init_with_initial_checkpoints ~n in
  let pending = ref [] in
  for _ = 1 to ops do
    match Rdt_sim.Prng.int rng 4 with
    | 0 -> Trace.checkpoint t (Rdt_sim.Prng.int rng n)
    | 1 | 2 ->
      let src = Rdt_sim.Prng.int rng n in
      let dst = (src + 1 + Rdt_sim.Prng.int rng (n - 1)) mod n in
      let id = Trace.send t ~src ~dst in
      pending := (id, src, dst) :: !pending
    | _ -> begin
      match !pending with
      | [] -> ()
      | _ ->
        let arr = Array.of_list !pending in
        let pick = Rdt_sim.Prng.int rng (Array.length arr) in
        let id, src, dst = arr.(pick) in
        pending := List.filter (fun (i, _, _) -> i <> id) !pending;
        Trace.receive t ~msg_id:id ~src ~dst
    end
  done;
  t

(* --- ground-truth audits --------------------------------------------- *)

(* Safety (Theorem 4): every checkpoint the collector eliminated is
   obsolete, i.e. every non-obsolete checkpoint is still retained. *)
let audit_safety t =
  let ccp = Runner.ccp t in
  let n = Ccp.n ccp in
  for pid = 0 to n - 1 do
    let retained =
      Stable_store.retained_indices (Middleware.store (Runner.middleware t pid))
    in
    let needed = Oracle.retained ccp ~pid in
    List.iter
      (fun index ->
        if not (List.mem index retained) then
          Alcotest.failf
            "safety: p%d eliminated non-obsolete checkpoint s^%d (retained: %s)"
            pid index
            (String.concat "," (List.map string_of_int retained)))
      needed
  done

(* Optimality (Theorem 5): nothing identifiable from causal knowledge is
   still stored.  [exact] additionally demands equality (valid when no
   recovery session injected global knowledge). *)
let audit_optimality ~exact t =
  let n = (Runner.config t).Sim_config.n in
  let snaps = Array.init n (fun pid -> Rdt_recovery.Session.snapshot_of (Runner.middleware t pid)) in
  for pid = 0 to n - 1 do
    let li = snaps.(pid).Global_gc.live_dv in
    let causal_retained = Global_gc.theorem1_retained snaps ~me:pid ~li in
    let retained =
      Stable_store.retained_indices (Middleware.store (Runner.middleware t pid))
    in
    List.iter
      (fun index ->
        if not (List.mem index causal_retained) then
          Alcotest.failf
            "optimality: p%d still stores s^%d, collectable from causal \
             knowledge (would retain only: %s)"
            pid index
            (String.concat "," (List.map string_of_int causal_retained)))
      retained;
    if exact && sorted retained <> sorted causal_retained then
      Alcotest.failf
        "optimality(exact): p%d retains {%s}, causal knowledge dictates {%s}"
        pid
        (String.concat "," (List.map string_of_int retained))
        (String.concat "," (List.map string_of_int causal_retained))
  done

(* Theorem 3: the invariant of Equation 4, checked against trace ground
   truth: whenever s^last_f -> c^(gamma+1)_i and s^last_f -/-> s^gamma_i,
   UC.(f) must reference s^gamma_i. *)
let audit_invariant t =
  let ccp = Runner.ccp t in
  let n = Ccp.n ccp in
  for pid = 0 to n - 1 do
    match Runner.collector t pid with
    | None -> ()
    | Some lgc ->
      for f = 0 to n - 1 do
        let last_f = Ccp.last_stable_ckpt ccp f in
        (* the largest gamma with s^last_f -/-> s^gamma_i, if its
           successor is preceded *)
        let last_i = Ccp.last_stable ccp pid in
        let rec find gamma =
          if gamma > last_i then None
          else begin
            let c : Ccp.ckpt = { pid; index = gamma } in
            let succ : Ccp.ckpt = { pid; index = gamma + 1 } in
            if
              (not (Ccp.precedes ccp last_f c))
              && Ccp.precedes ccp last_f succ
            then Some gamma
            else find (gamma + 1)
          end
        in
        match find 0 with
        | None -> ()
        | Some gamma ->
          let got = Rdt_lgc.retained_because_of lgc f in
          if got <> Some gamma then
            Alcotest.failf
              "invariant: p%d must hold UC[%d] = s^%d, found %s" pid f gamma
              (match got with None -> "Null" | Some g -> string_of_int g)
      done
  done

(* Space bound: at most n retained per process at quiescent points, n+1 at
   peak (Section 4.5). *)
let audit_bound t =
  let n = (Runner.config t).Sim_config.n in
  for pid = 0 to n - 1 do
    let store = Middleware.store (Runner.middleware t pid) in
    let count = Stable_store.count store in
    let peak = (Stable_store.stats store).Stable_store.peak_count in
    if count > n then
      Alcotest.failf "bound: p%d retains %d > n = %d checkpoints" pid count n;
    if peak > n + 1 then
      Alcotest.failf "bound: p%d peaked at %d > n+1 = %d" pid peak (n + 1)
  done

let audit_rdt t =
  let ccp = Runner.ccp t in
  match Rdt_ccp.Rdt_check.violations ~limit:1 ccp with
  | [] -> ()
  | v :: _ ->
    Alcotest.failf "execution is not RD-trackable: %s"
      (Format.asprintf "%a" Rdt_ccp.Rdt_check.pp_violation v)
