(* Theorem-level validation: the paper's lemmas about obsolescence are
   checked as executable properties over random protocol-driven
   executions, with all quantities recomputed from trace ground truth. *)

module Ccp = Rdt_ccp.Ccp
module Oracle = Rdt_gc.Oracle
module Global_gc = Rdt_gc.Global_gc
module Recovery_line = Rdt_recovery.Recovery_line
module Session = Rdt_recovery.Session
module Runner = Rdt_core.Runner
module Sim_config = Rdt_core.Sim_config

let arb_case = QCheck.(make ~print:string_of_int Gen.(int_bound 3_000))

let single_failure_lines ccp =
  List.init (Ccp.n ccp) (fun f -> Recovery_line.lemma1 ccp ~faulty:[ f ])

(* Lemma 2: every stable checkpoint on the recovery line of a faulty set F
   is on the recovery line of some single faulty process. *)
let prop_lemma2 =
  QCheck.Test.make ~name:"Lemma 2: R_F members appear on some single-failure line"
    ~count:20 arb_case (fun case ->
      let t = Helpers.run_case ~gc:Sim_config.No_gc case in
      let ccp = Runner.ccp t in
      let n = Ccp.n ccp in
      let singles = single_failure_lines ccp in
      let rng = Rdt_sim.Prng.create ~seed:(case + 77) in
      let ok = ref true in
      for _ = 1 to 5 do
        (* a random non-empty faulty set *)
        let faulty =
          List.filter
            (fun _ -> Rdt_sim.Prng.bool rng)
            (List.init n Fun.id)
        in
        let faulty = if faulty = [] then [ Rdt_sim.Prng.int rng n ] else faulty in
        let line = Recovery_line.lemma1 ccp ~faulty in
        Array.iteri
          (fun pid index ->
            (* only stable members are covered by the lemma *)
            if index <= Ccp.last_stable ccp pid then begin
              let covered =
                List.exists (fun single -> single.(pid) = index) singles
              in
              if not covered then ok := false
            end)
          line
      done;
      !ok)

(* Lemma 3 / Definition 7 (via Lemma 2): a stable checkpoint is obsolete
   per Theorem 1 iff it is on no single-failure recovery line. *)
let prop_lemma3 =
  QCheck.Test.make
    ~name:"Lemma 3: Theorem-1 obsolete = needless (not on any recovery line)"
    ~count:20 arb_case (fun case ->
      let t = Helpers.run_case ~gc:Sim_config.No_gc case in
      let ccp = Runner.ccp t in
      let singles = single_failure_lines ccp in
      List.for_all
        (fun (c : Ccp.ckpt) ->
          let on_some_line =
            List.exists (fun line -> line.(c.pid) = c.index) singles
          in
          Oracle.is_obsolete ccp c = not on_some_line)
        (Ccp.stable_checkpoints ccp))

(* Theorem 2 is a weakening of Theorem 1: everything identified obsolete
   from causal knowledge is truly obsolete (oracle retained set is a
   subset of the causal-knowledge retained set). *)
let prop_theorem2_weakens_theorem1 =
  QCheck.Test.make
    ~name:"Theorem 2 never identifies a non-obsolete checkpoint" ~count:20
    arb_case (fun case ->
      let t = Helpers.run_case ~gc:Sim_config.No_gc case in
      let ccp = Runner.ccp t in
      let n = Ccp.n ccp in
      let snaps =
        Array.init n (fun pid -> Session.snapshot_of (Runner.middleware t pid))
      in
      List.for_all
        (fun pid ->
          let causal =
            Global_gc.theorem1_retained snaps ~me:pid
              ~li:snaps.(pid).Global_gc.live_dv
          in
          List.for_all
            (fun needed -> List.mem needed causal)
            (Oracle.retained ccp ~pid))
        (List.init n Fun.id))

(* Obsolescence is stable: a checkpoint obsolete in a prefix of the
   execution stays obsolete in every extension (Definition 6 is about the
   future; Claim 1 of the appendix). *)
let prop_obsolete_is_stable =
  QCheck.Test.make ~name:"Claim 1: obsolete checkpoints stay obsolete"
    ~count:10 arb_case (fun case ->
      let cfg = Helpers.sim_config_of_case ~gc:Sim_config.No_gc case in
      let t = Runner.create cfg in
      let obsolete_seen = Hashtbl.create 64 in
      let ok = ref true in
      Runner.set_on_sample t (fun t ->
          let ccp = Runner.ccp t in
          (* everything marked obsolete at an earlier sample must still be
             obsolete *)
          Hashtbl.iter
            (fun (pid, index) () ->
              if not (Oracle.is_obsolete ccp { Ccp.pid; index }) then
                ok := false)
            obsolete_seen;
          List.iter
            (fun (c : Ccp.ckpt) ->
              Hashtbl.replace obsolete_seen (c.pid, c.index) ())
            (Oracle.obsolete ccp));
      Runner.run t;
      !ok)

(* Stable members of a recovery line never regress as execution extends:
   causal relations between past events are fixed and later "last stable
   checkpoints" of the faulty process precede fewer checkpoints.  (The
   volatile member of a line is ephemeral — it can acquire a dependency
   and fall off — so only stable components are monotone; this is the
   monotonicity the simple coordinated baseline's safety rests on.) *)
let prop_recovery_line_monotone =
  QCheck.Test.make
    ~name:"stable recovery-line members move monotonically forward" ~count:10
    arb_case (fun case ->
      let cfg = Helpers.sim_config_of_case ~gc:Sim_config.No_gc case in
      let n = cfg.Sim_config.n in
      let t = Runner.create cfg in
      (* previous.(f).(pid) = last *stable* line component seen *)
      let previous = Array.make_matrix n n (-1) in
      let ok = ref true in
      Runner.set_on_sample t (fun t ->
          let ccp = Runner.ccp t in
          for f = 0 to n - 1 do
            let line = Recovery_line.lemma1 ccp ~faulty:[ f ] in
            Array.iteri
              (fun pid index ->
                if line.(pid) < previous.(f).(pid) then ok := false;
                if index <= Ccp.last_stable ccp pid then
                  previous.(f).(pid) <- max previous.(f).(pid) index)
              line
          done);
      Runner.run t;
      !ok)

(* Random fault plans: safety and consistency must survive arbitrary
   crash/recovery schedules, in both knowledge modes. *)
let prop_random_fault_plans =
  QCheck.Test.make ~name:"safety under random fault plans" ~count:15
    QCheck.(make ~print:string_of_int Gen.(int_bound 5_000))
    (fun case ->
      let rng = Rdt_sim.Prng.create ~seed:(case + 1234) in
      let base = Helpers.sim_config_of_case case in
      let n = base.Sim_config.n in
      let fault_count = 1 + Rdt_sim.Prng.int rng 3 in
      let faults =
        List.init fault_count (fun i ->
            {
              Sim_config.pid = Rdt_sim.Prng.int rng n;
              crash_at = 5.0 +. (10.0 *. float_of_int i) +. Rdt_sim.Prng.float rng 4.0;
              repair_after = 1.0 +. Rdt_sim.Prng.float rng 3.0;
            })
      in
      let knowledge = if case mod 2 = 0 then `Global else `Causal in
      let cfg = { base with faults; knowledge; duration = 60.0 } in
      (* the generator can produce overlapping windows for one process;
         skip those cases *)
      match Sim_config.validate cfg with
      | exception Invalid_argument _ -> true
      | () ->
        let t = Runner.create cfg in
        Runner.run t;
        Helpers.audit_safety t;
        Helpers.audit_bound t;
        Helpers.audit_rdt t;
        Helpers.audit_optimality ~exact:false t;
        true)

(* Theorem 3 at its strongest: the Equation-4 invariant after *every*
   engine event of a small simulation. *)
let prop_invariant_every_event =
  QCheck.Test.make ~name:"Equation 4 holds after every event" ~count:5
    QCheck.(make ~print:string_of_int Gen.(int_bound 1_000))
    (fun case ->
      let cfg =
        { (Helpers.sim_config_of_case case) with Sim_config.duration = 8.0 }
      in
      let t = Runner.create cfg in
      let continue = ref true in
      while !continue do
        continue := Runner.step t && Runner.now t <= 8.0;
        Helpers.audit_invariant t;
        Helpers.audit_safety t
      done;
      true)

(* Garbage collection is invisible to recovery: with identical seeds and
   fault plans, a run with RDT-LGC and a run without any collection go
   through exactly the same recovery lines and rollbacks — collection
   never touches a checkpoint any recovery line could need. *)
let prop_collection_invisible_to_recovery =
  QCheck.Test.make
    ~name:"collection never changes recovery outcomes" ~count:10
    QCheck.(make ~print:string_of_int Gen.(int_bound 3_000))
    (fun case ->
      let faults =
        [
          { Sim_config.pid = 0; crash_at = 15.0; repair_after = 3.0 };
          { Sim_config.pid = 1; crash_at = 35.0; repair_after = 2.0 };
        ]
      in
      let run gc =
        let cfg =
          { (Helpers.sim_config_of_case ~gc ~faults case) with duration = 55.0 }
        in
        let t = Runner.create cfg in
        Runner.run t;
        t
      in
      let with_gc = run Sim_config.Local in
      let without = run Sim_config.No_gc in
      let lines t =
        List.map
          (fun (r : Rdt_recovery.Session.report) ->
            (r.faulty, Array.to_list r.line, r.checkpoints_rolled_back))
          (Runner.recoveries t)
      in
      (* same sessions, same lines — and the application states come out
         identical too (the executions are indistinguishable) *)
      let states t =
        List.init (Runner.config t).Sim_config.n (fun pid ->
            Rdt_protocols.Middleware.app_state (Runner.middleware t pid))
      in
      lines with_gc = lines without && states with_gc = states without)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_lemma2;
    QCheck_alcotest.to_alcotest prop_collection_invisible_to_recovery;
    QCheck_alcotest.to_alcotest prop_random_fault_plans;
    QCheck_alcotest.to_alcotest prop_invariant_every_event;
    QCheck_alcotest.to_alcotest prop_lemma3;
    QCheck_alcotest.to_alcotest prop_theorem2_weakens_theorem1;
    QCheck_alcotest.to_alcotest prop_obsolete_is_stable;
    QCheck_alcotest.to_alcotest prop_recovery_line_monotone;
  ]
