(* Crash, recovery line, rollback — a full fault-tolerance cycle.

   A 5-process system runs under FDAS + RDT-LGC; process 2 crashes twice.
   The centralized recovery manager computes the recovery line from the
   dependency vectors stored with the checkpoints (Lemma 1), rolls the
   dependent processes back, and RDT-LGC's Algorithm 3 rebuilds its
   bookkeeping — collecting whatever became obsolete.

   Run with:  dune exec examples/recovery_demo.exe *)

module Runner = Rdt_core.Runner
module Sim_config = Rdt_core.Sim_config
module Session = Rdt_recovery.Session
module Stable_store = Rdt_storage.Stable_store
module Middleware = Rdt_protocols.Middleware

let () =
  let cfg =
    {
      Sim_config.default with
      n = 5;
      seed = 7;
      duration = 120.0;
      faults =
        [
          { Sim_config.crash_at = 40.0; pid = 2; repair_after = 5.0 };
          { Sim_config.crash_at = 80.0; pid = 2; repair_after = 5.0 };
        ];
      knowledge = `Global;
    }
  in
  let t = Runner.create cfg in
  Runner.run t;
  Format.printf "simulation finished at t=%.0f@.@." (Runner.now t);
  List.iteri
    (fun i report ->
      Format.printf "recovery session %d:@.  %a@." (i + 1) Session.pp_report
        report)
    (Runner.recoveries t);
  Format.printf "@.state after the run:@.";
  for pid = 0 to cfg.Sim_config.n - 1 do
    let store = Middleware.store (Runner.middleware t pid) in
    Format.printf "  p%d retains %a@." pid Stable_store.pp store
  done;
  let s = Runner.summary t in
  Format.printf
    "@.%d checkpoints were rolled back across %d sessions; garbage@.\
     collection kept running through it all: %d of %d checkpoints@.\
     collected, never above the n = %d bound (peak %d).@."
    s.Runner.checkpoints_rolled_back s.Runner.recovery_sessions
    s.Runner.eliminated_total s.Runner.stored_total cfg.Sim_config.n
    (Array.fold_left max 0 s.Runner.peak_retained)
