(* Quickstart: simulate an 8-process application checkpointed by FDAS with
   the paper's RDT-LGC garbage collector attached, and print what happened.

   Run with:  dune exec examples/quickstart.exe *)

module Runner = Rdt_core.Runner
module Sim_config = Rdt_core.Sim_config

let () =
  let cfg =
    {
      Sim_config.default with
      n = 8;
      seed = 2026;
      duration = 200.0;
      gc = Sim_config.Local (* RDT-LGC *);
    }
  in
  let t = Runner.create cfg in
  Runner.run t;
  let s = Runner.summary t in
  Format.printf "%a@." Runner.pp_summary s;
  Format.printf
    "@.RDT-LGC collected %d of %d checkpoints using only the dependency@.\
     vectors already piggybacked by FDAS — no control messages (%d sent),@.\
     never holding more than n = %d checkpoints per process (peak: %d).@."
    s.Runner.eliminated_total s.Runner.stored_total s.Runner.control_messages
    cfg.Sim_config.n
    (Array.fold_left max 0 s.Runner.peak_retained)
