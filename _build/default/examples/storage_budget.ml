(* Choosing a garbage collector for a storage budget.

   A client-server application (2 servers, 6 clients) runs the same
   workload under each collector; the table shows the stable-storage
   footprint and what each collector costs in coordination.  This is the
   decision the paper's introduction motivates: RDT-LGC gets most of the
   achievable collection with zero control traffic and a hard per-process
   bound.

   Run with:  dune exec examples/storage_budget.exe *)

module Runner = Rdt_core.Runner
module Sim_config = Rdt_core.Sim_config
module Workload = Rdt_workload.Workload
module Table = Rdt_metrics.Table

let () =
  let n = 8 in
  let collectors =
    [
      ("no-gc", Sim_config.No_gc);
      ("simple (period 5)", Sim_config.Simple { period = 5.0 });
      ("coordinated (period 5)", Sim_config.Coordinated { period = 5.0 });
      ("rdt-lgc", Sim_config.Local);
      ("oracle (period 2)", Sim_config.Oracle_periodic { period = 2.0 });
    ]
  in
  let table =
    Table.create
      ~columns:
        [
          ("collector", Table.Left);
          ("mean stored ckpts", Table.Right);
          ("peak stored ckpts", Table.Right);
          ("control msgs", Table.Right);
          ("per-process bound", Table.Left);
        ]
  in
  List.iter
    (fun (name, gc) ->
      let cfg =
        {
          Sim_config.default with
          n;
          seed = 99;
          duration = 150.0;
          gc;
          workload =
            {
              Workload.default with
              pattern = Workload.Client_server { servers = 2 };
              send_mean_interval = 0.6;
            };
        }
      in
      let t = Runner.create cfg in
      Runner.run t;
      let s = Runner.summary t in
      Table.add_row table
        [
          name;
          Table.fmt_float s.Runner.mean_total_retained;
          string_of_int s.Runner.peak_retained_global;
          string_of_int s.Runner.control_messages;
          (match gc with
          | Sim_config.Local -> Printf.sprintf "n = %d (guaranteed)" n
          | Sim_config.No_gc -> "unbounded"
          | Sim_config.Simple _ -> "unbounded"
          | Sim_config.Local_lazy _ | Sim_config.Coordinated _
          | Sim_config.Oracle_periodic _ ->
            "bounded between rounds");
        ])
    collectors;
  Table.print table;
  print_newline ();
  print_endline
    "rdt-lgc approaches the oracle's footprint with zero control traffic;\n\
     the coordinated baselines pay messages every round and still lag\n\
     behind, because their knowledge is a full round stale."
