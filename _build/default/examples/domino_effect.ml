(* The domino effect (paper, Figure 2) and how RDT protocols prevent it.

   Two processes ping-pong with crossing messages and autonomous
   checkpoints.  Without coordination every non-initial checkpoint is
   useless: a single failure rolls the system back to its initial state.
   The same interleaving under FDAS takes a few forced checkpoints and
   stays recoverable.

   Run with:  dune exec examples/domino_effect.exe *)

module Ccp = Rdt_ccp.Ccp
module Zigzag = Rdt_ccp.Zigzag
module Consistency = Rdt_ccp.Consistency
module Figures = Rdt_scenarios.Figures
module Script = Rdt_scenarios.Script
module Protocol = Rdt_protocols.Protocol

let describe_recovery name ccp =
  (* p1 fails: its volatile state is lost *)
  let bound = [| Ccp.volatile_index ccp 0; Ccp.last_stable ccp 1 |] in
  match Consistency.max_consistent ccp ~bound with
  | None -> Format.printf "%s: no recovery line exists!@." name
  | Some line ->
    Format.printf
      "%s: p1 fails -> recovery line (c%d_p0, c%d_p1), %d checkpoints undone@."
      name line.(0) line.(1)
      (Consistency.count_rolled_back ccp line)

let () =
  Format.printf "--- uncoordinated checkpointing ---@.";
  let f = Figures.figure2 () in
  Format.printf
    "the Figure 2 pattern ([k] = checkpoint s^k, mX>/>mX = send/receive):@.";
  Rdt_ccp.Diagram.print f.trace;
  let useless = Zigzag.useless f.ccp in
  Format.printf "useless checkpoints (in zigzag cycles): %a@."
    (Format.pp_print_list ~pp_sep:Format.pp_print_space Ccp.pp_ckpt)
    useless;
  Format.printf "e.g. [m2, m1] is a Z-path connecting c1_p0 to itself: %b@."
    (Zigzag.classify_sequence f.ccp ~from_:{ Ccp.pid = 0; index = 1 }
       ~to_:{ Ccp.pid = 0; index = 1 } [ f.m2; f.m1 ]
    = Zigzag.Non_causal_zigzag);
  describe_recovery "uncoordinated" f.ccp;
  Format.printf "@.--- the same interleaving under FDAS ---@.";
  let s = Figures.figure2_with_protocol Protocol.fdas in
  let ccp = Script.ccp s in
  Format.printf "forced checkpoints taken: p0=%d p1=%d@."
    (Script.forced_taken s 0) (Script.forced_taken s 1);
  Format.printf "useless checkpoints now: %d@."
    (List.length (Zigzag.useless ccp));
  Format.printf "RD-trackable: %b@." (Rdt_ccp.Rdt_check.holds ccp);
  describe_recovery "FDAS" ccp
