(* Causal distributed breakpoints — one of the applications that motivate
   the RDT property (paper Section 1, citing Wang '97).

   Suppose a bug manifests at checkpoint s^k of some process and you want
   to restart (or inspect) the system around that moment:

   - the MAXIMUM consistent global checkpoint containing s^k is the latest
     system-wide instant at which s^k had just been reached — the natural
     breakpoint;
   - the MINIMUM one bounds how far back a cause of the buggy state can
     reach — nothing before it can have influenced s^k.

   Under RDT both are computed directly from the dependency vectors, with
   no zigzag analysis; and because the middleware archives every
   checkpoint's vector (n words each), the computation keeps working while
   RDT-LGC aggressively collects the checkpoints themselves.

   Run with:  dune exec examples/causal_breakpoint.exe *)

module Runner = Rdt_core.Runner
module Sim_config = Rdt_core.Sim_config
module Middleware = Rdt_protocols.Middleware
module Tracking = Rdt_recovery.Tracking
module Dependency_vector = Rdt_causality.Dependency_vector

let fmt_global g =
  "("
  ^ String.concat ", "
      (Array.to_list (Array.mapi (Printf.sprintf "p%d:s%d") g))
  ^ ")"

let () =
  let n = 6 in
  let cfg =
    { Sim_config.default with n; seed = 4242; duration = 60.0 }
  in
  let t = Runner.create cfg in
  Runner.run t;
  let archives =
    Array.init n (fun pid -> Middleware.archive (Runner.middleware t pid))
  in
  let live_dvs =
    Array.init n (fun pid ->
        Dependency_vector.to_array (Middleware.dv (Runner.middleware t pid)))
  in
  (* the "buggy" checkpoint: the middle of process 3's history *)
  let target : Tracking.target =
    { pid = 3; index = Rdt_storage.Dv_archive.last_index archives.(3) / 2 }
  in
  Format.printf
    "suspect state: checkpoint s%d of p%d (of %d checkpoints it took)@.@."
    target.index target.pid
    (Rdt_storage.Dv_archive.count archives.(3));
  (match
     Tracking.max_consistent_containing_archived ~archives ~live_dvs [ target ]
   with
  | Some g -> Format.printf "breakpoint (max consistent):  %s@." (fmt_global g)
  | None -> Format.printf "no consistent global checkpoint contains it@.");
  (match
     Tracking.min_consistent_containing_archived ~archives ~live_dvs [ target ]
   with
  | Some g -> Format.printf "cause horizon (min consistent): %s@." (fmt_global g)
  | None -> ());
  let s = Runner.summary t in
  Format.printf
    "@.all of this was answered from archived dependency vectors while@.\
     RDT-LGC had already collected %d of the %d checkpoints themselves.@."
    s.Runner.eliminated_total s.Runner.stored_total
