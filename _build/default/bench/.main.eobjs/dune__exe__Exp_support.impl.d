bench/exp_support.ml: Array List Printf Rdt_core Rdt_metrics Rdt_workload String
