bench/exp_eval.ml: Array Exp_support Float Fun Hashtbl List Printf Rdt_ccp Rdt_core Rdt_gc Rdt_metrics Rdt_protocols Rdt_recovery Rdt_storage Rdt_workload
