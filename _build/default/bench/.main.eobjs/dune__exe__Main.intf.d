bench/main.mli:
