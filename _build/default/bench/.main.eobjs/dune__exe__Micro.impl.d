bench/micro.ml: Analyze Array Bechamel Benchmark Exp_support Hashtbl List Measure Printf Rdt_ccp Rdt_gc Rdt_metrics Rdt_protocols Rdt_recovery Rdt_scenarios Rdt_storage Staged Test Time Toolkit
