bench/main.ml: Array Exp_eval Exp_figures List Micro Printf Sys
