bench/exp_figures.ml: Array Exp_support Format Fun List Printf Rdt_ccp Rdt_gc Rdt_metrics Rdt_protocols Rdt_recovery Rdt_scenarios Rdt_storage String
