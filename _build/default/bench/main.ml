(* Benchmark harness: regenerates every figure of the paper (F1-F5) and
   runs the practical evaluation it proposes as future work (E1-E3, E5,
   E6), plus Bechamel micro-benchmarks for the complexity claims (E4).

   Usage:
     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- figures # only F1-F5
     dune exec bench/main.exe -- eval    # only E1-E3, E5, E6
     dune exec bench/main.exe -- micro   # only the Bechamel benches *)

let () =
  let what = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  Printf.printf
    "RDT-LGC benchmark harness — reproduction of Schmidt, Garcia, Pedone &\n\
     Buzato, \"Optimal Asynchronous Garbage Collection for RDT\n\
     Checkpointing Protocols\" (ICDCS 2005)\n";
  let ran_figures =
    if what = "all" || what = "figures" then Some (Exp_figures.all ()) else None
  in
  let ran_eval =
    if what = "all" || what = "eval" then Some (Exp_eval.all ()) else None
  in
  let ran_micro =
    if what = "all" || what = "micro" then Some (Micro.all ()) else None
  in
  let verdict label = function
    | None -> ()
    | Some true -> Printf.printf "%s: all checks passed\n" label
    | Some false -> Printf.printf "%s: SOME CHECKS FAILED\n" label
  in
  print_newline ();
  verdict "figure experiments (F1-F5)" ran_figures;
  verdict "evaluation experiments (E1-E3, E5-E8)" ran_eval;
  verdict "micro-benchmarks (E4)" ran_micro;
  let failed =
    List.exists (function Some false -> true | _ -> false)
      [ ran_figures; ran_eval; ran_micro ]
  in
  if failed then exit 1
