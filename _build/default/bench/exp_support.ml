(* Shared helpers for the experiment harness. *)

module Table = Rdt_metrics.Table
module Runner = Rdt_core.Runner
module Sim_config = Rdt_core.Sim_config
module Workload = Rdt_workload.Workload

let section title description =
  Printf.printf "\n=== %s ===\n%s\n\n" title description

let subsection title = Printf.printf "\n--- %s ---\n" title

let check label ok =
  Printf.printf "[%s] %s\n" (if ok then "PASS" else "FAIL") label;
  ok

let run_sim cfg =
  let t = Runner.create cfg in
  Runner.run t;
  t

let fmt_ints l = "{" ^ String.concat "," (List.map string_of_int l) ^ "}"

let fmt_int_array a = fmt_ints (Array.to_list a)

let fmt_uc uc =
  "("
  ^ String.concat ","
      (Array.to_list
         (Array.map (function None -> "*" | Some i -> string_of_int i) uc))
  ^ ")"

let base_workload pattern =
  {
    Workload.pattern;
    send_mean_interval = 0.8;
    basic_ckpt_mean_interval = 4.0;
    reply_probability = 0.3;
  }

let base_config ~n ~seed ~gc ~pattern ~duration =
  {
    Sim_config.default with
    n;
    seed;
    duration;
    gc;
    workload = base_workload pattern;
    sample_interval = 2.0;
  }
