(** Time series of sampled values (e.g. retained checkpoints over time). *)

type point = { time : float; value : float }

type t

val create : name:string -> t
val name : t -> string
val add : t -> time:float -> value:float -> unit
val add_int : t -> time:float -> value:int -> unit
val points : t -> point list
val length : t -> int
val last : t -> point option
val values : t -> float list
val stats : t -> Stats.t

val max_value : t -> float
(** [neg_infinity] when empty. *)

val pp : Format.formatter -> t -> unit
(** One line per point: "t=... v=...". *)
