type point = { time : float; value : float }

type t = { name : string; mutable rev_points : point list; mutable len : int }

let create ~name = { name; rev_points = []; len = 0 }
let name t = t.name

let add t ~time ~value =
  t.rev_points <- { time; value } :: t.rev_points;
  t.len <- t.len + 1

let add_int t ~time ~value = add t ~time ~value:(float_of_int value)

let points t = List.rev t.rev_points
let length t = t.len
let last t = match t.rev_points with [] -> None | p :: _ -> Some p
let values t = List.rev_map (fun p -> p.value) t.rev_points
let stats t = Stats.of_list (values t)

let max_value t =
  List.fold_left (fun acc p -> Float.max acc p.value) neg_infinity t.rev_points

let pp ppf t =
  Format.fprintf ppf "@[<v>%s:" t.name;
  List.iter
    (fun p -> Format.fprintf ppf "@,  t=%-8.2f v=%g" p.time p.value)
    (points t);
  Format.fprintf ppf "@]"
