(** ASCII table rendering for the benchmark harness and CLI reports. *)

type align = Left | Right

type t

val create : columns:(string * align) list -> t
(** Column headers with their alignment. *)

val add_row : t -> string list -> unit
(** @raise Invalid_argument on arity mismatch with the columns. *)

val add_rows : t -> string list list -> unit

val add_separator : t -> unit
(** Horizontal rule between row groups. *)

val render : t -> string
(** Rendered table with a header rule, e.g.:
    {v
    workload   | n  | retained
    -----------+----+---------
    uniform    |  8 |     3.20
    v} *)

val print : t -> unit
(** [render] to stdout, followed by a newline. *)

(* Formatting helpers used by every experiment. *)

val fmt_float : ?decimals:int -> float -> string
val fmt_ratio : float -> float -> string
(** "a/b (xx.x%)"; "-" when [b] is zero. *)
