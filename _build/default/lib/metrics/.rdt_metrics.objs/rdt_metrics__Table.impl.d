lib/metrics/table.ml: List Printf String
