lib/metrics/table.mli:
