lib/metrics/series.ml: Float Format List Stats
