lib/metrics/series.mli: Format Stats
