(** Streaming summary statistics (Welford) and simple aggregates. *)

type t

val create : unit -> t
val add : t -> float -> unit
val add_int : t -> int -> unit

val count : t -> int
val mean : t -> float
(** 0 on an empty accumulator. *)

val stddev : t -> float
(** Sample standard deviation; 0 with fewer than two observations. *)

val min : t -> float
val max : t -> float
(** [nan] on an empty accumulator. *)

val sum : t -> float

val of_list : float list -> t

val percentile : float list -> p:float -> float
(** Nearest-rank percentile of a non-empty list, [p] in [\[0, 100\]]. *)

val pp : Format.formatter -> t -> unit
(** "mean ± stddev [min, max] (count)". *)
