(** Communication-induced checkpointing protocols.

    A protocol decides, on each message receipt, whether a *forced*
    checkpoint must be taken before the message is processed, based only on
    local state and the piggybacked control information.  The protocols in
    this library:

    - {!fdas} — Fixed-Dependency-After-Send (Wang '97).  Once a process has
      sent a message in the current interval, its dependency vector must
      stay fixed: a forced checkpoint is taken before any receive that
      would bring a new dependency.  Ensures RDT.
    - {!fdi} — Fixed-Dependency-Interval (Wang '97).  The dependency vector
      must stay fixed over the whole interval once any event occurred in
      it; forces at least as often as FDAS.  Ensures RDT.
    - {!bcs} — the index-based protocol of Briatico, Ciuffoletti &
      Simoncini: processes maintain a logical checkpoint index; receiving a
      message with a higher index forces a checkpoint first.  Guarantees
      the absence of zigzag cycles (hence no useless checkpoints and no
      domino effect) but *not* full RDT — a message that does not raise
      the index can still create an untracked Z-path.  Included as the
      classic Z-cycle-free baseline; do not pair it with RDT-LGC.
    - {!cbr} — checkpoint-before-receive: a forced checkpoint before every
      receipt carrying any new dependency.  The brute-force upper baseline;
      trivially RDT.
    - {!cas} — checkpoint-after-send (Wang '97): a forced checkpoint right
      after every send, making the send the last event of its interval.
      Strictly Z-path free, hence RDT.
    - {!casbr} — checkpoint-after-send-before-receive (Wang '97): a forced
      checkpoint between every send and the next receive (taken lazily,
      before the receive).  Strictly Z-path free, hence RDT.
    - {!no_forced} — never forces.  *Not* an RDT protocol; kept to
      reproduce the domino effect of the paper's Figure 2.

    Instances are records of closures over per-process state, so different
    protocols can be selected per run without functor plumbing. *)

type instance = {
  name : string;
  need_forced : local_dv:int array -> incoming:Control.t -> bool;
      (** must a forced checkpoint be taken before processing this
          message? Consulted before the dependency vector is merged. *)
  force_after_send : bool;
      (** take a forced checkpoint immediately after every send (the
          checkpoint-after-send family) *)
  note_send : unit -> unit;  (** an application message is about to leave *)
  note_receive : incoming:Control.t -> unit;
      (** a message was processed (after merge, after any forced
          checkpoint) *)
  note_checkpoint : unit -> unit;
      (** a checkpoint (basic or forced) was just stored *)
  control_index : unit -> int;
      (** protocol-specific scalar to piggyback (BCS index; 0 elsewhere) *)
}

type t = {
  id : string;  (** short identifier used by the CLI and reports *)
  rdt : bool;  (** does the protocol guarantee RDT? *)
  make : n:int -> me:int -> instance;
}

val fdas : t
val fdi : t
val bcs : t
val cbr : t
val cas : t
val casbr : t
val no_forced : t

val all : t list
(** Every protocol above. *)

val rdt_protocols : t list
(** Only the protocols that guarantee RDT. *)

val by_id : string -> t option
