lib/protocols/protocol.ml: Control List Rdt_causality
