lib/protocols/middleware.ml: Array Control List Printf Protocol Rdt_causality Rdt_ccp Rdt_storage
