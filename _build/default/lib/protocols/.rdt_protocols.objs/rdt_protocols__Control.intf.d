lib/protocols/control.mli: Format
