lib/protocols/control.ml: Array Format
