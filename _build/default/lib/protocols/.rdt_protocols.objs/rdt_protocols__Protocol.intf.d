lib/protocols/protocol.mli: Control
