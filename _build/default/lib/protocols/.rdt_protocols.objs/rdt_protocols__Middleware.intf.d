lib/protocols/middleware.mli: Control Protocol Rdt_causality Rdt_ccp Rdt_storage
