lib/workload/workload.mli: Rdt_sim
