lib/workload/workload.ml: Fun List Printf Rdt_sim String
