(** Rollback-Dependency Trackability checker (paper Definition 4).

    A CCP is RD-trackable iff for any two checkpoints [c1], [c2]:
    [c1 ~~> c2] (zigzag path) implies [c1 -> c2] (causal precedence).
    Equivalently, every Z-path is doubled by a C-path and no checkpoint is
    useless.

    The checker is exhaustive — one zigzag BFS per source checkpoint — and
    intended for validating executions produced by the protocols (property
    tests run it on every randomly generated run). *)

type violation = {
  source : Ccp.ckpt;
  target : Ccp.ckpt;
}
(** A pair with a zigzag path but no causal precedence. *)

val violations : ?limit:int -> Ccp.t -> violation list
(** All (or the first [limit]) RDT violations of the CCP. *)

val holds : Ccp.t -> bool
(** [holds ccp] iff the CCP satisfies RDT. *)

val pp_violation : Format.formatter -> violation -> unit
