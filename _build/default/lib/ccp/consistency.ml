type global = int array

let check_member ccp g i =
  let c : Ccp.ckpt = { pid = i; index = g.(i) } in
  if not (Ccp.mem ccp c) then
    invalid_arg "Consistency: index is not a checkpoint of the CCP";
  c

let is_consistent ccp g =
  let n = Ccp.n ccp in
  if Array.length g <> n then invalid_arg "Consistency.is_consistent: arity";
  let members = Array.init n (check_member ccp g) in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j && Ccp.precedes ccp members.(i) members.(j) then ok := false
    done
  done;
  !ok

let count_rolled_back ccp g =
  let total = ref 0 in
  Array.iteri
    (fun i gi -> total := !total + (Ccp.volatile_index ccp i - gi))
    g;
  !total

(* Rollback propagation: whenever member i causally precedes member j,
   j must move to an earlier checkpoint.  Lowering only removes incoming
   dependencies of j, and the set of consistent global checkpoints below a
   bound is a lattice, so the fixpoint is its maximum. *)
let max_consistent_fixpoint ccp ~candidate ~fixed =
  let n = Ccp.n ccp in
  let exception No_solution in
  let changed = ref true in
  try
    while !changed do
      changed := false;
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if i <> j then begin
            let ci : Ccp.ckpt = { pid = i; index = candidate.(i) } in
            let cj : Ccp.ckpt = { pid = j; index = candidate.(j) } in
            if Ccp.precedes ccp ci cj then begin
              if fixed.(j) then raise No_solution
              else begin
                candidate.(j) <- candidate.(j) - 1;
                if candidate.(j) < 0 then raise No_solution;
                changed := true
              end
            end
          end
        done
      done
    done;
    Some candidate
  with No_solution -> None

let max_consistent ccp ~bound =
  let n = Ccp.n ccp in
  if Array.length bound <> n then invalid_arg "Consistency.max_consistent";
  let candidate =
    Array.init n (fun i -> min bound.(i) (Ccp.volatile_index ccp i))
  in
  if Array.exists (fun b -> b < 0) candidate then None
  else max_consistent_fixpoint ccp ~candidate ~fixed:(Array.make n false)

let max_consistent_containing ccp targets =
  let n = Ccp.n ccp in
  let candidate = Array.init n (Ccp.volatile_index ccp) in
  let fixed = Array.make n false in
  let set_target (c : Ccp.ckpt) =
    if not (Ccp.mem ccp c) then
      invalid_arg "Consistency.max_consistent_containing: bad checkpoint";
    if fixed.(c.pid) && candidate.(c.pid) <> c.index then
      invalid_arg
        "Consistency.max_consistent_containing: two targets on one process";
    candidate.(c.pid) <- c.index;
    fixed.(c.pid) <- true
  in
  List.iter set_target targets;
  max_consistent_fixpoint ccp ~candidate ~fixed

(* Dual fixpoint: members start at the initial checkpoints and are raised
   past any dependency pointing into the target set or into other raised
   members.  Raising only removes outgoing dependencies, so the result is
   the lattice minimum. *)
let min_consistent_containing ccp targets =
  let n = Ccp.n ccp in
  let candidate = Array.make n 0 in
  let fixed = Array.make n false in
  let set_target (c : Ccp.ckpt) =
    if not (Ccp.mem ccp c) then
      invalid_arg "Consistency.min_consistent_containing: bad checkpoint";
    if fixed.(c.pid) && candidate.(c.pid) <> c.index then
      invalid_arg
        "Consistency.min_consistent_containing: two targets on one process";
    candidate.(c.pid) <- c.index;
    fixed.(c.pid) <- true
  in
  List.iter set_target targets;
  let exception No_solution in
  let changed = ref true in
  try
    while !changed do
      changed := false;
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if i <> j then begin
            let ci : Ccp.ckpt = { pid = i; index = candidate.(i) } in
            let cj : Ccp.ckpt = { pid = j; index = candidate.(j) } in
            if Ccp.precedes ccp ci cj then begin
              if fixed.(i) then
                (* A fixed member precedes candidate j.  Incoming
                   dependencies only grow with the index, so every index
                   >= candidate.(j) is also preceded; since the minimum
                   solution dominates the candidate pointwise, no solution
                   exists. *)
                raise No_solution
              else begin
                (* candidate i precedes someone: raise i past the
                   dependency *)
                candidate.(i) <- candidate.(i) + 1;
                if candidate.(i) > Ccp.volatile_index ccp i then
                  raise No_solution;
                changed := true
              end
            end
          end
        done
      done
    done;
    Some candidate
  with No_solution -> None

let brute_force_max_consistent ccp ~bound =
  let n = Ccp.n ccp in
  let best = ref None in
  let candidate = Array.make n 0 in
  let consider () =
    if is_consistent ccp candidate then begin
      let cost = count_rolled_back ccp candidate in
      match !best with
      | Some (_, best_cost) when best_cost <= cost -> ()
      | Some _ | None -> best := Some (Array.copy candidate, cost)
    end
  in
  let rec enumerate i =
    if i = n then consider ()
    else begin
      let hi = min bound.(i) (Ccp.volatile_index ccp i) in
      for v = 0 to hi do
        candidate.(i) <- v;
        enumerate (i + 1)
      done
    end
  in
  if Array.exists (fun b -> b < 0) bound then None
  else begin
    enumerate 0;
    Option.map fst !best
  end

let pp_global ppf g =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    (Array.to_list g)
