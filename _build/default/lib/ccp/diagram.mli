(** ASCII space-time diagrams of recorded executions.

    One row per process, one column per event in global (causal
    linearization) order:

    {v
    p0 [0]  m0>              [1]  m2>
    p1 [0]       >m0  [1]              >m2
    v}

    [\[k\]] is stable checkpoint [s^k]; [mX>] a send and [>mX] the
    matching receive of message [X].  Intended for the small hand-built
    patterns of the paper's figures and for CLI inspection of short runs
    — wide executions are truncated to the last [max_events] columns. *)

val render : ?max_events:int -> Trace.t -> string
(** Render the trace ([max_events] defaults to 64 columns). *)

val print : ?max_events:int -> Trace.t -> unit
