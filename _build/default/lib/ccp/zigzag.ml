type verdict = Causal_path | Non_causal_zigzag | Not_a_path

(* Messages sent by each process, sorted by send_interval descending, so
   that relaxing a constraint "send_interval >= gamma" enqueues a prefix
   and a per-process pointer makes each message enqueued at most once. *)
let sends_by_process ccp =
  let n = Ccp.n ccp in
  let buckets = Array.make n [] in
  Array.iter
    (fun (m : Ccp.message) -> buckets.(m.src) <- m :: buckets.(m.src))
    (Ccp.messages ccp);
  Array.map
    (fun l ->
      let a = Array.of_list l in
      Array.sort
        (fun (a : Ccp.message) (b : Ccp.message) ->
          compare b.send_interval a.send_interval)
        a;
      a)
    buckets

type analyzer = { a_ccp : Ccp.t; a_sends : Ccp.message array array }

let analyzer ccp = { a_ccp = ccp; a_sends = sends_by_process ccp }

let reach_with ~ccp ~sends ~src =
  if not (Ccp.mem ccp src) then invalid_arg "Zigzag.reach: bad checkpoint";
  let n = Ccp.n ccp in
  let ptr = Array.make n 0 in
  let min_recv = Array.make n max_int in
  let queue = Queue.create () in
  let relax pid gamma =
    let arr : Ccp.message array = sends.(pid) in
    while ptr.(pid) < Array.length arr
          && arr.(ptr.(pid)).Ccp.send_interval >= gamma do
      Queue.push arr.(ptr.(pid)) queue;
      ptr.(pid) <- ptr.(pid) + 1
    done
  in
  (* condition (i): first message sent after c^alpha, i.e. in interval
     >= alpha + 1 *)
  relax src.Ccp.pid (src.Ccp.index + 1);
  while not (Queue.is_empty queue) do
    let (m : Ccp.message) = Queue.pop queue in
    if m.recv_interval < min_recv.(m.dst) then
      min_recv.(m.dst) <- m.recv_interval;
    (* condition (ii): next message sent in the same or later interval *)
    relax m.dst m.recv_interval
  done;
  min_recv

let reach ccp ~src = reach_with ~ccp ~sends:(sends_by_process ccp) ~src
let reach_from a ~src = reach_with ~ccp:a.a_ccp ~sends:a.a_sends ~src

let path_exists ccp c1 (c2 : Ccp.ckpt) =
  let r = reach ccp ~src:c1 in
  r.(c2.pid) <= c2.index

let cycle ccp (c : Ccp.ckpt) =
  let r = reach ccp ~src:c in
  r.(c.pid) <= c.index

let useless ccp = List.filter (cycle ccp) (Ccp.checkpoints ccp)

let classify_sequence ccp ~(from_ : Ccp.ckpt) ~(to_ : Ccp.ckpt) msg_ids =
  let by_id = Hashtbl.create 16 in
  Array.iter
    (fun (m : Ccp.message) -> Hashtbl.replace by_id m.id m)
    (Ccp.messages ccp);
  let lookup id = Hashtbl.find_opt by_id id in
  match List.map lookup msg_ids with
  | [] -> Not_a_path
  | maybe_msgs when List.exists (fun m -> m = None) maybe_msgs -> Not_a_path
  | maybe_msgs ->
    let msgs =
      List.map
        (function Some m -> m | None -> assert false)
        maybe_msgs
    in
    let first = List.hd msgs in
    let last = List.nth msgs (List.length msgs - 1) in
    let valid_ends =
      first.src = from_.pid
      && first.send_interval >= from_.index + 1
      && last.dst = to_.pid
      && last.recv_interval <= to_.index
    in
    let rec check_hops causal = function
      | (m1 : Ccp.message) :: (m2 : Ccp.message) :: rest ->
        if m2.src = m1.dst && m2.send_interval >= m1.recv_interval then
          check_hops (causal && m2.send_seq > m1.recv_seq) (m2 :: rest)
        else None
      | [ _ ] | [] -> Some causal
    in
    if not valid_ends then Not_a_path
    else begin
      match check_hops true msgs with
      | None -> Not_a_path
      | Some true -> Causal_path
      | Some false -> Non_causal_zigzag
    end
