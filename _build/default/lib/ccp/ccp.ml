module Vector_clock = Rdt_causality.Vector_clock
module Vec = Rdt_sim.Vec

type ckpt = { pid : int; index : int }

type message = {
  id : int;
  src : int;
  send_interval : int;
  send_seq : int;
  dst : int;
  recv_interval : int;
  recv_seq : int;
}

type t = {
  n : int;
  last_stable : int array;
  ckpt_vc : Vector_clock.t array array;  (* [pid].(index), 0 .. last_stable *)
  volatile_vc : Vector_clock.t array;
  messages : message array;
}

type pending_send = {
  p_vc : Vector_clock.t;
  p_src : int;
  p_send_interval : int;
  p_send_seq : int;
}

let of_trace trace =
  let n = Trace.n trace in
  let cur_vc = Array.init n (fun _ -> Vector_clock.create ~n) in
  let cur_interval = Array.make n 0 in
  let ckpt_count = Array.make n 0 in
  let ckpts = Array.init n (fun _ -> Vec.create ()) in
  let pending : (int, pending_send) Hashtbl.t = Hashtbl.create 64 in
  let messages = Vec.create () in
  let handle (ev : Trace.event) =
    let pid = ev.pid in
    let vc = cur_vc.(pid) in
    Vector_clock.tick vc pid;
    match ev.kind with
    | Trace.Checkpoint { index } ->
      if index <> ckpt_count.(pid) then
        invalid_arg
          (Printf.sprintf
             "Ccp.of_trace: process %d records checkpoint %d, expected %d" pid
             index ckpt_count.(pid));
      Vec.push ckpts.(pid) (Vector_clock.copy vc);
      ckpt_count.(pid) <- index + 1;
      cur_interval.(pid) <- index + 1
    | Trace.Send { msg_id; dst = _ } ->
      Hashtbl.replace pending msg_id
        {
          p_vc = Vector_clock.copy vc;
          p_src = pid;
          p_send_interval = cur_interval.(pid);
          p_send_seq = ev.seq;
        }
    | Trace.Receive { msg_id; src } -> begin
      match Hashtbl.find_opt pending msg_id with
      | None ->
        invalid_arg
          (Printf.sprintf
             "Ccp.of_trace: orphan receive of message %d at process %d" msg_id
             pid)
      | Some p ->
        if p.p_src <> src then
          invalid_arg "Ccp.of_trace: receive names the wrong sender";
        Hashtbl.remove pending msg_id;
        Vector_clock.merge_into ~dst:vc ~src:p.p_vc;
        Vec.push messages
          {
            id = msg_id;
            src;
            send_interval = p.p_send_interval;
            send_seq = p.p_send_seq;
            dst = pid;
            recv_interval = cur_interval.(pid);
            recv_seq = ev.seq;
          }
    end
  in
  List.iter handle (Trace.all_events trace);
  for pid = 0 to n - 1 do
    if ckpt_count.(pid) = 0 then
      invalid_arg
        (Printf.sprintf "Ccp.of_trace: process %d has no initial checkpoint"
           pid)
  done;
  {
    n;
    last_stable = Array.map (fun c -> c - 1) ckpt_count;
    ckpt_vc = Array.map Vec.to_array ckpts;
    volatile_vc = cur_vc;
    messages = Vec.to_array messages;
  }

let n t = t.n
let last_stable t pid = t.last_stable.(pid)
let volatile_index t pid = t.last_stable.(pid) + 1
let volatile t pid = { pid; index = volatile_index t pid }
let last_stable_ckpt t pid = { pid; index = t.last_stable.(pid) }

let mem t c =
  c.pid >= 0 && c.pid < t.n && c.index >= 0 && c.index <= volatile_index t c.pid

let is_volatile t c = c.index = volatile_index t c.pid
let is_stable t c = mem t c && c.index <= t.last_stable.(c.pid)

let checkpoints t =
  List.concat
    (List.init t.n (fun pid ->
         List.init (volatile_index t pid + 1) (fun index -> { pid; index })))

let stable_checkpoints t =
  List.concat
    (List.init t.n (fun pid ->
         List.init (t.last_stable.(pid) + 1) (fun index -> { pid; index })))

let messages t = t.messages

let vc t c =
  if not (mem t c) then invalid_arg "Ccp.vc: checkpoint not in CCP";
  if is_volatile t c then t.volatile_vc.(c.pid) else t.ckpt_vc.(c.pid).(c.index)

let precedes t c1 c2 =
  if not (mem t c1 && mem t c2) then
    invalid_arg "Ccp.precedes: checkpoint not in CCP";
  if c1 = c2 then false
  else if is_volatile t c1 then false
  else
    (* event test: e -> f iff VC(e).(proc e) <= VC(f).(proc e) *)
    Vector_clock.get (vc t c1) c1.pid <= Vector_clock.get (vc t c2) c1.pid

let consistent_pair t c1 c2 = (not (precedes t c1 c2)) && not (precedes t c2 c1)

let pp_ckpt ppf c = Format.fprintf ppf "c%d_p%d" c.index c.pid

let pp ppf t =
  Format.fprintf ppf "@[<v>CCP: %d processes, %d messages" t.n
    (Array.length t.messages);
  for pid = 0 to t.n - 1 do
    Format.fprintf ppf "@,  p%d: %d stable checkpoints (+volatile)" pid
      (t.last_stable.(pid) + 1)
  done;
  Format.fprintf ppf "@]"
