let cell_of_event (ev : Trace.event) =
  match ev.kind with
  | Trace.Checkpoint { index } -> Printf.sprintf "[%d]" index
  | Trace.Send { msg_id; _ } -> Printf.sprintf "m%d>" msg_id
  | Trace.Receive { msg_id; _ } -> Printf.sprintf ">m%d" msg_id

let render ?(max_events = 64) trace =
  let events = Trace.all_events trace in
  let total = List.length events in
  let events =
    if total <= max_events then events
    else
      List.filteri (fun i _ -> i >= total - max_events) events
  in
  let n = Trace.n trace in
  let cells = List.map (fun ev -> (ev.Trace.pid, cell_of_event ev)) events in
  let width =
    List.fold_left (fun acc (_, c) -> max acc (String.length c)) 3 cells
  in
  let pad c = c ^ String.make (width - String.length c + 1) ' ' in
  let buffer = Buffer.create 1024 in
  if total > max_events then
    Buffer.add_string buffer
      (Printf.sprintf "... (%d earlier events omitted)\n" (total - max_events));
  for pid = 0 to n - 1 do
    Buffer.add_string buffer (Printf.sprintf "p%-2d " pid);
    List.iter
      (fun (owner, cell) ->
        Buffer.add_string buffer
          (if owner = pid then pad cell else String.make (width + 1) ' '))
      cells;
    Buffer.add_char buffer '\n'
  done;
  Buffer.contents buffer

let print ?max_events trace = print_string (render ?max_events trace)
