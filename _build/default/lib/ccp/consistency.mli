(** Consistent global checkpoints and Wang's min/max constructions.

    A global checkpoint assigns one general checkpoint per process; it is
    consistent iff its members are pairwise causally unrelated
    (Section 2.2).  This module provides:

    - the consistency test;
    - the greatest consistent global checkpoint below a per-process bound
      (computed by rollback-propagation fixpoint — the construction behind
      recovery lines);
    - the minimum / maximum consistent global checkpoints containing a
      given set of local checkpoints (Wang '97, the decentralized-recovery
      computations that the RDT property makes exact);
    - a brute-force enumeration used by tests to validate the fixpoints.

    Global checkpoints are represented as [int array]: entry [i] is the
    general-checkpoint index of process [i]. *)

type global = int array

val is_consistent : Ccp.t -> global -> bool
(** Pairwise consistency of the members.
    @raise Invalid_argument if some index is not a checkpoint of the CCP. *)

val count_rolled_back : Ccp.t -> global -> int
(** Number of general checkpoints rolled back when restarting from this
    global checkpoint: [sum_i (volatile_index i - g.(i))]. *)

val max_consistent : Ccp.t -> bound:global -> global option
(** Greatest consistent global checkpoint [g] with [g.(i) <= bound.(i)]
    for all [i].  [None] only on malformed CCPs (a trace recorded by the
    middleware always admits the all-zero solution). *)

val max_consistent_containing : Ccp.t -> Ccp.ckpt list -> global option
(** Maximum consistent global checkpoint containing all the given local
    checkpoints, or [None] if no consistent one contains them. *)

val min_consistent_containing : Ccp.t -> Ccp.ckpt list -> global option
(** Minimum consistent global checkpoint containing all the given local
    checkpoints, or [None]. *)

val brute_force_max_consistent : Ccp.t -> bound:global -> global option
(** Exhaustive search over the product of all checkpoints (exponential —
    tests only): among consistent global checkpoints below [bound], the
    one minimizing {!count_rolled_back}; ties broken by... there are no
    ties: the set of consistent global checkpoints below a bound is a
    lattice, so the maximum is unique. *)

val pp_global : Format.formatter -> global -> unit
