lib/ccp/diagram.ml: Buffer List Printf String Trace
