lib/ccp/consistency.mli: Ccp Format
