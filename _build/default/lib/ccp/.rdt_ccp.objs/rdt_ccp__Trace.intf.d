lib/ccp/trace.mli:
