lib/ccp/diagram.mli: Trace
