lib/ccp/ccp.mli: Format Rdt_causality Trace
