lib/ccp/rdt_check.mli: Ccp Format
