lib/ccp/rdt_check.ml: Array Ccp Format List Zigzag
