lib/ccp/zigzag.ml: Array Ccp Hashtbl List Queue
