lib/ccp/consistency.ml: Array Ccp Format List Option
