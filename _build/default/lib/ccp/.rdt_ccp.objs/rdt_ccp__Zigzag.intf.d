lib/ccp/zigzag.mli: Ccp
