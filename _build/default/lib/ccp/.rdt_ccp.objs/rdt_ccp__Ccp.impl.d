lib/ccp/ccp.ml: Array Format Hashtbl List Printf Rdt_causality Rdt_sim Trace
