lib/ccp/trace.ml: Array Fun List Printf Rdt_sim Scanf String
