(** Checkpoint and Communication Patterns (paper, Section 2.2).

    A CCP is the set of checkpoints taken by all processes in a consistent
    cut plus the dependency relation created by the exchanged messages
    (excluding lost and in-transit messages).  This module builds a CCP
    from a recorded {!Trace.t} and answers causality queries between
    checkpoints using vector clocks computed over the trace — deliberately
    *not* using the protocols' dependency vectors, so the two mechanisms
    can be verified against each other.

    Indexing conventions follow the paper: process [p_i] starts by storing
    stable checkpoint [s^0_i]; checkpoint interval [I^gamma] comprises the
    events between [c^(gamma-1)] and [c^gamma]; the volatile checkpoint
    [v_i] is the general checkpoint with index [last_s(i) + 1]. *)

type ckpt = { pid : int; index : int }
(** A general checkpoint [c^index_pid].  It is stable when
    [index <= last_stable t pid] and volatile when
    [index = last_stable t pid + 1]. *)

type message = {
  id : int;
  src : int;
  send_interval : int;  (** interval of the sender when sending *)
  send_seq : int;  (** trace sequence number of the send event *)
  dst : int;
  recv_interval : int;  (** interval of the receiver when receiving *)
  recv_seq : int;  (** trace sequence number of the receive event *)
}

type t

val of_trace : Trace.t -> t
(** Builds the CCP of the cut consisting of the whole trace.
    @raise Invalid_argument on malformed traces: a receive without a
    matching send (orphan message — the sign of an inconsistent rollback),
    or non-contiguous checkpoint indices. *)

val n : t -> int

val last_stable : t -> int -> int
(** [last_s(i)]: index of the last stable checkpoint of process [i]. *)

val volatile_index : t -> int -> int
(** [last_stable t i + 1]. *)

val volatile : t -> int -> ckpt
(** The volatile checkpoint [v_i]. *)

val last_stable_ckpt : t -> int -> ckpt
(** [s^last_i]. *)

val mem : t -> ckpt -> bool
(** Does this general checkpoint exist in the CCP? *)

val is_volatile : t -> ckpt -> bool
val is_stable : t -> ckpt -> bool

val checkpoints : t -> ckpt list
(** Every general checkpoint (stable and volatile), process by process. *)

val stable_checkpoints : t -> ckpt list

val messages : t -> message array
(** Delivered messages only, in trace order. *)

val vc : t -> ckpt -> Rdt_causality.Vector_clock.t
(** Vector clock of the checkpoint event ([v_i]: the process's final
    clock).  Do not mutate. *)

val precedes : t -> ckpt -> ckpt -> bool
(** Causal precedence [c1 -> c2] between checkpoint events (Definition 1).
    Volatile checkpoints precede nothing; everything a process did
    precedes its own volatile checkpoint. *)

val consistent_pair : t -> ckpt -> ckpt -> bool
(** Neither precedes the other (Section 2.2). *)

val pp_ckpt : Format.formatter -> ckpt -> unit
val pp : Format.formatter -> t -> unit
(** Multi-line summary (per-process checkpoint counts and message count). *)
