type t =
  | App of Rdt_protocols.Middleware.message
  | Gc_query of { round : int }
  | Gc_reply of {
      round : int;
      pid : int;
      snapshot : Rdt_gc.Global_gc.snapshot;
    }
  | Gc_collect of { round : int; indices : int list }

let is_control = function
  | App _ -> false
  | Gc_query _ | Gc_reply _ | Gc_collect _ -> true

let pp ppf = function
  | App m ->
    Format.fprintf ppf "app#%d from p%d" m.Rdt_protocols.Middleware.msg_id
      m.Rdt_protocols.Middleware.src
  | Gc_query { round } -> Format.fprintf ppf "gc-query r%d" round
  | Gc_reply { round; pid; _ } -> Format.fprintf ppf "gc-reply r%d p%d" round pid
  | Gc_collect { round; indices } ->
    Format.fprintf ppf "gc-collect r%d [%d]" round (List.length indices)
