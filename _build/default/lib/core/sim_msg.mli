(** Messages on the simulated network.

    Application messages carry the checkpointing middleware's control
    information.  The [Gc_*] messages are the control traffic of the
    coordinated baselines — exactly the traffic RDT-LGC is designed to do
    without. *)

type t =
  | App of Rdt_protocols.Middleware.message
  | Gc_query of { round : int }  (** coordinator asks for a state snapshot *)
  | Gc_reply of {
      round : int;
      pid : int;
      snapshot : Rdt_gc.Global_gc.snapshot;
    }
  | Gc_collect of { round : int; indices : int list }
      (** coordinator orders elimination of these checkpoint indices *)

val is_control : t -> bool
val pp : Format.formatter -> t -> unit
