lib/core/sim_msg.ml: Format List Rdt_gc Rdt_protocols
