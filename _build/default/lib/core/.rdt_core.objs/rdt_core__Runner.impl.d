lib/core/runner.ml: Array Format Fun List Printf Rdt_causality Rdt_ccp Rdt_gc Rdt_metrics Rdt_protocols Rdt_recovery Rdt_sim Rdt_storage Rdt_workload Sim_config Sim_msg
