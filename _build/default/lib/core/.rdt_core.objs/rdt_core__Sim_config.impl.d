lib/core/sim_config.ml: List Rdt_protocols Rdt_recovery Rdt_sim Rdt_workload
