lib/core/sim_config.mli: Rdt_protocols Rdt_recovery Rdt_sim Rdt_workload
