lib/core/sim_msg.mli: Format Rdt_gc Rdt_protocols
