lib/core/runner.mli: Format Rdt_ccp Rdt_gc Rdt_metrics Rdt_protocols Rdt_recovery Rdt_sim Sim_config Sim_msg
