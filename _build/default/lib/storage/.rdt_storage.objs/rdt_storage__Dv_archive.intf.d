lib/storage/dv_archive.mli:
