lib/storage/dv_archive.ml: Array Printf
