lib/storage/stable_store.ml: Array Format Int List Map Printf
