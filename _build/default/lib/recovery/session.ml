module Middleware = Rdt_protocols.Middleware
module Global_gc = Rdt_gc.Global_gc
module Stable_store = Rdt_storage.Stable_store
module Dependency_vector = Rdt_causality.Dependency_vector

type knowledge = [ `Global | `Causal ]

type report = {
  faulty : int list;
  line : int array;
  rolled_back : int list;
  checkpoints_rolled_back : int;
}

let snapshot_of mw =
  {
    Global_gc.entries = Array.of_list (Stable_store.retained (Middleware.store mw));
    live_dv = Dependency_vector.to_array (Middleware.dv mw);
  }

let run ~middlewares ~faulty ~knowledge ~release_outdated =
  let n = Array.length middlewares in
  let snaps = Array.map snapshot_of middlewares in
  let line = Recovery_line.from_snapshots snaps ~faulty in
  let last = Array.map (fun mw -> Stable_store.last_index (Middleware.store mw)) middlewares in
  (* LI in the post-rollback CCP: rolled-back processes end at their line
     component, the others keep their last stable checkpoint *)
  let li = Array.init n (fun j -> min line.(j) last.(j) + 1) in
  let rolled = ref [] in
  let undone = ref 0 in
  for i = 0 to n - 1 do
    let volatile = last.(i) + 1 in
    undone := !undone + (volatile - line.(i));
    if line.(i) <= last.(i) then begin
      rolled := i :: !rolled;
      let li_arg = match knowledge with `Global -> Some li | `Causal -> None in
      Middleware.rollback middlewares.(i) ~to_index:line.(i) ~li:li_arg
    end
    else begin
      match knowledge with
      | `Global -> release_outdated i ~li
      | `Causal -> ()
    end
  done;
  {
    faulty;
    line;
    rolled_back = List.rev !rolled;
    checkpoints_rolled_back = !undone;
  }

let pp_report ppf r =
  let pp_ints ppf l =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
      Format.pp_print_int ppf l
  in
  Format.fprintf ppf
    "@[<h>recovery: faulty={%a} line=(%a) rolled_back={%a} undone=%d@]"
    pp_ints r.faulty pp_ints
    (Array.to_list r.line)
    pp_ints r.rolled_back r.checkpoints_rolled_back
