lib/recovery/recovery_line.mli: Rdt_ccp Rdt_gc
