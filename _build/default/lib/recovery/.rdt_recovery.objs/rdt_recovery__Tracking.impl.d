lib/recovery/tracking.ml: Array Hashtbl List Rdt_gc Rdt_storage
