lib/recovery/session.mli: Format Rdt_gc Rdt_protocols
