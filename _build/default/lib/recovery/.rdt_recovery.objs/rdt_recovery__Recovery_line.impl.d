lib/recovery/recovery_line.ml: Array List Rdt_ccp Rdt_gc Rdt_storage
