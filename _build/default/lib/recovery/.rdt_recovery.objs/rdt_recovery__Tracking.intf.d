lib/recovery/tracking.mli: Rdt_gc Rdt_storage
