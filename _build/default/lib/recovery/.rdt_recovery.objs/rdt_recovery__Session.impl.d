lib/recovery/session.ml: Array Format List Rdt_causality Rdt_gc Rdt_protocols Rdt_storage Recovery_line
