(** Decentralized consistent-global-checkpoint tracking (Wang '97).

    The practical payoff of the RDT property (paper, Sections 1 and 5):
    because every checkpoint dependency is captured by the dependency
    vectors, the minimum and maximum consistent global checkpoints
    containing a given set of local checkpoints can be computed directly
    from stored DVs — no zigzag analysis, no extra communication.  This is
    what enables decentralized recovery-line calculation, software error
    recovery and causal distributed breakpoints.

    Closed forms (valid on RD-trackable patterns, [S] itself pairwise
    consistent):
    - maximum: per process, the *last* checkpoint causally preceded by no
      member of [S] (members of [S] fixed);
    - minimum: per process, the *first* checkpoint that causally precedes
      no member of [S].

    Precedence is evaluated with Equation 2 over the DVs stored in the
    snapshots, so the snapshots must describe every checkpoint (run
    without garbage collection, or keep archived DVs — DVs are [n] words,
    checkpoints are full states; archiving vectors is cheap).  The test
    suite cross-checks these closed forms against the trace-based lattice
    fixpoints of {!Rdt_ccp.Consistency} on random executions. *)

type target = { pid : int; index : int }

val max_consistent_containing :
  Rdt_gc.Global_gc.snapshot array -> target list -> int array option
(** [None] when the targets are not pairwise consistent (no consistent
    global checkpoint contains them).
    @raise Invalid_argument on bad targets or two targets on one
    process. *)

val min_consistent_containing :
  Rdt_gc.Global_gc.snapshot array -> target list -> int array option
(** Dual of {!max_consistent_containing}; [None] under the same
    condition. *)

val consistent_pair :
  Rdt_gc.Global_gc.snapshot array -> target -> target -> bool
(** Equation-2 consistency test between two stable checkpoints. *)

(** {2 Archive-based variants}

    The snapshot-based functions above need every checkpoint still in the
    store.  With garbage collection running, use the per-process
    {!Rdt_storage.Dv_archive.t} instead (the middleware maintains one):
    eliminated checkpoints keep their vectors there, so tracking and
    aggressive collection coexist.  Note that a checkpoint found this way
    may itself have been collected — these computations answer causality
    placement questions (breakpoints, error propagation analysis), not
    restart-ability. *)

val max_consistent_containing_archived :
  archives:Rdt_storage.Dv_archive.t array ->
  live_dvs:int array array ->
  target list ->
  int array option

val min_consistent_containing_archived :
  archives:Rdt_storage.Dv_archive.t array ->
  live_dvs:int array array ->
  target list ->
  int array option
