(** Recovery lines (paper, Definition 5 and Lemma 1).

    Given a set [F] of faulty processes, the recovery line [R_F] is the
    consistent global checkpoint that excludes the volatile checkpoints of
    faulty processes and minimizes the number of general checkpoints
    rolled back.  Lemma 1 characterizes it for RD-trackable CCPs as, per
    process, the last checkpoint not causally preceded by the last stable
    checkpoint of any faulty process.

    Three computations are provided:
    - {!lemma1}: directly from the lemma, over trace ground truth;
    - {!by_max_consistent}: from Definition 5, as the greatest consistent
      global checkpoint below the faulty bound (tests cross-check the two);
    - {!from_snapshots}: the runtime version over stored dependency
      vectors, which the recovery manager uses. *)

val lemma1 : Rdt_ccp.Ccp.t -> faulty:int list -> Rdt_ccp.Consistency.global
(** [R_F] per Lemma 1.  [faulty] must be non-empty and name valid
    processes. *)

val by_max_consistent :
  Rdt_ccp.Ccp.t -> faulty:int list -> Rdt_ccp.Consistency.global
(** [R_F] per Definition 5, via rollback-propagation from the bound that
    caps faulty processes at their last stable checkpoint.
    @raise Failure if no consistent global checkpoint exists below the
    bound (cannot happen on well-formed CCPs). *)

val from_snapshots :
  Rdt_gc.Global_gc.snapshot array -> faulty:int list -> int array
(** [R_F] computed from per-process snapshots of stored DVs (Equation 2),
    as the centralized recovery manager does at run time.  Entry [i] is a
    general checkpoint index; it equals [last_index + 1] (the volatile
    checkpoint) when process [i] need not roll back.  Requires RDT and
    that no non-obsolete checkpoint is missing from the snapshots. *)

val rolled_back : Rdt_ccp.Ccp.t -> Rdt_ccp.Consistency.global -> int
(** Number of general checkpoints rolled back by restarting from the
    line (the quantity Definition 5 minimizes). *)
