(** Priority queue of timed events for the discrete-event engine.

    Events are ordered by timestamp; ties are broken by a monotonically
    increasing sequence number assigned at insertion, so the execution order
    of simultaneous events is deterministic (insertion order).  Entries can
    be cancelled lazily via the handle returned by {!add}. *)

type 'a t

type handle
(** Token identifying a scheduled entry; used for cancellation. *)

val create : unit -> 'a t

val add : 'a t -> time:float -> 'a -> handle
(** [add q ~time v] schedules [v] at [time] and returns its handle. *)

val cancel : 'a t -> handle -> unit
(** [cancel q h] marks the entry as cancelled; it will be skipped when it
    reaches the head of the queue.  Cancelling twice, or cancelling an
    already-popped entry, is a no-op. *)

val pop : 'a t -> (float * 'a) option
(** Removes and returns the earliest non-cancelled entry, or [None] if the
    queue is (effectively) empty. *)

val peek_time : 'a t -> float option
(** Timestamp of the earliest non-cancelled entry, without removing it. *)

val is_empty : 'a t -> bool
(** [true] iff no non-cancelled entry remains. *)

val length : 'a t -> int
(** Number of live (non-cancelled) entries. *)
