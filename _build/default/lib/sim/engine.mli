(** Deterministic discrete-event execution engine.

    An engine owns the virtual clock, the event queue and the channel model.
    Processes are identified by integers [0 .. n-1].  Two kinds of events
    exist: message deliveries (created by {!send} through the network
    model) and scheduled actions (arbitrary closures, used for workload
    timers, basic-checkpoint timers and fault injection).

    Processes can be marked down ({!set_up}); deliveries and owned actions
    addressed to a down process are silently discarded, which models the
    crash semantics of the paper (volatile state lost, no processing while
    down).  {!flush_in_flight} drops every message currently in transit,
    which a centralized recovery session uses to discard in-transit
    messages (the paper's CCP excludes lost and in-transit messages). *)

type 'msg t

type stats = {
  mutable sent : int;  (** messages handed to {!send} *)
  mutable delivered : int;  (** deliveries executed *)
  mutable lost : int;  (** dropped by the channel loss model *)
  mutable dropped_down : int;  (** arrived while the destination was down *)
  mutable flushed : int;  (** discarded by {!flush_in_flight} *)
  mutable events : int;  (** total events executed *)
}

val create : n:int -> seed:int -> net:Network.config -> unit -> 'msg t

val n : _ t -> int
val now : _ t -> float

val rng : _ t -> Prng.t
(** The engine's root generator; split it rather than drawing directly if
    you need an independent stream. *)

val network : _ t -> Network.t

val set_receiver : 'msg t -> int -> (src:int -> 'msg -> unit) -> unit
(** [set_receiver t p f] installs the delivery callback of process [p].
    Must be called for every process before the first delivery. *)

val send : 'msg t -> ?reliable:bool -> src:int -> dst:int -> 'msg -> unit
(** Transmit a message through the channel model.  Delivery (if the message
    is not lost) happens at a later virtual time, via the receiver
    callback of [dst].  [?reliable] (default [false]) bypasses the loss
    model — used for the control messages of coordinated GC baselines,
    which assume reliable channels (the paper's point of contrast). *)

val schedule :
  'msg t -> ?owner:int -> at:float -> (unit -> unit) -> Event_queue.handle
(** [schedule t ?owner ~at f] runs [f] at virtual time [at].  If [owner] is
    given and that process is down when the action fires, the action is
    skipped.  [at] must not precede the current time. *)

val schedule_in :
  'msg t -> ?owner:int -> delay:float -> (unit -> unit) -> Event_queue.handle
(** Convenience wrapper: [schedule] at [now + delay]. *)

val cancel : 'msg t -> Event_queue.handle -> unit

val is_up : _ t -> int -> bool
val set_up : _ t -> int -> bool -> unit

val flush_in_flight : _ t -> unit
(** Drop every message currently in transit and reset FIFO channel order. *)

val step : _ t -> bool
(** Execute the next event.  Returns [false] if the queue was empty. *)

val run : ?until:float -> _ t -> unit
(** Execute events until the queue is empty or the next event is strictly
    after [until].  When stopped by [until], the clock is advanced to
    [until]. *)

val stats : _ t -> stats
