lib/sim/prng.mli:
