lib/sim/vec.mli:
