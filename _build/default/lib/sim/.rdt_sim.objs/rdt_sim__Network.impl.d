lib/sim/network.ml: Array Float Format Prng
