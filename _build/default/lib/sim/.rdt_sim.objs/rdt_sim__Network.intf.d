lib/sim/network.mli: Format Prng
