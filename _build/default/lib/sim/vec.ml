type 'a t = { mutable data : 'a array; mutable size : int }

let create () = { data = [||]; size = 0 }
let length t = t.size
let is_empty t = t.size = 0

let check t i =
  if i < 0 || i >= t.size then invalid_arg "Vec: index out of bounds"

let get t i =
  check t i;
  t.data.(i)

let set t i v =
  check t i;
  t.data.(i) <- v

let push t v =
  if t.size = Array.length t.data then begin
    let data = Array.make (max 8 (2 * t.size)) v in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end;
  t.data.(t.size) <- v;
  t.size <- t.size + 1

let pop t =
  if t.size = 0 then None
  else begin
    t.size <- t.size - 1;
    Some t.data.(t.size)
  end

let last t = if t.size = 0 then None else Some t.data.(t.size - 1)

let truncate t len =
  if len < 0 then invalid_arg "Vec.truncate: negative length";
  if len < t.size then t.size <- len

let clear t = t.size <- 0

let iter f t =
  for i = 0 to t.size - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.size - 1 do
    f i t.data.(i)
  done

let fold_left f acc t =
  let acc = ref acc in
  for i = 0 to t.size - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let exists p t =
  let rec loop i = i < t.size && (p t.data.(i) || loop (i + 1)) in
  loop 0

let to_list t = List.init t.size (fun i -> t.data.(i))
let to_array t = Array.sub t.data 0 t.size

let of_list l =
  let t = create () in
  List.iter (push t) l;
  t
