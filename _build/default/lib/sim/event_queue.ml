(* Binary min-heap over (time, seq).  Cancellation is lazy: a cancelled
   entry stays in the heap with its [live] flag cleared and is dropped when
   popped, which keeps all operations O(log n) amortized. *)

type 'a entry = {
  time : float;
  seq : int;
  value : 'a;
  mutable live : bool;
}

type handle = H : 'a entry -> handle

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
  mutable live_count : int;
}

let create () = { data = [||]; size = 0; next_seq = 0; live_count = 0 }

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap t i j =
  let tmp = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.data.(i) t.data.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && before t.data.(l) t.data.(!smallest) then smallest := l;
  if r < t.size && before t.data.(r) t.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let grow t entry =
  let capacity = Array.length t.data in
  if t.size = capacity then begin
    let new_capacity = max 16 (2 * capacity) in
    let data = Array.make new_capacity entry in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end

let add t ~time value =
  let entry = { time; seq = t.next_seq; value; live = true } in
  t.next_seq <- t.next_seq + 1;
  grow t entry;
  t.data.(t.size) <- entry;
  t.size <- t.size + 1;
  t.live_count <- t.live_count + 1;
  sift_up t (t.size - 1);
  H entry

let cancel t (H entry) =
  if entry.live then begin
    entry.live <- false;
    t.live_count <- t.live_count - 1
  end

let pop_entry t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    Some top
  end

let rec pop t =
  match pop_entry t with
  | None -> None
  | Some entry ->
    if entry.live then begin
      t.live_count <- t.live_count - 1;
      Some (entry.time, entry.value)
    end
    else pop t

let rec peek_time t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    if top.live then Some top.time
    else begin
      ignore (pop_entry t);
      peek_time t
    end
  end

let is_empty t = t.live_count = 0

let length t = t.live_count
