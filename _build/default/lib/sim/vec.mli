(** Growable arrays (OCaml 5.1 predates [Dynarray]).

    Used for event logs and per-process checkpoint tables, which grow by
    appending and occasionally truncate from the end (rollback). *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> unit
val pop : 'a t -> 'a option
val last : 'a t -> 'a option

val truncate : 'a t -> int -> unit
(** [truncate v len] drops elements so that [length v = len]; no-op when
    already shorter. *)

val clear : 'a t -> unit
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val exists : ('a -> bool) -> 'a t -> bool
val to_list : 'a t -> 'a list
val to_array : 'a t -> 'a array
val of_list : 'a list -> 'a t
