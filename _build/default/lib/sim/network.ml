type config = {
  min_delay : float;
  max_delay : float;
  loss_probability : float;
  fifo : bool;
}

let default =
  { min_delay = 0.5; max_delay = 1.5; loss_probability = 0.0; fifo = false }

let pp_config ppf c =
  Format.fprintf ppf "@[<h>delay=[%g,%g) loss=%g %s@]" c.min_delay c.max_delay
    c.loss_probability
    (if c.fifo then "fifo" else "non-fifo")

type t = {
  cfg : config;
  rng : Prng.t;
  n : int;
  (* last scheduled delivery time per directed channel, for FIFO order *)
  channel_clock : float array;
}

let create cfg ~n ~rng =
  if cfg.min_delay < 0.0 || cfg.max_delay < cfg.min_delay then
    invalid_arg "Network.create: bad delay bounds";
  if cfg.loss_probability < 0.0 || cfg.loss_probability > 1.0 then
    invalid_arg "Network.create: bad loss probability";
  { cfg; rng; n; channel_clock = Array.make (n * n) neg_infinity }

let config t = t.cfg

let delivery_time t ~src ~dst ~now =
  if t.cfg.loss_probability > 0.0
     && Prng.bernoulli t.rng ~p:t.cfg.loss_probability
  then None
  else begin
    let delay =
      if t.cfg.max_delay > t.cfg.min_delay then
        Prng.uniform_in t.rng ~lo:t.cfg.min_delay ~hi:t.cfg.max_delay
      else t.cfg.min_delay
    in
    let at = now +. delay in
    if t.cfg.fifo then begin
      let key = (src * t.n) + dst in
      let at = Float.max at t.channel_clock.(key) in
      t.channel_clock.(key) <- at;
      Some at
    end
    else Some at
  end

let reset_order t = Array.fill t.channel_clock 0 (t.n * t.n) neg_infinity
