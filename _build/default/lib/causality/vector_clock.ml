type t = int array

let create ~n =
  if n <= 0 then invalid_arg "Vector_clock.create: n must be positive";
  Array.make n 0

let copy = Array.copy
let size = Array.length
let get t i = t.(i)
let set t i v = t.(i) <- v
let tick t i = t.(i) <- t.(i) + 1

let merge_into ~dst ~src =
  if Array.length dst <> Array.length src then
    invalid_arg "Vector_clock.merge_into: size mismatch";
  for i = 0 to Array.length dst - 1 do
    if src.(i) > dst.(i) then dst.(i) <- src.(i)
  done

let leq a b =
  if Array.length a <> Array.length b then
    invalid_arg "Vector_clock.leq: size mismatch";
  let rec loop i = i = Array.length a || (a.(i) <= b.(i) && loop (i + 1)) in
  loop 0

let equal a b = a = b
let precedes a b = leq a b && not (equal a b)
let concurrent a b = (not (leq a b)) && not (leq b a)
let compare = Stdlib.compare
let to_array = Array.copy
let of_array a = Array.copy a

let pp ppf t =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    (Array.to_list t)
