type t = int array

let create ~n =
  if n <= 0 then invalid_arg "Dependency_vector.create: n must be positive";
  Array.make n 0

let copy = Array.copy
let size = Array.length
let get t i = t.(i)
let set t i v = t.(i) <- v
let increment t i = t.(i) <- t.(i) + 1

let merge_from_message t m =
  if Array.length t <> Array.length m then
    invalid_arg "Dependency_vector.merge_from_message: size mismatch";
  let changed = ref [] in
  for j = Array.length t - 1 downto 0 do
    if m.(j) > t.(j) then begin
      t.(j) <- m.(j);
      changed := j :: !changed
    end
  done;
  !changed

let newer_entries ~local ~incoming =
  if Array.length local <> Array.length incoming then
    invalid_arg "Dependency_vector.newer_entries: size mismatch";
  let changed = ref [] in
  for j = Array.length local - 1 downto 0 do
    if incoming.(j) > local.(j) then changed := j :: !changed
  done;
  !changed

let last_known t j = t.(j) - 1

let checkpoint_precedes ~index ~of_ dv_beta = index < dv_beta.(of_)

let equal a b = a = b
let to_array = Array.copy
let of_array = Array.copy

let pp ppf t =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    (Array.to_list t)
