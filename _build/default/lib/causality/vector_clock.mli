(** Classic vector clocks (Fidge/Mattern).

    Used by the trace analyzer to compute the happened-before relation of a
    recorded execution, independently from the dependency vectors the
    checkpointing protocols propagate — so the two mechanisms can be checked
    against each other. *)

type t

val create : n:int -> t
(** All-zero clock for an [n]-process system. *)

val copy : t -> t
val size : t -> int

val get : t -> int -> int
val set : t -> int -> int -> unit

val tick : t -> int -> unit
(** [tick c i] increments component [i]; call on every local event of
    process [i]. *)

val merge_into : dst:t -> src:t -> unit
(** Component-wise maximum, written into [dst]; the receive rule. *)

val leq : t -> t -> bool
(** Pointwise [<=]. *)

val precedes : t -> t -> bool
(** [precedes a b] is the strict happened-before test: [leq a b && a <> b]. *)

val concurrent : t -> t -> bool

val equal : t -> t -> bool
val compare : t -> t -> int
(** Total order extending [leq] (lexicographic); useful for sorting only. *)

val to_array : t -> int array
(** Fresh array copy of the components. *)

val of_array : int array -> t

val pp : Format.formatter -> t -> unit
