lib/causality/vector_clock.ml: Array Format Stdlib
