lib/causality/vector_clock.mli: Format
