lib/causality/dependency_vector.mli: Format
