lib/causality/dependency_vector.ml: Array Format
