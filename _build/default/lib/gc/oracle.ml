module Ccp = Rdt_ccp.Ccp

let witnesses ccp (c : Ccp.ckpt) =
  if not (Ccp.is_stable ccp c) then
    invalid_arg "Oracle: Theorem 1 characterizes stable checkpoints";
  let successor : Ccp.ckpt = { pid = c.pid; index = c.index + 1 } in
  let witness f =
    let last_f = Ccp.last_stable_ckpt ccp f in
    Ccp.precedes ccp last_f successor && not (Ccp.precedes ccp last_f c)
  in
  List.filter witness (List.init (Ccp.n ccp) Fun.id)

let needed_by = witnesses

let is_obsolete ccp c = witnesses ccp c = []

let obsolete ccp = List.filter (is_obsolete ccp) (Ccp.stable_checkpoints ccp)

let retained ccp ~pid =
  List.filter_map
    (fun index ->
      if is_obsolete ccp { Ccp.pid; index } then None else Some index)
    (List.init (Ccp.last_stable ccp pid + 1) Fun.id)

let retained_count ccp ~pid = List.length (retained ccp ~pid)
