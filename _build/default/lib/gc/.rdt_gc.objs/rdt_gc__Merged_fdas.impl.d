lib/gc/merged_fdas.ml: Array Option Rdt_protocols Rdt_storage
