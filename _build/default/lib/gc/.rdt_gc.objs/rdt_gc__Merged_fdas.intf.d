lib/gc/merged_fdas.mli: Rdt_protocols Rdt_storage
