lib/gc/rdt_lgc.mli: Format Rdt_causality Rdt_protocols Rdt_storage
