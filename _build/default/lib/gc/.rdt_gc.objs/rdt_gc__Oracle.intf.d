lib/gc/oracle.mli: Rdt_ccp
