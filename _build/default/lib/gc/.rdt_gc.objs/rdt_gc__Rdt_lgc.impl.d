lib/gc/rdt_lgc.ml: Array Format Global_gc Option Rdt_causality Rdt_protocols Rdt_storage
