lib/gc/oracle.ml: Fun List Rdt_ccp
