lib/gc/global_gc.mli: Rdt_storage
