lib/gc/global_gc.ml: Array Int List Rdt_storage Set
