lib/scenarios/figures.ml: Fun List Rdt_ccp Rdt_protocols Script
