lib/scenarios/figures.mli: Rdt_ccp Rdt_protocols Script
