lib/scenarios/script.mli: Rdt_ccp Rdt_gc Rdt_protocols Rdt_storage
