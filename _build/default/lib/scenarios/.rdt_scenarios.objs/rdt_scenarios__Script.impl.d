lib/scenarios/script.ml: Array Rdt_causality Rdt_ccp Rdt_gc Rdt_protocols Rdt_storage
