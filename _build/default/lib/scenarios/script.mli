(** Scripted executions: drive real middleware (and optionally RDT-LGC)
    through an explicit sequence of sends, receives and checkpoints,
    without the discrete-event engine.

    Used to transcribe the paper's space-time diagrams event by event —
    the figures fix exact interleavings that a random simulation would
    never reproduce.  Virtual time advances by one unit per operation. *)

type t

val create :
  n:int -> protocol:Rdt_protocols.Protocol.t -> with_lgc:bool -> t
(** Fresh system; every process has stored its initial checkpoint and,
    when [with_lgc], has an attached RDT-LGC collector. *)

val n : t -> int

val checkpoint : t -> int -> unit
(** Basic checkpoint of one process. *)

type msg
(** An in-flight message. *)

val send : t -> src:int -> dst:int -> msg
val deliver : t -> msg -> unit
(** @raise Invalid_argument if already delivered or wrong script order
    (delivery is to the destination given at send time). *)

val transfer : t -> src:int -> dst:int -> unit
(** [send] immediately followed by [deliver] — for diagram arrows with no
    crossing. *)

val middleware : t -> int -> Rdt_protocols.Middleware.t
val collector : t -> int -> Rdt_gc.Rdt_lgc.t option
val store : t -> int -> Rdt_storage.Stable_store.t

val dv : t -> int -> int array
(** Current dependency vector of one process. *)

val uc : t -> int -> int option array
(** Current UC view (requires [with_lgc]).
    @raise Invalid_argument otherwise. *)

val retained : t -> int -> int list
(** Currently retained checkpoint indices of one process. *)

val trace : t -> Rdt_ccp.Trace.t
val ccp : t -> Rdt_ccp.Ccp.t

val forced_taken : t -> int -> int
(** Forced checkpoints the protocol has injected at one process (scripts
    that transcribe figures usually assert this stays zero). *)
