module Middleware = Rdt_protocols.Middleware
module Rdt_lgc = Rdt_gc.Rdt_lgc
module Stable_store = Rdt_storage.Stable_store
module Dependency_vector = Rdt_causality.Dependency_vector
module Trace = Rdt_ccp.Trace
module Ccp = Rdt_ccp.Ccp

type t = {
  n : int;
  trace : Trace.t;
  middlewares : Middleware.t array;
  collectors : Rdt_lgc.t option array;
  mutable clock : float;
}

type msg = {
  payload : Middleware.message;
  dst : int;
  mutable delivered : bool;
}

let create ~n ~protocol ~with_lgc =
  let trace = Trace.create ~n in
  let middlewares =
    Array.init n (fun me -> Middleware.create ~n ~me ~protocol ~trace ())
  in
  let collectors =
    Array.init n (fun me ->
        if with_lgc then begin
          let mw = middlewares.(me) in
          let lgc =
            Rdt_lgc.create ~me ~store:(Middleware.store mw)
              ~dv:(Middleware.dv mw) ~n
          in
          Rdt_lgc.attach lgc mw;
          Some lgc
        end
        else None)
  in
  { n; trace; middlewares; collectors; clock = 0.0 }

let n t = t.n

let tick t =
  t.clock <- t.clock +. 1.0;
  t.clock

let checkpoint t pid =
  Middleware.basic_checkpoint t.middlewares.(pid) ~now:(tick t)

let send t ~src ~dst =
  let payload = Middleware.prepare_send t.middlewares.(src) ~dst ~now:(tick t) in
  { payload; dst; delivered = false }

let deliver t msg =
  if msg.delivered then invalid_arg "Script.deliver: already delivered";
  msg.delivered <- true;
  Middleware.receive t.middlewares.(msg.dst) msg.payload ~now:(tick t)

let transfer t ~src ~dst = deliver t (send t ~src ~dst)

let middleware t pid = t.middlewares.(pid)
let collector t pid = t.collectors.(pid)
let store t pid = Middleware.store t.middlewares.(pid)
let dv t pid = Dependency_vector.to_array (Middleware.dv t.middlewares.(pid))

let uc t pid =
  match t.collectors.(pid) with
  | Some lgc -> Rdt_lgc.uc_view lgc
  | None -> invalid_arg "Script.uc: no collector attached"

let retained t pid = Stable_store.retained_indices (store t pid)
let trace t = t.trace
let ccp t = Ccp.of_trace t.trace
let forced_taken t pid = Middleware.forced_count t.middlewares.(pid)
