(** Transcriptions of the paper's figures.

    Process identifiers are 0-based ([p1] of the paper is pid 0, etc.).
    Each builder returns the artifacts the corresponding experiment and
    tests assert against.

    - {!figure1}: the example CCP of Figure 1 — message ids for the paths
      classified in the text ([m1,m2] and [m1,m4] C-paths, [m5,m4]
      Z-path), plus a variant without [m3] that loses RDT.
    - {!figure2}: the domino-effect pattern of Figure 2 (uncoordinated
      ping-pong; every non-initial stable checkpoint useless), and the
      same interleaving pushed through a real FDAS middleware, which
      breaks the zigzag cycles with forced checkpoints.
    - {!figure4}: the RDT-LGC execution of Figure 4, driven through real
      middleware with attached collectors; reaches the paper's final
      state: [s^2_2, s^1_3, s^2_3] eliminated (paper numbering) and the
      obsolete [s^1_2] retained because [p2] lacks causal knowledge of
      [p3]'s later checkpoints.
    - {!worst_case} (Figure 5): an [n]-process pattern in which every
      process ends up retaining exactly [n] checkpoints — the algorithm's
      tight bound — and transiently [n+1] while storing one more.

    Figure 3's exact message pattern is not specified in the paper (the
    figure only shows which checkpoints end up gray); {!recovery_ccp}
    builds a 4-process CCP in its spirit, on which the recovery-line
    computations are cross-checked. *)

type figure1 = {
  ccp : Rdt_ccp.Ccp.t;
  trace : Rdt_ccp.Trace.t;  (** for rendering with [Rdt_ccp.Diagram] *)
  m1 : int;
  m2 : int;
  m3 : int;
  m4 : int;
  m5 : int;
}

val figure1 : unit -> figure1
val figure1_without_m3 : unit -> Rdt_ccp.Ccp.t

type figure2 = {
  ccp : Rdt_ccp.Ccp.t;  (** the uncoordinated (no forced checkpoints) CCP *)
  trace : Rdt_ccp.Trace.t;
  m1 : int;
  m2 : int;
  m3 : int;
  m4 : int;
}

val figure2 : unit -> figure2

val figure2_with_protocol : Rdt_protocols.Protocol.t -> Script.t
(** The Figure 2 interleaving executed under a real protocol middleware
    (forced checkpoints included); used to show FDAS preventing the
    domino effect. *)

val figure4 : unit -> Script.t
(** Runs the scripted Figure 4 execution to completion (FDAS + RDT-LGC). *)

val recovery_ccp : unit -> Rdt_ccp.Ccp.t
(** A 4-process CCP exercising recovery-line determination (Figure 3's
    role). *)

val worst_case : n:int -> Script.t
(** Figure 5's worst case for [n] processes: drives [n] phases after
    which every process retains exactly [n] stable checkpoints; the
    script ends *before* the extra simultaneous checkpoint (take one more
    checkpoint per process to observe the transient [n+1]). *)
