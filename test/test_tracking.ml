(* Decentralized min/max consistent global checkpoints from dependency
   vectors (Wang '97 closed forms), cross-checked against the trace-based
   lattice fixpoints. *)

module Tracking = Rdt_recovery.Tracking
module Session = Rdt_recovery.Session
module Consistency = Rdt_ccp.Consistency
module Ccp = Rdt_ccp.Ccp
module Runner = Rdt_core.Runner
module Sim_config = Rdt_core.Sim_config
module Prng = Rdt_sim.Prng

let snapshots_of_runner t n =
  Array.init n (fun pid -> Session.snapshot_of (Runner.middleware t pid))

let to_ccp_targets = List.map (fun (t : Tracking.target) -> { Ccp.pid = t.pid; index = t.index })

let run_no_gc case = Helpers.run_case ~gc:Sim_config.No_gc case

let test_figure_style_unit () =
  (* a small deterministic scripted run *)
  let s =
    Rdt_scenarios.Script.create ~n:3
      ~protocol:Rdt_protocols.Protocol.fdas ~with_lgc:false ()
  in
  let module Script = Rdt_scenarios.Script in
  Script.transfer s ~src:0 ~dst:1;
  Script.checkpoint s 0;
  Script.checkpoint s 1;
  Script.transfer s ~src:1 ~dst:2;
  Script.checkpoint s 2;
  let snaps =
    Array.init 3 (fun pid -> Session.snapshot_of (Script.middleware s pid))
  in
  let ccp = Script.ccp s in
  let target : Tracking.target = { pid = 1; index = 1 } in
  (match Tracking.max_consistent_containing snaps [ target ] with
  | None -> Alcotest.fail "max missing"
  | Some g ->
    Alcotest.(check (option (array int)))
      "max agrees with trace fixpoint"
      (Consistency.max_consistent_containing ccp (to_ccp_targets [ target ]))
      (Some g));
  match Tracking.min_consistent_containing snaps [ target ] with
  | None -> Alcotest.fail "min missing"
  | Some g ->
    Alcotest.(check (option (array int)))
      "min agrees with trace fixpoint"
      (Consistency.min_consistent_containing ccp (to_ccp_targets [ target ]))
      (Some g)

let test_inconsistent_targets_rejected () =
  let s =
    Rdt_scenarios.Script.create ~n:2
      ~protocol:Rdt_protocols.Protocol.fdas ~with_lgc:false ()
  in
  let module Script = Rdt_scenarios.Script in
  Script.transfer s ~src:0 ~dst:1;
  Script.checkpoint s 1;
  let snaps =
    Array.init 2 (fun pid -> Session.snapshot_of (Script.middleware s pid))
  in
  (* s0_p0 precedes s1_p1 *)
  Alcotest.(check bool) "pair is inconsistent" false
    (Tracking.consistent_pair snaps { pid = 0; index = 0 } { pid = 1; index = 1 });
  Alcotest.(check bool) "max rejects" true
    (Tracking.max_consistent_containing snaps
       [ { pid = 0; index = 0 }; { pid = 1; index = 1 } ]
    = None);
  Alcotest.(check bool) "min rejects" true
    (Tracking.min_consistent_containing snaps
       [ { pid = 0; index = 0 }; { pid = 1; index = 1 } ]
    = None)

let test_requires_complete_snapshots () =
  (* with RDT-LGC enabled, checkpoints are missing: the module refuses *)
  let t = Helpers.run_case ~gc:Sim_config.Local 4 in
  let n = (Runner.config t).Sim_config.n in
  let snaps = snapshots_of_runner t n in
  let snapshot_has_gap (s : Rdt_gc.Global_gc.snapshot) =
    let gap = ref false in
    Array.iteri
      (fun pos (e : Rdt_storage.Stable_store.entry) ->
        if e.index <> pos then gap := true)
      s.entries;
    !gap
  in
  let has_gap = Array.exists snapshot_has_gap snaps in
  if has_gap then
    Alcotest.(check bool) "rejected" true
      (try
         ignore
           (Tracking.max_consistent_containing snaps [ { pid = 0; index = 0 } ]);
         false
       with Invalid_argument _ -> true)

let random_targets rng ccp =
  let n = Ccp.n ccp in
  let count = 1 + Prng.int rng (min 3 n) in
  let pids = Array.init n Fun.id in
  Prng.shuffle rng pids;
  List.init count (fun i ->
      let pid = pids.(i) in
      {
        Tracking.pid;
        index = Prng.int rng (Ccp.volatile_index ccp pid + 1);
      })

let prop_closed_forms_match_fixpoints =
  QCheck.Test.make
    ~name:"Wang closed forms = trace lattice fixpoints (RDT executions)"
    ~count:25
    QCheck.(make ~print:string_of_int Gen.(int_bound 2_000))
    (fun case ->
      let t = run_no_gc case in
      let ccp = Runner.ccp t in
      let n = Ccp.n ccp in
      let snaps = snapshots_of_runner t n in
      let rng = Prng.create ~seed:(case * 31 + 5) in
      let ok = ref true in
      for _ = 1 to 5 do
        let targets = random_targets rng ccp in
        let ccp_targets = to_ccp_targets targets in
        let max_dv = Tracking.max_consistent_containing snaps targets in
        let max_tr = Consistency.max_consistent_containing ccp ccp_targets in
        let min_dv = Tracking.min_consistent_containing snaps targets in
        let min_tr = Consistency.min_consistent_containing ccp ccp_targets in
        (* the trace fixpoint returns None exactly when no consistent
           global checkpoint contains the targets; the DV closed form
           pre-filters on pairwise consistency, which under RDT is the
           same condition *)
        if max_dv <> max_tr || min_dv <> min_tr then ok := false
      done;
      !ok)

let archives_of_runner t n =
  ( Array.init n (fun pid ->
        Rdt_protocols.Middleware.archive (Runner.middleware t pid)),
    Array.init n (fun pid ->
        Rdt_causality.Dependency_vector.to_array
          (Rdt_protocols.Middleware.dv (Runner.middleware t pid))) )

let prop_archive_tracking_survives_gc =
  QCheck.Test.make
    ~name:"archived tracking works under RDT-LGC (matches trace fixpoints)"
    ~count:20
    QCheck.(make ~print:string_of_int Gen.(int_bound 2_000))
    (fun case ->
      (* with the collector running, snapshots have gaps but the DV
         archive does not *)
      let t = Helpers.run_case ~gc:Sim_config.Local case in
      let ccp = Runner.ccp t in
      let n = Ccp.n ccp in
      let archives, live_dvs = archives_of_runner t n in
      let rng = Prng.create ~seed:(case * 17 + 3) in
      let ok = ref true in
      for _ = 1 to 5 do
        let targets = random_targets rng ccp in
        let ccp_targets = to_ccp_targets targets in
        if
          Tracking.max_consistent_containing_archived ~archives ~live_dvs
            targets
          <> Consistency.max_consistent_containing ccp ccp_targets
          || Tracking.min_consistent_containing_archived ~archives ~live_dvs
               targets
             <> Consistency.min_consistent_containing ccp ccp_targets
        then ok := false
      done;
      !ok)

let test_archive_truncated_on_rollback () =
  let module Script = Rdt_scenarios.Script in
  let s =
    Script.create ~n:2 ~protocol:Rdt_protocols.Protocol.fdas ~with_lgc:false ()
  in
  Script.checkpoint s 0;
  Script.checkpoint s 0;
  let archive = Rdt_protocols.Middleware.archive (Script.middleware s 0) in
  Alcotest.(check int) "three vectors archived" 3
    (Rdt_storage.Dv_archive.count archive);
  Rdt_protocols.Middleware.rollback (Script.middleware s 0) ~to_index:1
    ~li:None;
  Alcotest.(check int) "rollback rewinds the archive" 2
    (Rdt_storage.Dv_archive.count archive);
  Alcotest.(check bool) "undone vector gone" true
    (Rdt_storage.Dv_archive.find archive ~index:2 = None)

let suite =
  [
    Alcotest.test_case "unit: scripted run" `Quick test_figure_style_unit;
    Alcotest.test_case "archive truncated on rollback" `Quick
      test_archive_truncated_on_rollback;
    QCheck_alcotest.to_alcotest prop_archive_tracking_survives_gc;
    Alcotest.test_case "inconsistent targets rejected" `Quick
      test_inconsistent_targets_rejected;
    Alcotest.test_case "requires complete snapshots" `Quick
      test_requires_complete_snapshots;
    QCheck_alcotest.to_alcotest prop_closed_forms_match_fixpoints;
  ]
