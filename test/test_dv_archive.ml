module A = Rdt_storage.Dv_archive

let test_record_and_find () =
  let a = A.create ~me:2 in
  Alcotest.(check int) "owner" 2 (A.me a);
  Alcotest.(check int) "empty" (-1) (A.last_index a);
  A.record a ~index:0 ~dv:[| 0; 0 |];
  A.record a ~index:1 ~dv:[| 1; 3 |];
  Alcotest.(check int) "count" 2 (A.count a);
  (match A.find a ~index:1 with
  | Some dv -> Alcotest.(check (array int)) "stored" [| 1; 3 |] dv
  | None -> Alcotest.fail "missing");
  Alcotest.(check bool) "absent" true (A.find a ~index:2 = None);
  Alcotest.(check bool) "negative" true (A.find a ~index:(-1) = None)

let test_record_copies () =
  let a = A.create ~me:0 in
  let dv = [| 7 |] in
  A.record a ~index:0 ~dv;
  dv.(0) <- 9;
  match A.find a ~index:0 with
  | Some stored -> Alcotest.(check int) "isolated" 7 stored.(0)
  | None -> Alcotest.fail "missing"

let test_record_out_of_order () =
  let a = A.create ~me:0 in
  A.record a ~index:0 ~dv:[| 0 |];
  Alcotest.(check bool) "gap rejected" true
    (try
       A.record a ~index:2 ~dv:[| 2 |];
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "duplicate rejected" true
    (try
       A.record a ~index:0 ~dv:[| 0 |];
       false
     with Invalid_argument _ -> true)

let test_truncate () =
  let a = A.create ~me:0 in
  for i = 0 to 4 do
    A.record a ~index:i ~dv:[| i |]
  done;
  A.truncate_above a ~index:2;
  Alcotest.(check int) "count" 3 (A.count a);
  Alcotest.(check int) "last" 2 (A.last_index a);
  (* recording continues from the rewound point *)
  A.record a ~index:3 ~dv:[| 33 |];
  match A.find a ~index:3 with
  | Some dv -> Alcotest.(check int) "overwritten" 33 dv.(0)
  | None -> Alcotest.fail "missing"

let test_truncate_noop () =
  let a = A.create ~me:0 in
  A.record a ~index:0 ~dv:[| 0 |];
  A.truncate_above a ~index:5;
  Alcotest.(check int) "unchanged" 1 (A.count a)

let test_empty_archive () =
  let a = A.create ~me:1 in
  Alcotest.(check int) "count" 0 (A.count a);
  Alcotest.(check int) "last index" (-1) (A.last_index a);
  Alcotest.(check bool) "find 0" true (A.find a ~index:0 = None);
  Alcotest.(check bool) "find negative" true (A.find a ~index:(-1) = None);
  (* truncating an empty archive is a no-op, not an error *)
  A.truncate_above a ~index:5;
  A.truncate_above a ~index:(-1);
  Alcotest.(check int) "still empty" 0 (A.count a);
  (* the first record must be s^0 — there is no gap to leave *)
  Alcotest.(check bool) "first record must be index 0" true
    (try
       A.record a ~index:1 ~dv:[| 0; 1 |];
       false
     with Invalid_argument _ -> true);
  A.record a ~index:0 ~dv:[| 0; 0 |];
  Alcotest.(check int) "recovers after rejection" 1 (A.count a)

let test_duplicate_after_truncate () =
  (* a duplicate insert is rejected even right after a truncation put the
     cursor back onto an existing index *)
  let a = A.create ~me:0 in
  for i = 0 to 3 do
    A.record a ~index:i ~dv:[| i |]
  done;
  A.truncate_above a ~index:1;
  Alcotest.(check bool) "duplicate of surviving index rejected" true
    (try
       A.record a ~index:1 ~dv:[| 99 |];
       false
     with Invalid_argument _ -> true);
  (* the failed insert must not have clobbered the archived vector *)
  match A.find a ~index:1 with
  | Some dv -> Alcotest.(check int) "vector intact" 1 dv.(0)
  | None -> Alcotest.fail "missing"

let test_archive_after_rollback () =
  (* drive a real middleware rollback: the archive rewinds with the store
     and the re-taken interval overwrites the undone history *)
  let trace = Rdt_ccp.Trace.create ~n:2 in
  let mw =
    Rdt_protocols.Middleware.create ~n:2 ~me:0
      ~protocol:Rdt_protocols.Protocol.fdas ~trace ()
  in
  for i = 1 to 4 do
    Rdt_protocols.Middleware.basic_checkpoint mw ~now:(float_of_int i)
  done;
  let a = Rdt_protocols.Middleware.archive mw in
  Alcotest.(check int) "before rollback" 5 (A.count a);
  Rdt_protocols.Middleware.rollback mw ~to_index:2 ~li:None;
  Alcotest.(check int) "archive rewound" 3 (A.count a);
  Alcotest.(check bool) "undone vectors forgotten" true
    (A.find a ~index:3 = None && A.find a ~index:4 = None);
  (* the next checkpoint re-records index 3 with the post-rollback DV *)
  Rdt_protocols.Middleware.basic_checkpoint mw ~now:9.0;
  (match A.find a ~index:3 with
  | Some dv -> Alcotest.(check int) "re-taken interval archived" 3 dv.(0)
  | None -> Alcotest.fail "re-taken checkpoint not archived");
  Alcotest.(check int) "last index" 3 (A.last_index a)

let test_archive_tracks_store () =
  (* the middleware archive always covers 0 .. last taken, even after
     collection removed checkpoints from the store *)
  let module Script = Rdt_scenarios.Script in
  let s =
    Script.create ~n:2 ~protocol:Rdt_protocols.Protocol.fdas ~with_lgc:true ()
  in
  for _ = 1 to 5 do
    Script.checkpoint s 0
  done;
  let mw = Script.middleware s 0 in
  let archive = Rdt_protocols.Middleware.archive mw in
  Alcotest.(check int) "archive complete" 6 (A.count archive);
  Alcotest.(check bool) "store collected" true
    (Rdt_storage.Stable_store.count (Rdt_protocols.Middleware.store mw) < 6)

let suite =
  [
    Alcotest.test_case "record and find" `Quick test_record_and_find;
    Alcotest.test_case "record copies" `Quick test_record_copies;
    Alcotest.test_case "out-of-order rejected" `Quick test_record_out_of_order;
    Alcotest.test_case "truncate" `Quick test_truncate;
    Alcotest.test_case "truncate noop" `Quick test_truncate_noop;
    Alcotest.test_case "empty archive" `Quick test_empty_archive;
    Alcotest.test_case "duplicate after truncate" `Quick
      test_duplicate_after_truncate;
    Alcotest.test_case "archive after rollback" `Quick
      test_archive_after_rollback;
    Alcotest.test_case "archive outlives collection" `Quick
      test_archive_tracks_store;
  ]
