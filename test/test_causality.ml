(* Vector clocks and dependency vectors: unit tests plus qcheck algebraic
   properties. *)

module VC = Rdt_causality.Vector_clock
module DV = Rdt_causality.Dependency_vector

let vc_of = VC.of_array

let test_vc_basics () =
  let c = VC.create ~n:3 in
  Alcotest.(check int) "initial zero" 0 (VC.get c 1);
  VC.tick c 1;
  VC.tick c 1;
  Alcotest.(check int) "ticked" 2 (VC.get c 1);
  Alcotest.(check int) "others untouched" 0 (VC.get c 0)

let test_vc_merge () =
  let a = vc_of [| 1; 5; 0 |] and b = vc_of [| 2; 3; 4 |] in
  VC.merge_into ~dst:a ~src:b;
  Alcotest.(check (list int)) "pointwise max" [ 2; 5; 4 ]
    (Array.to_list (VC.to_array a))

let test_vc_orders () =
  let a = vc_of [| 1; 2; 3 |]
  and b = vc_of [| 2; 2; 4 |]
  and c = vc_of [| 0; 9; 0 |] in
  Alcotest.(check bool) "a < b" true (VC.precedes a b);
  Alcotest.(check bool) "b not< a" false (VC.precedes b a);
  Alcotest.(check bool) "a || c" true (VC.concurrent a c);
  Alcotest.(check bool) "not self-precedes" false (VC.precedes a a)

let test_vc_size_mismatch () =
  let a = VC.create ~n:2 and b = VC.create ~n:3 in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Vector_clock.leq: size mismatch") (fun () ->
      ignore (VC.leq a b))

let test_dv_merge_reports_changes () =
  let dv = DV.of_array [| 3; 0; 2 |] in
  let changed = DV.merge_from_message dv [| 1; 4; 2 |] in
  Alcotest.(check (list int)) "only entry 1 rose" [ 1 ] changed;
  Alcotest.(check (list int)) "merged" [ 3; 4; 2 ]
    (Array.to_list (DV.to_array dv))

let test_dv_merge_multiple () =
  let dv = DV.of_array [| 0; 0; 0 |] in
  let changed = DV.merge_from_message dv [| 2; 0; 7 |] in
  Alcotest.(check (list int)) "entries 0 and 2" [ 0; 2 ] changed

let test_dv_newer_entries () =
  Alcotest.(check (list int)) "detects"
    [ 2 ]
    (DV.newer_entries ~local:[| 5; 5; 5 |] ~incoming:[| 5; 0; 6 |])

let test_dv_last_known () =
  let dv = DV.of_array [| 3; 0 |] in
  Alcotest.(check int) "known" 2 (DV.last_known dv 0);
  Alcotest.(check int) "unknown is -1" (-1) (DV.last_known dv 1)

let test_dv_checkpoint_precedes () =
  (* Equation 2: c^alpha_a -> c iff alpha < DV(c).(a) *)
  let dv_c = DV.of_array [| 2; 1; 0 |] in
  Alcotest.(check bool) "alpha=1 < 2" true
    (DV.checkpoint_precedes ~index:1 ~of_:0 dv_c);
  Alcotest.(check bool) "alpha=2 not<" false
    (DV.checkpoint_precedes ~index:2 ~of_:0 dv_c)

let test_dv_inplace_arity () =
  let a = DV.create ~n:2 and b = DV.create ~n:3 in
  Alcotest.check_raises "max_into"
    (Invalid_argument "Dependency_vector.max_into: size mismatch") (fun () ->
      DV.max_into ~src:a ~dst:b);
  Alcotest.check_raises "blit_into"
    (Invalid_argument "Dependency_vector.blit_into: size mismatch") (fun () ->
      DV.blit_into ~src:a ~dst:b);
  Alcotest.check_raises "compare_le"
    (Invalid_argument "Dependency_vector.compare_le: size mismatch") (fun () ->
      ignore (DV.compare_le a b))

(* --- qcheck properties ------------------------------------------------ *)

let gen_vc n = QCheck.Gen.(array_size (return n) (int_bound 20))

let arb_vc_pair =
  QCheck.make
    QCheck.Gen.(pair (gen_vc 4) (gen_vc 4))
    ~print:(fun (a, b) ->
      Printf.sprintf "(%s, %s)"
        (String.concat "," (List.map string_of_int (Array.to_list a)))
        (String.concat "," (List.map string_of_int (Array.to_list b))))

let prop_merge_commutative =
  QCheck.Test.make ~name:"vc merge commutative" ~count:300 arb_vc_pair
    (fun (a, b) ->
      let x = vc_of a and y = vc_of b in
      VC.merge_into ~dst:x ~src:(vc_of b);
      VC.merge_into ~dst:y ~src:(vc_of a);
      VC.equal x y)

let prop_merge_upper_bound =
  QCheck.Test.make ~name:"vc merge is an upper bound" ~count:300 arb_vc_pair
    (fun (a, b) ->
      let m = vc_of a in
      VC.merge_into ~dst:m ~src:(vc_of b);
      VC.leq (vc_of a) m && VC.leq (vc_of b) m)

let prop_leq_antisym =
  QCheck.Test.make ~name:"vc leq antisymmetric" ~count:300 arb_vc_pair
    (fun (a, b) ->
      let x = vc_of a and y = vc_of b in
      (not (VC.leq x y && VC.leq y x)) || VC.equal x y)

let prop_order_trichotomy =
  QCheck.Test.make ~name:"vc precedes/concurrent partition" ~count:300
    arb_vc_pair (fun (a, b) ->
      let x = vc_of a and y = vc_of b in
      let cases =
        [ VC.precedes x y; VC.precedes y x; VC.concurrent x y; VC.equal x y ]
      in
      List.length (List.filter Fun.id cases) = 1)

let prop_dv_merge_idempotent =
  QCheck.Test.make ~name:"dv merge idempotent" ~count:300 arb_vc_pair
    (fun (a, b) ->
      let dv = DV.of_array a in
      ignore (DV.merge_from_message dv b);
      DV.merge_from_message dv b = [])

(* equivalence of the in-place, no-alloc variants (DESIGN.md §10) with
   the copying reference semantics, over random vectors *)

let prop_max_into_is_pointwise_max =
  QCheck.Test.make ~name:"max_into = pointwise max" ~count:300 arb_vc_pair
    (fun (a, b) ->
      let dst = DV.of_array a in
      DV.max_into ~src:(DV.of_array b) ~dst;
      DV.to_array dst = Array.map2 max a b)

let prop_blit_into_is_copy =
  QCheck.Test.make ~name:"blit_into = copy" ~count:300 arb_vc_pair
    (fun (a, b) ->
      let dst = DV.of_array a in
      DV.blit_into ~src:(DV.of_array b) ~dst;
      DV.to_array dst = b)

let prop_compare_le_is_componentwise =
  QCheck.Test.make ~name:"compare_le = componentwise <=" ~count:300
    arb_vc_pair (fun (a, b) ->
      DV.compare_le (DV.of_array a) (DV.of_array b)
      = Array.for_all2 (fun x y -> x <= y) a b)

let prop_max_into_matches_merge =
  QCheck.Test.make ~name:"max_into = merge_from_message (sans report)"
    ~count:300 arb_vc_pair (fun (a, b) ->
      let via_merge = DV.of_array a in
      ignore (DV.merge_from_message via_merge b);
      let via_max = DV.of_array a in
      DV.max_into ~src:(DV.of_view b) ~dst:via_max;
      DV.equal via_merge via_max)

let prop_view_roundtrip =
  QCheck.Test.make ~name:"view/of_view alias without copying" ~count:300
    arb_vc_pair (fun (a, _) ->
      let dv = DV.of_array a in
      let v = DV.view dv in
      (* the view aliases the live vector: a mutation is visible through it *)
      DV.set dv 0 (DV.get dv 0 + 1);
      v.(0) = a.(0) + 1 && DV.equal (DV.of_view v) dv)

let prop_iteri_enumerates =
  QCheck.Test.make ~name:"iteri enumerates all entries in order" ~count:300
    arb_vc_pair (fun (a, _) ->
      let seen = ref [] in
      DV.iteri (DV.of_array a) ~f:(fun j v -> seen := (j, v) :: !seen);
      List.rev !seen = List.mapi (fun j v -> (j, v)) (Array.to_list a))

let qcheck_suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_merge_commutative;
      prop_merge_upper_bound;
      prop_leq_antisym;
      prop_order_trichotomy;
      prop_dv_merge_idempotent;
      prop_max_into_is_pointwise_max;
      prop_blit_into_is_copy;
      prop_compare_le_is_componentwise;
      prop_max_into_matches_merge;
      prop_view_roundtrip;
      prop_iteri_enumerates;
    ]

let suite =
  [
    Alcotest.test_case "vc basics" `Quick test_vc_basics;
    Alcotest.test_case "vc merge" `Quick test_vc_merge;
    Alcotest.test_case "vc orders" `Quick test_vc_orders;
    Alcotest.test_case "vc size mismatch" `Quick test_vc_size_mismatch;
    Alcotest.test_case "dv merge reports changes" `Quick
      test_dv_merge_reports_changes;
    Alcotest.test_case "dv merge multiple" `Quick test_dv_merge_multiple;
    Alcotest.test_case "dv newer entries" `Quick test_dv_newer_entries;
    Alcotest.test_case "dv last known" `Quick test_dv_last_known;
    Alcotest.test_case "dv checkpoint precedes (eq 2)" `Quick
      test_dv_checkpoint_precedes;
    Alcotest.test_case "dv in-place ops check arity" `Quick
      test_dv_inplace_arity;
  ]
  @ qcheck_suite
