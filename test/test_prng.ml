module Prng = Rdt_sim.Prng

let test_deterministic () =
  let a = Prng.create ~seed:42 and b = Prng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.check Alcotest.int64 "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Prng.bits64 a <> Prng.bits64 b then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_split_independence () =
  let a = Prng.create ~seed:7 in
  let child = Prng.split a in
  (* drawing from the child must not change the parent's future *)
  let b = Prng.create ~seed:7 in
  let _ = Prng.split b in
  let _ = Prng.bits64 child in
  Alcotest.check Alcotest.int64 "parent unaffected by child draws"
    (Prng.bits64 a) (Prng.bits64 b)

let test_int_range () =
  let t = Prng.create ~seed:3 in
  for _ = 1 to 1000 do
    let v = Prng.int t 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of range: %d" v
  done

let test_int_bad_bound () =
  let t = Prng.create ~seed:3 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int t 0))

let test_int_covers_values () =
  let t = Prng.create ~seed:5 in
  let seen = Array.make 4 false in
  for _ = 1 to 200 do
    seen.(Prng.int t 4) <- true
  done;
  Alcotest.(check bool) "all residues hit" true (Array.for_all Fun.id seen)

let test_float_range () =
  let t = Prng.create ~seed:11 in
  for _ = 1 to 1000 do
    let v = Prng.float t 2.5 in
    if v < 0.0 || v >= 2.5 then Alcotest.failf "out of range: %f" v
  done

let test_float_mean () =
  let t = Prng.create ~seed:13 in
  let sum = ref 0.0 in
  let n = 20_000 in
  for _ = 1 to n do
    sum := !sum +. Prng.float t 1.0
  done;
  let mean = !sum /. float_of_int n in
  if Float.abs (mean -. 0.5) > 0.02 then
    Alcotest.failf "uniform mean drifted: %f" mean

let test_bernoulli () =
  let t = Prng.create ~seed:17 in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Prng.bernoulli t ~p:0.25 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  if Float.abs (rate -. 0.25) > 0.02 then
    Alcotest.failf "bernoulli rate drifted: %f" rate

let test_exponential_mean () =
  let t = Prng.create ~seed:19 in
  let sum = ref 0.0 in
  let n = 50_000 in
  for _ = 1 to n do
    let v = Prng.exponential t ~mean:3.0 in
    if v < 0.0 then Alcotest.fail "negative exponential";
    sum := !sum +. v
  done;
  let mean = !sum /. float_of_int n in
  if Float.abs (mean -. 3.0) > 0.1 then
    Alcotest.failf "exponential mean drifted: %f" mean

let test_uniform_in () =
  let t = Prng.create ~seed:23 in
  for _ = 1 to 1000 do
    let v = Prng.uniform_in t ~lo:1.5 ~hi:2.0 in
    if v < 1.5 || v >= 2.0 then Alcotest.failf "out of range: %f" v
  done

let test_pick () =
  let t = Prng.create ~seed:29 in
  let arr = [| "a"; "b"; "c" |] in
  for _ = 1 to 100 do
    let v = Prng.pick t arr in
    Alcotest.(check bool) "member" true (Array.mem v arr)
  done

let test_shuffle_permutation () =
  let t = Prng.create ~seed:31 in
  let arr = Array.init 20 Fun.id in
  Prng.shuffle t arr;
  Alcotest.(check (list int)) "same multiset" (List.init 20 Fun.id)
    (List.sort compare (Array.to_list arr))

(* --- indexed split ----------------------------------------------------- *)

let test_split_at_pure () =
  (* splitting is a pure function of (state, index): it does not advance
     the parent, and repeated splits agree *)
  let t = Prng.create ~seed:37 in
  let a = Prng.split_at t ~index:3 in
  let b = Prng.split_at t ~index:3 in
  let xa = Prng.bits64 a and xb = Prng.bits64 b in
  Alcotest.(check int64) "same child stream" xa xb;
  let t' = Prng.create ~seed:37 in
  Alcotest.(check int64) "parent not advanced" (Prng.bits64 t')
    (Prng.bits64 t)

let test_split_at_disjoint () =
  (* children at different indices, and the parent, produce pairwise
     different prefixes (probabilistic, but deterministic given the seed) *)
  let t = Prng.create ~seed:41 in
  let prefix rng = List.init 4 (fun _ -> Prng.bits64 rng) in
  let streams =
    List.init 8 (fun i -> prefix (Prng.split_at t ~index:i))
    @ [ prefix t ]
  in
  let rec pairwise_distinct = function
    | [] -> true
    | x :: rest -> (not (List.mem x rest)) && pairwise_distinct rest
  in
  Alcotest.(check bool) "prefixes pairwise distinct" true
    (pairwise_distinct streams)

let test_split_at_stable () =
  (* golden values: the per-index derivation is part of the determinism
     contract (committed traces depend on it), so a change must be loud *)
  let t = Prng.create ~seed:1 in
  let child i = Prng.bits64 (Prng.split_at t ~index:i) in
  let got = List.init 3 child in
  let again = List.init 3 child in
  Alcotest.(check bool) "derivation is stable" true (got = again);
  Alcotest.(check (list int64))
    "derivation matches the committed goldens"
    [ 0x9a8c65aab0c3f7aaL; 0x7afb4367e360673fL; 0x8681f71e0a9402e3L ]
    got

let test_split_at_negative () =
  let t = Prng.create ~seed:1 in
  Alcotest.check_raises "negative index"
    (Invalid_argument "Prng.split_at: index must be non-negative") (fun () ->
      ignore (Prng.split_at t ~index:(-1)))

let suite =
  [
    Alcotest.test_case "deterministic streams" `Quick test_deterministic;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "split independence" `Quick test_split_independence;
    Alcotest.test_case "int range" `Quick test_int_range;
    Alcotest.test_case "int bad bound" `Quick test_int_bad_bound;
    Alcotest.test_case "int covers values" `Quick test_int_covers_values;
    Alcotest.test_case "float range" `Quick test_float_range;
    Alcotest.test_case "float mean" `Quick test_float_mean;
    Alcotest.test_case "bernoulli rate" `Quick test_bernoulli;
    Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
    Alcotest.test_case "uniform_in range" `Quick test_uniform_in;
    Alcotest.test_case "pick membership" `Quick test_pick;
    Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutation;
    Alcotest.test_case "split_at is pure" `Quick test_split_at_pure;
    Alcotest.test_case "split_at streams disjoint" `Quick
      test_split_at_disjoint;
    Alcotest.test_case "split_at derivation stable" `Quick
      test_split_at_stable;
    Alcotest.test_case "split_at rejects negative index" `Quick
      test_split_at_negative;
  ]
