let () =
  Alcotest.run "rdtgc"
    [
      ("prng", Test_prng.suite);
      ("event-queue", Test_event_queue.suite);
      ("engine", Test_engine.suite);
      ("causality", Test_causality.suite);
      ("trace-ccp", Test_trace_ccp.suite);
      ("zigzag", Test_zigzag.suite);
      ("rdt-check", Test_rdt_check.suite);
      ("consistency", Test_consistency.suite);
      ("storage", Test_storage.suite);
      ("store", Test_store.suite);
      ("dv-archive", Test_dv_archive.suite);
      ("protocols", Test_protocols.suite);
      ("rdt-lgc", Test_rdt_lgc.suite);
      ("merged-fdas", Test_merged_fdas.suite);
      ("global-gc", Test_global_gc.suite);
      ("recovery", Test_recovery.suite);
      ("tracking", Test_tracking.suite);
      ("theorems", Test_theorems.suite);
      ("runner", Test_runner.suite);
      ("workload", Test_workload.suite);
      ("metrics", Test_metrics.suite);
      ("ccp-incremental", Test_ccp_incremental.suite);
      ("parallel", Test_parallel.suite);
      ("engine-alloc", Test_engine_alloc.suite);
      ("edge-cases", Test_edge_cases.suite);
      ("fuzz", Test_fuzz.suite);
      ("shards", Test_shards.suite);
      ("lint", Test_lint.suite);
      ("wire", Test_wire.suite);
      ("nemesis", Test_nemesis.suite);
      ("live", Test_live.suite);
    ]
