(* The log-structured durable checkpoint store (lib/store): framing,
   recovery scans, GC-driven compaction, fault injection, and the
   end-to-end acceptance properties of the durable Runner backend. *)

module S = Rdt_storage.Stable_store
module Crc32 = Rdt_store.Crc32
module Record = Rdt_store.Record
module Segment = Rdt_store.Segment
module Manifest = Rdt_store.Manifest
module Fault = Rdt_store.Fault
module Log_store = Rdt_store.Log_store
module Prng = Rdt_sim.Prng
module Runner = Rdt_core.Runner
module Sim_config = Rdt_core.Sim_config

let tmp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "rdt_store_test_%d_%d" (Unix.getpid ()) !counter)

let rm_rf dir =
  let rec go path =
    if Sys.is_directory path then begin
      Array.iter (fun f -> go (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  if Sys.file_exists dir then go dir

let mk_entry ?(dv = [| 1; 2; 3 |]) ?(size_bytes = 24) ?(payload = 4242) index =
  {
    S.index;
    dv;
    taken_at = 1.5 +. float_of_int index;
    size_bytes;
    payload = payload + index;
  }

let entry_eq (a : S.entry) (b : S.entry) =
  a.S.index = b.S.index && a.S.dv = b.S.dv
  && a.S.taken_at = b.S.taken_at
  && a.S.size_bytes = b.S.size_bytes
  && a.S.payload = b.S.payload

let entries_eq a b = List.length a = List.length b && List.for_all2 entry_eq a b

(* flip one bit of [path] at byte [offset] *)
let flip_byte path offset =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  ignore (Unix.lseek fd offset Unix.SEEK_SET);
  let b = Bytes.create 1 in
  ignore (Unix.read fd b 0 1);
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x10));
  ignore (Unix.lseek fd offset Unix.SEEK_SET);
  ignore (Unix.write fd b 0 1);
  Unix.close fd

(* --- CRC-32 ------------------------------------------------------------- *)

let test_crc32_vectors () =
  (* the standard IEEE 802.3 check value *)
  Alcotest.(check int32) "123456789" 0xCBF43926l (Crc32.string "123456789");
  Alcotest.(check int32) "empty" 0l (Crc32.string "")

let test_crc32_window () =
  let b = Bytes.of_string "xx123456789yy" in
  Alcotest.(check int32) "windowed = string" (Crc32.string "123456789")
    (Crc32.bytes b ~pos:2 ~len:9);
  (* sensitivity: changing any byte must change the checksum *)
  let base = Crc32.bytes b ~pos:2 ~len:9 in
  Bytes.set b 5 'X';
  Alcotest.(check bool) "byte change detected" true
    (Crc32.bytes b ~pos:2 ~len:9 <> base)

(* --- record encoding ---------------------------------------------------- *)

let test_record_roundtrip () =
  let roundtrip r =
    match Record.decode (Record.encode r) with
    | Ok r' -> r'
    | Error e -> Alcotest.failf "decode failed: %s" e
  in
  let entry = mk_entry ~dv:[| 4; 0; 7; 2 |] ~size_bytes:33 5 in
  (match roundtrip (Record.Store { pid = 2; lsn = 41; entry }) with
  | Record.Store { pid; lsn; entry = e } ->
    Alcotest.(check int) "pid" 2 pid;
    Alcotest.(check int) "lsn" 41 lsn;
    Alcotest.(check bool) "entry" true (entry_eq entry e)
  | _ -> Alcotest.fail "wrong kind");
  (match roundtrip (Record.Eliminate { pid = 1; lsn = 9; index = 3 }) with
  | Record.Eliminate { pid = 1; lsn = 9; index = 3 } -> ()
  | _ -> Alcotest.fail "eliminate roundtrip");
  match roundtrip (Record.Truncate_above { pid = 0; lsn = 77; index = 12 }) with
  | Record.Truncate_above { pid = 0; lsn = 77; index = 12 } -> ()
  | _ -> Alcotest.fail "truncate roundtrip"

let test_record_decode_garbage () =
  Alcotest.(check bool) "empty rejected" true
    (Result.is_error (Record.decode (Bytes.create 0)));
  Alcotest.(check bool) "bad kind rejected" true
    (Result.is_error (Record.decode (Bytes.make 40 '\xff')));
  let whole =
    Record.encode (Record.Store { pid = 0; lsn = 1; entry = mk_entry 0 })
  in
  Alcotest.(check bool) "truncated rejected" true
    (Result.is_error (Record.decode (Bytes.sub whole 0 (Bytes.length whole - 3))))

(* --- segments ----------------------------------------------------------- *)

let seg_records =
  List.map
    (fun i -> Record.Store { pid = 0; lsn = i; entry = mk_entry i })
    [ 0; 1; 2 ]

let write_segment path records =
  let w = Segment.create_writer ~path in
  List.iter (fun r -> Segment.append w (Record.encode r)) records;
  Segment.close ~sync:true w

let scan_lsns path =
  let got = ref [] in
  let stats =
    Segment.scan ~path ~f:(fun ~frame_bytes:_ r -> got := Record.lsn r :: !got)
  in
  (List.rev !got, stats)

let test_segment_roundtrip () =
  let path = Filename.temp_file "rdtseg" ".log" in
  write_segment path seg_records;
  let lsns, stats = scan_lsns path in
  Alcotest.(check (list int)) "all records" [ 0; 1; 2 ] lsns;
  Alcotest.(check int) "none dropped" 0 stats.Segment.dropped;
  Alcotest.(check int) "no torn bytes" 0 stats.Segment.torn_bytes;
  Alcotest.(check bool) "magic ok" false stats.Segment.bad_magic;
  Sys.remove path

let test_segment_torn_tail () =
  let path = Filename.temp_file "rdtseg" ".log" in
  write_segment path seg_records;
  (* chop the file mid-way through the last frame *)
  let size = (Unix.stat path).Unix.st_size in
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Unix.ftruncate fd (size - 5);
  Unix.close fd;
  let lsns, stats = scan_lsns path in
  Alcotest.(check (list int)) "prefix survives" [ 0; 1 ] lsns;
  Alcotest.(check bool) "tail reported torn" true (stats.Segment.torn_bytes > 0);
  Alcotest.(check int) "nothing dropped" 0 stats.Segment.dropped;
  Sys.remove path

let test_segment_corrupt_record_skipped () =
  (* acceptance (c), segment level: a CRC-rejected record is dropped
     without discarding its neighbours *)
  let path = Filename.temp_file "rdtseg" ".log" in
  write_segment path seg_records;
  let frame =
    Bytes.length (Record.encode (List.nth seg_records 0))
    + Segment.frame_overhead
  in
  (* a payload byte inside the *second* frame (8 = segment magic) *)
  flip_byte path (8 + frame + Segment.frame_overhead + 3);
  let lsns, stats = scan_lsns path in
  Alcotest.(check (list int)) "neighbours survive" [ 0; 2 ] lsns;
  Alcotest.(check int) "one dropped" 1 stats.Segment.dropped;
  Sys.remove path

let test_segment_bad_magic () =
  let path = Filename.temp_file "rdtseg" ".log" in
  let oc = open_out_bin path in
  output_string oc "NOTASEGMENTFILE!";
  close_out oc;
  let lsns, stats = scan_lsns path in
  Alcotest.(check (list int)) "nothing delivered" [] lsns;
  Alcotest.(check bool) "flagged" true stats.Segment.bad_magic;
  Sys.remove path

(* --- manifest ----------------------------------------------------------- *)

let test_manifest_roundtrip () =
  let dir = tmp_dir () in
  Unix.mkdir dir 0o755;
  let m =
    {
      Manifest.segments = [ 0; 3; 7 ];
      compactions = 2;
      bytes_reclaimed = 9001;
      appended_records = 123;
    }
  in
  Manifest.write ~dir m;
  (match Manifest.read ~dir with
  | Some m' -> Alcotest.(check bool) "roundtrip" true (m = m')
  | None -> Alcotest.fail "manifest unreadable");
  (* corrupt it: read must fall back to None, not crash *)
  let path = Filename.concat dir Manifest.file_name in
  let oc = open_out_bin path in
  output_string oc "rdt-store-manifest v1\ngarbage\n";
  close_out oc;
  Alcotest.(check bool) "corrupt rejected" true (Manifest.read ~dir = None);
  Sys.remove path;
  Alcotest.(check bool) "missing is None" true (Manifest.read ~dir = None);
  rm_rf dir

(* --- log store ---------------------------------------------------------- *)

let no_auto = { Log_store.default_config with Log_store.auto_compact = false }

let test_log_store_ops () =
  let dir = tmp_dir () in
  let t = Log_store.create ~config:no_auto ~pid:0 ~dir () in
  List.iter (fun i -> Log_store.append t (mk_entry i)) [ 0; 1; 2; 3; 4 ];
  Alcotest.(check int) "live" 5 (Log_store.live_count t);
  Log_store.eliminate t ~index:1;
  Log_store.eliminate t ~index:3;
  Alcotest.(check (list int)) "live indices" [ 0; 2; 4 ] (Log_store.live_indices t);
  Log_store.truncate_above t ~index:2;
  Alcotest.(check (list int)) "after truncate" [ 0; 2 ] (Log_store.live_indices t);
  (* a truncated index can be stored again (rollback then new s^3) *)
  Log_store.append t (mk_entry ~payload:9000 3);
  Alcotest.(check (list int)) "re-stored" [ 0; 2; 3 ] (Log_store.live_indices t);
  let stats = Log_store.stats t in
  Alcotest.(check int) "appended counts tombstones" 9 stats.Log_store.appended_records;
  Alcotest.(check bool) "dead bytes tracked" true (stats.Log_store.dead_bytes > 0);
  Log_store.close t;
  rm_rf dir

let test_log_store_recovery () =
  let dir = tmp_dir () in
  let t = Log_store.create ~config:no_auto ~pid:3 ~dir () in
  List.iter (fun i -> Log_store.append t (mk_entry ~dv:[| i; 0; i |] i)) [ 0; 1; 2 ];
  Log_store.eliminate t ~index:0;
  let live = Log_store.live_entries t in
  Log_store.close t;
  let t2 = Log_store.create ~config:no_auto ~pid:3 ~dir () in
  let r = Log_store.recovery t2 in
  Alcotest.(check bool) "entries survive byte-exactly" true
    (entries_eq live r.Log_store.recovered);
  Alcotest.(check int) "nothing dropped" 0 r.Log_store.records_dropped;
  Alcotest.(check int) "no torn bytes" 0 r.Log_store.torn_bytes;
  (* counters carry over through the manifest *)
  Alcotest.(check int) "appended carried" 4
    (Log_store.stats t2).Log_store.appended_records;
  (* mutations continue where the history left off *)
  Log_store.append t2 (mk_entry 3);
  Alcotest.(check (list int)) "continues" [ 1; 2; 3 ] (Log_store.live_indices t2);
  Log_store.close t2;
  rm_rf dir

let test_log_store_compaction () =
  let dir = tmp_dir () in
  let t = Log_store.create ~config:no_auto ~pid:0 ~dir () in
  for i = 0 to 19 do
    Log_store.append t (mk_entry ~size_bytes:128 i);
    if i >= 2 then Log_store.eliminate t ~index:(i - 2)
  done;
  let before = (Log_store.stats t).Log_store.disk_bytes in
  let live = Log_store.live_entries t in
  Log_store.compact t;
  let s = Log_store.stats t in
  Alcotest.(check bool) "disk shrank" true (s.Log_store.disk_bytes < before);
  Alcotest.(check int) "one compaction" 1 s.Log_store.compactions;
  Alcotest.(check bool) "reclaimed counted" true (s.Log_store.bytes_reclaimed > 0);
  Alcotest.(check bool) "live set intact" true
    (entries_eq live (Log_store.live_entries t));
  Log_store.close t;
  (* the rewritten store recovers to the same live set *)
  let t2 = Log_store.create ~config:no_auto ~pid:0 ~dir () in
  Alcotest.(check bool) "recovers post-compaction" true
    (entries_eq live (Log_store.recovery t2).Log_store.recovered);
  Alcotest.(check int) "compaction counter durable" 1
    (Log_store.stats t2).Log_store.compactions;
  Log_store.close t2;
  rm_rf dir

let test_log_store_auto_compaction () =
  (* every elimination re-evaluates the dead ratio (the RDT-LGC
     notification path): garbage must be reclaimed without any explicit
     compact call *)
  let dir = tmp_dir () in
  let config =
    {
      Log_store.default_config with
      Log_store.compact_min_dead_bytes = 512;
      auto_compact = true;
    }
  in
  let t = Log_store.create ~config ~pid:0 ~dir () in
  for i = 0 to 49 do
    Log_store.append t (mk_entry ~size_bytes:64 i);
    if i >= 3 then Log_store.eliminate t ~index:(i - 3)
  done;
  let s = Log_store.stats t in
  Alcotest.(check bool) "auto-compacted" true (s.Log_store.compactions > 0);
  Alcotest.(check bool) "garbage bounded" true
    (s.Log_store.dead_bytes < 4 * 1024);
  Alcotest.(check (list int)) "live set correct" [ 47; 48; 49 ]
    (Log_store.live_indices t);
  Log_store.close t;
  rm_rf dir

let test_log_store_corrupt_record () =
  (* acceptance (c), store level: a deliberately corrupted record is
     rejected by the CRC scan without aborting recovery *)
  let dir = tmp_dir () in
  let t = Log_store.create ~config:no_auto ~pid:0 ~dir () in
  (* identical shapes => identical frame sizes, so offsets are computable *)
  List.iter (fun i -> Log_store.append t (mk_entry i)) [ 0; 1; 2; 3; 4 ];
  let frame =
    Bytes.length (Record.encode (Record.Store { pid = 0; lsn = 0; entry = mk_entry 0 }))
    + Segment.frame_overhead
  in
  Log_store.close t;
  let seg =
    Sys.readdir dir |> Array.to_list
    |> List.find (fun f -> Filename.check_suffix f ".log")
  in
  (* corrupt a payload byte of the third record *)
  flip_byte (Filename.concat dir seg) (8 + (2 * frame) + Segment.frame_overhead + 3);
  let t2 = Log_store.create ~config:no_auto ~pid:0 ~dir () in
  let r = Log_store.recovery t2 in
  Alcotest.(check int) "exactly one dropped" 1 r.Log_store.records_dropped;
  Alcotest.(check (list int)) "neighbours survive" [ 0; 1; 3; 4 ]
    (Log_store.live_indices t2);
  Log_store.close t2;
  rm_rf dir

let test_log_store_open_is_readonly () =
  let dir = tmp_dir () in
  let t = Log_store.create ~config:no_auto ~pid:0 ~dir () in
  List.iter (fun i -> Log_store.append t (mk_entry i)) [ 0; 1; 2 ];
  Log_store.close t;
  let mtimes () =
    Sys.readdir dir |> Array.to_list |> List.sort compare
    |> List.map (fun f ->
           let st = Unix.stat (Filename.concat dir f) in
           (f, st.Unix.st_size))
  in
  let before = mtimes () in
  (* a pure inspection (store-stats) must leave the directory untouched *)
  let ro = Log_store.create ~config:no_auto ~pid:0 ~dir () in
  ignore (Log_store.stats ro);
  Log_store.close ro;
  Alcotest.(check bool) "no bytes written" true (before = mtimes ());
  rm_rf dir

(* --- injected crashes --------------------------------------------------- *)

(* Drive a store with fsync-per-record until the armed fault fires; with
   [Always] the durable prefix is sharp: exactly ops 1..F-1 survive. *)
let crash_at_op kind op =
  let dir = tmp_dir () in
  let config = { no_auto with Log_store.fsync = Log_store.Always } in
  let faults = Fault.at_op ~op ~kind ~rng:(Prng.create ~seed:99) in
  let t = Log_store.create ~config ~faults ~pid:0 ~dir () in
  (* op sequence: appends 0,1,2,... with an eliminate interleaved *)
  let history = ref [ [] ] in
  let crashed = ref false in
  (try
     let i = ref 0 in
     while not !crashed do
       (match !i mod 3 with
       | 2 -> Log_store.eliminate t ~index:(Log_store.live_indices t |> List.hd)
       | _ ->
         let idx = match Log_store.live_indices t with
           | [] -> 0
           | l -> List.fold_left max 0 l + 1
         in
         Log_store.append t (mk_entry idx));
       history := Log_store.live_indices t :: !history;
       incr i
     done
   with Fault.Injected_crash { op = fired; kind = k } ->
     crashed := true;
     Alcotest.(check int) "fired at the armed op" op fired;
     Alcotest.(check string) "right kind" (Fault.kind_name kind) (Fault.kind_name k));
  Alcotest.(check bool) "fault fired" true !crashed;
  (* the poisoned instance rejects further use *)
  Alcotest.(check bool) "poisoned" true
    (try
       Log_store.append t (mk_entry 999);
       false
     with Invalid_argument _ -> true);
  (* recovery: exactly ops 1..op-1 (history.(0) is pre-crash state after
     op-1 completed ops; the op that crashed was never acknowledged) *)
  let t2 = Log_store.create ~config:no_auto ~pid:0 ~dir () in
  let expected = List.nth !history 0 in
  Alcotest.(check (list int))
    (Printf.sprintf "durable prefix after %s" (Fault.kind_name kind))
    expected (Log_store.live_indices t2);
  Log_store.close t2;
  rm_rf dir

let test_crash_short_write () = crash_at_op Fault.Short_write 7
let test_crash_before_sync () = crash_at_op Fault.Crash_before_sync 5

let test_crash_bit_flip () =
  (* a flipped bit may knock out any one already-written record; recovery
     must still complete and return intact records only *)
  let dir = tmp_dir () in
  let config = { no_auto with Log_store.fsync = Log_store.Always } in
  let faults = Fault.at_op ~op:6 ~kind:Fault.Bit_flip ~rng:(Prng.create ~seed:5) in
  let t = Log_store.create ~config ~faults ~pid:0 ~dir () in
  let appended = ref [] in
  (try
     for i = 0 to 9 do
       let e = mk_entry i in
       appended := e :: !appended;
       Log_store.append t e
     done
   with Fault.Injected_crash _ -> ());
  let t2 = Log_store.create ~config:no_auto ~pid:0 ~dir () in
  let r = Log_store.recovery t2 in
  Alcotest.(check bool) "recovery completes with survivors" true
    (List.length r.Log_store.recovered > 0);
  List.iter
    (fun (e : S.entry) ->
      match List.find_opt (fun a -> entry_eq a e) !appended with
      | Some _ -> ()
      | None -> Alcotest.failf "recovered entry %d was never appended" e.S.index)
    r.Log_store.recovered;
  Log_store.close t2;
  rm_rf dir

let test_fault_of_seed_deterministic () =
  let plan seed = Fault.of_seed ~seed ~max_op:20 in
  let fire p =
    let t = Log_store.create ~faults:p ~pid:0 ~dir:(tmp_dir ()) () in
    let result =
      try
        for i = 0 to 24 do
          Log_store.append t (mk_entry i)
        done;
        None
      with Fault.Injected_crash { op; kind } -> Some (op, kind)
    in
    rm_rf (Log_store.dir t);
    result
  in
  (match (fire (plan 7), fire (plan 7)) with
  | Some a, Some b -> Alcotest.(check bool) "same seed, same fault" true (a = b)
  | _ -> Alcotest.fail "seeded plan must fire within max_op");
  Alcotest.(check bool) "none never fires" true (fire Fault.none = None)

(* --- end-to-end through the runner -------------------------------------- *)

let durable_cfg ~dir ~n ~seed ~duration ~faults =
  {
    Sim_config.default with
    Sim_config.n;
    seed;
    duration;
    faults;
    ckpt_bytes = 48;
    store =
      Sim_config.Durable
        {
          dir;
          config =
            {
              Log_store.default_config with
              Log_store.compact_min_dead_bytes = 1024;
            };
        };
  }

let test_runner_durable_bound () =
  (* acceptance (a): with RDT-LGC driving compaction, the per-process
     on-disk live checkpoint count never exceeds n+1 — the paper's
     Theorem 3 bound materialized on disk *)
  let dir = tmp_dir () in
  let cfg = durable_cfg ~dir ~n:4 ~seed:11 ~duration:80.0 ~faults:[] in
  let t = Runner.create cfg in
  let violations = ref 0 in
  Runner.set_on_sample t (fun t ->
      for pid = 0 to 3 do
        match Runner.log_store t pid with
        | Some ls -> if Log_store.live_count ls > 5 then incr violations
        | None -> Alcotest.fail "expected a durable backend"
      done);
  Runner.run t;
  Alcotest.(check int) "on-disk live count <= n+1 at every sample" 0 !violations;
  for pid = 0 to 3 do
    match Runner.log_store t pid with
    | Some ls ->
      Alcotest.(check bool)
        (Printf.sprintf "final bound p%d" pid)
        true
        (Log_store.live_count ls <= 5);
      (* the disk mirrors the in-memory model exactly *)
      Alcotest.(check (list int))
        (Printf.sprintf "mirror p%d" pid)
        (S.retained_indices
           (Rdt_protocols.Middleware.store (Runner.middleware t pid)))
        (Log_store.live_indices ls)
    | None -> Alcotest.fail "durable backend"
  done;
  let s = Runner.summary t in
  Alcotest.(check bool) "compaction ran" true (s.Runner.store_compactions > 0);
  Runner.close_stores t;
  rm_rf dir

let test_runner_durable_crash_recovery () =
  (* acceptance (b): a full run with process crashes on the durable
     backend — the recovery session completes, and reopening every store
     directory afterwards restores exactly what the simulation retained *)
  let dir = tmp_dir () in
  let cfg =
    durable_cfg ~dir ~n:4 ~seed:3 ~duration:80.0
      ~faults:
        [
          { Sim_config.crash_at = 25.0; pid = 1; repair_after = 4.0 };
          { Sim_config.crash_at = 55.0; pid = 3; repair_after = 4.0 };
        ]
  in
  let t = Runner.create cfg in
  Runner.run t;
  let s = Runner.summary t in
  Alcotest.(check int) "recovery sessions completed" 2 s.Runner.recovery_sessions;
  Runner.close_stores t;
  for pid = 0 to 3 do
    let sub = Filename.concat dir (Printf.sprintf "p%d" pid) in
    let ls = Log_store.create ~pid ~dir:sub () in
    let r = Log_store.recovery ls in
    Alcotest.(check int) "clean shutdown: nothing dropped" 0
      r.Log_store.records_dropped;
    let expected =
      S.retained (Rdt_protocols.Middleware.store (Runner.middleware t pid))
    in
    Alcotest.(check bool)
      (Printf.sprintf "p%d store recovered byte-exactly" pid)
      true
      (entries_eq expected r.Log_store.recovered);
    (* the recovered entries rebuild a working in-memory store *)
    let mem = S.restore ~me:pid ~entries:r.Log_store.recovered in
    Alcotest.(check int) "restore count" (List.length expected) (S.count mem);
    Log_store.close ls
  done;
  rm_rf dir

(* --- crash in the middle of compaction --------------------------------- *)

(* Compaction has two durable-state windows: after the active segment is
   sealed but before anything was rewritten, and after the rewrite
   segment is synced but before the superseded segments are deleted.  A
   crash in either window must recover exactly the pre-compaction live
   set — the first from the untouched old segments, the second by LSN
   deduplication between the old segments and the rewrite. *)
let compaction_crash_scenario point =
  let dir = tmp_dir () in
  let t = Log_store.create ~config:no_auto ~pid:0 ~dir () in
  List.iter (fun i -> Log_store.append t (mk_entry i)) [ 0; 1; 2; 3; 4; 5 ];
  List.iter (fun i -> Log_store.eliminate t ~index:i) [ 0; 2; 4 ];
  let expected = [ mk_entry 1; mk_entry 3; mk_entry 5 ] in
  Log_store.arm_compaction_crash t point;
  (match Log_store.compact t with
  | () -> Alcotest.fail "armed compaction crash did not fire"
  | exception Log_store.Compaction_crash p ->
    Alcotest.(check bool) "crashed at the armed point" true (p = point));
  (* the crashed instance is poisoned; the directory is the truth *)
  let t2 = Log_store.create ~config:no_auto ~pid:0 ~dir () in
  let r = Log_store.recovery t2 in
  Alcotest.(check bool) "pre-compaction live set restored" true
    (entries_eq expected r.Log_store.recovered);
  (* the reopened store is fully usable: a later compaction finishes the
     interrupted work and preserves the same live set *)
  Log_store.append t2 (mk_entry 6);
  Log_store.compact t2;
  Alcotest.(check (list int)) "live set after finishing compaction"
    [ 1; 3; 5; 6 ]
    (Log_store.live_indices t2);
  Log_store.close t2;
  rm_rf dir

let test_compaction_crash_after_seal () =
  compaction_crash_scenario `After_seal

let test_compaction_crash_after_rewrite () =
  compaction_crash_scenario `After_rewrite

let suite =
  [
    Alcotest.test_case "crc32 known vectors" `Quick test_crc32_vectors;
    Alcotest.test_case "crc32 windowed" `Quick test_crc32_window;
    Alcotest.test_case "record roundtrip" `Quick test_record_roundtrip;
    Alcotest.test_case "record decode garbage" `Quick test_record_decode_garbage;
    Alcotest.test_case "segment roundtrip" `Quick test_segment_roundtrip;
    Alcotest.test_case "segment torn tail" `Quick test_segment_torn_tail;
    Alcotest.test_case "segment corrupt record skipped" `Quick
      test_segment_corrupt_record_skipped;
    Alcotest.test_case "segment bad magic" `Quick test_segment_bad_magic;
    Alcotest.test_case "manifest roundtrip" `Quick test_manifest_roundtrip;
    Alcotest.test_case "log store ops" `Quick test_log_store_ops;
    Alcotest.test_case "log store recovery" `Quick test_log_store_recovery;
    Alcotest.test_case "log store compaction" `Quick test_log_store_compaction;
    Alcotest.test_case "auto compaction on GC notifications" `Quick
      test_log_store_auto_compaction;
    Alcotest.test_case "corrupt record dropped, scan continues" `Quick
      test_log_store_corrupt_record;
    Alcotest.test_case "opening never writes" `Quick
      test_log_store_open_is_readonly;
    Alcotest.test_case "crash: short write" `Quick test_crash_short_write;
    Alcotest.test_case "crash: before sync" `Quick test_crash_before_sync;
    Alcotest.test_case "crash: bit flip" `Quick test_crash_bit_flip;
    Alcotest.test_case "crash during compaction: after seal" `Quick
      test_compaction_crash_after_seal;
    Alcotest.test_case "crash during compaction: after rewrite" `Quick
      test_compaction_crash_after_rewrite;
    Alcotest.test_case "seeded fault plans replay" `Quick
      test_fault_of_seed_deterministic;
    Alcotest.test_case "e2e: n+1 bound on disk" `Quick test_runner_durable_bound;
    Alcotest.test_case "e2e: crash recovery on durable backend" `Quick
      test_runner_durable_crash_recovery;
  ]
