(* Unit tests of each protocol's forced-checkpoint rule, plus middleware
   behaviour (dependency-vector bookkeeping, Figure-4-style stores). *)

module Protocol = Rdt_protocols.Protocol
module Control = Rdt_protocols.Control
module Middleware = Rdt_protocols.Middleware
module Script = Rdt_scenarios.Script
module Stable_store = Rdt_storage.Stable_store
module Trace = Rdt_ccp.Trace

let control ?(index = 0) dv = Control.make ~dv ~index

let test_fdas_rule () =
  let p = Protocol.fdas.Protocol.make ~n:3 ~me:0 in
  let local_dv = [| 1; 0; 0 |] in
  let fresh = control [| 1; 2; 0 |] in
  Alcotest.(check bool) "no send yet: no forced" false
    (p.Protocol.need_forced ~local_dv ~incoming:fresh);
  p.Protocol.note_send ();
  Alcotest.(check bool) "after send: forced on new dep" true
    (p.Protocol.need_forced ~local_dv ~incoming:fresh);
  Alcotest.(check bool) "after send: no forced without new dep" false
    (p.Protocol.need_forced ~local_dv ~incoming:(control [| 1; 0; 0 |]));
  p.Protocol.note_checkpoint ();
  Alcotest.(check bool) "checkpoint resets the send flag" false
    (p.Protocol.need_forced ~local_dv ~incoming:fresh)

let test_fdi_rule () =
  let p = Protocol.fdi.Protocol.make ~n:3 ~me:0 in
  let local_dv = [| 1; 0; 0 |] in
  let fresh = control [| 1; 2; 0 |] in
  Alcotest.(check bool) "empty interval: no forced" false
    (p.Protocol.need_forced ~local_dv ~incoming:fresh);
  p.Protocol.note_receive ~incoming:fresh;
  Alcotest.(check bool) "after a receive: forced on new dep" true
    (p.Protocol.need_forced ~local_dv ~incoming:(control [| 1; 3; 0 |]));
  p.Protocol.note_checkpoint ();
  Alcotest.(check bool) "reset" false
    (p.Protocol.need_forced ~local_dv ~incoming:fresh)

let test_bcs_rule () =
  let p = Protocol.bcs.Protocol.make ~n:2 ~me:0 in
  let local_dv = [| 1; 0 |] in
  Alcotest.(check int) "initial index" 0 (p.Protocol.control_index ());
  Alcotest.(check bool) "same index: no forced" false
    (p.Protocol.need_forced ~local_dv ~incoming:(control ~index:0 [| 1; 1 |]));
  Alcotest.(check bool) "higher index: forced" true
    (p.Protocol.need_forced ~local_dv ~incoming:(control ~index:3 [| 1; 1 |]));
  p.Protocol.note_checkpoint ();
  Alcotest.(check int) "index grows with checkpoints" 1
    (p.Protocol.control_index ());
  p.Protocol.note_receive ~incoming:(control ~index:5 [| 1; 1 |]);
  Alcotest.(check int) "index adopts the message's" 5
    (p.Protocol.control_index ())

let test_cbr_rule () =
  let p = Protocol.cbr.Protocol.make ~n:2 ~me:0 in
  let local_dv = [| 1; 2 |] in
  Alcotest.(check bool) "forced on any new dep, even in a fresh interval"
    true
    (p.Protocol.need_forced ~local_dv ~incoming:(control [| 1; 3 |]));
  Alcotest.(check bool) "not forced on stale message" false
    (p.Protocol.need_forced ~local_dv ~incoming:(control [| 0; 1 |]))

let test_cas_rule () =
  let p = Protocol.cas.Protocol.make ~n:2 ~me:0 in
  Alcotest.(check bool) "forces after every send" true
    p.Protocol.force_after_send;
  Alcotest.(check bool) "never forces on receive" false
    (p.Protocol.need_forced ~local_dv:[| 0; 0 |] ~incoming:(control [| 9; 9 |]))

let test_casbr_rule () =
  let p = Protocol.casbr.Protocol.make ~n:2 ~me:0 in
  let stale = control [| 0; 0 |] in
  Alcotest.(check bool) "lazy: no send-side forcing" false
    p.Protocol.force_after_send;
  Alcotest.(check bool) "no forced before any send" false
    (p.Protocol.need_forced ~local_dv:[| 1; 0 |] ~incoming:stale);
  p.Protocol.note_send ();
  Alcotest.(check bool) "forced before any receive after a send" true
    (p.Protocol.need_forced ~local_dv:[| 1; 0 |] ~incoming:stale);
  p.Protocol.note_checkpoint ();
  Alcotest.(check bool) "reset by the checkpoint" false
    (p.Protocol.need_forced ~local_dv:[| 1; 0 |] ~incoming:stale)

let test_cas_script () =
  let s = Script.create ~n:2 ~protocol:Protocol.cas ~with_lgc:false () in
  let m = Script.send s ~src:0 ~dst:1 in
  (* the forced checkpoint follows the send, so the message carries the
     pre-checkpoint interval *)
  Alcotest.(check int) "forced after send" 1 (Script.forced_taken s 0);
  Alcotest.(check (array int)) "dv advanced after the send" [| 2; 0 |]
    (Script.dv s 0);
  Script.deliver s m;
  Alcotest.(check (array int)) "receiver saw interval 1" [| 1; 1 |]
    (Script.dv s 1)

let test_no_forced_rule () =
  let p = Protocol.no_forced.Protocol.make ~n:2 ~me:0 in
  Alcotest.(check bool) "never forced" false
    (p.Protocol.need_forced ~local_dv:[| 0; 0 |]
       ~incoming:(control [| 9; 9 |]))

let test_by_id () =
  Alcotest.(check (option string)) "fdas" (Some "fdas")
    (Option.map (fun p -> p.Protocol.id) (Protocol.by_id "fdas"));
  Alcotest.(check bool) "unknown" true (Protocol.by_id "nope" = None);
  Alcotest.(check int) "all listed" 7 (List.length Protocol.all);
  Alcotest.(check int) "five RDT protocols" 5
    (List.length Protocol.rdt_protocols)

(* --- middleware ----------------------------------------------------- *)

let test_middleware_initialization () =
  let trace = Trace.create ~n:2 in
  let mw = Middleware.create ~n:2 ~me:0 ~protocol:Protocol.fdas ~trace () in
  Alcotest.(check int) "s0 stored" 0
    (Stable_store.last_index (Middleware.store mw));
  Alcotest.(check int) "current interval 1" 1 (Middleware.current_interval mw);
  Alcotest.(check int) "no basic checkpoints counted" 0
    (Middleware.basic_count mw)

let test_middleware_dv_flow () =
  let s = Script.create ~n:3 ~protocol:Protocol.no_forced ~with_lgc:false () in
  Script.checkpoint s 0;
  Alcotest.(check (array int)) "own entry incremented" [| 2; 0; 0 |]
    (Script.dv s 0);
  Script.transfer s ~src:0 ~dst:1;
  Alcotest.(check (array int)) "receiver merged" [| 2; 1; 0 |]
    (Script.dv s 1);
  Script.transfer s ~src:1 ~dst:2;
  Alcotest.(check (array int)) "transitive" [| 2; 1; 1 |] (Script.dv s 2)

let test_middleware_stored_dv () =
  (* Equation 2 bookkeeping: DV(s^gamma)[own] = gamma *)
  let s = Script.create ~n:2 ~protocol:Protocol.no_forced ~with_lgc:false () in
  Script.checkpoint s 0;
  Script.checkpoint s 0;
  let store = Script.store s 0 in
  List.iter
    (fun (e : Stable_store.entry) ->
      Alcotest.(check int)
        (Printf.sprintf "dv[own] of s^%d" e.index)
        e.index e.dv.(0))
    (Stable_store.retained store)

let test_middleware_forced_before_delivery () =
  (* FDAS: send then receive a fresh dependency => the forced checkpoint
     must be stored BEFORE the receive is recorded *)
  let s = Script.create ~n:2 ~protocol:Protocol.fdas ~with_lgc:false () in
  let m_out = Script.send s ~src:0 ~dst:1 in
  ignore m_out;
  Script.checkpoint s 1;
  (* p0 has sent; now p1's message (carrying its new checkpoint) arrives *)
  Script.transfer s ~src:1 ~dst:0;
  Alcotest.(check int) "one forced checkpoint at p0" 1
    (Script.forced_taken s 0);
  (* the forced checkpoint must not include the message's dependency *)
  let store = Script.store s 0 in
  match Stable_store.find store ~index:1 with
  | None -> Alcotest.fail "forced checkpoint missing"
  | Some e ->
    Alcotest.(check int) "stored before merging the message" 0 e.dv.(1)

let test_middleware_rollback () =
  let s = Script.create ~n:2 ~protocol:Protocol.no_forced ~with_lgc:false () in
  Script.checkpoint s 0;
  Script.checkpoint s 0;
  Script.checkpoint s 0;
  let mw = Script.middleware s 0 in
  Middleware.rollback mw ~to_index:1 ~li:None;
  Alcotest.(check (list int)) "later checkpoints gone" [ 0; 1 ]
    (Stable_store.retained_indices (Script.store s 0));
  (* Algorithm 3 lines 5-6: DV restored from s^1 then incremented *)
  Alcotest.(check (array int)) "dv recreated" [| 2; 0 |] (Script.dv s 0);
  Alcotest.(check int) "trace truncated" 1
    (Trace.last_checkpoint_index (Script.trace s) ~pid:0)

let test_app_state_restoration () =
  let s = Script.create ~n:2 ~protocol:Protocol.no_forced ~with_lgc:false () in
  let mw = Script.middleware s 0 in
  let state_at_s0 = Middleware.app_state mw in
  Script.transfer s ~src:1 ~dst:0;
  let state_after_msg = Middleware.app_state mw in
  Alcotest.(check bool) "receiving evolves the state" true
    (state_after_msg <> state_at_s0);
  Script.checkpoint s 0 (* s^1 captures state_after_msg *);
  Script.transfer s ~src:1 ~dst:0;
  Script.transfer s ~src:1 ~dst:0;
  Alcotest.(check bool) "more evolution" true
    (Middleware.app_state mw <> state_after_msg);
  Middleware.rollback mw ~to_index:1 ~li:None;
  Alcotest.(check int) "rollback restores the captured state" state_after_msg
    (Middleware.app_state mw);
  Middleware.rollback mw ~to_index:0 ~li:None;
  Alcotest.(check int) "rollback to s^0 restores the initial state"
    state_at_s0 (Middleware.app_state mw)

let test_app_state_deterministic () =
  let run () =
    let s = Script.create ~n:2 ~protocol:Protocol.fdas ~with_lgc:false () in
    Script.transfer s ~src:0 ~dst:1;
    Script.checkpoint s 1;
    Script.transfer s ~src:1 ~dst:0;
    Middleware.app_state (Script.middleware s 0)
  in
  Alcotest.(check int) "same history, same state" (run ()) (run ())

let test_middleware_checkpoint_counts () =
  let s = Script.create ~n:2 ~protocol:Protocol.fdas ~with_lgc:false () in
  Script.checkpoint s 0;
  Script.checkpoint s 0;
  let mw = Script.middleware s 0 in
  Alcotest.(check int) "basic" 2 (Middleware.basic_count mw);
  Alcotest.(check int) "total includes s0" 3 (Middleware.checkpoint_count mw)

(* Forced-checkpoint ordering: BCS forces when the incoming index is
   higher, and the forced checkpoint lands before the receive. *)
let test_bcs_script () =
  let s = Script.create ~n:2 ~protocol:Protocol.bcs ~with_lgc:false () in
  Script.checkpoint s 0;
  Script.checkpoint s 0 (* p0's BCS index is now 2 *);
  Script.transfer s ~src:0 ~dst:1 (* p1 must force: 2 > 0 *);
  Alcotest.(check int) "p1 forced" 1 (Script.forced_taken s 1)

let suite =
  [
    Alcotest.test_case "fdas rule" `Quick test_fdas_rule;
    Alcotest.test_case "fdi rule" `Quick test_fdi_rule;
    Alcotest.test_case "bcs rule" `Quick test_bcs_rule;
    Alcotest.test_case "cbr rule" `Quick test_cbr_rule;
    Alcotest.test_case "cas rule" `Quick test_cas_rule;
    Alcotest.test_case "casbr rule" `Quick test_casbr_rule;
    Alcotest.test_case "cas through the middleware" `Quick test_cas_script;
    Alcotest.test_case "no-forced rule" `Quick test_no_forced_rule;
    Alcotest.test_case "registry" `Quick test_by_id;
    Alcotest.test_case "middleware initialization" `Quick
      test_middleware_initialization;
    Alcotest.test_case "middleware dv flow" `Quick test_middleware_dv_flow;
    Alcotest.test_case "middleware stored dv (eq 2)" `Quick
      test_middleware_stored_dv;
    Alcotest.test_case "forced checkpoint precedes delivery" `Quick
      test_middleware_forced_before_delivery;
    Alcotest.test_case "middleware rollback" `Quick test_middleware_rollback;
    Alcotest.test_case "app state restoration" `Quick
      test_app_state_restoration;
    Alcotest.test_case "app state deterministic" `Quick
      test_app_state_deterministic;
    Alcotest.test_case "checkpoint counts" `Quick
      test_middleware_checkpoint_counts;
    Alcotest.test_case "bcs forces on higher index" `Quick test_bcs_script;
  ]
