(* The domain pool behind the experiment harness: input-order results,
   exception propagation, and byte-identical experiment artifacts at any
   job count. *)

module Domain_pool = Rdt_parallel.Domain_pool
module Runner = Rdt_core.Runner
module Sim_config = Rdt_core.Sim_config
module Workload = Rdt_workload.Workload
module Series = Rdt_metrics.Series
module Table = Rdt_metrics.Table

let with_pool ~jobs f =
  let pool = Domain_pool.create ~jobs () in
  Fun.protect ~finally:(fun () -> Domain_pool.shutdown pool) (fun () -> f pool)

let test_map_order () =
  List.iter
    (fun jobs ->
      with_pool ~jobs (fun pool ->
          let inputs = List.init 50 Fun.id in
          let doubled = Domain_pool.map pool (fun x -> 2 * x) inputs in
          Alcotest.(check (list int))
            (Printf.sprintf "jobs=%d returns results in input order" jobs)
            (List.map (fun x -> 2 * x) inputs)
            doubled))
    [ 1; 2; 3; 4 ]

let test_map_empty_and_small () =
  with_pool ~jobs:4 (fun pool ->
      Alcotest.(check (list int))
        "empty input" []
        (Domain_pool.map pool (fun x -> x) []);
      Alcotest.(check (list int))
        "fewer items than workers" [ 10 ]
        (Domain_pool.map pool (fun x -> 10 * x) [ 1 ]))

let test_pool_reuse () =
  with_pool ~jobs:3 (fun pool ->
      let a = Domain_pool.map pool string_of_int [ 1; 2; 3 ] in
      let b = Domain_pool.map pool String.length a in
      Alcotest.(check (list int)) "second map over first" [ 1; 1; 1 ] b)

exception Boom of int

let test_exception_propagation () =
  List.iter
    (fun jobs ->
      with_pool ~jobs (fun pool ->
          match
            Domain_pool.map pool
              (fun x -> if x mod 3 = 2 then raise (Boom x) else x)
              (List.init 9 Fun.id)
          with
          | _ -> Alcotest.fail "expected the task's exception to propagate"
          | exception Boom x ->
            (* all tasks drain, then the first failure in input order wins *)
            Alcotest.(check int)
              (Printf.sprintf "jobs=%d first input-order failure" jobs)
              2 x))
    [ 1; 4 ]

let test_default_jobs_positive () =
  Alcotest.(check bool)
    "recommended domain count is positive" true
    (Domain_pool.default_jobs () >= 1)

(* The harness's real workload: independent simulation cells evaluated on
   the pool must produce exactly the sequential results, at any job
   count.  Compares full summaries and the sampled series values. *)
let cell_configs =
  List.concat_map
    (fun seed ->
      List.map
        (fun gc ->
          {
            Sim_config.default with
            n = 4;
            seed;
            duration = 30.0;
            gc;
            sample_interval = 2.0;
            workload =
              {
                Workload.pattern = Workload.Uniform;
                send_mean_interval = 0.8;
                basic_ckpt_mean_interval = 4.0;
                reply_probability = 0.3;
              };
          })
        [ Sim_config.No_gc; Sim_config.Local; Sim_config.Coordinated { period = 5.0 } ])
    [ 7; 19 ]

let run_cell cfg =
  let t = Runner.create cfg in
  Runner.run t;
  let s = Runner.summary t in
  let series =
    List.map Series.values (Array.to_list (Runner.retained_series t))
  in
  (s, series)

let test_parallel_cells_equal_sequential () =
  let sequential = List.map run_cell cell_configs in
  List.iter
    (fun jobs ->
      with_pool ~jobs (fun pool ->
          let parallel = Domain_pool.map pool run_cell cell_configs in
          List.iteri
            (fun i ((s_seq, v_seq), (s_par, v_par)) ->
              Alcotest.(check bool)
                (Printf.sprintf "jobs=%d cell %d summary identical" jobs i)
                true
                (compare s_seq s_par = 0);
              Alcotest.(check (list (list (float 0.0))))
                (Printf.sprintf "jobs=%d cell %d series identical" jobs i)
                v_seq v_par)
            (List.combine sequential parallel)))
    [ 2; 4 ]

(* Rendered artifact: a results table filled from pool results must be
   byte-identical to the sequentially filled one. *)
let render_table results =
  let t =
    Table.create
      ~columns:
        [ ("cell", Table.Left); ("mean retained", Table.Right); ("gc", Table.Left) ]
  in
  List.iteri
    (fun i ((s : Runner.summary), _) ->
      Table.add_row t
        [
          string_of_int i;
          Table.fmt_float s.Runner.mean_total_retained;
          s.Runner.gc;
        ])
    results;
  Table.render t

let test_rendered_table_identical () =
  let seq = render_table (List.map run_cell cell_configs) in
  with_pool ~jobs:4 (fun pool ->
      let par = render_table (Domain_pool.map pool run_cell cell_configs) in
      Alcotest.(check string) "table text identical at -j 4" seq par)

let suite =
  [
    Alcotest.test_case "map preserves input order" `Quick test_map_order;
    Alcotest.test_case "empty and small inputs" `Quick test_map_empty_and_small;
    Alcotest.test_case "pool reuse across maps" `Quick test_pool_reuse;
    Alcotest.test_case "exception propagation" `Quick
      test_exception_propagation;
    Alcotest.test_case "default jobs" `Quick test_default_jobs_positive;
    Alcotest.test_case "simulation cells: parallel = sequential" `Quick
      test_parallel_cells_equal_sequential;
    Alcotest.test_case "rendered table byte-identical" `Quick
      test_rendered_table_identical;
  ]
