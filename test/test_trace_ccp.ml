module Trace = Rdt_ccp.Trace
module Ccp = Rdt_ccp.Ccp
module VC = Rdt_causality.Vector_clock

let ck pid index : Ccp.ckpt = { pid; index }

let test_trace_building () =
  let t = Trace.init_with_initial_checkpoints ~n:2 in
  Alcotest.(check int) "s0 recorded" 0 (Trace.last_checkpoint_index t ~pid:0);
  Trace.checkpoint t 0;
  Alcotest.(check int) "s1 recorded" 1 (Trace.last_checkpoint_index t ~pid:0);
  Alcotest.(check int) "p1 untouched" 0 (Trace.last_checkpoint_index t ~pid:1)

let test_seq_monotone () =
  let t = Trace.init_with_initial_checkpoints ~n:2 in
  Trace.message t ~src:0 ~dst:1;
  Trace.checkpoint t 1;
  let seqs = List.map (fun (e : Trace.event) -> e.seq) (Trace.all_events t) in
  Alcotest.(check (list int)) "sorted unique" (List.sort_uniq compare seqs) seqs

let test_ccp_shape () =
  let t = Trace.init_with_initial_checkpoints ~n:3 in
  Trace.checkpoint t 0;
  Trace.checkpoint t 0;
  Trace.message t ~src:0 ~dst:2;
  let ccp = Ccp.of_trace t in
  Alcotest.(check int) "last stable p0" 2 (Ccp.last_stable ccp 0);
  Alcotest.(check int) "volatile p0" 3 (Ccp.volatile_index ccp 0);
  Alcotest.(check int) "last stable p1" 0 (Ccp.last_stable ccp 1);
  Alcotest.(check int) "one message" 1 (Array.length (Ccp.messages ccp));
  Alcotest.(check int) "checkpoint count incl volatiles" (4 + 2 + 2)
    (List.length (Ccp.checkpoints ccp));
  Alcotest.(check int) "stable count" (3 + 1 + 1)
    (List.length (Ccp.stable_checkpoints ccp))

let test_causality_direct_message () =
  let t = Trace.init_with_initial_checkpoints ~n:2 in
  Trace.message t ~src:0 ~dst:1;
  Trace.checkpoint t 1;
  let ccp = Ccp.of_trace t in
  Alcotest.(check bool) "s0_0 -> s1_1" true (Ccp.precedes ccp (ck 0 0) (ck 1 1));
  Alcotest.(check bool) "s0_1 -/-> s1_1's sender" false
    (Ccp.precedes ccp (ck 1 0) (ck 0 0));
  Alcotest.(check bool) "local order" true (Ccp.precedes ccp (ck 1 0) (ck 1 1))

let test_causality_transitive () =
  let t = Trace.init_with_initial_checkpoints ~n:3 in
  Trace.checkpoint t 0;
  Trace.message t ~src:0 ~dst:1;
  Trace.message t ~src:1 ~dst:2;
  Trace.checkpoint t 2;
  let ccp = Ccp.of_trace t in
  Alcotest.(check bool) "s1_0 -> s1_2 transitively" true
    (Ccp.precedes ccp (ck 0 1) (ck 2 1));
  Alcotest.(check bool) "s1_2 -/-> s1_0" false
    (Ccp.precedes ccp (ck 2 1) (ck 0 1))

let test_volatile_precedence () =
  let t = Trace.init_with_initial_checkpoints ~n:2 in
  Trace.message t ~src:0 ~dst:1;
  let ccp = Ccp.of_trace t in
  let v0 = Ccp.volatile ccp 0 and v1 = Ccp.volatile ccp 1 in
  Alcotest.(check bool) "own stable -> volatile" true
    (Ccp.precedes ccp (ck 0 0) v0);
  Alcotest.(check bool) "s0_0 -> v1 via message" true
    (Ccp.precedes ccp (ck 0 0) v1);
  Alcotest.(check bool) "volatile precedes nothing" false
    (Ccp.precedes ccp v0 v1);
  Alcotest.(check bool) "volatile not self-preceding" false
    (Ccp.precedes ccp v0 v0)

let test_consistent_pair () =
  let t = Trace.init_with_initial_checkpoints ~n:2 in
  Trace.message t ~src:0 ~dst:1;
  Trace.checkpoint t 1;
  let ccp = Ccp.of_trace t in
  Alcotest.(check bool) "initials consistent" true
    (Ccp.consistent_pair ccp (ck 0 0) (ck 1 0));
  Alcotest.(check bool) "dependent pair inconsistent" false
    (Ccp.consistent_pair ccp (ck 0 0) (ck 1 1))

let test_in_transit_excluded () =
  let t = Trace.init_with_initial_checkpoints ~n:2 in
  let _unreceived = Trace.send t ~src:0 ~dst:1 in
  let ccp = Ccp.of_trace t in
  Alcotest.(check int) "no delivered messages" 0 (Array.length (Ccp.messages ccp));
  (* an undelivered send creates no dependency *)
  Alcotest.(check bool) "no causality" false
    (Ccp.precedes ccp (ck 0 0) (Ccp.volatile ccp 1))

let test_orphan_receive_rejected () =
  let t = Trace.init_with_initial_checkpoints ~n:2 in
  Trace.record_receive t ~pid:1 ~msg_id:999 ~src:0;
  Alcotest.(check bool) "raises" true
    (try
       ignore (Ccp.of_trace t);
       false
     with Invalid_argument _ -> true)

let test_truncation () =
  let t = Trace.init_with_initial_checkpoints ~n:2 in
  let m = Trace.send t ~src:0 ~dst:1 in
  Trace.receive t ~msg_id:m ~src:0 ~dst:1;
  Trace.checkpoint t 0;
  Trace.checkpoint t 0;
  (* roll p0 back to s1: erases its second checkpoint but keeps the send *)
  Trace.truncate_to_checkpoint t ~pid:0 ~index:1;
  let ccp = Ccp.of_trace t in
  Alcotest.(check int) "p0 back to s1" 1 (Ccp.last_stable ccp 0);
  Alcotest.(check int) "message survives" 1 (Array.length (Ccp.messages ccp))

let test_truncation_erases_send () =
  let t = Trace.init_with_initial_checkpoints ~n:2 in
  Trace.checkpoint t 0;
  let m = Trace.send t ~src:0 ~dst:1 in
  (* roll p0 back before the send, message still in flight: the send
     disappears, and a later receive would be an orphan *)
  Trace.truncate_to_checkpoint t ~pid:0 ~index:0;
  Trace.receive t ~msg_id:m ~src:0 ~dst:1;
  Alcotest.(check bool) "orphan detected" true
    (try
       ignore (Ccp.of_trace t);
       false
     with Invalid_argument _ -> true)

let test_truncate_missing_checkpoint () =
  let t = Trace.init_with_initial_checkpoints ~n:2 in
  Alcotest.(check bool) "raises" true
    (try
       Trace.truncate_to_checkpoint t ~pid:0 ~index:7;
       false
     with Invalid_argument _ -> true)

(* Property: on random traces, Ccp.precedes agrees with a recomputation
   from scratch over the event linearization (vector-clock transitivity
   sanity). *)
let prop_precedes_vs_reachability =
  QCheck.Test.make ~name:"ccp precedes is a strict partial order" ~count:60
    QCheck.(make Gen.(pair (int_bound 10_000) (int_range 2 5)))
    (fun (seed, n) ->
      let trace = Helpers.random_trace ~seed ~n ~ops:60 in
      let ccp = Ccp.of_trace trace in
      let cs = Ccp.checkpoints ccp in
      List.for_all
        (fun a ->
          (not (Ccp.precedes ccp a a))
          && List.for_all
               (fun b ->
                 List.for_all
                   (fun c ->
                     (* transitivity *)
                     (not (Ccp.precedes ccp a b && Ccp.precedes ccp b c))
                     || Ccp.precedes ccp a c)
                   cs)
               cs)
        cs)

let test_serialization_roundtrip () =
  let original = Helpers.random_trace ~seed:77 ~n:4 ~ops:80 in
  let path = Filename.temp_file "rdtgc" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.save original path;
      let reloaded = Trace.load path in
      let dump t =
        List.map
          (fun (e : Trace.event) -> (e.pid, e.kind))
          (Trace.all_events t)
      in
      Alcotest.(check bool) "same events in order" true
        (dump original = dump reloaded);
      (* the reloaded trace builds the same CCP *)
      let c1 = Ccp.of_trace original and c2 = Ccp.of_trace reloaded in
      Alcotest.(check int) "same messages"
        (Array.length (Ccp.messages c1))
        (Array.length (Ccp.messages c2));
      for pid = 0 to 3 do
        Alcotest.(check int) "same last stable" (Ccp.last_stable c1 pid)
          (Ccp.last_stable c2 pid)
      done;
      (* and fresh message ids do not collide with reloaded ones *)
      let id = Trace.fresh_msg_id reloaded ~pid:0 in
      Alcotest.(check bool) "fresh id beyond the loaded ones" true
        (List.for_all
           (fun (e : Trace.event) ->
             match e.kind with
             | Trace.Send { msg_id; _ } | Trace.Receive { msg_id; _ } ->
               msg_id < id
             | Trace.Checkpoint _ -> true)
           (Trace.all_events reloaded)))

let test_load_rejects_garbage () =
  let path = Filename.temp_file "rdtgc" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "not a trace\n";
      close_out oc;
      Alcotest.(check bool) "rejected" true
        (try
           ignore (Trace.load path);
           false
         with Failure _ -> true))

let test_diagram_shape () =
  let t = Trace.init_with_initial_checkpoints ~n:2 in
  Trace.message t ~src:0 ~dst:1;
  Trace.checkpoint t 1;
  let rendered = Rdt_ccp.Diagram.render t in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' rendered)
  in
  Alcotest.(check int) "one row per process" 2 (List.length lines);
  (* all rows equally wide *)
  let widths = List.map String.length lines in
  Alcotest.(check bool) "aligned rows" true
    (List.for_all (fun w -> w = List.hd widths) widths);
  Alcotest.(check bool) "send rendered" true
    (String.length rendered > 0
    &&
    let re_found needle haystack =
      let nl = String.length needle and hl = String.length haystack in
      let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
      scan 0
    in
    re_found "m0>" rendered && re_found ">m0" rendered && re_found "[1]" rendered)

let test_diagram_truncation () =
  let t = Trace.init_with_initial_checkpoints ~n:2 in
  for _ = 1 to 100 do
    Trace.message t ~src:0 ~dst:1
  done;
  let rendered = Rdt_ccp.Diagram.render ~max_events:10 t in
  Alcotest.(check bool) "notes the omission" true
    (String.length rendered > 0 && String.get rendered 0 = '.')

(* regression: [finalize] used to seed its flattened event array from
   process 0's pending buffer, so a deferred-order trace where pid 0
   buffered nothing (its arrays still [||]) while other pids did crashed
   with Invalid_argument; the seed must come from the first non-empty
   buffer *)
let test_finalize_empty_first_process () =
  let t = Trace.create ~n:3 in
  let clock = ref 0.0 in
  Trace.set_order_source t (fun c ->
      clock := !clock +. 1.0;
      Rdt_sim.Stamp.set c ~time:!clock ~u:0 ~v:0);
  Trace.record_checkpoint t ~pid:2 ~index:0;
  Trace.record_checkpoint t ~pid:1 ~index:0;
  let evs = Trace.all_events t in
  Alcotest.(check int) "both records sequenced" 2 (List.length evs);
  Alcotest.(check (list int))
    "canonical (stamp) order, not pid order" [ 2; 1 ]
    (List.map (fun (e : Trace.event) -> e.pid) evs)

let suite =
  [
    Alcotest.test_case "trace building" `Quick test_trace_building;
    Alcotest.test_case "serialization roundtrip" `Quick
      test_serialization_roundtrip;
    Alcotest.test_case "load rejects garbage" `Quick test_load_rejects_garbage;
    Alcotest.test_case "diagram shape" `Quick test_diagram_shape;
    Alcotest.test_case "diagram truncation" `Quick test_diagram_truncation;
    Alcotest.test_case "sequence monotone" `Quick test_seq_monotone;
    Alcotest.test_case "ccp shape" `Quick test_ccp_shape;
    Alcotest.test_case "direct message causality" `Quick
      test_causality_direct_message;
    Alcotest.test_case "transitive causality" `Quick test_causality_transitive;
    Alcotest.test_case "volatile precedence" `Quick test_volatile_precedence;
    Alcotest.test_case "consistent pair" `Quick test_consistent_pair;
    Alcotest.test_case "in-transit excluded" `Quick test_in_transit_excluded;
    Alcotest.test_case "orphan receive rejected" `Quick
      test_orphan_receive_rejected;
    Alcotest.test_case "truncation" `Quick test_truncation;
    Alcotest.test_case "truncation erases send" `Quick
      test_truncation_erases_send;
    Alcotest.test_case "truncate missing checkpoint" `Quick
      test_truncate_missing_checkpoint;
    Alcotest.test_case "finalize with empty first process" `Quick
      test_finalize_empty_first_process;
    QCheck_alcotest.to_alcotest prop_precedes_vs_reachability;
  ]
