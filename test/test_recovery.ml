(* Recovery lines (Lemma 1 / Definition 5) and recovery sessions. *)

module Ccp = Rdt_ccp.Ccp
module Recovery_line = Rdt_recovery.Recovery_line
module Session = Rdt_recovery.Session
module Figures = Rdt_scenarios.Figures
module Script = Rdt_scenarios.Script
module Protocol = Rdt_protocols.Protocol
module Oracle = Rdt_gc.Oracle
module Stable_store = Rdt_storage.Stable_store
module Middleware = Rdt_protocols.Middleware

let global_c = Alcotest.(array int)

let all_faulty_subsets n =
  (* non-empty subsets of 0..n-1 *)
  let rec subsets = function
    | [] -> [ [] ]
    | x :: rest ->
      let s = subsets rest in
      s @ List.map (fun l -> x :: l) s
  in
  List.filter (fun l -> l <> []) (subsets (List.init n Fun.id))

let check_line_properties name ccp faulty line =
  (* a recovery line is consistent, excludes faulty volatiles, and equals
     the maximal consistent global checkpoint below that bound *)
  Alcotest.(check bool)
    (name ^ ": consistent")
    true
    (Rdt_ccp.Consistency.is_consistent ccp line);
  List.iter
    (fun f ->
      if line.(f) > Ccp.last_stable ccp f then
        Alcotest.failf "%s: faulty p%d keeps its volatile" name f)
    faulty;
  Alcotest.check global_c
    (name ^ ": equals Definition 5")
    (Recovery_line.by_max_consistent ccp ~faulty)
    line

let test_lemma1_equals_definition_on_figures () =
  let ccps =
    [
      ("figure1", (Figures.figure1 ()).ccp);
      ("recovery", Figures.recovery_ccp ());
      ("figure4", Script.ccp (Figures.figure4 ()));
      ("worst-case", Script.ccp (Figures.worst_case ~n:3));
    ]
  in
  List.iter
    (fun (name, ccp) ->
      List.iter
        (fun faulty ->
          let line = Recovery_line.lemma1 ccp ~faulty in
          check_line_properties
            (Printf.sprintf "%s F={%s}" name
               (String.concat "," (List.map string_of_int faulty)))
            ccp faulty line)
        (all_faulty_subsets (Ccp.n ccp)))
    ccps

let test_lemma1_minimizes_rollback () =
  let ccp = Figures.recovery_ccp () in
  List.iter
    (fun faulty ->
      let line = Recovery_line.lemma1 ccp ~faulty in
      let bound =
        Array.init (Ccp.n ccp) (fun i ->
            if List.mem i faulty then Ccp.last_stable ccp i
            else Ccp.volatile_index ccp i)
      in
      match Rdt_ccp.Consistency.brute_force_max_consistent ccp ~bound with
      | None -> Alcotest.fail "no line"
      | Some best ->
        Alcotest.(check int)
          "rollback count minimal"
          (Rdt_ccp.Consistency.count_rolled_back ccp best)
          (Rdt_ccp.Consistency.count_rolled_back ccp line))
    (all_faulty_subsets (Ccp.n ccp))

let test_snapshots_agree_with_lemma1_no_gc () =
  (* with no collection, stored DVs describe every checkpoint, so the
     runtime computation must equal the ground-truth one *)
  let s = Script.create ~n:3 ~protocol:Protocol.fdas ~with_lgc:false () in
  Script.transfer s ~src:0 ~dst:1;
  Script.checkpoint s 1;
  Script.transfer s ~src:1 ~dst:2;
  Script.checkpoint s 2;
  Script.transfer s ~src:2 ~dst:0;
  Script.checkpoint s 0;
  Script.transfer s ~src:1 ~dst:0;
  let ccp = Script.ccp s in
  let snaps =
    Array.init 3 (fun pid -> Session.snapshot_of (Script.middleware s pid))
  in
  List.iter
    (fun faulty ->
      Alcotest.check global_c
        (Printf.sprintf "F={%s}"
           (String.concat "," (List.map string_of_int faulty)))
        (Recovery_line.lemma1 ccp ~faulty)
        (Recovery_line.from_snapshots snaps ~faulty))
    (all_faulty_subsets 3)

let test_domino_effect_rollback_depth () =
  (* Figure 2's promise: a single failure forces the uncoordinated run
     back to the initial state, while FDAS keeps the loss bounded *)
  let f = Figures.figure2 () in
  let bound =
    [| Ccp.volatile_index f.ccp 0; Ccp.last_stable f.ccp 1 |]
  in
  (match Rdt_ccp.Consistency.max_consistent f.ccp ~bound with
  | Some line -> Alcotest.check global_c "domino to the initial state" [| 0; 0 |] line
  | None -> Alcotest.fail "no line");
  let s = Figures.figure2_with_protocol Protocol.fdas in
  let ccp = Script.ccp s in
  let line = Recovery_line.lemma1 ccp ~faulty:[ 1 ] in
  Alcotest.(check bool) "FDAS keeps progress" true
    (line.(0) > 0 || line.(1) > 0)

(* --- sessions --------------------------------------------------------- *)

let session_setup () =
  let s = Script.create ~n:3 ~protocol:Protocol.fdas ~with_lgc:true () in
  Script.transfer s ~src:0 ~dst:1;
  Script.checkpoint s 1;
  Script.transfer s ~src:1 ~dst:2;
  Script.checkpoint s 2;
  Script.checkpoint s 0;
  Script.transfer s ~src:2 ~dst:1 (* p1 depends on p2's interval 2 *);
  s

let middlewares_of s = Array.init 3 (Script.middleware s)

let test_session_rolls_back_dependents () =
  let s = session_setup () in
  let report =
    Session.run ~middlewares:(middlewares_of s) ~faulty:[ 2 ]
      ~knowledge:`Global
      ~release_outdated:(fun pid ~li ->
        match Script.collector s pid with
        | Some lgc -> Rdt_gc.Rdt_lgc.release_outdated lgc ~li
        | None -> ())
  in
  Alcotest.(check (list int)) "faulty" [ 2 ] report.Session.faulty;
  (* p2 loses its volatile; p1 received from p2's interval 2 and must not
     keep that receive *)
  Alcotest.(check bool) "p1 rolled back or p2 line below volatile" true
    (List.mem 2 report.Session.rolled_back);
  (* after the session, the post-rollback trace is consistent (orphan
     receives were undone), so the CCP rebuilds cleanly *)
  let ccp = Script.ccp s in
  Alcotest.(check bool) "post-recovery CCP is RDT" true
    (Rdt_ccp.Rdt_check.holds ccp)

let test_session_preserves_safety () =
  let s = session_setup () in
  let _ =
    Session.run ~middlewares:(middlewares_of s) ~faulty:[ 2 ]
      ~knowledge:`Global
      ~release_outdated:(fun pid ~li ->
        match Script.collector s pid with
        | Some lgc -> Rdt_gc.Rdt_lgc.release_outdated lgc ~li
        | None -> ())
  in
  let ccp = Script.ccp s in
  for pid = 0 to 2 do
    let retained = Script.retained s pid in
    List.iter
      (fun index ->
        if not (List.mem index retained) then
          Alcotest.failf "session collected needed s^%d of p%d" index pid)
      (Oracle.retained ccp ~pid)
  done

let test_session_causal_mode () =
  let s = session_setup () in
  let report =
    Session.run ~middlewares:(middlewares_of s) ~faulty:[ 2 ]
      ~knowledge:`Causal
      ~release_outdated:(fun _ ~li:_ -> Alcotest.fail "not called in causal mode")
  in
  Alcotest.(check bool) "report produced" true
    (report.Session.checkpoints_rolled_back >= 1)

let test_session_counts_undone () =
  let s = session_setup () in
  let snaps = Array.map Session.snapshot_of (middlewares_of s) in
  let line = Recovery_line.from_snapshots snaps ~faulty:[ 2 ] in
  let expected =
    Array.to_list (middlewares_of s)
    |> List.mapi (fun i mw ->
           Stable_store.last_index (Middleware.store mw) + 1 - line.(i))
    |> List.fold_left ( + ) 0
  in
  let report =
    Session.run ~middlewares:(middlewares_of s) ~faulty:[ 2 ]
      ~knowledge:`Global
      ~release_outdated:(fun _ ~li:_ -> ())
  in
  Alcotest.(check int) "undone count" expected
    report.Session.checkpoints_rolled_back

let suite =
  [
    Alcotest.test_case "Lemma 1 = Definition 5 on all figures and subsets"
      `Quick test_lemma1_equals_definition_on_figures;
    Alcotest.test_case "Lemma 1 minimizes rollback" `Quick
      test_lemma1_minimizes_rollback;
    Alcotest.test_case "snapshot computation agrees" `Quick
      test_snapshots_agree_with_lemma1_no_gc;
    Alcotest.test_case "domino rollback depth" `Quick
      test_domino_effect_rollback_depth;
    Alcotest.test_case "session rolls back dependents" `Quick
      test_session_rolls_back_dependents;
    Alcotest.test_case "session preserves safety" `Quick
      test_session_preserves_safety;
    Alcotest.test_case "session causal mode" `Quick test_session_causal_mode;
    Alcotest.test_case "session counts undone checkpoints" `Quick
      test_session_counts_undone;
  ]
