module Q = Rdt_sim.Event_queue

let drain q =
  let rec loop acc =
    match Q.pop q with None -> List.rev acc | Some (t, v) -> loop ((t, v) :: acc)
  in
  loop []

let test_time_order () =
  let q = Q.create () in
  ignore (Q.add q ~time:3.0 "c");
  ignore (Q.add q ~time:1.0 "a");
  ignore (Q.add q ~time:2.0 "b");
  Alcotest.(check (list (pair (float 0.0) string)))
    "sorted by time"
    [ (1.0, "a"); (2.0, "b"); (3.0, "c") ]
    (drain q)

let test_fifo_ties () =
  let q = Q.create () in
  ignore (Q.add q ~time:1.0 "first");
  ignore (Q.add q ~time:1.0 "second");
  ignore (Q.add q ~time:1.0 "third");
  Alcotest.(check (list string)) "insertion order on ties"
    [ "first"; "second"; "third" ]
    (List.map snd (drain q))

let test_cancel () =
  let q = Q.create () in
  ignore (Q.add q ~time:1.0 "keep1");
  let h = Q.add q ~time:2.0 "drop" in
  ignore (Q.add q ~time:3.0 "keep2");
  Q.cancel q h;
  Alcotest.(check (list string)) "cancelled skipped" [ "keep1"; "keep2" ]
    (List.map snd (drain q))

let test_cancel_idempotent () =
  let q = Q.create () in
  let h = Q.add q ~time:1.0 () in
  Q.cancel q h;
  Q.cancel q h;
  Alcotest.(check int) "length zero" 0 (Q.length q);
  Alcotest.(check bool) "empty" true (Q.is_empty q)

let test_length_and_empty () =
  let q = Q.create () in
  Alcotest.(check bool) "fresh empty" true (Q.is_empty q);
  ignore (Q.add q ~time:1.0 ());
  ignore (Q.add q ~time:2.0 ());
  Alcotest.(check int) "two live" 2 (Q.length q);
  ignore (Q.pop q);
  Alcotest.(check int) "one live" 1 (Q.length q)

let test_peek_skips_cancelled () =
  let q = Q.create () in
  let h = Q.add q ~time:1.0 "x" in
  ignore (Q.add q ~time:5.0 "y");
  Q.cancel q h;
  Alcotest.(check (option (float 0.0))) "peek" (Some 5.0) (Q.peek_time q)

let test_interleaved_operations () =
  let q = Q.create () in
  ignore (Q.add q ~time:2.0 2);
  ignore (Q.add q ~time:1.0 1);
  (match Q.pop q with
  | Some (_, 1) -> ()
  | _ -> Alcotest.fail "expected 1 first");
  ignore (Q.add q ~time:0.5 0);
  Alcotest.(check (option (float 0.0))) "peek after add" (Some 0.5)
    (Q.peek_time q)

let test_many_random () =
  let rng = Rdt_sim.Prng.create ~seed:99 in
  let q = Q.create () in
  let times = List.init 500 (fun _ -> Rdt_sim.Prng.float rng 100.0) in
  List.iter (fun t -> ignore (Q.add q ~time:t ())) times;
  let popped = List.map fst (drain q) in
  Alcotest.(check (list (float 1e-9))) "heap sorts" (List.sort compare times)
    popped

(* --- entry pool -------------------------------------------------------- *)

let test_pool_recycles () =
  let q = Q.create () in
  ignore (Q.add q ~time:1.0 "a");
  ignore (Q.add q ~time:2.0 "b");
  Alcotest.(check int) "empty pool while scheduled" 0 (Q.pool_size q);
  ignore (drain q);
  Alcotest.(check int) "both entries recycled" 2 (Q.pool_size q);
  ignore (Q.add q ~time:3.0 "c");
  Alcotest.(check int) "add reuses a pooled entry" 1 (Q.pool_size q);
  Alcotest.(check (option string)) "reused entry fires correctly"
    (Some "c")
    (Option.map snd (Q.pop q))

let test_stale_handle_after_reuse () =
  (* a handle kept across fire + recycle + reuse must not cancel the new
     occupant of the pooled entry *)
  let q = Q.create () in
  let h = Q.add q ~time:1.0 "old" in
  (match Q.pop q with
  | Some (_, "old") -> ()
  | _ -> Alcotest.fail "expected old to fire");
  ignore (Q.add q ~time:2.0 "new");
  Q.cancel q h;
  Alcotest.(check int) "new event still live" 1 (Q.length q);
  Alcotest.(check (option string)) "new event fires" (Some "new")
    (Option.map snd (Q.pop q))

(* Reference model: a sorted association list over (time, insertion seq) —
   the semantics the pooled heap must preserve. *)
module Reference = struct
  type 'a t = {
    mutable entries : (float * int * 'a * bool ref) list;
    mutable next_seq : int;
  }

  let create () = { entries = []; next_seq = 0 }

  let add t ~time v =
    let cell = (time, t.next_seq, v, ref true) in
    t.next_seq <- t.next_seq + 1;
    t.entries <-
      List.sort
        (fun (t1, s1, _, _) (t2, s2, _, _) -> compare (t1, s1) (t2, s2))
        (cell :: t.entries);
    cell

  let cancel (_, _, _, live) = live := false

  let pop t =
    match t.entries with
    | [] -> None
    | (time, _, v, live) :: rest ->
      t.entries <- rest;
      if !live then Some (time, v) else None

  let rec pop_live t =
    match t.entries with
    | [] -> None
    | _ -> ( match pop t with None -> pop_live t | some -> some)
end

let prop_pool_matches_reference =
  QCheck.Test.make
    ~name:"pooled schedule/cancel/fire = unpooled reference order" ~count:200
    QCheck.(make ~print:string_of_int Gen.(int_bound 100_000))
    (fun seed ->
      let rng = Rdt_sim.Prng.create ~seed in
      let q = Q.create () in
      let r = Reference.create () in
      let fired_q = ref [] and fired_r = ref [] in
      (* pending pairs of (heap handle, reference cell), cancellable *)
      let pending = ref [] in
      for _ = 1 to 300 do
        match Rdt_sim.Prng.int rng 4 with
        | 0 | 1 ->
          (* schedule the same value on both sides; coarse times force
             ties so the FIFO tie-break is exercised *)
          let time = float_of_int (Rdt_sim.Prng.int rng 8) in
          let v = Rdt_sim.Prng.int rng 1_000_000 in
          let h = Q.add q ~time v in
          let cell = Reference.add r ~time v in
          pending := (h, cell) :: !pending
        | 2 -> begin
          (* fire the earliest live event on both sides *)
          match Reference.pop_live r with
          | None ->
            if Q.pop q <> None then Alcotest.fail "heap fired, reference empty"
          | Some (time, v) -> (
            match Q.pop q with
            | Some (time', v') when time = time' && v = v' ->
              fired_q := (time', v') :: !fired_q;
              fired_r := (time, v) :: !fired_r
            | Some (time', v') ->
              Alcotest.failf "heap fired (%f,%d), reference (%f,%d)" time' v'
                time v
            | None -> Alcotest.fail "reference fired, heap empty")
        end
        | _ -> begin
          match !pending with
          | [] -> ()
          | _ ->
            let arr = Array.of_list !pending in
            let pick = Rdt_sim.Prng.int rng (Array.length arr) in
            let h, cell = arr.(pick) in
            (* cancelling twice or cancelling a fired entry must stay a
               no-op on both sides *)
            Q.cancel q h;
            Reference.cancel cell
        end
      done;
      (* drain the rest: firing order must agree to the end *)
      let rec drain_both () =
        match (Reference.pop_live r, Q.pop q) with
        | None, None -> true
        | Some (t1, v1), Some (t2, v2) when t1 = t2 && v1 = v2 -> drain_both ()
        | _ -> false
      in
      drain_both () && !fired_q = !fired_r)

let suite =
  [
    Alcotest.test_case "time order" `Quick test_time_order;
    Alcotest.test_case "fifo on ties" `Quick test_fifo_ties;
    Alcotest.test_case "cancel" `Quick test_cancel;
    Alcotest.test_case "cancel idempotent" `Quick test_cancel_idempotent;
    Alcotest.test_case "length / is_empty" `Quick test_length_and_empty;
    Alcotest.test_case "peek skips cancelled" `Quick test_peek_skips_cancelled;
    Alcotest.test_case "interleaved ops" `Quick test_interleaved_operations;
    Alcotest.test_case "random stress sorts" `Quick test_many_random;
    Alcotest.test_case "pool recycles entries" `Quick test_pool_recycles;
    Alcotest.test_case "stale handle after entry reuse" `Quick
      test_stale_handle_after_reuse;
    QCheck_alcotest.to_alcotest prop_pool_matches_reference;
  ]
