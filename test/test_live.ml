(* Live-runtime tests: the committed smoke scenario runs against both
   transport backends — the deterministic simulator cluster and a real
   multi-process TCP cluster on loopback — and the black-box checker
   holds each run against the simulator replay (per-op state, transcript,
   recovery reports, recovered store directories).  The scenario crashes
   two different processes, so both runs exercise kill + durable-store
   recovery; on the TCP backend the kill is a real SIGKILL. *)

module Scenario = Rdt_verify.Scenario
module Harness = Rdt_verify.Harness
module Oracles = Rdt_verify.Oracles

let corpus_dir =
  if Sys.file_exists "corpus" then "corpus" else "test/corpus"

(* The TCP tests spawn node processes by exec'ing the CLI (declared as a
   test dep): Unix.fork is off the table inside this binary because
   earlier suites (parallel, shards) have already created domains, and
   OCaml 5 forbids forking a multi-domain runtime. *)
let cli_exe =
  let cand = Filename.concat ".." "bin/rdtgc_cli.exe" in
  if Sys.file_exists cand then cand else "_build/default/bin/rdtgc_cli.exe"

let tcp_backend () =
  if Sys.file_exists cli_exe then Rdt_live.Cluster.Exec cli_exe
  else Alcotest.skip ()

let smoke_scenario () =
  match Scenario.load (Filename.concat corpus_dir "live_smoke.scn") with
  | Ok sc -> sc
  | Error e -> Alcotest.failf "cannot load live_smoke.scn: %s" e

let fresh_root name =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "rdtgc-test-%s-%d" name (Unix.getpid ()))
  in
  Harness.rm_rf dir;
  dir

let check_clean what (vs : Oracles.violation list) =
  List.iter (fun v -> Format.eprintf "%s: %a@." what Oracles.pp_violation v) vs;
  Alcotest.(check int) what 0 (List.length vs)

let run_and_check ~name ~crashes run =
  let root = fresh_root name in
  Fun.protect
    ~finally:(fun () -> Harness.rm_rf root)
    (fun () ->
      match run ~root with
      | Error e -> Alcotest.failf "%s cluster run failed: %s" name e
      | Ok record ->
        Alcotest.(check int)
          (name ^ " recovery sessions ran")
          crashes
          (List.length record.Rdt_live.Coordinator.rr_reports);
        let scratch = fresh_root (name ^ "-replay") in
        let c =
          Rdt_live.Checker.check ~record ~root ~scratch_dir:scratch ()
        in
        check_clean (name ^ " checker") c.Rdt_live.Checker.violations;
        record)

let crash_count sc =
  List.length
    (List.filter
       (function Scenario.Crash _ -> true | _ -> false)
       sc.Scenario.ops)

let test_sim_cluster () =
  let sc = smoke_scenario () in
  ignore
    (run_and_check ~name:"sim" ~crashes:(crash_count sc) (fun ~root ->
         Rdt_live.Sim_cluster.run ~scenario:sc ~root ()))

let test_sim_deterministic () =
  let sc = smoke_scenario () in
  let one name =
    let root = fresh_root name in
    Fun.protect
      ~finally:(fun () -> Harness.rm_rf root)
      (fun () ->
        match Rdt_live.Sim_cluster.run ~scenario:sc ~root () with
        | Error e -> Alcotest.failf "sim run failed: %s" e
        | Ok r -> r)
  in
  let a = one "det-a" and b = one "det-b" in
  Alcotest.(check string) "identical transcripts"
    a.Rdt_live.Coordinator.rr_trace b.Rdt_live.Coordinator.rr_trace;
  let states r =
    List.concat_map
      (fun (o : Rdt_live.Coordinator.observation) ->
        List.map
          (fun (pid, st) ->
            Format.asprintf "op%d p%d dv=%a app=%d" o.Rdt_live.Coordinator.obs_op
              pid
              (fun ppf a ->
                Array.iter (fun v -> Format.fprintf ppf "%d," v) a)
              st.Rdt_transport.Wire.st_dv st.Rdt_transport.Wire.st_app)
          o.Rdt_live.Coordinator.obs_states)
      r.Rdt_live.Coordinator.rr_observations
  in
  Alcotest.(check (list string)) "identical observations" (states a) (states b)

let test_tcp_cluster () =
  let sc = smoke_scenario () in
  let backend = tcp_backend () in
  ignore
    (run_and_check ~name:"tcp" ~crashes:(crash_count sc) (fun ~root ->
         Rdt_live.Cluster.run ~scenario:sc ~root ~backend ()))

let test_tcp_stores_survive () =
  (* after a passing TCP run the root holds one real store directory per
     process, and each recovers to a non-empty retained set *)
  let sc = smoke_scenario () in
  let backend = tcp_backend () in
  let root = fresh_root "tcp-stores" in
  Fun.protect
    ~finally:(fun () -> Harness.rm_rf root)
    (fun () ->
      match Rdt_live.Cluster.run ~scenario:sc ~root ~backend () with
      | Error e -> Alcotest.failf "cluster run failed: %s" e
      | Ok _ ->
        for pid = 0 to sc.Scenario.n - 1 do
          let dir =
            Filename.concat (Rdt_live.Cluster.node_dir root pid) "store"
          in
          Alcotest.(check bool)
            (Printf.sprintf "p%d store dir exists" pid)
            true (Sys.file_exists dir);
          let log =
            Rdt_store.Log_store.create ~config:Harness.log_config ~pid ~dir ()
          in
          let recovered =
            Fun.protect
              ~finally:(fun () -> Rdt_store.Log_store.close log)
              (fun () ->
                (Rdt_store.Log_store.recovery log).Rdt_store.Log_store.recovered)
          in
          Alcotest.(check bool)
            (Printf.sprintf "p%d recovers a non-empty set" pid)
            true
            (not (List.is_empty recovered))
        done)

let suite =
  [
    Alcotest.test_case "sim cluster passes the black-box checker" `Quick
      test_sim_cluster;
    Alcotest.test_case "sim cluster runs are deterministic" `Quick
      test_sim_deterministic;
    Alcotest.test_case "tcp cluster passes the black-box checker (SIGKILL + \
                        recovery)" `Slow test_tcp_cluster;
    Alcotest.test_case "tcp stores recover after the run" `Slow
      test_tcp_stores_survive;
  ]
