(* Live-runtime tests: the committed smoke scenario runs against both
   transport backends — the deterministic simulator cluster and a real
   multi-process TCP cluster on loopback — and the black-box checker
   holds each run against the simulator replay (per-op state, transcript,
   recovery reports, recovered store directories).  The scenario crashes
   two different processes, so both runs exercise kill + durable-store
   recovery; on the TCP backend the kill is a real SIGKILL. *)

module Scenario = Rdt_verify.Scenario
module Harness = Rdt_verify.Harness
module Oracles = Rdt_verify.Oracles
module Transport = Rdt_transport.Transport
module Wire = Rdt_transport.Wire
module Nemesis = Rdt_transport.Nemesis
module Live_fuzz = Rdt_live.Live_fuzz

let corpus_dir =
  if Sys.file_exists "corpus" then "corpus" else "test/corpus"

(* The TCP tests spawn node processes by exec'ing the CLI (declared as a
   test dep): Unix.fork is off the table inside this binary because
   earlier suites (parallel, shards) have already created domains, and
   OCaml 5 forbids forking a multi-domain runtime. *)
let cli_exe =
  let cand = Filename.concat ".." "bin/rdtgc_cli.exe" in
  if Sys.file_exists cand then cand else "_build/default/bin/rdtgc_cli.exe"

let tcp_backend () =
  if Sys.file_exists cli_exe then Rdt_live.Cluster.Exec cli_exe
  else Alcotest.skip ()

let smoke_scenario () =
  match Scenario.load (Filename.concat corpus_dir "live_smoke.scn") with
  | Ok sc -> sc
  | Error e -> Alcotest.failf "cannot load live_smoke.scn: %s" e

let fresh_root name =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "rdtgc-test-%s-%d" name (Unix.getpid ()))
  in
  Harness.rm_rf dir;
  dir

let check_clean what (vs : Oracles.violation list) =
  List.iter (fun v -> Format.eprintf "%s: %a@." what Oracles.pp_violation v) vs;
  Alcotest.(check int) what 0 (List.length vs)

let run_and_check ~name ~crashes run =
  let root = fresh_root name in
  Fun.protect
    ~finally:(fun () -> Harness.rm_rf root)
    (fun () ->
      match run ~root with
      | Error e -> Alcotest.failf "%s cluster run failed: %s" name e
      | Ok record ->
        Alcotest.(check int)
          (name ^ " recovery sessions ran")
          crashes
          (List.length record.Rdt_live.Coordinator.rr_reports);
        let scratch = fresh_root (name ^ "-replay") in
        let c =
          Rdt_live.Checker.check ~record ~root ~scratch_dir:scratch ()
        in
        check_clean (name ^ " checker") c.Rdt_live.Checker.violations;
        record)

let crash_count sc =
  List.length
    (List.filter
       (function Scenario.Crash _ -> true | _ -> false)
       sc.Scenario.ops)

let test_sim_cluster () =
  let sc = smoke_scenario () in
  ignore
    (run_and_check ~name:"sim" ~crashes:(crash_count sc) (fun ~root ->
         Rdt_live.Sim_cluster.run ~scenario:sc ~root ()))

let test_sim_deterministic () =
  let sc = smoke_scenario () in
  let one name =
    let root = fresh_root name in
    Fun.protect
      ~finally:(fun () -> Harness.rm_rf root)
      (fun () ->
        match Rdt_live.Sim_cluster.run ~scenario:sc ~root () with
        | Error e -> Alcotest.failf "sim run failed: %s" e
        | Ok r -> r)
  in
  let a = one "det-a" and b = one "det-b" in
  Alcotest.(check string) "identical transcripts"
    a.Rdt_live.Coordinator.rr_trace b.Rdt_live.Coordinator.rr_trace;
  let states r =
    List.concat_map
      (fun (o : Rdt_live.Coordinator.observation) ->
        List.map
          (fun (pid, st) ->
            Format.asprintf "op%d p%d dv=%a app=%d" o.Rdt_live.Coordinator.obs_op
              pid
              (fun ppf a ->
                Array.iter (fun v -> Format.fprintf ppf "%d," v) a)
              st.Rdt_transport.Wire.st_dv st.Rdt_transport.Wire.st_app)
          o.Rdt_live.Coordinator.obs_states)
      r.Rdt_live.Coordinator.rr_observations
  in
  Alcotest.(check (list string)) "identical observations" (states a) (states b)

let test_tcp_cluster () =
  let sc = smoke_scenario () in
  let backend = tcp_backend () in
  ignore
    (run_and_check ~name:"tcp" ~crashes:(crash_count sc) (fun ~root ->
         Rdt_live.Cluster.run ~scenario:sc ~root ~backend ()))

let test_tcp_stores_survive () =
  (* after a passing TCP run the root holds one real store directory per
     process, and each recovers to a non-empty retained set *)
  let sc = smoke_scenario () in
  let backend = tcp_backend () in
  let root = fresh_root "tcp-stores" in
  Fun.protect
    ~finally:(fun () -> Harness.rm_rf root)
    (fun () ->
      match Rdt_live.Cluster.run ~scenario:sc ~root ~backend () with
      | Error e -> Alcotest.failf "cluster run failed: %s" e
      | Ok _ ->
        for pid = 0 to sc.Scenario.n - 1 do
          let dir =
            Filename.concat (Rdt_live.Cluster.node_dir root pid) "store"
          in
          Alcotest.(check bool)
            (Printf.sprintf "p%d store dir exists" pid)
            true (Sys.file_exists dir);
          let log =
            Rdt_store.Log_store.create ~config:Harness.log_config ~pid ~dir ()
          in
          let recovered =
            Fun.protect
              ~finally:(fun () -> Rdt_store.Log_store.close log)
              (fun () ->
                (Rdt_store.Log_store.recovery log).Rdt_store.Log_store.recovered)
          in
          Alcotest.(check bool)
            (Printf.sprintf "p%d recovers a non-empty set" pid)
            true
            (not (List.is_empty recovered))
        done)

(* --- wire-error surfacing on a live socket ------------------------------ *)

let rec write_all fd b pos len =
  if len > 0 then begin
    let k = Unix.write fd b pos len in
    write_all fd b (pos + k) (len - k)
  end

(* Connect a raw client to a fresh TCP endpoint, identify as [pid 5],
   write the crafted byte sequences, and poll until [want] events (or a
   deadline) arrive.  Returns the events in arrival order. *)
let drive_raw ?(close_early = false) ~want chunks =
  let tr = Rdt_live.Tcp_transport.create ~me:9 () in
  let events = ref [] in
  let count = ref 0 in
  Transport.set_handler tr (fun ev ->
      events := ev :: !events;
      incr count);
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Transport.close tr)
    (fun () ->
      Unix.connect fd
        (Unix.ADDR_INET (Unix.inet_addr_loopback, Transport.listen_port tr));
      write_all fd (Wire.encode (Wire.Ident { pid = 5 })) 0
        (Bytes.length (Wire.encode (Wire.Ident { pid = 5 })));
      List.iter (fun b -> write_all fd b 0 (Bytes.length b)) chunks;
      if close_early then Unix.close fd;
      let deadline = Unix.gettimeofday () +. 5.0 in
      while !count < want && Unix.gettimeofday () < deadline do
        ignore (Transport.poll tr ~timeout:0.05)
      done;
      List.rev !events)

let sample_app =
  Wire.App { epoch = 1; msg_id = 3; src = 5; dv = [| 1; 2; 3 |]; index = 1 }

let header_with ~len =
  let b = Bytes.create Wire.header_bytes in
  Bytes.set_int32_be b 0 (Int32.of_int len);
  Bytes.set_int32_be b 4 0l;
  b

let check_garbled what ev pred =
  match ev with
  | Transport.Garbled { peer = Some 5; error } when pred error -> ()
  | Transport.Garbled { peer; error } ->
    Alcotest.failf "%s: unexpected Garbled (peer=%s): %s" what
      (match peer with Some p -> string_of_int p | None -> "?")
      (Wire.error_to_string error)
  | _ -> Alcotest.failf "%s: expected a Garbled event" what

let check_peer_down what ev =
  match ev with
  | Transport.Peer_down { peer = 5 } -> ()
  | _ -> Alcotest.failf "%s: expected Peer_down for the garbled link" what

(* A garbage length prefix makes the next frame boundary unknowable: the
   transport must surface the decode error and drop the link. *)
let test_wire_error_kills_link () =
  List.iter
    (fun (what, len, pred) ->
      match drive_raw ~want:2 [ header_with ~len ] with
      | [ g; d ] ->
        check_garbled what g pred;
        check_peer_down what d
      | evs ->
        Alcotest.failf "%s: expected 2 events, got %d" what (List.length evs))
    [
      ( "oversized",
        Wire.max_frame_bytes + 1,
        function Wire.Oversized _ -> true | _ -> false );
      ("bad-length", -10, function Wire.Bad_length _ -> true | _ -> false);
    ]

(* A sound header over a corrupt body costs exactly one frame: the error
   surfaces and the very next (intact) frame on the same socket is
   delivered — the resynchronization contract the nemesis's corruption
   fault relies on. *)
let test_wire_error_resync () =
  List.iter
    (fun (what, style, pred) ->
      let garbled = Nemesis.garble style (Wire.encode sample_app) in
      match drive_raw ~want:2 [ garbled; Wire.encode sample_app ] with
      | [ g; f ] -> begin
        check_garbled what g pred;
        match f with
        | Transport.Frame { src = 5; frame = Wire.App { msg_id = 3; _ } } -> ()
        | _ -> Alcotest.failf "%s: intact frame not delivered after resync" what
      end
      | evs ->
        Alcotest.failf "%s: expected 2 events, got %d" what (List.length evs))
    [
      ( "crc-mismatch",
        Nemesis.Flip_payload,
        function Wire.Crc_mismatch _ -> true | _ -> false );
      ("bad-tag", Nemesis.Forge_tag, function Wire.Bad_tag _ -> true | _ -> false);
      ( "malformed",
        Nemesis.Trailing,
        function Wire.Malformed _ -> true | _ -> false );
    ]

let test_wire_error_truncated () =
  let enc = Wire.encode sample_app in
  let partial = Bytes.sub enc 0 (Bytes.length enc - 3) in
  match drive_raw ~close_early:true ~want:2 [ partial ] with
  | [ g; d ] ->
    check_garbled "truncated" g (function
      | Wire.Truncated _ -> true
      | _ -> false);
    check_peer_down "truncated" d
  | evs -> Alcotest.failf "truncated: expected 2 events, got %d" (List.length evs)

(* --- nemesis corpus ----------------------------------------------------- *)

let load_nemesis name =
  let path = Filename.concat corpus_dir (name ^ ".nms") in
  let ic = open_in path in
  let line = try input_line ic with End_of_file -> "" in
  close_in ic;
  match Nemesis.of_string line with
  | Ok cfg -> cfg
  | Error e -> Alcotest.failf "cannot parse %s.nms: %s" name e

let load_scenario name =
  match Scenario.load (Filename.concat corpus_dir (name ^ ".scn")) with
  | Ok sc -> sc
  | Error e -> Alcotest.failf "cannot load %s.scn: %s" name e

let replay_pair ~backend name =
  let sc = load_scenario name in
  let nemesis = load_nemesis name in
  let root = fresh_root ("nms-" ^ name) in
  Fun.protect
    ~finally:(fun () ->
      Harness.rm_rf root;
      Harness.rm_rf (root ^ ".replay"))
    (fun () ->
      match Live_fuzz.run_one ~backend ~root ~nemesis sc with
      | Error e -> Alcotest.failf "%s run failed: %s" name e
      | Ok vs -> check_clean (name ^ " oracles") vs)

let nemesis_corpus =
  [ "live_nemesis_partition"; "live_nemesis_dup"; "live_nemesis_delay" ]

let test_nemesis_corpus_sim () =
  List.iter (replay_pair ~backend:Live_fuzz.Sim) nemesis_corpus

let test_nemesis_corpus_tcp () =
  let backend = Live_fuzz.Live (tcp_backend ()) in
  replay_pair ~backend "live_nemesis_partition"

(* --- coordinator retry under partition ---------------------------------- *)

(* Regression for the command-loop retry: a directed partition between
   the coordinator and node 0 (both ways, healing after 2 suppressed
   transmissions per frame) must be ridden out by retransmission — the
   run completes and still matches the replay, and the nemesis really
   did drop frames. *)
let test_partition_heal () =
  let sc = smoke_scenario () in
  let part ~from ~to_ =
    { Nemesis.pt_from = from; pt_to = to_; pt_start = 0; pt_len = 4;
      pt_attempts = 2 }
  in
  let nemesis =
    {
      Nemesis.default with
      seed = 5;
      partitions =
        [
          part ~from:Transport.coordinator_id ~to_:0;
          part ~from:0 ~to_:Transport.coordinator_id;
        ];
    }
  in
  let handles = ref [] in
  let root = fresh_root "heal" in
  Fun.protect
    ~finally:(fun () ->
      Harness.rm_rf root;
      Harness.rm_rf (root ^ ".replay"))
    (fun () ->
      let record =
        match
          Rdt_live.Sim_cluster.run ~scenario:sc ~root ~nemesis
            ~on_nemesis:(fun hs -> handles := hs) ()
        with
        | Error e -> Alcotest.failf "partitioned run failed: %s" e
        | Ok r -> r
      in
      let scratch = root ^ ".replay" in
      let c = Rdt_live.Checker.check ~record ~root ~scratch_dir:scratch () in
      check_clean "partition-heal checker" c.Rdt_live.Checker.violations;
      let dropped =
        List.fold_left
          (fun acc h -> acc + (Nemesis.stats h).Nemesis.st_dropped)
          0 !handles
      in
      Alcotest.(check bool) "the partition suppressed transmissions" true
        (dropped > 0))

(* --- the injected duplicate-delivery bug -------------------------------- *)

(* The campaign's acceptance bar: with the test-only delivery-duplication
   fault switched on, the oracles catch it, and the committed shrunk
   reproducer pins it forever. *)
let with_dup_deliver f =
  Rdt_live.Node.set_test_dup_deliver true;
  Fun.protect
    ~finally:(fun () -> Rdt_live.Node.set_test_dup_deliver false)
    f

let test_dup_bug_campaign_catches () =
  let root = fresh_root "dup-campaign" in
  Fun.protect
    ~finally:(fun () -> Harness.rm_rf root)
    (fun () ->
      let report =
        Live_fuzz.campaign ~backend:Live_fuzz.Sim ~shrink:false
          ~mutate_deliver:true ~seed:7 ~runs:1 ~max_procs:4 ~root ()
      in
      Alcotest.(check bool) "mutated cluster caught" false
        (Live_fuzz.passed report))

let test_dup_bug_reproducer () =
  let sc = load_scenario "live_dup_bug.min" in
  let nemesis = Nemesis.default in
  let run () =
    let root = fresh_root "dup-min" in
    Fun.protect
      ~finally:(fun () ->
        Harness.rm_rf root;
        Harness.rm_rf (root ^ ".replay"))
      (fun () ->
        match Live_fuzz.run_one ~backend:Live_fuzz.Sim ~root ~nemesis sc with
        | Error e -> Alcotest.failf "reproducer run failed: %s" e
        | Ok vs -> vs)
  in
  let buggy = with_dup_deliver run in
  Alcotest.(check bool) "reproducer catches the duplication" true
    (not (List.is_empty buggy));
  check_clean "reproducer is clean without the bug" (run ())

(* --- campaign determinism ----------------------------------------------- *)

let test_campaign_deterministic () =
  let one name =
    let buf = Buffer.create 1024 in
    let root = fresh_root name in
    Fun.protect
      ~finally:(fun () ->
        Harness.rm_rf root;
        Harness.rm_rf (Filename.concat root "run" ^ ".replay"))
      (fun () ->
        ignore
          (Live_fuzz.campaign ~backend:Live_fuzz.Sim ~shrink:false
             ~log:(fun s ->
               Buffer.add_string buf s;
               Buffer.add_char buf '\n')
             ~seed:11 ~runs:2 ~max_procs:3 ~root ());
        Buffer.contents buf)
  in
  (* distinct roots: the log must be a pure function of the arguments *)
  let a = one "camp-a" and b = one "camp-b" in
  Alcotest.(check string) "byte-identical campaign logs" a b

let suite =
  [
    Alcotest.test_case "sim cluster passes the black-box checker" `Quick
      test_sim_cluster;
    Alcotest.test_case "sim cluster runs are deterministic" `Quick
      test_sim_deterministic;
    Alcotest.test_case "tcp cluster passes the black-box checker (SIGKILL + \
                        recovery)" `Slow test_tcp_cluster;
    Alcotest.test_case "tcp stores recover after the run" `Slow
      test_tcp_stores_survive;
    Alcotest.test_case "garbage length prefix surfaces and drops the link"
      `Quick test_wire_error_kills_link;
    Alcotest.test_case "corrupt body surfaces and resynchronizes" `Quick
      test_wire_error_resync;
    Alcotest.test_case "mid-frame hangup surfaces as Truncated" `Quick
      test_wire_error_truncated;
    Alcotest.test_case "nemesis corpus replays clean on the simulator" `Quick
      test_nemesis_corpus_sim;
    Alcotest.test_case "nemesis corpus replays clean over TCP" `Slow
      test_nemesis_corpus_tcp;
    Alcotest.test_case "coordinator retry rides out a healing partition"
      `Quick test_partition_heal;
    Alcotest.test_case "campaign catches the injected duplicate delivery"
      `Quick test_dup_bug_campaign_catches;
    Alcotest.test_case "committed dup-bug reproducer still bites" `Quick
      test_dup_bug_reproducer;
    Alcotest.test_case "campaign logs are byte-identical across runs" `Quick
      test_campaign_deterministic;
  ]
