(* Zigzag-path machinery, validated on the paper's Figure 1 and Figure 2
   plus property tests relating zigzag reachability to causality. *)

module Ccp = Rdt_ccp.Ccp
module Zigzag = Rdt_ccp.Zigzag
module Figures = Rdt_scenarios.Figures

let ck pid index : Ccp.ckpt = { pid; index }

let verdict : Zigzag.verdict Alcotest.testable =
  Alcotest.testable
    (fun ppf -> function
      | Zigzag.Causal_path -> Format.pp_print_string ppf "Causal_path"
      | Zigzag.Non_causal_zigzag -> Format.pp_print_string ppf "Non_causal_zigzag"
      | Zigzag.Not_a_path -> Format.pp_print_string ppf "Not_a_path")
    ( = )

(* Figure 1 (paper pids p1,p2,p3 = 0,1,2): [m1,m2] and [m1,m4] are
   C-paths; [m5,m4] is a Z-path from s1_p0 to s2_p2. *)
let test_figure1_classifications () =
  let f = Figures.figure1 () in
  Alcotest.check verdict "[m1,m2] is a C-path" Zigzag.Causal_path
    (Zigzag.classify_sequence f.ccp ~from_:(ck 0 0) ~to_:(ck 2 1)
       [ f.m1; f.m2 ]);
  Alcotest.check verdict "[m1,m4] is a C-path" Zigzag.Causal_path
    (Zigzag.classify_sequence f.ccp ~from_:(ck 0 0) ~to_:(ck 2 2)
       [ f.m1; f.m4 ]);
  Alcotest.check verdict "[m5,m4] is a Z-path" Zigzag.Non_causal_zigzag
    (Zigzag.classify_sequence f.ccp ~from_:(ck 0 1) ~to_:(ck 2 2)
       [ f.m5; f.m4 ]);
  Alcotest.check verdict "[m2,m1] is no path" Zigzag.Not_a_path
    (Zigzag.classify_sequence f.ccp ~from_:(ck 0 0) ~to_:(ck 2 1)
       [ f.m2; f.m1 ])

let test_figure1_path_exists () =
  let f = Figures.figure1 () in
  Alcotest.(check bool) "s1_p0 ~~> s2_p2" true
    (Zigzag.path_exists f.ccp (ck 0 1) (ck 2 2));
  Alcotest.(check bool) "s2_p2 has no path back" false
    (Zigzag.path_exists f.ccp (ck 2 2) (ck 0 1));
  (* the zigzag relation respects condition (iii): nothing lands before
     the initial checkpoint of p2 *)
  Alcotest.(check bool) "nothing reaches s0_p2" false
    (Zigzag.path_exists f.ccp (ck 0 0) (ck 2 0))

let test_figure1_no_useless () =
  let f = Figures.figure1 () in
  Alcotest.(check (list string)) "no useless checkpoints" []
    (List.map
       (fun (c : Ccp.ckpt) -> Printf.sprintf "%d_%d" c.pid c.index)
       (Zigzag.useless f.ccp))

let test_figure1_sequence_ends_matter () =
  let f = Figures.figure1 () in
  (* [m5,m4] does not start after s0_p0's successor... it does start after
     s0 (interval 2 >= 1), but cannot end later than p2's volatile *)
  Alcotest.check verdict "[m5,m4] from s0 is still a zigzag"
    Zigzag.Non_causal_zigzag
    (Zigzag.classify_sequence f.ccp ~from_:(ck 0 0) ~to_:(ck 2 2)
       [ f.m5; f.m4 ]);
  (* but from the volatile checkpoint of p0 nothing was sent *)
  Alcotest.check verdict "nothing starts at the volatile" Zigzag.Not_a_path
    (Zigzag.classify_sequence f.ccp ~from_:(ck 0 2) ~to_:(ck 2 2)
       [ f.m5; f.m4 ])

(* Figure 2: the domino pattern.  [m2,m1] is a zigzag cycle on s1_p0; all
   non-initial stable checkpoints are useless. *)
let test_figure2_cycle () =
  let f = Figures.figure2 () in
  Alcotest.(check bool) "s1_p0 in a Z-cycle" true (Zigzag.cycle f.ccp (ck 0 1));
  Alcotest.check verdict "[m2,m1] zigzag" Zigzag.Non_causal_zigzag
    (Zigzag.classify_sequence f.ccp ~from_:(ck 0 1) ~to_:(ck 0 1)
       [ f.m2; f.m1 ])

let test_figure2_useless_set () =
  let f = Figures.figure2 () in
  let useless =
    List.sort compare
      (List.map
         (fun (c : Ccp.ckpt) -> (c.pid, c.index))
         (Zigzag.useless f.ccp))
  in
  Alcotest.(check (list (pair int int)))
    "all non-initial stable checkpoints useless"
    [ (0, 1); (0, 2); (1, 1) ]
    useless

let test_initial_checkpoints_never_useless () =
  let f = Figures.figure2 () in
  Alcotest.(check bool) "s0_p0" false (Zigzag.cycle f.ccp (ck 0 0));
  Alcotest.(check bool) "s0_p1" false (Zigzag.cycle f.ccp (ck 1 0))

let test_reach_shape () =
  let f = Figures.figure1 () in
  let r = Zigzag.reach f.ccp ~src:(ck 0 1) in
  (* from s1_p0: m5 lands at p1 in interval 2, m3 at p2 in interval 2, and
     [m5,m4] also lands at p2 in interval 2 *)
  Alcotest.(check int) "lands at p1 interval 2" 2 r.(1);
  Alcotest.(check int) "lands at p2 interval 2" 2 r.(2);
  Alcotest.(check bool) "nothing lands back at p0" true (r.(0) = max_int)

(* Properties: a causal precedence between checkpoints implies a zigzag
   path (C-paths are zigzag paths), on arbitrary random traces. *)
let prop_causal_implies_zigzag =
  QCheck.Test.make ~name:"causal precedence implies zigzag path" ~count:60
    QCheck.(make Gen.(pair (int_bound 10_000) (int_range 2 5)))
    (fun (seed, n) ->
      let trace = Helpers.random_trace ~seed ~n ~ops:60 in
      let ccp = Ccp.of_trace trace in
      List.for_all
        (fun a ->
          List.for_all
            (fun (b : Ccp.ckpt) ->
              (* restrict to cross-process precedence: local successor
                 precedence involves no message *)
              a.Ccp.pid = b.Ccp.pid
              || (not (Ccp.precedes ccp a b))
              || Zigzag.path_exists ccp a b)
            (Ccp.checkpoints ccp))
        (Ccp.checkpoints ccp))

let prop_reach_monotone =
  QCheck.Test.make ~name:"zigzag reach is monotone in the source index"
    ~count:40
    QCheck.(make Gen.(pair (int_bound 10_000) (int_range 2 4)))
    (fun (seed, n) ->
      let trace = Helpers.random_trace ~seed ~n ~ops:50 in
      let ccp = Ccp.of_trace trace in
      List.for_all
        (fun pid ->
          let rec go index ok =
            if index >= Ccp.volatile_index ccp pid then ok
            else begin
              let r1 = Zigzag.reach ccp ~src:{ Ccp.pid; index } in
              let r2 = Zigzag.reach ccp ~src:{ Ccp.pid; index = index + 1 } in
              (* an earlier source reaches at least as much *)
              let dominated =
                Array.for_all2 (fun a b -> a <= b) r1 r2
              in
              go (index + 1) (ok && dominated)
            end
          in
          go 0 true)
        (List.init n Fun.id))

(* The zigzag relation is a function of the checkpoint-and-communication
   pattern, not of the particular linearization the trace happened to
   record.  Replay the events of a random trace in a different but still
   causal-order-preserving interleaving (per-process order kept, every
   receive after its send) and the analysis must not move. *)
let causal_shuffle ~seed trace =
  let module Trace = Rdt_ccp.Trace in
  let rng = Rdt_sim.Prng.create ~seed in
  let n = Trace.n trace in
  let queues =
    Array.init n (fun pid -> ref (Trace.events_of trace ~pid))
  in
  let sent = Hashtbl.create 64 in
  let out = Trace.create ~n in
  let total = List.length (Trace.all_events trace) in
  for _ = 1 to total do
    let ready =
      List.filter
        (fun pid ->
          match !(queues.(pid)) with
          | [] -> false
          | e :: _ -> (
            match e.Trace.kind with
            | Trace.Receive { msg_id; _ } -> Hashtbl.mem sent msg_id
            | Trace.Checkpoint _ | Trace.Send _ -> true))
        (List.init n Fun.id)
    in
    (* the recorded order itself is causal, so some head is always ready *)
    let pid = List.nth ready (Rdt_sim.Prng.int rng (List.length ready)) in
    match !(queues.(pid)) with
    | [] -> assert false
    | e :: rest ->
      queues.(pid) := rest;
      (match e.Trace.kind with
      | Trace.Checkpoint { index } -> Trace.record_checkpoint out ~pid ~index
      | Trace.Send { msg_id; dst } ->
        Hashtbl.replace sent msg_id ();
        Trace.record_send out ~pid ~msg_id ~dst
      | Trace.Receive { msg_id; src } ->
        Trace.record_receive out ~pid ~msg_id ~src)
  done;
  out

let prop_reorder_invariance =
  QCheck.Test.make
    ~name:"zigzag analysis invariant under causal reorderings" ~count:40
    QCheck.(make Gen.(pair (int_bound 10_000) (int_range 2 5)))
    (fun (seed, n) ->
      let trace = Helpers.random_trace ~seed ~n ~ops:60 in
      let ccp = Ccp.of_trace trace in
      let ccp' = Ccp.of_trace (causal_shuffle ~seed:(seed lxor 0x5a5a) trace) in
      let key (c : Ccp.ckpt) = (c.pid, c.index) in
      List.sort compare (List.map key (Zigzag.useless ccp))
      = List.sort compare (List.map key (Zigzag.useless ccp'))
      && List.for_all
           (fun (c : Ccp.ckpt) ->
             Zigzag.reach ccp ~src:c = Zigzag.reach ccp' ~src:c)
           (Ccp.checkpoints ccp))

let suite =
  [
    Alcotest.test_case "figure 1 classifications" `Quick
      test_figure1_classifications;
    Alcotest.test_case "figure 1 path existence" `Quick
      test_figure1_path_exists;
    Alcotest.test_case "figure 1 has no useless checkpoint" `Quick
      test_figure1_no_useless;
    Alcotest.test_case "figure 1 sequence endpoints" `Quick
      test_figure1_sequence_ends_matter;
    Alcotest.test_case "figure 2 zigzag cycle" `Quick test_figure2_cycle;
    Alcotest.test_case "figure 2 useless set" `Quick test_figure2_useless_set;
    Alcotest.test_case "initial checkpoints never useless" `Quick
      test_initial_checkpoints_never_useless;
    Alcotest.test_case "reach shape" `Quick test_reach_shape;
    QCheck_alcotest.to_alcotest prop_causal_implies_zigzag;
    QCheck_alcotest.to_alcotest prop_reach_monotone;
    QCheck_alcotest.to_alcotest prop_reorder_invariance;
  ]
