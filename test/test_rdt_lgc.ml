(* RDT-LGC: the paper's Figure 4 execution, the Figure 5 worst case, the
   rollback algorithm (Algorithm 3), and property tests of Theorems 3-5
   against the trace-based oracle. *)

module Rdt_lgc = Rdt_gc.Rdt_lgc
module Oracle = Rdt_gc.Oracle
module Script = Rdt_scenarios.Script
module Figures = Rdt_scenarios.Figures
module Protocol = Rdt_protocols.Protocol
module Middleware = Rdt_protocols.Middleware
module Stable_store = Rdt_storage.Stable_store
module Ccp = Rdt_ccp.Ccp

let uc_c = Alcotest.(array (option int))

(* --- Figure 4 --------------------------------------------------------- *)

let test_figure4_final_state () =
  let s = Figures.figure4 () in
  (* paper p1 = pid 0: only s^0, knows nothing *)
  Alcotest.(check (array int)) "p0 dv" [| 1; 0; 0 |] (Script.dv s 0);
  Alcotest.check uc_c "p0 uc" [| Some 0; None; None |] (Script.uc s 0);
  (* paper p2 = pid 1 *)
  Alcotest.(check (array int)) "p1 dv" [| 1; 4; 2 |] (Script.dv s 1);
  Alcotest.check uc_c "p1 uc" [| Some 0; Some 3; Some 1 |] (Script.uc s 1);
  (* paper p3 = pid 2 *)
  Alcotest.(check (array int)) "p2 dv" [| 1; 4; 4 |] (Script.dv s 2);
  Alcotest.check uc_c "p2 uc" [| Some 0; Some 3; Some 3 |] (Script.uc s 2)

let test_figure4_eliminations () =
  let s = Figures.figure4 () in
  (* paper: s^2_2, s^1_3, s^2_3 eliminated *)
  Alcotest.(check (list int)) "p1 retains" [ 0; 1; 3 ] (Script.retained s 1);
  Alcotest.(check (list int)) "p2 retains" [ 0; 3 ] (Script.retained s 2);
  Alcotest.(check (list int)) "p0 retains" [ 0 ] (Script.retained s 0);
  let total_eliminated =
    List.fold_left
      (fun acc pid ->
        acc
        + (Stable_store.stats (Script.store s pid)).Stable_store.eliminated_total)
      0 [ 0; 1; 2 ]
  in
  Alcotest.(check int) "three eliminated in total" 3 total_eliminated

let test_figure4_no_forced () =
  let s = Figures.figure4 () in
  List.iter
    (fun pid ->
      Alcotest.(check int)
        (Printf.sprintf "p%d forced" pid)
        0 (Script.forced_taken s pid))
    [ 0; 1; 2 ]

let test_figure4_is_rdt () =
  let s = Figures.figure4 () in
  Alcotest.(check bool) "RD-trackable" true
    (Rdt_ccp.Rdt_check.holds (Script.ccp s))

let test_figure4_s1_p1_obsolete_but_retained () =
  let s = Figures.figure4 () in
  let ccp = Script.ccp s in
  (* the paper's point: s^1 of (paper) p2 is obsolete, yet causal knowledge
     cannot identify it — RDT-LGC keeps it *)
  Alcotest.(check bool) "oracle says obsolete" true
    (Oracle.is_obsolete ccp { Ccp.pid = 1; index = 1 });
  Alcotest.(check bool) "still stored" true
    (Stable_store.mem (Script.store s 1) ~index:1)

let test_figure4_safety_and_optimality () =
  let s = Figures.figure4 () in
  let ccp = Script.ccp s in
  (* safety: everything eliminated is obsolete *)
  List.iter
    (fun pid ->
      let retained = Script.retained s pid in
      List.iter
        (fun index ->
          if not (List.mem index retained) then
            Alcotest.failf "p%d wrongly eliminated s^%d" pid index)
        (Oracle.retained ccp ~pid))
    [ 0; 1; 2 ];
  (* the eliminated ones are exactly the oracle-obsolete minus s^1_p1 *)
  let obsolete =
    List.sort compare
      (List.map (fun (c : Ccp.ckpt) -> (c.pid, c.index)) (Oracle.obsolete ccp))
  in
  Alcotest.(check (list (pair int int)))
    "oracle set" [ (1, 1); (1, 2); (2, 1); (2, 2) ] obsolete

(* --- Figure 5 / worst case ------------------------------------------- *)

let test_worst_case_bound_reached () =
  List.iter
    (fun n ->
      let s = Figures.worst_case ~n in
      for pid = 0 to n - 1 do
        Alcotest.(check int)
          (Printf.sprintf "n=%d p%d retains n" n pid)
          n
          (List.length (Script.retained s pid))
      done)
    [ 2; 3; 4; 6; 8 ]

let test_worst_case_transient () =
  let n = 4 in
  let s = Figures.worst_case ~n in
  (* all processes take one more checkpoint: n+1 transiently, n after *)
  for pid = 0 to n - 1 do
    Script.checkpoint s pid
  done;
  for pid = 0 to n - 1 do
    let store = Script.store s pid in
    Alcotest.(check int)
      (Printf.sprintf "p%d settles back to n" pid)
      n (Stable_store.count store);
    Alcotest.(check int)
      (Printf.sprintf "p%d peaked at n+1" pid)
      (n + 1)
      (Stable_store.stats store).Stable_store.peak_count
  done

let test_worst_case_no_forced_and_rdt () =
  let s = Figures.worst_case ~n:5 in
  for pid = 0 to 4 do
    Alcotest.(check int)
      (Printf.sprintf "p%d no forced" pid)
      0 (Script.forced_taken s pid)
  done;
  Alcotest.(check bool) "RD-trackable" true
    (Rdt_ccp.Rdt_check.holds (Script.ccp s))

let test_worst_case_nothing_collectable () =
  (* the worst case is worst *for causal knowledge*: everything RDT-LGC
     retains is exactly what Theorem 2 dictates — an omniscient collector
     could do better (it knows the latest checkpoints the processes have
     not heard about), which is precisely the gap the paper proves no
     asynchronous algorithm can close *)
  let n = 4 in
  let s = Figures.worst_case ~n in
  let snaps =
    Array.init n (fun pid ->
        Rdt_recovery.Session.snapshot_of (Script.middleware s pid))
  in
  for pid = 0 to n - 1 do
    let li = snaps.(pid).Rdt_gc.Global_gc.live_dv in
    Alcotest.(check (list int))
      (Printf.sprintf "p%d retains exactly the Theorem-2 set" pid)
      (Rdt_gc.Global_gc.theorem1_retained snaps ~me:pid ~li)
      (Script.retained s pid)
  done;
  (* and the omniscient oracle indeed retains less: the gap is real *)
  let ccp = Script.ccp s in
  Alcotest.(check bool) "omniscient knowledge would collect more" true
    (Oracle.retained_count ccp ~pid:0 < n)

(* --- Algorithm 3 (rollback) ------------------------------------------ *)

let test_rollback_rebuilds_uc () =
  (* p0 hears from p1 after s^1 (pinning s^1), then checkpoints on; a
     decentralized rollback to s^1 must rebuild UC from the stored DVs *)
  let s = Script.create ~n:2 ~protocol:Protocol.fdas ~with_lgc:true () in
  Script.checkpoint s 0;
  Script.transfer s ~src:1 ~dst:0 (* p0 hears from p1: pins s^1 *);
  Script.checkpoint s 0;
  Script.checkpoint s 0;
  Alcotest.check uc_c "before rollback" [| Some 3; Some 1 |] (Script.uc s 0);
  let mw = Script.middleware s 0 in
  (* decentralized rollback (no LI): Algorithm 3 with the restored DV *)
  Middleware.rollback mw ~to_index:1 ~li:None;
  (* after rolling back to s^1 the restored DV predates the receive from
     p1, so only the last checkpoint s^1 stays referenced; the obsolete
     s^0 is collected by Algorithm 3's final sweep *)
  Alcotest.check uc_c "after rollback" [| Some 1; None |] (Script.uc s 0);
  Alcotest.(check (list int)) "only s^1 retained" [ 1 ] (Script.retained s 0)

let test_rollback_retains_needed () =
  (* checkpoints pinned by different processes must survive a rollback *)
  let s = Script.create ~n:3 ~protocol:Protocol.fdas ~with_lgc:true () in
  Script.transfer s ~src:1 ~dst:0 (* pins s^0 because of p1 *);
  Script.checkpoint s 0;
  Script.transfer s ~src:2 ~dst:0 (* pins s^1 because of p2 *);
  Script.checkpoint s 0;
  Script.checkpoint s 0;
  Alcotest.(check (list int)) "pre-rollback retained" [ 0; 1; 3 ]
    (Script.retained s 0);
  let mw = Script.middleware s 0 in
  Middleware.rollback mw ~to_index:1 ~li:None;
  (* restored DV still knows p1's interval 1: s^0 stays pinned; the
     dependency on p2 arrived after s^1 and was rolled away *)
  Alcotest.check uc_c "uc after rollback" [| Some 1; Some 0; None |]
    (Script.uc s 0);
  Alcotest.(check (list int)) "retained" [ 0; 1 ] (Script.retained s 0)

let test_rollback_with_global_li () =
  (* with global information, stale UC entries are dropped: LI reveals
     that p1 has moved past what p0's DV knows *)
  let s = Script.create ~n:2 ~protocol:Protocol.fdas ~with_lgc:true () in
  Script.transfer s ~src:1 ~dst:0 (* p0 pins s^0 because of p1 (interval 1) *);
  Script.checkpoint s 0;
  Script.checkpoint s 0 (* s^1 collected here; retained {0, 2} *);
  (* meanwhile p1 checkpoints twice: its last stable is s^2 *)
  Script.checkpoint s 1;
  Script.checkpoint s 1;
  Alcotest.(check (list int)) "pre-rollback retained" [ 0; 2 ]
    (Script.retained s 0);
  let mw = Script.middleware s 0 in
  (* LI = [last_s+1 for each]: p0 stays at s^2 -> 3; p1 at s^2 -> 3 *)
  Middleware.rollback mw ~to_index:2 ~li:(Some [| 3; 3 |]);
  (* s^2_p1 never preceded anything at p0, so nothing is retained because
     of p1 anymore; s^0 becomes collectable *)
  Alcotest.check uc_c "uc with LI" [| Some 2; None |] (Script.uc s 0);
  Alcotest.(check (list int)) "retained" [ 2 ] (Script.retained s 0)

let test_release_outdated () =
  let s = Script.create ~n:2 ~protocol:Protocol.fdas ~with_lgc:true () in
  Script.transfer s ~src:1 ~dst:0 (* pins s^0 because of p1's interval 1 *);
  Script.checkpoint s 0;
  (match Script.collector s 0 with
  | None -> Alcotest.fail "collector missing"
  | Some lgc ->
    Alcotest.check uc_c "pinned" [| Some 1; Some 0 |] (Script.uc s 0);
    (* global knowledge: p1's last interval is now 5 *)
    Rdt_lgc.release_outdated lgc ~li:[| 2; 5 |];
    Alcotest.check uc_c "released" [| Some 1; None |] (Script.uc s 0));
  Alcotest.(check (list int)) "s^0 collected" [ 1 ] (Script.retained s 0)

(* --- the quiescence contract ------------------------------------------ *)

let test_oracle_comparison_at_quiescence () =
  (* Pins the contract the differential fuzzer's oracles rely on: the
     omniscient Oracle and RDT-LGC are compared at *post-event
     quiescence*.  While a checkpoint event is in flight the store holds
     the new checkpoint before [on_checkpoint_stored] has collected the
     released ones, so a mid-event observer sees n+1 entries and a
     retained set the Oracle would reject; both disagreements vanish by
     the time the event returns. *)
  let n = 2 in
  let mid_counts = ref [] in
  let store_of ~me =
    let st = Stable_store.create ~me in
    Stable_store.set_backend st
      {
        Stable_store.b_store =
          (fun _ -> mid_counts := Stable_store.count st :: !mid_counts);
        b_eliminate = (fun _ -> ());
        b_truncate_above = (fun ~index:_ -> ());
      };
    st
  in
  let s = Script.create ~store_of ~n ~protocol:Protocol.fdas ~with_lgc:true () in
  Script.transfer s ~src:1 ~dst:0 (* p0 pins s^0 because of p1's interval *);
  Script.checkpoint s 0 (* retained {0,1} = n *);
  Script.checkpoint s 0 (* mid-store n+1; quiescent again by return *);
  (* the probe really did catch the store above the bound... *)
  Alcotest.(check int) "probe saw the transient n+1" (n + 1)
    (List.fold_left max 0 !mid_counts);
  (* ...yet at quiescence every fuzzer oracle holds: bound back to n, and
     the omniscient retained set is a subset of what RDT-LGC kept *)
  Alcotest.(check int) "back to n at quiescence" n
    (Stable_store.count (Script.store s 0));
  Alcotest.(check (list int)) "s^1 collected once the event completed"
    [ 0; 2 ] (Script.retained s 0);
  let ccp = Script.ccp s in
  List.iter
    (fun index ->
      Alcotest.(check bool)
        (Printf.sprintf "oracle-retained s^%d survives" index)
        true
        (List.mem index (Script.retained s 0)))
    (Oracle.retained ccp ~pid:0)

let test_create_requires_fresh_store () =
  let s = Script.create ~n:2 ~protocol:Protocol.fdas ~with_lgc:false () in
  Script.checkpoint s 0;
  let mw = Script.middleware s 0 in
  Alcotest.(check bool) "rejects non-fresh store" true
    (try
       ignore
         (Rdt_lgc.create ~me:0 ~store:(Middleware.store mw)
            ~dv:(Middleware.dv mw) ~n:2);
       false
     with Invalid_argument _ -> true)

(* --- properties over random executions -------------------------------- *)

let arb_case = QCheck.(make ~print:string_of_int Gen.(int_bound 2_000))

let prop_safety =
  QCheck.Test.make ~name:"Theorem 4: only obsolete checkpoints eliminated"
    ~count:50 arb_case (fun case ->
      let t = Helpers.run_case case in
      Helpers.audit_safety t;
      true)

let prop_optimality =
  QCheck.Test.make
    ~name:"Theorem 5: everything causally identifiable is eliminated"
    ~count:50 arb_case (fun case ->
      let t = Helpers.run_case case in
      Helpers.audit_optimality ~exact:true t;
      true)

let prop_invariant =
  QCheck.Test.make ~name:"Theorem 3: Equation 4 invariant" ~count:20 arb_case
    (fun case ->
      let t = Helpers.run_case case in
      Helpers.audit_invariant t;
      true)

let prop_bound =
  QCheck.Test.make ~name:"Section 4.5: at most n retained (n+1 transient)"
    ~count:50 arb_case (fun case ->
      let t = Helpers.run_case case in
      Helpers.audit_bound t;
      true)

let prop_audits_throughout_execution =
  QCheck.Test.make ~name:"audits hold at every sample point" ~count:8 arb_case
    (fun case ->
      let cfg = Helpers.sim_config_of_case case in
      let t = Rdt_core.Runner.create cfg in
      Rdt_core.Runner.set_on_sample t (fun t ->
          Helpers.audit_safety t;
          Helpers.audit_optimality ~exact:true t;
          Helpers.audit_bound t);
      Rdt_core.Runner.run t;
      true)

let suite =
  [
    Alcotest.test_case "figure 4 final DV/UC state" `Quick
      test_figure4_final_state;
    Alcotest.test_case "figure 4 eliminations" `Quick test_figure4_eliminations;
    Alcotest.test_case "figure 4 takes no forced checkpoint" `Quick
      test_figure4_no_forced;
    Alcotest.test_case "figure 4 is RDT" `Quick test_figure4_is_rdt;
    Alcotest.test_case "figure 4: s1_p2 obsolete but retained" `Quick
      test_figure4_s1_p1_obsolete_but_retained;
    Alcotest.test_case "figure 4 safety and oracle set" `Quick
      test_figure4_safety_and_optimality;
    Alcotest.test_case "worst case reaches bound n" `Quick
      test_worst_case_bound_reached;
    Alcotest.test_case "worst case transient n+1" `Quick
      test_worst_case_transient;
    Alcotest.test_case "worst case clean (no forced, RDT)" `Quick
      test_worst_case_no_forced_and_rdt;
    Alcotest.test_case "worst case beats any collector" `Quick
      test_worst_case_nothing_collectable;
    Alcotest.test_case "rollback rebuilds UC (Algorithm 3)" `Quick
      test_rollback_rebuilds_uc;
    Alcotest.test_case "rollback retains needed checkpoints" `Quick
      test_rollback_retains_needed;
    Alcotest.test_case "rollback with global LI" `Quick
      test_rollback_with_global_li;
    Alcotest.test_case "release_outdated" `Quick test_release_outdated;
    Alcotest.test_case "oracle comparison point is post-event quiescence"
      `Quick test_oracle_comparison_at_quiescence;
    Alcotest.test_case "create requires fresh store" `Quick
      test_create_requires_fresh_store;
    QCheck_alcotest.to_alcotest prop_safety;
    QCheck_alcotest.to_alcotest prop_optimality;
    QCheck_alcotest.to_alcotest prop_invariant;
    QCheck_alcotest.to_alcotest prop_bound;
    QCheck_alcotest.to_alcotest prop_audits_throughout_execution;
  ]
