(* Steady-state allocation discipline of the sharded executors
   (DESIGN.md §13).  The multi-shard engine once allocated ~130k words
   per whole run — tuple keys, closure window jobs, per-record stamp
   tuples — which is what made shards slower than the sequential
   executor.  These tests pin the repaired steady state: beyond the
   event queue's boxed pop result (an option around a (float, value)
   tuple, a few words per event, deliberately outside the zero-alloc
   set), dispatch allocates nothing — neither the merged inline
   executor per event nor the windowed executor per window.

   The bounds are deliberately loose (16 words/event, 64 words/window)
   so timer jitter or a future boxing tweak cannot flake them, while the
   storm class they guard against — hundreds of words per event — stays
   two orders of magnitude away. *)

module Engine = Rdt_sim.Engine
module Network = Rdt_sim.Network

let words_per_event = 16.0
let words_per_window = 64.0

(* a sharded engine with no-op receivers and [msgs] pre-queued
   deliveries, so the measured drain executes events without the
   handlers themselves sending (sends allocate their Deliver cell, which
   would drown the dispatch signal being measured) *)
let preloaded ~shards ~autotune ~msgs =
  let n = 8 in
  let e = Engine.create ~n ~seed:3 ~net:Network.default ~shards ~autotune () in
  for p = 0 to n - 1 do
    Engine.set_receiver e p (fun ~src:_ () -> ())
  done;
  for i = 1 to msgs do
    Engine.send e ~src:(i mod n) ~dst:((i + 3) mod n) ()
  done;
  e

let test_merged_per_event () =
  (* autotune on + host narrower than 4 shards = merged inline executor;
     on a wide machine this still holds (the windowed bound below is
     looser than this one) *)
  let e = preloaded ~shards:4 ~autotune:true ~msgs:4000 in
  (* warm the queue pools and the trace of the first pops *)
  for _ = 1 to 1000 do
    ignore (Engine.step e)
  done;
  let ev0 = (Engine.stats e).Engine.events in
  let w0 = Gc.minor_words () in
  while Engine.step e do
    ()
  done;
  let dw = Gc.minor_words () -. w0 in
  let ev = (Engine.stats e).Engine.events - ev0 in
  Alcotest.(check bool) "drained a real workload" true (ev > 1000);
  let per_event = dw /. float_of_int ev in
  if per_event > words_per_event then
    Alcotest.failf "merged executor: %.1f words/event (bound %.0f)" per_event
      words_per_event

let test_windowed_per_window () =
  (* autotune off = windowed execution regardless of the host; [step]
     runs one conservative round per call on the calling domain, so the
     window machinery (boundary autotuning, dispatch, barrier close) is
     measured without domain-local GC counters getting involved.
     Deliveries all land within one delay band of their send, so to get
     many windows the workload is pinned no-op actions staggered across
     virtual time — a couple of events per conservative round. *)
  let e = preloaded ~shards:4 ~autotune:false ~msgs:0 in
  let nop () = () in
  for i = 1 to 4000 do
    ignore (Engine.schedule e ~pin:(i mod 8) ~at:(float_of_int i *. 0.3) nop)
  done;
  for _ = 1 to 50 do
    ignore (Engine.step e)
  done;
  let ev0 = (Engine.stats e).Engine.events in
  let w0 = Gc.minor_words () in
  let windows = ref 0 in
  while Engine.step e do
    incr windows
  done;
  let dw = Gc.minor_words () -. w0 in
  let ev = (Engine.stats e).Engine.events - ev0 in
  Alcotest.(check bool) "executed real windows" true (!windows > 100);
  let overhead = dw -. (words_per_event *. float_of_int ev) in
  let per_window = overhead /. float_of_int !windows in
  if per_window > words_per_window then
    Alcotest.failf
      "windowed executor: %.1f words/window beyond the per-event budget \
       (bound %.0f)"
      per_window words_per_window

let suite =
  [
    Alcotest.test_case "merged executor allocates nothing per event" `Quick
      test_merged_per_event;
    Alcotest.test_case "windowed executor allocates nothing per window" `Quick
      test_windowed_per_window;
  ]
