(* rdt_lint test suite.  Three layers:

   - fixture goldens: every file under lint_fixtures/ carries
     (* EXPECT rule-id *) annotations on the lines that must be flagged;
     the scanner's findings over the fixture .cmt files must match them
     exactly, per rule family;
   - reporter goldens: exact text rendering and JSON shape for a fixed
     synthetic summary;
   - qcheck properties: the suppression matcher silences exactly the
     annotated rule (or its family), and baseline fingerprints are
     invariant under line renumbering. *)

module Lint = Rdt_lint.Lint
module Lint_config = Rdt_lint.Lint_config
module Engine = Rdt_lint.Engine
module Finding = Rdt_lint.Finding
module Suppress = Rdt_lint.Suppress
module Rules = Rdt_lint.Rules
module Report = Rdt_lint.Report

(* The test binary runs from _build/default/test, where dune keeps both
   the fixture sources and the .cmt files of the lint_fixtures library. *)
let fixture_dir = "lint_fixtures"

let fixture_cfg =
  {
    Lint_config.lib_prefixes = [ "test/lint_fixtures/" ];
    parallel_prefixes =
      [ "test/lint_fixtures/parallel_ok"; "test/lint_fixtures/mt_" ];
    hashtbl_det_prefixes = [ "test/lint_fixtures/det_" ];
    realtime_prefixes = [ "test/lint_fixtures/realtime_ok" ];
    unsafe_allowlist = [ "test/lint_fixtures/unsafe_ok.ml" ];
  }

let scan_result =
  lazy (Lint.scan ~cfg:fixture_cfg ~root:"." ~dirs:[ fixture_dir ] ())

let site_compare (l1, r1) (l2, r2) =
  match Int.compare l1 l2 with 0 -> String.compare r1 r2 | c -> c

let findings_of file =
  let s, _ = Lazy.force scan_result in
  List.filter_map
    (fun (f : Finding.t) ->
      if String.equal (Filename.basename f.file) file then Some (f.line, f.rule)
      else None)
    s.Engine.findings
  |> List.sort site_compare

(* Pull the (line, rule-id) expectations out of a fixture source. *)
let expects_of file =
  let ic = open_in (Filename.concat fixture_dir file) in
  let res = ref [] in
  let line_no = ref 0 in
  let marker = "EXPECT " in
  let mlen = String.length marker in
  (try
     while true do
       let line = input_line ic in
       incr line_no;
       let len = String.length line in
       let is_stop c = c = ' ' || c = '*' || c = ')' in
       let rec scan_from i =
         if i + mlen > len then ()
         else if String.equal (String.sub line i mlen) marker then begin
           let j = ref (i + mlen) in
           while !j < len && not (is_stop line.[!j]) do
             incr j
           done;
           res := (!line_no, String.sub line (i + mlen) (!j - i - mlen)) :: !res;
           scan_from !j
         end
         else scan_from (i + 1)
       in
       scan_from 0
     done
   with End_of_file -> ());
  close_in ic;
  List.sort site_compare !res

let check_fixture file () =
  let expected = expects_of file in
  (* guard against a silently empty fixture: every *_bad fixture must
     expect at least one diagnostic *)
  if
    String.length file > 4
    && not (String.equal file "clean_ok.ml")
    && not (String.equal file "unsafe_ok.ml")
    && not (String.equal file "parallel_ok.ml")
    && not (String.equal file "mt_ok.ml")
  then
    Alcotest.(check bool) (file ^ " has expectations") true
      (not (List.is_empty expected));
  Alcotest.(check (list (pair int string))) file expected (findings_of file)

let test_no_scan_warnings () =
  let _, warnings = Lazy.force scan_result in
  Alcotest.(check (list string)) "clean discovery" [] warnings

let test_every_rule_known () =
  let s, _ = Lazy.force scan_result in
  List.iter
    (fun (f : Finding.t) ->
      Alcotest.(check bool) (f.rule ^ " registered") true (Rules.is_known f.rule))
    s.Engine.findings

let suppressions_in file =
  let s, _ = Lazy.force scan_result in
  List.filter
    (fun ((f : Finding.t), _) ->
      String.equal (Filename.basename f.file) file)
    s.Engine.suppressed

let check_not_double_reported file sup =
  let reported = findings_of file in
  List.iter
    (fun ((f : Finding.t), why) ->
      Alcotest.(check bool) "justification recorded" true
        (String.length why > 0);
      Alcotest.(check bool) "suppressed site not double-reported" false
        (List.exists
           (fun (l, r) -> l = f.line && String.equal r f.rule)
           reported))
    sup

let test_suppressed_sites () =
  let s, _ = Lazy.force scan_result in
  let sup = suppressions_in "suppress_fixture.ml" in
  Alcotest.(check int) "exactly the two justified allows" 2 (List.length sup);
  List.iter
    (fun ((f : Finding.t), _) ->
      Alcotest.(check string) "suppressed rule" "polycmp/equal" f.rule)
    sup;
  check_not_double_reported "suppress_fixture.ml" sup;
  (* nothing outside the two suppression fixtures is suppressed *)
  Alcotest.(check int) "no other suppressions" 5
    (List.length s.Engine.suppressed)

let test_mt_suppressed_sites () =
  (* mt_suppress.ml holds two sites silenced by a justified
     single_writer (a_single_writer, d_writer) and one where the allow
     wins; all suppress mt/escape-mutable and nothing else *)
  let sup = suppressions_in "mt_suppress.ml" in
  Alcotest.(check int) "two single_writers + one allow" 3 (List.length sup);
  List.iter
    (fun ((f : Finding.t), _) ->
      Alcotest.(check string) "suppressed rule" "mt/escape-mutable" f.rule)
    sup;
  check_not_double_reported "mt_suppress.ml" sup

(* ---------------- reporter goldens ---------------- *)

let mk ?(sev = Finding.Error) ?(context = "f") rule file line msg =
  { Finding.rule; severity = sev; file; line; col = 4; context; message = msg }

let golden_summary =
  {
    Report.findings =
      [
        mk "det/wall-clock" "lib/sim/clock.ml" 12
          "Unix.gettimeofday reads the wall clock" ~context:"now";
        mk "lint/unused-allow" "lib/gc/x.ml" 3 "allow suppresses nothing"
          ~sev:Finding.Warning ~context:"<attribute>";
      ];
    baselined = [];
    suppressed =
      [
        ( mk "alloc/list" "lib/causality/dependency_vector.ml" 40
            "List.map allocates list cells on the hot path" ~context:"merge",
          "amortized" );
      ];
    stale_baseline = [ "polycmp/equal|lib/gone.ml|old|0" ];
    warnings = [ "lint: skipping missing directory libx" ];
  }

let golden_text =
  "lint: skipping missing directory libx\n\
   lib/sim/clock.ml:12:4: [det/wall-clock] Unix.gettimeofday reads the wall \
   clock (in now)\n\
   lib/gc/x.ml:3:4: [lint/unused-allow] allow suppresses nothing (in \
   <attribute>)\n\
   baseline: stale entry polycmp/equal|lib/gone.ml|old|0\n\
   rdt_lint: 1 error, 1 warning, 1 suppressed, 0 baselined\n"

let test_text_golden () =
  Alcotest.(check string)
    "text rendering" golden_text
    (Format.asprintf "%a" Report.text golden_summary)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i =
    i + nl <= hl && (String.equal (String.sub hay i nl) needle || go (i + 1))
  in
  go 0

let test_json_shape () =
  let out = Format.asprintf "%a" Report.json golden_summary in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("json contains " ^ needle) true
        (contains ~needle out))
    [
      "\"schema\": \"rdt-lint/1\"";
      "\"errors\": 1";
      "\"rule\": \"det/wall-clock\"";
      "\"severity\": \"warning\"";
      "\"justification\": \"amortized\"";
      "\"stale_baseline\": [\"polycmp/equal|lib/gone.ml|old|0\"]";
    ];
  Alcotest.(check bool) "errors fail the run" false (Report.ok golden_summary)

let test_ok_logic () =
  let warn_only =
    {
      Report.findings =
        [ mk "lint/unused-allow" "lib/x.ml" 1 "m" ~sev:Finding.Warning ];
      baselined = [];
      suppressed = [];
      stale_baseline = [];
      warnings = [ "w" ];
    }
  in
  Alcotest.(check bool) "warnings alone keep the run green" true
    (Report.ok warn_only)

let test_only_filter () =
  (* --only mt/ narrows both reporters to the mt family: the fixture
     tree has findings in several families, but the filtered JSON
     report mentions mt rules and no others *)
  let out = Filename.temp_file "rdt_lint_only" ".json" in
  let opts =
    {
      Lint.root = ".";
      dirs = [ fixture_dir ];
      baseline_file = None;
      json = true;
      update_baseline = false;
      output = Some out;
      only = Some "mt/";
    }
  in
  let status = Lint.run ~cfg:fixture_cfg opts in
  let ic = open_in out in
  let body = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove out;
  Alcotest.(check int) "mt errors fail the filtered run" 1 status;
  Alcotest.(check bool) "mt findings present" true
    (contains ~needle:"\"rule\": \"mt/escape-mutable\"" body);
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("filtered out " ^ needle) false
        (contains ~needle body))
    [ "\"det/"; "\"alloc/"; "\"unsafe/"; "\"polycmp/"; "\"lint/" ]

(* ---------------- qcheck properties ---------------- *)

let rule_arb = QCheck.make (QCheck.Gen.oneofl Rules.ids)

let allow_arb =
  QCheck.make
    (QCheck.Gen.oneof
       [
         QCheck.Gen.oneofl Rules.ids;
         QCheck.Gen.oneofl Rules.families;
         QCheck.Gen.oneofl
           [ ""; "junk"; "allo"; "det/"; "polycmp/equa"; "polycmp/equal/x" ];
       ])

let prop_exact_site =
  QCheck.Test.make ~count:500
    ~name:"an exact-id allow silences that rule and nothing else"
    (QCheck.pair rule_arb rule_arb)
    (fun (allow_rule, rule) ->
      Bool.equal
        (Suppress.allow_matches ~allow_rule ~justified:true ~rule)
        (String.equal allow_rule rule))

let prop_matches_model =
  QCheck.Test.make ~count:1000
    ~name:"allow_matches = justified && (exact id || family)"
    (QCheck.triple rule_arb allow_arb QCheck.bool)
    (fun (rule, allow_rule, justified) ->
      let expect =
        justified
        && (String.equal allow_rule rule
           || String.equal allow_rule (Suppress.family_of rule))
      in
      Bool.equal (Suppress.allow_matches ~allow_rule ~justified ~rule) expect)

let prop_silences =
  QCheck.Test.make ~count:500
    ~name:"a site is silenced iff one of its allows matches"
    (QCheck.pair rule_arb
       (QCheck.small_list (QCheck.pair allow_arb QCheck.bool)))
    (fun (rule, allows) ->
      Bool.equal
        (Suppress.silences ~allows ~rule)
        (List.exists
           (fun (allow_rule, justified) ->
             Suppress.allow_matches ~allow_rule ~justified ~rule)
           allows))

let finding_gen_of rules =
  QCheck.Gen.map
    (fun ((rule, file, context), (line, col)) ->
      {
        Finding.rule;
        severity = Finding.Error;
        file;
        line;
        col;
        context;
        message = "m";
      })
    (QCheck.Gen.pair
       (QCheck.Gen.triple
          (QCheck.Gen.oneofl rules)
          (QCheck.Gen.oneofl [ "lib/a.ml"; "lib/b.ml"; "lib/sim/c.ml" ])
          (QCheck.Gen.oneofl [ "f"; "g"; "<toplevel>" ]))
       (QCheck.Gen.pair (QCheck.Gen.int_range 1 500) (QCheck.Gen.int_range 0 40)))

let finding_gen = finding_gen_of Rules.ids

let prop_fingerprints_stable =
  QCheck.Test.make ~count:300
    ~name:"baseline fingerprints ignore line renumbering"
    (QCheck.make
       (QCheck.Gen.pair
          (QCheck.Gen.small_list finding_gen)
          (QCheck.Gen.int_range 1 97)))
    (fun (fs, shift) ->
      let shifted =
        List.map
          (fun (f : Finding.t) ->
            { f with line = f.line + shift; col = f.col + 1 })
          fs
      in
      List.equal String.equal (Finding.fingerprints fs)
        (Finding.fingerprints shifted))

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

(* Introducing mt/* findings must not move any existing family's
   baseline fingerprints: the ordinal is per (rule, file, context)
   group, so a new family only appends new keys.  This is what lets a
   tree adopt the mt rules without churning its committed baseline. *)
let prop_mt_fingerprints_inert =
  let is_mt = has_prefix ~prefix:"mt/" in
  let mt_rules, other_rules = List.partition is_mt Rules.ids in
  QCheck.Test.make ~count:300
    ~name:"mt findings leave other families' fingerprints unchanged"
    (QCheck.make
       (QCheck.Gen.pair
          (QCheck.Gen.small_list (finding_gen_of other_rules))
          (QCheck.Gen.small_list (finding_gen_of mt_rules))))
    (fun (base, mts) ->
      List.equal String.equal
        (Finding.fingerprints base)
        (List.filter
           (fun fp -> not (is_mt fp))
           (Finding.fingerprints (base @ mts))))

let suite =
  [
    Alcotest.test_case "determinism family" `Quick (check_fixture "det_bad.ml");
    Alcotest.test_case "allocation family (module-wide)" `Quick
      (check_fixture "alloc_bad.ml");
    Alcotest.test_case "allocation family (named functions)" `Quick
      (check_fixture "alloc_scoped.ml");
    Alcotest.test_case "unsafe-op family" `Quick (check_fixture "unsafe_bad.ml");
    Alcotest.test_case "unsafe-op licensed shape is clean" `Quick
      (check_fixture "unsafe_ok.ml");
    Alcotest.test_case "polymorphic-compare family" `Quick
      (check_fixture "polycmp_bad.ml");
    Alcotest.test_case "approved idioms are clean" `Quick
      (check_fixture "clean_ok.ml");
    Alcotest.test_case "parallel scope admits Domain.spawn" `Quick
      (check_fixture "parallel_ok.ml");
    Alcotest.test_case "realtime scope admits the wall clock, nothing else"
      `Quick
      (check_fixture "realtime_ok.ml");
    Alcotest.test_case "suppression meta-rules" `Quick
      (check_fixture "suppress_fixture.ml");
    Alcotest.test_case "suppression silences exactly its site" `Quick
      test_suppressed_sites;
    Alcotest.test_case "mt family flags the shared-stamp-cell shapes" `Quick
      (check_fixture "mt_bad.ml");
    Alcotest.test_case "mt striped/atomic/scope-local idioms are clean" `Quick
      (check_fixture "mt_ok.ml");
    Alcotest.test_case "single_writer precedence and hygiene" `Quick
      (check_fixture "mt_suppress.ml");
    Alcotest.test_case "single_writer suppresses exactly its mt write site"
      `Quick test_mt_suppressed_sites;
    Alcotest.test_case "--only narrows reporting to one family" `Quick
      test_only_filter;
    Alcotest.test_case "fixture discovery is warning-free" `Quick
      test_no_scan_warnings;
    Alcotest.test_case "every emitted rule is registered" `Quick
      test_every_rule_known;
    Alcotest.test_case "text reporter golden" `Quick test_text_golden;
    Alcotest.test_case "json reporter shape" `Quick test_json_shape;
    Alcotest.test_case "warnings do not fail the run" `Quick test_ok_logic;
    QCheck_alcotest.to_alcotest prop_exact_site;
    QCheck_alcotest.to_alcotest prop_matches_model;
    QCheck_alcotest.to_alcotest prop_silences;
    QCheck_alcotest.to_alcotest prop_fingerprints_stable;
    QCheck_alcotest.to_alcotest prop_mt_fingerprints_inert;
  ]
