(* Determinism family: every marked line must produce exactly the named
   finding when scanned under the fixture configuration (which maps
   test/lint_fixtures/ into the lib/ scope). *)

let seed_from_env () = Random.self_init () (* EXPECT det/random-self-init *)
let now () = Unix.gettimeofday () (* EXPECT det/wall-clock *)
let boot_time () = Unix.time () (* EXPECT det/wall-clock *)
let cpu () = Sys.time () (* EXPECT det/wall-clock *)
let spawn f = Domain.spawn f (* EXPECT det/domain-spawn *)
let bump counter = Atomic.incr counter (* EXPECT det/atomic *)
let peek counter = Atomic.get counter (* EXPECT det/atomic *)

let sum_values tbl =
  Hashtbl.fold (fun _ v acc -> v + acc) tbl 0 (* EXPECT det/hashtbl-order *)

let visit tbl f = Hashtbl.iter f tbl (* EXPECT det/hashtbl-order *)
