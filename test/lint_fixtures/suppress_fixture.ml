(* Suppression discipline.  The first two allows are justified (one by
   exact id, one by family) and must silence exactly their own site; the
   rest exercise the meta-rules. *)

type box = { v : int }

let eq_boxes a (b : box) =
  ((a = b) [@lint.allow "polycmp/equal" "fixture: structural equality intended"])

let eq_boxes_family a (b : box) =
  ((a = b) [@lint.allow "polycmp" "fixture: family-wide allow"])

(* unjustified: the meta-rule fires AND the finding is not silenced *)
let eq_unjustified a (b : box) = ((a = b) [@lint.allow "polycmp/equal"]) (* EXPECT lint/missing-justification *) (* EXPECT polycmp/equal *)

(* unknown rule id: rejected, nothing silenced *)
let eq_unknown a (b : box) = ((a = b) [@lint.allow "no/such-rule" "x"]) (* EXPECT lint/bad-allow *) (* EXPECT polycmp/equal *)

(* justified but silences nothing: flagged as suspicious *)
let quiet () = 0 [@@lint.allow "polycmp/equal" "fixture: nothing to silence"] (* EXPECT lint/unused-allow *)
