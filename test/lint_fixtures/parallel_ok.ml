(* Domain.spawn and Atomic are legitimate here: the fixture
   configuration maps this file into the parallel scope (as
   lib/parallel/ is in the real one).  Must produce zero findings. *)

let run f = Domain.spawn f
let tick counter = Atomic.fetch_and_add counter 1
