(* Unsafe-op hygiene, the licensed shape: this file IS on the fixture
   allowlist and the function carries [@@lint.bounds_checked], so no
   finding may be produced. *)

let first xs = if Array.length xs = 0 then 0 else Array.unsafe_get xs 0
[@@lint.bounds_checked]
