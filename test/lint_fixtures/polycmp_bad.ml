(* Polymorphic-compare family.  [pid] aliases int, so compares at [pid]
   are scalar after expansion and must NOT be flagged; records, tuples
   and lists must be. *)

type pid = int
type coords = { x : int; y : int }

let same_coords a (b : coords) = a = b (* EXPECT polycmp/equal *)
let diff_coords a (b : coords) = a <> b (* EXPECT polycmp/equal *)
let order_lists a (b : int list) = compare a b (* EXPECT polycmp/compare *)
let later (a : pid * pid) b = a < b (* EXPECT polycmp/compare *)
let hash_coords (p : coords) = Hashtbl.hash p (* EXPECT polycmp/hash *)

(* scalar instantiations: all clean *)
let same_pid (a : pid) (b : pid) = a = b
let max_pid (a : pid) (b : pid) = max a b
let same_name (a : string) b = a = b
