(* The disciplined counterparts of mt_bad.ml: per-shard striping,
   Atomics, scope-local allocation, derived indices and declared
   roots.  Must produce zero findings — in particular the per-cell
   stamp array is the shape PR-8's race fix settled on, and it needs
   no suppression. *)

module Stamp = struct
  type t = { mutable value : int }

  let create () = { value = 0 }
  let set c v = c.value <- v
end

module Barrier_team = struct
  let run_sub _team nsub f =
    for i = 0 to nsub - 1 do
      f i
    done

  let self_index _team = 0
end

(* one cell per shard, indexed by the scope's owned parameter *)
let cells = Array.init 8 (fun _ -> Stamp.create ())

let record_striped team n =
  Barrier_team.run_sub team n (fun i -> Stamp.set cells.(i) i)

(* ownership is viral: an index computed from the owned parameter is
   itself owned, and destructuring keeps it *)
let record_derived team n =
  Barrier_team.run_sub team n (fun i ->
      let slot = i mod 8 in
      match (slot, ()) with
      | s, () -> cells.(s).Stamp.value <- s)

(* the executing-shard accessor is a declared domain-index source *)
let record_self team n =
  Barrier_team.run_sub team n (fun _ ->
      let s = Barrier_team.self_index team in
      Stamp.set cells.(s) s)

(* allocation inside the scope is scope-local, not an escape *)
let sum_local team n =
  Barrier_team.run_sub team n (fun i ->
      let acc = ref 0 in
      acc := !acc + i;
      ignore !acc)

(* cross-shard aggregation goes through Atomic, never a bare global *)
let live = Atomic.make 0

let count team n =
  Barrier_team.run_sub team n (fun _ ->
      Atomic.incr live;
      ignore (Atomic.get live))

(* a named scope writing through its declared root is clean, and the
   striped write does not poison later reads of the same array *)
[@@@lint.domain_scope "bump:sh"]

let hist = Array.make 8 0
let bump sh = hist.(sh) <- 1
let snapshot () = Array.fold_left ( + ) 0 hist
