(* Unsafe-op hygiene: this file is NOT on the fixture allowlist, so the
   attribute only changes which of the two rules fires. *)

let first_no_attr xs = Array.unsafe_get xs 0 (* EXPECT unsafe/array *)

let first_attr xs = Array.unsafe_get xs 0 (* EXPECT unsafe/file *)
[@@lint.bounds_checked]

let poke b = Bytes.unsafe_set b 0 'x' (* EXPECT unsafe/array *)
