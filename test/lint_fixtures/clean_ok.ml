(* The approved idioms: typed equality, scalar compares, allocation off
   the hot path.  Must produce zero findings. *)

let ints_equal (a : int) b = a = b
let floats_less (a : float) b = a < b
let strings_equal (a : string) b = String.equal a b
let sort_ids (ids : int list) = List.sort Int.compare ids
let keys tbl = List.sort Int.compare (Hashtbl.fold (fun k _ l -> k :: l) tbl [])
