(* Allocation family, module-wide form: the empty-payload annotation
   puts every top-level function in the hot set. *)
[@@@lint.zero_alloc_hot]

type pair = { a : int; b : int }

let make_tuple x y = (x, y) (* EXPECT alloc/tuple *)
let make_record x y = { a = x; b = y } (* EXPECT alloc/record *)
let make_some x = Some x (* EXPECT alloc/construct *)
let suspend x = lazy (x + 1) (* EXPECT alloc/construct *)
let dup xs = Array.copy xs (* EXPECT alloc/array *)
let twice xs = List.map succ xs (* EXPECT alloc/list *)
let greet name = "hello " ^ name (* EXPECT alloc/string *)
let cell x = ref x (* EXPECT alloc/construct *)
let half x = x /. 2.0 (* EXPECT alloc/boxed-float *)

let apply_all fs x =
  List.iter (fun f -> f x) fs (* EXPECT alloc/closure *)

(* curried definitions are not per-call closures: this must be clean *)
let add x y = x + y
let add' x = fun y -> x + y
