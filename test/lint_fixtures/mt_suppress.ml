(* Precedence and hygiene of [@lint.single_writer] against
   [@lint.allow].  An allow matching the rule is consumed first, so a
   single_writer on the same site goes unused; an unjustified
   single_writer silences nothing; and single_writer never covers
   mt/non-atomic-read — it is a claim about writers, not readers. *)

module Stamp = struct
  type t = { mutable value : int }

  let create () = { value = 0 }
  let set c v = c.value <- v
end

module Barrier_team = struct
  let run_sub _team nsub f =
    for i = 0 to nsub - 1 do
      f i
    done
end

(* justified single_writer: silences exactly its own mt/* write site *)
let seq = Stamp.create ()

let a_single_writer team =
  Barrier_team.run_sub team 1 (fun i ->
      (Stamp.set seq i)
      [@lint.single_writer "fixture: sub-team of one by construction"])

(* allow outranks single_writer: the allow is consumed, the
   single_writer suppresses nothing and is flagged *)
let seq2 = Stamp.create ()

let b_allow_wins team =
  Barrier_team.run_sub team 1 (fun i ->
      (Stamp.set seq2 i)
      [@lint.allow "mt/escape-mutable" "fixture: allow outranks single_writer"]
      [@lint.single_writer "fixture: never consulted"]) (* EXPECT lint/unused-allow *)

(* unjustified: the meta-rule fires AND the finding is not silenced *)
let seq3 = Stamp.create ()

let c_unjustified team =
  Barrier_team.run_sub team 1 (fun i ->
      (Stamp.set seq3 i) [@lint.single_writer]) (* EXPECT lint/missing-justification *) (* EXPECT mt/escape-mutable *)

(* single_writer covers writes only: the racy read is still reported
   and the attribute on it goes unused *)
let seq4 = Stamp.create ()

let d_writer team =
  Barrier_team.run_sub team 1 (fun i ->
      (Stamp.set seq4 i) [@lint.single_writer "fixture: one writer"])

let d_reader team =
  Barrier_team.run_sub team 1 (fun _ ->
      (ignore seq4.Stamp.value) [@lint.single_writer "fixture: reads are not writes"]) (* EXPECT mt/non-atomic-read *) (* EXPECT lint/unused-allow *)
