(* Deliberate shard-ownership violations for the mt/* family.  The
   centrepiece reconstructs the PR-8 data race: one shared stamp cell
   written from every member of a sub-team, instead of one cell per
   shard.  The analysis matches entry points and mutators by path
   suffix, so local stubs bind the runtime's names without pulling
   lib/ into the fixture build. *)

module Stamp = struct
  type t = { mutable value : int }

  let create () = { value = 0 }
  let set c v = c.value <- v
end

module Barrier_team = struct
  let run_sub _team nsub f =
    for i = 0 to nsub - 1 do
      f i
    done

  let self_index _team = 0
end

(* --- the PR-8 shape: every shard writes the same cell ------------- *)

let shared_cell = Stamp.create ()

let record_all team n =
  Barrier_team.run_sub team n (fun i -> Stamp.set shared_cell i) (* EXPECT mt/escape-mutable *)

(* same race through a direct field write on a captured local *)
let record_local team n =
  let cell = Stamp.create () in
  Barrier_team.run_sub team n (fun i -> cell.Stamp.value <- i); (* EXPECT mt/escape-mutable *)
  cell.Stamp.value

(* --- two distinct scopes writing one top-level binding ------------ *)

let total = ref 0

let tally team n =
  Barrier_team.run_sub team n (fun i -> total := i); (* EXPECT mt/shared-write *)
  Barrier_team.run_sub team n (fun i -> total := n - i) (* EXPECT mt/shared-write *)

(* --- a scope reads what another scope writes, no Atomic ----------- *)

let progress = ref 0

let update team n =
  Barrier_team.run_sub team n (fun i -> progress := i) (* EXPECT mt/escape-mutable *)

let watch team n =
  Barrier_team.run_sub team n (fun _ -> ignore !progress) (* EXPECT mt/non-atomic-read *)

(* --- shared-array write whose index ignores the shard ------------- *)

let slots = Array.make 8 0
let victim = 3

let fill team n =
  Barrier_team.run_sub team n (fun i -> slots.(victim) <- i) (* EXPECT mt/stripe-index *)

(* the escape hatch declares a named function a scope; a write indexed
   by anything but its declared root is still flagged *)
[@@@lint.domain_scope "drain:sh"]

let hist = Array.make 4 0
let drain sh other = hist.(other) <- sh (* EXPECT mt/stripe-index *)
