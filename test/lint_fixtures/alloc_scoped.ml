(* Allocation family, payload form: only the named function is hot; the
   identical cold function below must stay clean. *)
[@@@lint.zero_alloc_hot "hot_path"]

let hot_path xs = List.rev xs (* EXPECT alloc/list *)
let cold_path xs = List.rev xs
