(* Wall-clock reads inside a realtime-scoped path (the live TCP runtime)
   are legal: det/wall-clock is the one determinism rule the scope
   exempts.  Everything else still applies — the self-seeded RNG below
   must be flagged even here. *)

let now () = Unix.gettimeofday ()
let later () = Unix.time () +. Sys.time ()
let seeded () = Random.self_init () (* EXPECT det/random-self-init *)
