(* Nemesis tests: the fault schedule is a pure function of
   (config, frame flow) — two independently wrapped transports fed the
   same flow must produce byte-identical schedules, identical fault
   stats and identical inner-transport traffic (the replayability
   property the live-fuzz campaign rests on) — plus the termination
   discipline (App frames are never dropped, partitions punch through
   after pt_attempts transmissions) and config serialization. *)

module Transport = Rdt_transport.Transport
module Wire = Rdt_transport.Wire
module Nemesis = Rdt_transport.Nemesis

(* --- a recording in-memory inner transport ------------------------------ *)

type dummy = {
  mutable sent : (int * Wire.frame) list;  (* newest first *)
  mutable raws : (int * string) list;
  mutable timers : (int * float) list;
  mutable handler : Transport.event -> unit;
}

let dummy_inner ?(me = 0) () =
  let d =
    { sent = []; raws = []; timers = []; handler = (fun _ -> ()) }
  in
  let tr =
    {
      Transport.me;
      now = (fun () -> 0.0);
      send = (fun ~dst frame -> d.sent <- (dst, frame) :: d.sent);
      send_raw =
        (fun ~dst bytes -> d.raws <- (dst, Bytes.to_string bytes) :: d.raws);
      connect = (fun ~dst:_ ~port:_ -> ());
      listen_port = 0;
      set_timer = (fun ~id ~after -> d.timers <- (id, after) :: d.timers);
      set_handler = (fun f -> d.handler <- f);
      poll = (fun ~timeout:_ -> `Idle);
      close = (fun () -> ());
    }
  in
  (d, tr)

let fire_timers d =
  (* release in arming order, as a well-behaved timer wheel would *)
  List.iter
    (fun (id, _) -> d.handler (Transport.Timer { id }))
    (List.rev d.timers);
  d.timers <- []

let sent_payloads d =
  List.rev_map (fun (dst, f) -> (dst, Wire.encode_payload f)) d.sent

(* --- determinism (the replayability witness) ---------------------------- *)

let gen_flow =
  let open QCheck.Gen in
  let gen_frame =
    oneof
      [
        (let* msg_id = int_bound 15 in
         let* src = int_bound 3 in
         return (Wire.App { epoch = 1; msg_id; src; dv = [| 1; 2 |]; index = 0 }));
        map
          (fun seq -> Wire.Cmd { seq; now = 0.0; cmd = Wire.C_checkpoint })
          (int_bound 15);
        map
          (fun seq -> Wire.Reply { seq; reply = Wire.R_error { message = "x" } })
          (int_bound 15);
        map
          (fun port -> Wire.Hello { pid = 0; port; recovering = false })
          (int_bound 15);
        return (Wire.Ready { pid = 0 });
      ]
  in
  let* seed = int_bound 0xFFFFFF in
  let* sends = list_size (int_range 1 60) (pair (int_bound 3) gen_frame) in
  return (seed, sends)

let drive cfg sends =
  let d, inner = dummy_inner () in
  let h, tr = Nemesis.wrap cfg inner in
  Transport.set_handler tr (fun _ -> ());
  List.iter (fun (dst, frame) -> Transport.send tr ~dst frame) sends;
  fire_timers d;
  let s = Nemesis.stats h in
  ( Nemesis.schedule h,
    sent_payloads d,
    List.rev d.raws,
    (s.st_passed, s.st_dropped, s.st_delayed, s.st_duplicated, s.st_corrupted)
  )

let qcheck_schedule_deterministic =
  QCheck.Test.make ~count:200 ~name:"fault schedules are byte-identical"
    (QCheck.make gen_flow) (fun (seed, sends) ->
      let cfg = Nemesis.gen ~seed ~n:4 in
      let sched_a, sent_a, raws_a, stats_a = drive cfg sends in
      let sched_b, sent_b, raws_b, stats_b = drive cfg sends in
      sched_a = sched_b && sent_a = sent_b && raws_a = raws_b
      && stats_a = stats_b)

(* --- termination discipline --------------------------------------------- *)

let sample_app =
  Wire.App { epoch = 1; msg_id = 5; src = 2; dv = [| 1; 2 |]; index = 0 }

let all_partition ~attempts =
  {
    Nemesis.default with
    seed = 3;
    partitions =
      [
        { Nemesis.pt_from = 0; pt_to = 1; pt_start = 0; pt_len = 1000;
          pt_attempts = attempts };
      ];
  }

let test_partition_punch_through () =
  let d, inner = dummy_inner () in
  let h, tr = Nemesis.wrap (all_partition ~attempts:2) inner in
  Transport.set_handler tr (fun _ -> ());
  let cmd = Wire.Cmd { seq = 1; now = 0.0; cmd = Wire.C_checkpoint } in
  for _ = 1 to 3 do
    Transport.send tr ~dst:1 cmd
  done;
  let s = Nemesis.stats h in
  Alcotest.(check int) "first two transmissions suppressed" 2 s.st_dropped;
  Alcotest.(check int) "third punches through" 1 (List.length d.sent);
  (* a different link is unaffected *)
  Transport.send tr ~dst:2 cmd;
  Alcotest.(check int) "other links pass" 2 (List.length d.sent)

let test_partition_delays_app () =
  let d, inner = dummy_inner () in
  let h, tr = Nemesis.wrap (all_partition ~attempts:2) inner in
  Transport.set_handler tr (fun _ -> ());
  Transport.send tr ~dst:1 sample_app;
  let s = Nemesis.stats h in
  Alcotest.(check int) "app not dropped" 0 s.st_dropped;
  Alcotest.(check int) "app held" 1 s.st_delayed;
  Alcotest.(check int) "nothing sent yet" 0 (List.length d.sent);
  fire_timers d;
  Alcotest.(check int) "released after the hold" 1 (List.length d.sent)

let test_app_never_dropped () =
  (* certain drop for every frame: control frames die (first attempt),
     App frames degrade to a delay and all come out the other end *)
  let cfg = { Nemesis.default with seed = 9; drop_p = 1.0 } in
  let d, inner = dummy_inner () in
  let h, tr = Nemesis.wrap cfg inner in
  Transport.set_handler tr (fun _ -> ());
  for msg_id = 0 to 19 do
    Transport.send tr ~dst:1
      (Wire.App { epoch = 1; msg_id; src = 0; dv = [| 0 |]; index = 0 })
  done;
  let s = Nemesis.stats h in
  Alcotest.(check int) "no app dropped" 0 s.st_dropped;
  Alcotest.(check int) "all held" 20 s.st_delayed;
  fire_timers d;
  Alcotest.(check int) "all delivered" 20 (List.length d.sent);
  (* a control frame: dropped once, retransmission passes *)
  let cmd = Wire.Cmd { seq = 7; now = 0.0; cmd = Wire.C_checkpoint } in
  Transport.send tr ~dst:1 cmd;
  Alcotest.(check int) "control frame dropped" 1 (Nemesis.stats h).st_dropped;
  Transport.send tr ~dst:1 cmd;
  Alcotest.(check int) "retransmission passes" 21 (List.length d.sent)

let test_ident_exempt () =
  let cfg = { Nemesis.default with seed = 9; drop_p = 1.0 } in
  let d, inner = dummy_inner () in
  let h, tr = Nemesis.wrap cfg inner in
  Transport.set_handler tr (fun _ -> ());
  Transport.send tr ~dst:1 (Wire.Ident { pid = 0 });
  Alcotest.(check int) "ident passes untouched" 1 (List.length d.sent);
  Alcotest.(check int) "and is not scheduled" 0
    (List.length (Nemesis.schedule h))

let test_flush_held () =
  let cfg = { Nemesis.default with seed = 9; delay_p = 1.0 } in
  let d, inner = dummy_inner () in
  let h, tr = Nemesis.wrap cfg inner in
  Transport.set_handler tr (fun _ -> ());
  Transport.send tr ~dst:1 sample_app;
  Alcotest.(check int) "held" 1 (Nemesis.stats h).st_delayed;
  Nemesis.flush_held h;
  fire_timers d;
  Alcotest.(check int) "flushed frames never surface" 0 (List.length d.sent)

let test_corruption_precedes_frame () =
  let cfg = { Nemesis.default with seed = 2; corrupt_p = 1.0 } in
  let d, inner = dummy_inner () in
  let _, tr = Nemesis.wrap cfg inner in
  Transport.set_handler tr (fun _ -> ());
  Transport.send tr ~dst:1 sample_app;
  Alcotest.(check int) "garbled copy on the raw hatch" 1 (List.length d.raws);
  Alcotest.(check int) "intact frame still sent" 1 (List.length d.sent);
  let _, raw = List.hd d.raws in
  match Wire.decode (Bytes.of_string raw) with
  | Ok _ -> Alcotest.fail "garbled copy decoded"
  | Error _ -> ()

(* --- config serialization ----------------------------------------------- *)

let qcheck_config_roundtrip =
  QCheck.Test.make ~count:300 ~name:"config to_string/of_string roundtrip"
    QCheck.(pair (int_bound 0xFFFFFF) (int_range 1 6))
    (fun (seed, n) ->
      let cfg = Nemesis.gen ~seed ~n in
      match Nemesis.of_string (Nemesis.to_string cfg) with
      | Error e -> QCheck.Test.fail_reportf "of_string: %s" e
      | Ok cfg' -> String.equal (Nemesis.to_string cfg) (Nemesis.to_string cfg'))

let test_of_string_decimal () =
  (* hand-written specs use plain decimals *)
  match Nemesis.of_string "nms1 seed=0x2a drop=0.5 part=0>1@0+3x2,-1>2@4+1x1" with
  | Error e -> Alcotest.failf "of_string: %s" e
  | Ok cfg ->
    Alcotest.(check int) "seed" 42 cfg.Nemesis.seed;
    Alcotest.(check (float 1e-9)) "drop" 0.5 cfg.Nemesis.drop_p;
    Alcotest.(check int) "partitions" 2 (List.length cfg.Nemesis.partitions);
    (match Nemesis.of_string "nms1 drop=oops" with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "garbage accepted")

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_schedule_deterministic;
    Alcotest.test_case "partition punches through after pt_attempts" `Quick
      test_partition_punch_through;
    Alcotest.test_case "partition delays app frames instead of dropping"
      `Quick test_partition_delays_app;
    Alcotest.test_case "app frames are never dropped" `Quick
      test_app_never_dropped;
    Alcotest.test_case "ident preamble is exempt" `Quick test_ident_exempt;
    Alcotest.test_case "flush_held discards delayed frames" `Quick
      test_flush_held;
    Alcotest.test_case "corruption precedes the intact frame" `Quick
      test_corruption_precedes_frame;
    QCheck_alcotest.to_alcotest qcheck_config_roundtrip;
    Alcotest.test_case "of_string accepts decimals, rejects garbage" `Quick
      test_of_string_decimal;
  ]
