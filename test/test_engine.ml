module Engine = Rdt_sim.Engine
module Network = Rdt_sim.Network

let make ?(n = 3) ?(net = Network.default) () = Engine.create ~n ~seed:5 ~net ()

let test_delivery () =
  let e = make () in
  let got = ref [] in
  for p = 0 to 2 do
    Engine.set_receiver e p (fun ~src msg -> got := (p, src, msg) :: !got)
  done;
  Engine.send e ~src:0 ~dst:1 "hello";
  Engine.send e ~src:1 ~dst:2 "world";
  Engine.run e;
  Alcotest.(check (list (triple int int string)))
    "both delivered"
    [ (1, 0, "hello"); (2, 1, "world") ]
    (List.sort compare !got)

let test_delay_bounds () =
  let net = { Network.default with min_delay = 1.0; max_delay = 2.0 } in
  let e = make ~net () in
  let arrival = ref nan in
  Engine.set_receiver e 1 (fun ~src:_ _ -> arrival := Engine.now e);
  Engine.set_receiver e 0 (fun ~src:_ _ -> ());
  Engine.set_receiver e 2 (fun ~src:_ _ -> ());
  Engine.send e ~src:0 ~dst:1 ();
  Engine.run e;
  if !arrival < 1.0 || !arrival >= 2.0 then
    Alcotest.failf "delivery at %f outside [1,2)" !arrival

let test_loss () =
  let net = { Network.default with loss_probability = 1.0 } in
  let e = make ~net () in
  Engine.set_receiver e 1 (fun ~src:_ _ -> Alcotest.fail "must be lost");
  Engine.send e ~src:0 ~dst:1 ();
  Engine.run e;
  Alcotest.(check int) "lost counted" 1 (Engine.stats e).Engine.lost

let test_reliable_bypasses_loss () =
  let net = { Network.default with loss_probability = 1.0 } in
  let e = make ~net () in
  let got = ref 0 in
  Engine.set_receiver e 1 (fun ~src:_ _ -> incr got);
  Engine.send e ~reliable:true ~src:0 ~dst:1 ();
  Engine.run e;
  Alcotest.(check int) "delivered despite loss model" 1 !got

let test_fifo_order () =
  let net = { Network.default with fifo = true; min_delay = 0.1; max_delay = 5.0 } in
  let e = make ~net () in
  let got = ref [] in
  Engine.set_receiver e 1 (fun ~src:_ msg -> got := msg :: !got);
  for i = 1 to 20 do
    Engine.send e ~src:0 ~dst:1 i
  done;
  Engine.run e;
  Alcotest.(check (list int)) "fifo preserves send order" (List.init 20 (fun i -> i + 1))
    (List.rev !got)

let test_non_fifo_can_reorder () =
  let net = { Network.default with fifo = false; min_delay = 0.1; max_delay = 10.0 } in
  let e = Engine.create ~n:2 ~seed:11 ~net () in
  let got = ref [] in
  Engine.set_receiver e 1 (fun ~src:_ msg -> got := msg :: !got);
  for i = 1 to 30 do
    Engine.send e ~src:0 ~dst:1 i
  done;
  Engine.run e;
  Alcotest.(check bool) "some reordering happened" true
    (List.rev !got <> List.init 30 (fun i -> i + 1))

let test_down_process_drops () =
  let e = make () in
  Engine.set_receiver e 1 (fun ~src:_ _ -> Alcotest.fail "down process received");
  Engine.set_up e 1 false;
  Engine.send e ~src:0 ~dst:1 ();
  Engine.run e;
  Alcotest.(check int) "counted as dropped" 1
    (Engine.stats e).Engine.dropped_down

let test_owned_action_skipped_when_down () =
  let e = make () in
  let fired = ref false in
  ignore (Engine.schedule e ~owner:1 ~at:1.0 (fun () -> fired := true));
  Engine.set_up e 1 false;
  Engine.run e;
  Alcotest.(check bool) "skipped" false !fired

let test_unowned_action_runs () =
  let e = make () in
  let fired = ref false in
  ignore (Engine.schedule e ~at:1.0 (fun () -> fired := true));
  Engine.run e;
  Alcotest.(check bool) "ran" true !fired

let test_flush_in_flight () =
  let e = make () in
  Engine.set_receiver e 1 (fun ~src:_ _ -> Alcotest.fail "flushed message arrived");
  Engine.send e ~src:0 ~dst:1 ();
  Engine.flush_in_flight e;
  Engine.run e;
  Alcotest.(check int) "flushed counted" 1 (Engine.stats e).Engine.flushed

let test_run_until () =
  let e = make () in
  let count = ref 0 in
  ignore (Engine.schedule e ~at:1.0 (fun () -> incr count));
  ignore (Engine.schedule e ~at:10.0 (fun () -> incr count));
  Engine.run ~until:5.0 e;
  Alcotest.(check int) "only events before the limit" 1 !count;
  Alcotest.(check (float 1e-9)) "clock advanced to limit" 5.0 (Engine.now e)

let test_cancel_action () =
  let e = make () in
  let fired = ref false in
  let h = Engine.schedule e ~at:1.0 (fun () -> fired := true) in
  Engine.cancel e h;
  Engine.run e;
  Alcotest.(check bool) "cancelled" false !fired

let test_clock_monotone () =
  let e = make () in
  let times = ref [] in
  for i = 1 to 10 do
    ignore
      (Engine.schedule e ~at:(float_of_int i) (fun () ->
           times := Engine.now e :: !times))
  done;
  Engine.run e;
  let ts = List.rev !times in
  Alcotest.(check (list (float 1e-9))) "monotone" (List.sort compare ts) ts

let test_schedule_in_past_rejected () =
  let e = make () in
  ignore (Engine.schedule e ~at:5.0 (fun () -> ()));
  Engine.run e;
  Alcotest.check_raises "past time"
    (Invalid_argument "Engine.schedule: time in the past") (fun () ->
      ignore (Engine.schedule e ~at:1.0 (fun () -> ())))

(* --- sharded execution ------------------------------------------------- *)

let test_sharded_cross_shard_delivery () =
  (* 4 processes on 4 shards; every message crosses a shard boundary
     through the mailboxes and still arrives exactly once *)
  let e = Engine.create ~n:4 ~seed:5 ~net:Network.default ~shards:4 () in
  Alcotest.(check int) "effective shards" 4 (Engine.shards e);
  let got = ref [] in
  for p = 0 to 3 do
    Engine.set_receiver e p (fun ~src msg -> got := (p, src, msg) :: !got)
  done;
  Engine.send e ~src:0 ~dst:3 "a";
  Engine.send e ~src:3 ~dst:1 "b";
  Engine.send e ~src:1 ~dst:2 "c";
  Engine.run e;
  Alcotest.(check (list (triple int int string)))
    "all delivered once"
    [ (1, 3, "b"); (2, 1, "c"); (3, 0, "a") ]
    (List.sort compare !got)

let test_sharded_same_event_order () =
  (* Drive a message storm and compare the canonical global event order.
     Within a window, shards execute concurrently, so the wall-clock
     interleaving across processes is arbitrary — the deterministic
     object is each process's own log plus the engine's canonical stamp,
     which merges the logs into one total order (exactly how the trace
     reconstructs sequence numbers).  Each cell of [per] is only ever
     touched by its process's shard. *)
  let run_order shards =
    let e = Engine.create ~n:4 ~seed:9 ~net:Network.default ~shards () in
    let per = Array.make 4 [] in
    for p = 0 to 3 do
      Engine.set_receiver e p (fun ~src msg ->
          per.(p) <- (Engine.current_stamp e, p, src, msg) :: per.(p);
          (* cascade: every delivery triggers another send, round-robin *)
          if msg < 20 then Engine.send e ~src:p ~dst:((p + 1) mod 4) (msg + 1))
    done;
    for p = 0 to 3 do
      Engine.send e ~src:p ~dst:((p + 1) mod 4) 0
    done;
    Engine.run e;
    Array.to_list per |> List.concat
    |> List.sort (fun (a, _, _, _) (b, _, _, _) -> compare a b)
    |> List.map (fun (_, p, src, msg) -> (p, src, msg))
  in
  let seq = run_order 1 in
  Alcotest.(check bool) "some events ran" true (seq <> []);
  List.iter
    (fun k ->
      Alcotest.(check (list (triple int int int)))
        (Printf.sprintf "order at %d shards" k)
        seq (run_order k))
    [ 2; 4 ]

let test_pinned_action_fires_when_down () =
  let e = Engine.create ~n:4 ~seed:5 ~net:Network.default ~shards:2 () in
  let pinned = ref false and owned = ref false in
  ignore (Engine.schedule e ~pin:1 ~at:1.0 (fun () -> pinned := true));
  ignore (Engine.schedule e ~owner:1 ~at:1.0 (fun () -> owned := true));
  Engine.set_up e 1 false;
  Engine.run e;
  Alcotest.(check bool) "pinned fired while down" true !pinned;
  Alcotest.(check bool) "owned skipped while down" false !owned

let test_shards_require_lookahead () =
  let net = { Network.default with min_delay = 0.0 } in
  Alcotest.check_raises "no lookahead"
    (Invalid_argument
       "Engine.create: shards > 1 requires positive network min_delay \
        (conservative windows need non-zero lookahead)") (fun () ->
      ignore (Engine.create ~n:4 ~seed:5 ~net ~shards:2 () : unit Engine.t))

let test_sharded_global_action_order () =
  (* a global action scheduled at a window boundary sees every routed
     event of the same timestamp already executed *)
  let e = Engine.create ~n:2 ~seed:5 ~net:Network.default ~shards:2 () in
  let routed = ref 0 and seen_at_global = ref (-1) in
  ignore (Engine.schedule e ~pin:0 ~at:1.0 (fun () -> incr routed));
  ignore (Engine.schedule e ~pin:1 ~at:1.0 (fun () -> incr routed));
  ignore (Engine.schedule e ~at:1.0 (fun () -> seen_at_global := !routed));
  Engine.run e;
  Alcotest.(check int) "globals run after same-time routed events" 2
    !seen_at_global

let test_sharded_stats_merge () =
  let run shards =
    let e = Engine.create ~n:4 ~seed:13 ~net:Network.default ~shards () in
    for p = 0 to 3 do
      Engine.set_receiver e p (fun ~src:_ msg ->
          if msg < 10 then Engine.send e ~src:p ~dst:((p + 3) mod 4) (msg + 1))
    done;
    Engine.send e ~src:0 ~dst:1 0;
    Engine.run e;
    let s = Engine.stats e in
    (s.Engine.sent, s.Engine.delivered, s.Engine.events)
  in
  Alcotest.(check (triple int int int))
    "merged stats equal sequential" (run 1) (run 4)

let suite =
  [
    Alcotest.test_case "delivery" `Quick test_delivery;
    Alcotest.test_case "delay bounds" `Quick test_delay_bounds;
    Alcotest.test_case "loss" `Quick test_loss;
    Alcotest.test_case "reliable bypasses loss" `Quick test_reliable_bypasses_loss;
    Alcotest.test_case "fifo order" `Quick test_fifo_order;
    Alcotest.test_case "non-fifo reorders" `Quick test_non_fifo_can_reorder;
    Alcotest.test_case "down process drops" `Quick test_down_process_drops;
    Alcotest.test_case "owned action skipped when down" `Quick
      test_owned_action_skipped_when_down;
    Alcotest.test_case "unowned action runs" `Quick test_unowned_action_runs;
    Alcotest.test_case "flush in flight" `Quick test_flush_in_flight;
    Alcotest.test_case "run until" `Quick test_run_until;
    Alcotest.test_case "cancel action" `Quick test_cancel_action;
    Alcotest.test_case "clock monotone" `Quick test_clock_monotone;
    Alcotest.test_case "schedule in past rejected" `Quick
      test_schedule_in_past_rejected;
    Alcotest.test_case "sharded cross-shard delivery" `Quick
      test_sharded_cross_shard_delivery;
    Alcotest.test_case "sharded same event order" `Quick
      test_sharded_same_event_order;
    Alcotest.test_case "pinned action fires when down" `Quick
      test_pinned_action_fires_when_down;
    Alcotest.test_case "shards require lookahead" `Quick
      test_shards_require_lookahead;
    Alcotest.test_case "sharded global action order" `Quick
      test_sharded_global_action_order;
    Alcotest.test_case "sharded stats merge" `Quick test_sharded_stats_merge;
  ]
