(* Wire-format tests: one unit test per decode failure mode, a golden
   frame pinning the byte layout, and a qcheck encode/decode identity
   over random frames (piggybacked DVs, control payloads, random n). *)

module Wire = Rdt_transport.Wire
module Crc32 = Rdt_store.Crc32

let frame_eq a b =
  (* the encoding is a total injective function of the frame, so encoded
     equality is structural equality without a handwritten deep compare *)
  String.equal (Wire.encode_payload a) (Wire.encode_payload b)

let check_error what expected = function
  | Ok _ -> Alcotest.failf "%s: decode unexpectedly succeeded" what
  | Error e ->
    Alcotest.(check string) what expected (Wire.error_to_string e)

let sample_app =
  Wire.App { epoch = 1; msg_id = 5; src = 2; dv = [| 1; 2; 3 |]; index = 4 }

(* --- failure modes ------------------------------------------------------ *)

let test_oversized () =
  let b = Bytes.create Wire.header_bytes in
  Bytes.set_int32_be b 0 (Int32.of_int (Wire.max_frame_bytes + 1));
  Bytes.set_int32_be b 4 0l;
  check_error "oversized length is rejected before any read"
    (Printf.sprintf "frame length %d exceeds limit %d"
       (Wire.max_frame_bytes + 1) Wire.max_frame_bytes)
    (Wire.decode b)

let test_bad_length () =
  let b = Bytes.create Wire.header_bytes in
  Bytes.set_int32_be b 0 0xFFFFFFF6l (* u32 garbage surfaces negative *);
  Bytes.set_int32_be b 4 0l;
  check_error "negative length prefix is garbage" "garbage frame length -10"
    (Wire.decode b)

let test_crc_mismatch () =
  let b = Wire.encode sample_app in
  let pos = Wire.header_bytes + 9 (* inside the epoch field *) in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x40));
  (match Wire.decode b with
  | Error (Wire.Crc_mismatch { expected; actual }) ->
    Alcotest.(check bool) "crc values differ" false (Int32.equal expected actual)
  | Error e ->
    Alcotest.failf "wrong error for corrupt payload: %s" (Wire.error_to_string e)
  | Ok _ -> Alcotest.fail "corrupt payload decoded");
  (* header corruption on the crc side is the same failure *)
  let b = Wire.encode sample_app in
  Bytes.set_int32_be b 4 (Int32.lognot (Bytes.get_int32_be b 4));
  match Wire.decode b with
  | Error (Wire.Crc_mismatch _) -> ()
  | Error e ->
    Alcotest.failf "wrong error for corrupt header crc: %s"
      (Wire.error_to_string e)
  | Ok _ -> Alcotest.fail "corrupt header crc decoded"

let test_truncated () =
  (* too short even for a header *)
  (match Wire.decode (Bytes.create 3) with
  | Error (Wire.Truncated { wanted; have }) ->
    Alcotest.(check int) "header wanted" Wire.header_bytes wanted;
    Alcotest.(check int) "header have" 3 have
  | _ -> Alcotest.fail "3-byte buffer accepted");
  (* header complete, body cut short *)
  let b = Wire.encode sample_app in
  match Wire.decode (Bytes.sub b 0 (Bytes.length b - 1)) with
  | Error (Wire.Truncated _) -> ()
  | Error e ->
    Alcotest.failf "wrong error for short body: %s" (Wire.error_to_string e)
  | Ok _ -> Alcotest.fail "short body decoded"

let raw_frame payload =
  let out = Bytes.create (Wire.header_bytes + String.length payload) in
  Bytes.set_int32_be out 0 (Int32.of_int (String.length payload));
  Bytes.set_int32_be out 4 (Crc32.string payload);
  Bytes.blit_string payload 0 out Wire.header_bytes (String.length payload);
  out

let test_bad_tag () =
  check_error "unknown frame tag" "unknown frame tag 0x2a"
    (Wire.decode (raw_frame "\x2a"))

let test_malformed () =
  (* valid frame, trailing garbage inside the CRC-covered payload *)
  check_error "trailing bytes are rejected"
    "malformed frame: 1 trailing bytes after frame"
    (Wire.decode (raw_frame (Wire.encode_payload (Wire.Ident { pid = 3 }) ^ "\x00")));
  (* a count field beyond any plausible cluster size *)
  let b = Buffer.create 32 in
  Buffer.add_uint8 b 0 (* App *);
  for _ = 1 to 3 do
    Buffer.add_int64_be b 0L
  done;
  Buffer.add_int64_be b 0x7FFFFFFFL (* dv length *);
  check_error "giant element count is malformed, not an allocation"
    "malformed frame: array count 2147483647 out of range"
    (Wire.decode (raw_frame (Buffer.contents b)))

(* --- golden layout ------------------------------------------------------ *)

let golden_hex =
  (* u32 len | u32 crc | tag | epoch | msg_id | src | #dv dv0 dv1 dv2 | index,
     all ints i64 big-endian.  Pinned: a change here is a wire-format
     break and needs a version bump, not a test update. *)
  "00000041c5d2d28c"
  ^ "00" (* App tag *)
  ^ "0000000000000001" (* epoch *)
  ^ "0000000000000005" (* msg_id *)
  ^ "0000000000000002" (* src *)
  ^ "0000000000000003" (* dv count *)
  ^ "000000000000000100000000000000020000000000000003" (* dv *)
  ^ "0000000000000004" (* index *)

let test_golden () =
  let hex b =
    String.concat ""
      (List.map (Printf.sprintf "%02x")
         (List.map Char.code (List.of_seq (Bytes.to_seq b))))
  in
  Alcotest.(check string) "pinned App frame bytes" golden_hex
    (hex (Wire.encode sample_app))

(* --- qcheck roundtrip --------------------------------------------------- *)

let gen_frame =
  let open QCheck.Gen in
  let small_int = map Int64.to_int (map Int64.of_int (int_bound 1000)) in
  let gen_dv n = array_size (return n) small_int in
  let gen_uc n =
    array_size (return n) (oneof [ return None; map Option.some small_int ])
  in
  let gen_state n =
    let* st_dv = gen_dv n in
    let* st_uc = gen_uc n in
    let* st_retained = array_size (int_bound 4) small_int in
    let* st_app = small_int in
    return { Wire.st_dv; st_uc; st_retained; st_app }
  in
  let gen_tev =
    oneof
      [
        map (fun index -> Wire.T_ckpt { index }) small_int;
        (let* msg_id = small_int in
         let* dst = small_int in
         return (Wire.T_send { msg_id; dst }));
        (let* msg_id = small_int in
         let* src = small_int in
         return (Wire.T_recv { msg_id; src }));
      ]
  in
  let gen_tevs = list_size (int_bound 5) gen_tev in
  let gen_cmd n =
    oneof
      [
        return Wire.C_checkpoint;
        map (fun dst -> Wire.C_send { dst }) small_int;
        (let* src = small_int in
         let* msg_id = small_int in
         return (Wire.C_deliver { src; msg_id }));
        (let* src = small_int in
         let* msg_id = small_int in
         return (Wire.C_drop { src; msg_id }));
        map (fun epoch -> Wire.C_flush { epoch }) small_int;
        return Wire.C_snapshot;
        (let* to_index = small_int in
         let* li = oneof [ return None; map Option.some (gen_dv n) ] in
         return (Wire.C_rollback { to_index; li }));
        map (fun li -> Wire.C_release { li }) (gen_dv n);
        return Wire.C_state;
        return Wire.C_shutdown;
      ]
  in
  let gen_entry n =
    let* index = small_int in
    let* dv = gen_dv n in
    let* taken_at = map float_of_int small_int in
    let* size_bytes = small_int in
    let* payload = small_int in
    return
      { Rdt_storage.Stable_store.index; dv; taken_at; size_bytes; payload }
  in
  let gen_reply n =
    oneof
      [
        (let* events = gen_tevs in
         let* state = gen_state n in
         return (Wire.R_done { events; state }));
        (let* msg_id = small_int in
         let* events = gen_tevs in
         let* state = gen_state n in
         return (Wire.R_sent { msg_id; events; state }));
        (let* entries = list_size (int_bound 3) (gen_entry n) in
         let* live_dv = gen_dv n in
         let* last = small_int in
         return (Wire.R_snapshot { entries; live_dv; last }));
        map (fun state -> Wire.R_state { state }) (gen_state n);
        map (fun message -> Wire.R_error { message }) string_printable;
      ]
  in
  let* n = int_range 1 8 in
  oneof
    [
      (let* epoch = small_int in
       let* msg_id = small_int in
       let* src = small_int in
       let* dv = gen_dv n in
       let* index = small_int in
       return (Wire.App { epoch; msg_id; src; dv; index }));
      map (fun pid -> Wire.Ident { pid }) small_int;
      (let* pid = small_int in
       let* port = small_int in
       let* recovering = bool in
       return (Wire.Hello { pid; port; recovering }));
      (let* protocol = string_printable in
       let* knowledge = oneofl [ `Global; `Causal ] in
       let* ckpt_bytes = small_int in
       let* epoch = small_int in
       let* ports = gen_dv n in
       let* history = gen_tevs in
       let* sends_ever = small_int in
       let* last_seq = small_int in
       return
         (Wire.Config
            { n; protocol; knowledge; ckpt_bytes; epoch; ports; history;
              sends_ever; last_seq }));
      map (fun pid -> Wire.Ready { pid }) small_int;
      (let* seq = small_int in
       let* now = map float_of_int small_int in
       let* cmd = gen_cmd n in
       return (Wire.Cmd { seq; now; cmd }));
      (let* seq = small_int in
       let* reply = gen_reply n in
       return (Wire.Reply { seq; reply }));
    ]

let qcheck_roundtrip =
  QCheck.Test.make ~count:500 ~name:"encode/decode identity"
    (QCheck.make gen_frame) (fun frame ->
      match Wire.decode (Wire.encode frame) with
      | Error e -> QCheck.Test.fail_reportf "%s" (Wire.error_to_string e)
      | Ok (decoded, consumed) ->
        consumed = Bytes.length (Wire.encode frame) && frame_eq frame decoded)

(* every nemesis corruption style must keep the length prefix sound (so
   a receiver can resynchronize at the next frame) while failing decode
   with its advertised error class *)
let qcheck_garble =
  let module Nemesis = Rdt_transport.Nemesis in
  let gen =
    QCheck.Gen.(
      pair gen_frame
        (oneofl
           [ Nemesis.Flip_payload; Nemesis.Forge_tag; Nemesis.Trailing ]))
  in
  QCheck.Test.make ~count:300 ~name:"garble styles fail with their class"
    (QCheck.make gen) (fun (frame, style) ->
      let g = Nemesis.garble style (Wire.encode frame) in
      let header_ok =
        match Wire.decode_header g ~pos:0 ~len:(Bytes.length g) with
        | Ok h -> Wire.header_bytes + h.Wire.h_len = Bytes.length g
        | Error _ -> false
      in
      let class_ok =
        match (Wire.decode g, style) with
        | Error (Wire.Crc_mismatch _), Nemesis.Flip_payload -> true
        | Error (Wire.Bad_tag _), Nemesis.Forge_tag -> true
        | Error (Wire.Malformed _), Nemesis.Trailing -> true
        | _ -> false
      in
      header_ok && class_ok)

let test_streaming () =
  (* two frames back to back: decode consumes exactly the first *)
  let a = Wire.encode sample_app in
  let b = Wire.encode (Wire.Ready { pid = 7 }) in
  let cat = Bytes.cat a b in
  match Wire.decode cat with
  | Error e -> Alcotest.failf "decode: %s" (Wire.error_to_string e)
  | Ok (frame, consumed) ->
    Alcotest.(check int) "consumed first frame" (Bytes.length a) consumed;
    Alcotest.(check bool) "decoded first frame" true (frame_eq frame sample_app);
    (match Wire.decode (Bytes.sub cat consumed (Bytes.length cat - consumed)) with
    | Ok (frame, rest) ->
      Alcotest.(check int) "consumed second frame" (Bytes.length b) rest;
      Alcotest.(check bool) "decoded second frame" true
        (frame_eq frame (Wire.Ready { pid = 7 }))
    | Error e -> Alcotest.failf "second decode: %s" (Wire.error_to_string e))

let suite =
  [
    Alcotest.test_case "oversized length prefix" `Quick test_oversized;
    Alcotest.test_case "garbage length prefix" `Quick test_bad_length;
    Alcotest.test_case "crc mismatch (payload and header)" `Quick
      test_crc_mismatch;
    Alcotest.test_case "truncated header and body" `Quick test_truncated;
    Alcotest.test_case "unknown frame tag" `Quick test_bad_tag;
    Alcotest.test_case "malformed payloads" `Quick test_malformed;
    Alcotest.test_case "golden frame layout" `Quick test_golden;
    Alcotest.test_case "back-to-back frames stream" `Quick test_streaming;
    QCheck_alcotest.to_alcotest qcheck_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_garble;
  ]
