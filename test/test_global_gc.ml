(* The DV-based global computations behind the coordinated baselines:
   Theorem 1 evaluation and the total-failure recovery line. *)

module Global_gc = Rdt_gc.Global_gc
module Oracle = Rdt_gc.Oracle
module Session = Rdt_recovery.Session
module Script = Rdt_scenarios.Script
module Figures = Rdt_scenarios.Figures
module Protocol = Rdt_protocols.Protocol
module Ccp = Rdt_ccp.Ccp

let snapshots_of s =
  Array.init (Script.n s) (fun pid -> Session.snapshot_of (Script.middleware s pid))

(* A no-GC scripted run where the DV computation can be compared with the
   trace oracle on the complete checkpoint set. *)
let rich_script () =
  let s = Script.create ~n:3 ~protocol:Protocol.fdas ~with_lgc:false () in
  Script.transfer s ~src:0 ~dst:1;
  Script.checkpoint s 1;
  Script.transfer s ~src:1 ~dst:2;
  Script.checkpoint s 2;
  Script.checkpoint s 0;
  Script.transfer s ~src:2 ~dst:0;
  Script.checkpoint s 0;
  Script.transfer s ~src:0 ~dst:1;
  Script.checkpoint s 1;
  Script.checkpoint s 2;
  Script.transfer s ~src:2 ~dst:1;
  s

let test_last_interval_vector () =
  let s = rich_script () in
  let snaps = snapshots_of s in
  (* p1 takes a forced checkpoint when the second message from p0 arrives
     (it had sent in that interval), hence 4 intervals *)
  Alcotest.(check (array int)) "LI = last_s + 1" [| 3; 4; 3 |]
    (Global_gc.last_interval_vector snaps)

let test_theorem1_matches_oracle () =
  let s = rich_script () in
  let snaps = snapshots_of s in
  let li = Global_gc.last_interval_vector snaps in
  let ccp = Script.ccp s in
  for pid = 0 to 2 do
    Alcotest.(check (list int))
      (Printf.sprintf "retained of p%d" pid)
      (Oracle.retained ccp ~pid)
      (Global_gc.theorem1_retained snaps ~me:pid ~li)
  done

let test_theorem1_collectable_is_complement () =
  let s = rich_script () in
  let snaps = snapshots_of s in
  let li = Global_gc.last_interval_vector snaps in
  for pid = 0 to 2 do
    let retained = Global_gc.theorem1_retained snaps ~me:pid ~li in
    let collectable = Global_gc.theorem1_collectable snaps ~me:pid ~li in
    let all =
      Array.to_list snaps.(pid).Global_gc.entries
      |> List.map (fun (e : Rdt_storage.Stable_store.entry) -> e.index)
    in
    Alcotest.(check (list int))
      (Printf.sprintf "partition at p%d" pid)
      (List.sort compare all)
      (List.sort compare (retained @ collectable))
  done

let test_stale_li_is_conservative () =
  let s = rich_script () in
  let snaps = snapshots_of s in
  let li = Global_gc.last_interval_vector snaps in
  let stale = Array.map (fun v -> max 1 (v - 1)) li in
  for pid = 0 to 2 do
    let fresh_set = Global_gc.theorem1_retained snaps ~me:pid ~li in
    let stale_set = Global_gc.theorem1_retained snaps ~me:pid ~li:stale in
    (* staleness must only add retained checkpoints, never drop one...
       more precisely it must never collect something fresh knowledge
       keeps *)
    List.iter
      (fun kept ->
        if not (List.mem kept stale_set) then
          (* a checkpoint retained under fresh knowledge disappeared under
             stale knowledge: that would be unsafe only if it is
             non-obsolete; verify against the oracle *)
          let ccp = Script.ccp s in
          if not (Oracle.is_obsolete ccp { Ccp.pid; index = kept }) then
            Alcotest.failf "stale li dropped needed s^%d of p%d" kept pid)
      fresh_set
  done

let test_retained_for_basics () =
  let entry index dv : Rdt_storage.Stable_store.entry =
    { index; dv; taken_at = 0.0; size_bytes = 1; payload = 0 }
  in
  let entries =
    [| entry 0 [| 0; 0 |]; entry 1 [| 1; 1 |]; entry 2 [| 2; 3 |] |]
  in
  let live_dv = [| 3; 3 |] in
  (* knowing p1's interval 3: s^1 is the most recent checkpoint with
     dv.(1) < 3, and its successor reaches 3 *)
  Alcotest.(check (option int)) "pinned" (Some 1)
    (Global_gc.retained_for ~entries ~live_dv ~f:1 ~li_f:3);
  (* knowing only interval 1: s^0 pinned *)
  Alcotest.(check (option int)) "earlier knowledge" (Some 0)
    (Global_gc.retained_for ~entries ~live_dv ~f:1 ~li_f:1);
  (* no knowledge: nothing pinned *)
  Alcotest.(check (option int)) "no knowledge" None
    (Global_gc.retained_for ~entries ~live_dv ~f:1 ~li_f:0);
  (* knowledge beyond what any successor reaches: nothing pinned *)
  Alcotest.(check (option int)) "beyond" None
    (Global_gc.retained_for ~entries ~live_dv ~f:1 ~li_f:9)

let test_total_recovery_line_safety () =
  let s = rich_script () in
  let snaps = snapshots_of s in
  let line = Global_gc.total_recovery_line snaps in
  let ccp = Script.ccp s in
  (* must equal the ground-truth recovery line for F = all processes *)
  Alcotest.(check (array int)) "R_Pi"
    (Rdt_recovery.Recovery_line.lemma1 ccp ~faulty:[ 0; 1; 2 ])
    line

let test_below_total_line_subset_of_obsolete () =
  let s = rich_script () in
  let snaps = snapshots_of s in
  let ccp = Script.ccp s in
  for pid = 0 to 2 do
    List.iter
      (fun index ->
        Alcotest.(check bool)
          (Printf.sprintf "s^%d of p%d below R_Pi is obsolete" index pid)
          true
          (Oracle.is_obsolete ccp { Ccp.pid; index }))
      (Global_gc.below_total_line snaps ~me:pid)
  done

(* the binary search in retained_for against a linear reference, on random
   monotone DV columns *)
let prop_retained_for_binary_search =
  QCheck.Test.make ~name:"retained_for binary search = linear reference"
    ~count:300
    QCheck.(
      make
        Gen.(
          triple (int_bound 1_000) (int_range 0 12) (int_range 0 15)))
    (fun (seed, len, li_f) ->
      let rng = Rdt_sim.Prng.create ~seed in
      (* monotone nondecreasing dv column *)
      let acc = ref 0 in
      let entries =
        Array.init len (fun index ->
            acc := !acc + Rdt_sim.Prng.int rng 3;
            {
              Rdt_storage.Stable_store.index;
              dv = [| !acc |];
              taken_at = 0.0;
              size_bytes = 1;
              payload = 0;
            })
      in
      let live_dv = [| !acc + Rdt_sim.Prng.int rng 3 |] in
      let linear () =
        let best = ref None in
        Array.iteri
          (fun pos (e : Rdt_storage.Stable_store.entry) ->
            if e.dv.(0) < li_f then best := Some pos)
          entries;
        match !best with
        | None -> None
        | Some pos ->
          let successor =
            if pos + 1 < len then entries.(pos + 1).dv else live_dv
          in
          if successor.(0) >= li_f then Some entries.(pos).index else None
      in
      (if li_f <= 0 || len = 0 then
         Global_gc.retained_for ~entries ~live_dv ~f:0 ~li_f = None
       else
         Global_gc.retained_for ~entries ~live_dv ~f:0 ~li_f = linear ()))

(* property: on random protocol-driven executions without local GC, the
   DV-based Theorem 1 equals the trace oracle — Equation 2 at work *)
let prop_theorem1_equals_oracle =
  QCheck.Test.make ~name:"DV Theorem 1 = trace oracle (Equation 2)" ~count:25
    QCheck.(make Gen.(int_bound 2_000))
    (fun case ->
      let t = Helpers.run_case ~gc:Rdt_core.Sim_config.No_gc case in
      let ccp = Rdt_core.Runner.ccp t in
      let n = Ccp.n ccp in
      let snaps =
        Array.init n (fun pid ->
            Session.snapshot_of (Rdt_core.Runner.middleware t pid))
      in
      let li = Global_gc.last_interval_vector snaps in
      List.for_all
        (fun pid ->
          Oracle.retained ccp ~pid
          = Global_gc.theorem1_retained snaps ~me:pid ~li)
        (List.init n Fun.id))

let suite =
  [
    Alcotest.test_case "last interval vector" `Quick test_last_interval_vector;
    Alcotest.test_case "Theorem 1 via DVs = oracle" `Quick
      test_theorem1_matches_oracle;
    Alcotest.test_case "collectable is the complement" `Quick
      test_theorem1_collectable_is_complement;
    Alcotest.test_case "stale LI is conservative" `Quick
      test_stale_li_is_conservative;
    Alcotest.test_case "retained_for basics" `Quick test_retained_for_basics;
    Alcotest.test_case "total recovery line" `Quick
      test_total_recovery_line_safety;
    Alcotest.test_case "below R_Pi is obsolete" `Quick
      test_below_total_line_subset_of_obsolete;
    QCheck_alcotest.to_alcotest prop_retained_for_binary_search;
    QCheck_alcotest.to_alcotest prop_theorem1_equals_oracle;
  ]
