(* Shard-count invariance: a simulation is a pure function of
   (seed, config) — running the engine on 1, 2, 4 or 8 domains must
   produce byte-identical traces and summary reports.  This is the
   acceptance property of the conservative time-window engine. *)

module Sim_config = Rdt_core.Sim_config
module Runner = Rdt_core.Runner
module Trace = Rdt_ccp.Trace
module Workload = Rdt_workload.Workload
module Scenario = Rdt_verify.Scenario
module Harness = Rdt_verify.Harness

let trace_bytes trace =
  let path = Filename.temp_file "rdtgc_shards" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.save trace path;
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic)))

(* Everything observable, as bytes: the full event trace and the printed
   summary report (which folds in engine stats, per-process stores,
   control-message counts, recovery reports and sampled series). *)
let observe ?(autotune = true) cfg ~shards =
  let r = Runner.create { cfg with Sim_config.shards; autotune } in
  Runner.run r;
  let summary = Fmt.str "%a" Runner.pp_summary (Runner.summary r) in
  let series =
    Fmt.str "%a" Rdt_metrics.Series.pp (Runner.total_retained_series r)
  in
  (trace_bytes (Runner.trace r), summary, series)

let check_invariant ?(autotune = true) ?(shard_counts = [ 1; 2; 4; 8 ]) name
    cfg =
  match shard_counts with
  | [] -> ()
  | base_shards :: rest ->
    let base = observe cfg ~shards:base_shards in
    List.iter
      (fun k ->
        let trace, summary, series = observe ~autotune cfg ~shards:k in
        let b_trace, b_summary, b_series = base in
        Alcotest.(check string)
          (Printf.sprintf "%s: trace bytes, %d vs %d shards" name base_shards
             k)
          b_trace trace;
        Alcotest.(check string)
          (Printf.sprintf "%s: summary, %d vs %d shards" name base_shards k)
          b_summary summary;
        Alcotest.(check string)
          (Printf.sprintf "%s: retained series, %d vs %d shards" name
             base_shards k)
          b_series series)
      rest

(* --- fixed scenario matrix -------------------------------------------- *)

let test_uniform_default () =
  check_invariant "uniform/rdt-lgc"
    { Sim_config.default with n = 8; seed = 7; duration = 50.0 }

let test_faults_and_recovery () =
  check_invariant "faults"
    {
      Sim_config.default with
      n = 6;
      seed = 3;
      duration = 40.0;
      faults =
        [
          { Sim_config.pid = 2; crash_at = 15.0; repair_after = 4.0 };
          { Sim_config.pid = 4; crash_at = 25.0; repair_after = 6.0 };
        ];
    }

let test_coordinated_rounds () =
  (* control messages + round completion under the coordinated baseline *)
  check_invariant "coordinated"
    {
      Sim_config.default with
      n = 6;
      seed = 11;
      duration = 40.0;
      gc = Sim_config.Coordinated { period = 5.0 };
      net = { Rdt_sim.Network.default with loss_probability = 0.05 };
    }

let test_fifo_client_server () =
  check_invariant "fifo client-server"
    {
      Sim_config.default with
      n = 7;
      seed = 11;
      duration = 60.0;
      gc = Sim_config.Local_lazy { period = 4.0 };
      workload =
        {
          Workload.default with
          pattern = Workload.Client_server { servers = 2 };
        };
      net = { Rdt_sim.Network.default with fifo = true };
      faults = [ { Sim_config.pid = 1; crash_at = 20.0; repair_after = 6.0 } ];
    }

let test_more_shards_than_processes () =
  (* shards are clamped to n; still invariant *)
  check_invariant ~shard_counts:[ 1; 3; 16 ] "clamped"
    { Sim_config.default with n = 3; seed = 5; duration = 30.0 }

let test_team_path_autotune_off () =
  (* [autotune = false] forces a full domain team with symmetric windows
     regardless of the host's core count — on a narrow CI box this is the
     only configuration that exercises the persistent Barrier_team, the
     pooled cross-shard mailboxes and the window barriers (with autotuning
     on, such a host dispatches the merged inline executor instead).  The
     observable output must not budge. *)
  check_invariant ~autotune:false ~shard_counts:[ 1; 2; 4 ] "team path"
    {
      Sim_config.default with
      n = 6;
      seed = 13;
      duration = 30.0;
      faults = [ { Sim_config.pid = 1; crash_at = 12.0; repair_after = 5.0 } ];
    }

let test_large_n_smoke () =
  (* n = 1024 at shards 1 vs 4: the scale where the per-shard queues'
     cache win shows up (DESIGN.md §13); byte-identity must hold there
     too, not only on toy sizes.  Short duration — this is a tier-1
     smoke, the scaling claim itself lives in the benchmark. *)
  check_invariant ~shard_counts:[ 1; 4 ] "n=1024 smoke"
    { Sim_config.default with n = 1024; seed = 29; duration = 2.0 }

(* --- qcheck property --------------------------------------------------- *)

let gen_config =
  QCheck.Gen.(
    let* n = int_range 2 9 in
    let* seed = int_range 1 100_000 in
    let* duration = float_range 15.0 35.0 in
    let* pattern =
      oneofl
        [
          Workload.Uniform;
          Workload.Ring;
          Workload.Pipeline;
          Workload.Broadcast;
          Workload.Bursty { burst = 2 };
        ]
    in
    let* loss = oneofl [ 0.0; 0.1 ] in
    let* fifo = bool in
    let* gc =
      oneofl
        [
          Sim_config.Local;
          Sim_config.No_gc;
          Sim_config.Coordinated { period = 5.0 };
          Sim_config.Simple { period = 6.0 };
          Sim_config.Local_lazy { period = 4.0 };
        ]
    in
    let* with_fault = bool in
    let faults =
      if with_fault && n > 2 then
        [ { Sim_config.pid = n - 1; crash_at = 8.0; repair_after = 3.0 } ]
      else []
    in
    return
      {
        Sim_config.default with
        n;
        seed;
        duration;
        gc;
        faults;
        workload = { Workload.default with pattern };
        net =
          { Rdt_sim.Network.default with loss_probability = loss; fifo };
      })

let qcheck_invariance =
  QCheck.Test.make ~count:12 ~name:"random config is shard-invariant"
    (QCheck.make gen_config) (fun cfg ->
      check_invariant ~shard_counts:[ 1; 2; 4 ] "qcheck" cfg;
      true)

(* Nightly-only: the same property at simulation scale (n up to 4096,
   where per-process state alone is hundreds of MB and a run takes
   seconds).  Gated on RDTGC_NIGHTLY so `dune runtest` stays fast; the
   nightly workflow exports it. *)
let nightly =
  match Sys.getenv_opt "RDTGC_NIGHTLY" with
  | None | Some "" | Some "0" -> false
  | Some _ -> true

let gen_large_config =
  QCheck.Gen.(
    let* n = oneofl [ 512; 1024; 2048; 4096 ] in
    let* seed = int_range 1 100_000 in
    let* pattern = oneofl [ Workload.Uniform; Workload.Ring ] in
    return
      {
        Sim_config.default with
        n;
        seed;
        (* events scale with n * duration: keep runs in the seconds *)
        duration = 2.0;
        workload = { Workload.default with pattern };
      })

let qcheck_invariance_large =
  QCheck.Test.make ~count:3 ~name:"large-n config is shard-invariant (nightly)"
    (QCheck.make gen_large_config) (fun cfg ->
      check_invariant ~shard_counts:[ 1; 4 ] "qcheck-large" cfg;
      true)

(* --- committed corpus replay ------------------------------------------- *)

(* `dune runtest` runs in the test sandbox (corpus/ alongside the exe);
   `dune exec test/test_main.exe` runs from the project root *)
let corpus_dir =
  if Sys.file_exists "corpus" then "corpus" else "test/corpus"

let corpus_files () =
  Sys.readdir corpus_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".scn")
  |> List.sort compare

let test_corpus_replays_clean () =
  let files = corpus_files () in
  Alcotest.(check bool) "corpus is non-empty" true (files <> []);
  List.iter
    (fun f ->
      match Scenario.load (Filename.concat corpus_dir f) with
      | Error e -> Alcotest.failf "%s: %s" f e
      | Ok sc ->
        let r = Harness.run sc in
        Alcotest.(check int)
          (Printf.sprintf "%s passes the oracles" f)
          0
          (List.length r.Harness.violations))
    (corpus_files ())

let test_corpus_regenerates_at_every_shard_count () =
  (* the committed files were generated with the donor simulation on one
     shard; regenerating on 2 and 4 shards must reproduce them byte for
     byte (the generator transcribes the engine's trace, so this is
     trace-level invariance end to end).  Hand-built scenarios carry
     seed 0 by convention and have no generator to regenerate from;
     shrunk reproducers (.min.scn) keep their discovery seed for
     provenance but are ddmin output, not generator output. *)
  List.iter
    (fun f ->
      match Scenario.load (Filename.concat corpus_dir f) with
      | _ when Filename.check_suffix f ".min.scn" -> ()
      | Error e -> Alcotest.failf "%s: %s" f e
      | Ok committed when committed.Scenario.seed = 0 -> ()
      | Ok committed ->
        List.iter
          (fun shards ->
            let regen =
              Scenario.generate ~shards ~seed:committed.Scenario.seed
                ~max_procs:6 ()
            in
            Alcotest.(check bool)
              (Printf.sprintf "%s regenerated on %d shards" f shards)
              true
              (Scenario.to_string regen = Scenario.to_string committed))
          [ 1; 2; 4 ])
    (corpus_files ())

let suite =
  [
    Alcotest.test_case "uniform default" `Quick test_uniform_default;
    Alcotest.test_case "faults and recovery" `Quick test_faults_and_recovery;
    Alcotest.test_case "coordinated rounds" `Quick test_coordinated_rounds;
    Alcotest.test_case "fifo client-server" `Quick test_fifo_client_server;
    Alcotest.test_case "more shards than processes" `Quick
      test_more_shards_than_processes;
    Alcotest.test_case "team path (autotune off)" `Quick
      test_team_path_autotune_off;
    Alcotest.test_case "n=1024 smoke (shards 1 vs 4)" `Quick
      test_large_n_smoke;
    QCheck_alcotest.to_alcotest qcheck_invariance;
    Alcotest.test_case "corpus replays clean" `Quick test_corpus_replays_clean;
    Alcotest.test_case "corpus regenerates at every shard count" `Quick
      test_corpus_regenerates_at_every_shard_count;
  ]
  @
  if nightly then [ QCheck_alcotest.to_alcotest qcheck_invariance_large ]
  else []
