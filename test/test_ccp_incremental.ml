(* The incremental analysis engine: a live {!Ccp.Incremental} view and a
   long-lived {!Zigzag.analyzer} must agree with from-scratch rebuilds at
   every point of a randomized execution, through appends, out-of-order
   deliveries and rollbacks; the Oracle's preloaded fast path must agree
   with its reference characterization. *)

module Trace = Rdt_ccp.Trace
module Ccp = Rdt_ccp.Ccp
module Zigzag = Rdt_ccp.Zigzag
module Oracle = Rdt_gc.Oracle
module Runner = Rdt_core.Runner
module Sim_config = Rdt_core.Sim_config
module Workload = Rdt_workload.Workload
module Figures = Rdt_scenarios.Figures

let ck pid index : Ccp.ckpt = { pid; index }

(* --- randomized trace growth ------------------------------------------ *)

(* Grows a trace with checkpoints, immediate messages, and out-of-order
   deliveries (a send held back and received after later sends — the
   non-FIFO case the analyzer's bucket insertion must keep sorted). *)
let grow_random ~rng ~steps trace =
  let n = Trace.n trace in
  let pending = ref [] in
  for _ = 1 to steps do
    match Random.State.int rng 10 with
    | 0 | 1 -> Trace.checkpoint trace (Random.State.int rng n)
    | 2 ->
      (* hold a send back *)
      let src = Random.State.int rng n in
      let dst = (src + 1 + Random.State.int rng (n - 1)) mod n in
      let id = Trace.send trace ~src ~dst in
      pending := (id, src, dst) :: !pending
    | 3 | 4 -> begin
      (* deliver a held send, newest first: out-of-order vs send time *)
      match !pending with
      | (id, src, dst) :: rest ->
        pending := rest;
        Trace.receive trace ~msg_id:id ~src ~dst
      | [] -> ()
    end
    | _ ->
      let src = Random.State.int rng n in
      let dst = (src + 1 + Random.State.int rng (n - 1)) mod n in
      Trace.message trace ~src ~dst
  done

let check_equal_ccp ~msg live fresh =
  let n = Ccp.n fresh in
  Alcotest.(check int) (msg ^ ": n") n (Ccp.n live);
  for pid = 0 to n - 1 do
    Alcotest.(check int)
      (Printf.sprintf "%s: last_stable p%d" msg pid)
      (Ccp.last_stable fresh pid) (Ccp.last_stable live pid);
    Alcotest.(check int)
      (Printf.sprintf "%s: volatile_index p%d" msg pid)
      (Ccp.volatile_index fresh pid)
      (Ccp.volatile_index live pid)
  done;
  Alcotest.(check int)
    (msg ^ ": message count")
    (Array.length (Ccp.messages fresh))
    (Array.length (Ccp.messages live));
  Alcotest.(check bool)
    (msg ^ ": message lists equal")
    true
    (Ccp.messages fresh = Ccp.messages live);
  (* full precedes matrix, volatile checkpoints included *)
  let cs = Ccp.checkpoints fresh in
  List.iter
    (fun c1 ->
      List.iter
        (fun c2 ->
          Alcotest.(check bool)
            (Format.asprintf "%s: precedes %a %a" msg Ccp.pp_ckpt c1
               Ccp.pp_ckpt c2)
            (Ccp.precedes fresh c1 c2)
            (Ccp.precedes live c1 c2))
        cs)
    cs

let test_incremental_matches_rebuild () =
  let rng = Random.State.make [| 42 |] in
  let trace = Trace.init_with_initial_checkpoints ~n:4 in
  let incr = Ccp.Incremental.of_trace trace in
  for round = 1 to 8 do
    grow_random ~rng ~steps:40 trace;
    check_equal_ccp
      ~msg:(Printf.sprintf "round %d" round)
      (Ccp.Incremental.ccp incr) (Ccp.of_trace trace)
  done

let test_incremental_zigzag_analyzer () =
  let rng = Random.State.make [| 1337 |] in
  let trace = Trace.init_with_initial_checkpoints ~n:4 in
  let incr = Ccp.Incremental.of_trace trace in
  let analyzer = Zigzag.analyzer (Ccp.Incremental.ccp incr) in
  for round = 1 to 6 do
    grow_random ~rng ~steps:30 trace;
    let live = Ccp.Incremental.ccp incr in
    let fresh = Ccp.of_trace trace in
    List.iter
      (fun src ->
        Alcotest.(check (array int))
          (Format.asprintf "round %d: reach from %a" round Ccp.pp_ckpt src)
          (Zigzag.reach fresh ~src)
          (Array.copy (Zigzag.reach_from analyzer ~src)))
      (Ccp.checkpoints live);
    Alcotest.(check bool)
      (Printf.sprintf "round %d: useless sets equal" round)
      true
      (Zigzag.useless_from analyzer = Zigzag.useless fresh)
  done

let test_analyzer_routed_entry_points () =
  let f = Figures.figure1 () in
  let a = Zigzag.analyzer f.ccp in
  let cs = Ccp.checkpoints f.ccp in
  List.iter
    (fun c1 ->
      Alcotest.(check bool)
        (Format.asprintf "cycle %a" Ccp.pp_ckpt c1)
        (Zigzag.cycle f.ccp c1) (Zigzag.cycle_from a c1);
      List.iter
        (fun c2 ->
          Alcotest.(check bool)
            (Format.asprintf "path %a %a" Ccp.pp_ckpt c1 Ccp.pp_ckpt c2)
            (Zigzag.path_exists f.ccp c1 c2)
            (Zigzag.path_exists_from a c1 c2))
        cs)
    cs;
  Alcotest.(check bool) "classify [m5,m4]" true
    (Zigzag.classify_sequence f.ccp ~from_:(ck 0 1) ~to_:(ck 2 2)
       [ f.m5; f.m4 ]
    = Zigzag.classify_sequence_from a ~from_:(ck 0 1) ~to_:(ck 2 2)
        [ f.m5; f.m4 ])

(* --- rollback (trace truncation) --------------------------------------- *)

let test_rollback_invalidates () =
  let trace = Trace.init_with_initial_checkpoints ~n:3 in
  let incr = Ccp.Incremental.of_trace trace in
  Trace.message trace ~src:0 ~dst:1;
  Trace.checkpoint trace 1;
  (* a send that is never received: erased cleanly by the rollback *)
  ignore (Trace.send trace ~src:1 ~dst:2);
  Trace.message trace ~src:2 ~dst:0;
  let before = Ccp.Incremental.ccp incr in
  Alcotest.(check int) "p1 took s1" 1 (Ccp.last_stable before 1);
  let gen_before = Ccp.generation before in
  (* roll p1 back to s0: erases its receive (the message becomes
     in-transit, which the model allows), its checkpoint and its send *)
  Trace.truncate_to_checkpoint trace ~pid:1 ~index:0;
  let live = Ccp.Incremental.ccp incr in
  check_equal_ccp ~msg:"after rollback" live (Ccp.of_trace trace);
  Alcotest.(check int) "p1 rolled back to s0" 0 (Ccp.last_stable live 1);
  Alcotest.(check bool) "generation bumped by the rebuild" true
    (Ccp.generation live > gen_before);
  (* appends after the rollback keep folding in *)
  Trace.message trace ~src:0 ~dst:2;
  Trace.checkpoint trace 0;
  check_equal_ccp ~msg:"appends after rollback"
    (Ccp.Incremental.ccp incr) (Ccp.of_trace trace);
  (* a second rollback while an analyzer holds the view: its queries must
     reindex after the generation bump *)
  let a = Zigzag.analyzer live in
  ignore (Zigzag.reach_from a ~src:(ck 0 0));
  Trace.checkpoint trace 2;
  ignore (Trace.send trace ~src:2 ~dst:0);
  Trace.truncate_to_checkpoint trace ~pid:2 ~index:1;
  ignore (Ccp.Incremental.ccp incr);
  Alcotest.(check (array int)) "analyzer reindexes after generation bump"
    (Zigzag.reach (Ccp.of_trace trace) ~src:(ck 2 0))
    (Array.copy (Zigzag.reach_from a ~src:(ck 2 0)))

(* --- the runner's live view ------------------------------------------- *)

let faulty_config seed =
  {
    Sim_config.default with
    n = 4;
    seed;
    duration = 60.0;
    gc = Sim_config.Local;
    sample_interval = 2.0;
    workload =
      {
        Workload.pattern = Workload.Uniform;
        send_mean_interval = 0.8;
        basic_ckpt_mean_interval = 4.0;
        reply_probability = 0.3;
      };
    faults =
      [
        { Sim_config.crash_at = 20.0; pid = 1; repair_after = 3.0 };
        { Sim_config.crash_at = 41.0; pid = 2; repair_after = 2.0 };
      ];
  }

let test_runner_ccp_through_recovery () =
  List.iter
    (fun seed ->
      let t = Runner.create (faulty_config seed) in
      (* query at every sample point so the incremental view is exercised
         across the rollbacks, not only at the end *)
      Runner.set_on_sample t (fun t ->
          ignore (Ccp.messages (Runner.ccp t)));
      Runner.run t;
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: sessions happened" seed)
        true
        (List.length (Runner.recoveries t) >= 1);
      check_equal_ccp
        ~msg:(Printf.sprintf "seed %d: runner vs rebuild" seed)
        (Runner.ccp t)
        (Ccp.of_trace (Runner.trace t)))
    [ 5; 23 ]

(* --- oracle fast path -------------------------------------------------- *)

let reference_obsolete ccp =
  List.filter
    (fun c -> Oracle.needed_by ccp c = [])
    (Ccp.stable_checkpoints ccp)

let test_oracle_fast_path () =
  let rng = Random.State.make [| 2718 |] in
  for _round = 1 to 5 do
    let trace = Trace.init_with_initial_checkpoints ~n:5 in
    grow_random ~rng ~steps:150 trace;
    let ccp = Ccp.of_trace trace in
    Alcotest.(check bool) "obsolete = reference" true
      (Oracle.obsolete ccp = reference_obsolete ccp);
    List.iter
      (fun c ->
        Alcotest.(check bool)
          (Format.asprintf "is_obsolete %a" Ccp.pp_ckpt c)
          (Oracle.needed_by ccp c = [])
          (Oracle.is_obsolete ccp c))
      (Ccp.stable_checkpoints ccp);
    for pid = 0 to Ccp.n ccp - 1 do
      let reference =
        List.filter_map
          (fun (c : Ccp.ckpt) ->
            if c.pid = pid && Oracle.needed_by ccp c <> [] then Some c.index
            else None)
          (Ccp.stable_checkpoints ccp)
      in
      Alcotest.(check (list int))
        (Printf.sprintf "retained p%d" pid)
        reference
        (Oracle.retained ccp ~pid);
      Alcotest.(check int)
        (Printf.sprintf "retained_count p%d" pid)
        (List.length reference)
        (Oracle.retained_count ccp ~pid)
    done
  done

let test_oracle_rejects_volatile () =
  let f = Figures.figure1 () in
  Alcotest.check_raises "volatile checkpoint rejected"
    (Invalid_argument "Oracle: Theorem 1 characterizes stable checkpoints")
    (fun () -> ignore (Oracle.is_obsolete f.ccp (Ccp.volatile f.ccp 0)))

let suite =
  [
    Alcotest.test_case "incremental view matches rebuilds" `Quick
      test_incremental_matches_rebuild;
    Alcotest.test_case "analyzer tracks a growing CCP" `Quick
      test_incremental_zigzag_analyzer;
    Alcotest.test_case "analyzer-routed entry points agree" `Quick
      test_analyzer_routed_entry_points;
    Alcotest.test_case "rollback invalidates and rebuilds" `Quick
      test_rollback_invalidates;
    Alcotest.test_case "runner live view through recoveries" `Quick
      test_runner_ccp_through_recovery;
    Alcotest.test_case "oracle fast path = reference" `Quick
      test_oracle_fast_path;
    Alcotest.test_case "oracle rejects volatile checkpoints" `Quick
      test_oracle_rejects_volatile;
  ]
