(* Corner cases across modules that the main suites do not reach. *)

module Ccp = Rdt_ccp.Ccp
module Trace = Rdt_ccp.Trace
module Zigzag = Rdt_ccp.Zigzag
module Script = Rdt_scenarios.Script
module Figures = Rdt_scenarios.Figures
module Protocol = Rdt_protocols.Protocol
module Middleware = Rdt_protocols.Middleware
module Stable_store = Rdt_storage.Stable_store
module Session = Rdt_recovery.Session
module Runner = Rdt_core.Runner
module Sim_config = Rdt_core.Sim_config
module Engine = Rdt_sim.Engine

let test_zigzag_empty_sequence () =
  let f = Figures.figure1 () in
  Alcotest.(check bool) "empty sequence is not a path" true
    (Zigzag.classify_sequence f.ccp ~from_:{ Ccp.pid = 0; index = 0 }
       ~to_:{ Ccp.pid = 2; index = 1 } []
    = Zigzag.Not_a_path)

let test_zigzag_unknown_message () =
  let f = Figures.figure1 () in
  Alcotest.(check bool) "undelivered/unknown id is not a path" true
    (Zigzag.classify_sequence f.ccp ~from_:{ Ccp.pid = 0; index = 0 }
       ~to_:{ Ccp.pid = 2; index = 1 } [ 999 ]
    = Zigzag.Not_a_path)

let test_zigzag_single_message () =
  let f = Figures.figure1 () in
  (* m1 alone: p0 after s0 to p1 before its volatile *)
  Alcotest.(check bool) "single message C-path" true
    (Zigzag.classify_sequence f.ccp ~from_:{ Ccp.pid = 0; index = 0 }
       ~to_:{ Ccp.pid = 1; index = 2 } [ f.m1 ]
    = Zigzag.Causal_path)

let test_rollback_to_initial () =
  (* no collector: this exercises the middleware rewind mechanics, and
     with RDT-LGC attached s^0 would long be collected *)
  let s = Script.create ~n:2 ~protocol:Protocol.fdas ~with_lgc:false () in
  Script.checkpoint s 0;
  Script.checkpoint s 0;
  let mw = Script.middleware s 0 in
  Middleware.rollback mw ~to_index:0 ~li:None;
  Alcotest.(check (list int)) "only s^0 left" [ 0 ] (Script.retained s 0);
  Alcotest.(check (array int)) "dv reset and incremented" [| 1; 0 |]
    (Script.dv s 0);
  (* execution can continue: next checkpoint is s^1 again *)
  Script.checkpoint s 0;
  Alcotest.(check (list int)) "re-takes s^1" [ 0; 1 ] (Script.retained s 0)

let test_double_rollback () =
  let s = Script.create ~n:2 ~protocol:Protocol.fdas ~with_lgc:false () in
  Script.transfer s ~src:1 ~dst:0;
  Script.checkpoint s 0;
  Script.checkpoint s 0;
  let mw = Script.middleware s 0 in
  Middleware.rollback mw ~to_index:1 ~li:None;
  Middleware.rollback mw ~to_index:0 ~li:None;
  Alcotest.(check (list int)) "settled at s^0" [ 0 ] (Script.retained s 0);
  Alcotest.(check bool) "trace consistent" true
    (Rdt_ccp.Rdt_check.holds (Script.ccp s))

let test_rollback_to_missing_checkpoint () =
  let s = Script.create ~n:2 ~protocol:Protocol.fdas ~with_lgc:true () in
  Script.checkpoint s 0;
  let mw = Script.middleware s 0 in
  Alcotest.(check bool) "raises" true
    (try
       Middleware.rollback mw ~to_index:7 ~li:None;
       false
     with Invalid_argument _ -> true)

let test_session_all_faulty () =
  let s = Script.create ~n:3 ~protocol:Protocol.fdas ~with_lgc:true () in
  Script.transfer s ~src:0 ~dst:1;
  Script.checkpoint s 1;
  Script.transfer s ~src:1 ~dst:2;
  Script.checkpoint s 2;
  let middlewares = Array.init 3 (Script.middleware s) in
  let report =
    Session.run ~middlewares ~faulty:[ 0; 1; 2 ] ~knowledge:`Global
      ~release_outdated:(fun _ ~li:_ -> ())
  in
  (* everyone loses at least the volatile checkpoint *)
  Alcotest.(check int) "all processes rolled back" 3
    (List.length report.Session.rolled_back);
  Alcotest.(check bool) "post-state consistent" true
    (Rdt_ccp.Rdt_check.holds (Script.ccp s))

let test_runner_byte_accounting () =
  let cfg = { (Helpers.sim_config_of_case 1) with ckpt_bytes = 7 } in
  let t = Runner.create cfg in
  Runner.run t;
  for pid = 0 to cfg.Sim_config.n - 1 do
    let store = Middleware.store (Runner.middleware t pid) in
    Alcotest.(check int)
      (Printf.sprintf "bytes = 7 * count at p%d" pid)
      (7 * Stable_store.count store)
      (Stable_store.bytes store)
  done

let test_engine_send_to_self () =
  let e = Engine.create ~n:2 ~seed:1 ~net:Rdt_sim.Network.default () in
  let got = ref 0 in
  Engine.set_receiver e 0 (fun ~src _ ->
      if src = 0 then incr got);
  Engine.send e ~src:0 ~dst:0 ();
  Engine.run e;
  Alcotest.(check int) "self-send delivered through the network" 1 !got

let test_engine_bad_destination () =
  let e = Engine.create ~n:2 ~seed:1 ~net:Rdt_sim.Network.default () in
  Alcotest.(check bool) "raises" true
    (try
       Engine.send e ~src:0 ~dst:5 ();
       false
     with Invalid_argument _ -> true)

let test_recovered_process_resumes_workload () =
  (* timers must survive the down window: the process keeps checkpointing
     and sending after repair *)
  let cfg =
    {
      (Helpers.sim_config_of_case 4) with
      duration = 60.0;
      faults = [ { Sim_config.crash_at = 10.0; pid = 1; repair_after = 5.0 } ];
    }
  in
  let t = Runner.create cfg in
  Runner.run t;
  let trace = Runner.trace t in
  let late_activity =
    List.exists
      (fun (ev : Trace.event) ->
        ev.pid = 1
        &&
        match ev.kind with
        | Trace.Checkpoint { index } ->
          index > 0
          && (match Stable_store.find (Middleware.store (Runner.middleware t 1)) ~index with
             | Some e -> e.Stable_store.taken_at > 20.0
             | None -> false)
        | Trace.Send _ | Trace.Receive _ -> false)
      (Trace.events_of trace ~pid:1)
  in
  Alcotest.(check bool) "p1 checkpointed after repair" true late_activity

let test_script_double_delivery_rejected () =
  let s = Script.create ~n:2 ~protocol:Protocol.fdas ~with_lgc:false () in
  let m = Script.send s ~src:0 ~dst:1 in
  Script.deliver s m;
  Alcotest.(check bool) "raises" true
    (try
       Script.deliver s m;
       false
     with Invalid_argument _ -> true)

let test_figure2_under_cas () =
  (* checkpoint-after-send also breaks the domino interleaving *)
  let s = Figures.figure2_with_protocol Protocol.cas in
  let ccp = Script.ccp s in
  Alcotest.(check bool) "RDT" true (Rdt_ccp.Rdt_check.holds ccp);
  Alcotest.(check (list string)) "no useless" []
    (List.map
       (fun (c : Ccp.ckpt) -> Printf.sprintf "%d_%d" c.pid c.index)
       (Zigzag.useless ccp))

let test_tracking_volatile_target () =
  (* the volatile checkpoint itself can be a tracking target *)
  let s = Script.create ~n:2 ~protocol:Protocol.fdas ~with_lgc:false () in
  Script.transfer s ~src:0 ~dst:1;
  Script.checkpoint s 1;
  let snaps =
    Array.init 2 (fun pid -> Session.snapshot_of (Script.middleware s pid))
  in
  let target : Rdt_recovery.Tracking.target =
    { pid = 1; index = 2 (* p1's volatile *) }
  in
  (match Rdt_recovery.Tracking.max_consistent_containing snaps [ target ] with
  | Some g ->
    Alcotest.(check int) "volatile kept" 2 g.(1);
    Alcotest.(check bool) "consistent with p0's volatile" true (g.(0) >= 0)
  | None -> Alcotest.fail "no max");
  match Rdt_recovery.Tracking.min_consistent_containing snaps [ target ] with
  | Some g ->
    (* p1's volatile depends on s0_p0's interval: p0's component must be
       at least 1 *)
    Alcotest.(check bool) "cause horizon past the dependency" true (g.(0) >= 1)
  | None -> Alcotest.fail "no min"

let test_multi_target_consistency_cross_check () =
  (* two fixed targets, trace fixpoints vs DV closed forms *)
  let s = Script.create ~n:3 ~protocol:Protocol.fdas ~with_lgc:false () in
  Script.checkpoint s 0;
  Script.transfer s ~src:0 ~dst:1;
  Script.checkpoint s 1;
  Script.transfer s ~src:1 ~dst:2;
  Script.checkpoint s 2;
  Script.checkpoint s 0;
  let snaps =
    Array.init 3 (fun pid -> Session.snapshot_of (Script.middleware s pid))
  in
  let ccp = Script.ccp s in
  let targets : Rdt_recovery.Tracking.target list =
    [ { pid = 0; index = 1 }; { pid = 2; index = 1 } ]
  in
  let ccp_targets =
    List.map
      (fun (t : Rdt_recovery.Tracking.target) ->
        { Ccp.pid = t.pid; index = t.index })
      targets
  in
  Alcotest.(check (option (array int)))
    "max agrees"
    (Rdt_ccp.Consistency.max_consistent_containing ccp ccp_targets)
    (Rdt_recovery.Tracking.max_consistent_containing snaps targets);
  Alcotest.(check (option (array int)))
    "min agrees"
    (Rdt_ccp.Consistency.min_consistent_containing ccp ccp_targets)
    (Rdt_recovery.Tracking.min_consistent_containing snaps targets)

let test_merged_basic_count () =
  let m = Rdt_gc.Merged_fdas.create ~n:2 ~me:0 in
  Alcotest.(check int) "s0 not counted" 0 (Rdt_gc.Merged_fdas.basic_count m);
  Rdt_gc.Merged_fdas.basic_checkpoint m ~now:1.0;
  Alcotest.(check int) "counted" 1 (Rdt_gc.Merged_fdas.basic_count m)

let test_prng_stream_stability () =
  (* the same seed yields the same stream on every call site; pins the
     splitmix64 implementation against accidental change *)
  let t = Rdt_sim.Prng.create ~seed:42 in
  let a = Rdt_sim.Prng.bits64 t in
  let b = Rdt_sim.Prng.bits64 t in
  let t' = Rdt_sim.Prng.create ~seed:42 in
  Alcotest.check Alcotest.int64 "first" a (Rdt_sim.Prng.bits64 t');
  Alcotest.check Alcotest.int64 "second" b (Rdt_sim.Prng.bits64 t');
  Alcotest.(check bool) "values differ" true (a <> b)

let test_large_n_stress () =
  let cfg =
    {
      Sim_config.default with
      n = 24;
      seed = 9;
      duration = 40.0;
      workload =
        {
          Rdt_workload.Workload.default with
          send_mean_interval = 0.5;
          basic_ckpt_mean_interval = 3.0;
        };
    }
  in
  let t = Runner.create cfg in
  Runner.run t;
  Helpers.audit_bound t;
  Helpers.audit_optimality ~exact:true t

let suite =
  [
    Alcotest.test_case "zigzag: empty sequence" `Quick
      test_zigzag_empty_sequence;
    Alcotest.test_case "zigzag: unknown message" `Quick
      test_zigzag_unknown_message;
    Alcotest.test_case "zigzag: single message" `Quick
      test_zigzag_single_message;
    Alcotest.test_case "rollback to the initial checkpoint" `Quick
      test_rollback_to_initial;
    Alcotest.test_case "double rollback" `Quick test_double_rollback;
    Alcotest.test_case "rollback to missing checkpoint" `Quick
      test_rollback_to_missing_checkpoint;
    Alcotest.test_case "session with every process faulty" `Quick
      test_session_all_faulty;
    Alcotest.test_case "runner byte accounting" `Quick
      test_runner_byte_accounting;
    Alcotest.test_case "engine self-send" `Quick test_engine_send_to_self;
    Alcotest.test_case "engine bad destination" `Quick
      test_engine_bad_destination;
    Alcotest.test_case "recovered process resumes workload" `Quick
      test_recovered_process_resumes_workload;
    Alcotest.test_case "script double delivery rejected" `Quick
      test_script_double_delivery_rejected;
    Alcotest.test_case "figure 2 under CAS" `Quick test_figure2_under_cas;
    Alcotest.test_case "tracking with a volatile target" `Quick
      test_tracking_volatile_target;
    Alcotest.test_case "multi-target min/max cross-check" `Quick
      test_multi_target_consistency_cross_check;
    Alcotest.test_case "merged basic count" `Quick test_merged_basic_count;
    Alcotest.test_case "prng stream stability" `Quick
      test_prng_stream_stability;
    Alcotest.test_case "large-n stress (n=24)" `Slow test_large_n_stress;
  ]
