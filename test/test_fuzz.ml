(* The differential fuzzer fuzzing itself: determinism, the known-bug
   self-check (an over-collecting collector must be caught and shrunk to
   a handful of events), scenario serialization, and a clean campaign
   over the real stack. *)

module Scenario = Rdt_verify.Scenario
module Harness = Rdt_verify.Harness
module Oracles = Rdt_verify.Oracles
module Shrink = Rdt_verify.Shrink
module Fuzz = Rdt_verify.Fuzz

let scratch = Filename.concat (Filename.get_temp_dir_name ()) "rdtgc-test-fuzz"

(* --- determinism ------------------------------------------------------- *)

let campaign_log ~mutate_lgc ~seed ~runs =
  let buf = Buffer.create 4096 in
  let report =
    Fuzz.campaign ~mutate_lgc ~shrink:mutate_lgc
      ~log:(fun l ->
        Buffer.add_string buf l;
        Buffer.add_char buf '\n')
      ~scratch_dir:scratch ~seed ~runs ~max_procs:5 ()
  in
  (report, Buffer.contents buf)

let test_deterministic () =
  let r1, log1 = campaign_log ~mutate_lgc:false ~seed:99 ~runs:12 in
  let r2, log2 = campaign_log ~mutate_lgc:false ~seed:99 ~runs:12 in
  Alcotest.(check string) "byte-identical logs" log1 log2;
  Alcotest.(check int) "same failure count"
    (List.length r1.Fuzz.failures)
    (List.length r2.Fuzz.failures);
  let sc1 = Scenario.generate ~seed:424242 ~max_procs:6 () in
  let sc2 = Scenario.generate ~seed:424242 ~max_procs:6 () in
  Alcotest.(check bool) "generation is a pure function of the seed" true
    (Scenario.equal sc1 sc2)

(* --- clean campaign ---------------------------------------------------- *)

let test_clean_campaign () =
  let report, log = campaign_log ~mutate_lgc:false ~seed:5 ~runs:25 in
  if not (Fuzz.passed report) then
    Alcotest.failf "clean campaign found violations:\n%s" log

(* --- self-check: seeded known violation -------------------------------- *)

let test_mutant_caught_and_shrunk () =
  let report, log = campaign_log ~mutate_lgc:true ~seed:7 ~runs:10 in
  (match report.Fuzz.failures with
  | [] ->
    Alcotest.failf "over-collecting mutant escaped every oracle:\n%s" log
  | _ -> ());
  (* at least one failure must shrink to a handful of events *)
  let best =
    List.fold_left
      (fun acc (f : Fuzz.failure) ->
        match f.shrunk with
        | Some m -> min acc (Scenario.op_count m)
        | None -> acc)
      max_int report.Fuzz.failures
  in
  if best > 5 then
    Alcotest.failf "smallest shrunk reproducer has %d ops (want <= 5)" best;
  (* and the shrunk reproducer must replay: same oracle, mutant on; clean
     run, mutant off *)
  let f =
    List.find
      (fun (f : Fuzz.failure) ->
        match f.shrunk with
        | Some m -> Scenario.op_count m = best
        | None -> false)
      report.Fuzz.failures
  in
  let min_sc = Option.get f.shrunk in
  let oracle = f.violation.Oracles.oracle in
  Alcotest.(check bool) "shrunk reproducer still fails the same oracle" true
    (Shrink.reproduces ~mutate_lgc:true ~scratch_dir:scratch ~oracle min_sc);
  let healthy = Harness.run ~scratch_dir:scratch min_sc in
  Alcotest.(check int) "healthy collector passes the reproducer" 0
    (List.length healthy.Harness.violations);
  (* the emitted OCaml reproducer is a Script program *)
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    m = 0 || go 0
  in
  let ml = Scenario.to_script_ml min_sc in
  List.iter
    (fun needle ->
      if not (contains ml needle) then
        Alcotest.failf "reproducer lacks %S:\n%s" needle ml)
    [ "Rdt_scenarios.Script.create"; "~with_lgc:true" ]

(* --- serialization ----------------------------------------------------- *)

let test_roundtrip () =
  List.iter
    (fun seed ->
      let sc = Scenario.generate ~seed ~max_procs:6 () in
      match Scenario.of_string (Scenario.to_string sc) with
      | Error e -> Alcotest.failf "seed %d: reparse failed: %s" seed e
      | Ok sc' ->
        if not (Scenario.equal sc sc') then
          Alcotest.failf "seed %d: corpus roundtrip changed the scenario" seed)
    [ 1; 2; 3; 17; 2026; 0x5eed ]

let test_normalize () =
  let base = Scenario.generate ~seed:1 ~max_procs:3 () in
  let sc =
    {
      base with
      Scenario.n = 2;
      ops =
        [
          Scenario.Deliver 9 (* never sent *);
          Scenario.Send { id = 1; src = 0; dst = 1 };
          Scenario.Send { id = 1; src = 1; dst = 0 } (* duplicate id *);
          Scenario.Checkpoint 7 (* out of range *);
          Scenario.Crash [ 5 ] (* out of range -> empty *);
          Scenario.Crash [ 0 ];
          Scenario.Deliver 1 (* crash-flushed *);
        ];
    }
  in
  let norm = Scenario.normalize sc in
  Alcotest.(check int) "only the send and the crash survive" 2
    (Scenario.op_count norm)

(* --- corpus regression replay ------------------------------------------ *)

let test_corpus_replay () =
  let dir = Filename.concat scratch "corpus" in
  Harness.rm_rf dir;
  Harness.mkdir_p dir;
  (* save the canonical 3-op mutant killer and replay it as a corpus *)
  let base = Scenario.generate ~seed:1 ~max_procs:2 () in
  let sc =
    {
      base with
      Scenario.seed = 0;
      n = 2;
      durable = false;
      store_fault = None;
      ops =
        [
          Scenario.Send { id = 0; src = 1; dst = 0 };
          Scenario.Deliver 0;
          Scenario.Checkpoint 0;
        ];
    }
  in
  Scenario.save sc (Filename.concat dir "known.scn");
  let report =
    Fuzz.campaign ~mutate_lgc:true ~shrink:false ~corpus:dir
      ~scratch_dir:scratch ~seed:1 ~runs:0 ~max_procs:4 ()
  in
  Alcotest.(check int) "corpus replayed" 1 report.Fuzz.corpus_replayed;
  Alcotest.(check int) "corpus scenario still fails under the mutant" 1
    report.Fuzz.corpus_failed;
  let clean =
    Fuzz.campaign ~shrink:false ~corpus:dir ~scratch_dir:scratch ~seed:1
      ~runs:0 ~max_procs:4 ()
  in
  Alcotest.(check int) "corpus scenario passes on the healthy collector" 0
    clean.Fuzz.corpus_failed;
  Harness.rm_rf dir

(* --- durable scenarios ------------------------------------------------- *)

let test_durable_epilogue () =
  (* force a durable scenario and check the close/reopen epilogue runs
     clean *)
  let base = Scenario.generate ~seed:3 ~max_procs:4 () in
  let sc = { base with Scenario.durable = true; store_fault = None } in
  let r = Harness.run ~scratch_dir:scratch sc in
  (match r.Harness.violations with
  | [] -> ()
  | v :: _ ->
    Alcotest.failf "durable run violated: %s" (Fmt.str "%a" Oracles.pp_violation v));
  Alcotest.(check bool) "completed" true (r.Harness.stop = Harness.Completed)

let suite =
  [
    Alcotest.test_case "campaigns are byte-reproducible" `Quick
      test_deterministic;
    Alcotest.test_case "clean campaign finds no violations" `Quick
      test_clean_campaign;
    Alcotest.test_case "over-collecting mutant is caught and shrunk" `Quick
      test_mutant_caught_and_shrunk;
    Alcotest.test_case "corpus format roundtrips" `Quick test_roundtrip;
    Alcotest.test_case "normalization repairs ill-formed op lists" `Quick
      test_normalize;
    Alcotest.test_case "corpus replay works as regression gate" `Quick
      test_corpus_replay;
    Alcotest.test_case "durable scenarios recover exactly on reopen" `Quick
      test_durable_epilogue;
  ]
