(* Behavioural equivalence of the literal Algorithm 4 (merged FDAS +
   RDT-LGC) with the composed stack (generic middleware + protocol +
   collector), on hand-written and random operation sequences. *)

module Merged = Rdt_gc.Merged_fdas
module Script = Rdt_scenarios.Script
module Protocol = Rdt_protocols.Protocol
module Middleware = Rdt_protocols.Middleware
module Stable_store = Rdt_storage.Stable_store
module Prng = Rdt_sim.Prng

type lockstep = {
  script : Script.t;  (* composed implementation *)
  merged : Merged.t array;  (* Algorithm 4 *)
  n : int;
}

let make n =
  {
    script = Script.create ~n ~protocol:Protocol.fdas ~with_lgc:true ();
    merged = Array.init n (fun me -> Merged.create ~n ~me);
    n;
  }

let compare_states ?(at = "") l =
  for pid = 0 to l.n - 1 do
    let ctx fmt = Printf.sprintf "%s p%d %s" at pid fmt in
    Alcotest.(check (array int))
      (ctx "dv") (Merged.dv l.merged.(pid)) (Script.dv l.script pid);
    Alcotest.(check (array (option int)))
      (ctx "uc")
      (Merged.uc_view l.merged.(pid))
      (Script.uc l.script pid);
    Alcotest.(check (list int))
      (ctx "retained")
      (Stable_store.retained_indices (Merged.store l.merged.(pid)))
      (Script.retained l.script pid);
    Alcotest.(check int)
      (ctx "forced count")
      (Merged.forced_count l.merged.(pid))
      (Script.forced_taken l.script pid)
  done

let checkpoint l pid =
  Script.checkpoint l.script pid;
  Merged.basic_checkpoint l.merged.(pid) ~now:0.0

(* send on both sides; returns the pair of in-flight messages *)
let send l ~src ~dst =
  let m_script = Script.send l.script ~src ~dst in
  let m_merged = Merged.before_send l.merged.(src) in
  (m_script, m_merged, dst)

let deliver l (m_script, m_merged, dst) =
  Script.deliver l.script m_script;
  Merged.receive l.merged.(dst) m_merged ~now:0.0

let transfer l ~src ~dst = deliver l (send l ~src ~dst)

let test_initial_state () =
  let l = make 3 in
  compare_states ~at:"init" l

let test_simple_sequence () =
  let l = make 3 in
  checkpoint l 0;
  compare_states ~at:"after ckpt" l;
  transfer l ~src:0 ~dst:1;
  compare_states ~at:"after transfer" l;
  checkpoint l 1;
  transfer l ~src:1 ~dst:2;
  compare_states ~at:"after relay" l

let test_forced_checkpoint_path () =
  let l = make 2 in
  (* p0 sends (freezing its DV), then receives fresh info: FDAS forces *)
  let out = send l ~src:0 ~dst:1 in
  checkpoint l 1;
  transfer l ~src:1 ~dst:0;
  compare_states ~at:"after forced" l;
  Alcotest.(check int) "exactly one forced" 1 (Merged.forced_count l.merged.(0));
  deliver l out;
  compare_states ~at:"after late delivery" l

let test_figure4_on_merged () =
  (* the merged implementation reproduces the Figure 4 final state too *)
  let l = make 3 in
  transfer l ~src:0 ~dst:1;
  transfer l ~src:1 ~dst:2;
  checkpoint l 1;
  checkpoint l 2;
  transfer l ~src:2 ~dst:1;
  checkpoint l 1;
  checkpoint l 1;
  checkpoint l 2;
  checkpoint l 2;
  transfer l ~src:1 ~dst:2;
  compare_states ~at:"figure4" l;
  Alcotest.(check (array int)) "p1 dv" [| 1; 4; 2 |] (Merged.dv l.merged.(1));
  Alcotest.(check (array (option int)))
    "p1 uc"
    [| Some 0; Some 3; Some 1 |]
    (Merged.uc_view l.merged.(1))

let prop_random_equivalence =
  QCheck.Test.make ~name:"Algorithm 4 = composed stack on random sequences"
    ~count:80
    QCheck.(make ~print:string_of_int Gen.(int_bound 100_000))
    (fun seed ->
      let rng = Prng.create ~seed in
      let n = 2 + Prng.int rng 4 in
      let l = make n in
      let pending = ref [] in
      for _ = 1 to 120 do
        match Prng.int rng 4 with
        | 0 -> checkpoint l (Prng.int rng n)
        | 1 | 2 ->
          let src = Prng.int rng n in
          let dst = (src + 1 + Prng.int rng (n - 1)) mod n in
          pending := send l ~src ~dst :: !pending
        | _ -> begin
          match !pending with
          | [] -> ()
          | _ ->
            let arr = Array.of_list !pending in
            let pick = Prng.int rng (Array.length arr) in
            let chosen = arr.(pick) in
            pending :=
              List.filteri (fun i _ -> i <> pick) !pending;
            deliver l chosen
        end
      done;
      compare_states ~at:"random" l;
      true)

let suite =
  [
    Alcotest.test_case "initial state" `Quick test_initial_state;
    Alcotest.test_case "simple sequence" `Quick test_simple_sequence;
    Alcotest.test_case "forced checkpoint path" `Quick
      test_forced_checkpoint_path;
    Alcotest.test_case "figure 4 on the merged implementation" `Quick
      test_figure4_on_merged;
    QCheck_alcotest.to_alcotest prop_random_equivalence;
  ]
