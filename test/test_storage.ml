module S = Rdt_storage.Stable_store

let store_simple t index =
  S.store t ~index ~dv:[| index; 0 |] ~now:(float_of_int index) ~size_bytes:10
    ~payload:(100 + index) ()

let test_store_and_find () =
  let t = S.create ~me:0 in
  store_simple t 0;
  store_simple t 1;
  Alcotest.(check bool) "mem 0" true (S.mem t ~index:0);
  Alcotest.(check bool) "mem 2" false (S.mem t ~index:2);
  match S.find t ~index:1 with
  | None -> Alcotest.fail "missing"
  | Some e ->
    Alcotest.(check int) "index" 1 e.S.index;
    Alcotest.(check (array int)) "dv copied" [| 1; 0 |] e.S.dv;
    Alcotest.(check int) "payload kept" 101 e.S.payload

let test_store_out_of_order_rejected () =
  let t = S.create ~me:0 in
  store_simple t 0;
  store_simple t 1;
  Alcotest.(check bool) "duplicate rejected" true
    (try
       store_simple t 1;
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "regression rejected" true
    (try
       store_simple t 0;
       false
     with Invalid_argument _ -> true)

let test_dv_isolation () =
  let t = S.create ~me:0 in
  let dv = [| 5; 5 |] in
  S.store t ~index:0 ~dv ~now:0.0 ~size_bytes:1 ();
  dv.(0) <- 99;
  match S.find t ~index:0 with
  | Some e -> Alcotest.(check int) "stored copy unaffected" 5 e.S.dv.(0)
  | None -> Alcotest.fail "missing"

let test_eliminate () =
  let t = S.create ~me:0 in
  store_simple t 0;
  store_simple t 1;
  S.eliminate t ~index:0;
  Alcotest.(check (list int)) "only 1 left" [ 1 ] (S.retained_indices t);
  Alcotest.(check bool) "eliminate missing rejected" true
    (try
       S.eliminate t ~index:0;
       false
     with Invalid_argument _ -> true)

let test_truncate_above () =
  let t = S.create ~me:0 in
  List.iter (store_simple t) [ 0; 1; 2; 3; 4 ];
  let removed = S.truncate_above t ~index:2 in
  Alcotest.(check int) "two removed" 2 removed;
  Alcotest.(check (list int)) "kept prefix" [ 0; 1; 2 ] (S.retained_indices t);
  Alcotest.(check int) "idempotent" 0 (S.truncate_above t ~index:2)

let test_byte_accounting () =
  let t = S.create ~me:0 in
  S.store t ~index:0 ~dv:[| 0 |] ~now:0.0 ~size_bytes:100 ();
  S.store t ~index:1 ~dv:[| 1 |] ~now:1.0 ~size_bytes:50 ();
  Alcotest.(check int) "bytes" 150 (S.bytes t);
  S.eliminate t ~index:0;
  Alcotest.(check int) "bytes after eliminate" 50 (S.bytes t)

let test_stats () =
  let t = S.create ~me:0 in
  List.iter (store_simple t) [ 0; 1; 2 ];
  S.eliminate t ~index:1;
  store_simple t 3;
  let stats = S.stats t in
  Alcotest.(check int) "stored total" 4 stats.S.stored_total;
  Alcotest.(check int) "eliminated total" 1 stats.S.eliminated_total;
  Alcotest.(check int) "peak count" 3 stats.S.peak_count;
  Alcotest.(check int) "current count" 3 (S.count t)

let test_last_index () =
  let t = S.create ~me:0 in
  Alcotest.(check int) "empty" (-1) (S.last_index t);
  store_simple t 0;
  store_simple t 1;
  Alcotest.(check int) "last" 1 (S.last_index t);
  S.eliminate t ~index:1;
  Alcotest.(check int) "after eliminating the top" 0 (S.last_index t)

let test_retained_order () =
  let t = S.create ~me:0 in
  List.iter (store_simple t) [ 0; 1; 2; 3 ];
  S.eliminate t ~index:1;
  Alcotest.(check (list int)) "ascending" [ 0; 2; 3 ]
    (List.map (fun e -> e.S.index) (S.retained t))

(* --- durability under seeded fault schedules --------------------------- *)

(* Property: a 3-process FDAS + RDT-LGC execution runs with p0's stable
   store mirrored into a log-structured on-disk store armed with a seeded
   fault plan (Fault.of_seed).  After the injected crash, reopening the
   directory must recover exactly a durable prefix of p0's checkpoint
   history — and, for the crash kinds (short write / unsynced loss) under
   fsync-per-record, exactly the acknowledged prefix, from which
   Recovery_line still finds a consistent global checkpoint. *)

module Log_store = Rdt_store.Log_store
module Fault = Rdt_store.Fault
module Middleware = Rdt_protocols.Middleware
module Rdt_lgc = Rdt_gc.Rdt_lgc
module Global_gc = Rdt_gc.Global_gc
module Recovery_line = Rdt_recovery.Recovery_line
module Prng = Rdt_sim.Prng

let entry_eq (a : S.entry) (b : S.entry) =
  a.S.index = b.S.index && a.S.dv = b.S.dv
  && a.S.taken_at = b.S.taken_at
  && a.S.size_bytes = b.S.size_bytes
  && a.S.payload = b.S.payload

let entries_eq a b = List.length a = List.length b && List.for_all2 entry_eq a b

let rm_rf dir =
  let rec go path =
    if Sys.is_directory path then begin
      Array.iter (fun f -> go (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  if Sys.file_exists dir then go dir

type crash_run = {
  cr_dir : string;
  cr_kind : Fault.kind;
  cr_history : S.entry list list;
      (** retained sets after each acknowledged p0 store op, newest first *)
  cr_appended : S.entry list;  (** every entry ever handed to the backend *)
  cr_mws : Middleware.t array option;  (** None: crash during bootstrap *)
}

(* Run until p0's armed storage fault fires; returns what a recovery must
   be measured against. *)
let run_until_crash ~seed ~fsync =
  let n = 3 in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "rdt_storage_prop_%d_%d" (Unix.getpid ()) seed)
  in
  rm_rf dir;
  let config = { Log_store.default_config with Log_store.fsync } in
  let faults = Fault.of_seed ~seed ~max_op:30 in
  let ls = Log_store.create ~config ~faults ~pid:0 ~dir () in
  let history = ref [ [] ] in
  let appended = ref [] in
  let crashed = ref None in
  let mws = ref None in
  (try
     let trace = Rdt_ccp.Trace.create ~n in
     let arr =
       Array.init n (fun me ->
           let store = S.create ~me in
           if me = 0 then begin
             let b = Log_store.backend ls in
             S.set_backend store
               {
                 S.b_store =
                   (fun e ->
                     appended := e :: !appended;
                     b.S.b_store e;
                     history := S.retained store :: !history);
                 b_eliminate =
                   (fun e ->
                     b.S.b_eliminate e;
                     history := S.retained store :: !history);
                 b_truncate_above =
                   (fun ~index ->
                     b.S.b_truncate_above ~index;
                     history := S.retained store :: !history);
               }
           end;
           Middleware.create ~n ~me ~protocol:Rdt_protocols.Protocol.fdas
             ~trace ~ckpt_bytes:16 ~store ())
     in
     Array.iteri
       (fun me mw ->
         let lgc =
           Rdt_lgc.create ~me ~store:(Middleware.store mw)
             ~dv:(Middleware.dv mw) ~n
         in
         Rdt_lgc.attach lgc mw)
       arr;
     mws := Some arr;
     let prng = Prng.create ~seed:(seed + 7919) in
     let step = ref 0 in
     while !crashed = None && !step < 5000 do
       incr step;
       let now = float_of_int !step in
       let src = Prng.int prng n in
       if Prng.int prng 4 = 0 then Middleware.basic_checkpoint arr.(src) ~now
       else begin
         let dst = (src + 1 + Prng.int prng (n - 1)) mod n in
         let msg = Middleware.prepare_send arr.(src) ~dst ~now in
         Middleware.receive arr.(dst) msg ~now:(now +. 0.5)
       end
     done
   with Fault.Injected_crash { op = _; kind } -> crashed := Some kind);
  match !crashed with
  | None ->
    rm_rf dir;
    QCheck.Test.fail_reportf "seed %d: fault plan never fired" seed
  | Some kind ->
    {
      cr_dir = dir;
      cr_kind = kind;
      cr_history = !history;
      cr_appended = !appended;
      cr_mws = !mws;
    }

(* Equation 2: the chosen line is consistent iff no component depends on
   another component's future — for all a <> b, DV(c_b).(a) <= line.(a). *)
let check_line_consistent snaps line =
  let n = Array.length snaps in
  let dv_of i =
    let entries = snaps.(i).Global_gc.entries in
    let last = entries.(Array.length entries - 1).S.index in
    if line.(i) > last then snaps.(i).Global_gc.live_dv
    else
      (Array.to_list entries
      |> List.find (fun (e : S.entry) -> e.S.index = line.(i)))
        .S.dv
  in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      if a <> b && (dv_of b).(a) > line.(a) then
        QCheck.Test.fail_reportf
          "inconsistent recovery line: DV(c_%d).(%d) = %d > line.(%d) = %d" b
          a
          (dv_of b).(a)
          a line.(a)
    done
  done

let recover_p0 run =
  let t = Log_store.create ~pid:0 ~dir:run.cr_dir () in
  let r = Log_store.recovery t in
  Log_store.close t;
  r.Log_store.recovered

let prop_crash_recovers_acknowledged_prefix =
  QCheck.Test.make ~count:40 ~name:"crash recovers the acknowledged prefix"
    QCheck.(make Gen.(int_bound 10_000))
    (fun seed ->
      (* fsync-per-record makes the durable prefix sharp: everything but
         the op that crashed *)
      let run = run_until_crash ~seed ~fsync:Log_store.Always in
      let recovered = recover_p0 run in
      (match run.cr_kind with
      | Fault.Bit_flip ->
        (* the flip may knock out any one already-written record; every
           survivor must still be a record that was really appended *)
        List.iter
          (fun (e : S.entry) ->
            if not (List.exists (fun a -> entry_eq a e) run.cr_appended) then
              QCheck.Test.fail_reportf "seed %d: foreign entry %d recovered"
                seed e.S.index)
          recovered
      | Fault.Short_write | Fault.Crash_before_sync ->
        if not (entries_eq recovered (List.hd run.cr_history)) then
          QCheck.Test.fail_reportf
            "seed %d (%s): recovered %d entries, expected the %d-entry \
             acknowledged prefix"
            seed
            (Fault.kind_name run.cr_kind)
            (List.length recovered)
            (List.length (List.hd run.cr_history));
        (* ... and the recovered store still supports a consistent
           recovery line for the crash of p0 *)
        (match (run.cr_mws, recovered) with
        | Some mws, _ :: _ ->
          let last = List.nth recovered (List.length recovered - 1) in
          let live_dv = Array.copy last.S.dv in
          live_dv.(0) <- live_dv.(0) + 1;
          let snaps =
            Array.init 3 (fun i ->
                if i = 0 then
                  { Global_gc.entries = Array.of_list recovered; live_dv }
                else
                  {
                    Global_gc.entries =
                      Array.of_list (S.retained (Middleware.store mws.(i)));
                    live_dv =
                      Rdt_causality.Dependency_vector.to_array
                        (Middleware.dv mws.(i));
                  })
          in
          let line = Recovery_line.from_snapshots snaps ~faulty:[ 0 ] in
          check_line_consistent snaps line
        | _ -> ()));
      rm_rf run.cr_dir;
      true)

let prop_crash_recovers_some_prefix =
  QCheck.Test.make ~count:40
    ~name:"crash recovers a durable prefix under lazy fsync"
    QCheck.(make Gen.(int_bound 10_000))
    (fun seed ->
      (* with batched writes and periodic fsync the durable prefix can be
         any sync point — but it must be *some* point of p0's history,
         never a mix of old and new records *)
      let run = run_until_crash ~seed ~fsync:(Log_store.Every 3) in
      let recovered = recover_p0 run in
      (match run.cr_kind with
      | Fault.Bit_flip ->
        List.iter
          (fun (e : S.entry) ->
            if not (List.exists (fun a -> entry_eq a e) run.cr_appended) then
              QCheck.Test.fail_reportf "seed %d: foreign entry %d recovered"
                seed e.S.index)
          recovered
      | Fault.Short_write | Fault.Crash_before_sync ->
        if not (List.exists (entries_eq recovered) run.cr_history) then
          QCheck.Test.fail_reportf
            "seed %d (%s): recovered set matches no point of the history"
            seed
            (Fault.kind_name run.cr_kind));
      rm_rf run.cr_dir;
      true)

let suite =
  [
    Alcotest.test_case "store and find" `Quick test_store_and_find;
    Alcotest.test_case "out-of-order rejected" `Quick
      test_store_out_of_order_rejected;
    Alcotest.test_case "dv isolation" `Quick test_dv_isolation;
    Alcotest.test_case "eliminate" `Quick test_eliminate;
    Alcotest.test_case "truncate above" `Quick test_truncate_above;
    Alcotest.test_case "byte accounting" `Quick test_byte_accounting;
    Alcotest.test_case "stats" `Quick test_stats;
    Alcotest.test_case "last index" `Quick test_last_index;
    Alcotest.test_case "retained order" `Quick test_retained_order;
    QCheck_alcotest.to_alcotest prop_crash_recovers_acknowledged_prefix;
    QCheck_alcotest.to_alcotest prop_crash_recovers_some_prefix;
  ]
