module Workload = Rdt_workload.Workload
module Prng = Rdt_sim.Prng

let make ?(n = 5) pattern =
  Workload.create
    { Workload.default with pattern; reply_probability = 1.0 }
    ~n
    ~rng:(Prng.create ~seed:7)
    ()

let in_range ~n dsts = List.for_all (fun d -> d >= 0 && d < n) dsts

let test_uniform () =
  let w = make Workload.Uniform in
  for _ = 1 to 100 do
    match Workload.destinations w ~me:2 with
    | [ d ] ->
      if d = 2 || d < 0 || d >= 5 then Alcotest.failf "bad destination %d" d
    | l -> Alcotest.failf "expected one destination, got %d" (List.length l)
  done

let test_ring () =
  let w = make Workload.Ring in
  Alcotest.(check (list int)) "successor" [ 3 ] (Workload.destinations w ~me:2);
  Alcotest.(check (list int)) "wraps" [ 0 ] (Workload.destinations w ~me:4)

let test_pipeline () =
  let w = make Workload.Pipeline in
  Alcotest.(check (list int)) "forward" [ 3 ] (Workload.destinations w ~me:2);
  Alcotest.(check (list int)) "sink is silent" [] (Workload.destinations w ~me:4)

let test_broadcast () =
  let w = make Workload.Broadcast in
  Alcotest.(check (list int)) "everyone else" [ 0; 1; 3; 4 ]
    (Workload.destinations w ~me:2)

let test_client_server () =
  let w = make (Workload.Client_server { servers = 2 }) in
  for _ = 1 to 50 do
    (match Workload.destinations w ~me:3 with
    | [ d ] when d < 2 -> ()
    | l -> Alcotest.failf "client must call a server, got %d dests" (List.length l));
    match Workload.destinations w ~me:0 with
    | [ 1 ] | [] -> ()
    | l -> Alcotest.failf "server gossip wrong: %d dests" (List.length l)
  done

let test_replies () =
  let w = make Workload.Uniform in
  Alcotest.(check (list int)) "uniform replies to sender" [ 3 ]
    (Workload.reply_destinations w ~me:1 ~src:3);
  let w = make (Workload.Client_server { servers = 2 }) in
  Alcotest.(check (list int)) "server answers client" [ 4 ]
    (Workload.reply_destinations w ~me:0 ~src:4);
  (match Workload.reply_destinations w ~me:3 ~src:1 with
  | [ d ] when d < 2 -> ()
  | _ -> Alcotest.fail "client follow-up must hit a server");
  Alcotest.(check (list int)) "no self replies" []
    (Workload.reply_destinations w ~me:2 ~src:2)

let test_reply_probability_zero () =
  let w =
    Workload.create
      { Workload.default with reply_probability = 0.0 }
      ~n:4
      ~rng:(Prng.create ~seed:3)
      ()
  in
  for _ = 1 to 50 do
    Alcotest.(check (list int)) "never replies" []
      (Workload.reply_destinations w ~me:1 ~src:0)
  done

let test_delays_positive () =
  let w = make Workload.Uniform in
  for _ = 1 to 100 do
    if Workload.next_send_delay w ~me:0 <= 0.0 then Alcotest.fail "send delay";
    if Workload.next_basic_ckpt_delay w ~me:0 <= 0.0 then
      Alcotest.fail "ckpt delay"
  done

let test_destinations_in_range_all_patterns () =
  List.iter
    (fun pattern ->
      let w = make pattern in
      for me = 0 to 4 do
        Alcotest.(check bool)
          (Workload.pattern_name pattern)
          true
          (in_range ~n:5 (Workload.destinations w ~me))
      done)
    [
      Workload.Uniform;
      Workload.Ring;
      Workload.Pipeline;
      Workload.Broadcast;
      Workload.Client_server { servers = 2 };
      Workload.Bursty { burst = 3 };
    ]

let test_bursty () =
  let w = make (Workload.Bursty { burst = 4 }) in
  for me = 0 to 4 do
    let dsts = Workload.destinations w ~me in
    Alcotest.(check int) "burst size" 4 (List.length dsts);
    Alcotest.(check bool) "no self" true (List.for_all (fun d -> d <> me) dsts)
  done;
  Alcotest.(check (list int)) "replies to sender" [ 2 ]
    (Workload.reply_destinations w ~me:0 ~src:2)

let test_pattern_parsing () =
  Alcotest.(check bool) "uniform" true
    (Workload.pattern_of_string "uniform" = Some Workload.Uniform);
  Alcotest.(check bool) "client-server" true
    (Workload.pattern_of_string "client-server:3"
    = Some (Workload.Client_server { servers = 3 }));
  Alcotest.(check bool) "bad count" true
    (Workload.pattern_of_string "client-server:0" = None);
  Alcotest.(check bool) "bursty" true
    (Workload.pattern_of_string "bursty:3" = Some (Workload.Bursty { burst = 3 }));
  Alcotest.(check bool) "bad burst" true
    (Workload.pattern_of_string "bursty:0" = None);
  Alcotest.(check bool) "unknown" true (Workload.pattern_of_string "mesh" = None);
  (* round-trip *)
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Workload.pattern_name p)
        true
        (Workload.pattern_of_string (Workload.pattern_name p) = Some p))
    [ Workload.Uniform; Workload.Ring; Workload.Client_server { servers = 2 } ]

let test_create_validation () =
  let bad f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "n < 2" true
    (bad (fun () ->
         ignore
           (Workload.create Workload.default ~n:1 ~rng:(Prng.create ~seed:1) ())));
  Alcotest.(check bool) "servers >= n" true
    (bad (fun () ->
         ignore
           (Workload.create
              {
                Workload.default with
                pattern = Workload.Client_server { servers = 4 };
              }
              ~n:3 ~rng:(Prng.create ~seed:1) ())))

let suite =
  [
    Alcotest.test_case "uniform" `Quick test_uniform;
    Alcotest.test_case "ring" `Quick test_ring;
    Alcotest.test_case "pipeline" `Quick test_pipeline;
    Alcotest.test_case "broadcast" `Quick test_broadcast;
    Alcotest.test_case "client-server" `Quick test_client_server;
    Alcotest.test_case "bursty" `Quick test_bursty;
    Alcotest.test_case "replies" `Quick test_replies;
    Alcotest.test_case "reply probability zero" `Quick
      test_reply_probability_zero;
    Alcotest.test_case "delays positive" `Quick test_delays_positive;
    Alcotest.test_case "destinations in range" `Quick
      test_destinations_in_range_all_patterns;
    Alcotest.test_case "pattern parsing" `Quick test_pattern_parsing;
    Alcotest.test_case "create validation" `Quick test_create_validation;
  ]
