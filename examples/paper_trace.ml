(* Step-by-step replay of the paper's Figure 4 — the reference execution
   of RDT-LGC — printing the dependency vector (DV) and uncollected-
   checkpoints table (UC) of every process after each event, exactly the
   way the figure annotates them.

   Paper processes p1, p2, p3 are pids 0, 1, 2.

   Run with:  dune exec examples/paper_trace.exe *)

module Script = Rdt_scenarios.Script
module Protocol = Rdt_protocols.Protocol

let fmt_dv dv =
  "(" ^ String.concat "," (Array.to_list (Array.map string_of_int dv)) ^ ")"

let fmt_uc uc =
  "("
  ^ String.concat ","
      (Array.to_list
         (Array.map (function None -> "*" | Some i -> string_of_int i) uc))
  ^ ")"

let show s step =
  Format.printf "%-42s" step;
  for pid = 0 to 2 do
    Format.printf "  p%d %s/%s" pid (fmt_dv (Script.dv s pid))
      (fmt_uc (Script.uc s pid))
  done;
  Format.printf "@.";
  (* retained sets after the step *)
  ignore s

let () =
  Format.printf
    "Figure 4 replay: states shown as DV/UC per process ('*' = Null).@.@.";
  let s = Script.create ~n:3 ~protocol:Protocol.fdas ~with_lgc:true () in
  show s "initial checkpoints s0 stored";
  Script.transfer s ~src:0 ~dst:1;
  show s "m: p0 -> p1 (p1 pins its s0 for p0)";
  Script.transfer s ~src:1 ~dst:2;
  show s "m: p1 -> p2 (p2 pins its s0 for p0,p1)";
  Script.checkpoint s 1;
  show s "p1 takes s1";
  Script.checkpoint s 2;
  show s "p2 takes s1";
  Script.transfer s ~src:2 ~dst:1;
  show s "m: p2 -> p1 (p1 pins its s1 for p2)";
  Script.checkpoint s 1;
  show s "p1 takes s2";
  Script.checkpoint s 1;
  show s "p1 takes s3: its s2 is collected";
  Script.checkpoint s 2;
  show s "p2 takes s2: its s1 is collected";
  Script.checkpoint s 2;
  show s "p2 takes s3: its s2 is collected";
  Script.transfer s ~src:1 ~dst:2;
  show s "m: p1 -> p2 (p2 pins its s3 for p1)";
  Format.printf "@.final retained checkpoints:@.";
  for pid = 0 to 2 do
    Format.printf "  p%d: {%s}@." pid
      (String.concat ","
         (List.map string_of_int (Script.retained s pid)))
  done;
  let ccp = Script.ccp s in
  Format.printf
    "@.p1 still holds its s1 although it is obsolete (oracle: %b) —@.\
     p1 cannot know that p2 checkpointed past the s1 it heard about;@.\
     Theorem 5 proves no asynchronous collector can do better.@."
    (Rdt_gc.Oracle.is_obsolete ccp { Rdt_ccp.Ccp.pid = 1; index = 1 })
