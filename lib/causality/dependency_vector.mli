(** Transitive dependency vectors (Strom & Yemini), as used by RDT
    checkpointing protocols and by RDT-LGC (paper, Section 4.2).

    Conventions (matching the paper):
    - entry [i] of process [p_i]'s vector is the index of its *current
      checkpoint interval*; it is incremented immediately after a new
      checkpoint is taken.  Interval [I^gamma] is the span between
      checkpoints [c^(gamma-1)] and [c^gamma], so after storing the initial
      checkpoint [s^0] the current interval is 1.
    - entry [j <> i] is the highest interval index of [p_j] on which [p_i]
      (causally) depends, updated on message receipt.

    Equation 2 of the paper: [c^alpha_a -> c^beta_b  <=>  alpha < DV(c^beta_b)[a]]
    — valid when the execution is RD-trackable.
    Equation 3: [last_k_i(j) = DV(v_i)[j] - 1] (index of the last stable
    checkpoint of [p_j] known to [p_i]; [-1] when none). *)

type t

val create : n:int -> t
(** All-zero vector (the paper's initial value). *)

val copy : t -> t
val size : t -> int
val get : t -> int -> int
val set : t -> int -> int -> unit

val increment : t -> int -> unit
(** [increment dv i]: the step performed immediately after process [i]
    takes a checkpoint. *)

val merge_from_message : t -> int array -> int list
(** [merge_from_message dv m_dv] applies the receive rule
    [dv.(j) <- max dv.(j) m_dv.(j)] and returns the (sorted) list of entries
    that strictly increased — exactly the "new causal info" entries RDT-LGC
    reacts to (Algorithm 2, receiving [m], line 2).  The incoming vector is
    a plain array because that is how it travels inside messages. *)

val merge_from_message_iter : t -> int array -> f:(int -> unit) -> unit
(** Allocation-free {!merge_from_message}: calls [f j] (ascending [j]) for
    every entry that strictly increased instead of building a list.  The
    receive path runs this once per delivered message, so the middleware
    uses this variant to feed RDT-LGC's [on_new_dependency] hook directly. *)

val newer_entries : local:int array -> incoming:int array -> int list
(** Entries [j] with [incoming.(j) > local.(j)], without mutating;
    the test protocols such as FDAS use to detect new dependencies. *)

val newer_entries_iter :
  local:int array -> incoming:int array -> f:(int -> unit) -> unit
(** Allocation-free {!newer_entries}: [f] is called on each newer entry in
    ascending order. *)

val has_newer_entries : local:int array -> incoming:int array -> bool
(** [newer_entries ~local ~incoming <> []] without building the list and
    with early exit — the per-receive test of FDAS/FDI/CBR. *)

val last_known : t -> int -> int
(** Equation 3: [last_known dv j = dv.(j) - 1]. *)

val checkpoint_precedes : index:int -> of_:int -> t -> bool
(** [checkpoint_precedes ~index:alpha ~of_:a dv_beta] implements
    Equation 2: does [c^alpha_a] causally precede the checkpoint whose
    stored vector is [dv_beta]?  Only meaningful on RD-trackable
    executions. *)

val equal : t -> t -> bool
val to_array : t -> int array
val of_array : int array -> t
val pp : Format.formatter -> t -> unit
