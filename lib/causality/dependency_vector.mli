(** Transitive dependency vectors (Strom & Yemini), as used by RDT
    checkpointing protocols and by RDT-LGC (paper, Section 4.2).

    Conventions (matching the paper):
    - entry [i] of process [p_i]'s vector is the index of its *current
      checkpoint interval*; it is incremented immediately after a new
      checkpoint is taken.  Interval [I^gamma] is the span between
      checkpoints [c^(gamma-1)] and [c^gamma], so after storing the initial
      checkpoint [s^0] the current interval is 1.
    - entry [j <> i] is the highest interval index of [p_j] on which [p_i]
      (causally) depends, updated on message receipt.

    Equation 2 of the paper: [c^alpha_a -> c^beta_b  <=>  alpha < DV(c^beta_b)[a]]
    — valid when the execution is RD-trackable.
    Equation 3: [last_k_i(j) = DV(v_i)[j] - 1] (index of the last stable
    checkpoint of [p_j] known to [p_i]; [-1] when none). *)

type t

val create : n:int -> t
(** All-zero vector (the paper's initial value). *)

val copy : t -> t
val size : t -> int
val get : t -> int -> int
val set : t -> int -> int -> unit

val increment : t -> int -> unit
(** [increment dv i]: the step performed immediately after process [i]
    takes a checkpoint. *)

(** {2 In-place, allocation-free operations}

    The middleware's steady state must not allocate (DESIGN.md §10): these
    variants mutate a caller-owned destination instead of returning fresh
    arrays.  Each performs one arity check at the entry point and then runs
    an unchecked inner loop. *)

val blit_into : src:t -> dst:t -> unit
(** [blit_into ~src ~dst] overwrites [dst] with [src] (in-place
    {!copy}).  @raise Invalid_argument on size mismatch. *)

val max_into : src:t -> dst:t -> unit
(** [max_into ~src ~dst]: pointwise [dst.(j) <- max dst.(j) src.(j)] — the
    Equation-2 merge without the change notifications of
    {!merge_from_message_iter}. *)

val compare_le : t -> t -> bool
(** [compare_le a b]: componentwise [a.(j) <= b.(j)] with early exit. *)

val iteri : t -> f:(int -> int -> unit) -> unit
(** [iteri t ~f] calls [f j t.(j)] for each entry in ascending order
    without allocating. *)

val merge_from_message : t -> int array -> int list
(** [merge_from_message dv m_dv] applies the receive rule
    [dv.(j) <- max dv.(j) m_dv.(j)] and returns the (sorted) list of entries
    that strictly increased — exactly the "new causal info" entries RDT-LGC
    reacts to (Algorithm 2, receiving [m], line 2).  The incoming vector is
    a plain array because that is how it travels inside messages. *)

val merge_from_message_iter : t -> int array -> f:(int -> unit) -> unit
(** Allocation-free {!merge_from_message}: calls [f j] (ascending [j]) for
    every entry that strictly increased instead of building a list.  The
    receive path runs this once per delivered message, so the middleware
    uses this variant to feed RDT-LGC's [on_new_dependency] hook directly. *)

val newer_entries : local:int array -> incoming:int array -> int list
(** Entries [j] with [incoming.(j) > local.(j)], without mutating;
    the test protocols such as FDAS use to detect new dependencies. *)

val newer_entries_iter :
  local:int array -> incoming:int array -> f:(int -> unit) -> unit
(** Allocation-free {!newer_entries}: [f] is called on each newer entry in
    ascending order. *)

val has_newer_entries : local:int array -> incoming:int array -> bool
(** [newer_entries ~local ~incoming <> []] without building the list and
    with early exit — the per-receive test of FDAS/FDI/CBR. *)

val last_known : t -> int -> int
(** Equation 3: [last_known dv j = dv.(j) - 1]. *)

val checkpoint_precedes : index:int -> of_:int -> t -> bool
(** [checkpoint_precedes ~index:alpha ~of_:a dv_beta] implements
    Equation 2: does [c^alpha_a] causally precede the checkpoint whose
    stored vector is [dv_beta]?  Only meaningful on RD-trackable
    executions. *)

val equal : t -> t -> bool

val to_array : t -> int array
(** Fresh owned copy of the contents. *)

val of_array : int array -> t
(** Fresh vector copied from [a]; the caller keeps its array. *)

val view : t -> int array
(** Borrowed read-only view — no copy.  The returned array aliases the
    live vector: callers must not mutate it and must not retain it across
    a subsequent mutation of the vector (ownership rules in DESIGN.md
    §10).  Use {!to_array} when the result must survive. *)

val of_view : int array -> t
(** Wrap a caller-owned array as a vector without copying — the dual of
    {!view}, for running the in-place operations above against an array
    that arrived from a message or a stored checkpoint.  The same aliasing
    caveats apply. *)

val pp : Format.formatter -> t -> unit
