(* The named functions below are the middleware's per-message hot path;
   rdt_lint checks them against alloc/* (see DESIGN.md §12) so that
   BENCH_micro's allocs_per_run = 0 stays true by construction. *)
[@@@lint.zero_alloc_hot
  "blit_into" "max_into" "compare_le" "iteri" "merge_from_message_iter"
  "newer_entries_iter" "has_newer_entries" "equal" "last_known"
  "checkpoint_precedes" "get" "set" "increment"]

type t = int array

let create ~n =
  if n <= 0 then invalid_arg "Dependency_vector.create: n must be positive";
  Array.make n 0

let copy = Array.copy
let size = Array.length
let get t i = t.(i)
let set t i v = t.(i) <- v
let increment t i = t.(i) <- t.(i) + 1

(* The in-place operations below are the hot path of the middleware: one
   arity check at the entry point, then [Array.unsafe_get]/[unsafe_set] in
   the inner loop.  Every loop bound is the checked common length, so the
   unsafe accesses cannot go out of range. *)

let check_arity ~op a b =
  if Array.length a <> Array.length b then
    invalid_arg ("Dependency_vector." ^ op ^ ": size mismatch")

let blit_into ~src ~dst =
  check_arity ~op:"blit_into" src dst;
  Array.blit src 0 dst 0 (Array.length src)

let max_into ~src ~dst =
  check_arity ~op:"max_into" src dst;
  for j = 0 to Array.length src - 1 do
    let s = Array.unsafe_get src j in
    if s > Array.unsafe_get dst j then Array.unsafe_set dst j s
  done
[@@lint.bounds_checked]

(* The recursive scans are top-level (not local closures): a local
   [let rec loop] capturing the vectors costs a 5-word closure per call,
   which the alloc/closure rule rejects in this module. *)
let rec le_from a b j =
  j >= Array.length a
  || (Array.unsafe_get a j <= Array.unsafe_get b j && le_from a b (j + 1))
[@@lint.bounds_checked]

let compare_le a b =
  check_arity ~op:"compare_le" a b;
  le_from a b 0

let iteri t ~f =
  for j = 0 to Array.length t - 1 do
    f j (Array.unsafe_get t j)
  done
[@@lint.bounds_checked]

let merge_from_message_iter t m ~f =
  check_arity ~op:"merge_from_message" t m;
  for j = 0 to Array.length t - 1 do
    let mj = Array.unsafe_get m j in
    if mj > Array.unsafe_get t j then begin
      Array.unsafe_set t j mj;
      f j
    end
  done
[@@lint.bounds_checked]

let merge_from_message t m =
  let changed = ref [] in
  merge_from_message_iter t m ~f:(fun j -> changed := j :: !changed);
  List.rev !changed

let newer_entries_iter ~local ~incoming ~f =
  check_arity ~op:"newer_entries" local incoming;
  for j = 0 to Array.length local - 1 do
    if Array.unsafe_get incoming j > Array.unsafe_get local j then f j
  done
[@@lint.bounds_checked]

let newer_entries ~local ~incoming =
  let changed = ref [] in
  newer_entries_iter ~local ~incoming ~f:(fun j -> changed := j :: !changed);
  List.rev !changed

let rec newer_from ~local ~incoming j =
  j < Array.length local
  && (Array.unsafe_get incoming j > Array.unsafe_get local j
     || newer_from ~local ~incoming (j + 1))
[@@lint.bounds_checked]

let has_newer_entries ~local ~incoming =
  check_arity ~op:"newer_entries" local incoming;
  newer_from ~local ~incoming 0

let last_known t j = t.(j) - 1

let checkpoint_precedes ~index ~of_ dv_beta = index < dv_beta.(of_)

let rec eq_from a b j =
  j >= Array.length a
  || (Array.unsafe_get a j = Array.unsafe_get b j && eq_from a b (j + 1))
[@@lint.bounds_checked]

let equal a b = Array.length a = Array.length b && eq_from a b 0
let to_array = Array.copy
let of_array = Array.copy
let view t = t
let of_view a = a

let pp ppf t =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    (Array.to_list t)
