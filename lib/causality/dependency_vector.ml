type t = int array

let create ~n =
  if n <= 0 then invalid_arg "Dependency_vector.create: n must be positive";
  Array.make n 0

let copy = Array.copy
let size = Array.length
let get t i = t.(i)
let set t i v = t.(i) <- v
let increment t i = t.(i) <- t.(i) + 1

let merge_from_message_iter t m ~f =
  if Array.length t <> Array.length m then
    invalid_arg "Dependency_vector.merge_from_message: size mismatch";
  for j = 0 to Array.length t - 1 do
    if m.(j) > t.(j) then begin
      t.(j) <- m.(j);
      f j
    end
  done

let merge_from_message t m =
  let changed = ref [] in
  merge_from_message_iter t m ~f:(fun j -> changed := j :: !changed);
  List.rev !changed

let newer_entries_iter ~local ~incoming ~f =
  if Array.length local <> Array.length incoming then
    invalid_arg "Dependency_vector.newer_entries: size mismatch";
  for j = 0 to Array.length local - 1 do
    if incoming.(j) > local.(j) then f j
  done

let newer_entries ~local ~incoming =
  let changed = ref [] in
  newer_entries_iter ~local ~incoming ~f:(fun j -> changed := j :: !changed);
  List.rev !changed

let has_newer_entries ~local ~incoming =
  if Array.length local <> Array.length incoming then
    invalid_arg "Dependency_vector.newer_entries: size mismatch";
  let rec loop j =
    j < Array.length local && (incoming.(j) > local.(j) || loop (j + 1))
  in
  loop 0

let last_known t j = t.(j) - 1

let checkpoint_precedes ~index ~of_ dv_beta = index < dv_beta.(of_)

let equal a b = a = b
let to_array = Array.copy
let of_array = Array.copy

let pp ppf t =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    (Array.to_list t)
