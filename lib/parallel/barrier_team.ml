(* A persistent team of domains for repeated barrier-synchronized rounds.

   Domain_pool hands independent tasks to whichever worker is free; the
   sharded simulation engine needs the opposite shape: the *same* [size]
   workers re-invoked every time window, each on its own fixed shard
   index, with a full barrier between rounds.  Workers park on a
   condition variable between rounds, so a round costs two lock
   hand-offs per worker and no domain spawns.

   The caller's domain acts as member 0 of every round; [size - 1]
   domains are spawned at [create] and joined at [shutdown].  All
   cross-domain communication goes through [m]; the mutex acquire/release
   pairs around a round double as the happens-before edges that make the
   engine's plain (non-atomic) shard state safe to hand from one round's
   writer to the next round's reader. *)

type t = {
  size : int;
  m : Mutex.t;
  start : Condition.t;  (* workers wait here for the next round *)
  finished : Condition.t;  (* the caller waits here for the barrier *)
  mutable job : (int -> unit) option;
  mutable round : int;
  mutable remaining : int;
  mutable stop : bool;
  mutable failures : (int * exn) list;
  mutable domains : unit Domain.t list;
}

(* Which team member the current domain is: 0 for any domain that never
   joined a team (in particular the caller), the member index inside a
   round's job otherwise.  The engine uses this to find "its" shard from
   inside an event handler without threading the index through every
   callback. *)
let dls_index = Domain.DLS.new_key (fun () -> 0)
let self_index () = Domain.DLS.get dls_index

let worker t i () =
  Domain.DLS.set dls_index i;
  let rec loop last_round =
    Mutex.lock t.m;
    while (not t.stop) && t.round = last_round do
      Condition.wait t.start t.m
    done;
    if t.stop then Mutex.unlock t.m
    else begin
      let job = Option.get t.job in
      let round = t.round in
      Mutex.unlock t.m;
      (try job i
       with e ->
         Mutex.lock t.m;
         t.failures <- (i, e) :: t.failures;
         Mutex.unlock t.m);
      Mutex.lock t.m;
      t.remaining <- t.remaining - 1;
      if t.remaining = 0 then Condition.broadcast t.finished;
      Mutex.unlock t.m;
      loop round
    end
  in
  loop 0

let create ~size =
  if size < 1 then invalid_arg "Barrier_team.create: size must be >= 1";
  let t =
    {
      size;
      m = Mutex.create ();
      start = Condition.create ();
      finished = Condition.create ();
      job = None;
      round = 0;
      remaining = 0;
      stop = false;
      failures = [];
      domains = [];
    }
  in
  t.domains <- List.init (size - 1) (fun i -> Domain.spawn (worker t (i + 1)));
  t

let size t = t.size

let run t f =
  if t.size = 1 then f 0
  else begin
    Mutex.lock t.m;
    t.job <- Some f;
    t.remaining <- t.size - 1;
    t.failures <- [];
    t.round <- t.round + 1;
    Condition.broadcast t.start;
    Mutex.unlock t.m;
    let caller_failure = (try f 0; None with e -> Some e) in
    Mutex.lock t.m;
    while t.remaining > 0 do
      Condition.wait t.finished t.m
    done;
    t.job <- None;
    let failures = t.failures in
    Mutex.unlock t.m;
    (* every member reached the barrier; re-raise the lowest-index failure
       so error reporting does not depend on domain scheduling *)
    match caller_failure with
    | Some e -> raise e
    | None -> (
      match List.sort (fun (a, _) (b, _) -> Int.compare a b) failures with
      | (_, e) :: _ -> raise e
      | [] -> ())
  end

let shutdown t =
  Mutex.lock t.m;
  t.stop <- true;
  Condition.broadcast t.start;
  Mutex.unlock t.m;
  List.iter Domain.join t.domains;
  t.domains <- []
