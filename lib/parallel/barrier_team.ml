(* A persistent team of domains for repeated barrier-synchronized rounds.

   Domain_pool hands independent tasks to whichever worker is free; the
   sharded simulation engine needs the opposite shape: the *same* [size]
   workers re-invoked every time window, each on its own fixed shard
   index, with a full barrier between rounds.  A steady-state round
   allocates nothing: the job is stored in a plain field (no option box),
   round start and completion are signalled through atomic counters, and
   members spin briefly on those counters before parking on a condition
   variable — so back-to-back windows cost a few cache-line bounces, not
   a mutex convoy, while an idle team still sleeps.

   The caller's domain acts as member 0 of every round; [size - 1]
   domains are spawned at [create] and joined at [shutdown].  All
   cross-domain hand-offs are ordered by the atomics: the release write
   of [round] publishes the caller's plain writes (job, active count and
   any engine state) to the workers, and each worker's release decrement
   of [remaining] publishes its round's writes back to the caller — these
   are the happens-before edges that make the engine's plain (non-atomic)
   shard state safe to hand from one round's writer to the next round's
   reader. *)

type t = {
  size : int;
  m : Mutex.t;
  start : Condition.t;  (* workers park here between rounds *)
  finished : Condition.t;  (* the caller parks here for the barrier *)
  mutable job : int -> unit;
  mutable active : int;  (* members participating in the current round *)
  round : int Atomic.t;
  remaining : int Atomic.t;  (* active workers yet to finish the round *)
  stop : bool Atomic.t;
  mutable failures : (int * exn) list;
  mutable domains : unit Domain.t list;
}

(* Which team member the current domain is: 0 for any domain that never
   joined a team (in particular the caller), the member index inside a
   round's job otherwise.  The engine uses this to find "its" shard from
   inside an event handler without threading the index through every
   callback. *)
(* [worker] is the body every spawned team member runs ([Domain.spawn]
   gets it partially applied, so rdt_lint cannot see the closure); its
   owned root is the fixed member index [i].  Everything else it touches
   is either atomic or guarded by [t.m]. *)
[@@@lint.domain_scope "worker:i"]

let dls_index = Domain.DLS.new_key (fun () -> 0)
let self_index () = Domain.DLS.get dls_index

let hardware_parallelism () = Domain.recommended_domain_count ()

let no_job (_ : int) = ()

(* cpu_relax iterations on the atomics before falling back to the mutex;
   long enough to catch a back-to-back window, short enough that an idle
   team parks almost immediately *)
let spin_budget = 200

let worker t i () =
  Domain.DLS.set dls_index i;
  (* -1 = stopping; otherwise the number of the round to execute *)
  let rec await_round last_round spins =
    if Atomic.get t.stop then -1
    else begin
      let r = Atomic.get t.round in
      if r <> last_round then r
      else if spins > 0 then begin
        Domain.cpu_relax ();
        await_round last_round (spins - 1)
      end
      else begin
        Mutex.lock t.m;
        while (not (Atomic.get t.stop)) && Atomic.get t.round = last_round do
          Condition.wait t.start t.m
        done;
        Mutex.unlock t.m;
        if Atomic.get t.stop then -1 else Atomic.get t.round
      end
    end
  in
  let rec loop last_round =
    let round = await_round last_round spin_budget in
    if round >= 0 then begin
      if i < t.active then begin
        (try t.job i
         with e ->
           Mutex.lock t.m;
           (t.failures <- (i, e) :: t.failures)
           [@lint.single_writer "guarded by t.m, held on both lines around"];
           Mutex.unlock t.m);
        if Atomic.fetch_and_add t.remaining (-1) = 1 then begin
          (* last one out: the caller may already have parked *)
          Mutex.lock t.m;
          Condition.broadcast t.finished;
          Mutex.unlock t.m
        end
      end;
      loop round
    end
  in
  loop 0

let create ~size =
  if size < 1 then invalid_arg "Barrier_team.create: size must be >= 1";
  let t =
    {
      size;
      m = Mutex.create ();
      start = Condition.create ();
      finished = Condition.create ();
      job = no_job;
      active = 0;
      round = Atomic.make 0;
      remaining = Atomic.make 0;
      stop = Atomic.make false;
      failures = [];
      domains = [];
    }
  in
  t.domains <- List.init (size - 1) (fun i -> Domain.spawn (worker t (i + 1)));
  t

let size t = t.size

let run_sub t ~active f =
  if active < 1 then invalid_arg "Barrier_team.run_sub: active must be >= 1";
  let active = min active t.size in
  if active = 1 then f 0
  else begin
    t.job <- f;
    t.active <- active;
    t.failures <- [];
    Atomic.set t.remaining (active - 1);
    (* release write: publishes job/active (and the caller's plain state)
       to every worker that observes the new round number *)
    Atomic.incr t.round;
    Mutex.lock t.m;
    Condition.broadcast t.start;
    Mutex.unlock t.m;
    let caller_failure = (try f 0; None with e -> Some e) in
    let rec await spins =
      if Atomic.get t.remaining > 0 then
        if spins > 0 then begin
          Domain.cpu_relax ();
          await (spins - 1)
        end
        else begin
          Mutex.lock t.m;
          while Atomic.get t.remaining > 0 do
            Condition.wait t.finished t.m
          done;
          Mutex.unlock t.m
        end
    in
    await spin_budget;
    t.job <- no_job;
    (* every member reached the barrier; re-raise the lowest-index failure
       so error reporting does not depend on domain scheduling *)
    match caller_failure with
    | Some e -> raise e
    | None -> (
      match List.sort (fun (a, _) (b, _) -> Int.compare a b) t.failures with
      | (_, e) :: _ -> raise e
      | [] -> ())
  end

let run t f = run_sub t ~active:t.size f

let shutdown t =
  Atomic.set t.stop true;
  Mutex.lock t.m;
  Condition.broadcast t.start;
  Mutex.unlock t.m;
  let domains = t.domains in
  t.domains <- [];
  List.iter Domain.join domains

(* --- the process-wide shared team -------------------------------------- *)

(* Spawning domains is the expensive part of team setup, so repeated
   short runs (benchmarks, sweeps, tests) borrow one process-wide team
   instead of spawning per run.  The team is grown (shut down and
   respawned larger) when a borrower asks for more members than it has,
   and joined at process exit so the runtime never waits on parked
   domains.  Exclusive borrowing keeps rounds non-reentrant even when
   several engines run concurrently (e.g. under Domain_pool): a second
   concurrent borrower simply gets [None] and falls back to a private
   team. *)

let shared_m = Mutex.create ()
let shared_team : t option ref = ref None
let shared_busy = ref false

let shutdown_shared () =
  Mutex.lock shared_m;
  let team = !shared_team in
  shared_team := None;
  shared_busy := false;
  Mutex.unlock shared_m;
  match team with Some t -> shutdown t | None -> ()

let () = at_exit shutdown_shared

let shared_acquire ~size =
  if size < 1 then invalid_arg "Barrier_team.shared_acquire: size must be >= 1";
  Mutex.lock shared_m;
  let result =
    if !shared_busy then None
    else begin
      let t =
        match !shared_team with
        | Some t when t.size >= size -> t
        | old ->
          (match old with Some t -> shutdown t | None -> ());
          let t = create ~size in
          shared_team := Some t;
          t
      in
      shared_busy := true;
      Some t
    end
  in
  Mutex.unlock shared_m;
  result

let shared_release t =
  Mutex.lock shared_m;
  (match !shared_team with
  | Some cur when cur == t -> shared_busy := false
  | Some _ | None -> ());
  Mutex.unlock shared_m
