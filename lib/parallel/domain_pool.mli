(** Fixed-size domain pool for embarrassingly parallel fan-out.

    The experiment harness evaluates many independent simulation cells
    (one per (pattern, n, policy, seed) combination); each cell owns its
    PRNG and trace, so cells never share mutable state and can run on
    separate domains.  The pool hands out cells from a shared queue and
    writes each result into a slot indexed by the cell's input position,
    so {!map} returns results in input order no matter which domain
    finished first — callers that print from the ordered results produce
    byte-identical output at any [jobs] value.

    [jobs = 1] degrades to a plain in-caller [List.map] (no domains are
    ever spawned), which is also the only mode available when the pool
    itself runs inside a domain: OCaml domains must not spawn from
    spawned domains' pools concurrently.  The pool is not reentrant —
    do not call {!map} from inside a task. *)

type t

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the machine's useful
    parallelism. *)

val create : ?jobs:int -> unit -> t
(** A pool running tasks on [jobs] domains ([default_jobs ()] when
    omitted; values [< 1] are clamped to 1).  The pool spawns [jobs - 1]
    worker domains; the caller's domain is the remaining worker, joining
    the fan-out inside {!map} so a [jobs = 1] pool is purely
    sequential. *)

val jobs : t -> int

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f xs] applies [f] to every element of [xs], running up to
    [jobs pool] applications concurrently, and returns the results in
    the order of [xs].  If any application raises, the first exception
    (in input order) is re-raised in the caller after all tasks have
    drained.  [f] must not call back into the pool. *)

val shutdown : t -> unit
(** Join the worker domains.  The pool must not be used afterwards;
    idempotent. *)
