(** Persistent domain team for repeated barrier-synchronized rounds.

    {!Domain_pool} distributes independent tasks; this module instead
    re-invokes the {e same} [size] members every round — member [i] always
    processes index [i] — with a full barrier at the end of each round.
    The sharded simulation engine drives one round per conservative time
    window: workers park between rounds, so a window costs condition-variable
    hand-offs rather than domain spawns.

    Mutual exclusion and publication: all round hand-offs go through one
    internal mutex, whose acquire/release pairs establish the
    happens-before edges that let members publish plain (non-atomic)
    mutable state to whoever reads it after the barrier.  This is the
    project's designated home (with {!Domain_pool}) for [Domain]/[Mutex]/
    [Condition] use — rdt_lint's det/* rules flag those primitives
    anywhere else. *)

type t

val create : size:int -> t
(** Spawn [size - 1] worker domains (the caller is member 0).
    @raise Invalid_argument if [size < 1]. *)

val size : t -> int

val run : t -> (int -> unit) -> unit
(** [run t f] executes [f i] for every member [i] in [0 .. size-1], [f 0]
    on the calling domain, and returns once {e all} members finished (the
    barrier).  If any [f i] raises, the exception of the lowest failing
    index is re-raised in the caller after the barrier completes, so
    error propagation is independent of domain scheduling.  Not
    reentrant: do not call {!run} from inside [f]. *)

val self_index : unit -> int
(** Index of the round member the current domain is executing as; [0] on
    any domain outside a round (in particular the caller between rounds).
    Backed by domain-local storage. *)

val shutdown : t -> unit
(** Join the worker domains; idempotent.  The team must not be used
    afterwards. *)
