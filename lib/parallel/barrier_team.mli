(** Persistent domain team for repeated barrier-synchronized rounds.

    {!Domain_pool} distributes independent tasks; this module instead
    re-invokes the {e same} [size] members every round — member [i] always
    processes index [i] — with a full barrier at the end of each round.
    The sharded simulation engine drives one round per conservative time
    window, so rounds are built to be cheap: a steady-state round
    allocates nothing (the job lives in a plain field, round start and
    completion travel through atomic counters), and members spin briefly
    on those counters before parking on a condition variable, so
    back-to-back windows avoid the mutex entirely while an idle team
    still sleeps.

    Publication: the release write that opens a round publishes the
    caller's plain (non-atomic) mutable state to the workers, and each
    worker's release decrement at the barrier publishes its writes back —
    these are the happens-before edges that let the engine hand plain
    shard state from one round's writer to the next round's reader.  This
    is the project's designated home (with {!Domain_pool}) for
    [Domain]/[Mutex]/[Condition]/[Atomic] use — rdt_lint's det/* rules
    flag those primitives anywhere else. *)

type t

val create : size:int -> t
(** Spawn [size - 1] worker domains (the caller is member 0).
    @raise Invalid_argument if [size < 1]. *)

val size : t -> int

val run : t -> (int -> unit) -> unit
(** [run t f] executes [f i] for every member [i] in [0 .. size-1], [f 0]
    on the calling domain, and returns once {e all} members finished (the
    barrier).  If any [f i] raises, the exception of the lowest failing
    index is re-raised in the caller after the barrier completes, so
    error propagation is independent of domain scheduling.  Not
    reentrant: do not call {!run} from inside [f]. *)

val run_sub : t -> active:int -> (int -> unit) -> unit
(** {!run} over members [0 .. active-1] only ([active] is clamped to
    [size]); the remaining members stay parked.  Lets one long-lived team
    serve engines of different shard counts.  With [active = 1] the job
    runs inline on the caller and no worker is woken. *)

val self_index : unit -> int
(** Index of the round member the current domain is executing as; [0] on
    any domain outside a round (in particular the caller between rounds).
    Backed by domain-local storage. *)

val shutdown : t -> unit
(** Join the worker domains; idempotent.  The team must not be used
    afterwards. *)

val hardware_parallelism : unit -> int
(** [Domain.recommended_domain_count ()], re-exported so engine-side
    dispatch policy (parallel teams vs inline windowed execution) can ask
    without using [Domain] outside this library. *)

(** {2 The process-wide shared team}

    Spawning domains dominates team setup, so repeated short runs
    (benchmarks, sweeps, tests) borrow one process-wide team instead of
    spawning per run.  Borrowing is exclusive: a second concurrent
    borrower gets [None] and should fall back to a private {!create}d
    team.  The shared team grows when a borrower asks for more members
    than it has, and is joined automatically at process exit. *)

val shared_acquire : size:int -> t option
(** Borrow the shared team with at least [size] members, growing it if
    needed; [None] if another borrower currently holds it. *)

val shared_release : t -> unit
(** Return a team obtained from {!shared_acquire}.  Never shuts it down;
    releasing a stale team (one the registry has since replaced) is a
    no-op. *)
