type t = {
  jobs : int;
  queue : (unit -> unit) Queue.t;
  mutex : Mutex.t;
  nonempty : Condition.t;
  mutable workers : unit Domain.t list;
  mutable shut : bool;
}

let default_jobs () = Domain.recommended_domain_count ()

(* [worker_loop] runs on the spawned domains; [task] is what [map]
   queues for them, owning the input slot [i] it writes its result to.
   Both take [t.mutex] around every shared write. *)
[@@@lint.domain_scope "worker_loop" "task:i"]

let rec worker_loop t =
  Mutex.lock t.mutex;
  let rec next () =
    match (Queue.take_opt t.queue
           [@lint.single_writer "t.mutex is held across the whole wait loop"])
    with
    | Some job -> Some job
    | None ->
      if t.shut then None
      else begin
        Condition.wait t.nonempty t.mutex;
        next ()
      end
  in
  match next () with
  | None -> Mutex.unlock t.mutex
  | Some job ->
    Mutex.unlock t.mutex;
    job ();
    worker_loop t

let create ?jobs () =
  let jobs =
    match jobs with Some j -> max 1 j | None -> default_jobs ()
  in
  let t =
    {
      jobs;
      queue = Queue.create ();
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      workers = [];
      shut = false;
    }
  in
  t.workers <-
    List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let jobs t = t.jobs

let map t f xs =
  let inputs = Array.of_list xs in
  let len = Array.length inputs in
  let results = Array.make len None in
  let remaining = ref len in
  let finished = Condition.create () in
  let task i () =
    let r = try Ok (f inputs.(i)) with e -> Error e in
    Mutex.lock t.mutex;
    results.(i) <- Some r;
    (decr remaining)
    [@lint.single_writer "guarded by t.mutex, locked on the line above"];
    if !remaining = 0 then Condition.broadcast finished;
    Mutex.unlock t.mutex
  in
  Mutex.lock t.mutex;
  for i = 0 to len - 1 do
    Queue.push (task i) t.queue
  done;
  Condition.broadcast t.nonempty;
  (* The caller is a worker too: drain the queue, then wait for any
     stragglers still running on other domains. *)
  while !remaining > 0 do
    match Queue.take_opt t.queue with
    | Some job ->
      Mutex.unlock t.mutex;
      job ();
      Mutex.lock t.mutex
    | None -> if !remaining > 0 then Condition.wait finished t.mutex
  done;
  Mutex.unlock t.mutex;
  Array.to_list
    (Array.map
       (function
         | Some (Ok v) -> v
         | Some (Error e) -> raise e
         | None -> assert false)
       results)

let shutdown t =
  Mutex.lock t.mutex;
  t.shut <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []
