(** Recorded execution of a checkpointed distributed computation.

    The checkpointing middleware appends events here as the simulation
    runs; {!Ccp.of_trace} later turns the trace into a checkpoint and
    communication pattern for analysis.  Events carry a global sequence
    number: since a receive is always sequenced after its send, the
    sequence order is a linearization consistent with causality, which
    the analyzers exploit.  Sequence numbers are assigned at record time,
    or — in sharded simulations, where processes append concurrently —
    deferred and assigned in canonical engine order at {!finalize} (see
    {!set_order_source}).

    Rollback support: {!truncate_to_checkpoint} rewinds one process to just
    after a stable checkpoint, erasing the undone events.  Sends erased
    this way make the message disappear from the computation (equivalent to
    a loss, which the model allows); a surviving receive of an erased send
    would mean the rollback was inconsistent, and {!Ccp.of_trace} treats it
    as an error. *)

type kind =
  | Checkpoint of { index : int }
      (** process stored stable checkpoint [s^index] *)
  | Send of { msg_id : int; dst : int }
  | Receive of { msg_id : int; src : int }

type event = { mutable seq : int; pid : int; kind : kind }
(** [seq] is owned by the trace: it is assigned at record time, or — when
    an order source is installed ({!set_order_source}) — at {!finalize}.
    Clients must treat it as read-only. *)

type t

val create : n:int -> t
(** Empty trace for [n] processes.  Initial checkpoints are not implicit:
    record [Checkpoint {index = 0}] for each process (the middleware and
    the builder helpers below do). *)

val n : t -> int

val set_recording : t -> bool -> unit
(** Disable (or re-enable) event recording.  With recording off the
    [record_*] functions are no-ops (message ids are still allocated);
    used by micro-benchmarks that drive the middleware in a hot loop and
    must not accumulate an unbounded log.  A trace that was paused is no
    longer a faithful basis for {!Ccp.of_trace}. *)

val on_event : t -> (event -> unit) -> unit
(** Subscribe to appends: the callback runs after each event is recorded
    (so in global sequence order — the same linearization {!all_events}
    returns).  {!Ccp.Incremental} subscribes here to keep an analysis
    graph up to date in O(new events).  Callbacks do not fire while
    recording is off. *)

val on_truncate : t -> (pid:int -> unit) -> unit
(** Subscribe to rollbacks: the callback runs after
    {!truncate_to_checkpoint} erased a suffix of [pid]'s log.  Incremental
    consumers treat this as a cache invalidation (truncation can retract
    events a subscriber already folded in). *)

val set_order_source : t -> (Rdt_sim.Stamp.t -> unit) -> unit
(** Route appends through deferred canonical ordering: each record is
    buffered per process, stamped with the key the source writes into a
    trace-owned per-pid cell (the engine's [read_stamp]), and sequenced
    lazily by
    {!finalize} — sorted by [(time, u, v, k, pid)] where [k] ranks
    multiple records made under one key by the same process.  Installed
    by the runner for sharded simulations, where processes append from
    multiple domains and arrival order is not the canonical order.  The
    cell-writing shape keeps the per-record stamp allocation-free (a
    tuple per record was part of the multi-shard allocation storm).  Must
    be set before the first record. *)

val finalize : t -> unit
(** Sequence every buffered record and fire the {!on_event} callbacks in
    canonical order.  Idempotent; a no-op without an order source.  Called
    implicitly by every reader ({!events_of}, {!all_events},
    {!to_channel}, {!truncate_to_checkpoint}); callers only need it
    explicitly before reading [event.seq] directly.  Must not be called
    while event handlers may still append (i.e. only between engine
    windows or after the run). *)

val record_checkpoint : t -> pid:int -> index:int -> unit
val record_send : t -> pid:int -> msg_id:int -> dst:int -> unit
val record_receive : t -> pid:int -> msg_id:int -> src:int -> unit

val fresh_msg_id : t -> pid:int -> int
(** Allocates a message identifier unique across the trace
    ([k * n + pid], counting [pid]'s sends).  Ids are a pure function of
    the allocating process's own history, so they are stable under any
    interleaving of processes — sharded and sequential runs assign the
    same ids. *)

val restore_msg_ids : t -> pid:int -> count:int -> unit
(** Raise [pid]'s send counter to at least [count] sends.  The counter is
    monotone — a rollback erases send events but never reuses their ids —
    so a process whose trace is rebuilt from surviving history (live-node
    respawn) must restore the counter past the sends the truncations
    erased, or it would mint colliding ids.  Lowering is a no-op. *)

val last_checkpoint_index : t -> pid:int -> int
(** Index of the last stable checkpoint recorded for [pid]; [-1] if none. *)

val events_of : t -> pid:int -> event list
(** Events of one process, oldest first. *)

val all_events : t -> event list
(** All events sorted by sequence number (i.e., a causal linearization). *)

val truncate_to_checkpoint : t -> pid:int -> index:int -> unit
(** Erase every event of [pid] after its [Checkpoint index] event.
    @raise Invalid_argument if that checkpoint is not in the trace. *)

(* Serialization: a line-oriented text format so executions can be saved
   from one tool run and analyzed in another ([rdtgc analyze --save] /
   [rdtgc inspect]). *)

val to_channel : t -> out_channel -> unit
(** Writes the trace:
    {v
    rdtgc-trace 1
    n <processes>
    C <pid> <index>            (checkpoint)
    S <pid> <msg_id> <dst>     (send)
    R <pid> <msg_id> <src>     (receive)
    v}
    Events appear in sequence order. *)

val of_channel : in_channel -> t
(** Reads the format written by {!to_channel}.
    @raise Failure on malformed input. *)

val save : t -> string -> unit
val load : string -> t

(* Builder helpers: hand-constructed patterns (paper figures, tests). *)

val init_with_initial_checkpoints : n:int -> t
(** A trace in which every process has already recorded [s^0]. *)

val checkpoint : t -> int -> unit
(** [checkpoint t pid] records the next stable checkpoint of [pid]
    (index = last + 1). *)

val send : t -> src:int -> dst:int -> int
(** Records a send and returns the message id (to pass to {!receive}). *)

val receive : t -> msg_id:int -> src:int -> dst:int -> unit

val message : t -> src:int -> dst:int -> unit
(** [message t ~src ~dst] records a send immediately followed by its
    receive — the common case when transcribing a space-time diagram
    left to right. *)
