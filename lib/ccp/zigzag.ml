module Vec = Rdt_sim.Vec

type verdict = Causal_path | Non_causal_zigzag | Not_a_path

(* Messages sent by each process, in ascending send_interval order, so
   that relaxing a constraint "send_interval >= gamma" enqueues a suffix
   and a per-process pointer (walking from the top down) makes each
   message enqueued at most once per BFS.

   Per-process send intervals are nondecreasing in trace order (a
   process's interval counter only grows within one consistent trace), so
   messages appended by an incremental CCP extend each bucket in sorted
   position: incorporating new messages is O(1) amortized per message,
   and only a generation bump (trace rollback) forces a re-index. *)
type analyzer = {
  a_ccp : Ccp.t;
  a_sends : Ccp.message Vec.t array;
  mutable a_seen : int;  (* messages of a_ccp already bucketed *)
  mutable a_generation : int;
  a_memo : (Ccp.ckpt, int array) Hashtbl.t;
  a_by_id : (int, Ccp.message) Hashtbl.t;
}

let incorporate a =
  let count = Ccp.message_count a.a_ccp in
  if count <> a.a_seen || Ccp.generation a.a_ccp <> a.a_generation then begin
    if Ccp.generation a.a_ccp <> a.a_generation then begin
      (* the CCP was rebuilt in place: our buckets describe retracted
         messages — start over *)
      Array.iter Vec.clear a.a_sends;
      Hashtbl.reset a.a_by_id;
      a.a_seen <- 0;
      a.a_generation <- Ccp.generation a.a_ccp
    end;
    for i = a.a_seen to count - 1 do
      let m = Ccp.message_at a.a_ccp i in
      let bucket = a.a_sends.(m.Ccp.src) in
      (* messages arrive in receive order; a non-FIFO network can deliver
         a later-interval send first, so restore sortedness by bubbling
         the newcomer down (rare and shallow: delays are bounded) *)
      Vec.push bucket m;
      let j = ref (Vec.length bucket - 1) in
      while
        !j > 0
        && (Vec.get bucket (!j - 1)).Ccp.send_interval > m.Ccp.send_interval
      do
        Vec.set bucket !j (Vec.get bucket (!j - 1));
        decr j
      done;
      Vec.set bucket !j m;
      Hashtbl.replace a.a_by_id m.Ccp.id m
    done;
    a.a_seen <- count;
    (* reach results depend on the message set: new messages invalidate
       every memoized BFS *)
    Hashtbl.reset a.a_memo
  end

let analyzer ccp =
  let a =
    {
      a_ccp = ccp;
      a_sends = Array.init (Ccp.n ccp) (fun _ -> Vec.create ());
      a_seen = 0;
      a_generation = Ccp.generation ccp;
      a_memo = Hashtbl.create 64;
      a_by_id = Hashtbl.create 64;
    }
  in
  incorporate a;
  a

let compute_reach a ~(src : Ccp.ckpt) =
  let ccp = a.a_ccp in
  let n = Ccp.n ccp in
  (* ptr.(pid): highest bucket position not yet enqueued (buckets are
     ascending, the BFS consumes them from the top down) *)
  let ptr = Array.map (fun b -> Vec.length b - 1) a.a_sends in
  let min_recv = Array.make n max_int in
  let queue = Queue.create () in
  let relax pid gamma =
    let bucket = a.a_sends.(pid) in
    while ptr.(pid) >= 0
          && (Vec.get bucket ptr.(pid)).Ccp.send_interval >= gamma do
      Queue.push (Vec.get bucket ptr.(pid)) queue;
      ptr.(pid) <- ptr.(pid) - 1
    done
  in
  (* condition (i): first message sent after c^alpha, i.e. in interval
     >= alpha + 1 *)
  relax src.Ccp.pid (src.Ccp.index + 1);
  while not (Queue.is_empty queue) do
    let (m : Ccp.message) = Queue.pop queue in
    if m.recv_interval < min_recv.(m.dst) then
      min_recv.(m.dst) <- m.recv_interval;
    (* condition (ii): next message sent in the same or later interval *)
    relax m.dst m.recv_interval
  done;
  min_recv

let reach_from a ~src =
  incorporate a;
  if not (Ccp.mem a.a_ccp src) then invalid_arg "Zigzag.reach: bad checkpoint";
  match Hashtbl.find_opt a.a_memo src with
  | Some r -> r
  | None ->
    let r = compute_reach a ~src in
    Hashtbl.replace a.a_memo src r;
    r

let reach ccp ~src = reach_from (analyzer ccp) ~src

let path_exists_from a c1 (c2 : Ccp.ckpt) =
  let r = reach_from a ~src:c1 in
  r.(c2.pid) <= c2.index

let cycle_from a (c : Ccp.ckpt) =
  let r = reach_from a ~src:c in
  r.(c.pid) <= c.index

let useless_from a = List.filter (cycle_from a) (Ccp.checkpoints a.a_ccp)

let path_exists ccp c1 c2 = path_exists_from (analyzer ccp) c1 c2
let cycle ccp c = cycle_from (analyzer ccp) c
let useless ccp = useless_from (analyzer ccp)

let classify_sequence_from a ~(from_ : Ccp.ckpt) ~(to_ : Ccp.ckpt) msg_ids =
  incorporate a;
  let lookup id = Hashtbl.find_opt a.a_by_id id in
  match List.map lookup msg_ids with
  | [] -> Not_a_path
  | maybe_msgs when List.exists Option.is_none maybe_msgs -> Not_a_path
  | maybe_msgs ->
    let msgs =
      List.map
        (function Some m -> m | None -> assert false)
        maybe_msgs
    in
    let first = List.hd msgs in
    let last = List.nth msgs (List.length msgs - 1) in
    let valid_ends =
      first.Ccp.src = from_.pid
      && first.Ccp.send_interval >= from_.index + 1
      && last.Ccp.dst = to_.pid
      && last.Ccp.recv_interval <= to_.index
    in
    let rec check_hops causal = function
      | (m1 : Ccp.message) :: (m2 : Ccp.message) :: rest ->
        if m2.src = m1.dst && m2.send_interval >= m1.recv_interval then
          check_hops (causal && m2.send_seq > m1.recv_seq) (m2 :: rest)
        else None
      | [ _ ] | [] -> Some causal
    in
    if not valid_ends then Not_a_path
    else begin
      match check_hops true msgs with
      | None -> Not_a_path
      | Some true -> Causal_path
      | Some false -> Non_causal_zigzag
    end

let classify_sequence ccp ~from_ ~to_ msg_ids =
  classify_sequence_from (analyzer ccp) ~from_ ~to_ msg_ids
