module Vector_clock = Rdt_causality.Vector_clock
module Vec = Rdt_sim.Vec

type ckpt = { pid : int; index : int }

type message = {
  id : int;
  src : int;
  send_interval : int;
  send_seq : int;
  dst : int;
  recv_interval : int;
  recv_seq : int;
}

(* The CCP graph is stored in growable vectors so that an incremental
   builder can extend it in place, one trace event at a time; a one-shot
   [of_trace] CCP is simply a builder that is never extended again.
   [generation] is bumped whenever the content is rebuilt in place (after
   a rollback truncated the underlying trace), so derived caches such as
   {!Zigzag.analyzer} know their indexes are stale. *)
type t = {
  n : int;
  ckpt_vc : Vector_clock.t Vec.t array;  (* [pid] -> VC of s^0 .. s^last *)
  volatile_vc : Vector_clock.t array;  (* running (= volatile) VC per pid *)
  messages : message Vec.t;
  mutable generation : int;
}

type pending_send = {
  p_vc : Vector_clock.t;
  p_src : int;
  p_send_interval : int;
  p_send_seq : int;
}

(* Fold state shared by [of_trace] and the incremental builder.  The
   volatile VC of [state] doubles as the running clock of the fold. *)
type builder = {
  b_ccp : t;
  b_cur_interval : int array;
  b_pending : (int, pending_send) Hashtbl.t;
}

let empty_builder ~n =
  {
    b_ccp =
      {
        n;
        ckpt_vc = Array.init n (fun _ -> Vec.create ());
        volatile_vc = Array.init n (fun _ -> Vector_clock.create ~n);
        messages = Vec.create ();
        generation = 0;
      };
    b_cur_interval = Array.make n 0;
    b_pending = Hashtbl.create 64;
  }

let reset_builder b =
  let s = b.b_ccp in
  Array.iter Vec.clear s.ckpt_vc;
  Array.iter
    (fun vc ->
      for j = 0 to s.n - 1 do
        Vector_clock.set vc j 0
      done)
    s.volatile_vc;
  Vec.clear s.messages;
  Array.fill b.b_cur_interval 0 s.n 0;
  Hashtbl.reset b.b_pending

let handle_event b (ev : Trace.event) =
  let s = b.b_ccp in
  let pid = ev.Trace.pid in
  let vc = s.volatile_vc.(pid) in
  Vector_clock.tick vc pid;
  match ev.Trace.kind with
  | Trace.Checkpoint { index } ->
    if index <> Vec.length s.ckpt_vc.(pid) then
      invalid_arg
        (Printf.sprintf
           "Ccp.of_trace: process %d records checkpoint %d, expected %d" pid
           index
           (Vec.length s.ckpt_vc.(pid)));
    Vec.push s.ckpt_vc.(pid) (Vector_clock.copy vc);
    b.b_cur_interval.(pid) <- index + 1
  | Trace.Send { msg_id; dst = _ } ->
    Hashtbl.replace b.b_pending msg_id
      {
        p_vc = Vector_clock.copy vc;
        p_src = pid;
        p_send_interval = b.b_cur_interval.(pid);
        p_send_seq = ev.Trace.seq;
      }
  | Trace.Receive { msg_id; src } -> begin
    match Hashtbl.find_opt b.b_pending msg_id with
    | None ->
      invalid_arg
        (Printf.sprintf
           "Ccp.of_trace: orphan receive of message %d at process %d" msg_id
           pid)
    | Some p ->
      if p.p_src <> src then
        invalid_arg "Ccp.of_trace: receive names the wrong sender";
      Hashtbl.remove b.b_pending msg_id;
      Vector_clock.merge_into ~dst:vc ~src:p.p_vc;
      Vec.push s.messages
        {
          id = msg_id;
          src;
          send_interval = p.p_send_interval;
          send_seq = p.p_send_seq;
          dst = pid;
          recv_interval = b.b_cur_interval.(pid);
          recv_seq = ev.Trace.seq;
        }
  end

let check_initial_checkpoints s =
  for pid = 0 to s.n - 1 do
    if Vec.is_empty s.ckpt_vc.(pid) then
      invalid_arg
        (Printf.sprintf "Ccp.of_trace: process %d has no initial checkpoint"
           pid)
  done

let build_from_trace b trace =
  List.iter (handle_event b) (Trace.all_events trace)

let of_trace trace =
  let b = empty_builder ~n:(Trace.n trace) in
  build_from_trace b trace;
  check_initial_checkpoints b.b_ccp;
  b.b_ccp

let n t = t.n
let generation t = t.generation
let last_stable t pid = Vec.length t.ckpt_vc.(pid) - 1
let volatile_index t pid = Vec.length t.ckpt_vc.(pid)
let volatile t pid = { pid; index = volatile_index t pid }
let last_stable_ckpt t pid = { pid; index = last_stable t pid }

let mem t c =
  c.pid >= 0 && c.pid < t.n && c.index >= 0 && c.index <= volatile_index t c.pid

let is_volatile t c = c.index = volatile_index t c.pid
let is_stable t c = mem t c && c.index <= last_stable t c.pid

let checkpoints t =
  List.concat
    (List.init t.n (fun pid ->
         List.init (volatile_index t pid + 1) (fun index -> { pid; index })))

let stable_checkpoints t =
  List.concat
    (List.init t.n (fun pid ->
         List.init (last_stable t pid + 1) (fun index -> { pid; index })))

let messages t = Vec.to_array t.messages
let message_count t = Vec.length t.messages
let message_at t i = Vec.get t.messages i
let iter_messages t f = Vec.iter f t.messages

let vc t c =
  if not (mem t c) then invalid_arg "Ccp.vc: checkpoint not in CCP";
  if is_volatile t c then t.volatile_vc.(c.pid)
  else Vec.get t.ckpt_vc.(c.pid) c.index

let vc_entry t c j = Vector_clock.get (vc t c) j

let precedes t c1 c2 =
  if not (mem t c1 && mem t c2) then
    invalid_arg "Ccp.precedes: checkpoint not in CCP";
  if c1.pid = c2.pid && c1.index = c2.index then false
  else if is_volatile t c1 then false
  else
    (* event test: e -> f iff VC(e).(proc e) <= VC(f).(proc e) *)
    Vector_clock.get (vc t c1) c1.pid <= Vector_clock.get (vc t c2) c1.pid

let consistent_pair t c1 c2 = (not (precedes t c1 c2)) && not (precedes t c2 c1)

let pp_ckpt ppf c = Format.fprintf ppf "c%d_p%d" c.index c.pid

let pp ppf t =
  Format.fprintf ppf "@[<v>CCP: %d processes, %d messages" t.n
    (Vec.length t.messages);
  for pid = 0 to t.n - 1 do
    Format.fprintf ppf "@,  p%d: %d stable checkpoints (+volatile)" pid
      (last_stable t pid + 1)
  done;
  Format.fprintf ppf "@]"

module Incremental = struct
  type t = {
    trace : Trace.t;
    builder : builder;
    mutable dirty : bool;
  }

  let rebuild t =
    reset_builder t.builder;
    build_from_trace t.builder t.trace;
    t.builder.b_ccp.generation <- t.builder.b_ccp.generation + 1;
    t.dirty <- false

  let of_trace trace =
    let t = { trace; builder = empty_builder ~n:(Trace.n trace); dirty = false } in
    build_from_trace t.builder trace;
    (* Appends fold into the graph as they happen; a truncation (rollback)
       can retract already-folded events, so it flags a full rebuild
       instead.  While dirty, appended events are ignored — the rebuild
       replays the whole trace anyway. *)
    Trace.on_event trace (fun ev -> if not t.dirty then handle_event t.builder ev);
    Trace.on_truncate trace (fun ~pid:_ -> t.dirty <- true);
    t

  let ccp t =
    if t.dirty then rebuild t;
    check_initial_checkpoints t.builder.b_ccp;
    t.builder.b_ccp
end
