type violation = { source : Ccp.ckpt; target : Ccp.ckpt }

let violations ?(limit = max_int) ccp =
  let acc = ref [] in
  let count = ref 0 in
  let ckpts = Ccp.checkpoints ccp in
  let analyzer = Zigzag.analyzer ccp in
  let check_source source =
    if !count < limit then begin
      let r = Zigzag.reach_from analyzer ~src:source in
      let check_target (target : Ccp.ckpt) =
        if
          !count < limit
          && r.(target.pid) <= target.index
          && not (Ccp.precedes ccp source target)
        then begin
          acc := { source; target } :: !acc;
          incr count
        end
      in
      List.iter check_target ckpts
    end
  in
  List.iter check_source ckpts;
  List.rev !acc

let holds ccp = List.is_empty (violations ~limit:1 ccp)

let pp_violation ppf { source; target } =
  Format.fprintf ppf "%a ~~> %a but %a -/-> %a" Ccp.pp_ckpt source Ccp.pp_ckpt
    target Ccp.pp_ckpt source Ccp.pp_ckpt target
