(** Checkpoint and Communication Patterns (paper, Section 2.2).

    A CCP is the set of checkpoints taken by all processes in a consistent
    cut plus the dependency relation created by the exchanged messages
    (excluding lost and in-transit messages).  This module builds a CCP
    from a recorded {!Trace.t} and answers causality queries between
    checkpoints using vector clocks computed over the trace — deliberately
    *not* using the protocols' dependency vectors, so the two mechanisms
    can be verified against each other.

    Indexing conventions follow the paper: process [p_i] starts by storing
    stable checkpoint [s^0_i]; checkpoint interval [I^gamma] comprises the
    events between [c^(gamma-1)] and [c^gamma]; the volatile checkpoint
    [v_i] is the general checkpoint with index [last_s(i) + 1]. *)

type ckpt = { pid : int; index : int }
(** A general checkpoint [c^index_pid].  It is stable when
    [index <= last_stable t pid] and volatile when
    [index = last_stable t pid + 1]. *)

type message = {
  id : int;
  src : int;
  send_interval : int;  (** interval of the sender when sending *)
  send_seq : int;  (** trace sequence number of the send event *)
  dst : int;
  recv_interval : int;  (** interval of the receiver when receiving *)
  recv_seq : int;  (** trace sequence number of the receive event *)
}

type t

val of_trace : Trace.t -> t
(** Builds the CCP of the cut consisting of the whole trace.
    @raise Invalid_argument on malformed traces: a receive without a
    matching send (orphan message — the sign of an inconsistent rollback),
    or non-contiguous checkpoint indices. *)

val n : t -> int

val generation : t -> int
(** Rebuild stamp.  A CCP built by {!of_trace} stays at generation 0; a
    CCP maintained by {!Incremental} bumps its generation every time a
    trace truncation (rollback) forces an in-place rebuild.  Derived
    caches keyed on the message prefix ({!Zigzag.analyzer}) compare this
    to know when their indexes are stale rather than merely behind. *)

val last_stable : t -> int -> int
(** [last_s(i)]: index of the last stable checkpoint of process [i]. *)

val volatile_index : t -> int -> int
(** [last_stable t i + 1]. *)

val volatile : t -> int -> ckpt
(** The volatile checkpoint [v_i]. *)

val last_stable_ckpt : t -> int -> ckpt
(** [s^last_i]. *)

val mem : t -> ckpt -> bool
(** Does this general checkpoint exist in the CCP? *)

val is_volatile : t -> ckpt -> bool
val is_stable : t -> ckpt -> bool

val checkpoints : t -> ckpt list
(** Every general checkpoint (stable and volatile), process by process. *)

val stable_checkpoints : t -> ckpt list

val messages : t -> message array
(** Delivered messages only, in trace order (a fresh copy; prefer
    {!message_count}/{!message_at}/{!iter_messages} on hot paths). *)

val message_count : t -> int
val message_at : t -> int -> message
(** Delivered messages in trace order, without copying.  For a CCP behind
    {!Incremental}, the prefix [0 .. message_count - 1] only ever grows
    between generation bumps — the property the incremental zigzag
    analyzer relies on. *)

val iter_messages : t -> (message -> unit) -> unit

val vc : t -> ckpt -> Rdt_causality.Vector_clock.t
(** Vector clock of the checkpoint event ([v_i]: the process's final
    clock).  Do not mutate. *)

val vc_entry : t -> ckpt -> int -> int
(** [vc_entry t c j = Vector_clock.get (vc t c) j] — the single clock
    entry Equation-2-style precedence tests need; {!Oracle} uses it to
    answer all witness queries of one sweep from [2n] preloaded entries. *)

val precedes : t -> ckpt -> ckpt -> bool
(** Causal precedence [c1 -> c2] between checkpoint events (Definition 1).
    Volatile checkpoints precede nothing; everything a process did
    precedes its own volatile checkpoint. *)

val consistent_pair : t -> ckpt -> ckpt -> bool
(** Neither precedes the other (Section 2.2). *)

val pp_ckpt : Format.formatter -> ckpt -> unit
val pp : Format.formatter -> t -> unit
(** Multi-line summary (per-process checkpoint counts and message count). *)

(** Incremental CCP maintenance.

    [of_trace] costs O(trace); sampling-time analyses (the runner's oracle
    instrumentation, invariant audits on every sample) that rebuilt the
    CCP at each sample point were therefore quadratic in trace length.
    An [Incremental.t] subscribes to the trace's append stream
    ({!Trace.on_event}) and extends one CCP graph in place, so {!ccp} costs
    O(events since the last call).  Rollbacks ({!Trace.on_truncate})
    retract events; they mark the builder dirty and the next {!ccp} call
    rebuilds from scratch (rollbacks are rare — crash recovery only — so
    the amortized cost stays linear).

    The returned CCP is a live view: it mutates as the trace grows, and
    vector clocks obtained from it are only meaningful until the next
    append.  Analyses must query, not retain. *)
module Incremental : sig
  type ccp := t
  type t

  val of_trace : Trace.t -> t
  (** Folds the events already recorded, then subscribes to the trace.
      Create it once per trace, next to the trace itself. *)

  val ccp : t -> ccp
  (** The up-to-date CCP view.  O(new events) amortized; O(trace) right
      after a rollback.
      @raise Invalid_argument like {!of_trace} on malformed traces. *)
end
