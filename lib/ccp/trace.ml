module Vec = Rdt_sim.Vec

type kind =
  | Checkpoint of { index : int }
  | Send of { msg_id : int; dst : int }
  | Receive of { msg_id : int; src : int }

type event = { mutable seq : int; pid : int; kind : kind }

(* Canonical-order stamp of one not-yet-sequenced record: the engine
   event's key [(s_time, s_u, s_v)] plus [s_k], the rank of this record
   among those made by the same process under the same key (one engine
   event can record several trace events). *)
type stamp = { s_time : float; s_u : int; s_v : int; s_k : int; s_ev : event }

type t = {
  n : int;
  logs : event Vec.t array;
  mutable next_seq : int;
  (* per-process msg-id counters: id = k * n + pid, so ids are unique and
     a pure function of the sender's own history — no global counter whose
     value would depend on cross-process interleaving *)
  next_msg_id : int array;
  mutable recording : bool;
  mutable on_event : (event -> unit) list;
  mutable on_truncate : (pid:int -> unit) list;
  (* When set (sharded runs), records are buffered unsequenced per process
     with a stamp drawn from this source, and {!finalize} later assigns
     [seq] in canonical order and fires [on_event] — producing the exact
     linearization the sequential engine records directly.  When unset,
     records are sequenced immediately at append (the historical path). *)
  mutable order_source : (unit -> float * int * int) option;
  pending : stamp Vec.t array;  (* per process, so shards never share *)
  last_time : float array;
  last_u : int array;
  last_v : int array;
  last_k : int array;
}

let create ~n =
  if n <= 0 then invalid_arg "Trace.create: n must be positive";
  {
    n;
    logs = Array.init n (fun _ -> Vec.create ());
    next_seq = 0;
    next_msg_id = Array.make n 0;
    recording = true;
    on_event = [];
    on_truncate = [];
    order_source = None;
    pending = Array.init n (fun _ -> Vec.create ());
    last_time = Array.make n nan;
    last_u = Array.make n 0;
    last_v = Array.make n 0;
    last_k = Array.make n 0;
  }

let n t = t.n
let set_recording t b = t.recording <- b
let on_event t f = t.on_event <- f :: t.on_event
let on_truncate t f = t.on_truncate <- f :: t.on_truncate
let set_order_source t f = t.order_source <- Some f

let stamp_compare a b =
  let c = Float.compare a.s_time b.s_time in
  if c <> 0 then c
  else
    let c = Int.compare a.s_u b.s_u in
    if c <> 0 then c
    else
      let c = Int.compare a.s_v b.s_v in
      if c <> 0 then c
      else
        let c = Int.compare a.s_k b.s_k in
        if c <> 0 then c else Int.compare a.s_ev.pid b.s_ev.pid

let finalize t =
  let total = Array.fold_left (fun acc v -> acc + Vec.length v) 0 t.pending in
  if total > 0 then begin
    let all =
      let buf = ref [] in
      Array.iter (fun v -> Vec.iter (fun s -> buf := s :: !buf) v) t.pending;
      Array.of_list !buf
    in
    Array.iter Vec.clear t.pending;
    Array.sort stamp_compare all;
    Array.iter
      (fun s ->
        let ev = s.s_ev in
        ev.seq <- t.next_seq;
        t.next_seq <- t.next_seq + 1;
        List.iter (fun f -> f ev) t.on_event)
      all
  end

let record t ~pid kind =
  if pid < 0 || pid >= t.n then invalid_arg "Trace.record: bad pid";
  if t.recording then begin
    match t.order_source with
    | None ->
      let ev = { seq = t.next_seq; pid; kind } in
      t.next_seq <- t.next_seq + 1;
      Vec.push t.logs.(pid) ev;
      List.iter (fun f -> f ev) t.on_event
    | Some source ->
      let tm, u, v = source () in
      let k =
        if
          Float.equal tm t.last_time.(pid)
          && u = t.last_u.(pid)
          && v = t.last_v.(pid)
        then t.last_k.(pid) + 1
        else 0
      in
      t.last_time.(pid) <- tm;
      t.last_u.(pid) <- u;
      t.last_v.(pid) <- v;
      t.last_k.(pid) <- k;
      let ev = { seq = -1; pid; kind } in
      Vec.push t.logs.(pid) ev;
      Vec.push t.pending.(pid)
        { s_time = tm; s_u = u; s_v = v; s_k = k; s_ev = ev }
  end

(* the [recording] test is replicated here so a muted trace (benchmarks,
   long soak runs) does not even allocate the [kind] constructor *)
let record_checkpoint t ~pid ~index =
  if t.recording then record t ~pid (Checkpoint { index })

let record_send t ~pid ~msg_id ~dst =
  if t.recording then record t ~pid (Send { msg_id; dst })

let record_receive t ~pid ~msg_id ~src =
  if t.recording then record t ~pid (Receive { msg_id; src })

let fresh_msg_id t ~pid =
  let k = t.next_msg_id.(pid) in
  t.next_msg_id.(pid) <- k + 1;
  (k * t.n) + pid

let restore_msg_ids t ~pid ~count =
  if count > t.next_msg_id.(pid) then t.next_msg_id.(pid) <- count

let last_checkpoint_index t ~pid =
  Vec.fold_left
    (fun acc ev ->
      match ev.kind with Checkpoint { index } -> max acc index | Send _ | Receive _ -> acc)
    (-1) t.logs.(pid)

let events_of t ~pid =
  finalize t;
  Vec.to_list t.logs.(pid)

let all_events t =
  finalize t;
  let all =
    Array.to_list t.logs |> List.concat_map Vec.to_list
  in
  List.sort (fun a b -> Int.compare a.seq b.seq) all

let truncate_to_checkpoint t ~pid ~index =
  (* sequence everything first: pending records of the truncated suffix
     must reach subscribers (they happened) before the retraction does *)
  finalize t;
  let log = t.logs.(pid) in
  let cut = ref (-1) in
  Vec.iteri
    (fun i ev ->
      match ev.kind with
      | Checkpoint { index = idx } when idx = index -> cut := i
      | Checkpoint _ | Send _ | Receive _ -> ())
    log;
  if !cut < 0 then
    invalid_arg "Trace.truncate_to_checkpoint: checkpoint not in trace";
  Vec.truncate log (!cut + 1);
  List.iter (fun f -> f ~pid) t.on_truncate

(* Serialization *)

let magic = "rdtgc-trace 1"

let to_channel t oc =
  Printf.fprintf oc "%s\n" magic;
  Printf.fprintf oc "n %d\n" t.n;
  List.iter
    (fun ev ->
      match ev.kind with
      | Checkpoint { index } -> Printf.fprintf oc "C %d %d\n" ev.pid index
      | Send { msg_id; dst } -> Printf.fprintf oc "S %d %d %d\n" ev.pid msg_id dst
      | Receive { msg_id; src } ->
        Printf.fprintf oc "R %d %d %d\n" ev.pid msg_id src)
    (all_events t)

let of_channel ic =
  let line () = try Some (input_line ic) with End_of_file -> None in
  (match line () with
  | Some l when l = magic -> ()
  | Some l -> failwith (Printf.sprintf "Trace.of_channel: bad header %S" l)
  | None -> failwith "Trace.of_channel: empty input");
  let t =
    match line () with
    | Some l -> begin
      try Scanf.sscanf l "n %d" (fun n -> create ~n)
      with Scanf.Scan_failure _ | Failure _ ->
        failwith "Trace.of_channel: missing process count"
    end
    | None -> failwith "Trace.of_channel: missing process count"
  in
  (* loaded traces may carry ids from other schemes (hand-written files);
     push every counter past them so fresh ids never collide *)
  let bump_past msg_id =
    let base = (msg_id / t.n) + 1 in
    for p = 0 to t.n - 1 do
      if t.next_msg_id.(p) < base then t.next_msg_id.(p) <- base
    done
  in
  let parse l =
    try
      match l.[0] with
      | 'C' -> Scanf.sscanf l "C %d %d" (fun pid index ->
            record_checkpoint t ~pid ~index)
      | 'S' ->
        Scanf.sscanf l "S %d %d %d" (fun pid msg_id dst ->
            record_send t ~pid ~msg_id ~dst;
            bump_past msg_id)
      | 'R' ->
        Scanf.sscanf l "R %d %d %d" (fun pid msg_id src ->
            record_receive t ~pid ~msg_id ~src)
      | _ -> failwith (Printf.sprintf "Trace.of_channel: bad line %S" l)
    with Scanf.Scan_failure _ | Invalid_argument _ ->
      failwith (Printf.sprintf "Trace.of_channel: bad line %S" l)
  in
  let rec loop () =
    match line () with
    | None -> ()
    | Some "" -> loop ()
    | Some l ->
      parse l;
      loop ()
  in
  loop ();
  t

let save t path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> to_channel t oc)

let load path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> of_channel ic)

(* Builder helpers *)

let init_with_initial_checkpoints ~n =
  let t = create ~n in
  for pid = 0 to n - 1 do
    record_checkpoint t ~pid ~index:0
  done;
  t

let checkpoint t pid =
  let index = last_checkpoint_index t ~pid + 1 in
  record_checkpoint t ~pid ~index

let send t ~src ~dst =
  let msg_id = fresh_msg_id t ~pid:src in
  record_send t ~pid:src ~msg_id ~dst;
  msg_id

let receive t ~msg_id ~src ~dst = record_receive t ~pid:dst ~msg_id ~src

let message t ~src ~dst =
  let msg_id = send t ~src ~dst in
  receive t ~msg_id ~src ~dst
