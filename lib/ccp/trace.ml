module Vec = Rdt_sim.Vec
module Stamp = Rdt_sim.Stamp

type kind =
  | Checkpoint of { index : int }
  | Send of { msg_id : int; dst : int }
  | Receive of { msg_id : int; src : int }

type event = { mutable seq : int; pid : int; kind : kind }

(* Pooled buffer of not-yet-sequenced records for one process: the engine
   event's key [(time, u, v)] plus [k], the rank of the record among those
   made by the same process under the same key (one engine event can
   record several trace events).  Struct-of-arrays rather than a vector of
   stamp records, so a sharded run buffers each record by writing five
   slots instead of allocating a record and boxing a float — per-record
   stamping was a measurable share of the multi-shard allocation storm
   (DESIGN.md §13). *)
type pending = {
  mutable p_len : int;
  mutable p_time : float array;
  mutable p_u : int array;
  mutable p_v : int array;
  mutable p_k : int array;
  mutable p_ev : event array;
}

type t = {
  n : int;
  logs : event Vec.t array;
  mutable next_seq : int;
  (* per-process msg-id counters: id = k * n + pid, so ids are unique and
     a pure function of the sender's own history — no global counter whose
     value would depend on cross-process interleaving *)
  next_msg_id : int array;
  mutable recording : bool;
  mutable on_event : (event -> unit) list;
  mutable on_truncate : (pid:int -> unit) list;
  (* When set (sharded runs), records are buffered unsequenced per process
     with a stamp drawn from this source, and {!finalize} later assigns
     [seq] in canonical order and fires [on_event] — producing the exact
     linearization the sequential engine records directly.  When unset,
     records are sequenced immediately at append (the historical path).
     The source writes into the caller's cell (no tuple per record);
     cells are per pid, not shared: under parallel dispatch several
     domains record concurrently, and a single shared cell would let two
     shards read each other's stamp (or a torn mix), corrupting the
     canonical keys.  A pid is only ever executed by its owning shard's
     domain, so [stamp_cells.(pid)] is single-writer. *)
  mutable order_source : (Stamp.t -> unit) option;
  stamp_cells : Stamp.t array;
  pending : pending array;  (* per process, so shards never share *)
  last_time : float array;
  last_u : int array;
  last_v : int array;
  last_k : int array;
}

(* Recording runs inside engine windows, concurrently across shards
   under parallel dispatch, so everything [record] (and the helpers it
   calls) writes is striped by the recording process: log vectors,
   last-stamp rows, msg-id counters, stamp cells and pending buffers are
   all per pid, and a pid only executes on its owning shard's domain.
   [finalize] and the serialization below run at a barrier (or after the
   run) and are deliberately not scopes. *)
[@@@lint.domain_scope
  "record:pid" "pending_push:p" "pending_grow:p" "fresh_msg_id:pid"]

let fresh_pending () =
  { p_len = 0; p_time = [||]; p_u = [||]; p_v = [||]; p_k = [||]; p_ev = [||] }

let create ~n =
  if n <= 0 then invalid_arg "Trace.create: n must be positive";
  {
    n;
    logs = Array.init n (fun _ -> Vec.create ());
    next_seq = 0;
    next_msg_id = Array.make n 0;
    recording = true;
    on_event = [];
    on_truncate = [];
    order_source = None;
    stamp_cells = Array.init n (fun _ -> Stamp.create ());
    pending = Array.init n (fun _ -> fresh_pending ());
    last_time = Array.make n nan;
    last_u = Array.make n 0;
    last_v = Array.make n 0;
    last_k = Array.make n 0;
  }

let n t = t.n
let set_recording t b = t.recording <- b
let on_event t f = t.on_event <- f :: t.on_event
let on_truncate t f = t.on_truncate <- f :: t.on_truncate
let set_order_source t f = t.order_source <- Some f

let pending_grow p ev =
  let cap = Array.length p.p_time in
  let ncap = if cap = 0 then 16 else 2 * cap in
  let p_time = Array.make ncap 0.0 in
  let p_u = Array.make ncap 0 in
  let p_v = Array.make ncap 0 in
  let p_k = Array.make ncap 0 in
  let p_ev = Array.make ncap ev in
  Array.blit p.p_time 0 p_time 0 p.p_len;
  Array.blit p.p_u 0 p_u 0 p.p_len;
  Array.blit p.p_v 0 p_v 0 p.p_len;
  Array.blit p.p_k 0 p_k 0 p.p_len;
  Array.blit p.p_ev 0 p_ev 0 p.p_len;
  p.p_time <- p_time;
  p.p_u <- p_u;
  p.p_v <- p_v;
  p.p_k <- p_k;
  p.p_ev <- p_ev

let pending_push p ~time ~u ~v ~k ev =
  let len = p.p_len in
  if len = Array.length p.p_time then pending_grow p ev;
  p.p_time.(len) <- time;
  p.p_u.(len) <- u;
  p.p_v.(len) <- v;
  p.p_k.(len) <- k;
  p.p_ev.(len) <- ev;
  p.p_len <- len + 1

let finalize t =
  let total = Array.fold_left (fun acc p -> acc + p.p_len) 0 t.pending in
  if total > 0 then begin
    (* flatten the per-process buffers, sort an index permutation by
       stamp, and sequence in that order — the once-per-run cost *)
    let f_time = Array.make total 0.0 in
    let f_u = Array.make total 0 in
    let f_v = Array.make total 0 in
    let f_k = Array.make total 0 in
    (* seed from the first non-empty buffer: process 0 may have buffered
       nothing even when [total > 0], leaving its [p_ev] still [||] *)
    let seed =
      let rec first i =
        if t.pending.(i).p_len > 0 then t.pending.(i).p_ev.(0)
        else first (i + 1)
      in
      first 0
    in
    let f_ev = Array.make total seed in
    let pos = ref 0 in
    Array.iter
      (fun p ->
        Array.blit p.p_time 0 f_time !pos p.p_len;
        Array.blit p.p_u 0 f_u !pos p.p_len;
        Array.blit p.p_v 0 f_v !pos p.p_len;
        Array.blit p.p_k 0 f_k !pos p.p_len;
        Array.blit p.p_ev 0 f_ev !pos p.p_len;
        pos := !pos + p.p_len;
        p.p_len <- 0)
      t.pending;
    let perm = Array.init total Fun.id in
    let compare_idx a b =
      let c = Float.compare f_time.(a) f_time.(b) in
      if c <> 0 then c
      else
        let c = Int.compare f_u.(a) f_u.(b) in
        if c <> 0 then c
        else
          let c = Int.compare f_v.(a) f_v.(b) in
          if c <> 0 then c
          else
            let c = Int.compare f_k.(a) f_k.(b) in
            if c <> 0 then c
            else Int.compare f_ev.(a).pid f_ev.(b).pid
    in
    Array.sort compare_idx perm;
    Array.iter
      (fun i ->
        let ev = f_ev.(i) in
        ev.seq <- t.next_seq;
        t.next_seq <- t.next_seq + 1;
        List.iter (fun f -> f ev) t.on_event)
      perm
  end

let record t ~pid kind =
  if pid < 0 || pid >= t.n then invalid_arg "Trace.record: bad pid";
  if t.recording then begin
    match t.order_source with
    | None ->
      let ev = { seq = t.next_seq; pid; kind } in
      (t.next_seq <- t.next_seq + 1)
      [@lint.single_writer
        "no order source means sequential or inline dispatch: a single \
         domain records (sharded runs install a source and take the \
         other branch)"];
      Vec.push t.logs.(pid) ev;
      List.iter (fun f -> f ev) t.on_event
    | Some source ->
      let cell = t.stamp_cells.(pid) in
      source cell;
      let tm = Stamp.time cell in
      let u = Stamp.u cell in
      let v = Stamp.v cell in
      let k =
        if
          Float.equal tm t.last_time.(pid)
          && u = t.last_u.(pid)
          && v = t.last_v.(pid)
        then t.last_k.(pid) + 1
        else 0
      in
      t.last_time.(pid) <- tm;
      t.last_u.(pid) <- u;
      t.last_v.(pid) <- v;
      t.last_k.(pid) <- k;
      let ev = { seq = -1; pid; kind } in
      Vec.push t.logs.(pid) ev;
      pending_push t.pending.(pid) ~time:tm ~u ~v ~k ev
  end

(* the [recording] test is replicated here so a muted trace (benchmarks,
   long soak runs) does not even allocate the [kind] constructor *)
let record_checkpoint t ~pid ~index =
  if t.recording then record t ~pid (Checkpoint { index })

let record_send t ~pid ~msg_id ~dst =
  if t.recording then record t ~pid (Send { msg_id; dst })

let record_receive t ~pid ~msg_id ~src =
  if t.recording then record t ~pid (Receive { msg_id; src })

let fresh_msg_id t ~pid =
  let k = t.next_msg_id.(pid) in
  t.next_msg_id.(pid) <- k + 1;
  (k * t.n) + pid

let restore_msg_ids t ~pid ~count =
  if count > t.next_msg_id.(pid) then t.next_msg_id.(pid) <- count

let last_checkpoint_index t ~pid =
  Vec.fold_left
    (fun acc ev ->
      match ev.kind with Checkpoint { index } -> max acc index | Send _ | Receive _ -> acc)
    (-1) t.logs.(pid)

let events_of t ~pid =
  finalize t;
  Vec.to_list t.logs.(pid)

let all_events t =
  finalize t;
  let all =
    Array.to_list t.logs |> List.concat_map Vec.to_list
  in
  List.sort (fun a b -> Int.compare a.seq b.seq) all

let truncate_to_checkpoint t ~pid ~index =
  (* sequence everything first: pending records of the truncated suffix
     must reach subscribers (they happened) before the retraction does *)
  finalize t;
  let log = t.logs.(pid) in
  let cut = ref (-1) in
  Vec.iteri
    (fun i ev ->
      match ev.kind with
      | Checkpoint { index = idx } when idx = index -> cut := i
      | Checkpoint _ | Send _ | Receive _ -> ())
    log;
  if !cut < 0 then
    invalid_arg "Trace.truncate_to_checkpoint: checkpoint not in trace";
  Vec.truncate log (!cut + 1);
  List.iter (fun f -> f ~pid) t.on_truncate

(* Serialization *)

let magic = "rdtgc-trace 1"

let to_channel t oc =
  Printf.fprintf oc "%s\n" magic;
  Printf.fprintf oc "n %d\n" t.n;
  List.iter
    (fun ev ->
      match ev.kind with
      | Checkpoint { index } -> Printf.fprintf oc "C %d %d\n" ev.pid index
      | Send { msg_id; dst } -> Printf.fprintf oc "S %d %d %d\n" ev.pid msg_id dst
      | Receive { msg_id; src } ->
        Printf.fprintf oc "R %d %d %d\n" ev.pid msg_id src)
    (all_events t)

let of_channel ic =
  let line () = try Some (input_line ic) with End_of_file -> None in
  (match line () with
  | Some l when l = magic -> ()
  | Some l -> failwith (Printf.sprintf "Trace.of_channel: bad header %S" l)
  | None -> failwith "Trace.of_channel: empty input");
  let t =
    match line () with
    | Some l -> begin
      try Scanf.sscanf l "n %d" (fun n -> create ~n)
      with Scanf.Scan_failure _ | Failure _ ->
        failwith "Trace.of_channel: missing process count"
    end
    | None -> failwith "Trace.of_channel: missing process count"
  in
  (* loaded traces may carry ids from other schemes (hand-written files);
     push every counter past them so fresh ids never collide *)
  let bump_past msg_id =
    let base = (msg_id / t.n) + 1 in
    for p = 0 to t.n - 1 do
      if t.next_msg_id.(p) < base then t.next_msg_id.(p) <- base
    done
  in
  let parse l =
    try
      match l.[0] with
      | 'C' -> Scanf.sscanf l "C %d %d" (fun pid index ->
            record_checkpoint t ~pid ~index)
      | 'S' ->
        Scanf.sscanf l "S %d %d %d" (fun pid msg_id dst ->
            record_send t ~pid ~msg_id ~dst;
            bump_past msg_id)
      | 'R' ->
        Scanf.sscanf l "R %d %d %d" (fun pid msg_id src ->
            record_receive t ~pid ~msg_id ~src)
      | _ -> failwith (Printf.sprintf "Trace.of_channel: bad line %S" l)
    with Scanf.Scan_failure _ | Invalid_argument _ ->
      failwith (Printf.sprintf "Trace.of_channel: bad line %S" l)
  in
  let rec loop () =
    match line () with
    | None -> ()
    | Some "" -> loop ()
    | Some l ->
      parse l;
      loop ()
  in
  loop ();
  t

let save t path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> to_channel t oc)

let load path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> of_channel ic)

(* Builder helpers *)

let init_with_initial_checkpoints ~n =
  let t = create ~n in
  for pid = 0 to n - 1 do
    record_checkpoint t ~pid ~index:0
  done;
  t

let checkpoint t pid =
  let index = last_checkpoint_index t ~pid + 1 in
  record_checkpoint t ~pid ~index

let send t ~src ~dst =
  let msg_id = fresh_msg_id t ~pid:src in
  record_send t ~pid:src ~msg_id ~dst;
  msg_id

let receive t ~msg_id ~src ~dst = record_receive t ~pid:dst ~msg_id ~src

let message t ~src ~dst =
  let msg_id = send t ~src ~dst in
  receive t ~msg_id ~src ~dst
