(** Zigzag paths (Netzer & Xu; paper Definition 3).

    A sequence of messages [m1..mk] is a zigzag path from [c^alpha_a] to
    [c^beta_b] iff (i) [p_a] sends [m1] after [c^alpha_a]; (ii) whenever
    [m_i] is received by [p_c], [m_(i+1)] is sent by [p_c] in the same or a
    later checkpoint interval; (iii) [p_b] receives [mk] before [c^beta_b].
    The path is causal (a C-path) when each receipt locally precedes the
    next send; otherwise it is a non-causal zigzag (Z-path).

    Reachability is computed by a message-graph BFS: from a message
    received by [p_c] in interval [gamma], every message sent by [p_c] in
    an interval [>= gamma] is reachable.  One BFS from a source checkpoint
    yields, for every process, the minimum interval in which a zigzag path
    can land ({!reach}), answering all targets at once. *)

type verdict =
  | Causal_path  (** a C-path: every hop is locally ordered receive-then-send *)
  | Non_causal_zigzag  (** a valid zigzag path that is not causal *)
  | Not_a_path  (** the sequence violates Definition 3 *)

val reach : Ccp.t -> src:Ccp.ckpt -> int array
(** [reach ccp ~src] returns an array [r] such that [r.(b)] is the minimum
    [recv_interval] over messages reachable by a zigzag path starting after
    [src] and received by process [b] ([max_int] if none).  A zigzag path
    [src ~~> c^beta_b] exists iff [r.(b) <= beta]. *)

type analyzer
(** Preprocessed message index for repeated reachability queries on one
    CCP: per-process send buckets (one sort per CCP instead of one per
    query), a message-id table, and memoized {!reach} results.

    The analyzer is incremental: before answering it folds in any
    messages the CCP gained since the last query (O(1) amortized each —
    an incremental CCP only ever appends), drops its memo when new
    messages arrived, and re-indexes from scratch when the CCP's
    {!Ccp.generation} changed (trace rollback).  It is therefore safe and
    cheap to keep one analyzer alongside a long-lived {!Ccp.Incremental}
    view and query it at every sample point. *)

val analyzer : Ccp.t -> analyzer
val reach_from : analyzer -> src:Ccp.ckpt -> int array
(** Same result as {!reach}; memoized — do not mutate. *)

val path_exists_from : analyzer -> Ccp.ckpt -> Ccp.ckpt -> bool
val cycle_from : analyzer -> Ccp.ckpt -> bool
val useless_from : analyzer -> Ccp.ckpt list
val classify_sequence_from :
  analyzer -> from_:Ccp.ckpt -> to_:Ccp.ckpt -> int list -> verdict
(** Analyzer-routed variants of the eponymous functions below: one shared
    message index answers any number of queries. *)

val path_exists : Ccp.t -> Ccp.ckpt -> Ccp.ckpt -> bool
(** [path_exists ccp c1 c2] is the paper's [c1 ~~> c2]. *)

val cycle : Ccp.t -> Ccp.ckpt -> bool
(** Zigzag cycle: [c ~~> c]. *)

val useless : Ccp.t -> Ccp.ckpt list
(** Checkpoints involved in a zigzag cycle; such checkpoints cannot be part
    of any consistent global checkpoint.  Builds one analyzer for the
    whole scan (not one send index per checkpoint). *)

val classify_sequence :
  Ccp.t -> from_:Ccp.ckpt -> to_:Ccp.ckpt -> int list -> verdict
(** Judge an explicit message-id sequence against Definition 3 (used to
    reproduce the path classifications of the paper's Figure 1). *)
