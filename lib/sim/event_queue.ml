(* Binary min-heap over (time, u, v, seq).  Cancellation is lazy: a
   cancelled entry stays in the heap with its [live] flag cleared and is
   dropped when popped, which keeps all operations O(log n) amortized.

   The (u, v) pair is a caller-supplied canonical key used by the sharded
   engine to make execution order at equal timestamps a pure function of
   the simulation, independent of insertion interleaving; the plain
   {!add}/{!add_unit} entry points set u = v = 0, so their ties fall
   through to [seq] and keep the historical insertion-order semantics.

   Entries are pooled: when an entry leaves the heap (fired or found
   cancelled) it goes onto a free stack and the next [add] recycles it
   instead of allocating, so a steady-state schedule/fire loop performs no
   minor-heap allocation at all ([add_unit]; [add] itself allocates only
   the handle box).  Handles are generation-stamped with the entry's
   sequence number, so a handle that outlives its entry — fired, recycled
   and reused for a later event — can never cancel the wrong event. *)

(* Scheduling and firing are the simulator's inner loop; rdt_lint holds
   the named functions to alloc/* so the pool actually delivers its
   zero-allocation steady state ([add] and [pop] box their results and
   are deliberately outside the hot set). *)
[@@@lint.zero_alloc_hot
  "before" "swap" "sift_up" "sift_down" "grow" "recycle" "add_entry"
  "add_unit" "add_keyed_unit" "cancel" "cancel_handle"]

type 'a entry = {
  mutable time : float;
  mutable u : int;
  mutable v : int;
  mutable seq : int;
  mutable value : 'a;
  mutable live : bool;
}

(* the int ref is the owning queue's live counter, embedded so a handle
   can be cancelled without naming its queue (the sharded engine routes
   actions to per-shard queues the caller cannot see) *)
type handle = H : 'a entry * int * int ref -> handle

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
  live_count : int ref;
  (* free stack of recycled entries; a pooled entry keeps its last [value]
     until reuse, so the pool retains at most [pool_size] stale values *)
  mutable free : 'a entry array;
  mutable free_size : int;
  (* key of the most recently popped entry, so hot loops can read it
     without the queue boxing a wider result *)
  mutable last_u : int;
  mutable last_v : int;
}

let create () =
  {
    data = [||];
    size = 0;
    next_seq = 0;
    live_count = ref 0;
    free = [||];
    free_size = 0;
    last_u = 0;
    last_v = 0;
  }

let before a b =
  a.time < b.time
  || (a.time = b.time
      && (a.u < b.u
          || (a.u = b.u && (a.v < b.v || (a.v = b.v && a.seq < b.seq)))))

let swap t i j =
  let tmp = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.data.(i) t.data.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = if l < t.size && before t.data.(l) t.data.(i) then l else i in
  let smallest =
    if r < t.size && before t.data.(r) t.data.(smallest) then r else smallest
  in
  if smallest <> i then begin
    swap t i smallest;
    sift_down t smallest
  end

let grow t entry =
  let capacity = Array.length t.data in
  if t.size = capacity then begin
    let new_capacity = max 16 (2 * capacity) in
    let data =
      (Array.make new_capacity entry
       [@lint.allow "alloc" "amortized doubling; absent from steady state"])
    in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end

let recycle t entry =
  entry.live <- false;
  if t.free_size = Array.length t.free then begin
    let free =
      (Array.make (max 16 (2 * t.free_size)) entry
       [@lint.allow "alloc" "amortized doubling; absent from steady state"])
    in
    Array.blit t.free 0 free 0 t.free_size;
    t.free <- free
  end;
  t.free.(t.free_size) <- entry;
  t.free_size <- t.free_size + 1

let add_entry t ~time ~u ~v value =
  let entry =
    if t.free_size > 0 then begin
      t.free_size <- t.free_size - 1;
      let entry = t.free.(t.free_size) in
      entry.time <- time;
      entry.u <- u;
      entry.v <- v;
      entry.seq <- t.next_seq;
      entry.value <- value;
      entry.live <- true;
      entry
    end
    else
      ({ time; u; v; seq = t.next_seq; value; live = true }
       [@lint.allow "alloc" "pool miss; steady-state adds reuse a pooled entry"])
  in
  t.next_seq <- t.next_seq + 1;
  grow t entry;
  t.data.(t.size) <- entry;
  t.size <- t.size + 1;
  incr t.live_count;
  sift_up t (t.size - 1);
  entry

let add t ~time value =
  let entry = add_entry t ~time ~u:0 ~v:0 value in
  H (entry, entry.seq, t.live_count)

let add_unit t ~time value = ignore (add_entry t ~time ~u:0 ~v:0 value)

let add_keyed t ~time ~u ~v value =
  let entry = add_entry t ~time ~u ~v value in
  H (entry, entry.seq, t.live_count)

let add_keyed_unit t ~time ~u ~v value =
  ignore (add_entry t ~time ~u ~v value)

let cancel_handle (H (entry, seq, live_count)) =
  (* the seq stamp rejects handles whose entry was recycled for a newer
     event; a merely-popped (not yet reused) entry is caught by [live] *)
  if entry.live && entry.seq = seq then begin
    entry.live <- false;
    decr live_count
  end

let cancel _t h = cancel_handle h

let pop_entry t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    Some top
  end

let rec pop t =
  match pop_entry t with
  | None -> None
  | Some entry ->
    if entry.live then begin
      decr t.live_count;
      t.last_u <- entry.u;
      t.last_v <- entry.v;
      let result = Some (entry.time, entry.value) in
      recycle t entry;
      result
    end
    else begin
      recycle t entry;
      pop t
    end

let last_u t = t.last_u
let last_v t = t.last_v

let rec peek_time t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    if top.live then Some top.time
    else begin
      (match pop_entry t with Some e -> recycle t e | None -> ());
      peek_time t
    end
  end

(* cold path of [next_time]: the head is a lazily-cancelled entry *)
let rec next_time_skip_dead t =
  if t.size = 0 then infinity
  else begin
    let top = t.data.(0) in
    if top.live then top.time
    else begin
      (match pop_entry t with Some e -> recycle t e | None -> ());
      next_time_skip_dead t
    end
  end

(* [peek_time] boxes its result in an option; the sharded engine's window
   loop reads queue heads once per shard per window, so it gets an
   allocation-free variant: a small, cross-module-inlinable head probe
   whose float result stays unboxed at the call site *)
let[@inline] next_time t =
  if t.size = 0 then infinity
  else begin
    let top = t.data.(0) in
    if top.live then top.time else next_time_skip_dead t
  end

(* Canonical key of the head entry, for cross-queue merging: the sharded
   engine's inline executor picks, among its per-shard queues, the head
   that is least by (time, u, v) — which is exactly the order one merged
   queue would pop, because the engine's canonical keys are unique across
   its queues at any timestamp.  Only meaningful straight after a
   [next_time] probe returned a finite time (which also guarantees the
   head is live). *)
let[@inline] head_u t = t.data.(0).u
let[@inline] head_v t = t.data.(0).v

let is_empty t = !(t.live_count) = 0

let length t = !(t.live_count)

let pool_size t = t.free_size
