type config = {
  min_delay : float;
  max_delay : float;
  loss_probability : float;
  fifo : bool;
}

let default =
  { min_delay = 0.5; max_delay = 1.5; loss_probability = 0.0; fifo = false }

let pp_config ppf c =
  Format.fprintf ppf "@[<h>delay=[%g,%g) loss=%g %s@]" c.min_delay c.max_delay
    c.loss_probability
    (if c.fifo then "fifo" else "non-fifo")

type t = {
  cfg : config;
  (* one independent stream per source process, derived by indexed split
     from the root: each draw is consumed in the sender's deterministic
     execution order, so channel randomness is a pure function of the
     simulation regardless of how sends from different processes
     interleave in real time (the sharded engine runs senders on
     different domains) *)
  streams : Prng.t array;
  n : int;
  (* last scheduled delivery time per directed channel, for FIFO order;
     row [src] is only ever touched while executing [src], so rows are
     shard-confined *)
  channel_clock : float array;
}

let create cfg ~n ~rng =
  if cfg.min_delay < 0.0 || cfg.max_delay < cfg.min_delay then
    invalid_arg "Network.create: bad delay bounds";
  if cfg.loss_probability < 0.0 || cfg.loss_probability > 1.0 then
    invalid_arg "Network.create: bad loss probability";
  {
    cfg;
    streams = Array.init n (fun src -> Prng.split_at rng ~index:src);
    n;
    channel_clock = Array.make (n * n) neg_infinity;
  }

let config t = t.cfg

let delivery_time t ~src ~dst ~now =
  let rng = t.streams.(src) in
  if t.cfg.loss_probability > 0.0
     && Prng.bernoulli rng ~p:t.cfg.loss_probability
  then None
  else begin
    let delay =
      if t.cfg.max_delay > t.cfg.min_delay then
        Prng.uniform_in rng ~lo:t.cfg.min_delay ~hi:t.cfg.max_delay
      else t.cfg.min_delay
    in
    let at = now +. delay in
    if t.cfg.fifo then begin
      let key = (src * t.n) + dst in
      let at = Float.max at t.channel_clock.(key) in
      t.channel_clock.(key) <- at;
      Some at
    end
    else Some at
  end

let reset_order t = Array.fill t.channel_clock 0 (t.n * t.n) neg_infinity
