(** Deterministic pseudo-random number generator (splitmix64).

    Every source of randomness in the simulator flows through a [Prng.t]
    seeded explicitly, so that a simulation is a pure function of its
    configuration.  The generator is splittable: independent sub-streams can
    be derived for sub-components (per-process workloads, the network, fault
    injection) so that adding randomness consumption to one component does
    not perturb the others. *)

type t

val create : seed:int -> t
(** [create ~seed] returns a fresh generator deterministically derived from
    [seed]. *)

val mix : int64 -> int64
(** The stateless splitmix64 finalizer: a high-quality 64-bit mixing
    function.  Exposed for keyed hashing — components that need a
    decision to be a pure function of some tuple of ints (the transport
    nemesis's per-frame fault schedule) chain [mix] over the fields
    instead of threading generator state. *)

val split : t -> t
(** [split t] derives an independent generator.  The state of [t] advances,
    but the returned stream is statistically independent from the values
    subsequently drawn from [t]. *)

val split_at : t -> index:int -> t
(** [split_at t ~index] derives the [index]-th child generator of [t]'s
    current state {e without} advancing [t]: the result is a pure function
    of [(state, index)], so [split_at t ~index:i] called twice (with no
    draws from [t] in between) returns identical streams, and distinct
    indices give statistically independent streams.  The sharded engine
    derives per-process and per-shard streams this way, which is what makes
    a simulation's randomness independent of shard count and of the order
    in which components consume it.  [index] must be non-negative. *)

val bits64 : t -> int64
(** Next raw 64-bit output of the underlying splitmix64 stream. *)

val int : t -> int -> int
(** [int t bound] draws a uniform integer in [\[0, bound)].  [bound] must be
    positive. *)

val float : t -> float -> float
(** [float t bound] draws a uniform float in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> p:float -> bool
(** [bernoulli t ~p] is [true] with probability [p]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed positive float with the given mean; used for
    Poisson message/checkpoint processes. *)

val uniform_in : t -> lo:float -> hi:float -> float
(** Uniform float in [\[lo, hi)]. *)

val pick : t -> 'a array -> 'a
(** Uniformly random element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
