(** Deterministic discrete-event execution engine, optionally sharded
    across OCaml domains.

    An engine owns the virtual clock, the event queues and the channel
    model.  Processes are identified by integers [0 .. n-1].  Two kinds of
    events exist: message deliveries (created by {!send} through the
    network model) and scheduled actions (arbitrary closures, used for
    workload timers, basic-checkpoint timers and fault injection).

    {2 Sharding}

    With [shards = k > 1], processes are partitioned into [k] contiguous
    blocks, each with its own event queue, and {!run} advances the blocks
    in rounds bounded by conservative time windows.  Per round, shard [d]
    with earliest pending event [e_d] processes everything strictly below

    {[ hi_d = min(gb, min_{s<>d} e_s + L, e_d + 2L) ]}

    where the lookahead [L] is the network's minimum message delay (hence
    [shards > 1] requires [min_delay > 0]) and [gb] is the next global
    action or the run limit.  Any cross-shard influence descends from an
    event currently queued somewhere, so no arrival into [d] can land
    below [hi_d]; shards clustered at the same virtual time get the
    classic symmetric [w + L] window, while a shard running ahead of the
    field advances up to [2L] per round ([?autotune:false] forces the
    symmetric window everywhere).

    Dispatch is hardware-aware: when the host has at least [k] cores,
    rounds run on a persistent team of pinned domains (borrowed from the
    process-wide {!Rdt_parallel.Barrier_team}), with cross-shard sends
    buffered in pooled per-pair mailboxes drained at the round barrier.
    When it does not, windows buy nothing — they exist so domains can run
    between barriers without seeing each other — so the engine drops them
    entirely and the calling domain pops whichever queue holds the
    canonically least head (a k-way merge over a cached row of head
    times).  Because canonical keys are unique across the engine's queues
    at any timestamp, the merge replays {e exactly} the one-queue
    sequential order while keeping the shallower per-shard heaps.
    Steady-state execution allocates nothing on either path.

    Execution order is {e identical} at every shard count: simultaneous
    events are ordered by canonical keys that are pure functions of the
    simulation (destination/owner process and per-channel or per-process
    counters) rather than insertion order, and the sequential executor
    replays the same order.  A simulation is therefore a pure function of
    [(seed, config)] — not of [shards], which only buys wall-clock time.

    Events split into {e routed} events — deliveries, and actions given
    an [owner] or [pin] — which execute on the process's shard, and
    {e global} actions (no [owner]/[pin]) which execute at a window
    barrier on the calling domain, after every routed event of the same
    timestamp.  Handlers of routed events must stay within their shard:
    they may send from their own process and schedule actions routed to
    processes of the same shard, but mutating state owned by another
    shard, scheduling globals, {!set_up} or {!flush_in_flight} from a
    routed handler are errors (the engine raises on the ones it can see).
    Global actions run single-threaded and may do all of the above.

    Processes can be marked down ({!set_up}); deliveries and owned actions
    addressed to a down process are silently discarded, which models the
    crash semantics of the paper (volatile state lost, no processing while
    down).  {!flush_in_flight} drops every message currently in transit,
    which a centralized recovery session uses to discard in-transit
    messages (the paper's CCP excludes lost and in-transit messages). *)

type 'msg t

type stats = {
  mutable sent : int;  (** messages handed to {!send} *)
  mutable delivered : int;  (** deliveries executed *)
  mutable lost : int;  (** dropped by the channel loss model *)
  mutable dropped_down : int;  (** arrived while the destination was down *)
  mutable flushed : int;  (** discarded by {!flush_in_flight} *)
  mutable events : int;  (** total events executed *)
}

val create :
  n:int ->
  seed:int ->
  net:Network.config ->
  ?shards:int ->
  ?autotune:bool ->
  unit ->
  'msg t
(** [?shards] (default [1]) is clamped to [n].  [?autotune] (default
    [true]) enables per-shard asymmetric window boundaries and
    hardware-aware dispatch (merged inline execution when the host has
    fewer cores than shards); with [false], every round uses the
    symmetric [w + L] window on a full domain team regardless of the
    host.  Neither setting affects the event order — only wall-clock.
    @raise Invalid_argument if [shards > 1] and [net.min_delay <= 0]. *)

val n : _ t -> int

val shards : _ t -> int
(** Effective shard count (after clamping to [n]). *)

val shard_of_pid : _ t -> int -> int
(** Which shard executes the given process — a pure function of
    [(n, shards)].  Used by callers that keep per-shard counters. *)

val parallel_dispatch : _ t -> bool
(** Whether {!run} will interleave processes across domains.  [false] for
    single-shard engines {e and} for sharded engines that will execute
    inline (merged order) because the host lacks the cores — in both
    cases events run, and are observed by callbacks, in canonical order
    already, so consumers such as the trace can skip deferred
    stamp-merging. *)

val shard_bounds : _ t -> int -> int * int
(** [shard_bounds t s] is the contiguous pid range [\[lo, hi)] owned by
    shard [s] — the iteration space for callers that build or scan
    per-process state shard by shard (e.g. the Runner's shard-local
    blocks). *)

val now : _ t -> float
(** Current virtual time of the calling context: inside an event handler,
    the executing shard's clock (= the event's timestamp); at a barrier or
    outside {!run}, the global clock. *)

val rng : _ t -> Prng.t
(** The engine's root generator; split it rather than drawing directly if
    you need an independent stream. *)

val network : _ t -> Network.t

val current_stamp : _ t -> float * int * int
(** Canonical key [(time, u, v)] of the event the calling context is
    executing — the engine-wide total order on events.  Outside any event,
    returns a fresh pre-run stamp that sorts before every event (and
    advances per call). *)

val read_stamp : _ t -> Stamp.t -> unit
(** {!current_stamp} written into a caller-owned cell instead of a fresh
    tuple — the allocation-free form the trace uses as its order source
    in sharded runs to merge per-process logs deterministically (one call
    per trace record; a tuple per record was a measurable share of the
    multi-shard allocation storm, DESIGN.md §13). *)

val set_receiver : 'msg t -> int -> (src:int -> 'msg -> unit) -> unit
(** [set_receiver t p f] installs the delivery callback of process [p].
    Must be called for every process before the first delivery. *)

val send : 'msg t -> ?reliable:bool -> src:int -> dst:int -> 'msg -> unit
(** Transmit a message through the channel model.  Delivery (if the message
    is not lost) happens at a later virtual time, via the receiver
    callback of [dst].  [?reliable] (default [false]) bypasses the loss
    model — used for the control messages of coordinated GC baselines,
    which assume reliable channels (the paper's point of contrast).
    From a routed handler, [src] must belong to the executing shard. *)

val schedule :
  'msg t ->
  ?owner:int ->
  ?pin:int ->
  at:float ->
  (unit -> unit) ->
  Event_queue.handle
(** [schedule t ?owner ?pin ~at f] runs [f] at virtual time [at].
    [owner] routes the action to that process's shard {e and} skips it if
    the process is down when it fires; [pin] routes without the skip
    (timers that must survive their process being down, e.g. to re-arm).
    With neither, the action is {e global}: it executes at a window
    barrier after all routed events of the same timestamp, and must not
    be scheduled from inside a routed handler of a sharded engine.
    [at] must not precede the current time. *)

val schedule_in :
  'msg t ->
  ?owner:int ->
  ?pin:int ->
  delay:float ->
  (unit -> unit) ->
  Event_queue.handle
(** Convenience wrapper: {!schedule} at [now + delay]. *)

val cancel : 'msg t -> Event_queue.handle -> unit

val is_up : _ t -> int -> bool

val set_up : _ t -> int -> bool -> unit
(** Not callable from a routed handler of a sharded engine (crash and
    recovery are global actions). *)

val flush_in_flight : _ t -> unit
(** Drop every message currently in transit and reset FIFO channel order.
    Not callable from a routed handler of a sharded engine. *)

val step : _ t -> bool
(** Execute the next event ([shards = 1], or a sharded engine executing
    inline — the merged order is per-event) or the next conservative
    window on the calling domain (a sharded engine with a team — same
    event order as {!run}, without parallel dispatch).  Returns [false]
    if nothing was left. *)

val run : ?until:float -> _ t -> unit
(** Execute events until the queues are empty or the next event is strictly
    after [until].  When stopped by [until], the clock is advanced to
    [until].  With [shards > 1] and enough cores this borrows the
    process-wide domain team for the duration of the call (falling back
    to a private team if it is busy); with fewer cores than shards the
    merged inline executor runs on the calling domain. *)

val stats : _ t -> stats
(** Counters merged across shards (a fresh record; mutating it does not
    affect the engine). *)
