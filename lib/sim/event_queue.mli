(** Priority queue of timed events for the discrete-event engine.

    Events are ordered by timestamp; ties are broken by a monotonically
    increasing sequence number assigned at insertion, so the execution order
    of simultaneous events is deterministic (insertion order).  Entries can
    be cancelled lazily via the handle returned by {!add}.

    Heap entries are recycled through an internal free list: a steady-state
    schedule/fire loop performs no allocation beyond the handle box, and
    none at all through {!add_unit}.  A pooled entry retains the last value
    it carried until it is reused; the pool never shrinks, so a queue that
    once held [k] events keeps O(k) entries alive — both are deliberate
    trade-offs for an allocation-free simulator hot path. *)

type 'a t

type handle
(** Token identifying a scheduled entry; used for cancellation. *)

val create : unit -> 'a t

val add : 'a t -> time:float -> 'a -> handle
(** [add q ~time v] schedules [v] at [time] and returns its handle. *)

val add_unit : 'a t -> time:float -> 'a -> unit
(** {!add} without materializing a handle — the common case (the engine's
    message deliveries are never cancelled individually).  Allocation-free
    once the pool is warm. *)

val cancel : 'a t -> handle -> unit
(** [cancel q h] marks the entry as cancelled; it will be skipped when it
    reaches the head of the queue.  Cancelling twice, or cancelling an
    already-popped entry, is a no-op — handles are generation-stamped, so
    this holds even after the underlying pooled entry has been reused for
    a later event. *)

val pop : 'a t -> (float * 'a) option
(** Removes and returns the earliest non-cancelled entry, or [None] if the
    queue is (effectively) empty. *)

val peek_time : 'a t -> float option
(** Timestamp of the earliest non-cancelled entry, without removing it. *)

val is_empty : 'a t -> bool
(** [true] iff no non-cancelled entry remains. *)

val length : 'a t -> int
(** Number of live (non-cancelled) entries. *)

val pool_size : 'a t -> int
(** Number of recycled entries currently waiting on the free list —
    introspection for the pool-invariant tests. *)
