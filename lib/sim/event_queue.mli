(** Priority queue of timed events for the discrete-event engine.

    Events are ordered by timestamp; ties are broken first by an optional
    caller-supplied canonical key [(u, v)] ({!add_keyed}), then by a
    monotonically increasing sequence number assigned at insertion.  The
    plain {!add}/{!add_unit} entry points use [u = v = 0], so their ties
    resolve in insertion order (the historical semantics); the sharded
    engine uses {!add_keyed} with interleaving-independent keys so that
    the order of simultaneous events does not depend on which shard
    inserted first.  Entries can be cancelled lazily via the handle
    returned by {!add}.

    Heap entries are recycled through an internal free list: a steady-state
    schedule/fire loop performs no allocation beyond the handle box, and
    none at all through {!add_unit}.  A pooled entry retains the last value
    it carried until it is reused; the pool never shrinks, so a queue that
    once held [k] events keeps O(k) entries alive — both are deliberate
    trade-offs for an allocation-free simulator hot path. *)

type 'a t

type handle
(** Token identifying a scheduled entry; used for cancellation. *)

val create : unit -> 'a t

val add : 'a t -> time:float -> 'a -> handle
(** [add q ~time v] schedules [v] at [time] and returns its handle. *)

val add_unit : 'a t -> time:float -> 'a -> unit
(** {!add} without materializing a handle — the common case (the engine's
    message deliveries are never cancelled individually).  Allocation-free
    once the pool is warm. *)

val add_keyed : 'a t -> time:float -> u:int -> v:int -> 'a -> handle
(** [add_keyed q ~time ~u ~v x] schedules [x] with an explicit canonical
    tie-break key: entries at equal [time] order by [(u, v)]
    lexicographically (before falling back to insertion order).  Keys are
    how the sharded engine makes simultaneous-event order independent of
    insertion interleaving. *)

val add_keyed_unit : 'a t -> time:float -> u:int -> v:int -> 'a -> unit
(** {!add_keyed} without materializing a handle; allocation-free once the
    pool is warm. *)

val cancel : 'a t -> handle -> unit
(** [cancel q h] marks the entry as cancelled; it will be skipped when it
    reaches the head of the queue.  Cancelling twice, or cancelling an
    already-popped entry, is a no-op — handles are generation-stamped, so
    this holds even after the underlying pooled entry has been reused for
    a later event. *)

val cancel_handle : handle -> unit
(** {!cancel} without naming the queue: handles embed enough of their
    owner to cancel from anywhere (the sharded engine routes actions to
    per-shard queues the caller never sees). *)

val pop : 'a t -> (float * 'a) option
(** Removes and returns the earliest non-cancelled entry, or [None] if the
    queue is (effectively) empty. *)

val last_u : 'a t -> int
val last_v : 'a t -> int
(** Canonical key of the entry most recently returned by {!pop} — exposed
    as queue state so the engine's hot loop reads it without a wider
    boxed result.  Meaningless before the first pop. *)

val peek_time : 'a t -> float option
(** Timestamp of the earliest non-cancelled entry, without removing it. *)

val next_time : 'a t -> float
(** {!peek_time} without the option: the earliest non-cancelled timestamp,
    or [infinity] when the queue is (effectively) empty.  Small enough to
    inline across modules, so the sharded engine's window loop reads queue
    heads without boxing a float or an option. *)

val head_u : 'a t -> int
val head_v : 'a t -> int
(** Canonical key of the head entry, for cross-queue merging (the sharded
    engine's inline executor pops whichever of its queues has the least
    head by [(time, u, v)]).  Only meaningful immediately after
    {!next_time} returned a finite value, which also guarantees the head
    is live. *)

val is_empty : 'a t -> bool
(** [true] iff no non-cancelled entry remains. *)

val length : 'a t -> int
(** Number of live (non-cancelled) entries. *)

val pool_size : 'a t -> int
(** Number of recycled entries currently waiting on the free list —
    introspection for the pool-invariant tests. *)
