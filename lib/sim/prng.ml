(* Splitmix64: Steele, Lea & Flood, "Fast splittable pseudorandom number
   generators" (OOPSLA 2014).  Chosen because it is trivially splittable,
   passes BigCrush, and needs only 64-bit arithmetic. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create ~seed = { state = mix (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = bits64 t }

(* Indexed split: child [i] is a pure function of the parent's *current*
   state and [i]; the parent does not advance, so any number of shards can
   derive their streams from one root without perturbing each other.  The
   child state is double-mixed so it never equals a raw output of the
   parent's own sequential stream. *)
let split_at t ~index =
  if index < 0 then invalid_arg "Prng.split_at: index must be non-negative";
  let z =
    Int64.add t.state (Int64.mul golden_gamma (Int64.of_int (index + 1)))
  in
  { state = mix (Int64.logxor (mix z) 0xD1B54A32D192ED03L) }

(* Non-negative 62-bit int extracted from the top bits. *)
let positive_int t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let max_int62 = (1 lsl 62) - 1 in
  let limit = max_int62 - (max_int62 mod bound) in
  let rec draw () =
    let v = positive_int t in
    if v >= limit then draw () else v mod bound
  in
  draw ()

let float t bound =
  (* 53 uniform mantissa bits. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int v /. 9007199254740992.0 *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t ~p = float t 1.0 < p

let exponential t ~mean =
  if mean <= 0.0 then invalid_arg "Prng.exponential: mean must be positive";
  let u = 1.0 -. float t 1.0 in
  -.mean *. log u

let uniform_in t ~lo ~hi = lo +. float t (hi -. lo)

let pick t a =
  if Array.length a = 0 then invalid_arg "Prng.pick: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
