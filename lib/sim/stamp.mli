(** Reusable cell for an engine event's canonical stamp [(time, u, v)].

    The sharded engine writes the stamp of the event the calling context
    is executing into a caller-owned cell ({!Engine.read_stamp}) instead
    of returning a tuple, so per-record stamp reads on the trace hot path
    allocate nothing.  The timestamp is stored in a one-element float
    array, keeping writes unboxed. *)

type t

val create : unit -> t
(** A fresh cell; contents are meaningless until the first {!set}. *)

val time : t -> float
val u : t -> int
val v : t -> int

val set : t -> time:float -> u:int -> v:int -> unit
