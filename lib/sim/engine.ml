module Barrier_team = Rdt_parallel.Barrier_team

type 'msg event =
  | Deliver of { src : int; dst : int; payload : 'msg; epoch : int }
  | Action of { owner : int option; f : unit -> unit }

type stats = {
  mutable sent : int;
  mutable delivered : int;
  mutable lost : int;
  mutable dropped_down : int;
  mutable flushed : int;
  mutable events : int;
}

(* Canonical event keys.
   Execution order must be a pure function of (seed, config), independent
   of shard count and of which shard inserted an event first, so ties at
   equal virtual time are broken by an interleaving-independent key
   [(u, v)] instead of insertion order:

     delivery to [dst]      u = dst lsl 1         v = chan_seq * n + src
     action routed to [p]   u = (p lsl 1) lor 1   v = per-process counter
     global action          u = max_int           v = global counter

   [chan_seq] is a per-(src,dst) counter assigned by the sender (in the
   sender's own deterministic execution order), the action counters are
   assigned at scheduling time (in the owning process's deterministic
   order, or at a barrier for globals).  Global actions carry the largest
   [u], so at any timestamp every process-routed event precedes every
   global — which is exactly the order the windowed executor produces
   when it closes a window before running globals.  The sequential
   (shards = 1) executor uses one queue ordered by the same keys, so both
   modes replay the identical event sequence. *)

(* The window loop below is the sharded simulator's inner loop; rdt_lint
   holds the named functions to alloc/* so a steady-state window allocates
   nothing beyond what the executed events themselves allocate (see
   DESIGN.md §13 for the measured storm this discipline replaced). *)
(* [fmin], [now] and [Event_queue.next_time] are float-returning [@inline]
   accessors: they stay out of the hot set (the boxed-float rule is about
   out-of-line returns; inlined into these loops the floats stay unboxed),
   like [Event_queue.add]/[pop]. *)
[@@@lint.zero_alloc_hot
  "self_shard" "read_stamp" "step_shard" "process_shard" "window_job"
  "grow_outcell" "outbox_push" "drain_outboxes" "any_local_le" "window_round"
  "note_insert" "pick_verify" "pick_merged" "exec_merged" "step_merged"
  "run_merged" "finish_mt"]

(* The mt/* ownership contract (DESIGN.md §16).  These functions execute
   inside a window — on a team member's domain under parallel dispatch —
   so every mutable write in them must stay on state owned by their
   declared root: the shard/slice index ([window_job], [process_shard]),
   the shard record itself ([step_shard], [execute]), the caller's stamp
   cell ([read_stamp]), the sending process ([send], and [outbox_push],
   whose mailbox row [ss] belongs to the writing shard), the owning
   process of a scheduled action ([schedule]), or the cell being grown
   ([grow_outcell], [note_insert] — a shard only lowers its own cached
   head-time entry during a window, see the comment at [note_insert]).
   The barrier-side functions ([dispatch], [drain_outboxes],
   [window_round], [exec_globals_at], the merged executor, [create]) run
   on the caller's domain with the team parked and are deliberately not
   scopes. *)
[@@@lint.domain_scope
  "window_job:s" "process_shard:s" "step_shard:sh" "execute:sh"
  "read_stamp:c" "send:src" "schedule:owner:pin" "note_insert:qi"
  "outbox_push:ss" "grow_outcell:box"]
[@@@lint.domain_index "self_shard"]

let[@inline] fmin (a : float) (b : float) = if a < b then a else b

type 'msg shard = {
  queue : 'msg event Event_queue.t;
  (* one-element array, not a mutable float field: the clock is written on
     every event pop, and a float store into a mixed record would box *)
  clock : float array;
  st : stats;
  (* canonical key of the event this shard is currently executing; the
     trace reads it through [read_stamp] to timestamp its records *)
  mutable cur_u : int;
  mutable cur_v : int;
}

(* Pooled inter-shard mailbox cell, struct-of-arrays so a cross-shard send
   under parallel dispatch writes four slots instead of allocating a
   record per message.  Only the parallel (team) executor uses mailboxes
   at all — inline windowed execution inserts straight into the
   destination queue (see [send]). *)
type 'msg outcell = {
  mutable o_len : int;
  mutable o_time : float array;
  mutable o_u : int array;
  mutable o_v : int array;
  mutable o_ev : 'msg event array;
}

(* [Windows] = shards executing their slices; [Global] = at a window
   barrier on the caller's domain; [Idle] = not inside [run]. *)
type phase = Idle | Windows | Global

let in_windows = function Windows -> true | Idle | Global -> false

type 'msg t = {
  n : int;
  nshards : int;
  block : int;  (* pids [s*block, (s+1)*block) live on shard s *)
  shard_of : int array;
  rng : Prng.t;
  net : Network.t;
  shards : 'msg shard array;
  global : 'msg event Event_queue.t;  (* unrouted actions; barrier-only *)
  gclock : float array;  (* one element; see [shard.clock] *)
  mutable gcur_v : int;  (* v of the global action being executed *)
  mutable phase : phase;
  mutable epoch : int;  (* bumped by flush_in_flight; stale deliveries die *)
  up : bool array;
  receivers : (src:int -> 'msg -> unit) option array;
  chan_seq : int array;  (* per-(src,dst) send counter *)
  act_seq : int array;  (* per-process scheduled-action counter *)
  mutable glob_seq : int;
  mutable setup_seq : int;  (* stamps records made outside any event *)
  scratch : Stamp.t;  (* backs the tuple-returning [current_stamp] *)
  (* inter-shard mailboxes (parallel dispatch only): cell
     [src_shard * nshards + dst_shard] is written only by [src_shard]
     during a window and drained into the destination queues by the
     caller at the barrier.  [out_dirty.(s)] = shard s pushed something
     this window; rows of clean shards are skipped at the drain. *)
  outbox : 'msg outcell array;
  out_dirty : bool array;
  lookahead : float;  (* conservative window width = min message delay *)
  autotune : bool;  (* per-shard asymmetric window boundaries (§13) *)
  (* domains used by [run]: [nshards] when the host has that much
     hardware parallelism (or autotuning is off), else 1 — windowed
     execution inline on the caller, no team, no barriers, no mailboxes *)
  workers : int;
  (* window-executor state, preallocated so the loop allocates nothing.
     [etimes] is one contiguous row of cached head times — entry [s] for
     shard [s]'s queue, entry [nshards] for the global queue.  The merged
     executor maintains it as a lower bound on each queue's true head
     time ([=] for a freshly refreshed entry): inserts lower the bound
     ([note_insert]), pops refresh it exactly, lazy cancellation only
     raises the true head so the bound stays valid.  Its argmin then
     scans one or two cache lines instead of dereferencing [k + 1]
     scattered heap heads per event.  The windowed executor reuses the
     first [nshards] entries as per-round scratch (it recomputes them
     every round, which trivially satisfies the bound). *)
  etimes : float array;
  his : float array;  (* per-shard window boundary for this round *)
  wscratch : float array;  (* [min; second-min] of etimes *)
  mutable win_inclusive : bool;  (* close events at exactly the boundary *)
  mutable active_shard : int;  (* slice the caller runs (inline dispatch) *)
  mutable parallel : bool;  (* inside a team round *)
  mutable job : int -> unit;  (* the one window job, reused every round *)
}

let fresh_stats () =
  { sent = 0; delivered = 0; lost = 0; dropped_down = 0; flushed = 0; events = 0 }

let n t = t.n
let shards t = t.nshards

let shard_of_pid t pid =
  if pid < 0 || pid >= t.n then invalid_arg "Engine.shard_of_pid: bad pid";
  t.shard_of.(pid)

let shard_bounds t s =
  if s < 0 || s >= t.nshards then invalid_arg "Engine.shard_bounds: bad shard";
  (* ceil-division blocks can leave trailing shards empty (n=5, shards=4
     gives blocks of 2 and an empty shard 3): clamp both ends *)
  (min t.n (s * t.block), min t.n ((s + 1) * t.block))

let rng t = t.rng
let network t = t.net

(* Whether [run] interleaves processes across domains.  [false] covers
   the sequential executor and the merged inline executor, both of which
   execute (and therefore record) in canonical order already — consumers
   like the trace use this to skip deferred stamp-merging entirely. *)
let parallel_dispatch t = t.nshards > 1 && t.workers > 1

(* the shard whose slice the current domain is executing; under parallel
   dispatch the team member index is the shard index, under inline
   dispatch the engine tracks the slice it is running itself (the caller
   is team member 0, which would misattribute every non-zero slice) *)
let self_shard t =
  if t.parallel then Barrier_team.self_index () else t.active_shard

let now t =
  if t.nshards = 1 then t.shards.(0).clock.(0)
  else
    match t.phase with
    | Windows -> t.shards.(self_shard t).clock.(0)
    | Global | Idle -> t.gclock.(0)

let read_stamp t (c : Stamp.t) =
  match t.phase with
  | Idle ->
    (* setup-time records (initial checkpoints): ordered before every
       event, in call order *)
    let k = t.setup_seq in
    (t.setup_seq <- k + 1)
    [@lint.single_writer
      "Idle phase: no window is executing, so the caller's domain is the \
       only writer"];
    Stamp.set c ~time:neg_infinity ~u:0 ~v:k
  | Global -> Stamp.set c ~time:t.gclock.(0) ~u:max_int ~v:t.gcur_v
  | Windows ->
    let sh = t.shards.(self_shard t) in
    Stamp.set c ~time:sh.clock.(0) ~u:sh.cur_u ~v:sh.cur_v

let current_stamp t =
  read_stamp t t.scratch;
  (Stamp.time t.scratch, Stamp.u t.scratch, Stamp.v t.scratch)

let stats t =
  let acc = fresh_stats () in
  Array.iter
    (fun sh ->
      acc.sent <- acc.sent + sh.st.sent;
      acc.delivered <- acc.delivered + sh.st.delivered;
      acc.lost <- acc.lost + sh.st.lost;
      acc.dropped_down <- acc.dropped_down + sh.st.dropped_down;
      acc.flushed <- acc.flushed + sh.st.flushed;
      acc.events <- acc.events + sh.st.events)
    t.shards;
  acc

let set_receiver t p f =
  if p < 0 || p >= t.n then invalid_arg "Engine.set_receiver: bad pid";
  t.receivers.(p) <- Some f

(* --- pooled mailboxes (parallel dispatch only) ------------------------- *)

let grow_outcell box ev =
  let cap = Array.length box.o_time in
  let ncap = if cap = 0 then 8 else 2 * cap in
  let o_time =
    (Array.make ncap 0.0
     [@lint.allow "alloc" "amortized doubling; absent from steady state"])
  in
  let o_u =
    (Array.make ncap 0
     [@lint.allow "alloc" "amortized doubling; absent from steady state"])
  in
  let o_v =
    (Array.make ncap 0
     [@lint.allow "alloc" "amortized doubling; absent from steady state"])
  in
  let o_ev =
    (Array.make ncap ev
     [@lint.allow "alloc" "amortized doubling; absent from steady state"])
  in
  Array.blit box.o_time 0 o_time 0 box.o_len;
  Array.blit box.o_u 0 o_u 0 box.o_len;
  Array.blit box.o_v 0 o_v 0 box.o_len;
  Array.blit box.o_ev 0 o_ev 0 box.o_len;
  box.o_time <- o_time;
  box.o_u <- o_u;
  box.o_v <- o_v;
  box.o_ev <- o_ev

let outbox_push t ss ds ~time ~u ~v ev =
  let box = t.outbox.((ss * t.nshards) + ds) in
  let len = box.o_len in
  if len = Array.length box.o_time then grow_outcell box ev;
  box.o_time.(len) <- time;
  box.o_u.(len) <- u;
  box.o_v.(len) <- v;
  box.o_ev.(len) <- ev;
  box.o_len <- len + 1;
  t.out_dirty.(ss) <- true

(* a pooled cell keeps the events of its last window alive until they are
   overwritten — the same bounded-staleness trade-off as Event_queue's
   entry pool *)
let drain_outboxes t =
  let k = t.nshards in
  for ss = 0 to k - 1 do
    if t.out_dirty.(ss) then begin
      t.out_dirty.(ss) <- false;
      let base = ss * k in
      for ds = 0 to k - 1 do
        let box = t.outbox.(base + ds) in
        let len = box.o_len in
        if len > 0 then begin
          let q = t.shards.(ds).queue in
          for j = 0 to len - 1 do
            Event_queue.add_keyed_unit q ~time:box.o_time.(j) ~u:box.o_u.(j)
              ~v:box.o_v.(j) box.o_ev.(j)
          done;
          box.o_len <- 0
        end
      done
    end
  done

(* --- sends and schedules ----------------------------------------------- *)

(* maintain the cached head-time row across a direct queue insert; under
   parallel dispatch a shard only inserts into its own queue (cross-shard
   goes through the outboxes), so concurrent writes hit disjoint entries *)
let[@inline] note_insert t qi (at : float) =
  if at < t.etimes.(qi) then t.etimes.(qi) <- at

let send t ?(reliable = false) ~src ~dst msg =
  if dst < 0 || dst >= t.n then invalid_arg "Engine.send: bad destination";
  if src < 0 || src >= t.n then invalid_arg "Engine.send: bad source";
  let mt = t.nshards > 1 in
  let ss = t.shard_of.(src) in
  if mt && in_windows t.phase && ss <> self_shard t then
    invalid_arg "Engine.send: send on behalf of a process of another shard";
  let sh = t.shards.(ss) in
  sh.st.sent <- sh.st.sent + 1;
  let tnow = now t in
  let delivery =
    match Network.delivery_time t.net ~src ~dst ~now:tnow with
    | None when reliable ->
      (* reliable control channel: retransmission is abstracted away as a
         delivery at the far end of the delay range *)
      Some (tnow +. (Network.config t.net).Network.max_delay)
    | d -> d
  in
  match delivery with
  | None -> sh.st.lost <- sh.st.lost + 1
  | Some at ->
    let key = (src * t.n) + dst in
    let cseq = t.chan_seq.(key) in
    t.chan_seq.(key) <- cseq + 1;
    let u = dst lsl 1 and v = (cseq * t.n) + src in
    let ev = Deliver { src; dst; payload = msg; epoch = t.epoch } in
    let ds = t.shard_of.(dst) in
    (* deliveries are never cancelled individually (flush works by epoch),
       so skip the handle.  Cross-shard sends go through a mailbox only
       under parallel dispatch, where the destination queue belongs to
       another domain; inline windowed execution inserts directly — the
       arrival is at [>= send_time + lookahead], beyond every slice
       boundary of this window, so the destination can never have passed
       it (DESIGN.md §13). *)
    if t.parallel && in_windows t.phase && ds <> ss then
      outbox_push t ss ds ~time:at ~u ~v ev
    else
      begin
        Event_queue.add_keyed_unit t.shards.(ds).queue ~time:at ~u ~v ev;
        note_insert t ds at
      end
      [@lint.single_writer
        "cross-shard under parallel dispatch took the outbox branch above; \
         here either ds = sender's shard or a single domain runs every \
         slice (inline dispatch)"]

let schedule t ?owner ?pin ~at f =
  if at < now t then invalid_arg "Engine.schedule: time in the past";
  let routing = match owner with Some _ -> owner | None -> pin in
  match routing with
  | Some p ->
    if p < 0 || p >= t.n then invalid_arg "Engine.schedule: bad pid";
    let ds = t.shard_of.(p) in
    if t.nshards > 1 && in_windows t.phase && ds <> self_shard t then
      invalid_arg "Engine.schedule: action routed to another shard";
    let v = t.act_seq.(p) in
    t.act_seq.(p) <- v + 1;
    let h =
      Event_queue.add_keyed t.shards.(ds).queue ~time:at ~u:((p lsl 1) lor 1)
        ~v
        (Action { owner; f })
    in
    note_insert t ds at;
    h
  | None ->
    begin
      if t.nshards > 1 && in_windows t.phase then
        invalid_arg
          "Engine.schedule: global (unrouted) action from inside a shard; \
           give it an owner or pin";
      let v = t.glob_seq in
      t.glob_seq <- v + 1;
      let q, qi =
        if t.nshards = 1 then (t.shards.(0).queue, 0) else (t.global, t.nshards)
      in
      let h =
        Event_queue.add_keyed q ~time:at ~u:max_int ~v
          (Action { owner = None; f })
      in
      note_insert t qi at;
      h
    end
    [@lint.single_writer
      "the invalid_arg above rejects this branch inside windows; at a \
       barrier the caller's domain is alone"]

let schedule_in t ?owner ?pin ~delay f =
  schedule t ?owner ?pin ~at:(now t +. delay) f

let cancel _t h = Event_queue.cancel_handle h

let is_up t p = t.up.(p)

let set_up t p b =
  if t.nshards > 1 && in_windows t.phase then
    invalid_arg "Engine.set_up: only from a barrier context";
  t.up.(p) <- b

let flush_in_flight t =
  if t.nshards > 1 && in_windows t.phase then
    invalid_arg "Engine.flush_in_flight: only from a barrier context";
  (* mailboxes are empty at any barrier (drained on entry), so bumping the
     epoch kills precisely the deliveries still queued *)
  t.epoch <- t.epoch + 1;
  Network.reset_order t.net

let execute t sh = function
  | Action { owner; f } -> begin
    match owner with
    | Some p when not t.up.(p) -> ()
    | Some _ | None -> f ()
  end
  | Deliver { src; dst; payload; epoch } ->
    if epoch <> t.epoch then sh.st.flushed <- sh.st.flushed + 1
    else if not t.up.(dst) then sh.st.dropped_down <- sh.st.dropped_down + 1
    else begin
      match t.receivers.(dst) with
      | None -> invalid_arg "Engine: delivery to process without receiver"
      | Some f ->
        sh.st.delivered <- sh.st.delivered + 1;
        f ~src payload
    end

(* --- sequential executor (shards = 1) --------------------------------- *)

let step_shard t sh =
  match Event_queue.pop sh.queue with
  | None -> false
  | Some (time, ev) ->
    if time > sh.clock.(0) then sh.clock.(0) <- time;
    sh.cur_u <- Event_queue.last_u sh.queue;
    sh.cur_v <- Event_queue.last_v sh.queue;
    sh.st.events <- sh.st.events + 1;
    execute t sh ev;
    true

let run_seq t ~limit =
  t.phase <- Windows;
  let sh = t.shards.(0) in
  (* [next_time] is [infinity] on an empty queue, so the emptiness check
     and the limit check are one float compare — but that demands strict
     treatment of an infinite limit *)
  let continue_ () =
    let nt = Event_queue.next_time sh.queue in
    nt <= limit && nt < infinity
  in
  while continue_ () do
    ignore (step_shard t sh)
  done;
  t.phase <- Idle;
  if limit < infinity && sh.clock.(0) < limit then sh.clock.(0) <- limit;
  t.gclock.(0) <- sh.clock.(0)

(* --- windowed executor (shards > 1) ----------------------------------- *)

(* One shard's slice of the current round: events strictly below (or, for
   a closing round, up to) the shard's boundary [his.(s)]. *)
let process_shard t s =
  let sh = t.shards.(s) in
  let hi = t.his.(s) in
  if t.win_inclusive then
    while Event_queue.next_time sh.queue <= hi do
      ignore (step_shard t sh)
    done
  else
    while Event_queue.next_time sh.queue < hi do
      ignore (step_shard t sh)
    done

let window_job t s =
  (* under inline dispatch the engine itself tracks which slice the
     caller's domain is executing; under parallel dispatch the team
     member index already is the shard index *)
  if not t.parallel then
    (t.active_shard <- s)
    [@lint.single_writer
      "inline dispatch only: one domain runs every slice in turn"];
  process_shard t s

(* One dispatch: every shard processes its slice, then the caller drains
   the mailboxes at the barrier (parallel dispatch only — inline slices
   insert cross-shard sends directly). *)
let dispatch t team =
  t.phase <- Windows;
  (match team with
  | Some team ->
    t.parallel <- true;
    (try Barrier_team.run_sub team ~active:t.nshards t.job
     with e ->
       t.parallel <- false;
       raise e);
    t.parallel <- false;
    drain_outboxes t
  | None ->
    for s = 0 to t.nshards - 1 do
      t.job s
    done);
  t.phase <- Global

let rec any_local_le t (hi : float) s =
  s < t.nshards
  && (Event_queue.next_time t.shards.(s).queue <= hi
     || any_local_le t hi (s + 1))

(* Globals at [boundary], one at a time: a global may schedule routed
   actions at the same timestamp, whose canonical keys precede the next
   global's, so the shard slices get a chance to run between globals. *)
let exec_globals_at t team boundary =
  let rec go () =
    match Event_queue.peek_time t.global with
    | Some g when g = boundary ->
      (match Event_queue.pop t.global with
      | None -> ()
      | Some (_, ev) ->
        t.gcur_v <- Event_queue.last_v t.global;
        t.shards.(0).st.events <- t.shards.(0).st.events + 1;
        execute t t.shards.(0) ev);
      if any_local_le t boundary 0 then begin
        Array.fill t.his 0 t.nshards boundary;
        t.win_inclusive <- true;
        dispatch t team
      end;
      go ()
    | Some _ | None -> ()
  in
  go ()

(* One conservative round.  Let [e_s] be shard [s]'s earliest pending
   event, [w = min e_s], and [gb] the closest barrier (next global action
   or the run limit).  While any shard still has events below [gb], shard
   [d] may safely process everything strictly below

     hi_d = min(gb, min_{s<>d} e_s + L, e_d + 2L)

   where [L] is the lookahead: any cross-shard arrival into [d] descends
   from an event currently queued at some shard — at [>= e_s + L] when it
   starts at [s <> d], and at [>= e_d + 2L] when it starts at [d] itself
   (the influence must leave [d] and come back, two hops of at least [L]
   each).  This is the window autotuner: shards clustered at the same
   virtual time get the classic symmetric [w + L] window, while a shard
   running ahead of the field (or alone) advances up to [2L] per round
   and an idle shard costs only a queue-head probe.  With [autotune]
   off every boundary is the symmetric [min(gb, w + L)] (the PR 6
   behavior).  Once no event remains below [gb], events at exactly [gb]
   are closed inclusively — where their canonical keys sort — and the
   globals run at the barrier. *)
let window_round t team ~limit =
  let k = t.nshards in
  let ng = Event_queue.next_time t.global in
  let gb = fmin ng limit in
  let et = t.etimes in
  let ws = t.wscratch in
  ws.(0) <- infinity;
  ws.(1) <- infinity;
  for s = 0 to k - 1 do
    let e = Event_queue.next_time t.shards.(s).queue in
    et.(s) <- e;
    if e < ws.(0) then begin
      ws.(1) <- ws.(0);
      ws.(0) <- e
    end
    else if e < ws.(1) then ws.(1) <- e
  done;
  let w = ws.(0) in
  let nxt = fmin w ng in
  (* nothing at or below the limit — and an empty system ([nxt] infinite)
     is done even when the limit itself is infinite *)
  if nxt > limit || nxt = infinity then false
  else if w >= gb then begin
    (* close the region at [gb]: events at exactly [gb] first, then the
       globals carried by the barrier *)
    if any_local_le t gb 0 then begin
      Array.fill t.his 0 k gb;
      t.win_inclusive <- true;
      dispatch t team
    end;
    if gb > t.gclock.(0) then t.gclock.(0) <- gb;
    exec_globals_at t team gb;
    true
  end
  else begin
    let m2 = ws.(1) in
    let l = t.lookahead in
    if t.autotune then
      for d = 0 to k - 1 do
        let e = et.(d) in
        let m_other = if e = w then m2 else w in
        t.his.(d) <- fmin gb (fmin (m_other +. l) (e +. (l +. l)))
      done
    else begin
      let hi = fmin gb (w +. l) in
      Array.fill t.his 0 k hi
    end;
    t.win_inclusive <- false;
    dispatch t team;
    true
  end

(* --- inline merged executor (shards > 1, one executing domain) --------- *)

(* When [run] has only the calling domain (host narrower than the shard
   count), conservative windows buy nothing — they exist so domains can
   run between barriers without seeing each other.  A single domain can
   instead pop whichever queue holds the canonically least head: the
   engine's [(time, u, v)] keys are unique across its queues at any
   timestamp, so this k-way merge replays {e exactly} the one-queue
   sequential order, while keeping the shallower per-shard heaps.  The
   global queue joins the merge as one more head; its [u = max_int] keeps
   every global after the routed events of its timestamp, just as the
   window barrier would. *)

(* Among the queues whose cached head time equals the row minimum [m],
   find the one whose (verified) head is least by [(u, v)].  A stale
   candidate — its true head moved past [m] since the cache was written
   (popped, or died to lazy cancellation) — is refreshed to its exact
   head time and drops out.  [-1] if every candidate was stale.  Plain
   recursion so the running best lives in registers, not a boxed ref. *)
let rec pick_verify t (m : float) i best bu bv =
  if i > t.nshards then best
  else if t.etimes.(i) = m then begin
    let q = if i = t.nshards then t.global else t.shards.(i).queue in
    let e = Event_queue.next_time q in
    if e <> m then begin
      t.etimes.(i) <- e;
      pick_verify t m (i + 1) best bu bv
    end
    else
      let u = Event_queue.head_u q in
      if u < bu || (u = bu && Event_queue.head_v q < bv) then
        pick_verify t m (i + 1) i u (Event_queue.head_v q)
      else pick_verify t m (i + 1) best bu bv
  end
  else pick_verify t m (i + 1) best bu bv

(* canonically least head across the shard queues and the global queue
   (index [nshards]); [-1] when everything is empty.  The argmin runs
   over the cached [etimes] row; only candidates at the minimum get a
   real queue probe — in the common case exactly one, the queue about to
   be popped anyway.  On return the winner's [etimes] entry is exact, so
   the caller's limit check needs no further probe. *)
let rec pick_merged t =
  let et = t.etimes in
  let ws = t.wscratch in
  ws.(0) <- infinity;
  for i = 0 to t.nshards do
    if et.(i) < ws.(0) then ws.(0) <- et.(i)
  done;
  let m = ws.(0) in
  if m = infinity then -1
  else begin
    let best = pick_verify t m 0 (-1) max_int max_int in
    (* every candidate at [m] was stale: their entries are refreshed now,
       so the next scan sees the true minimum *)
    if best >= 0 then best else pick_merged t
  end

let exec_merged t s =
  if s = t.nshards then begin
    (* a global action: caller's domain, global clock — the same context
       the window barrier gives it *)
    t.phase <- Global;
    (match Event_queue.pop t.global with
    | None -> ()
    | Some (time, ev) ->
      if time > t.gclock.(0) then t.gclock.(0) <- time;
      t.gcur_v <- Event_queue.last_v t.global;
      t.shards.(0).st.events <- t.shards.(0).st.events + 1;
      execute t t.shards.(0) ev);
    t.etimes.(s) <- Event_queue.next_time t.global
  end
  else begin
    t.phase <- Windows;
    t.active_shard <- s;
    ignore (step_shard t t.shards.(s));
    (* refresh after execution, so inserts made by the handler into this
       very queue are covered by the exact value *)
    t.etimes.(s) <- Event_queue.next_time t.shards.(s).queue
  end

let rec run_merged t ~limit =
  let s = pick_merged t in
  (* [etimes.(s)] is exact after a successful pick *)
  if s >= 0 && t.etimes.(s) <= limit then begin
    exec_merged t s;
    run_merged t ~limit
  end

let step_merged t =
  let s = pick_merged t in
  if s < 0 then false
  else begin
    exec_merged t s;
    true
  end

(* allocation-free (wscratch, not a ref): [step] calls this once per
   event/window, so it is part of the steady state the alloc tests pin *)
let finish_mt t ~limit =
  let ws = t.wscratch in
  ws.(0) <- t.gclock.(0);
  for s = 0 to t.nshards - 1 do
    if t.shards.(s).clock.(0) > ws.(0) then ws.(0) <- t.shards.(s).clock.(0)
  done;
  t.gclock.(0) <- (if limit < infinity && ws.(0) < limit then limit else ws.(0));
  t.phase <- Idle

let run ?until t =
  let limit = Option.value until ~default:infinity in
  if t.nshards = 1 then run_seq t ~limit
  else if t.workers = 1 then
    (* no hardware parallelism to win: merged execution on the calling
       domain — no domains, no barriers, no mailboxes, no windows *)
    Fun.protect
      ~finally:(fun () -> finish_mt t ~limit)
      (fun () -> run_merged t ~limit)
  else begin
    match Barrier_team.shared_acquire ~size:t.workers with
    | Some team ->
      Fun.protect
        ~finally:(fun () ->
          Barrier_team.shared_release team;
          finish_mt t ~limit)
        (fun () -> while window_round t (Some team) ~limit do () done)
    | None ->
      (* another engine holds the shared team (concurrent sharded runs):
         fall back to a private one for this run *)
      let team = Barrier_team.create ~size:t.workers in
      Fun.protect
        ~finally:(fun () ->
          Barrier_team.shutdown team;
          finish_mt t ~limit)
        (fun () -> while window_round t (Some team) ~limit do () done)
  end

let step t =
  if t.nshards = 1 then begin
    t.phase <- Windows;
    let r = step_shard t t.shards.(0) in
    t.phase <- Idle;
    t.gclock.(0) <- t.shards.(0).clock.(0);
    r
  end
  else if t.workers = 1 then begin
    (* one event of the merged inline order *)
    let r = step_merged t in
    finish_mt t ~limit:infinity;
    r
  end
  else begin
    (* one conservative round, executed on the calling domain —
       determinism does not depend on parallel dispatch, only throughput *)
    let r = window_round t None ~limit:infinity in
    finish_mt t ~limit:infinity;
    r
  end

(* --- construction ------------------------------------------------------ *)

let create ~n ~seed ~net ?(shards = 1) ?(autotune = true) () =
  if n <= 0 then invalid_arg "Engine.create: n must be positive";
  if shards < 1 then invalid_arg "Engine.create: shards must be >= 1";
  let nshards = min shards n in
  if nshards > 1 && net.Network.min_delay <= 0.0 then
    invalid_arg
      "Engine.create: shards > 1 requires positive network min_delay \
       (conservative windows need non-zero lookahead)";
  let rng = Prng.create ~seed in
  let block = (n + nshards - 1) / nshards in
  let workers =
    if nshards = 1 then 1
    else if autotune && Barrier_team.hardware_parallelism () < nshards then
      (* spawning more domains than cores loses to inline execution *)
      1
    else nshards
  in
  let t =
    {
      n;
      nshards;
      block;
      shard_of = Array.init n (fun pid -> pid / block);
      rng;
      net = Network.create net ~n ~rng:(Prng.split rng);
      shards =
        Array.init nshards (fun _ ->
            {
              queue = Event_queue.create ();
              clock = [| 0.0 |];
              st = fresh_stats ();
              cur_u = 0;
              cur_v = 0;
            });
      global = Event_queue.create ();
      gclock = [| 0.0 |];
      gcur_v = 0;
      phase = Idle;
      epoch = 0;
      up = Array.make n true;
      receivers = Array.make n None;
      chan_seq = Array.make (n * n) 0;
      act_seq = Array.make n 0;
      glob_seq = 0;
      setup_seq = 0;
      scratch = Stamp.create ();
      outbox =
        Array.init (nshards * nshards) (fun _ ->
            { o_len = 0; o_time = [||]; o_u = [||]; o_v = [||]; o_ev = [||] });
      out_dirty = Array.make nshards false;
      lookahead = net.Network.min_delay;
      autotune;
      workers;
      etimes = Array.make (nshards + 1) infinity;
      his = Array.make nshards 0.0;
      wscratch = Array.make 2 infinity;
      win_inclusive = false;
      active_shard = 0;
      parallel = false;
      job = (fun (_ : int) -> ());
    }
  in
  t.job <- window_job t;
  t
