module Barrier_team = Rdt_parallel.Barrier_team

type 'msg event =
  | Deliver of { src : int; dst : int; payload : 'msg; epoch : int }
  | Action of { owner : int option; f : unit -> unit }

type stats = {
  mutable sent : int;
  mutable delivered : int;
  mutable lost : int;
  mutable dropped_down : int;
  mutable flushed : int;
  mutable events : int;
}

(* Canonical event keys.
   Execution order must be a pure function of (seed, config), independent
   of shard count and of which shard inserted an event first, so ties at
   equal virtual time are broken by an interleaving-independent key
   [(u, v)] instead of insertion order:

     delivery to [dst]      u = dst lsl 1         v = chan_seq * n + src
     action routed to [p]   u = (p lsl 1) lor 1   v = per-process counter
     global action          u = max_int           v = global counter

   [chan_seq] is a per-(src,dst) counter assigned by the sender (in the
   sender's own deterministic execution order), the action counters are
   assigned at scheduling time (in the owning process's deterministic
   order, or at a barrier for globals).  Global actions carry the largest
   [u], so at any timestamp every process-routed event precedes every
   global — which is exactly the order the windowed executor produces
   when it closes a window before running globals.  The sequential
   (shards = 1) executor uses one queue ordered by the same keys, so both
   modes replay the identical event sequence. *)

type 'msg shard = {
  queue : 'msg event Event_queue.t;
  mutable clock : float;
  st : stats;
  (* canonical key of the event this shard is currently executing; the
     trace reads it through [current_stamp] to timestamp its records *)
  mutable cur_u : int;
  mutable cur_v : int;
}

type 'msg pending = { p_time : float; p_u : int; p_v : int; p_ev : 'msg event }

(* [Windows] = shards executing their slices in parallel; [Global] = at a
   window barrier on the caller's domain; [Idle] = not inside [run]. *)
type phase = Idle | Windows | Global

let in_windows = function Windows -> true | Idle | Global -> false

type 'msg t = {
  n : int;
  nshards : int;
  shard_of : int array;
  rng : Prng.t;
  net : Network.t;
  shards : 'msg shard array;
  global : 'msg event Event_queue.t;  (* unrouted actions; barrier-only *)
  mutable gclock : float;
  mutable gcur_v : int;  (* v of the global action being executed *)
  mutable phase : phase;
  mutable epoch : int;  (* bumped by flush_in_flight; stale deliveries die *)
  up : bool array;
  receivers : (src:int -> 'msg -> unit) option array;
  chan_seq : int array;  (* per-(src,dst) send counter *)
  act_seq : int array;  (* per-process scheduled-action counter *)
  mutable glob_seq : int;
  mutable setup_seq : int;  (* stamps records made outside any event *)
  (* inter-shard mailboxes: cell [src_shard * nshards + dst_shard] is
     written only by [src_shard] during a window and drained into the
     destination queues by the caller at the barrier *)
  outbox : 'msg pending Vec.t array;
  lookahead : float;  (* conservative window width = min message delay *)
}

let fresh_stats () =
  { sent = 0; delivered = 0; lost = 0; dropped_down = 0; flushed = 0; events = 0 }

let create ~n ~seed ~net ?(shards = 1) () =
  if n <= 0 then invalid_arg "Engine.create: n must be positive";
  if shards < 1 then invalid_arg "Engine.create: shards must be >= 1";
  let nshards = min shards n in
  if nshards > 1 && net.Network.min_delay <= 0.0 then
    invalid_arg
      "Engine.create: shards > 1 requires positive network min_delay \
       (conservative windows need non-zero lookahead)";
  let rng = Prng.create ~seed in
  let block = (n + nshards - 1) / nshards in
  {
    n;
    nshards;
    shard_of = Array.init n (fun pid -> pid / block);
    rng;
    net = Network.create net ~n ~rng:(Prng.split rng);
    shards =
      Array.init nshards (fun _ ->
          {
            queue = Event_queue.create ();
            clock = 0.0;
            st = fresh_stats ();
            cur_u = 0;
            cur_v = 0;
          });
    global = Event_queue.create ();
    gclock = 0.0;
    gcur_v = 0;
    phase = Idle;
    epoch = 0;
    up = Array.make n true;
    receivers = Array.make n None;
    chan_seq = Array.make (n * n) 0;
    act_seq = Array.make n 0;
    glob_seq = 0;
    setup_seq = 0;
    outbox = Array.init (nshards * nshards) (fun _ -> Vec.create ());
    lookahead = net.Network.min_delay;
  }

let n t = t.n
let shards t = t.nshards
let shard_of_pid t pid =
  if pid < 0 || pid >= t.n then invalid_arg "Engine.shard_of_pid: bad pid";
  t.shard_of.(pid)

let rng t = t.rng
let network t = t.net

(* the shard whose slice the current domain is executing; 0 outside a
   window phase (the caller's domain is also team member 0) *)
let self_shard t =
  if t.nshards = 1 then 0 else Barrier_team.self_index ()

let now t =
  if t.nshards = 1 then t.shards.(0).clock
  else
    match t.phase with
    | Windows -> t.shards.(self_shard t).clock
    | Global | Idle -> t.gclock

let current_stamp t =
  match t.phase with
  | Idle ->
    (* setup-time records (initial checkpoints): ordered before every
       event, in call order *)
    let k = t.setup_seq in
    t.setup_seq <- k + 1;
    (neg_infinity, 0, k)
  | Global -> (t.gclock, max_int, t.gcur_v)
  | Windows ->
    let sh = t.shards.(self_shard t) in
    (sh.clock, sh.cur_u, sh.cur_v)

let stats t =
  let acc = fresh_stats () in
  Array.iter
    (fun sh ->
      acc.sent <- acc.sent + sh.st.sent;
      acc.delivered <- acc.delivered + sh.st.delivered;
      acc.lost <- acc.lost + sh.st.lost;
      acc.dropped_down <- acc.dropped_down + sh.st.dropped_down;
      acc.flushed <- acc.flushed + sh.st.flushed;
      acc.events <- acc.events + sh.st.events)
    t.shards;
  acc

let set_receiver t p f =
  if p < 0 || p >= t.n then invalid_arg "Engine.set_receiver: bad pid";
  t.receivers.(p) <- Some f

let send t ?(reliable = false) ~src ~dst msg =
  if dst < 0 || dst >= t.n then invalid_arg "Engine.send: bad destination";
  if src < 0 || src >= t.n then invalid_arg "Engine.send: bad source";
  let mt = t.nshards > 1 in
  let ss = t.shard_of.(src) in
  if mt && in_windows t.phase && ss <> Barrier_team.self_index () then
    invalid_arg "Engine.send: send on behalf of a process of another shard";
  let sh = t.shards.(ss) in
  sh.st.sent <- sh.st.sent + 1;
  let tnow = now t in
  let delivery =
    match Network.delivery_time t.net ~src ~dst ~now:tnow with
    | None when reliable ->
      (* reliable control channel: retransmission is abstracted away as a
         delivery at the far end of the delay range *)
      Some (tnow +. (Network.config t.net).Network.max_delay)
    | d -> d
  in
  match delivery with
  | None -> sh.st.lost <- sh.st.lost + 1
  | Some at ->
    let key = (src * t.n) + dst in
    let cseq = t.chan_seq.(key) in
    t.chan_seq.(key) <- cseq + 1;
    let u = dst lsl 1 and v = (cseq * t.n) + src in
    let ev = Deliver { src; dst; payload = msg; epoch = t.epoch } in
    let ds = t.shard_of.(dst) in
    (* deliveries are never cancelled individually (flush works by epoch),
       so skip the handle *)
    if mt && in_windows t.phase && ds <> ss then
      Vec.push
        t.outbox.((ss * t.nshards) + ds)
        { p_time = at; p_u = u; p_v = v; p_ev = ev }
    else Event_queue.add_keyed_unit t.shards.(ds).queue ~time:at ~u ~v ev

let schedule t ?owner ?pin ~at f =
  if at < now t then invalid_arg "Engine.schedule: time in the past";
  let routing = match owner with Some _ -> owner | None -> pin in
  match routing with
  | Some p ->
    if p < 0 || p >= t.n then invalid_arg "Engine.schedule: bad pid";
    let ds = t.shard_of.(p) in
    if t.nshards > 1 && in_windows t.phase
       && ds <> Barrier_team.self_index ()
    then invalid_arg "Engine.schedule: action routed to another shard";
    let v = t.act_seq.(p) in
    t.act_seq.(p) <- v + 1;
    Event_queue.add_keyed t.shards.(ds).queue ~time:at ~u:((p lsl 1) lor 1) ~v
      (Action { owner; f })
  | None ->
    if t.nshards > 1 && in_windows t.phase then
      invalid_arg
        "Engine.schedule: global (unrouted) action from inside a shard; \
         give it an owner or pin";
    let v = t.glob_seq in
    t.glob_seq <- v + 1;
    let q = if t.nshards = 1 then t.shards.(0).queue else t.global in
    Event_queue.add_keyed q ~time:at ~u:max_int ~v (Action { owner = None; f })

let schedule_in t ?owner ?pin ~delay f =
  schedule t ?owner ?pin ~at:(now t +. delay) f

let cancel _t h = Event_queue.cancel_handle h

let is_up t p = t.up.(p)

let set_up t p b =
  if t.nshards > 1 && in_windows t.phase then
    invalid_arg "Engine.set_up: only from a barrier context";
  t.up.(p) <- b

let flush_in_flight t =
  if t.nshards > 1 && in_windows t.phase then
    invalid_arg "Engine.flush_in_flight: only from a barrier context";
  (* mailboxes are empty at any barrier (drained on entry), so bumping the
     epoch kills precisely the deliveries still queued *)
  t.epoch <- t.epoch + 1;
  Network.reset_order t.net

let execute t sh = function
  | Action { owner; f } -> begin
    match owner with
    | Some p when not t.up.(p) -> ()
    | Some _ | None -> f ()
  end
  | Deliver { src; dst; payload; epoch } ->
    if epoch <> t.epoch then sh.st.flushed <- sh.st.flushed + 1
    else if not t.up.(dst) then sh.st.dropped_down <- sh.st.dropped_down + 1
    else begin
      match t.receivers.(dst) with
      | None -> invalid_arg "Engine: delivery to process without receiver"
      | Some f ->
        sh.st.delivered <- sh.st.delivered + 1;
        f ~src payload
    end

(* --- sequential executor (shards = 1) --------------------------------- *)

let step_shard t sh =
  match Event_queue.pop sh.queue with
  | None -> false
  | Some (time, ev) ->
    if time > sh.clock then sh.clock <- time;
    sh.cur_u <- Event_queue.last_u sh.queue;
    sh.cur_v <- Event_queue.last_v sh.queue;
    sh.st.events <- sh.st.events + 1;
    execute t sh ev;
    true

let run_seq t ~limit =
  t.phase <- Windows;
  let sh = t.shards.(0) in
  let continue () =
    match Event_queue.peek_time sh.queue with
    | None -> false
    | Some next -> next <= limit
  in
  while continue () do
    ignore (step_shard t sh)
  done;
  t.phase <- Idle;
  if limit < infinity && sh.clock < limit then sh.clock <- limit;
  t.gclock <- sh.clock

(* --- windowed executor (shards > 1) ----------------------------------- *)

let min_local_peek t =
  let m = ref infinity in
  for s = 0 to t.nshards - 1 do
    match Event_queue.peek_time t.shards.(s).queue with
    | Some tm -> if tm < !m then m := tm
    | None -> ()
  done;
  !m

let any_local_le t hi =
  let found = ref false in
  for s = 0 to t.nshards - 1 do
    match Event_queue.peek_time t.shards.(s).queue with
    | Some tm -> if tm <= hi then found := true
    | None -> ()
  done;
  !found

let drain_outboxes t =
  let k = t.nshards in
  for i = 0 to (k * k) - 1 do
    let box = t.outbox.(i) in
    if Vec.length box > 0 then begin
      let q = t.shards.(i mod k).queue in
      Vec.iter
        (fun p ->
          Event_queue.add_keyed_unit q ~time:p.p_time ~u:p.p_u ~v:p.p_v p.p_ev)
        box;
      Vec.clear box
    end
  done

let process_shard t ~hi ~inclusive s =
  let sh = t.shards.(s) in
  let continue () =
    match Event_queue.peek_time sh.queue with
    | None -> false
    | Some tm -> if inclusive then tm <= hi else tm < hi
  in
  while continue () do
    ignore (step_shard t sh)
  done

(* One parallel slice: every shard processes its events up to [hi], then
   the caller drains the mailboxes at the barrier.  Mailbox arrivals are
   at [>= send_time + lookahead >= hi], so nothing can land inside the
   slice that produced it. *)
let dispatch t team ~hi ~inclusive =
  t.phase <- Windows;
  (match team with
  | Some team -> Barrier_team.run team (process_shard t ~hi ~inclusive)
  | None ->
    for s = 0 to t.nshards - 1 do
      process_shard t ~hi ~inclusive s
    done);
  t.phase <- Global;
  drain_outboxes t

(* Globals at [boundary], one at a time: a global may schedule routed
   actions at the same timestamp, whose canonical keys precede the next
   global's, so the shard slices get a chance to run between globals. *)
let exec_globals_at t team boundary =
  let rec go () =
    match Event_queue.peek_time t.global with
    | Some g when g = boundary ->
      (match Event_queue.pop t.global with
      | None -> ()
      | Some (_, ev) ->
        t.gcur_v <- Event_queue.last_v t.global;
        t.shards.(0).st.events <- t.shards.(0).st.events + 1;
        execute t t.shards.(0) ev);
      if any_local_le t boundary then
        dispatch t team ~hi:boundary ~inclusive:true;
      go ()
    | Some _ | None -> ()
  in
  go ()

(* One conservative window.  [w] = earliest pending event anywhere; the
   window spans [w, boundary) with [boundary] capped by the lookahead,
   the next global action and the run limit.  Shard slices within the
   window are causally independent: any cross-shard influence travels
   through a message, whose delay is at least [lookahead].  When the
   boundary carries a global action (or is the run limit), the window is
   closed inclusively — events at exactly [boundary] execute first, which
   is also where their canonical keys sort — and the globals run at the
   barrier. *)
let window_once t team ~limit =
  let next_local = min_local_peek t in
  let next_global =
    match Event_queue.peek_time t.global with Some g -> g | None -> infinity
  in
  let w = Float.min next_local next_global in
  if w = infinity || w > limit then false
  else begin
    let boundary =
      Float.min (w +. t.lookahead) (Float.min next_global limit)
    in
    if next_local < boundary then dispatch t team ~hi:boundary ~inclusive:false;
    if boundary = next_global || boundary = limit then begin
      if any_local_le t boundary then
        dispatch t team ~hi:boundary ~inclusive:true;
      if boundary > t.gclock then t.gclock <- boundary;
      exec_globals_at t team boundary
    end;
    true
  end

let finish_mt t ~limit =
  let m =
    Array.fold_left (fun acc sh -> Float.max acc sh.clock) t.gclock t.shards
  in
  t.gclock <- (if limit < infinity && m < limit then limit else m);
  t.phase <- Idle

let run ?until t =
  let limit = Option.value until ~default:infinity in
  if t.nshards = 1 then run_seq t ~limit
  else begin
    let team = Barrier_team.create ~size:t.nshards in
    Fun.protect
      ~finally:(fun () ->
        Barrier_team.shutdown team;
        finish_mt t ~limit)
      (fun () -> while window_once t (Some team) ~limit do () done)
  end

let step t =
  if t.nshards = 1 then begin
    t.phase <- Windows;
    let r = step_shard t t.shards.(0) in
    t.phase <- Idle;
    t.gclock <- t.shards.(0).clock;
    r
  end
  else begin
    (* one window, executed on the calling domain — determinism does not
       depend on parallel dispatch, only throughput does *)
    let r = window_once t None ~limit:infinity in
    t.phase <- Idle;
    t.gclock <-
      Array.fold_left (fun acc sh -> Float.max acc sh.clock) t.gclock t.shards;
    r
  end
