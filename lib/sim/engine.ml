type 'msg event =
  | Deliver of { src : int; dst : int; payload : 'msg; epoch : int }
  | Action of { owner : int option; f : unit -> unit }

type stats = {
  mutable sent : int;
  mutable delivered : int;
  mutable lost : int;
  mutable dropped_down : int;
  mutable flushed : int;
  mutable events : int;
}

type 'msg t = {
  n : int;
  rng : Prng.t;
  net : Network.t;
  queue : 'msg event Event_queue.t;
  mutable clock : float;
  mutable epoch : int;  (* bumped by flush_in_flight; stale deliveries die *)
  up : bool array;
  receivers : (src:int -> 'msg -> unit) option array;
  stats : stats;
}

let create ~n ~seed ~net () =
  if n <= 0 then invalid_arg "Engine.create: n must be positive";
  let rng = Prng.create ~seed in
  {
    n;
    rng;
    net = Network.create net ~n ~rng:(Prng.split rng);
    queue = Event_queue.create ();
    clock = 0.0;
    epoch = 0;
    up = Array.make n true;
    receivers = Array.make n None;
    stats =
      {
        sent = 0;
        delivered = 0;
        lost = 0;
        dropped_down = 0;
        flushed = 0;
        events = 0;
      };
  }

let n t = t.n
let now t = t.clock
let rng t = t.rng
let network t = t.net
let stats t = t.stats

let set_receiver t p f =
  if p < 0 || p >= t.n then invalid_arg "Engine.set_receiver: bad pid";
  t.receivers.(p) <- Some f

let send t ?(reliable = false) ~src ~dst msg =
  if dst < 0 || dst >= t.n then invalid_arg "Engine.send: bad destination";
  t.stats.sent <- t.stats.sent + 1;
  let delivery =
    match Network.delivery_time t.net ~src ~dst ~now:t.clock with
    | None when reliable ->
      (* reliable control channel: retransmission is abstracted away as a
         delivery at the far end of the delay range *)
      Some (t.clock +. (Network.config t.net).Network.max_delay)
    | d -> d
  in
  match delivery with
  | None -> t.stats.lost <- t.stats.lost + 1
  | Some at ->
    (* deliveries are never cancelled individually (flush works by epoch),
       so skip the handle *)
    Event_queue.add_unit t.queue ~time:at
      (Deliver { src; dst; payload = msg; epoch = t.epoch })

let schedule t ?owner ~at f =
  if at < t.clock then invalid_arg "Engine.schedule: time in the past";
  Event_queue.add t.queue ~time:at (Action { owner; f })

let schedule_in t ?owner ~delay f = schedule t ?owner ~at:(t.clock +. delay) f

let cancel t h = Event_queue.cancel t.queue h

let is_up t p = t.up.(p)
let set_up t p b = t.up.(p) <- b

let flush_in_flight t =
  t.epoch <- t.epoch + 1;
  Network.reset_order t.net

let execute t = function
  | Action { owner; f } -> begin
    match owner with
    | Some p when not t.up.(p) -> ()
    | Some _ | None -> f ()
  end
  | Deliver { src; dst; payload; epoch } ->
    if epoch <> t.epoch then t.stats.flushed <- t.stats.flushed + 1
    else if not t.up.(dst) then
      t.stats.dropped_down <- t.stats.dropped_down + 1
    else begin
      match t.receivers.(dst) with
      | None -> invalid_arg "Engine: delivery to process without receiver"
      | Some f ->
        t.stats.delivered <- t.stats.delivered + 1;
        f ~src payload
    end

let step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, ev) ->
    t.clock <- Float.max t.clock time;
    t.stats.events <- t.stats.events + 1;
    execute t ev;
    true

let run ?until t =
  let continue () =
    match until with
    | None -> not (Event_queue.is_empty t.queue)
    | Some limit -> begin
      match Event_queue.peek_time t.queue with
      | None -> false
      | Some next -> next <= limit
    end
  in
  while continue () do
    ignore (step t)
  done;
  match until with
  | Some limit when t.clock < limit -> t.clock <- limit
  | Some _ | None -> ()
