(** Message-channel model: delivery delays, loss, and optional FIFO order.

    The paper's system model is asynchronous: no bound on message delay,
    messages may be lost or delivered out of order.  This module decides,
    for each send, whether the message is lost and when it is delivered.
    All randomness comes from the [Prng.t] supplied at creation. *)

type config = {
  min_delay : float;  (** lower bound on transit time *)
  max_delay : float;  (** upper bound on transit time (uniform in between) *)
  loss_probability : float;  (** independent per-message loss probability *)
  fifo : bool;
      (** when [true], per-(src,dst)-channel delivery order matches send
          order; when [false] messages may overtake each other *)
}

val default : config
(** Non-FIFO, no loss, delays uniform in [\[0.5, 1.5)]. *)

val pp_config : Format.formatter -> config -> unit

type t

val create : config -> n:int -> rng:Prng.t -> t
(** [create config ~n ~rng] builds channel state for an [n]-process
    system.  Internally one PRNG stream per source process is derived
    from [rng] by indexed split ([rng] itself does not advance), so the
    delay/loss draws of different senders never perturb each other —
    a prerequisite for shard-count-invariant simulations. *)

val config : t -> config

val delivery_time : t -> src:int -> dst:int -> now:float -> float option
(** [delivery_time t ~src ~dst ~now] is [None] if the message is lost,
    otherwise [Some t_deliver] with [t_deliver >= now].  Under FIFO, the
    returned times on a given channel are non-decreasing. *)

val reset_order : t -> unit
(** Forgets per-channel FIFO clocks; used when a recovery session flushes
    the network. *)
