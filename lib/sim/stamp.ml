(* A reusable canonical-stamp cell.

   The sharded trace asks the engine "which event is the calling context
   executing?" once per trace record — a hot, per-record query.  Returning
   a [(float * int * int)] tuple allocates a tuple and a boxed float per
   call; writing into a caller-owned cell allocates nothing.  The time
   lives in a one-element float array (not a mutable float field of a
   mixed record) precisely so that stores stay unboxed. *)

type t = { time : float array; mutable u : int; mutable v : int }

let create () = { time = [| nan |]; u = 0; v = 0 }

let[@inline] time t = t.time.(0)
let[@inline] u t = t.u
let[@inline] v t = t.v

let[@inline] set t ~time ~u ~v =
  t.time.(0) <- time;
  t.u <- u;
  t.v <- v
