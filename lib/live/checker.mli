(** Black-box differential checking of a live cluster run.

    Replays the run's scenario through {!Rdt_verify.Harness} — the full
    oracle battery fires after every op — and compares the live run's
    observations against the replay: per-op protocol state (DV, UC view,
    retained indices, application counter) via the harness's [observe]
    hook, the mirrored transcript against the replayed trace, recovery
    reports, and each node's durable store directory (recovered with
    {!Rdt_store.Log_store}) against the replay's final retained set.

    The state contract deliberately excludes process-lifetime
    bookkeeping (basic/forced checkpoint counts, store peak statistics):
    a respawn resets those on the live side while the simulator arm
    keeps counting. *)

type result = {
  violations : Rdt_verify.Oracles.violation list;
      (** empty = the live run checks out; oracles "live-state",
          "live-trace", "live-report", "live-durability" plus anything
          the replay's own battery raises *)
  replay : Rdt_verify.Harness.result;
}

val check :
  record:Coordinator.run_record ->
  root:string ->
  ?scratch_dir:string ->
  unit ->
  result
(** [root] is the cluster root whose [p<pid>/store] directories the run
    left behind; [scratch_dir] is forwarded to {!Rdt_verify.Harness.run}
    for the replay's own stores. *)
