(* The simulator-backed cluster: every node lives in this process behind
   a {!Rdt_transport.Sim_backend} endpoint, so a whole cluster run —
   coordinator, nodes, recovery sessions — is a deterministic function of
   [(scenario, seed)].  Node directories still hold real durable stores;
   a kill drops the endpoint's mailbox (volatile state survives in the
   heap but is unreachable: respawn builds a brand-new node over the same
   directory, exactly like an OS process restart). *)

module Transport = Rdt_transport.Transport
module Sim_backend = Rdt_transport.Sim_backend
module Nemesis = Rdt_transport.Nemesis
module Harness = Rdt_verify.Harness
module Scenario = Rdt_verify.Scenario

let node_dir root pid = Filename.concat root (Printf.sprintf "p%d" pid)

let run ~scenario ~root ?(seed = 1) ?nemesis ?on_nemesis ?log () =
  let sc = Scenario.normalize scenario in
  let n = sc.Scenario.n in
  Harness.rm_rf root;
  Harness.mkdir_p root;
  let cluster = Sim_backend.create ~n ~seed () in
  (* one nemesis wrapper per endpoint (slot n = coordinator); wrappers
     persist across respawns because the sim transport itself does *)
  let handles = Array.make (n + 1) None in
  let wrap slot tr =
    match nemesis with
    | None -> tr
    | Some cfg ->
      let h, tr = Nemesis.wrap cfg tr in
      handles.(slot) <- Some h;
      tr
  in
  let transports =
    Array.init n (fun pid -> wrap pid (Sim_backend.transport cluster ~me:pid))
  in
  let spawn pid =
    ignore
      (Node.create ~transport:transports.(pid) ~dir:(node_dir root pid) ())
  in
  let ctl =
    {
      Coordinator.kill =
        (fun pid ->
          (* frames the nemesis holds for delayed release live in the
             process being killed: a real SIGKILL loses them, so the
             simulated kill must too, or the respawned node's peers see
             zombie frames no real cluster could produce *)
          (match handles.(pid) with
          | Some h -> Nemesis.flush_held h
          | None -> ());
          Sim_backend.kill cluster ~pid);
      respawn = spawn;
    }
  in
  for pid = 0 to n - 1 do
    spawn pid
  done;
  let coord =
    wrap n (Sim_backend.transport cluster ~me:Transport.coordinator_id)
  in
  (match on_nemesis with
  | Some f -> f (List.filter_map Fun.id (Array.to_list handles))
  | None -> ());
  Coordinator.run ~transport:coord ~ctl ~scenario:sc ?log ()
