(** Local multi-process cluster over loopback TCP.

    Every scenario process runs as a real OS process with a private
    durable store under [root/p<pid>/store] and its output streamed to
    [root/p<pid>/node.log]; the coordinator runs in the calling process.
    Crash ops SIGKILL the victim and respawn it over the same directory,
    so recovery exercises the real durable log.  Stores and logs are
    left in place after the run for {!Checker.check} and post-mortems. *)

type backend =
  | Fork  (** [Unix.fork] + {!Node.main} in the child (test backend) *)
  | Exec of string
      (** spawn [<exe> node --me .. --dir .. --coord-port ..]; the
          executable must route that subcommand to {!node_main} *)

val node_dir : string -> int -> string
val log_file : string -> int -> string

val node_main :
  me:int ->
  dir:string ->
  coord_port:int ->
  ?nemesis:Rdt_transport.Nemesis.config ->
  unit ->
  unit
(** Body of a node process: TCP endpoint, dial the coordinator, run
    {!Node.main}.  The CLI's hidden [node] subcommand calls this;
    [nemesis] (the CLI's [--nemesis], an
    {!Rdt_transport.Nemesis.of_string} spec) wraps the endpoint so the
    node's own outbound frames are faulted. *)

val run :
  scenario:Rdt_verify.Scenario.t ->
  root:string ->
  backend:backend ->
  ?timeout:float ->
  ?nemesis:Rdt_transport.Nemesis.config ->
  ?on_nemesis:(Rdt_transport.Nemesis.t list -> unit) ->
  ?log:(string -> unit) ->
  unit ->
  (Coordinator.run_record, string) result
(** Wipe [root], spawn one process per scenario pid, drive the scenario,
    reap the processes.  On [Error] all processes are killed and each
    node's log tail is appended to the message.

    [nemesis] wraps the coordinator endpoint in this process and is
    forwarded to every node process (fork: directly; exec: via
    [--nemesis]), so each endpoint faults its own outbound links with
    the same config — held frames die with their process on SIGKILL for
    free.  [on_nemesis] only sees the coordinator's handle: the node
    wrappers live in other processes. *)
