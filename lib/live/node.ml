(* One live process of the cluster: the full protocol stack (middleware +
   RDT-LGC + durable store + local transcript) behind a transport
   endpoint.  The node is purely reactive — it answers coordinator
   commands and stages peer App frames — and backend-agnostic: the same
   logic runs over TCP sockets (its own OS process) and inside the
   deterministic simulator.

   Delivery is staged: an inbound App frame is held until the coordinator
   commands its delivery (C_deliver names the exact message), which is
   how the live cluster realizes a scenario's explicit interleaving over
   channels with their own timing.  Frames carry an epoch; a crash bumps
   it (C_flush), so stragglers from before a recovery session are
   discarded exactly like the in-transit messages a stop-world session
   flushes.

   mt/* ownership note: the live runtime is single-domain by design —
   each node is one OS process (or one simulated process) owning all of
   its state, and cross-node sharing happens only through the transport.
   No [@@@lint.domain_scope] declarations are needed here; if a node
   ever grows worker domains, its seams must be declared like the
   engine's (DESIGN.md §16). *)

module Transport = Rdt_transport.Transport
module Wire = Rdt_transport.Wire
module Trace = Rdt_ccp.Trace
module Dependency_vector = Rdt_causality.Dependency_vector
module Stable_store = Rdt_storage.Stable_store
module Log_store = Rdt_store.Log_store
module Protocol = Rdt_protocols.Protocol
module Middleware = Rdt_protocols.Middleware
module Control = Rdt_protocols.Control
module Rdt_lgc = Rdt_gc.Rdt_lgc
module Harness = Rdt_verify.Harness

type sys = {
  n : int;
  mw : Middleware.t;
  lgc : Rdt_lgc.t;
  store : Stable_store.t;
  log : Log_store.t;
  trace : Trace.t;
}

type armed = { a_seq : int; a_now : float; a_src : int; a_msg_id : int }

type t = {
  tr : Transport.t;
  me : int;
  dir : string;
  mutable epoch : int;
  mutable sys : sys option;
  staged : (int * int, int array * int) Hashtbl.t;
      (* (src, msg_id) -> piggybacked (dv, control index) *)
  doomed : (int * int, unit) Hashtbl.t;
      (* dropped before the frame arrived; discard on arrival *)
  mutable armed : armed option;
      (* delivery commanded before the frame arrived; reply deferred *)
  mutable events : Wire.tev list;  (* newest first, drained per reply *)
  mutable last_seq : int;
      (* at-most-once dedup: highest command seq answered (or, after a
         respawn, completed by the coordinator pre-crash via Config) *)
  mutable last_reply : Wire.reply option;
      (* cached reply for last_seq, resent verbatim on a retransmission
         so retried non-idempotent commands never re-execute *)
  mutable hello : (unit -> unit) option;
      (* re-send registration until Config arrives (the Hello itself may
         be dropped by a nemesis or arrive before the coordinator) *)
  mutable finished : bool;
  mutable coord_down : bool;  (* the coordinator's link died/closed *)
}

(* the registration retry timer; nemesis delay releases live at ids >=
   {!Rdt_transport.Nemesis.timer_base}, far above this *)
let hello_timer_id = 1
let hello_retry = 0.5

(* test override (satellite of the live-fuzz campaign): deliver every
   message twice, a real duplication bug the campaign must catch.  Set
   directly in-process or via RDTGC_TEST_DUP_DELIVER=1 for exec'd
   nodes. *)
let test_dup_deliver = ref false
let set_test_dup_deliver v = test_dup_deliver := v

let store_dir t = Filename.concat t.dir "store"

let tev_of (ev : Trace.event) =
  match ev.kind with
  | Trace.Checkpoint { index } -> Wire.T_ckpt { index }
  | Trace.Send { msg_id; dst } -> Wire.T_send { msg_id; dst }
  | Trace.Receive { msg_id; src } -> Wire.T_recv { msg_id; src }

let drain t =
  let evs = List.rev t.events in
  t.events <- [];
  evs

let state_of sys =
  {
    Wire.st_dv = Dependency_vector.to_array (Middleware.dv sys.mw);
    st_uc = Rdt_lgc.uc_view sys.lgc;
    st_retained = Array.of_list (Stable_store.retained_indices sys.store);
    st_app = Middleware.app_state sys.mw;
  }

let reply t ~seq reply =
  t.last_seq <- seq;
  t.last_reply <- Some reply;
  Transport.send t.tr ~dst:Transport.coordinator_id (Wire.Reply { seq; reply })

let sys_exn t =
  match t.sys with
  | Some sys -> sys
  | None -> failwith "node: command before configuration"

(* --- boot -------------------------------------------------------------- *)

let boot t ~n ~protocol ~ckpt_bytes ~epoch ~(history : Wire.tev list)
    ~sends_ever ~last_seq =
  t.hello <- None;
  t.last_seq <- last_seq;
  t.last_reply <- None;
  let protocol =
    match Protocol.by_id protocol with
    | Some p -> p
    | None -> failwith ("node: unknown protocol " ^ protocol)
  in
  t.epoch <- epoch;
  let dir = store_dir t in
  let trace = Trace.create ~n in
  let log = Log_store.create ~config:Harness.log_config ~pid:t.me ~dir () in
  let sys =
    if List.is_empty history then begin
      (* fresh start: the middleware stores s^0 through the durable
         backend, exactly like the simulator's bootstrap *)
      let store = Stable_store.create ~me:t.me in
      Stable_store.set_backend store (Log_store.backend log);
      let mw =
        Middleware.create ~n ~me:t.me ~protocol ~trace ~ckpt_bytes ~store ()
      in
      let lgc =
        Rdt_lgc.create ~me:t.me ~store ~dv:(Middleware.dv mw) ~n
      in
      Rdt_lgc.attach lgc mw;
      { n; mw; lgc; store; log; trace }
    end
    else begin
      (* respawn after a kill: volatile state is rebuilt from what the
         durable log recovered plus the coordinator's transcript of our
         own pre-crash events *)
      let recovered = (Log_store.recovery log).Log_store.recovered in
      let store = Stable_store.restore ~me:t.me ~entries:recovered in
      Stable_store.set_backend store (Log_store.backend log);
      List.iter
        (fun ev ->
          match (ev : Wire.tev) with
          | T_ckpt { index } -> Trace.record_checkpoint trace ~pid:t.me ~index
          | T_send { msg_id; dst } ->
            Trace.record_send trace ~pid:t.me ~msg_id ~dst
          | T_recv { msg_id; src } ->
            Trace.record_receive trace ~pid:t.me ~msg_id ~src)
        history;
      (* ids are monotone across rollbacks: restore the counter past the
         sends the erased history performed *)
      Trace.restore_msg_ids trace ~pid:t.me ~count:sends_ever;
      let mw =
        Middleware.restore ~n ~me:t.me ~protocol ~trace ~ckpt_bytes ~store ()
      in
      let lgc = Rdt_lgc.restore ~me:t.me ~store ~dv:(Middleware.dv mw) ~n in
      Rdt_lgc.attach lgc mw;
      { n; mw; lgc; store; log; trace }
    end
  in
  (* subscribe only now: neither the s^0 bootstrap nor the history replay
     is a new event as far as the coordinator's transcript is concerned *)
  Trace.on_event trace (fun ev -> t.events <- tev_of ev :: t.events);
  t.sys <- Some sys

(* --- delivery ---------------------------------------------------------- *)

let do_deliver sys ~now ~src ~msg_id ~dv ~index =
  Middleware.receive sys.mw
    { Middleware.msg_id; src; control = Control.make ~dv ~index }
    ~now;
  if !test_dup_deliver then
    Middleware.receive sys.mw
      { Middleware.msg_id; src; control = Control.make ~dv ~index }
      ~now

let handle_app t ~src ~(frame_epoch : int) ~msg_id ~dv ~index =
  if frame_epoch = t.epoch then begin
    match t.armed with
    | Some a when a.a_src = src && a.a_msg_id = msg_id ->
      t.armed <- None;
      let sys = sys_exn t in
      do_deliver sys ~now:a.a_now ~src ~msg_id ~dv ~index;
      reply t ~seq:a.a_seq (Wire.R_done { events = drain t; state = state_of sys })
    | _ ->
      if Hashtbl.mem t.doomed (src, msg_id) then
        Hashtbl.remove t.doomed (src, msg_id)
      else Hashtbl.replace t.staged (src, msg_id) (dv, index)
  end
(* stale epoch: the frame was in flight across a recovery session and the
   stop-world flush already discarded it logically *)

(* --- commands ---------------------------------------------------------- *)

let handle_cmd t ~seq ~now cmd =
  match (cmd : Wire.cmd) with
  | C_checkpoint ->
    let sys = sys_exn t in
    Middleware.basic_checkpoint sys.mw ~now;
    reply t ~seq (Wire.R_done { events = drain t; state = state_of sys })
  | C_send { dst } ->
    let sys = sys_exn t in
    let m = Middleware.prepare_send sys.mw ~dst ~now in
    Transport.send t.tr ~dst
      (Wire.App
         {
           epoch = t.epoch;
           msg_id = m.Middleware.msg_id;
           src = t.me;
           dv = m.Middleware.control.Control.dv;
           index = m.Middleware.control.Control.index;
         });
    reply t ~seq
      (Wire.R_sent
         { msg_id = m.Middleware.msg_id; events = drain t;
           state = state_of sys })
  | C_deliver { src; msg_id } -> begin
    match Hashtbl.find_opt t.staged (src, msg_id) with
    | Some (dv, index) ->
      Hashtbl.remove t.staged (src, msg_id);
      let sys = sys_exn t in
      do_deliver sys ~now ~src ~msg_id ~dv ~index;
      reply t ~seq (Wire.R_done { events = drain t; state = state_of sys })
    | None ->
      (* frame still in flight: deliver (and reply) on arrival *)
      t.armed <- Some { a_seq = seq; a_now = now; a_src = src; a_msg_id = msg_id }
  end
  | C_drop { src; msg_id } ->
    if Hashtbl.mem t.staged (src, msg_id) then
      Hashtbl.remove t.staged (src, msg_id)
    else Hashtbl.replace t.doomed (src, msg_id) ();
    let sys = sys_exn t in
    reply t ~seq (Wire.R_done { events = drain t; state = state_of sys })
  | C_flush { epoch } ->
    t.epoch <- epoch;
    Hashtbl.reset t.staged;
    Hashtbl.reset t.doomed;
    t.armed <- None;
    let sys = sys_exn t in
    reply t ~seq (Wire.R_done { events = drain t; state = state_of sys })
  | C_snapshot ->
    let sys = sys_exn t in
    reply t ~seq
      (Wire.R_snapshot
         {
           entries = Stable_store.retained sys.store;
           live_dv = Dependency_vector.to_array (Middleware.dv sys.mw);
           last = Stable_store.last_index sys.store;
         })
  | C_rollback { to_index; li } ->
    let sys = sys_exn t in
    Middleware.rollback sys.mw ~to_index ~li;
    reply t ~seq (Wire.R_done { events = drain t; state = state_of sys })
  | C_release { li } ->
    let sys = sys_exn t in
    Rdt_lgc.release_outdated sys.lgc ~li;
    reply t ~seq (Wire.R_done { events = drain t; state = state_of sys })
  | C_state ->
    let sys = sys_exn t in
    reply t ~seq (Wire.R_state { state = state_of sys })
  | C_shutdown ->
    let sys = sys_exn t in
    Log_store.close sys.log;
    t.finished <- true;
    reply t ~seq (Wire.R_done { events = drain t; state = state_of sys })

(* --- event handler ----------------------------------------------------- *)

let handle t (ev : Transport.event) =
  match ev with
  | Transport.Frame { src; frame = Wire.App { epoch; msg_id; src = _; dv; index } }
    ->
    handle_app t ~src ~frame_epoch:epoch ~msg_id ~dv ~index
  | Transport.Frame { src; frame = Wire.Cmd { seq; now; cmd } }
    when src = Transport.coordinator_id ->
    (* at-most-once: the coordinator retransmits commands it got no
       reply to (nemesis drop/delay), and commands are not idempotent —
       dedup by seq and resend the cached reply instead of re-executing *)
    if seq < t.last_seq then ()
    else if seq = t.last_seq then begin
      match t.last_reply with
      | Some r ->
        Transport.send t.tr ~dst:Transport.coordinator_id
          (Wire.Reply { seq; reply = r })
      | None -> ()  (* completed pre-crash; the coordinator moved on *)
    end
    else begin
      match t.armed with
      | Some a when a.a_seq = seq ->
        ()  (* retransmission of the armed delivery; arrival will reply *)
      | _ -> begin
        try handle_cmd t ~seq ~now cmd
        with e ->
          reply t ~seq (Wire.R_error { message = Printexc.to_string e })
      end
    end
  | Transport.Frame
      { src;
        frame =
          Wire.Config
            { n; protocol; knowledge = _; ckpt_bytes; epoch; ports; history;
              sends_ever; last_seq } }
    when src = Transport.coordinator_id -> begin
    match t.sys with
    | Some _ when epoch = t.epoch ->
      (* duplicate Config — the coordinator retrying a lost Ready; the
         boot already happened, just re-affirm *)
      Transport.send t.tr ~dst:Transport.coordinator_id
        (Wire.Ready { pid = t.me })
    | Some _ -> ()  (* stale straggler from an earlier epoch *)
    | None ->
      let recovering = not (List.is_empty history) in
      boot t ~n ~protocol ~ckpt_bytes ~epoch ~history ~sends_ever ~last_seq;
      (* establish the peer mesh: on a fresh start lower ids are dialed by
         higher ids (one link per pair); a respawned node redials everyone,
         and the peers' transports swap in the new link *)
      for j = 0 to n - 1 do
        if j <> t.me && (recovering || j < t.me) then
          Transport.connect t.tr ~dst:j ~port:ports.(j)
      done;
      Transport.send t.tr ~dst:Transport.coordinator_id
        (Wire.Ready { pid = t.me })
  end
  | Transport.Timer { id } when id = hello_timer_id -> begin
    match t.hello with
    | Some resend ->
      resend ();
      Transport.set_timer t.tr ~id:hello_timer_id ~after:hello_retry
    | None -> ()
  end
  | Transport.Peer_down { peer } when peer = Transport.coordinator_id ->
    t.coord_down <- true
  | Transport.Frame { src = _; frame = Wire.Hello _ }
  | Transport.Frame { src = _; frame = Wire.Ident _ }
  | Transport.Frame { src = _; frame = Wire.Ready _ }
  | Transport.Frame { src = _; frame = Wire.Reply _ }
  | Transport.Frame { src = _; frame = Wire.Cmd _ }
  | Transport.Frame { src = _; frame = Wire.Config _ }
  | Transport.Garbled _  (* corruption detected and resynchronized past *)
  | Transport.Peer_down _ | Transport.Timer _ ->
    ()

(* --- lifecycle --------------------------------------------------------- *)

let create ~transport ~dir () =
  let me = Transport.me transport in
  Harness.mkdir_p dir;
  (match Sys.getenv_opt "RDTGC_TEST_DUP_DELIVER" with
  | Some "1" -> test_dup_deliver := true
  | _ -> ());
  let t =
    {
      tr = transport;
      me;
      dir;
      epoch = 0;
      sys = None;
      staged = Hashtbl.create 16;
      doomed = Hashtbl.create 16;
      armed = None;
      events = [];
      last_seq = 0;
      last_reply = None;
      hello = None;
      finished = false;
      coord_down = false;
    }
  in
  let sdir = store_dir t in
  let recovering =
    Sys.file_exists sdir && Array.length (Sys.readdir sdir) > 0
  in
  Transport.set_handler transport (handle t);
  let send_hello () =
    Transport.send transport ~dst:Transport.coordinator_id
      (Wire.Hello
         { pid = me; port = Transport.listen_port transport; recovering })
  in
  send_hello ();
  (* registration is unacknowledged until Config: keep re-sending in case
     the Hello was lost (set_handler above replays any buffered Config,
     so [hello] may already be cleared by the time we get here) *)
  if
    match t.sys with
    | None -> true
    | Some _ -> false
  then begin
    t.hello <- Some send_hello;
    Transport.set_timer transport ~id:hello_timer_id ~after:hello_retry
  end;
  t

let finished t = t.finished

let main ~transport ~dir () =
  let t = create ~transport ~dir () in
  (* after C_shutdown, linger until the coordinator hangs up: its ack may
     have been lost (nemesis), and the retransmitted command must still
     find this process alive to resend the cached reply *)
  while not (t.finished && t.coord_down) do
    match Transport.poll transport ~timeout:1.0 with
    | `Progress | `Timeout -> ()
    | `Idle -> failwith "node: transport went idle"
  done;
  Transport.close transport
