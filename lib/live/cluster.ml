(* The local cluster launcher: every scenario process becomes a real OS
   process on loopback TCP with its own durable store directory under
   [root/p<pid>], stdout/stderr streamed to [root/p<pid>/node.log].  The
   coordinator runs in the calling process; kills are SIGKILL (volatile
   state genuinely lost, the durable log genuinely recovered).

   Two ways to make a node process:
   - [Fork]: [Unix.fork] and run {!Node.main} in the child — the test
     backend, no executable needed.
   - [Exec s]: spawn [s node --me .. --dir .. --coord-port ..] — the CLI
     backend ({!node_main} is the entry point the subcommand calls). *)

module Transport = Rdt_transport.Transport
module Nemesis = Rdt_transport.Nemesis
module Harness = Rdt_verify.Harness
module Scenario = Rdt_verify.Scenario

type backend =
  | Fork
  | Exec of string  (** the executable; must route [node] to {!node_main} *)

let node_dir = Sim_cluster.node_dir
let log_file root pid = Filename.concat (node_dir root pid) "node.log"

(* --- node process bodies ------------------------------------------------ *)

let node_main ~me ~dir ~coord_port ?nemesis () =
  let tr = Tcp_transport.create ~me () in
  let tr =
    match nemesis with
    | None -> tr
    | Some cfg -> snd (Nemesis.wrap cfg tr)
  in
  Transport.connect tr ~dst:Transport.coordinator_id ~port:coord_port;
  Node.main ~transport:tr ~dir ()

let with_log_fd root pid f =
  let fd =
    Unix.openfile (log_file root pid)
      [ O_WRONLY; O_CREAT; O_APPEND ]
      0o644
  in
  Fun.protect ~finally:(fun () -> Unix.close fd) (fun () -> f fd)

let spawn_fork ~root ~coord_port ?nemesis pid =
  match Unix.fork () with
  | 0 ->
    let code =
      try
        with_log_fd root pid (fun fd ->
            Unix.dup2 fd Unix.stdout;
            Unix.dup2 fd Unix.stderr);
        node_main ~me:pid ~dir:(node_dir root pid) ~coord_port ?nemesis ();
        0
      with e ->
        Printf.eprintf "node %d: %s\n%!" pid (Printexc.to_string e);
        1
    in
    (* child: never unwind into the parent's code *)
    Unix._exit code
  | child -> child

let spawn_exec ~exe ~root ~coord_port ?nemesis pid =
  let argv =
    [
      exe; "node";
      "--me"; string_of_int pid;
      "--dir"; node_dir root pid;
      "--coord-port"; string_of_int coord_port;
    ]
    @ (match nemesis with
      | None -> []
      | Some cfg -> [ "--nemesis"; Nemesis.to_string cfg ])
  in
  with_log_fd root pid (fun fd ->
      Unix.create_process exe (Array.of_list argv) Unix.stdin fd fd)

(* --- process reaping ---------------------------------------------------- *)

let kill_process os_pid =
  (try Unix.kill os_pid Sys.sigkill with Unix.Unix_error _ -> ());
  try ignore (Unix.waitpid [] os_pid) with Unix.Unix_error _ -> ()

let reap ~deadline os_pid =
  let rec go () =
    match Unix.waitpid [ WNOHANG ] os_pid with
    | 0, _ ->
      if Unix.gettimeofday () > deadline then kill_process os_pid
      else begin
        ignore (Unix.select [] [] [] 0.05);
        go ()
      end
    | _ -> ()
    | exception Unix.Unix_error (ECHILD, _, _) -> ()
  in
  go ()

let log_tail root pid ~lines =
  let path = log_file root pid in
  if not (Sys.file_exists path) then ""
  else begin
    let ic = open_in path in
    let all = ref [] in
    (try
       while true do
         all := input_line ic :: !all
       done
     with End_of_file -> ());
    close_in ic;
    let rec take k = function
      | x :: rest when k > 0 -> x :: take (k - 1) rest
      | _ -> []
    in
    String.concat "\n" (List.rev (take lines !all))
  end

(* --- the run ------------------------------------------------------------ *)

let run ~scenario ~root ~backend ?timeout ?nemesis ?on_nemesis ?log () =
  let sc = Scenario.normalize scenario in
  let n = sc.Scenario.n in
  Harness.rm_rf root;
  Harness.mkdir_p root;
  for pid = 0 to n - 1 do
    Harness.mkdir_p (node_dir root pid)
  done;
  let coord = Tcp_transport.create ~me:Transport.coordinator_id () in
  let coord, handles =
    match nemesis with
    | None -> (coord, [])
    | Some cfg ->
      let h, tr = Nemesis.wrap cfg coord in
      (tr, [ h ])
  in
  (match on_nemesis with Some f -> f handles | None -> ());
  let coord_port = Transport.listen_port coord in
  let os_pids = Array.make n 0 in
  let spawn pid =
    os_pids.(pid) <-
      (match backend with
      | Fork -> spawn_fork ~root ~coord_port ?nemesis pid
      | Exec exe -> spawn_exec ~exe ~root ~coord_port ?nemesis pid)
  in
  let ctl =
    {
      Coordinator.kill = (fun pid -> kill_process os_pids.(pid));
      respawn = spawn;
    }
  in
  Fun.protect
    ~finally:(fun () -> Transport.close coord)
    (fun () ->
      for pid = 0 to n - 1 do
        spawn pid
      done;
      let result = Coordinator.run ~transport:coord ~ctl ~scenario:sc ?timeout ?log () in
      match result with
      | Ok record ->
        (* shutdown commands were acknowledged; give the processes a
           moment to exit on their own before forcing the issue *)
        let deadline = Unix.gettimeofday () +. 5.0 in
        Array.iter (fun os_pid -> reap ~deadline os_pid) os_pids;
        Ok record
      | Error msg ->
        Array.iter kill_process os_pids;
        let tails =
          List.init n (fun pid ->
              match log_tail root pid ~lines:20 with
              | "" -> ""
              | t -> Printf.sprintf "\n--- node %d log tail ---\n%s" pid t)
        in
        Error (msg ^ String.concat "" tails))
