(* The black-box checker: hold a live cluster run against the simulator.

   A {!Coordinator.run_record} is everything the coordinator observed —
   per-op protocol states, the mirrored transcript, recovery reports —
   plus the store directories the nodes left behind.  The checker replays
   the same scenario through {!Rdt_verify.Harness} (real middleware, the
   full oracle battery at every op) and, via the harness's [observe]
   hook, compares the live observations against the replayed script
   state op by op.  Afterwards it compares transcripts, recovery
   reports, and finally recovers every node's durable store directory
   and holds the recovered entry set against the replayed script's
   retained set.

   The state contract covers protocol state — DV, UC view, retained
   indices, application counter — not process-lifetime bookkeeping
   (basic/forced counts, store peak statistics), which a respawn
   legitimately resets. *)

module Wire = Rdt_transport.Wire
module Scenario = Rdt_verify.Scenario
module Oracles = Rdt_verify.Oracles
module Harness = Rdt_verify.Harness
module Script = Rdt_scenarios.Script
module Middleware = Rdt_protocols.Middleware
module Stable_store = Rdt_storage.Stable_store
module Log_store = Rdt_store.Log_store

type result = {
  violations : Oracles.violation list;  (** empty = the live run checks out *)
  replay : Harness.result;  (** the simulator arm, for inspection *)
}

let int_array_eq (a : int array) b =
  Array.length a = Array.length b
  && begin
       let ok = ref true in
       Array.iteri (fun i x -> if x <> b.(i) then ok := false) a;
       !ok
     end

let uc_eq (a : int option array) b =
  Array.length a = Array.length b
  && begin
       let ok = ref true in
       Array.iteri
         (fun i x -> if not (Option.equal Int.equal x b.(i)) then ok := false)
         a;
       !ok
     end

let pp_int_array ppf a =
  Format.fprintf ppf "[%s]"
    (String.concat ";" (Array.to_list (Array.map string_of_int a)))

let pp_uc ppf a =
  Format.fprintf ppf "[%s]"
    (String.concat ";"
       (Array.to_list
          (Array.map (function None -> "-" | Some i -> string_of_int i) a)))

let state_mismatches ~op ~pid (live : Wire.state) script =
  let v name detail = { Oracles.oracle = "live-state"; op; detail =
      Printf.sprintf "pid %d %s: %s" pid name detail } in
  let acc = ref [] in
  let script_dv = Script.dv script pid in
  if not (int_array_eq live.Wire.st_dv script_dv) then
    acc := v "dv" (Format.asprintf "live %a, replay %a"
                     pp_int_array live.Wire.st_dv pp_int_array script_dv)
          :: !acc;
  let script_uc = Script.uc script pid in
  if not (uc_eq live.Wire.st_uc script_uc) then
    acc := v "uc" (Format.asprintf "live %a, replay %a"
                     pp_uc live.Wire.st_uc pp_uc script_uc)
          :: !acc;
  let script_retained = Array.of_list (Script.retained script pid) in
  if not (int_array_eq live.Wire.st_retained script_retained) then
    acc := v "retained" (Format.asprintf "live %a, replay %a"
                           pp_int_array live.Wire.st_retained
                           pp_int_array script_retained)
          :: !acc;
  let script_app = Middleware.app_state (Script.middleware script pid) in
  if live.Wire.st_app <> script_app then
    acc := v "app" (Printf.sprintf "live %d, replay %d"
                      live.Wire.st_app script_app)
          :: !acc;
  List.rev !acc

let script_trace_string script =
  let path = Filename.temp_file "rdtgc-replay-trace" ".txt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Rdt_ccp.Trace.save (Script.trace script) path;
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      s)

let check_reports (live : Rdt_recovery.Session.report list) replayed =
  let pp = Rdt_recovery.Session.pp_report in
  if List.length live <> List.length replayed then
    [ { Oracles.oracle = "live-report"; op = -1;
        detail = Printf.sprintf "%d live recovery reports, %d replayed"
            (List.length live) (List.length replayed) } ]
  else
    List.concat
      (List.mapi
         (fun i (l, r) ->
           if
             List.equal Int.equal l.Rdt_recovery.Session.faulty
               r.Rdt_recovery.Session.faulty
             && int_array_eq l.Rdt_recovery.Session.line
                  r.Rdt_recovery.Session.line
             && List.equal Int.equal l.Rdt_recovery.Session.rolled_back
                  r.Rdt_recovery.Session.rolled_back
             && l.Rdt_recovery.Session.checkpoints_rolled_back
                = r.Rdt_recovery.Session.checkpoints_rolled_back
           then []
           else
             [ { Oracles.oracle = "live-report"; op = -1;
                 detail = Format.asprintf "session %d: live %a, replay %a"
                     i pp l pp r } ])
         (List.combine live replayed))

let check_stores ~root ~n script =
  List.concat
    (List.init n (fun pid ->
         let dir = Filename.concat (Sim_cluster.node_dir root pid) "store" in
         let log = Log_store.create ~config:Harness.log_config ~pid ~dir () in
         let recovered =
           Fun.protect
             ~finally:(fun () -> Log_store.close log)
             (fun () -> (Log_store.recovery log).Log_store.recovered)
         in
         let expected = Stable_store.retained (Script.store script pid) in
         if Harness.set_eq recovered expected then []
         else
           [ { Oracles.oracle = "live-durability"; op = -1;
               detail = Printf.sprintf
                   "pid %d: store dir recovered {%s}, replay retains {%s}"
                   pid
                   (String.concat ","
                      (List.map (fun (e : Stable_store.entry) ->
                           string_of_int e.Stable_store.index) recovered))
                   (String.concat ","
                      (List.map (fun (e : Stable_store.entry) ->
                           string_of_int e.Stable_store.index) expected)) } ]))

let check ~record ~root ?scratch_dir () =
  let sc = record.Coordinator.rr_scenario in
  let by_op = Hashtbl.create 64 in
  List.iter
    (fun (o : Coordinator.observation) ->
      Hashtbl.replace by_op o.Coordinator.obs_op o.Coordinator.obs_states)
    record.Coordinator.rr_observations;
  let observe ~op script =
    match Hashtbl.find_opt by_op op with
    | None -> []
    | Some states ->
      List.concat_map
        (fun (pid, live) -> state_mismatches ~op ~pid live script)
        states
  in
  let replay = Harness.run ?scratch_dir ~observe sc in
  let tail =
    if not (List.is_empty replay.Harness.violations) then []
    else
      match replay.Harness.script with
      | None -> [ { Oracles.oracle = "live-replay"; op = -1;
                    detail = "replay produced no script" } ]
      | Some script ->
        let trace_viol =
          let replayed = script_trace_string script in
          if String.equal record.Coordinator.rr_trace replayed then []
          else
            [ { Oracles.oracle = "live-trace"; op = -1;
                detail = "live transcript differs from replayed trace" } ]
        in
        trace_viol
        @ check_reports record.Coordinator.rr_reports replay.Harness.reports
        @ check_stores ~root ~n:sc.Scenario.n script
  in
  { violations = replay.Harness.violations @ tail; replay }
