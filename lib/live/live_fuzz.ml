(* The live-runtime fuzzing campaign: random scenarios under random
   nemesis schedules against a whole cluster (simulator-backed or real
   TCP processes), black-box checked, failures shrunk and saved as
   (seed, scenario, nemesis) reproducers.

   Output discipline (Sim backend): every logged line is a pure
   function of the arguments — no timestamps, no absolute paths, no
   wall-clock-dependent verdicts — so a campaign's output is
   byte-reproducible (pinned by a test). *)

module Prng = Rdt_sim.Prng
module Nemesis = Rdt_transport.Nemesis
module Scenario = Rdt_verify.Scenario
module Oracles = Rdt_verify.Oracles
module Harness = Rdt_verify.Harness
module Shrink = Rdt_verify.Shrink

type backend = Sim | Live of Cluster.backend

type failure = {
  run : int;
  sub_seed : int;
  scenario : Scenario.t;
  nemesis : Nemesis.config;
  violation : Oracles.violation;
  shrunk : Scenario.t option;
}

type report = {
  runs : int;
  failures : failure list;
  corpus_replayed : int;
  corpus_failed : int;
}

let passed r = List.is_empty r.failures && r.corpus_failed = 0

(* The live cluster always runs real durable stores (respawn recovers
   from disk) and has no hook to crash a store mid-mutation, so
   generated scenarios are forced onto that configuration. *)
let sanitize sc =
  Scenario.normalize { sc with Scenario.durable = true; store_fault = None }

let run_one ~backend ~root ?timeout ~nemesis sc =
  let result =
    match backend with
    | Sim -> Sim_cluster.run ~scenario:sc ~root ~nemesis ()
    | Live be ->
      Cluster.run ~scenario:sc ~root ~backend:be ?timeout ~nemesis ()
  in
  match result with
  | Error msg -> Error msg
  | Ok record ->
    let scratch = root ^ ".replay" in
    let c = Checker.check ~record ~root ~scratch_dir:scratch () in
    Ok c.Checker.violations

let first_line s =
  match String.index_opt s '\n' with
  | None -> s
  | Some i -> String.sub s 0 i

let verdict_of = function
  | Error msg -> Printf.sprintf "RUN-FAILED(%s)" (first_line msg)
  | Ok [] -> "ok"
  | Ok (v :: _) ->
    Printf.sprintf "VIOLATION(%s@%d)" v.Oracles.oracle v.Oracles.op

let violation_of = function
  | Error msg -> { Oracles.oracle = "live-run"; op = -1; detail = first_line msg }
  | Ok (v :: _) -> v
  | Ok [] -> invalid_arg "violation_of: passing run"

(* --- shrinking ---------------------------------------------------------- *)

let sim_shrink_budget = 300
let live_shrink_budget = 40

let still_fails ~backend ~run_root ?timeout ~nemesis ~oracle sc =
  match run_one ~backend ~root:run_root ?timeout ~nemesis sc with
  | Error _ -> String.equal oracle "live-run"
  | Ok vs ->
    List.exists
      (fun (v : Oracles.violation) -> String.equal v.oracle oracle)
      vs

let shrink_failure ~backend ~run_root ?timeout ~nemesis ~oracle sc =
  let check b cand = still_fails ~backend:b ~run_root ?timeout ~nemesis ~oracle cand in
  match backend with
  | Sim -> Shrink.minimize_with ~budget:sim_shrink_budget ~check:(check Sim) sc
  | Live _ ->
    (* every shrink candidate is a full cluster run: prefer the
       in-process simulator arm when it reproduces the failure, and
       only pay for live candidate runs — on a tight budget — when the
       failure is live-only *)
    if check Sim sc then
      Shrink.minimize_with ~budget:sim_shrink_budget ~check:(check Sim) sc
    else
      Shrink.minimize_with ~budget:live_shrink_budget ~check:(check backend)
        sc

(* --- corpus ------------------------------------------------------------- *)

(* a committed scenario's fault schedule sits in a sibling [.nms] file;
   [x.min.scn] falls back to [x.nms], and no sibling means a
   transparent nemesis *)
let nemesis_for dir scn_file =
  let base = Filename.chop_suffix scn_file ".scn" in
  let cand = Filename.concat dir (base ^ ".nms") in
  let cand =
    if Sys.file_exists cand || not (Filename.check_suffix base ".min") then
      cand
    else Filename.concat dir (Filename.chop_suffix base ".min" ^ ".nms")
  in
  if not (Sys.file_exists cand) then Ok Nemesis.default
  else begin
    let ic = open_in cand in
    let line = try input_line ic with End_of_file -> "" in
    close_in ic;
    Nemesis.of_string line
  end

let replay_corpus ~backend ~run_root ?timeout ~log dir =
  if not (Sys.file_exists dir) then (0, 0)
  else begin
    let files =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".scn")
      |> List.sort compare
    in
    List.fold_left
      (fun (seen, failed) file ->
        match Scenario.load (Filename.concat dir file) with
        (* a corpus directory may also hold reproducers for the
           store-fault fuzz harness; the live cluster has no hook to
           crash a store mid-mutation, so those cannot be replayed here *)
        | Ok sc
          when Option.is_some sc.Scenario.store_fault
               || not sc.Scenario.durable ->
          log (Printf.sprintf "corpus %s: skipped (not live-representable)" file);
          (seen, failed)
        | loaded ->
          let outcome =
            match loaded with
            | Error e -> Error (Printf.sprintf "unreadable scenario (%s)" e)
            | Ok sc -> begin
              match nemesis_for dir file with
              | Error e -> Error (Printf.sprintf "unreadable nemesis (%s)" e)
              | Ok nemesis ->
                run_one ~backend ~root:run_root ?timeout ~nemesis sc
            end
          in
          log (Printf.sprintf "corpus %s: %s" file (verdict_of outcome));
          ( seen + 1,
            match outcome with Ok [] -> failed | _ -> failed + 1 ))
      (0, 0) files
  end

let save_failure ~log ~dir ~sub_seed ~nemesis sc shrunk =
  Harness.mkdir_p dir;
  let base = Printf.sprintf "seed-%x" sub_seed in
  Scenario.save sc (Filename.concat dir (base ^ ".scn"));
  let oc = open_out (Filename.concat dir (base ^ ".nms")) in
  output_string oc (Nemesis.to_string nemesis ^ "\n");
  close_out oc;
  log (Printf.sprintf "saved %s.scn and %s.nms" base base);
  match shrunk with
  | None -> ()
  | Some min_sc ->
    Scenario.save min_sc (Filename.concat dir (base ^ ".min.scn"));
    log (Printf.sprintf "saved %s.min.scn" base)

(* --- the campaign ------------------------------------------------------- *)

let with_mutation enabled f =
  if not enabled then f ()
  else begin
    (* in-process nodes (sim / fork children) read the global; exec'd
       node processes inherit the environment variable *)
    Node.set_test_dup_deliver true;
    Unix.putenv "RDTGC_TEST_DUP_DELIVER" "1";
    Fun.protect
      ~finally:(fun () ->
        Node.set_test_dup_deliver false;
        Unix.putenv "RDTGC_TEST_DUP_DELIVER" "")
      f
  end

let campaign ?(backend = Sim) ?(shrink = true) ?corpus ?(log = fun _ -> ())
    ?timeout ?(mutate_deliver = false) ~seed ~runs ~max_procs ~root () =
  Harness.rm_rf root;
  Harness.mkdir_p root;
  with_mutation mutate_deliver @@ fun () ->
  let run_root = Filename.concat root "run" in
  let corpus_replayed, corpus_failed =
    match corpus with
    | Some dir when not mutate_deliver ->
      replay_corpus ~backend ~run_root ?timeout ~log dir
    | _ -> (0, 0)
  in
  let prng = Prng.create ~seed in
  let failures = ref [] in
  for run = 0 to runs - 1 do
    let sub_seed = Int64.to_int (Prng.bits64 prng) land max_int in
    let sc = sanitize (Scenario.generate ~seed:sub_seed ~max_procs ()) in
    let nemesis = Nemesis.gen ~seed:sub_seed ~n:sc.Scenario.n in
    let outcome = run_one ~backend ~root:run_root ?timeout ~nemesis sc in
    log
      (Printf.sprintf "run %04d %s nemesis[%s]: %s" run
         (Format.asprintf "%a" Scenario.pp sc)
         (Format.asprintf "%a" Nemesis.pp nemesis)
         (verdict_of outcome));
    match outcome with
    | Ok [] -> ()
    | _ ->
      let violation = violation_of outcome in
      let shrunk =
        if shrink then begin
          let min_sc =
            shrink_failure ~backend ~run_root ?timeout ~nemesis
              ~oracle:violation.Oracles.oracle sc
          in
          log
            (Printf.sprintf "shrunk 0x%x: %d ops, %d procs (from %d ops, %d \
                             procs)"
               sub_seed (Scenario.op_count min_sc) min_sc.Scenario.n
               (Scenario.op_count sc) sc.Scenario.n);
          Some min_sc
        end
        else None
      in
      (match corpus with
      | Some dir -> save_failure ~log ~dir ~sub_seed ~nemesis sc shrunk
      | None -> ());
      failures := { run; sub_seed; scenario = sc; nemesis; violation; shrunk } :: !failures
  done;
  let report =
    { runs; failures = List.rev !failures; corpus_replayed; corpus_failed }
  in
  log
    (Printf.sprintf "live campaign: %d runs, %d failures%s" runs
       (List.length report.failures)
       (if corpus_replayed > 0 then
          Printf.sprintf ", corpus %d/%d ok" (corpus_replayed - corpus_failed)
            corpus_replayed
        else ""));
  report
