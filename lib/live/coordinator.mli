(** The cluster-side scenario driver.

    Plays a normalized {!Rdt_verify.Scenario.t} against live nodes as a
    serialized workload, mirroring every node-reported trace event into a
    coordinator-side transcript.  A [Crash] op kills the faulty processes
    for real (through [ctl]), flushes the survivors into the next epoch,
    respawns the victims from their durable stores, and drives a
    distributed recovery session using {!Rdt_recovery.Session.plan} — the
    same pure decision step the in-memory session applies.

    The coordinator's virtual clock mirrors {!Rdt_scenarios.Script.tick}
    exactly (one unit per checkpoint/send/deliver, one per crash, none
    per drop) and is carried inside every command, so live checkpoint
    [taken_at] stamps equal the simulator replay's. *)

type ctl = {
  kill : int -> unit;  (** hard-kill a node (volatile state is lost) *)
  respawn : int -> unit;  (** start it again over the same directory *)
}

type observation = {
  obs_op : int;  (** scenario op index *)
  obs_states : (int * Rdt_transport.Wire.state) list;
      (** per-pid protocol state reported right after the op *)
}

type run_record = {
  rr_scenario : Rdt_verify.Scenario.t;  (** the normalized scenario run *)
  rr_observations : observation list;  (** in op order *)
  rr_trace : string;  (** mirrored transcript, {!Rdt_ccp.Trace} text *)
  rr_reports : Rdt_recovery.Session.report list;
      (** one per crash op, derived from the distributed plan *)
}

val run :
  transport:Rdt_transport.Transport.t ->
  ctl:ctl ->
  scenario:Rdt_verify.Scenario.t ->
  ?timeout:float ->
  ?log:(string -> unit) ->
  unit ->
  (run_record, string) result
(** Drive the whole scenario; nodes must have been spawned (their
    [Hello]s may already be buffered in the transport's mailbox).
    [timeout] (default 60s) bounds each wait for a node response.
    Returns [Error] on node failure, unexpected death, or timeout —
    callers collect logs and stores either way. *)
