(** One live process: the full protocol stack (middleware, RDT-LGC
    collector, durable {!Rdt_store.Log_store}, local transcript) behind a
    transport endpoint, driven entirely by coordinator commands and peer
    App frames.  Backend-agnostic: runs as its own OS process over TCP and
    in-process over the simulator backend.

    On creation the node sends [Hello] (announcing its peer port and
    whether its store directory already holds data) and waits for
    [Config]; a non-empty [Config.history] selects the respawn path,
    which rebuilds volatile state from the recovered durable log plus the
    coordinator's transcript of the node's own surviving events. *)

type t

val create : transport:Rdt_transport.Transport.t -> dir:string -> unit -> t
(** Install the node behind [transport] and send [Hello].  [dir] is the
    node's private directory; the durable store lives in [dir/store].
    The node runs reactively through the transport's handler — callers
    that own the event loop (the simulator cluster) need nothing else. *)

val finished : t -> bool
(** True once [C_shutdown] was processed (store closed). *)

val set_test_dup_deliver : bool -> unit
(** Test override: deliver every message twice — a real duplication bug
    the live-fuzz campaign must catch (acceptance self-check).  Global;
    exec'd node processes enable it via [RDTGC_TEST_DUP_DELIVER=1]. *)

val main : transport:Rdt_transport.Transport.t -> dir:string -> unit -> unit
(** [create] then poll until shutdown; the body of a node OS process. *)
