(** The real-network transport backend: framed {!Rdt_transport.Wire}
    frames over loopback TCP, a select-based poll loop, wall-clock
    timers.

    Endpoints listen on an ephemeral 127.0.0.1 port
    ({!Rdt_transport.Transport.listen_port}); outbound connections open
    with an [Ident] preamble so the accepting side can map the socket to
    a pid, and frames sent to a peer that has not connected yet wait in
    a pending queue until it does.  A peer's socket dying (EOF, reset)
    surfaces as [Peer_down] unless a newer connection from the same pid
    already replaced it (respawn). *)

val create : me:int -> unit -> Rdt_transport.Transport.t
(** A fresh endpoint for [me] (pass
    {!Rdt_transport.Transport.coordinator_id} for the coordinator).
    Installs a SIGPIPE-ignore handler. *)
