(* The cluster-side scenario driver: plays a {!Rdt_verify.Scenario.t}
   against live nodes as a serialized workload (one command in flight at
   a time), mirrors every node-reported trace event into a transcript,
   and — on a crash op — kills the faulty processes for real, respawns
   them, and drives a distributed recovery session with the same pure
   plan ({!Rdt_recovery.Session.plan}) the in-memory session applies.

   The virtual clock mirrors {!Rdt_scenarios.Script.tick} (one unit per
   op, drops excepted) and travels inside each command, so checkpoint
   [taken_at] stamps — and hence durable store bytes — are identical to
   the simulator replay's. *)

module Transport = Rdt_transport.Transport
module Wire = Rdt_transport.Wire
module Trace = Rdt_ccp.Trace
module Global_gc = Rdt_gc.Global_gc
module Session = Rdt_recovery.Session
module Scenario = Rdt_verify.Scenario
module Harness = Rdt_verify.Harness

type ctl = { kill : int -> unit; respawn : int -> unit }

type observation = { obs_op : int; obs_states : (int * Wire.state) list }

type run_record = {
  rr_scenario : Scenario.t;
  rr_observations : observation list;
  rr_trace : string;  (** the mirrored transcript, {!Rdt_ccp.Trace} text *)
  rr_reports : Session.report list;
}

exception Failed of string

let failf fmt = Printf.ksprintf (fun m -> raise (Failed m)) fmt

type t = {
  tr : Transport.t;
  ctl : ctl;
  sc : Scenario.t;
  timeout : float;
  log : string -> unit;
  inbox : Transport.event Queue.t;
  stash : Transport.event Queue.t;  (* frames a wait skipped over *)
  mirror : Trace.t;
  mutable clock : float;
  mutable seq : int;
  mutable epoch : int;
  ports : int array;
  down : bool array;
  sends_ever : int array;
  msgs : (int, int * int * int) Hashtbl.t;  (* scenario id -> src, msg_id, dst *)
  mutable observations : observation list;  (* newest first *)
  mutable reports : Session.report list;  (* newest first *)
}

let tick co =
  co.clock <- co.clock +. 1.0;
  co.clock

(* --- event plumbing ---------------------------------------------------- *)

(* Bounded retry with backoff: under a nemesis, frames the coordinator
   sends (and the replies they elicit) can be dropped or delayed, so
   every send-and-wait is retransmitted on a backoff schedule.  Receivers
   are idempotent against that (command seqs and Config epochs dedup), and
   the nemesis guarantees per-key punch-through below [max_attempts], so
   a partitioned node heals instead of wedging the run. *)
let poll_slice = 0.1
let max_attempts = 8

(* The initial RTO only needs to clear the nemesis's worst-case delay
   (~0.1s hold) plus processing on a loopback link; keeping it tight is
   what makes fault-heavy fuzz campaigns affordable in wall-clock time.
   A spurious retransmission is harmless — receivers dedup by seq. *)
let initial_rto = 0.25
let max_rto = 2.0

(* one event, or None once [deadline] passes / the backend drains — under
   virtual time the drained queue IS the timeout (nothing can arrive
   until the waiter acts), which is what makes retransmission reachable
   on the simulator backend too *)
let next_event_opt co ~deadline =
  let rec go () =
    match Queue.take_opt co.inbox with
    | Some ev -> Some ev
    | None -> begin
      let now = Transport.now co.tr in
      if now >= deadline then None
      else begin
        match
          Transport.poll co.tr ~timeout:(Float.min poll_slice (deadline -. now))
        with
        | `Progress | `Timeout -> go ()
        | `Idle -> None
      end
    end
  in
  go ()

(* Frames from concurrent nodes arrive in any order (n [Ready]s during
   registration, say); a frame the current wait does not accept is
   stashed and offered to later waits instead of treated as fatal. *)
let await_opt co ~what ~deadline ~accept =
  let rec from_stash acc =
    match Queue.take_opt co.stash with
    | None ->
      Queue.transfer acc co.stash;
      None
    | Some ev -> begin
      match accept ev with
      | Some v ->
        Queue.transfer co.stash acc;
        Queue.transfer acc co.stash;
        Some v
      | None ->
        Queue.add ev acc;
        from_stash acc
    end
  in
  match from_stash (Queue.create ()) with
  | Some v -> Some v
  | None ->
    let rec live () =
      match next_event_opt co ~deadline with
      | None -> None
      | Some ev -> begin
        match accept ev with
        | Some v -> Some v
        | None -> begin
          match ev with
          | Transport.Peer_down { peer } when peer >= 0 && co.down.(peer) ->
            live () (* the kill we just issued *)
          | Transport.Peer_down { peer } ->
            failf "coordinator: node %d died waiting for %s" peer what
          | Transport.Timer _ -> live ()
          | Transport.Garbled { peer; error } ->
            co.log
              (Format.asprintf "garbled frame from %s: %a"
                 (match peer with
                 | Some p -> string_of_int p
                 | None -> "unidentified peer")
                 Wire.pp_error error);
            live () (* the link resynchronized; retry covers the loss *)
          | Transport.Frame _ ->
            Queue.add ev co.stash;
            live ()
        end
      end
    in
    live ()

let await co ~what ~accept =
  match
    await_opt co ~what ~deadline:(Transport.now co.tr +. co.timeout) ~accept
  with
  | Some v -> v
  | None -> failf "coordinator: timed out waiting for %s" what

let with_retry co ~what ~send ~accept =
  let deadline = Transport.now co.tr +. co.timeout in
  let rec go attempt rto =
    send ();
    let att_deadline = Float.min deadline (Transport.now co.tr +. rto) in
    match await_opt co ~what ~deadline:att_deadline ~accept with
    | Some v -> v
    | None ->
      if attempt + 1 >= max_attempts then
        failf "coordinator: no answer to %s after %d attempts" what
          (attempt + 1)
      else if Transport.now co.tr >= deadline then
        failf "coordinator: timed out waiting for %s" what
      else go (attempt + 1) (Float.min (rto *. 2.0) max_rto)
  in
  go 0 initial_rto

let record_events co ~pid evs =
  List.iter
    (fun ev ->
      match (ev : Wire.tev) with
      | T_ckpt { index } -> Trace.record_checkpoint co.mirror ~pid ~index
      | T_send { msg_id; dst } ->
        co.sends_ever.(pid) <- co.sends_ever.(pid) + 1;
        Trace.record_send co.mirror ~pid ~msg_id ~dst
      | T_recv { msg_id; src } ->
        Trace.record_receive co.mirror ~pid ~msg_id ~src)
    evs

let command co ~dst ~now ~what cmd =
  co.seq <- co.seq + 1;
  let seq = co.seq in
  (* one frame, retransmitted verbatim: the node dedups by seq and
     resends its cached reply, so retries never re-execute the command *)
  let frame = Wire.Cmd { seq; now; cmd } in
  let reply =
    with_retry co ~what
      ~send:(fun () -> Transport.send co.tr ~dst frame)
      ~accept:(function
        | Transport.Frame { src; frame = Wire.Reply { seq = s; reply } }
          when src = dst && s = seq ->
          Some reply
        | _ -> None)
  in
  match reply with
  | Wire.R_error { message } -> failf "node %d: %s (during %s)" dst message what
  | reply -> reply

(* a command whose reply is R_done/R_sent: record events, return state *)
let simple co ~dst ~now ~what cmd =
  match command co ~dst ~now ~what cmd with
  | Wire.R_done { events; state } ->
    record_events co ~pid:dst events;
    state
  | _ -> failf "node %d: wrong reply kind to %s" dst what

let query_state co ~pid =
  match command co ~dst:pid ~now:co.clock ~what:"state query" Wire.C_state with
  | Wire.R_state { state } -> state
  | _ -> failf "node %d: wrong reply kind to state query" pid

let observe co ~op states =
  co.observations <- { obs_op = op; obs_states = states } :: co.observations

(* --- registration ------------------------------------------------------ *)

let await_hello co ~expect_pid ~expect_recovering =
  await co ~what:"node registration"
    ~accept:(function
      | Transport.Frame { src; frame = Wire.Hello { pid; port; recovering } }
        when src = pid
             && (match expect_pid with Some p -> pid = p | None -> true)
             && recovering = expect_recovering ->
        Some (pid, port)
      | _ -> None)

let config_frame co ~history ~sends_ever =
  Wire.Config
    {
      n = co.sc.Scenario.n;
      protocol = co.sc.Scenario.protocol.Rdt_protocols.Protocol.id;
      knowledge = co.sc.Scenario.knowledge;
      ckpt_bytes = 1;
      epoch = co.epoch;
      ports = Array.copy co.ports;
      history;
      sends_ever;
      (* every allocated seq has completed (serialized protocol), so this
         restores the respawned node's at-most-once watermark: a delayed
         retransmission of any pre-crash command can never re-execute *)
      last_seq = co.seq;
    }

(* Config-and-await-Ready, retransmitted as one unit: the node treats a
   duplicate Config for its current epoch as "re-affirm readiness". *)
let handshake co ~pid ~history ~sends_ever =
  let frame = config_frame co ~history ~sends_ever in
  with_retry co ~what:(Printf.sprintf "node %d readiness" pid)
    ~send:(fun () -> Transport.send co.tr ~dst:pid frame)
    ~accept:(function
      | Transport.Frame { src; frame = Wire.Ready { pid = p } }
        when src = pid && p = pid ->
        Some ()
      | _ -> None)

let register_fresh co =
  let n = co.sc.Scenario.n in
  let seen = Array.make n false in
  let remaining = ref n in
  while !remaining > 0 do
    let pid, port = await_hello co ~expect_pid:None ~expect_recovering:false in
    (* nodes re-send Hello until configured: duplicates just re-announce
       the same port, only the first sighting counts *)
    co.ports.(pid) <- port;
    if not seen.(pid) then begin
      seen.(pid) <- true;
      decr remaining
    end
  done;
  for pid = 0 to n - 1 do
    handshake co ~pid ~history:[] ~sends_ever:0
  done;
  (* the transcript starts like the simulator's: every process stores s^0
     (the nodes' bootstrap did it before event capture began) *)
  for pid = 0 to n - 1 do
    Trace.record_checkpoint co.mirror ~pid ~index:0
  done

(* --- crash + recovery session ------------------------------------------ *)

let history_of co ~pid =
  List.map
    (fun (ev : Trace.event) ->
      match ev.Trace.kind with
      | Trace.Checkpoint { index } -> Wire.T_ckpt { index }
      | Trace.Send { msg_id; dst } -> Wire.T_send { msg_id; dst }
      | Trace.Receive { msg_id; src } -> Wire.T_recv { msg_id; src })
    (Trace.events_of co.mirror ~pid)

(* Frames a dead incarnation sent must not satisfy the respawn handshake:
   a stale stashed Hello would re-register a dead port (peers would dial
   into nothing), a stale Ready would complete the handshake before
   recovery actually booted. *)
let purge_stale co ~pid =
  let keep = Queue.create () in
  Queue.iter
    (fun ev ->
      match ev with
      | Transport.Frame { src; frame = Wire.Hello _ | Wire.Ready _ }
        when src = pid ->
        ()
      | ev -> Queue.add ev keep)
    co.stash;
  Queue.clear co.stash;
  Queue.transfer keep co.stash

let crash_op co ~op ~faulty =
  let n = co.sc.Scenario.n in
  let now = tick co in
  let is_faulty = Array.make n false in
  List.iter (fun f -> is_faulty.(f) <- true) faulty;
  (* 1. kill the faulty processes (SIGKILL over TCP, receiver drop in the
     simulator): volatile state is really lost *)
  List.iter
    (fun f ->
      co.down.(f) <- true;
      co.ctl.kill f;
      purge_stale co ~pid:f)
    faulty;
  (* 2. stop-world flush: survivors discard staged frames and enter the
     next epoch; frames still in flight die by epoch mismatch *)
  co.epoch <- co.epoch + 1;
  for pid = 0 to n - 1 do
    if not is_faulty.(pid) then
      ignore
        (simple co ~dst:pid ~now ~what:"flush" (Wire.C_flush { epoch = co.epoch }))
  done;
  (* 3. respawn each faulty process from its durable store, handing it
     the transcript of its own surviving events (message-id restoration
     included).  All respawns must re-register BEFORE any Config goes
     out: a respawned node redials every peer from the Config's port
     table, so on a simultaneous multi-crash the table must already
     hold the other respawns' new ports — a dead incarnation's port is
     an ECONNREFUSED crash in the redialing node. *)
  List.iter (fun f -> co.ctl.respawn f) faulty;
  List.iter
    (fun f ->
      let _, port = await_hello co ~expect_pid:(Some f) ~expect_recovering:true in
      co.ports.(f) <- port;
      co.down.(f) <- false)
    faulty;
  List.iter
    (fun f ->
      handshake co ~pid:f ~history:(history_of co ~pid:f)
        ~sends_ever:co.sends_ever.(f))
    faulty;
  (* 4. gather every process's stable state — the recovery manager's
     state query *)
  let snapshots = Array.make n { Global_gc.entries = [||]; live_dv = [||] } in
  let last = Array.make n (-1) in
  for pid = 0 to n - 1 do
    match
      command co ~dst:pid ~now ~what:"snapshot" Wire.C_snapshot
    with
    | Wire.R_snapshot { entries; live_dv; last = l } ->
      snapshots.(pid) <-
        { Global_gc.entries = Array.of_list entries; live_dv };
      last.(pid) <- l
    | _ -> failf "node %d: wrong reply kind to snapshot" pid
  done;
  (* 5. the same pure decision the in-memory session makes *)
  let plan = Session.plan ~snapshots ~last ~faulty in
  let li_arg =
    match co.sc.Scenario.knowledge with
    | `Global -> Some plan.Session.p_li
    | `Causal -> None
  in
  for pid = 0 to n - 1 do
    if plan.Session.p_rollback.(pid) then begin
      ignore
        (simple co ~dst:pid ~now ~what:"rollback"
           (Wire.C_rollback
              { to_index = plan.Session.p_line.(pid); li = li_arg }));
      Trace.truncate_to_checkpoint co.mirror ~pid
        ~index:plan.Session.p_line.(pid)
    end
    else begin
      match co.sc.Scenario.knowledge with
      | `Global ->
        ignore
          (simple co ~dst:pid ~now ~what:"release"
             (Wire.C_release { li = plan.Session.p_li }))
      | `Causal -> ()
    end
  done;
  co.reports <- Session.report_of_plan plan ~faulty :: co.reports;
  (* 6. observe every process, like the replay's post-crash oracles *)
  observe co ~op (List.init n (fun pid -> (pid, query_state co ~pid)))

(* --- the run ----------------------------------------------------------- *)

let execute co ~op (sop : Scenario.op) =
  match sop with
  | Scenario.Checkpoint p ->
    let now = tick co in
    let state = simple co ~dst:p ~now ~what:"checkpoint" Wire.C_checkpoint in
    observe co ~op [ (p, state) ]
  | Scenario.Send { id; src; dst } ->
    let now = tick co in
    begin
      match command co ~dst:src ~now ~what:"send" (Wire.C_send { dst }) with
      | Wire.R_sent { msg_id; events; state } ->
        record_events co ~pid:src events;
        Hashtbl.replace co.msgs id (src, msg_id, dst);
        observe co ~op [ (src, state) ]
      | _ -> failf "node %d: wrong reply kind to send" src
    end
  | Scenario.Deliver id -> begin
    match Hashtbl.find_opt co.msgs id with
    | None -> failf "scenario op %d delivers unknown message %d" op id
    | Some (src, msg_id, dst) ->
      let now = tick co in
      let state =
        simple co ~dst ~now ~what:"deliver" (Wire.C_deliver { src; msg_id })
      in
      observe co ~op [ (dst, state) ]
  end
  | Scenario.Drop id -> begin
    match Hashtbl.find_opt co.msgs id with
    | None -> failf "scenario op %d drops unknown message %d" op id
    | Some (src, msg_id, dst) ->
      (* no tick: the script clock ignores losses *)
      let state =
        simple co ~dst ~now:co.clock ~what:"drop" (Wire.C_drop { src; msg_id })
      in
      observe co ~op [ (dst, state) ]
  end
  | Scenario.Crash faulty -> crash_op co ~op ~faulty

let trace_to_string trace =
  let path = Filename.temp_file "rdtgc-live-trace" ".txt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out path in
      Trace.to_channel trace oc;
      close_out oc;
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      s)

let run ~transport ~ctl ~scenario ?(timeout = 60.0) ?(log = ignore) () =
  let sc = Scenario.normalize scenario in
  let co =
    {
      tr = transport;
      ctl;
      sc;
      timeout;
      log;
      inbox = Queue.create ();
      stash = Queue.create ();
      mirror = Trace.create ~n:sc.Scenario.n;
      clock = 0.0;
      seq = 0;
      epoch = 0;
      ports = Array.make sc.Scenario.n 0;
      down = Array.make sc.Scenario.n false;
      sends_ever = Array.make sc.Scenario.n 0;
      msgs = Hashtbl.create 64;
      observations = [];
      reports = [];
    }
  in
  Transport.set_handler co.tr (fun ev -> Queue.add ev co.inbox);
  match
    co.log "registering nodes";
    register_fresh co;
    List.iteri
      (fun op sop ->
        co.log (Format.asprintf "op %d: %a" op Scenario.pp_op sop);
        execute co ~op sop)
      sc.Scenario.ops;
    co.log "shutting down";
    for pid = 0 to sc.Scenario.n - 1 do
      ignore (simple co ~dst:pid ~now:co.clock ~what:"shutdown" Wire.C_shutdown)
    done
  with
  | () ->
    Ok
      {
        rr_scenario = sc;
        rr_observations = List.rev co.observations;
        rr_trace = trace_to_string co.mirror;
        rr_reports = List.rev co.reports;
      }
  | exception Failed msg -> Error msg
