(** Live-runtime fuzzing: random scenarios under random nemesis fault
    schedules against a whole cluster, checked black-box.

    Each run derives a sub-seed from the root seed (splitmix64),
    generates a {!Rdt_verify.Scenario} (sanitized: always durable,
    never a store fault — the live cluster recovers real stores and has
    no hook to crash one mid-mutation), pairs it with a
    {!Rdt_transport.Nemesis.gen} fault config from the same sub-seed,
    runs the cluster, and holds the run against the {!Checker} oracle
    battery.  Failures are delta-debugged to a minimal scenario — on
    the simulator arm when it reproduces the failure there (fast,
    deterministic), on the live backend with a small budget otherwise —
    and saved to the corpus as [seed-<hex>.scn] + [seed-<hex>.nms] +
    [seed-<hex>.min.scn]: the seed pair is the complete reproducer.

    With a corpus directory, committed [*.scn] files are replayed first
    as regressions (each under its sibling [.nms] schedule, or a
    transparent nemesis when absent) and must pass.

    On the {!Sim} backend everything — generation, execution, verdicts,
    every [log] line — is a pure function of the arguments, so equal
    seeds produce byte-identical campaign output. *)

type backend =
  | Sim  (** in-process {!Sim_cluster}: deterministic, fast *)
  | Live of Cluster.backend  (** real OS processes over loopback TCP *)

type failure = {
  run : int;  (** generated-run index, [-1] for a corpus regression *)
  sub_seed : int;  (** regenerates both scenario and nemesis config *)
  scenario : Rdt_verify.Scenario.t;
  nemesis : Rdt_transport.Nemesis.config;
  violation : Rdt_verify.Oracles.violation;
      (** first violation; oracle ["live-run"] means the cluster run
          itself failed (coordinator timeout, node crash loop) *)
  shrunk : Rdt_verify.Scenario.t option;
}

type report = {
  runs : int;
  failures : failure list;
  corpus_replayed : int;
  corpus_failed : int;
}

val passed : report -> bool
(** No generated-run failures and no corpus regressions. *)

val run_one :
  backend:backend ->
  root:string ->
  ?timeout:float ->
  nemesis:Rdt_transport.Nemesis.config ->
  Rdt_verify.Scenario.t ->
  (Rdt_verify.Oracles.violation list, string) result
(** One cluster run + checker verdict under [root] (wiped); the
    building block tests use to replay a single [.scn]/[.nms] pair. *)

val campaign :
  ?backend:backend ->
  ?shrink:bool ->
  ?corpus:string ->
  ?log:(string -> unit) ->
  ?timeout:float ->
  ?mutate_deliver:bool ->
  seed:int ->
  runs:int ->
  max_procs:int ->
  root:string ->
  unit ->
  report
(** [backend] defaults to {!Sim}; [root] is the campaign's scratch
    directory (wiped).  [timeout] bounds each live run's coordinator
    waits.  [mutate_deliver] is the self-check configuration: every
    node delivers each message twice
    ({!Node.set_test_dup_deliver}, forwarded to exec'd nodes via the
    environment), the campaign must catch it, and corpus replay is
    skipped (committed reproducers would "fail" by design). *)
