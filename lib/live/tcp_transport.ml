(* The real-network backend: one listening socket per endpoint on
   127.0.0.1, length-prefixed CRC-framed {!Rdt_transport.Wire} frames
   over TCP, a select-based poll loop with timers.

   Socket-to-pid mapping is by transport-level preamble: every outbound
   connection starts with an [Ident] frame naming the dialing endpoint,
   and an inbound connection surfaces nothing until that preamble
   arrives.  Re-identification replaces the previous mapping (a
   respawned process dialing back in); the stale socket then dies
   without a [Peer_down].  Frames queued for a peer that has not
   connected yet wait in a pending queue — the coordinator never dials
   nodes, its replies ride the inbound connections. *)

module Transport = Rdt_transport.Transport
module Wire = Rdt_transport.Wire

type conn = {
  fd : Unix.file_descr;
  mutable peer : int option;  (* set by the Ident preamble *)
  mutable rbuf : Bytes.t;
  mutable rlen : int;
  mutable alive : bool;
}

type t = {
  me : int;
  listen_fd : Unix.file_descr;
  port : int;
  mailbox : Transport.Mailbox.t;
  mutable conns : conn list;
  by_peer : (int, conn) Hashtbl.t;
  pending_out : (int, Wire.frame Queue.t) Hashtbl.t;
  timers : (int, float) Hashtbl.t;  (* id -> absolute deadline *)
  mutable closed : bool;
}

let grow c need =
  let cap = Bytes.length c.rbuf in
  if c.rlen + need > cap then begin
    let cap' = max (c.rlen + need) (cap * 2) in
    let b = Bytes.create cap' in
    Bytes.blit c.rbuf 0 b 0 c.rlen;
    c.rbuf <- b
  end

let new_conn fd =
  Unix.set_nonblock fd;
  { fd; peer = None; rbuf = Bytes.create 4096; rlen = 0; alive = true }

(* --- write side -------------------------------------------------------- *)

exception Conn_dead of conn

let write_all conn bytes =
  (* Frames are small (< max_frame_bytes) and peers drain their sockets
     in every poll, so a briefly-full buffer just spins here. *)
  let len = Bytes.length bytes in
  let pos = ref 0 in
  while !pos < len do
    match Unix.write conn.fd bytes !pos (len - !pos) with
    | w -> pos := !pos + w
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
      ignore (Unix.select [] [ conn.fd ] [] 1.0)
    | exception Unix.Unix_error ((EPIPE | ECONNRESET | EBADF), _, _) ->
      raise (Conn_dead conn)
  done

let bury t conn ~notify =
  if conn.alive then begin
    conn.alive <- false;
    (try Unix.close conn.fd with Unix.Unix_error _ -> ());
    t.conns <- List.filter (fun c -> c != conn) t.conns;
    match conn.peer with
    (* physical equality on the mapped connection itself: find_opt's
       [Some] box is a fresh allocation, so [== Some conn] would never
       match and the death would go unreported *)
    | Some peer
      when (match Hashtbl.find_opt t.by_peer peer with
           | Some c -> c == conn
           | None -> false) ->
      Hashtbl.remove t.by_peer peer;
      if notify then
        Transport.Mailbox.deliver t.mailbox (Transport.Peer_down { peer })
    | _ -> ()
  end

let send_on t conn frame =
  try write_all conn (Wire.encode frame)
  with Conn_dead c -> bury t c ~notify:true

let send t ~dst frame =
  match Hashtbl.find_opt t.by_peer dst with
  | Some conn -> send_on t conn frame
  | None ->
    let q =
      match Hashtbl.find_opt t.pending_out dst with
      | Some q -> q
      | None ->
        let q = Queue.create () in
        Hashtbl.replace t.pending_out dst q;
        q
    in
    Queue.add frame q

let flush_pending t peer conn =
  match Hashtbl.find_opt t.pending_out peer with
  | None -> ()
  | Some q ->
    Hashtbl.remove t.pending_out peer;
    Queue.iter (fun frame -> send_on t conn frame) q

(* --- read side --------------------------------------------------------- *)

let identify t conn pid =
  conn.peer <- Some pid;
  (match Hashtbl.find_opt t.by_peer pid with
  | Some old when old != conn ->
    (* a respawned process dialed back in: the old socket is stale and
       its eventual EOF must not read as a fresh death *)
    bury t old ~notify:false
  | _ -> ());
  Hashtbl.replace t.by_peer pid conn;
  flush_pending t pid conn

let garbled t conn error =
  Transport.Mailbox.deliver t.mailbox
    (Transport.Garbled { peer = conn.peer; error })

let drain_frames t conn =
  let again = ref true in
  while !again && conn.alive do
    again := false;
    if conn.rlen >= Wire.header_bytes then begin
      match Wire.decode_header conn.rbuf ~pos:0 ~len:conn.rlen with
      | Error (Wire.Truncated _) -> ()
      | Error e ->
        (* the length prefix itself is garbage, so the next frame
           boundary is unknowable: surface the error and drop the link *)
        garbled t conn e;
        bury t conn ~notify:true
      | Ok header ->
        let total = Wire.header_bytes + header.Wire.h_len in
        if conn.rlen >= total then begin
          let consume () =
            Bytes.blit conn.rbuf total conn.rbuf 0 (conn.rlen - total);
            conn.rlen <- conn.rlen - total;
            again := true
          in
          match
            Wire.decode_body header conn.rbuf ~pos:Wire.header_bytes
              ~len:conn.rlen
          with
          | Error e ->
            (* the header was sound, so the frame boundary is known:
               skip exactly this frame and resynchronize at the next —
               corruption costs one frame, never the whole link *)
            garbled t conn e;
            consume ()
          | Ok frame ->
            consume ();
            (match (frame, conn.peer) with
            | Wire.Ident { pid }, _ -> identify t conn pid
            | _, Some peer ->
              Transport.Mailbox.deliver t.mailbox
                (Transport.Frame { src = peer; frame })
            | _, None ->
              (* protocol violation: the preamble must come first *)
              bury t conn ~notify:false)
        end
    end
  done

let read_ready t conn =
  grow conn 4096;
  match Unix.read conn.fd conn.rbuf conn.rlen (Bytes.length conn.rbuf - conn.rlen) with
  | 0 ->
    if conn.rlen > 0 then begin
      (* the peer hung up mid-frame: those bytes can never decode *)
      let wanted =
        match Wire.decode_header conn.rbuf ~pos:0 ~len:conn.rlen with
        | Ok h -> Wire.header_bytes + h.Wire.h_len
        | Error _ -> Wire.header_bytes
      in
      garbled t conn (Wire.Truncated { wanted; have = conn.rlen })
    end;
    bury t conn ~notify:true
  | k ->
    conn.rlen <- conn.rlen + k;
    drain_frames t conn
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error ((ECONNRESET | EPIPE | EBADF), _, _) ->
    bury t conn ~notify:true

let accept_ready t =
  match Unix.accept t.listen_fd with
  | fd, _ -> t.conns <- new_conn fd :: t.conns
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()

(* --- timers ------------------------------------------------------------ *)

let fire_timers t =
  let now = Unix.gettimeofday () in
  let due =
    Hashtbl.fold
      (fun id deadline acc -> if deadline <= now then id :: acc else acc)
      t.timers []
  in
  List.iter
    (fun id ->
      Hashtbl.remove t.timers id;
      Transport.Mailbox.deliver t.mailbox (Transport.Timer { id }))
    (List.sort compare due)

let next_deadline t =
  Hashtbl.fold
    (fun _ d acc ->
      match acc with None -> Some d | Some a -> Some (min a d))
    t.timers None

(* --- the endpoint ------------------------------------------------------ *)

let poll t ~timeout =
  if t.closed then `Idle
  else begin
    let before = Transport.Mailbox.delivered t.mailbox in
    let wait =
      let cap =
        match next_deadline t with
        | None -> timeout
        | Some d -> min timeout (max 0.0 (d -. Unix.gettimeofday ()))
      in
      max 0.0 cap
    in
    let conns = t.conns in
    let fds = t.listen_fd :: List.map (fun c -> c.fd) conns in
    (match Unix.select fds [] [] wait with
    | readable, _, _ ->
      (* fd values compare physically: on Unix a file_descr is an int.
         Reads first, accept after — a conn buried mid-loop has its fd
         closed, and accepting last keeps a reused fd number from being
         read as the old connection. *)
      List.iter
        (fun conn ->
          if conn.alive && List.memq conn.fd readable then read_ready t conn)
        conns;
      if List.memq t.listen_fd readable then accept_ready t
    | exception Unix.Unix_error (EINTR, _, _) -> ());
    fire_timers t;
    if Transport.Mailbox.delivered t.mailbox > before then `Progress
    else `Timeout
  end

let connect t ~dst ~port =
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  (try
     Unix.connect fd (ADDR_INET (Unix.inet_addr_loopback, port));
     Unix.setsockopt fd TCP_NODELAY true
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  let conn = new_conn fd in
  conn.peer <- Some dst;
  t.conns <- conn :: t.conns;
  (match Hashtbl.find_opt t.by_peer dst with
  | Some old when old != conn -> bury t old ~notify:false
  | _ -> ());
  Hashtbl.replace t.by_peer dst conn;
  send_on t conn (Wire.Ident { pid = t.me });
  flush_pending t dst conn

let close t =
  if not t.closed then begin
    t.closed <- true;
    List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) t.conns;
    t.conns <- [];
    Hashtbl.reset t.by_peer;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ())
  end

let create ~me () =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let listen_fd = Unix.socket PF_INET SOCK_STREAM 0 in
  Unix.setsockopt listen_fd SO_REUSEADDR true;
  Unix.bind listen_fd (ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen listen_fd 64;
  Unix.set_nonblock listen_fd;
  let port =
    match Unix.getsockname listen_fd with
    | ADDR_INET (_, port) -> port
    | ADDR_UNIX _ -> assert false
  in
  let t =
    {
      me;
      listen_fd;
      port;
      mailbox = Transport.Mailbox.create ();
      conns = [];
      by_peer = Hashtbl.create 16;
      pending_out = Hashtbl.create 16;
      timers = Hashtbl.create 8;
      closed = false;
    }
  in
  {
    Transport.me;
    now = Unix.gettimeofday;
    send = (fun ~dst frame -> send t ~dst frame);
    send_raw =
      (fun ~dst bytes ->
        (* the nemesis corruption hatch: raw bytes go only to peers with
           an established link — there is no meaningful way to corrupt a
           frame that is still waiting in the pending queue *)
        match Hashtbl.find_opt t.by_peer dst with
        | Some conn -> (
          try write_all conn bytes with Conn_dead c -> bury t c ~notify:true)
        | None -> ());
    connect = (fun ~dst ~port -> connect t ~dst ~port);
    listen_port = port;
    set_timer =
      (fun ~id ~after ->
        Hashtbl.replace t.timers id (Unix.gettimeofday () +. after));
    set_handler = (fun h -> Transport.Mailbox.set t.mailbox h);
    poll = (fun ~timeout -> poll t ~timeout);
    close = (fun () -> close t);
  }
