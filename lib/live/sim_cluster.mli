(** The simulator-backed cluster: coordinator and all nodes in this
    process over {!Rdt_transport.Sim_backend}, with real durable stores
    under [root/p<pid>/store].  Deterministic: a run is a pure function
    of [(scenario, seed)] — two runs yield byte-identical run records
    (the live–sim differential's control arm). *)

val node_dir : string -> int -> string
(** [node_dir root pid] — the node's private directory. *)

val run :
  scenario:Rdt_verify.Scenario.t ->
  root:string ->
  ?seed:int ->
  ?nemesis:Rdt_transport.Nemesis.config ->
  ?on_nemesis:(Rdt_transport.Nemesis.t list -> unit) ->
  ?log:(string -> unit) ->
  unit ->
  (Coordinator.run_record, string) result
(** Wipes [root], spawns [n] in-process nodes, drives the scenario.
    Store directories are left in place for the checker.

    [nemesis] decorates {e every} endpoint — each node and the
    coordinator — with {!Rdt_transport.Nemesis.wrap}, so faults apply
    per directed link exactly as on the TCP backend; killing a node
    also discards its held (delayed) frames, matching what SIGKILL does
    to a real process.  [on_nemesis] receives the wrapper handles
    (nodes in pid order, coordinator last) before the run starts, for
    stats/schedule inspection afterwards. *)
