(** The simulator-backed cluster: coordinator and all nodes in this
    process over {!Rdt_transport.Sim_backend}, with real durable stores
    under [root/p<pid>/store].  Deterministic: a run is a pure function
    of [(scenario, seed)] — two runs yield byte-identical run records
    (the live–sim differential's control arm). *)

val node_dir : string -> int -> string
(** [node_dir root pid] — the node's private directory. *)

val run :
  scenario:Rdt_verify.Scenario.t ->
  root:string ->
  ?seed:int ->
  ?log:(string -> unit) ->
  unit ->
  (Coordinator.run_record, string) result
(** Wipes [root], spawns [n] in-process nodes, drives the scenario.
    Store directories are left in place for the checker. *)
