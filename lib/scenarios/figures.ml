module Trace = Rdt_ccp.Trace
module Ccp = Rdt_ccp.Ccp
module Protocol = Rdt_protocols.Protocol

(* ------------------------------------------------------------------ *)
(* Figure 1: the example CCP.                                          *)
(*                                                                     *)
(* p0: s0 --m1--> ........ s1 .. m3,m5 sends ........... (volatile)    *)
(* p1: s0 .. recv m1, send m2 .. s1 .. send m4, recv m5  (volatile)    *)
(* p2: s0 .. recv m2 .. s1 .. recv m3, recv m4 .. s2 ... (volatile)    *)
(* ------------------------------------------------------------------ *)

type figure1 = {
  ccp : Ccp.t;
  trace : Trace.t;
  m1 : int;
  m2 : int;
  m3 : int;
  m4 : int;
  m5 : int;
}

let figure1_trace ~with_m3 =
  let t = Trace.init_with_initial_checkpoints ~n:3 in
  let m1 = Trace.send t ~src:0 ~dst:1 in
  Trace.receive t ~msg_id:m1 ~src:0 ~dst:1;
  let m2 = Trace.send t ~src:1 ~dst:2 in
  Trace.checkpoint t 1 (* s1 of p1 *);
  let m4 = Trace.send t ~src:1 ~dst:2 in
  Trace.checkpoint t 0 (* s1 of p0 *);
  let m3 =
    if with_m3 then begin
      let m3 = Trace.send t ~src:0 ~dst:2 in
      Some m3
    end
    else None
  in
  let m5 = Trace.send t ~src:0 ~dst:1 in
  Trace.receive t ~msg_id:m5 ~src:0 ~dst:1;
  Trace.receive t ~msg_id:m2 ~src:1 ~dst:2;
  Trace.checkpoint t 2 (* s1 of p2 *);
  (match m3 with
  | Some m3 -> Trace.receive t ~msg_id:m3 ~src:0 ~dst:2
  | None -> ());
  Trace.receive t ~msg_id:m4 ~src:1 ~dst:2;
  Trace.checkpoint t 2 (* s2 of p2 *);
  (t, m1, m2, m3, m4, m5)

let figure1 () =
  match figure1_trace ~with_m3:true with
  | t, m1, m2, Some m3, m4, m5 ->
    { ccp = Ccp.of_trace t; trace = t; m1; m2; m3; m4; m5 }
  | _, _, _, None, _, _ -> assert false

let figure1_without_m3 () =
  let t, _, _, _, _, _ = figure1_trace ~with_m3:false in
  Ccp.of_trace t

(* ------------------------------------------------------------------ *)
(* Figure 2: ping-pong with crossing messages; without forced          *)
(* checkpoints every non-initial stable checkpoint is useless.         *)
(* ------------------------------------------------------------------ *)

type figure2 = {
  ccp : Ccp.t;
  trace : Trace.t;
  m1 : int;
  m2 : int;
  m3 : int;
  m4 : int;
}

let figure2 () =
  let t = Trace.init_with_initial_checkpoints ~n:2 in
  let m1 = Trace.send t ~src:1 ~dst:0 in
  Trace.receive t ~msg_id:m1 ~src:1 ~dst:0;
  Trace.checkpoint t 0 (* s1 of p0 *);
  let m2 = Trace.send t ~src:0 ~dst:1 in
  Trace.receive t ~msg_id:m2 ~src:0 ~dst:1;
  Trace.checkpoint t 1 (* s1 of p1 *);
  let m3 = Trace.send t ~src:1 ~dst:0 in
  Trace.receive t ~msg_id:m3 ~src:1 ~dst:0;
  Trace.checkpoint t 0 (* s2 of p0 *);
  let m4 = Trace.send t ~src:0 ~dst:1 in
  Trace.receive t ~msg_id:m4 ~src:0 ~dst:1;
  { ccp = Ccp.of_trace t; trace = t; m1; m2; m3; m4 }

let figure2_with_protocol protocol =
  let s = Script.create ~n:2 ~protocol ~with_lgc:false () in
  (* same interleaving; the protocol may interleave forced checkpoints *)
  Script.transfer s ~src:1 ~dst:0;
  Script.checkpoint s 0;
  Script.transfer s ~src:0 ~dst:1;
  Script.checkpoint s 1;
  Script.transfer s ~src:1 ~dst:0;
  Script.checkpoint s 0;
  Script.transfer s ~src:0 ~dst:1;
  s

(* ------------------------------------------------------------------ *)
(* Figure 4: the RDT-LGC execution, through real FDAS middleware with  *)
(* attached collectors.  Paper outcome (paper pids p1,p2,p3 = 0,1,2):  *)
(* s^2 of p2, s^1 and s^2 of p3 eliminated; the obsolete s^1 of p2     *)
(* stays because p2 never learns of p3's checkpoints after s^1_3.      *)
(* ------------------------------------------------------------------ *)

let figure4 () =
  let s = Script.create ~n:3 ~protocol:Protocol.fdas ~with_lgc:true () in
  Script.transfer s ~src:0 ~dst:1 (* p1 hears from p0, pins its s0 *);
  Script.transfer s ~src:1 ~dst:2 (* relays p0's dependency to p2 *);
  Script.checkpoint s 1 (* s1 of p1 *);
  Script.checkpoint s 2 (* s1 of p2 *);
  Script.transfer s ~src:2 ~dst:1 (* p1 learns s1 of p2: pins its s1 *);
  Script.checkpoint s 1 (* s2 of p1 *);
  Script.checkpoint s 1 (* s3 of p1: collects its s2 *);
  Script.checkpoint s 2 (* s2 of p2: collects its s1 *);
  Script.checkpoint s 2 (* s3 of p2: collects its s2 *);
  Script.transfer s ~src:1 ~dst:2 (* p2 learns p1 up to interval 4 *);
  s

(* ------------------------------------------------------------------ *)
(* Recovery-line CCP (Figure 3's role): two rounds of a 4-process      *)
(* chain with staggered checkpoints.                                   *)
(* ------------------------------------------------------------------ *)

let recovery_ccp () =
  let t = Trace.init_with_initial_checkpoints ~n:4 in
  (* each process checkpoints right after its send, so the ring message
     it later receives lands in a fresh interval and every zigzag hop is
     causal (the pattern is RD-trackable) *)
  let round () =
    Trace.message t ~src:0 ~dst:1;
    Trace.checkpoint t 0;
    Trace.message t ~src:1 ~dst:2;
    Trace.checkpoint t 1;
    Trace.message t ~src:2 ~dst:3;
    Trace.checkpoint t 2;
    Trace.message t ~src:3 ~dst:0;
    Trace.checkpoint t 3
  in
  round ();
  round ();
  (* a final half-round so the faulty processes' last checkpoints have
     propagated unevenly *)
  Trace.message t ~src:1 ~dst:3;
  Trace.message t ~src:2 ~dst:0;
  Ccp.of_trace t

(* ------------------------------------------------------------------ *)
(* Figure 5 worst case.                                                *)
(*                                                                     *)
(* Phase k (k = 0 .. n-1): p_k sends to every other process a message  *)
(* whose only fresh content is p_k's own latest interval (its          *)
(* transitive entries are exactly what the receivers already know, by  *)
(* construction), pinning the receivers' UC entry for p_k at their     *)
(* current last checkpoint; then every process takes a checkpoint.     *)
(* After phase n-1 every process retains exactly n checkpoints:        *)
(* {0..n-1} \ {own phase} plus the last one.                           *)
(* ------------------------------------------------------------------ *)

let worst_case ~n =
  if n < 2 then invalid_arg "Figures.worst_case: n must be at least 2";
  let s = Script.create ~n ~protocol:Protocol.fdas ~with_lgc:true () in
  for k = 0 to n - 1 do
    (* all sends of the phase leave before any delivery, so receivers'
       knowledge cannot flow back within the phase *)
    let msgs =
      List.filter_map
        (fun dst -> if dst = k then None else Some (Script.send s ~src:k ~dst))
        (List.init n Fun.id)
    in
    List.iter (Script.deliver s) msgs;
    for pid = 0 to n - 1 do
      Script.checkpoint s pid
    done
  done;
  s
