(** Scripted executions: drive real middleware (and optionally RDT-LGC)
    through an explicit sequence of sends, receives, checkpoints, message
    losses and crash–recovery sessions, without the discrete-event engine.

    Used to transcribe the paper's space-time diagrams event by event —
    the figures fix exact interleavings that a random simulation would
    never reproduce — and by the differential fuzzer ({!Rdt_verify}) as
    the replay substrate for generated scenarios and shrunk reproducers.
    Virtual time advances by one unit per operation. *)

type t

val create :
  ?knowledge:Rdt_recovery.Session.knowledge ->
  ?store_of:(me:int -> Rdt_storage.Stable_store.t) ->
  n:int ->
  protocol:Rdt_protocols.Protocol.t ->
  with_lgc:bool ->
  unit ->
  t
(** Fresh system; every process has stored its initial checkpoint and,
    when [with_lgc], has an attached RDT-LGC collector.  [knowledge]
    (default [`Global]) selects the recovery-session mode used by
    {!crash}.  [store_of] supplies pre-built (empty) stable stores — e.g.
    ones whose durability backend is a {!Rdt_store.Log_store} — one per
    process; default: fresh in-memory stores. *)

val n : t -> int

val checkpoint : t -> int -> unit
(** Basic checkpoint of one process. *)

type msg
(** An in-flight message. *)

val send : t -> src:int -> dst:int -> msg
val deliver : t -> msg -> unit
(** @raise Invalid_argument if already delivered, lost, or wrong script
    order (delivery is to the destination given at send time). *)

val transfer : t -> src:int -> dst:int -> unit
(** [send] immediately followed by [deliver] — for diagram arrows with no
    crossing. *)

val drop : t -> msg -> unit
(** Lose an in-flight message (the asynchronous model allows it); the
    message can no longer be delivered.
    @raise Invalid_argument if already delivered or already lost. *)

val alive : t -> msg -> bool
(** Still in flight: neither delivered, dropped, nor crash-flushed. *)

val crash : t -> faulty:int list -> Rdt_recovery.Session.report
(** Stop-world crash of [faulty] followed immediately by a centralized
    recovery session ({!Rdt_recovery.Session.run}) in the script's
    knowledge mode.  Every message still in flight is discarded first (the
    CCP excludes lost and in-transit messages); delivering one of them
    afterwards raises.
    @raise Invalid_argument on an empty or out-of-range faulty set. *)

val crash_count : t -> int
(** Recovery sessions run so far. *)

val knowledge : t -> Rdt_recovery.Session.knowledge

val middleware : t -> int -> Rdt_protocols.Middleware.t
val collector : t -> int -> Rdt_gc.Rdt_lgc.t option
val store : t -> int -> Rdt_storage.Stable_store.t

val dv : t -> int -> int array
(** Current dependency vector of one process. *)

val uc : t -> int -> int option array
(** Current UC view (requires [with_lgc]).
    @raise Invalid_argument otherwise. *)

val retained : t -> int -> int list
(** Currently retained checkpoint indices of one process. *)

val trace : t -> Rdt_ccp.Trace.t
val ccp : t -> Rdt_ccp.Ccp.t

val forced_taken : t -> int -> int
(** Forced checkpoints the protocol has injected at one process (scripts
    that transcribe figures usually assert this stays zero). *)
