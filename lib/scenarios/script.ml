module Middleware = Rdt_protocols.Middleware
module Rdt_lgc = Rdt_gc.Rdt_lgc
module Stable_store = Rdt_storage.Stable_store
module Dependency_vector = Rdt_causality.Dependency_vector
module Trace = Rdt_ccp.Trace
module Ccp = Rdt_ccp.Ccp
module Session = Rdt_recovery.Session

type msg = {
  payload : Middleware.message;
  dst : int;
  mutable delivered : bool;
  mutable dead : bool;  (* lost, or discarded by a crash while in flight *)
}

type t = {
  n : int;
  trace : Trace.t;
  middlewares : Middleware.t array;
  collectors : Rdt_lgc.t option array;
  knowledge : Session.knowledge;
  mutable in_flight : msg list;
  mutable crashes : int;
  mutable clock : float;
}

let create ?(knowledge = `Global) ?store_of ~n ~protocol ~with_lgc () =
  let trace = Trace.create ~n in
  let middlewares =
    Array.init n (fun me ->
        let store = Option.map (fun f -> f ~me) store_of in
        Middleware.create ~n ~me ~protocol ~trace ?store ())
  in
  let collectors =
    Array.init n (fun me ->
        if with_lgc then begin
          let mw = middlewares.(me) in
          let lgc =
            Rdt_lgc.create ~me ~store:(Middleware.store mw)
              ~dv:(Middleware.dv mw) ~n
          in
          Rdt_lgc.attach lgc mw;
          Some lgc
        end
        else None)
  in
  {
    n;
    trace;
    middlewares;
    collectors;
    knowledge;
    in_flight = [];
    crashes = 0;
    clock = 0.0;
  }

let n t = t.n

let tick t =
  t.clock <- t.clock +. 1.0;
  t.clock

let checkpoint t pid =
  Middleware.basic_checkpoint t.middlewares.(pid) ~now:(tick t)

let send t ~src ~dst =
  let payload = Middleware.prepare_send t.middlewares.(src) ~dst ~now:(tick t) in
  let m = { payload; dst; delivered = false; dead = false } in
  t.in_flight <- m :: t.in_flight;
  m

let forget t msg = t.in_flight <- List.filter (fun m -> m != msg) t.in_flight

let deliver t msg =
  if msg.delivered then invalid_arg "Script.deliver: already delivered";
  if msg.dead then
    invalid_arg "Script.deliver: message was lost (dropped or crash-flushed)";
  msg.delivered <- true;
  forget t msg;
  Middleware.receive t.middlewares.(msg.dst) msg.payload ~now:(tick t)

let transfer t ~src ~dst = deliver t (send t ~src ~dst)

let drop t msg =
  if msg.delivered then invalid_arg "Script.drop: already delivered";
  if msg.dead then invalid_arg "Script.drop: already lost";
  msg.dead <- true;
  forget t msg

let alive t msg = (not msg.delivered) && (not msg.dead) && List.memq msg t.in_flight

let crash t ~faulty =
  if List.is_empty faulty then invalid_arg "Script.crash: empty faulty set";
  List.iter
    (fun pid ->
      if pid < 0 || pid >= t.n then invalid_arg "Script.crash: bad pid")
    faulty;
  ignore (tick t);
  (* the stop-world session discards every in-transit message (the CCP
     excludes lost and in-transit messages) *)
  List.iter (fun m -> m.dead <- true) t.in_flight;
  t.in_flight <- [];
  t.crashes <- t.crashes + 1;
  let release_outdated pid ~li =
    match t.collectors.(pid) with
    | Some lgc -> Rdt_lgc.release_outdated lgc ~li
    | None -> ()
  in
  Session.run ~middlewares:t.middlewares ~faulty ~knowledge:t.knowledge
    ~release_outdated

let crash_count t = t.crashes
let knowledge t = t.knowledge
let middleware t pid = t.middlewares.(pid)
let collector t pid = t.collectors.(pid)
let store t pid = Middleware.store t.middlewares.(pid)
let dv t pid = Dependency_vector.to_array (Middleware.dv t.middlewares.(pid))

let uc t pid =
  match t.collectors.(pid) with
  | Some lgc -> Rdt_lgc.uc_view lgc
  | None -> invalid_arg "Script.uc: no collector attached"

let retained t pid = Stable_store.retained_indices (store t pid)
let trace t = t.trace
let ccp t = Ccp.of_trace t.trace
let forced_taken t pid = Middleware.forced_count t.middlewares.(pid)
