let magic = "RDTSEG01"
let magic_len = String.length magic
let frame_head_len = 8 (* u32 length + u32 crc *)
let frame_overhead = frame_head_len

(* Upper bound on a sane frame payload; anything larger read back from
   disk is treated as a torn/corrupt length field. *)
let max_payload = 64 * 1024 * 1024

type writer = {
  w_path : string;
  fd : Unix.file_descr;
  buf : Buffer.t;
  mutable pending : int;  (* records in [buf] *)
  mutable written : int;  (* bytes handed to write(2) *)
  mutable synced : int;  (* bytes covered by the last fsync *)
  mutable closed : bool;
}

let create_writer ~path =
  let fd = Unix.openfile path [ O_WRONLY; O_CREAT; O_TRUNC; O_CLOEXEC ] 0o644 in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  { w_path = path; fd; buf; pending = 0; written = 0; synced = 0; closed = false }

let path w = w.w_path

let frame payload =
  let len = Bytes.length payload in
  let b = Bytes.create (frame_head_len + len) in
  Bytes.set_int32_le b 0 (Int32.of_int len);
  Bytes.set_int32_le b 4 (Crc32.bytes payload ~pos:0 ~len);
  Bytes.blit payload 0 b frame_head_len len;
  b

let append w payload =
  if w.closed then invalid_arg "Segment.append: writer closed";
  Buffer.add_bytes w.buf (frame payload);
  w.pending <- w.pending + 1

let pending_records w = w.pending
let pending_bytes w = Buffer.length w.buf
let written_bytes w = w.written
let synced_bytes w = w.synced

let write_all fd b pos len =
  let pos = ref pos and left = ref len in
  while !left > 0 do
    let n = Unix.write fd b !pos !left in
    pos := !pos + n;
    left := !left - n
  done

let flush w =
  let len = Buffer.length w.buf in
  if len > 0 then begin
    write_all w.fd (Buffer.to_bytes w.buf) 0 len;
    Buffer.clear w.buf;
    w.pending <- 0;
    w.written <- w.written + len
  end

let sync w =
  flush w;
  Unix.fsync w.fd;
  w.synced <- w.written

let close ?(sync = true) w =
  if not w.closed then begin
    flush w;
    if sync then begin
      Unix.fsync w.fd;
      w.synced <- w.written
    end;
    w.closed <- true;
    Unix.close w.fd
  end

let abandon w =
  w.closed <- true;
  Buffer.clear w.buf;
  w.pending <- 0;
  Unix.close w.fd

(* --- crash mechanics --------------------------------------------------- *)

let crash_short_write w ~rng =
  let b = Buffer.to_bytes w.buf in
  let len = Bytes.length b in
  (* a strict prefix: at least nothing, at most all-but-one byte *)
  let keep = if len = 0 then 0 else Rdt_sim.Prng.int rng len in
  if keep > 0 then write_all w.fd b 0 keep;
  abandon w

let crash_drop_unsynced w =
  (* pending buffer evaporates and written-but-unsynced bytes roll back:
     the strongest legal data loss short of media failure *)
  Unix.ftruncate w.fd w.synced;
  abandon w

let crash_bit_flip w ~rng =
  flush w;
  if w.written > magic_len then begin
    let off = magic_len + Rdt_sim.Prng.int rng (w.written - magic_len) in
    let fd = Unix.openfile w.w_path [ O_RDWR; O_CLOEXEC ] 0o644 in
    ignore (Unix.lseek fd off SEEK_SET);
    let one = Bytes.create 1 in
    if Unix.read fd one 0 1 = 1 then begin
      Bytes.set one 0
        (Char.chr (Char.code (Bytes.get one 0) lxor (1 lsl Rdt_sim.Prng.int rng 8)));
      ignore (Unix.lseek fd off SEEK_SET);
      ignore (Unix.write fd one 0 1)
    end;
    Unix.close fd
  end;
  abandon w

(* --- scanning ---------------------------------------------------------- *)

type scan_stats = {
  records : int;
  dropped : int;
  torn_bytes : int;
  bad_magic : bool;
}

let read_file path =
  let ic = In_channel.open_bin path in
  Fun.protect ~finally:(fun () -> In_channel.close ic) (fun () ->
      In_channel.input_all ic)

let scan ~path ~f =
  let data = read_file path in
  let len = String.length data in
  if len = 0 then { records = 0; dropped = 0; torn_bytes = 0; bad_magic = false }
  else if len < magic_len || String.sub data 0 magic_len <> magic then
    { records = 0; dropped = 0; torn_bytes = len; bad_magic = true }
  else begin
    let b = Bytes.unsafe_of_string data in
    let records = ref 0 and dropped = ref 0 and torn = ref 0 in
    let off = ref magic_len in
    let stop = ref false in
    while (not !stop) && !off < len do
      if !off + frame_head_len > len then begin
        torn := len - !off;
        stop := true
      end
      else begin
        let plen = Int32.to_int (Bytes.get_int32_le b !off) land 0xffffffff in
        let crc = Bytes.get_int32_le b (!off + 4) in
        if plen > max_payload || !off + frame_head_len + plen > len then begin
          (* insane or overrunning length: a torn (or length-corrupted)
             tail — nothing past this point can be framed reliably *)
          torn := len - !off;
          stop := true
        end
        else begin
          let ppos = !off + frame_head_len in
          if Crc32.bytes b ~pos:ppos ~len:plen <> crc then incr dropped
          else begin
            match Record.decode (Bytes.sub b ppos plen) with
            | Ok r ->
              f ~frame_bytes:(frame_head_len + plen) r;
              incr records
            | Error _ -> incr dropped
          end;
          off := ppos + plen
        end
      end
    done;
    { records = !records; dropped = !dropped; torn_bytes = !torn; bad_magic = false }
  end
