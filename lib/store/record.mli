(** Typed log records and their binary encoding.

    The store is a redo log over three record kinds: a checkpoint write
    (the full {!Rdt_storage.Stable_store.entry}: dependency vector,
    piggyback metadata — taken-at time and synthetic state digest — and a
    payload blob of [size_bytes] filler standing in for the checkpointed
    application state, so on-disk bytes track configured checkpoint
    sizes), a single-checkpoint tombstone (garbage collection), and a
    truncation tombstone (rollback).

    Every record carries the owning process id and a log sequence number
    [lsn], globally monotone across segments.  Replay sorts by [lsn], so
    segment *file* order never matters for correctness — compaction may
    rewrite surviving records into fresh segments freely
    ({!Rdt_store.Log_store}).

    Encoding is little-endian, length-independent of the host; the frame
    around it (length prefix + CRC-32) is {!Rdt_store.Segment}'s job. *)

module Stable_store = Rdt_storage.Stable_store

type t =
  | Store of { pid : int; lsn : int; entry : Stable_store.entry }
  | Eliminate of { pid : int; lsn : int; index : int }
  | Truncate_above of { pid : int; lsn : int; index : int }
      (** drop every checkpoint with index strictly greater *)

val pid : t -> int
val lsn : t -> int

val encode : t -> Bytes.t
(** Payload bytes (unframed). *)

val decode : Bytes.t -> (t, string) result
(** Inverse of {!encode}; [Error] explains the malformation.  A CRC-valid
    frame should always decode — a decode error means a foreign or
    corrupted-yet-CRC-colliding record and is counted as dropped by the
    scan. *)

val filler_byte : payload:int -> k:int -> char
(** Deterministic content of the [k]-th payload filler byte — exposed so
    tests can verify what recovery read back. *)
