(** Store manifest: segment bookkeeping and cumulative counters.

    The manifest is written atomically (temp file + rename) on every
    segment roll, compaction and close.  It is deliberately *not* needed
    for correctness: replay discovers segments by directory scan and
    orders records by LSN, so a crash between a segment operation and the
    manifest rewrite loses nothing.  Recovery rebuilds the segment list
    from the directory and carries the counters over when the manifest is
    readable (its CRC line rejects partial writes). *)

type t = {
  segments : int list;  (** segment ids, ascending *)
  compactions : int;  (** cumulative compaction runs over the store's life *)
  bytes_reclaimed : int;  (** cumulative bytes deleted by compaction *)
  appended_records : int;  (** cumulative records ever appended *)
}

val empty : t

val file_name : string
(** ["MANIFEST"] *)

val write : dir:string -> t -> unit

val read : dir:string -> t option
(** [None] when missing, torn or corrupt — callers fall back to {!empty}
    plus a directory scan. *)
