module Prng = Rdt_sim.Prng

type kind = Short_write | Crash_before_sync | Bit_flip

exception Injected_crash of { op : int; kind : kind }

type plan = {
  fire_at : int;
  kind : kind;
  rng : Prng.t;
  mutable op : int;
  mutable fired : bool;
}

type t = plan option

let none = None

let at_op ~op ~kind ~rng =
  if op < 1 then invalid_arg "Fault.at_op: op must be >= 1";
  Some { fire_at = op; kind; rng; op = 0; fired = false }

let of_seed ~seed ~max_op =
  if max_op < 1 then invalid_arg "Fault.of_seed: max_op must be >= 1";
  let rng = Prng.create ~seed in
  let kind =
    match Prng.int rng 3 with
    | 0 -> Short_write
    | 1 -> Crash_before_sync
    | _ -> Bit_flip
  in
  at_op ~op:(1 + Prng.int rng max_op) ~kind ~rng

let armed = function
  | None -> false
  | Some p -> not p.fired

let kind_name = function
  | Short_write -> "short-write"
  | Crash_before_sync -> "crash-before-sync"
  | Bit_flip -> "bit-flip"

let tick = function
  | None -> None
  | Some p ->
    if p.fired then None
    else begin
      p.op <- p.op + 1;
      if p.op >= p.fire_at then begin
        p.fired <- true;
        Some (p.op, p.kind, p.rng)
      end
      else None
    end
