(** Segment files: the append-only units of the log-structured store.

    A segment is a magic header followed by frames, each
    [u32 length | u32 CRC-32 | payload] ({!Record} encodes the payload).
    Segments are created once, appended to while active, sealed, and only
    ever deleted whole (by compaction); nothing rewrites in place.

    The writer buffers frames ([append]) and hands batching to the store:
    [flush] issues one [write] for everything pending, [sync] additionally
    [fsync]s.  The three [crash_*] operations implement the fault model of
    {!Fault} — they leave the file exactly as the modeled crash would
    (torn batch prefix / unsynced data rolled back / flipped bit) and
    close the descriptor.

    The scanner replays a segment tolerantly: a frame whose length field
    is insane or runs past end-of-file ends the scan of that segment (a
    torn tail); a frame whose CRC or decoding fails is counted dropped and
    skipped, and the scan continues — one corrupt record never discards
    its neighbours. *)

type writer

val create_writer : path:string -> writer
(** Create (truncating) a fresh segment file.  The magic header is
    buffered like any payload, so a crash before the first flush leaves an
    empty file, which scans as zero records. *)

val path : writer -> string

val append : writer -> Bytes.t -> unit
(** Buffer one framed record (no syscall). *)

val pending_records : writer -> int
val pending_bytes : writer -> int

val written_bytes : writer -> int
(** Bytes pushed to the file so far (buffered bytes excluded). *)

val synced_bytes : writer -> int

val flush : writer -> unit
(** Write the pending buffer (one [write] per batch). *)

val sync : writer -> unit
(** [flush] then [fsync]. *)

val close : ?sync:bool -> writer -> unit
(** Flush, optionally fsync (default [true]), close. *)

(* Crash mechanics, driven by {!Log_store} when a fault fires: *)

val crash_short_write : writer -> rng:Rdt_sim.Prng.t -> unit
(** Persist only a random strict prefix of the pending buffer, then
    abandon the writer. *)

val crash_drop_unsynced : writer -> unit
(** Roll the file back to the last synced offset (the page cache never
    reached the disk), then abandon the writer. *)

val crash_bit_flip : writer -> rng:Rdt_sim.Prng.t -> unit
(** Flush pending data, flip one random bit of the record region, then
    abandon the writer. *)

(* Reading back: *)

type scan_stats = {
  records : int;  (** frames decoded and delivered *)
  dropped : int;  (** CRC- or decode-rejected frames skipped over *)
  torn_bytes : int;  (** trailing bytes abandoned as a torn tail *)
  bad_magic : bool;  (** file unrecognizable; nothing delivered *)
}

val scan : path:string -> f:(frame_bytes:int -> Record.t -> unit) -> scan_stats
(** Replay every readable record of the segment through [f].
    [frame_bytes] is the record's on-disk footprint (frame header
    included) — what compaction accounting needs. *)

val frame_overhead : int
(** Bytes the frame adds around a payload (length prefix + CRC). *)
