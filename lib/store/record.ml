module Stable_store = Rdt_storage.Stable_store

type t =
  | Store of { pid : int; lsn : int; entry : Stable_store.entry }
  | Eliminate of { pid : int; lsn : int; index : int }
  | Truncate_above of { pid : int; lsn : int; index : int }

let pid = function
  | Store { pid; _ } | Eliminate { pid; _ } | Truncate_above { pid; _ } -> pid

let lsn = function
  | Store { lsn; _ } | Eliminate { lsn; _ } | Truncate_above { lsn; _ } -> lsn

(* kind tags *)
let tag_store = 1
let tag_eliminate = 2
let tag_truncate = 3

(* Fixed part: u8 kind, u32 pid, u64 lsn, u32 index. *)
let head_len = 1 + 4 + 8 + 4

(* Store extension: f64 taken_at, u32 size_bytes, u64 payload, u16 dv_len,
   then dv_len * u32, then size_bytes filler bytes. *)
let store_ext_len = 8 + 4 + 8 + 2

let filler_byte ~payload ~k =
  Char.chr ((payload + (k * 167)) land 0xff)

let put_head b ~kind ~pid ~lsn ~index =
  Bytes.set_uint8 b 0 kind;
  Bytes.set_int32_le b 1 (Int32.of_int pid);
  Bytes.set_int64_le b 5 (Int64.of_int lsn);
  Bytes.set_int32_le b 13 (Int32.of_int index)

let encode = function
  | Eliminate { pid; lsn; index } ->
    let b = Bytes.create head_len in
    put_head b ~kind:tag_eliminate ~pid ~lsn ~index;
    b
  | Truncate_above { pid; lsn; index } ->
    let b = Bytes.create head_len in
    put_head b ~kind:tag_truncate ~pid ~lsn ~index;
    b
  | Store { pid; lsn; entry } ->
    let dv_len = Array.length entry.Stable_store.dv in
    if dv_len > 0xffff then invalid_arg "Record.encode: dv too long";
    if entry.size_bytes < 0 then invalid_arg "Record.encode: negative size";
    let b =
      Bytes.create (head_len + store_ext_len + (4 * dv_len) + entry.size_bytes)
    in
    put_head b ~kind:tag_store ~pid ~lsn ~index:entry.index;
    Bytes.set_int64_le b head_len (Int64.bits_of_float entry.taken_at);
    Bytes.set_int32_le b (head_len + 8) (Int32.of_int entry.size_bytes);
    Bytes.set_int64_le b (head_len + 12) (Int64.of_int entry.payload);
    Bytes.set_uint16_le b (head_len + 20) dv_len;
    let dv_off = head_len + store_ext_len in
    Array.iteri
      (fun i x -> Bytes.set_int32_le b (dv_off + (4 * i)) (Int32.of_int x))
      entry.dv;
    let fill_off = dv_off + (4 * dv_len) in
    for k = 0 to entry.size_bytes - 1 do
      Bytes.set b (fill_off + k) (filler_byte ~payload:entry.payload ~k)
    done;
    b

let u32 b off = Int32.to_int (Bytes.get_int32_le b off) land 0xffffffff

let decode b =
  let len = Bytes.length b in
  if len < head_len then Error "record shorter than header"
  else begin
    let kind = Bytes.get_uint8 b 0 in
    let pid = u32 b 1 in
    let lsn = Int64.to_int (Bytes.get_int64_le b 5) in
    let index = u32 b 13 in
    if kind = tag_eliminate then
      if len = head_len then Ok (Eliminate { pid; lsn; index })
      else Error "eliminate record has trailing bytes"
    else if kind = tag_truncate then
      if len = head_len then Ok (Truncate_above { pid; lsn; index })
      else Error "truncate record has trailing bytes"
    else if kind = tag_store then begin
      if len < head_len + store_ext_len then Error "store record truncated"
      else begin
        let taken_at = Int64.float_of_bits (Bytes.get_int64_le b head_len) in
        let size_bytes = u32 b (head_len + 8) in
        let payload = Int64.to_int (Bytes.get_int64_le b (head_len + 12)) in
        let dv_len = Bytes.get_uint16_le b (head_len + 20) in
        let expect = head_len + store_ext_len + (4 * dv_len) + size_bytes in
        if len <> expect then Error "store record length mismatch"
        else begin
          let dv_off = head_len + store_ext_len in
          let dv = Array.init dv_len (fun i -> u32 b (dv_off + (4 * i))) in
          Ok
            (Store
               {
                 pid;
                 lsn;
                 entry = { Stable_store.index; dv; taken_at; size_bytes; payload };
               })
        end
      end
    end
    else Error (Printf.sprintf "unknown record kind %d" kind)
  end
