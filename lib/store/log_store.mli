(** Log-structured, on-disk checkpoint store for one process.

    The store turns the paper's *model* of stable storage
    ({!Rdt_storage.Stable_store}) into real durability: every mutation —
    checkpoint write, RDT-LGC elimination, rollback truncation — becomes a
    CRC-framed record appended to the active segment file of a store
    directory ({!Segment}, {!Record}).  The append path batches frames
    (one [write] per [batch_records]) and fsyncs per the configured
    {!fsync_policy}.

    {b Compaction} is driven by garbage collection: each obsolescence
    notification (an [eliminate]/[truncate] flowing in from {!Rdt_gc.Rdt_lgc}
    or the coordinated collectors through the {!Rdt_storage.Stable_store}
    backend) re-evaluates the dead-byte ratio of the sealed segments; past
    the threshold, the (at most [n+1], by Theorem 3) live checkpoints
    residing in sealed segments are rewritten into one fresh segment and
    the sealed segments are deleted.  The paper's bound is what makes this
    O(n): the rewrite set can never exceed [n+1] records.

    {b Recovery} is a scan: [create] on a non-empty directory reads every
    segment, drops torn tails and CRC-rejected records, orders the
    survivors by LSN, replays stores against tombstones, rebuilds the
    manifest bookkeeping, and exposes the surviving checkpoints
    ({!recovery}) for {!Rdt_storage.Stable_store.restore} /
    [lib/recovery] to consume.  Segment file order never matters: LSNs
    are globally monotone and compaction rewrites carry fresh LSNs, so
    replay is linearizable at the compaction point.

    A {!Fault} plan injects one deterministic crash (short write, lost
    unsynced data, bit flip) somewhere in the append stream; after the
    resulting {!Fault.Injected_crash} the instance is poisoned and the
    directory must be reopened. *)

module Stable_store = Rdt_storage.Stable_store

type fsync_policy =
  | Always  (** fsync after every appended record *)
  | Every of int  (** fsync at least every [k] appended records *)
  | Never  (** only on segment seal, explicit {!sync} and {!close} *)

type config = {
  batch_records : int;  (** frames buffered per [write] syscall; 1 = none *)
  fsync : fsync_policy;
  segment_target_bytes : int;  (** seal the active segment past this size *)
  compact_min_dead_bytes : int;  (** no compaction below this much garbage *)
  compact_dead_ratio : float;
      (** compact when sealed dead bytes / sealed total bytes reaches this *)
  auto_compact : bool;  (** re-evaluate on every GC notification *)
}

val default_config : config
(** batch 16, fsync every 64, 256 KiB segments, compact at 50% dead past
    4 KiB, auto-compaction on. *)

type t

val create : ?config:config -> ?faults:Fault.t -> pid:int -> dir:string -> unit -> t
(** Open (creating the directory if needed) and recover whatever it
    holds.  Opening never writes: a pure stats/recovery inspection leaves
    the directory byte-identical. *)

type recovery = {
  recovered : Stable_store.entry list;  (** surviving live checkpoints, ascending *)
  segments_scanned : int;
  records_replayed : int;
  records_dropped : int;  (** CRC- or decode-rejected *)
  torn_bytes : int;  (** abandoned torn-tail bytes across segments *)
}

val recovery : t -> recovery
(** What the opening scan found (empty lists/zeros for a fresh dir). *)

val pid : t -> int
val dir : t -> string

(* Mutations (normally reached through {!backend}): *)

val append : t -> Stable_store.entry -> unit
val eliminate : t -> index:int -> unit
val truncate_above : t -> index:int -> unit

val sync : t -> unit
(** Flush and fsync the active segment. *)

val compact : t -> unit
(** Force a compaction of the sealed segments regardless of thresholds. *)

exception Compaction_crash of [ `After_seal | `After_rewrite ]
(** Raised by a compaction when a crash armed with
    {!arm_compaction_crash} fires.  Like {!Fault.Injected_crash}, the
    instance is poisoned afterwards and the directory must be reopened. *)

val arm_compaction_crash : t -> [ `After_seal | `After_rewrite ] -> unit
(** Test hook: make the next compaction (manual {!compact} or automatic)
    crash deterministically at one of its two durability windows —
    [`After_seal]: the active segment has been sealed but no rewrite has
    happened; [`After_rewrite]: the rewrite segment is on disk but the
    superseded sealed segments have not been deleted yet.  In both cases a
    recovery scan of the directory must restore exactly the
    pre-compaction live set. *)

val close : t -> unit
(** Seal the active segment (fsync) and persist the manifest.  Idempotent;
    only writes if the store mutated since opening. *)

val backend : t -> Stable_store.backend
(** Mirror for {!Rdt_storage.Stable_store.create} — the wiring that lets
    {!Rdt_core.Runner} run the durable backend behind the unchanged
    [Stable_store] interface. *)

(* Observation: *)

val live_count : t -> int
(** Live (non-eliminated) checkpoints on disk — the quantity the paper
    bounds by [n] ([n+1] transiently). *)

val live_indices : t -> int list
val live_entries : t -> Stable_store.entry list

type stats = {
  segments : int;
  live_records : int;
  live_bytes : int;  (** on-disk footprint of live checkpoint records *)
  dead_bytes : int;  (** collected records + tombstones awaiting compaction *)
  disk_bytes : int;  (** total segment bytes *)
  appended_records : int;  (** cumulative over the directory's whole life *)
  compactions : int;
  bytes_reclaimed : int;  (** cumulative segment bytes deleted *)
  syncs : int;  (** fsyncs issued by this instance *)
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
