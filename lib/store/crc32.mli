(** CRC-32 (IEEE 802.3 polynomial, reflected, table-driven).

    Every record frame in a segment file carries the CRC of its payload;
    the recovery scan recomputes it to reject torn or bit-flipped records
    ({!Rdt_store.Segment}).  The manifest guards its own contents the same
    way.  Implemented locally so the store has no dependency beyond the
    standard library. *)

val bytes : Bytes.t -> pos:int -> len:int -> int32
(** CRC-32 of [len] bytes of [b] starting at [pos]. *)

val string : string -> int32
(** CRC-32 of a whole string. *)
