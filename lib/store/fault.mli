(** Deterministic storage fault injection.

    A fault plan arms one injected crash at a chosen store operation
    (checkpoint appends and tombstone appends each count as one op).  The
    three kinds model the classic durability hazards a log-structured
    store must survive:

    - {!Short_write}: the batch being flushed reaches the disk only
      partially — a torn record tail that the CRC scan must drop;
    - {!Crash_before_sync}: everything written since the last [fsync] is
      lost (the page cache never made it to the platter) — recovery must
      fall back to the synced prefix;
    - {!Bit_flip}: a bit of an already-written record is silently
      corrupted before the crash — the CRC scan must reject that record
      without aborting recovery.

    All randomness (which byte tears, which bit flips) flows through the
    simulator's {!Rdt_sim.Prng}, so a fault schedule is a pure function of
    its seed and crash-recovery tests replay exactly. *)

type kind = Short_write | Crash_before_sync | Bit_flip

exception Injected_crash of { op : int; kind : kind }
(** Raised by the store when the armed fault fires.  The store instance is
    unusable afterwards; reopen the directory to recover. *)

type t

val none : t
(** No fault armed (the production path). *)

val at_op : op:int -> kind:kind -> rng:Rdt_sim.Prng.t -> t
(** Arm [kind] to fire at the [op]-th store operation (1-based). *)

val of_seed : seed:int -> max_op:int -> t
(** Derive a whole plan — kind and firing op in [1, max_op] — from a seed
    (the seeded fault schedules of the property tests). *)

val armed : t -> bool
(** [true] until the plan has fired (always [false] for {!none}). *)

val kind_name : kind -> string

(* Used by the store internals: *)

val tick : t -> (int * kind * Rdt_sim.Prng.t) option
(** Count one store operation; [Some (op, kind, rng)] when the armed fault
    fires now (the plan disarms itself).  [rng] drives the fault's own
    random choices. *)
