(* Standard reflected CRC-32 (polynomial 0xEDB88320), one 256-entry
   table, processed a byte at a time.  Throughput is irrelevant next to
   the write syscalls it guards. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           if Int32.logand !c 1l <> 0l then
             c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
           else c := Int32.shift_right_logical !c 1
         done;
         !c))

(* callers ([bytes]) validate pos/len before entering the byte loop *)
let update crc b ~pos ~len =
  let table = Lazy.force table in
  let crc = ref crc in
  for i = pos to pos + len - 1 do
    let byte = Char.code (Bytes.unsafe_get b i) in
    let idx = Int32.to_int (Int32.logand (Int32.logxor !crc (Int32.of_int byte)) 0xffl) in
    crc := Int32.logxor table.(idx) (Int32.shift_right_logical !crc 8)
  done;
  !crc
[@@lint.bounds_checked]

let bytes b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Crc32.bytes";
  Int32.lognot (update 0xffffffffl b ~pos ~len)

let string s =
  let b = Bytes.unsafe_of_string s in
  bytes b ~pos:0 ~len:(Bytes.length b)
