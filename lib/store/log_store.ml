module Stable_store = Rdt_storage.Stable_store

type fsync_policy = Always | Every of int | Never

type config = {
  batch_records : int;
  fsync : fsync_policy;
  segment_target_bytes : int;
  compact_min_dead_bytes : int;
  compact_dead_ratio : float;
  auto_compact : bool;
}

let default_config =
  {
    batch_records = 16;
    fsync = Every 64;
    segment_target_bytes = 256 * 1024;
    compact_min_dead_bytes = 4096;
    compact_dead_ratio = 0.5;
    auto_compact = true;
  }

type seg_info = {
  id : int;
  mutable total_bytes : int;
  mutable dead_bytes : int;
  mutable sealed : bool;
}

type live_rec = {
  lr_entry : Stable_store.entry;
  mutable lr_seg : seg_info;
  mutable lr_bytes : int;  (* framed on-disk footprint *)
}

type recovery = {
  recovered : Stable_store.entry list;
  segments_scanned : int;
  records_replayed : int;
  records_dropped : int;
  torn_bytes : int;
}

type t = {
  pid : int;
  dir : string;
  config : config;
  faults : Fault.t;
  segs : (int, seg_info) Hashtbl.t;
  live : (int, live_rec) Hashtbl.t;  (* checkpoint index -> live record *)
  mutable active : (Segment.writer * seg_info) option;
  mutable next_lsn : int;
  mutable next_seg_id : int;
  mutable appended : int;  (* this instance *)
  mutable appended_base : int;  (* carried from the manifest *)
  mutable compactions : int;
  mutable bytes_reclaimed : int;
  mutable syncs : int;
  mutable ops_since_sync : int;
  mutable recovery_info : recovery;
  mutable dirty : bool;
  mutable poisoned : bool;
  mutable closed : bool;
  mutable compact_crash : [ `After_seal | `After_rewrite ] option;
}

exception Compaction_crash of [ `After_seal | `After_rewrite ]

let pid t = t.pid
let dir t = t.dir
let recovery t = t.recovery_info

let seg_file_name id = Printf.sprintf "seg-%08d.log" id
let seg_path t id = Filename.concat t.dir (seg_file_name id)

let seg_id_of_file name =
  if
    String.length name = 16
    && String.sub name 0 4 = "seg-"
    && Filename.check_suffix name ".log"
  then int_of_string_opt (String.sub name 4 8)
  else None

let rec mkdir_p path =
  if path <> "" && path <> "/" && not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (EEXIST, _, _) -> ()
  end

(* --- recovery scan ----------------------------------------------------- *)

let kill t rec_ =
  rec_.lr_seg.dead_bytes <- rec_.lr_seg.dead_bytes + rec_.lr_bytes;
  Hashtbl.remove t.live rec_.lr_entry.Stable_store.index

let recover t =
  let seg_ids =
    Sys.readdir t.dir |> Array.to_list
    |> List.filter_map seg_id_of_file
    |> List.sort compare
  in
  let all = ref [] in
  let dropped = ref 0 and torn = ref 0 and replayed = ref 0 in
  List.iter
    (fun id ->
      let path = seg_path t id in
      let size = (Unix.stat path).Unix.st_size in
      let info = { id; total_bytes = size; dead_bytes = 0; sealed = true } in
      Hashtbl.add t.segs id info;
      let accounted = ref 0 in
      let stats =
        Segment.scan ~path ~f:(fun ~frame_bytes r ->
            accounted := !accounted + frame_bytes;
            all := (info, frame_bytes, r) :: !all)
      in
      dropped := !dropped + stats.Segment.dropped;
      torn := !torn + stats.Segment.torn_bytes;
      (* everything in the file that is not a replayable record — torn
         tails, rejected frames, the magic header — is dead weight *)
      info.dead_bytes <- max 0 (size - !accounted))
    seg_ids;
  let all =
    List.sort (fun (_, _, a) (_, _, b) -> compare (Record.lsn a) (Record.lsn b)) !all
  in
  List.iter
    (fun (info, frame_bytes, r) ->
      incr replayed;
      t.next_lsn <- max t.next_lsn (Record.lsn r + 1);
      match r with
      | Record.Store { entry; _ } ->
        (match Hashtbl.find_opt t.live entry.Stable_store.index with
        | Some old -> kill t old
        | None -> ());
        Hashtbl.replace t.live entry.Stable_store.index
          { lr_entry = entry; lr_seg = info; lr_bytes = frame_bytes }
      | Record.Eliminate { index; _ } -> (
        (* the tombstone itself is dead weight in its own segment *)
        info.dead_bytes <- info.dead_bytes + frame_bytes;
        match Hashtbl.find_opt t.live index with
        | Some rec_ -> kill t rec_
        | None -> () (* its store record was dropped or compacted away *))
      | Record.Truncate_above { index; _ } ->
        info.dead_bytes <- info.dead_bytes + frame_bytes;
        let doomed =
          Hashtbl.fold
            (fun idx rec_ acc -> if idx > index then rec_ :: acc else acc)
            t.live []
        in
        List.iter (kill t) doomed)
    all;
  t.next_seg_id <-
    List.fold_left (fun acc id -> max acc (id + 1)) t.next_seg_id seg_ids;
  let recovered =
    Hashtbl.fold (fun _ r acc -> r.lr_entry :: acc) t.live []
    |> List.sort (fun (a : Stable_store.entry) b -> compare a.index b.index)
  in
  t.recovery_info <-
    {
      recovered;
      segments_scanned = List.length seg_ids;
      records_replayed = !replayed;
      records_dropped = !dropped;
      torn_bytes = !torn;
    }

let create ?(config = default_config) ?(faults = Fault.none) ~pid ~dir () =
  if config.batch_records < 1 then invalid_arg "Log_store: batch_records < 1";
  (match config.fsync with
  | Every k when k < 1 -> invalid_arg "Log_store: fsync Every < 1"
  | Always | Every _ | Never -> ());
  mkdir_p dir;
  let t =
    {
      pid;
      dir;
      config;
      faults;
      segs = Hashtbl.create 8;
      live = Hashtbl.create 16;
      active = None;
      next_lsn = 0;
      next_seg_id = 0;
      appended = 0;
      appended_base = 0;
      compactions = 0;
      bytes_reclaimed = 0;
      syncs = 0;
      ops_since_sync = 0;
      recovery_info =
        {
          recovered = [];
          segments_scanned = 0;
          records_replayed = 0;
          records_dropped = 0;
          torn_bytes = 0;
        };
      dirty = false;
      poisoned = false;
      closed = false;
      compact_crash = None;
    }
  in
  (match Manifest.read ~dir with
  | Some m ->
    t.compactions <- m.Manifest.compactions;
    t.bytes_reclaimed <- m.Manifest.bytes_reclaimed;
    t.appended_base <- m.Manifest.appended_records
  | None -> ());
  recover t;
  t

(* --- manifest ---------------------------------------------------------- *)

let write_manifest t =
  Manifest.write ~dir:t.dir
    {
      Manifest.segments =
        Hashtbl.fold (fun id _ acc -> id :: acc) t.segs [] |> List.sort compare;
      compactions = t.compactions;
      bytes_reclaimed = t.bytes_reclaimed;
      appended_records = t.appended_base + t.appended;
    };
  t.dirty <- false

(* --- append path ------------------------------------------------------- *)

let check_usable t =
  if t.poisoned then
    invalid_arg "Log_store: instance poisoned by an injected crash; reopen";
  if t.closed then invalid_arg "Log_store: closed"

let fresh_lsn t =
  let lsn = t.next_lsn in
  t.next_lsn <- lsn + 1;
  lsn

let ensure_writer t =
  match t.active with
  | Some (w, info) -> (w, info)
  | None ->
    let id = t.next_seg_id in
    t.next_seg_id <- id + 1;
    let w = Segment.create_writer ~path:(seg_path t id) in
    let info = { id; total_bytes = 0; dead_bytes = 0; sealed = false } in
    Hashtbl.add t.segs id info;
    t.active <- Some (w, info);
    (w, info)

let do_sync t w =
  Segment.sync w;
  t.syncs <- t.syncs + 1;
  t.ops_since_sync <- 0

let seal t =
  match t.active with
  | None -> ()
  | Some (w, info) ->
    Segment.close ~sync:true w;
    t.syncs <- t.syncs + 1;
    t.ops_since_sync <- 0;
    info.sealed <- true;
    t.active <- None;
    write_manifest t

let append_record t make_record =
  check_usable t;
  t.dirty <- true;
  let w, info = ensure_writer t in
  let record = make_record (fresh_lsn t) in
  let payload = Record.encode record in
  let frame_bytes = Bytes.length payload + Segment.frame_overhead in
  Segment.append w payload;
  info.total_bytes <- info.total_bytes + frame_bytes;
  t.appended <- t.appended + 1;
  t.ops_since_sync <- t.ops_since_sync + 1;
  (match Fault.tick t.faults with
  | Some (op, kind, rng) ->
    t.poisoned <- true;
    t.active <- None;
    (match kind with
    | Fault.Short_write -> Segment.crash_short_write w ~rng
    | Fault.Crash_before_sync -> Segment.crash_drop_unsynced w
    | Fault.Bit_flip -> Segment.crash_bit_flip w ~rng);
    raise (Fault.Injected_crash { op; kind })
  | None -> ());
  if Segment.pending_records w >= t.config.batch_records then Segment.flush w;
  (match t.config.fsync with
  | Always -> do_sync t w
  | Every k -> if t.ops_since_sync >= k then do_sync t w
  | Never -> ());
  if Segment.written_bytes w + Segment.pending_bytes w >= t.config.segment_target_bytes
  then seal t;
  (frame_bytes, info)

(* --- compaction -------------------------------------------------------- *)

let garbage t =
  Hashtbl.fold
    (fun _ info (total, dead) ->
      (total + info.total_bytes, dead + info.dead_bytes))
    t.segs (0, 0)

let arm_compaction_crash t point = t.compact_crash <- Some point

let same_point a b =
  match (a, b) with
  | `After_seal, `After_seal | `After_rewrite, `After_rewrite -> true
  | (`After_seal | `After_rewrite), _ -> false

let maybe_compaction_crash t point =
  match t.compact_crash with
  | Some p when same_point p point ->
    t.compact_crash <- None;
    t.poisoned <- true;
    t.active <- None;
    raise (Compaction_crash point)
  | Some _ | None -> ()

let compact_sealed t =
  (* crash window 1: the active segment was sealed (fully synced), nothing
     of the compaction itself has happened yet *)
  maybe_compaction_crash t `After_seal;
  let sealed =
    Hashtbl.fold (fun _ info acc -> if info.sealed then info :: acc else acc)
      t.segs []
  in
  if not (List.is_empty sealed) then begin
    let movers =
      Hashtbl.fold
        (fun _ r acc -> if r.lr_seg.sealed then r :: acc else acc)
        t.live []
      |> List.sort (fun a b ->
             compare a.lr_entry.Stable_store.index b.lr_entry.Stable_store.index)
    in
    (* Rewrite the survivors (at most n+1 of them, by the paper's bound)
       into one fresh sealed segment, with fresh LSNs so replay
       linearizes the rewrite after everything it superseded. *)
    if not (List.is_empty movers) then begin
      let id = t.next_seg_id in
      t.next_seg_id <- id + 1;
      let w = Segment.create_writer ~path:(seg_path t id) in
      let info = { id; total_bytes = 0; dead_bytes = 0; sealed = true } in
      List.iter
        (fun r ->
          let payload =
            Record.encode
              (Record.Store
                 { pid = t.pid; lsn = fresh_lsn t; entry = r.lr_entry })
          in
          Segment.append w payload;
          let frame_bytes = Bytes.length payload + Segment.frame_overhead in
          info.total_bytes <- info.total_bytes + frame_bytes;
          r.lr_seg <- info;
          r.lr_bytes <- frame_bytes)
        movers;
      Segment.close ~sync:true w;
      t.syncs <- t.syncs + 1;
      Hashtbl.add t.segs id info
    end;
    (* crash window 2: the rewrite segment is durable but the superseded
       sealed segments have not been deleted yet — recovery must
       deduplicate by LSN *)
    maybe_compaction_crash t `After_rewrite;
    List.iter
      (fun info ->
        t.bytes_reclaimed <- t.bytes_reclaimed + info.total_bytes;
        Hashtbl.remove t.segs info.id;
        Sys.remove (seg_path t info.id))
      sealed;
    t.compactions <- t.compactions + 1;
    t.dirty <- true;
    write_manifest t
  end

let compact t =
  check_usable t;
  (* seal the active segment so its garbage is eligible too *)
  seal t;
  compact_sealed t

(* Fired on every obsolescence notification (eliminate / truncate).  The
   dead-byte floor and ratio keep this from thrashing: after a compaction
   the store is almost all live, so the ratio stays low until RDT-LGC has
   obsoleted at least [compact_min_dead_bytes] worth of records again. *)
let maybe_compact t =
  if t.config.auto_compact then begin
    let total, dead = garbage t in
    if
      dead >= t.config.compact_min_dead_bytes
      && total > 0
      && float_of_int dead >= t.config.compact_dead_ratio *. float_of_int total
    then begin
      seal t;
      compact_sealed t
    end
  end

(* --- the mutation API -------------------------------------------------- *)

let append t entry =
  let frame_bytes, info =
    append_record t (fun lsn -> Record.Store { pid = t.pid; lsn; entry })
  in
  (match Hashtbl.find_opt t.live entry.Stable_store.index with
  | Some old -> kill t old
  | None -> ());
  Hashtbl.replace t.live entry.Stable_store.index
    { lr_entry = entry; lr_seg = info; lr_bytes = frame_bytes }

let eliminate t ~index =
  match Hashtbl.find_opt t.live index with
  | None ->
    invalid_arg (Printf.sprintf "Log_store.eliminate: no live s^%d" index)
  | Some rec_ ->
    kill t rec_;
    let frame_bytes, info =
      append_record t (fun lsn -> Record.Eliminate { pid = t.pid; lsn; index })
    in
    info.dead_bytes <- info.dead_bytes + frame_bytes;
    maybe_compact t

let truncate_above t ~index =
  let doomed =
    Hashtbl.fold
      (fun idx rec_ acc -> if idx > index then rec_ :: acc else acc)
      t.live []
  in
  if not (List.is_empty doomed) then begin
    List.iter (kill t) doomed;
    let frame_bytes, info =
      append_record t (fun lsn ->
          Record.Truncate_above { pid = t.pid; lsn; index })
    in
    info.dead_bytes <- info.dead_bytes + frame_bytes;
    maybe_compact t
  end

let sync t =
  check_usable t;
  match t.active with Some (w, _) -> do_sync t w | None -> ()

let close t =
  if not (t.closed || t.poisoned) then begin
    seal t;
    if t.dirty then write_manifest t;
    t.closed <- true
  end

let backend t =
  {
    Stable_store.b_store = (fun entry -> append t entry);
    b_eliminate =
      (fun entry -> eliminate t ~index:entry.Stable_store.index);
    b_truncate_above = (fun ~index -> truncate_above t ~index);
  }

(* --- observation ------------------------------------------------------- *)

let live_count t = Hashtbl.length t.live

let live_entries t =
  Hashtbl.fold (fun _ r acc -> r.lr_entry :: acc) t.live []
  |> List.sort (fun (a : Stable_store.entry) b -> compare a.index b.index)

let live_indices t =
  List.map (fun (e : Stable_store.entry) -> e.index) (live_entries t)

type stats = {
  segments : int;
  live_records : int;
  live_bytes : int;
  dead_bytes : int;
  disk_bytes : int;
  appended_records : int;
  compactions : int;
  bytes_reclaimed : int;
  syncs : int;
}

let stats t =
  let live_bytes = Hashtbl.fold (fun _ r acc -> acc + r.lr_bytes) t.live 0 in
  let disk_bytes, dead_bytes =
    Hashtbl.fold
      (fun _ info (total, dead) ->
        (total + info.total_bytes, dead + info.dead_bytes))
      t.segs (0, 0)
  in
  {
    segments = Hashtbl.length t.segs;
    live_records = Hashtbl.length t.live;
    live_bytes;
    dead_bytes;
    disk_bytes;
    appended_records = t.appended_base + t.appended;
    compactions = t.compactions;
    bytes_reclaimed = t.bytes_reclaimed;
    syncs = t.syncs;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "@[<h>%d segment%s, %d live (%dB live / %dB dead / %dB disk), %d \
     appended, %d compaction%s (%dB reclaimed), %d fsyncs@]"
    s.segments
    (if s.segments = 1 then "" else "s")
    s.live_records s.live_bytes s.dead_bytes s.disk_bytes s.appended_records
    s.compactions
    (if s.compactions = 1 then "" else "s")
    s.bytes_reclaimed s.syncs
