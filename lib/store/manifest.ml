type t = {
  segments : int list;
  compactions : int;
  bytes_reclaimed : int;
  appended_records : int;
}

let empty =
  { segments = []; compactions = 0; bytes_reclaimed = 0; appended_records = 0 }

let file_name = "MANIFEST"
let header = "rdt-store-manifest v1"

let body t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Printf.sprintf "compactions %d\n" t.compactions);
  Buffer.add_string buf
    (Printf.sprintf "bytes_reclaimed %d\n" t.bytes_reclaimed);
  Buffer.add_string buf
    (Printf.sprintf "appended_records %d\n" t.appended_records);
  List.iter
    (fun id -> Buffer.add_string buf (Printf.sprintf "segment %d\n" id))
    (List.sort compare t.segments);
  Buffer.contents buf

let write ~dir t =
  let body = body t in
  let content =
    Printf.sprintf "%scrc %08lx\n" body (Crc32.string body)
  in
  let tmp = Filename.concat dir (file_name ^ ".tmp") in
  let oc = Out_channel.open_bin tmp in
  Out_channel.output_string oc content;
  Out_channel.flush oc;
  (* flush alone leaves the rename able to outrun the data; fsync first *)
  (try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ());
  Out_channel.close oc;
  Sys.rename tmp (Filename.concat dir file_name)

let read ~dir =
  let path = Filename.concat dir file_name in
  if not (Sys.file_exists path) then None
  else begin
    let content =
      let ic = In_channel.open_bin path in
      Fun.protect
        ~finally:(fun () -> In_channel.close ic)
        (fun () -> In_channel.input_all ic)
    in
    (* last line must be "crc %08lx" of everything before it *)
    match String.rindex_opt (String.trim content) '\n' with
    | None -> None
    | Some i ->
      let body = String.sub content 0 (i + 1) in
      let crc_line = String.trim (String.sub content (i + 1) (String.length content - i - 1)) in
      let expected = Printf.sprintf "crc %08lx" (Crc32.string body) in
      if crc_line <> expected then None
      else begin
        let lines = String.split_on_char '\n' (String.trim body) in
        match lines with
        | h :: rest when h = header ->
          (try
             let t = ref empty in
             List.iter
               (fun line ->
                 match String.split_on_char ' ' (String.trim line) with
                 | [ "compactions"; v ] ->
                   t := { !t with compactions = int_of_string v }
                 | [ "bytes_reclaimed"; v ] ->
                   t := { !t with bytes_reclaimed = int_of_string v }
                 | [ "appended_records"; v ] ->
                   t := { !t with appended_records = int_of_string v }
                 | [ "segment"; v ] ->
                   t := { !t with segments = int_of_string v :: !t.segments }
                 | [ "" ] -> ()
                 | _ -> failwith "unknown line")
               rest;
             Some { !t with segments = List.rev !t.segments }
           with Failure _ -> None)
        | _ -> None
      end
  end
