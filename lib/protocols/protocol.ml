module Dependency_vector = Rdt_causality.Dependency_vector

type instance = {
  name : string;
  need_forced : local_dv:int array -> incoming:Control.t -> bool;
  force_after_send : bool;
  note_send : unit -> unit;
  note_receive : incoming:Control.t -> unit;
  note_checkpoint : unit -> unit;
  control_index : unit -> int;
}

type t = { id : string; rdt : bool; make : n:int -> me:int -> instance }

let brings_new_dependency ~local_dv ~(incoming : Control.t) =
  Dependency_vector.has_newer_entries ~local:local_dv ~incoming:incoming.dv

(* FDAS: the dependency vector is frozen from the first send of the
   interval onward. *)
let fdas =
  {
    id = "fdas";
    rdt = true;
    make =
      (fun ~n:_ ~me:_ ->
        let sent_in_interval = ref false in
        {
          name = "FDAS";
          force_after_send = false;
          need_forced =
            (fun ~local_dv ~incoming ->
              !sent_in_interval && brings_new_dependency ~local_dv ~incoming);
          note_send = (fun () -> sent_in_interval := true);
          note_receive = (fun ~incoming:_ -> ());
          note_checkpoint = (fun () -> sent_in_interval := false);
          control_index = (fun () -> 0);
        });
  }

(* FDI: the dependency vector is frozen for the whole interval once any
   communication event occurred in it. *)
let fdi =
  {
    id = "fdi";
    rdt = true;
    make =
      (fun ~n:_ ~me:_ ->
        let event_in_interval = ref false in
        {
          name = "FDI";
          force_after_send = false;
          need_forced =
            (fun ~local_dv ~incoming ->
              !event_in_interval && brings_new_dependency ~local_dv ~incoming);
          note_send = (fun () -> event_in_interval := true);
          note_receive = (fun ~incoming:_ -> event_in_interval := true);
          note_checkpoint = (fun () -> event_in_interval := false);
          control_index = (fun () -> 0);
        });
  }

(* BCS: logical checkpoint indices; receiving a higher index forces a
   checkpoint so that the message is processed in an interval whose index
   is at least the sender's.  BCS guarantees the absence of zigzag cycles
   (no useless checkpoints) but NOT full RDT: a dependency arriving with a
   non-increasing index after a send in the same interval creates an
   untracked Z-path (our property tests exhibit such executions).  Kept as
   the classic Z-cycle-free comparison point. *)
let bcs =
  {
    id = "bcs";
    rdt = false;
    make =
      (fun ~n:_ ~me:_ ->
        let index = ref 0 in
        {
          name = "BCS";
          force_after_send = false;
          need_forced =
            (fun ~local_dv:_ ~incoming -> incoming.Control.index > !index);
          note_receive =
            (fun ~incoming -> index := max !index incoming.Control.index);
          note_send = (fun () -> ());
          note_checkpoint = (fun () -> incr index);
          control_index = (fun () -> !index);
        });
  }

(* CBR: a forced checkpoint before every receive that carries new causal
   information.  Every dependency lands in a fresh interval, so all zigzag
   paths are causal. *)
let cbr =
  {
    id = "cbr";
    rdt = true;
    make =
      (fun ~n:_ ~me:_ ->
        {
          name = "CBR";
          force_after_send = false;
          need_forced =
            (fun ~local_dv ~incoming ->
              brings_new_dependency ~local_dv ~incoming);
          note_send = (fun () -> ());
          note_receive = (fun ~incoming:_ -> ());
          note_checkpoint = (fun () -> ());
          control_index = (fun () -> 0);
        });
  }

let no_forced =
  {
    id = "none";
    rdt = false;
    make =
      (fun ~n:_ ~me:_ ->
        {
          name = "no-forced";
          force_after_send = false;
          need_forced = (fun ~local_dv:_ ~incoming:_ -> false);
          note_send = (fun () -> ());
          note_receive = (fun ~incoming:_ -> ());
          note_checkpoint = (fun () -> ());
          control_index = (fun () -> 0);
        });
  }

(* CAS: a forced checkpoint immediately after every send makes the send
   the last event of its interval, so no message can be received before a
   send of the same interval: every zigzag path is causal (strictly
   Z-path free). *)
let cas =
  {
    id = "cas";
    rdt = true;
    make =
      (fun ~n:_ ~me:_ ->
        {
          name = "CAS";
          force_after_send = true;
          need_forced = (fun ~local_dv:_ ~incoming:_ -> false);
          note_send = (fun () -> ());
          note_receive = (fun ~incoming:_ -> ());
          note_checkpoint = (fun () -> ());
          control_index = (fun () -> 0);
        });
  }

(* CASBR: the checkpoint between a send and the next receive is taken
   lazily, just before the receive — same interval structure as CAS where
   it matters, fewer checkpoints when several sends occur in a row. *)
let casbr =
  {
    id = "casbr";
    rdt = true;
    make =
      (fun ~n:_ ~me:_ ->
        let sent_in_interval = ref false in
        {
          name = "CASBR";
          force_after_send = false;
          need_forced = (fun ~local_dv:_ ~incoming:_ -> !sent_in_interval);
          note_send = (fun () -> sent_in_interval := true);
          note_receive = (fun ~incoming:_ -> ());
          note_checkpoint = (fun () -> sent_in_interval := false);
          control_index = (fun () -> 0);
        });
  }

let all = [ fdas; fdi; bcs; cbr; cas; casbr; no_forced ]
let rdt_protocols = List.filter (fun p -> p.rdt) all
let by_id id = List.find_opt (fun p -> p.id = id) all
