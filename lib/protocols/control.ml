type t = { dv : int array; index : int }

let make ~dv ~index = { dv = Array.copy dv; index }
let borrow ~dv ~index = { dv; index }

let size_words t = Array.length t.dv + 1

let pp ppf t =
  Format.fprintf ppf "{dv=(%a); idx=%d}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    (Array.to_list t.dv) t.index
