(** Per-process checkpointing middleware.

    Owns the process's dependency vector, stable store and protocol
    instance; records everything in the shared {!Rdt_ccp.Trace.t}; and
    exposes the two-sided message API the simulation driver uses
    ({!prepare_send} / {!receive}).  Garbage collectors attach through
    {!hooks}, which are invoked at exactly the points where the paper's
    RDT-LGC runs (Algorithm 2): when a message brings new causal
    information, and when a checkpoint has just been stored (before the
    local dependency-vector entry is incremented).

    The paper's remark on merged implementations (Section 4.5) is honored:
    a forced checkpoint triggered by a receive is stored *before* the
    receive is processed and before any garbage collection related to the
    receive runs. *)

type hooks = {
  on_new_dependency : int -> unit;
      (** [on_new_dependency j]: the receive being processed increased
          [DV.(j)] (called after the entry was updated) *)
  on_checkpoint_stored : int -> unit;
      (** [on_checkpoint_stored index]: checkpoint [s^index] was written to
          stable storage; the local DV entry has not been incremented yet *)
  on_rollback : li:int array -> unit;
      (** a rollback completed: storage truncated, DV restored from the
          rollback target and incremented.  [li] is the last-interval
          vector [LI] (global knowledge) or the process's own DV (see
          paper, Algorithm 3 and its DV variant) *)
}

val no_hooks : hooks

type message = {
  msg_id : int;
  src : int;
  control : Control.t;
}
(** What travels on the wire (the synthetic application payload carries no
    information of its own). *)

type kind = Basic | Forced

type t

val create :
  n:int ->
  me:int ->
  protocol:Protocol.t ->
  trace:Rdt_ccp.Trace.t ->
  ?ckpt_bytes:int ->
  ?store:Rdt_storage.Stable_store.t ->
  unit ->
  t
(** Creates the middleware and immediately stores the initial checkpoint
    [s^0] (every process starts by storing a stable checkpoint).  Hooks
    can be attached with {!set_hooks}; attach them before any activity if
    the collector must see [s^0] — {!Rdt_gc.Rdt_lgc} provides
    reinitialization for exactly this bootstrap (its [create] scans the
    store).

    [?store] supplies a pre-built (empty) stable store — the runner uses
    this to hand in a store whose durability backend is a
    [Rdt_store.Log_store], so [s^0] and everything after it also hit the
    disk.  Default: a fresh in-memory store. *)

val restore :
  n:int ->
  me:int ->
  protocol:Protocol.t ->
  trace:Rdt_ccp.Trace.t ->
  ?ckpt_bytes:int ->
  store:Rdt_storage.Stable_store.t ->
  unit ->
  t
(** Rebuild the middleware of a process that crashed and lost its volatile
    state: [store] is the restored stable store
    ({!Rdt_storage.Stable_store.restore} over what the durable log
    recovered) and [trace] must already contain the process's surviving
    event history (the live runtime replays it from the coordinator's
    transcript).  The DV, application state and archive are recreated from
    the last surviving checkpoint, as in Algorithm 3; no new checkpoint is
    stored.  The caller must drive a recovery-session rollback before
    resuming normal operation — until then the state is provisional, and
    the protocol instance restarts interval-fresh (valid for the RDT
    protocols, whose per-interval flags reset at each checkpoint; not for
    monotone-index protocols like BCS).
    @raise Invalid_argument if [store] is empty. *)

val set_hooks : t -> hooks -> unit

val me : t -> int
val n : t -> int
val dv : t -> Rdt_causality.Dependency_vector.t
(** The live dependency vector — [DV(v_i)].  Do not mutate. *)

val store : t -> Rdt_storage.Stable_store.t

val archive : t -> Rdt_storage.Dv_archive.t
(** Archive of the dependency vectors of every checkpoint ever taken
    (survives garbage collection; rewound on rollback).  Feeds the
    decentralized tracking computations of [Rdt_recovery.Tracking]. *)

val protocol_name : t -> string

val current_interval : t -> int
(** [DV(v_i).(i)] — index of the current checkpoint interval; also the
    index the next stable checkpoint will get. *)

val last_checkpoint_index : t -> int

val basic_checkpoint : t -> now:float -> unit
(** Take a basic (autonomous) checkpoint. *)

val prepare_send : t -> dst:int -> now:float -> message
(** Build an application message: runs the protocol's send rule and
    records the send in the trace.  For checkpoint-after-send protocols
    the forced checkpoint is stored right after the send event (the
    message itself carries the pre-checkpoint dependency vector). *)

val receive : t -> message -> now:float -> unit
(** Process a delivered message: consult the protocol (taking a forced
    checkpoint first if required), record the receive, merge the
    dependency vector and fire GC hooks for each new dependency. *)

val rollback : t -> to_index:int -> li:int array option -> unit
(** Roll back to stable checkpoint [s^to_index]: eliminate later
    checkpoints from storage, restore DV from the target's stored vector
    and increment the local entry (paper, Algorithm 3 lines 4-6), truncate
    the trace, then fire [on_rollback] with [li] (or with the restored DV
    when no global information is available). *)

val restart_after_crash : t -> now:float -> unit
(** Crash recovery of the failed process itself: volatile state is lost;
    the process resumes from its last stable checkpoint.  Equivalent to
    [rollback ~to_index:(last stable) ~li:None]. *)

val app_state : t -> int
(** The process's current (volatile) application state — a deterministic
    digest of its communication history.  Checkpoints capture it; a
    rollback restores the captured value, so tests and demos can observe
    state restoration directly. *)

val basic_count : t -> int
val forced_count : t -> int

val checkpoint_count : t -> int
(** [basic_count + forced_count + 1] (counting [s^0]). *)
