module Dependency_vector = Rdt_causality.Dependency_vector
module Stable_store = Rdt_storage.Stable_store
module Trace = Rdt_ccp.Trace

(* [receive] runs once per delivered message and must not allocate (its
   DV merge is in place and the hook is passed by field projection, not a
   closure); rdt_lint enforces this.  Checkpoint/rollback paths allocate
   freely — they are store-boundary events, not the hot loop. *)
[@@@lint.zero_alloc_hot "receive" "evolve_state"]

type hooks = {
  on_new_dependency : int -> unit;
  on_checkpoint_stored : int -> unit;
  on_rollback : li:int array -> unit;
}

let no_hooks =
  {
    on_new_dependency = (fun _ -> ());
    on_checkpoint_stored = (fun _ -> ());
    on_rollback = (fun ~li:_ -> ());
  }

type message = { msg_id : int; src : int; control : Control.t }

type kind = Basic | Forced

type t = {
  n : int;
  me : int;
  proto : Protocol.instance;
  proto_name : string;
  trace : Trace.t;
  store : Stable_store.t;
  archive : Rdt_storage.Dv_archive.t;
  dv : Dependency_vector.t;
  ckpt_bytes : int;
  mutable hooks : hooks;
  mutable app_state : int;
  mutable basic_count : int;
  mutable forced_count : int;
}

(* Synthetic application state: a deterministic digest of the process's
   communication history, so rollback restoration is observable. *)
let evolve_state state tag =
  let h = state lxor (tag * 0x9E3779B1) in
  let h = h lxor (h lsr 16) in
  h * 0x85EBCA6B land max_int

let take_checkpoint t ~kind ~now =
  let index = Dependency_vector.get t.dv t.me in
  (* one snapshot copy at the store boundary (DESIGN.md §10): the stored
     entry owns it, the archive shares the same immutable array *)
  let entry =
    Stable_store.store_from t.store ~index
      ~dv:(Dependency_vector.view t.dv)
      ~now ~size_bytes:t.ckpt_bytes ~payload:t.app_state ()
  in
  Rdt_storage.Dv_archive.record_shared t.archive ~index
    ~dv:entry.Stable_store.dv;
  Trace.record_checkpoint t.trace ~pid:t.me ~index;
  t.proto.Protocol.note_checkpoint ();
  t.hooks.on_checkpoint_stored index;
  Dependency_vector.increment t.dv t.me;
  match kind with
  | Basic -> t.basic_count <- t.basic_count + 1
  | Forced -> t.forced_count <- t.forced_count + 1

let create ~n ~me ~protocol ~trace ?(ckpt_bytes = 1) ?store () =
  let store =
    match store with
    | None -> Stable_store.create ~me
    | Some s ->
      if Stable_store.count s <> 0 then
        invalid_arg "Middleware.create: supplied store must be empty";
      s
  in
  let t =
    {
      n;
      me;
      proto = protocol.Protocol.make ~n ~me;
      proto_name = protocol.Protocol.id;
      trace;
      store;
      archive = Rdt_storage.Dv_archive.create ~me;
      dv = Dependency_vector.create ~n;
      ckpt_bytes;
      hooks = no_hooks;
      app_state = me + 1;
      basic_count = 0;
      forced_count = 0;
    }
  in
  (* every process starts its execution by storing s^0 *)
  take_checkpoint t ~kind:Basic ~now:0.0;
  t.basic_count <- 0;
  t

let restore ~n ~me ~protocol ~trace ?(ckpt_bytes = 1) ~store () =
  let entries = Stable_store.retained store in
  let last =
    match List.rev entries with
    | [] -> invalid_arg "Middleware.restore: restored store is empty"
    | e :: _ -> e
  in
  let dv = Dependency_vector.create ~n in
  (* Algorithm 3 lines 4-6 applied to the last surviving checkpoint: the
     volatile state a crash destroyed is exactly what a rollback discards,
     so a respawned process is a process rolled back to its last stable
     checkpoint.  The recovery session that follows the respawn never
     reads this provisional DV (the recovery line of a faulty process is
     computed from stored vectors only). *)
  Dependency_vector.blit_into
    ~src:(Dependency_vector.of_view last.Stable_store.dv)
    ~dst:dv;
  Dependency_vector.increment dv me;
  {
    n;
    me;
    proto = protocol.Protocol.make ~n ~me;
    proto_name = protocol.Protocol.id;
    trace;
    store;
    archive =
      Rdt_storage.Dv_archive.restore ~me
        ~entries:
          (List.map
             (fun (e : Stable_store.entry) -> (e.index, e.dv))
             entries);
    dv;
    ckpt_bytes;
    hooks = no_hooks;
    app_state = last.Stable_store.payload;
    basic_count = 0;
    forced_count = 0;
  }

let set_hooks t hooks = t.hooks <- hooks

let me t = t.me
let n t = t.n
let dv t = t.dv
let store t = t.store
let archive t = t.archive
let protocol_name t = t.proto_name
let current_interval t = Dependency_vector.get t.dv t.me
let last_checkpoint_index t = Dependency_vector.get t.dv t.me - 1

let basic_checkpoint t ~now =
  take_checkpoint t ~kind:Basic ~now

let prepare_send t ~dst ~now =
  t.proto.Protocol.note_send ();
  (* [Control.make] performs the single message-boundary copy itself *)
  let control =
    Control.make
      ~dv:(Dependency_vector.view t.dv)
      ~index:(t.proto.Protocol.control_index ())
  in
  let msg_id = Trace.fresh_msg_id t.trace ~pid:t.me in
  Trace.record_send t.trace ~pid:t.me ~msg_id ~dst;
  t.app_state <- evolve_state t.app_state ((2 * msg_id) + 1);
  if t.proto.Protocol.force_after_send then take_checkpoint t ~kind:Forced ~now;
  { msg_id; src = t.me; control }

let receive t msg ~now =
  (* borrowed view: [need_forced] only reads it during the call *)
  let local_dv = Dependency_vector.view t.dv in
  if t.proto.Protocol.need_forced ~local_dv ~incoming:msg.control then
    take_checkpoint t ~kind:Forced ~now;
  Trace.record_receive t.trace ~pid:t.me ~msg_id:msg.msg_id ~src:msg.src;
  t.app_state <- evolve_state t.app_state (2 * msg.msg_id);
  Dependency_vector.merge_from_message_iter t.dv msg.control.dv
    ~f:t.hooks.on_new_dependency;
  t.proto.Protocol.note_receive ~incoming:msg.control

let rollback t ~to_index ~li =
  (match Stable_store.find t.store ~index:to_index with
  | None ->
    invalid_arg
      (Printf.sprintf "Middleware.rollback: p%d holds no s^%d" t.me to_index)
  | Some entry ->
    ignore (Stable_store.truncate_above t.store ~index:to_index);
    Rdt_storage.Dv_archive.truncate_above t.archive ~index:to_index;
    (* Algorithm 3 lines 4-6: recreate DV from the restored checkpoint *)
    Dependency_vector.blit_into
      ~src:(Dependency_vector.of_view entry.Stable_store.dv)
      ~dst:t.dv;
    Dependency_vector.increment t.dv t.me;
    (* the volatile application state is replaced by the checkpointed one *)
    t.app_state <- entry.Stable_store.payload);
  Trace.truncate_to_checkpoint t.trace ~pid:t.me ~index:to_index;
  (* a fresh interval starts: reset the protocol's interval state (for
     index-based protocols this only advances the monotone index, which is
     safe) *)
  t.proto.Protocol.note_checkpoint ();
  let li =
    match li with Some li -> li | None -> Dependency_vector.to_array t.dv
  in
  t.hooks.on_rollback ~li

let restart_after_crash t ~now:_ =
  let last = Stable_store.last_index t.store in
  rollback t ~to_index:last ~li:None

let app_state t = t.app_state

let basic_count t = t.basic_count
let forced_count t = t.forced_count
let checkpoint_count t = t.basic_count + t.forced_count + 1
