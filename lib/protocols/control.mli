(** Control information piggybacked on application messages.

    All the protocols in this library fit in one record: the dependency
    vector (used by every RDT protocol here and by RDT-LGC) and a scalar
    logical index (used by the index-based BCS protocol; zero elsewhere).
    Keeping a single concrete type lets protocols be swapped at run time
    without existential plumbing; the per-message control size reported by
    the metrics accounts only for the fields a protocol actually reads. *)

type t = {
  dv : int array;  (** sender's dependency vector at send time *)
  index : int;  (** sender's logical checkpoint index (BCS) *)
}

val make : dv:int array -> index:int -> t
(** Owning constructor: copies [dv], so the control survives any later
    mutation of the sender's vector — what a message in flight needs. *)

val borrow : dv:int array -> index:int -> t
(** No-copy constructor for controls that are consumed synchronously
    (receiver runs before the caller mutates [dv] again) — the
    micro-benchmarks drive the receive path with a single reused control
    this way.  Never use it for a message that stays in flight. *)

val size_words : t -> int
(** Control size in machine words ([n + 1]); used for overhead metrics. *)

val pp : Format.formatter -> t -> unit
