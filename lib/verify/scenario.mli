(** Randomized fuzzing scenarios.

    A scenario is a deterministic, seed-derived description of one whole
    execution: system size, protocol, recovery-knowledge mode, an explicit
    op list (sends with stable ids, deliveries, message losses, basic
    checkpoints, crash–recovery sessions), optionally a durable
    log-structured store per process and one injected storage fault.

    Generation has two modes, chosen by seed bits: {e direct} (the op list
    itself is random — delay and reordering come from how long send ids
    linger undelivered, losses and multi-process crashes are explicit) and
    {e simulated} (a random discrete-event simulation is run with recording
    on and its trace is transcribed into ops — real workload patterns and
    network behaviour donate the communication structure).

    Scenarios serialize to a line-oriented corpus format and to a
    standalone OCaml reproducer over {!Rdt_scenarios.Script}. *)

type op =
  | Checkpoint of int  (** basic checkpoint of one process *)
  | Send of { id : int; src : int; dst : int }
      (** send a message; [id] is scenario-stable so shrinking can remove
          ops without renumbering *)
  | Deliver of int  (** deliver in-flight message [id] *)
  | Drop of int  (** lose in-flight message [id] *)
  | Crash of int list  (** crash these processes; run a recovery session *)

type store_fault = {
  fault_pid : int;  (** whose store *)
  fault_op : int;  (** crash at this store mutation (1-based) *)
  fault_kind : Rdt_store.Fault.kind;
}

type t = {
  seed : int;  (** generator sub-seed (0 for hand-built scenarios) *)
  n : int;
  protocol : Rdt_protocols.Protocol.t;  (** always an RDT protocol *)
  knowledge : Rdt_recovery.Session.knowledge;
  durable : bool;  (** run every store on a {!Rdt_store.Log_store} *)
  store_fault : store_fault option;  (** only meaningful when [durable] *)
  ops : op list;
}

val generate : ?shards:int -> seed:int -> max_procs:int -> unit -> t
(** Deterministic: equal arguments yield equal scenarios.  [?shards]
    (default 1) runs the donor simulation of simulated-mode scenarios on
    that many engine shards; because the engine is shard-count-invariant
    the result is the same scenario for every value — passing [> 1]
    exercises the parallel engine under the fuzzer's oracles. *)

val normalize : t -> t
(** Statically restore well-formedness: drop deliveries/losses of
    messages not in flight at that point (never sent, already delivered
    or dropped, or flushed by an earlier crash), duplicate send ids,
    out-of-range pids, empty faulty sets.  Shrinking removes ops blindly
    and normalizes the result; the harness only runs normalized
    scenarios. *)

val remove_process : t -> int -> t option
(** Shrinking step: erase one process (drop its ops, renumber the rest),
    [None] when fewer than two processes would remain. *)

val op_count : t -> int

val equal : t -> t -> bool
(** Structural equality (protocols compared by id). *)

val to_string : t -> string
(** Corpus format, [of_string]-roundtrippable. *)

val of_string : string -> (t, string) result
(** Parses and {!normalize}s. *)

val save : t -> string -> unit
val load : string -> (t, string) result

val to_script_ml : t -> string
(** Standalone OCaml reproducer: a function building and running the
    scenario through {!Rdt_scenarios.Script} — what gets committed as a
    regression test next to the corpus file. *)

val pp : Format.formatter -> t -> unit
(** One-line summary (seed, size, protocol, op count). *)

val pp_op : Format.formatter -> op -> unit
val pp_ops : Format.formatter -> t -> unit
