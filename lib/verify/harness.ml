module Prng = Rdt_sim.Prng
module Script = Rdt_scenarios.Script
module Ccp = Rdt_ccp.Ccp
module Rdt_lgc = Rdt_gc.Rdt_lgc
module Stable_store = Rdt_storage.Stable_store
module Log_store = Rdt_store.Log_store
module Fault = Rdt_store.Fault

type stop = Completed | Store_crashed of { pid : int; at_op : int }

type result = {
  scenario : Scenario.t;
  violations : Oracles.violation list;
  ops_executed : int;
  stop : stop;
  script : Script.t option;
  reports : Rdt_recovery.Session.report list;
}

(* --- filesystem scratch ------------------------------------------------ *)

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path

let rec mkdir_p path =
  if not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let default_scratch () =
  Filename.concat
    (Filename.get_temp_dir_name ())
    ("rdtgc-fuzz-" ^ string_of_int (Unix.getpid ()))

(* --- durable stores ---------------------------------------------------- *)

(* Small segments and eager fsync: compaction and recovery paths get
   exercised by scenario-sized runs, and [Always] makes the crash oracle
   sharp (nothing unsynced but the record being appended). *)
let log_config =
  {
    Log_store.batch_records = 4;
    fsync = Log_store.Always;
    segment_target_bytes = 512;
    compact_min_dead_bytes = 64;
    compact_dead_ratio = 0.5;
    auto_compact = true;
  }

(* Mirror of one process's live entry set, maintained in front of the
   Log_store backend: [prev]/[cur] bracket the last mutation (when an
   injected fault interrupts mutation [m], the disk must recover to one
   of the two), [ever] keeps every version ever stored per index (the
   CRC fidelity bound: whatever survives a bit flip must byte-equal some
   version that was really written — flips may drop records, including
   tombstones, but never alter one undetected). *)
type shadow = {
  mutable prev : Stable_store.entry list;
  mutable cur : Stable_store.entry list;
  ever : (int, Stable_store.entry) Hashtbl.t;
}

let wrap_backend sh (b : Stable_store.backend) : Stable_store.backend =
  {
    Stable_store.b_store =
      (fun e ->
        sh.prev <- sh.cur;
        sh.cur <-
          e
          :: List.filter
               (fun (x : Stable_store.entry) -> x.index <> e.Stable_store.index)
               sh.cur;
        Hashtbl.add sh.ever e.Stable_store.index e;
        b.Stable_store.b_store e);
    b_eliminate =
      (fun e ->
        sh.prev <- sh.cur;
        sh.cur <-
          List.filter
            (fun (x : Stable_store.entry) -> x.index <> e.Stable_store.index)
            sh.cur;
        b.Stable_store.b_eliminate e);
    b_truncate_above =
      (fun ~index ->
        sh.prev <- sh.cur;
        sh.cur <-
          List.filter (fun (x : Stable_store.entry) -> x.index <= index) sh.cur;
        b.Stable_store.b_truncate_above ~index);
  }

let by_index l =
  List.sort
    (fun (a : Stable_store.entry) (b : Stable_store.entry) ->
      compare a.index b.index)
    l

let int_array_eq a b =
  let n = Array.length a in
  n = Array.length b
  &&
  let rec go i = i >= n || (a.(i) = b.(i) && go (i + 1)) in
  go 0

let entry_eq (a : Stable_store.entry) (b : Stable_store.entry) =
  a.index = b.index && int_array_eq a.dv b.dv && a.taken_at = b.taken_at
  && a.size_bytes = b.size_bytes && a.payload = b.payload

let set_eq a b =
  let a = by_index a and b = by_index b in
  List.length a = List.length b && List.for_all2 entry_eq a b

let ints_of l = List.map (fun (e : Stable_store.entry) -> e.index) (by_index l)
let pp_ints l = String.concat "," (List.map string_of_int (ints_of l))

(* --- the run ----------------------------------------------------------- *)

exception Stopped

let run ?(mutate_lgc = false) ?scratch_dir ?observe (scenario : Scenario.t) =
  let sc = Scenario.normalize scenario in
  if not sc.protocol.Rdt_protocols.Protocol.rdt then
    invalid_arg "Harness.run: scenario protocol does not guarantee RDT";
  let violations = ref [] in
  let stop = ref Completed in
  let executed = ref 0 in
  let reports = ref [] in
  let push vs =
    violations := !violations @ vs;
    if not (List.is_empty !violations) then raise Stopped
  in
  let root =
    match scratch_dir with Some d -> d | None -> default_scratch ()
  in
  let log_stores = Array.make sc.n None in
  let shadows = Array.make sc.n None in
  let store_of =
    if not sc.durable then None
    else begin
      rm_rf root;
      mkdir_p root;
      Some
        (fun ~me ->
          let dir = Filename.concat root ("p" ^ string_of_int me) in
          let faults =
            match sc.store_fault with
            | Some f when f.fault_pid = me ->
              Some
                (Fault.at_op ~op:f.fault_op ~kind:f.fault_kind
                   ~rng:(Prng.create ~seed:(sc.seed lxor 0x51ab)))
            | _ -> None
          in
          let ls = Log_store.create ~config:log_config ?faults ~pid:me ~dir () in
          log_stores.(me) <- Some ls;
          let st = Stable_store.create ~me in
          let sh = { prev = []; cur = []; ever = Hashtbl.create 16 } in
          shadows.(me) <- Some sh;
          Stable_store.set_backend st (wrap_backend sh (Log_store.backend ls));
          st)
    end
  in
  (* After [Fault.Injected_crash] the faulted instance is poisoned and
     the in-memory store is ahead of the disk; reopen the directory and
     hold what recovery found against the shadow's mutation bracket. *)
  let check_store_crash ~at_op =
    let f = Option.get sc.store_fault in
    let pid = f.Scenario.fault_pid in
    let sh = Option.get shadows.(pid) in
    log_stores.(pid) <- None (* poisoned; the directory is the truth now *);
    let dir = Filename.concat root ("p" ^ string_of_int pid) in
    let reopened = Log_store.create ~config:log_config ~pid ~dir () in
    let recovered = (Log_store.recovery reopened).Log_store.recovered in
    Log_store.close reopened;
    stop := Store_crashed { pid; at_op };
    let vs =
      ref
        (List.filter_map
           (fun (e : Stable_store.entry) ->
             match Hashtbl.find_all sh.ever e.index with
             | [] ->
               Some
                 (Printf.sprintf
                    "p%d recovered s^%d which was never stored" pid e.index)
             | versions ->
               if List.exists (entry_eq e) versions then None
               else
                 Some
                   (Printf.sprintf
                      "p%d recovered s^%d differing from every version ever \
                       stored"
                      pid e.index))
           recovered)
    in
    (match f.fault_kind with
    | Fault.Bit_flip -> () (* a flip anywhere in the log can drop any record *)
    | Fault.Short_write | Fault.Crash_before_sync ->
      if not (set_eq recovered sh.prev || set_eq recovered sh.cur) then
        vs :=
          Printf.sprintf
            "p%d recovered {%s}, expected the interrupted mutation's bracket \
             {%s} or {%s}"
            pid (pp_ints recovered) (pp_ints sh.prev) (pp_ints sh.cur)
          :: !vs);
    push
      (List.map
         (fun detail -> { Oracles.oracle = "durability"; op = at_op; detail })
         !vs)
  in
  let finish () =
    Array.iter
      (fun ls -> match ls with Some ls -> (try Log_store.close ls with _ -> ()) | None -> ())
      log_stores;
    if sc.durable then rm_rf root
  in
  Fun.protect ~finally:finish @@ fun () ->
  match
    (* store faults can fire while [Script.create] stores the initial
       checkpoints *)
    try Ok (Script.create ~knowledge:sc.knowledge ?store_of ~n:sc.n
              ~protocol:sc.protocol ~with_lgc:true ())
    with e -> Error e
  with
  | Error (Fault.Injected_crash _) ->
    (try check_store_crash ~at_op:0 with Stopped -> ());
    { scenario = sc; violations = !violations; ops_executed = 0; stop = !stop;
      script = None; reports = [] }
  | Error e -> raise e
  | Ok script ->
    if mutate_lgc then
      for pid = 0 to sc.n - 1 do
        match Script.collector script pid with
        | Some lgc -> Rdt_lgc.set_test_overcollect lgc true
        | None -> ()
      done;
    let incr = Ccp.Incremental.of_trace (Script.trace script) in
    let msgs = Hashtbl.create 64 in
    let exact () =
      (match sc.knowledge with `Causal -> true | `Global -> false)
      || Script.crash_count script = 0
    in
    let quiescent i =
      push
        (Oracles.quiescent ~script
           ~ccp:(Ccp.Incremental.ccp incr)
           ~exact:(exact ()) ~op:i)
    in
    let deep i =
      push (Oracles.deep ~script ~ccp:(Ccp.Incremental.ccp incr) ~op:i)
    in
    let execute i op =
      match (op : Scenario.op) with
      | Scenario.Checkpoint p ->
        Script.checkpoint script p;
        quiescent i
      | Scenario.Send { id; src; dst } ->
        Hashtbl.replace msgs id (Script.send script ~src ~dst);
        quiescent i
      | Scenario.Deliver id -> (
        match Hashtbl.find_opt msgs id with
        | Some m when Script.alive script m ->
          Script.deliver script m;
          quiescent i
        | _ -> () (* normalized scenarios never reach this *))
      | Scenario.Drop id -> (
        match Hashtbl.find_opt msgs id with
        | Some m when Script.alive script m -> Script.drop script m
        | _ -> ())
      | Scenario.Crash faulty ->
        let ccp_before = Ccp.of_trace (Script.trace script) in
        let report = Script.crash script ~faulty in
        reports := !reports @ [ report ];
        push (Oracles.crash ~ccp_before ~report ~op:i);
        quiescent i;
        deep i
    in
    (try
       List.iteri
         (fun i op ->
           executed := i + 1;
           try
             execute i op;
             (* differential observation point: the live-cluster checker
                compares the states it recorded against the replay here *)
             match observe with
             | Some f -> push (f ~op:i script)
             | None -> ()
           with Fault.Injected_crash _ ->
             (* the faulted process is down mid-mutation; the run ends
                here — only the durability oracles still apply *)
             check_store_crash ~at_op:i;
             raise Stopped)
         sc.ops;
       let last = List.length sc.ops in
       deep last;
       (* durable epilogue: close, reopen, and demand that recovery
          restores exactly the retained set the simulation ended with *)
       if sc.durable then
         for pid = 0 to sc.n - 1 do
           match log_stores.(pid) with
           | None -> ()
           | Some ls ->
             Log_store.close ls;
             log_stores.(pid) <- None;
             let dir = Filename.concat root ("p" ^ string_of_int pid) in
             let reopened = Log_store.create ~config:log_config ~pid ~dir () in
             let recovered = (Log_store.recovery reopened).Log_store.recovered in
             Log_store.close reopened;
             let live = Stable_store.retained (Script.store script pid) in
             if not (set_eq recovered live) then
               push
                 [
                   {
                     Oracles.oracle = "durability";
                     op = last;
                     detail =
                       Printf.sprintf
                         "p%d recovered {%s} from disk but retained {%s} in \
                          memory"
                         pid (pp_ints recovered) (pp_ints live);
                   };
                 ]
         done
     with
    | Stopped -> ()
    | e ->
      violations :=
        !violations
        @ [
            {
              Oracles.oracle = "harness";
              op = !executed - 1;
              detail = Printexc.to_string e;
            };
          ]);
    {
      scenario = sc;
      violations = !violations;
      ops_executed = !executed;
      stop = !stop;
      script = Some script;
      reports = !reports;
    }
