module Script = Rdt_scenarios.Script
module Ccp = Rdt_ccp.Ccp
module Consistency = Rdt_ccp.Consistency
module Zigzag = Rdt_ccp.Zigzag
module Rdt_check = Rdt_ccp.Rdt_check
module Oracle = Rdt_gc.Oracle
module Global_gc = Rdt_gc.Global_gc
module Rdt_lgc = Rdt_gc.Rdt_lgc
module Stable_store = Rdt_storage.Stable_store
module Session = Rdt_recovery.Session
module Recovery_line = Rdt_recovery.Recovery_line

type violation = { oracle : string; op : int; detail : string }

let pp_violation ppf v =
  Fmt.pf ppf "%s oracle violated after op %d: %s" v.oracle v.op v.detail

let ints l = String.concat "," (List.map string_of_int l)
let sorted l = List.sort Int.compare l

let int_array_eq a b =
  let n = Array.length a in
  n = Array.length b
  &&
  let rec go i = i >= n || (a.(i) = b.(i) && go (i + 1)) in
  go 0

(* --- per-op checks (post-event quiescence) ----------------------------- *)

(* Every oracle below compares collector state to ground truth at
   {e post-event quiescence}: after an operation (and its middleware and
   collector hooks) has completed entirely.  Mid-event the store may
   legitimately hold [n+1] checkpoints (a new checkpoint is stored before
   [release(me)] runs) and the UC array may be mid-update; only the
   settled state is contractual.  See DESIGN.md §11. *)

let quiescent ~script ~ccp ~exact ~op =
  let n = Script.n script in
  let vs = ref [] in
  let add oracle fmt =
    Printf.ksprintf (fun detail -> vs := { oracle; op; detail } :: !vs) fmt
  in
  (* Safety (Theorem 4): every checkpoint the omniscient oracle still
     needs must be retained. *)
  for pid = 0 to n - 1 do
    let retained = Script.retained script pid in
    let needed = Oracle.retained ccp ~pid in
    List.iter
      (fun index ->
        if not (List.mem index retained) then
          add "safety"
            "p%d eliminated non-obsolete s^%d (retained {%s}, oracle needs \
             {%s})"
            pid index (ints retained) (ints needed))
      needed
  done;
  (* Optimality (Theorem 5): nothing identifiable as obsolete from causal
     knowledge is still stored; equality when no recovery session
     injected global knowledge. *)
  let snaps =
    Array.init n (fun pid -> Session.snapshot_of (Script.middleware script pid))
  in
  for pid = 0 to n - 1 do
    let li = snaps.(pid).Global_gc.live_dv in
    let causal = Global_gc.theorem1_retained snaps ~me:pid ~li in
    let retained = Script.retained script pid in
    List.iter
      (fun index ->
        if not (List.mem index causal) then
          add "optimality"
            "p%d still stores s^%d, collectable from causal knowledge (would \
             retain only {%s})"
            pid index (ints causal))
      retained;
    if exact && not (List.equal Int.equal (sorted retained) (sorted causal))
    then
      add "optimality"
        "p%d retains {%s}, causal knowledge dictates exactly {%s}" pid
        (ints retained) (ints causal)
  done;
  (* Space bound (Theorem 3 / Section 4.5): n at quiescence, n+1
     transient peak. *)
  for pid = 0 to n - 1 do
    let store = Script.store script pid in
    let count = Stable_store.count store in
    let peak = (Stable_store.stats store).Stable_store.peak_count in
    if count > n then
      add "bound" "p%d retains %d checkpoints > n = %d at quiescence" pid count
        n;
    if peak > n + 1 then
      add "bound" "p%d peaked at %d checkpoints > n + 1 = %d" pid peak (n + 1)
  done;
  (* Equation-4 invariant vs CCP ground truth: whenever
     s^last_f -> c^(gamma+1)_i and s^last_f -/-> s^gamma_i, UC.(f) of p_i
     must reference s^gamma_i. *)
  for pid = 0 to n - 1 do
    match Script.collector script pid with
    | None -> ()
    | Some lgc ->
      for f = 0 to n - 1 do
        let last_f = Ccp.last_stable_ckpt ccp f in
        let last_i = Ccp.last_stable ccp pid in
        let rec find gamma =
          if gamma > last_i then None
          else begin
            let c : Ccp.ckpt = { pid; index = gamma } in
            let succ : Ccp.ckpt = { pid; index = gamma + 1 } in
            if
              (not (Ccp.precedes ccp last_f c)) && Ccp.precedes ccp last_f succ
            then Some gamma
            else find (gamma + 1)
          end
        in
        match find 0 with
        | None -> ()
        | Some gamma ->
          let got = Rdt_lgc.retained_because_of lgc f in
          if not (Option.equal Int.equal got (Some gamma)) then
            add "invariant" "p%d must hold UC[%d] = s^%d, found %s" pid f gamma
              (match got with None -> "Null" | Some g -> string_of_int g)
      done
  done;
  List.rev !vs

(* --- deep checks (crash points and end of run) ------------------------- *)

let deep ~script ~ccp ~op =
  let n = Ccp.n ccp in
  let vs = ref [] in
  let add oracle fmt =
    Printf.ksprintf (fun detail -> vs := { oracle; op; detail } :: !vs) fmt
  in
  (* Recovery-line retention: for every single-failure line (Lemma 1,
     computed from trace vector clocks — independent of the protocols'
     DVs), every stable member must still be retained and the line must
     be consistent. *)
  for f = 0 to n - 1 do
    let line = Recovery_line.lemma1 ccp ~faulty:[ f ] in
    if not (Consistency.is_consistent ccp line) then
      add "line" "lemma-1 line (%s) for faulty={%d} is inconsistent"
        (ints (Array.to_list line))
        f;
    for pid = 0 to n - 1 do
      let idx = line.(pid) in
      if
        idx <= Ccp.last_stable ccp pid
        && not (List.mem idx (Script.retained script pid))
      then
        add "line"
          "p%d's s^%d lies on the recovery line for faulty={%d} but was \
           eliminated"
          pid idx f
    done
  done;
  (* Zigzag analyzer: an RDT execution admits no useless (Z-cycle)
     checkpoints. *)
  (match Zigzag.useless ccp with
  | [] -> ()
  | l ->
    add "zigzag" "useless checkpoints in an RDT execution: %s"
      (String.concat "," (List.map (Fmt.str "%a" Ccp.pp_ckpt) l)));
  (* RDT doubling (Definition 4): the protocol must have forced enough
     checkpoints. *)
  (match Rdt_check.violations ~limit:1 ccp with
  | [] -> ()
  | v :: _ ->
    add "rdt" "execution is not RD-trackable: %s"
      (Fmt.str "%a" Rdt_check.pp_violation v));
  List.rev !vs

(* --- crash differential ------------------------------------------------ *)

let crash ~ccp_before ~(report : Session.report) ~op =
  let vs = ref [] in
  let add oracle fmt =
    Printf.ksprintf (fun detail -> vs := { oracle; op; detail } :: !vs) fmt
  in
  let expected = Recovery_line.lemma1 ccp_before ~faulty:report.faulty in
  if not (int_array_eq report.line expected) then
    add "recovery-line"
      "session line (%s) for faulty={%s} differs from lemma-1 line (%s)"
      (ints (Array.to_list report.line))
      (ints report.faulty)
      (ints (Array.to_list expected));
  if not (Consistency.is_consistent ccp_before report.line) then
    add "recovery-line" "session line (%s) is not consistent"
      (ints (Array.to_list report.line));
  List.rev !vs
