(** Scenario execution with differential checking.

    Replays a {!Scenario.t} through the full stack — real middleware and
    protocol, RDT-LGC collectors, centralized recovery sessions and
    (for durable scenarios) per-process {!Rdt_store.Log_store} backends in
    a scratch directory — running the {!Oracles} after every op at
    post-event quiescence and stopping at the first violation.

    Durable scenarios additionally maintain a shadow of each store's live
    entry set; an injected storage fault ({!Rdt_store.Fault}) stops the
    run and holds what a recovery scan of the directory finds against the
    shadow's mutation bracket (crash consistency), and fault-free durable
    runs must recover exactly the final retained set (the epilogue
    check). *)

type stop =
  | Completed  (** every op ran (or a logic violation stopped the run) *)
  | Store_crashed of { pid : int; at_op : int }
      (** the injected storage fault fired; durability oracles ran *)

type result = {
  scenario : Scenario.t;  (** the normalized scenario that actually ran *)
  violations : Oracles.violation list;
      (** empty = passed; fail-fast, so usually a single entry *)
  ops_executed : int;
  stop : stop;
}

val run : ?mutate_lgc:bool -> ?scratch_dir:string -> Scenario.t -> result
(** [mutate_lgc] enables {!Rdt_gc.Rdt_lgc.set_test_overcollect} on every
    collector — the fuzzer's self-check: the run must then produce a
    violation.  [scratch_dir] overrides where durable scenarios put their
    store directories (wiped before and after use; default: a
    process-unique directory under the system temp dir).
    @raise Invalid_argument on a non-RDT protocol. *)

val rm_rf : string -> unit
(** Recursive delete, shared with the fuzz driver and tests. *)

val mkdir_p : string -> unit
