(** Scenario execution with differential checking.

    Replays a {!Scenario.t} through the full stack — real middleware and
    protocol, RDT-LGC collectors, centralized recovery sessions and
    (for durable scenarios) per-process {!Rdt_store.Log_store} backends in
    a scratch directory — running the {!Oracles} after every op at
    post-event quiescence and stopping at the first violation.

    Durable scenarios additionally maintain a shadow of each store's live
    entry set; an injected storage fault ({!Rdt_store.Fault}) stops the
    run and holds what a recovery scan of the directory finds against the
    shadow's mutation bracket (crash consistency), and fault-free durable
    runs must recover exactly the final retained set (the epilogue
    check). *)

type stop =
  | Completed  (** every op ran (or a logic violation stopped the run) *)
  | Store_crashed of { pid : int; at_op : int }
      (** the injected storage fault fired; durability oracles ran *)

type result = {
  scenario : Scenario.t;  (** the normalized scenario that actually ran *)
  violations : Oracles.violation list;
      (** empty = passed; fail-fast, so usually a single entry *)
  ops_executed : int;
  stop : stop;
  script : Rdt_scenarios.Script.t option;
      (** the replayed script, for post-run inspection (trace comparison
          by the live-cluster checker); [None] only when an injected
          store fault fired during setup *)
  reports : Rdt_recovery.Session.report list;
      (** recovery-session reports, one per crash op executed *)
}

val run :
  ?mutate_lgc:bool ->
  ?scratch_dir:string ->
  ?observe:(op:int -> Rdt_scenarios.Script.t -> Oracles.violation list) ->
  Scenario.t ->
  result
(** [mutate_lgc] enables {!Rdt_gc.Rdt_lgc.set_test_overcollect} on every
    collector — the fuzzer's self-check: the run must then produce a
    violation.  [scratch_dir] overrides where durable scenarios put their
    store directories (wiped before and after use; default: a
    process-unique directory under the system temp dir).  [observe] runs
    after each op (and its oracles); any violations it returns stop the
    run like an oracle failure — the live-cluster checker compares the
    states it recorded from real processes against the replay here.
    @raise Invalid_argument on a non-RDT protocol. *)

val log_config : Rdt_store.Log_store.config
(** The store configuration harness runs use (small segments, eager
    fsync); the live runtime's nodes use the same one, so live store
    directories and replayed scratch directories age identically. *)

val entry_eq : Rdt_storage.Stable_store.entry -> Rdt_storage.Stable_store.entry -> bool
val set_eq : Rdt_storage.Stable_store.entry list -> Rdt_storage.Stable_store.entry list -> bool
(** Full structural comparison (index, dv, taken_at, size, payload) used
    by the durability oracles, shared with the live-cluster checker. *)

val rm_rf : string -> unit
(** Recursive delete, shared with the fuzz driver and tests. *)

val mkdir_p : string -> unit
