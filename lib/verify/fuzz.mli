(** Fuzzing campaigns.

    A campaign derives one sub-seed per run from the root seed
    (splitmix64), generates a {!Scenario}, executes it under the
    {!Harness} oracles, and on failure delta-debugs a minimal reproducer
    ({!Shrink}).  With a corpus directory, previously saved failing
    scenarios ([*.scn]) are replayed first as regressions, and new
    failures are written back as [seed-<hex>.scn] (original),
    [seed-<hex>.min.scn] (shrunk) and [seed-<hex>.ml] (an OCaml
    reproducer over {!Rdt_scenarios.Script}).

    Everything — generation, execution, shrinking, and every line passed
    to [log] — is a deterministic function of the arguments, so equal
    seeds produce byte-identical output. *)

type failure = {
  run : int;
  scenario : Scenario.t;
  violation : Oracles.violation;  (** the first violation of the run *)
  shrunk : Scenario.t option;
}

type report = {
  runs : int;
  failures : failure list;
  corpus_replayed : int;
  corpus_failed : int;
}

val passed : report -> bool
(** No generated-run failures and no corpus regressions. *)

val campaign :
  ?mutate_lgc:bool ->
  ?shrink:bool ->
  ?corpus:string ->
  ?log:(string -> unit) ->
  ?scratch_dir:string ->
  ?shards:int ->
  seed:int ->
  runs:int ->
  max_procs:int ->
  unit ->
  report
(** [mutate_lgc] runs the self-check configuration: every collector
    over-collects via {!Rdt_gc.Rdt_lgc.set_test_overcollect}, and the
    campaign is expected to catch it ([shrink] defaults to [true]).
    [shards] (default 1) runs simulated-mode donor simulations on that
    many engine shards; generated scenarios and verdicts are identical
    for every value (shard-count invariance), so a multi-shard campaign
    doubles as a parallel-engine smoke test. *)
