(** Differential oracles for the fuzzer.

    Each check recomputes ground truth through machinery that is
    independent of the code under test: the omniscient {!Rdt_gc.Oracle}
    and {!Rdt_gc.Global_gc} closed forms evaluate Theorems 1/2 on the CCP
    and snapshots, {!Rdt_recovery.Recovery_line.lemma1} derives recovery
    lines from trace vector clocks (not the protocols' dependency
    vectors), and the {!Rdt_ccp.Zigzag} / {!Rdt_ccp.Rdt_check} analyzers
    validate the communication structure itself.

    {b Comparison point.}  All state oracles compare at {e post-event
    quiescence}: after an operation and every middleware/collector hook it
    triggers have completed.  Mid-event the store legitimately holds
    [n + 1] checkpoints — {!Rdt_gc.Rdt_lgc.on_checkpoint_stored} runs
    [release(me)] only after the new checkpoint is in stable storage — and
    the UC array may be half-updated, so mid-event states are bounded
    ([peak <= n + 1]) but not compared for equality.  See DESIGN.md §11
    and the pinning test in [test/test_rdt_lgc.ml]. *)

type violation = { oracle : string; op : int; detail : string }
(** [oracle] names the failed check ("safety", "optimality", "bound",
    "invariant", "line", "zigzag", "rdt", "recovery-line", "durability",
    "harness"); [op] is the index of the scenario op after which it was
    detected. *)

val pp_violation : Format.formatter -> violation -> unit

val quiescent :
  script:Rdt_scenarios.Script.t ->
  ccp:Rdt_ccp.Ccp.t ->
  exact:bool ->
  op:int ->
  violation list
(** Cheap checks run after every op: safety (Theorem 4, vs
    {!Rdt_gc.Oracle}), optimality (Theorem 5, vs the Theorem-1 closed
    form; [exact] demands set equality and is only valid while no recovery
    session has injected global knowledge), the n / n+1 retention bound,
    and the Equation-4 invariant against CCP ground truth. *)

val deep :
  script:Rdt_scenarios.Script.t ->
  ccp:Rdt_ccp.Ccp.t ->
  op:int ->
  violation list
(** Expensive checks run at crash points and end of run: every
    single-failure Lemma-1 recovery line is consistent and fully retained,
    the zigzag analyzer finds no useless checkpoint, and the execution is
    RD-trackable. *)

val crash :
  ccp_before:Rdt_ccp.Ccp.t ->
  report:Rdt_recovery.Session.report ->
  op:int ->
  violation list
(** Differential on a recovery session: the line the session computed
    from Equation-2 snapshots must equal the Lemma-1 line derived from
    the pre-crash CCP's vector clocks, and be consistent. *)
