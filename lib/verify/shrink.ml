(* Delta debugging over scenarios: chunked op removal (ddmin), whole
   process removal, then a greedy single-op pass, iterated to fixpoint.
   Every candidate is statically normalized, so removals never produce
   ill-formed scenarios, and a candidate only survives if its re-run
   fails the SAME oracle as the original — shrinking must not wander to
   a different bug. *)

let reproduces ?mutate_lgc ?scratch_dir ~oracle sc =
  let r = Harness.run ?mutate_lgc ?scratch_dir sc in
  List.exists (fun (v : Oracles.violation) -> v.oracle = oracle) r.violations

let set_ops sc ops = Scenario.normalize { sc with Scenario.ops }

let rec ddmin test sc ops n_chunks =
  let len = List.length ops in
  if len <= 1 then ops
  else begin
    let n_chunks = min n_chunks len in
    let chunk_size = (len + n_chunks - 1) / n_chunks in
    let rec scan ci =
      if ci * chunk_size >= len then None
      else begin
        let lo = ci * chunk_size and hi = min len ((ci + 1) * chunk_size) in
        let remaining = List.filteri (fun i _ -> i < lo || i >= hi) ops in
        let cand = set_ops sc remaining in
        if Scenario.op_count cand < len && test cand then
          Some cand.Scenario.ops
        else scan (ci + 1)
      end
    in
    match scan 0 with
    | Some smaller -> ddmin test sc smaller (max (n_chunks - 1) 2)
    | None ->
      if n_chunks >= len then ops else ddmin test sc ops (min len (2 * n_chunks))
  end

let drop_procs test sc =
  let rec go sc pid =
    if pid >= sc.Scenario.n then sc
    else begin
      match Scenario.remove_process sc pid with
      | Some cand when test cand -> go cand 0
      | _ -> go sc (pid + 1)
    end
  in
  go sc 0

let greedy test sc =
  let rec go sc i =
    let ops = sc.Scenario.ops in
    if i >= List.length ops then sc
    else begin
      let cand = set_ops sc (List.filteri (fun j _ -> j <> i) ops) in
      if test cand then go cand i else go sc (i + 1)
    end
  in
  go sc 0

let default_budget = 1500

let minimize_with ?(budget = default_budget) ~check sc =
  let attempts = ref 0 in
  let test cand =
    !attempts < budget
    && begin
         incr attempts;
         check cand
       end
  in
  let sc = Scenario.normalize sc in
  let rec fixpoint sc =
    let before = (Scenario.op_count sc, sc.Scenario.n) in
    let sc = set_ops sc (ddmin test sc sc.Scenario.ops 2) in
    let sc = drop_procs test sc in
    let sc = greedy test sc in
    let c0, n0 = before in
    let c = Scenario.op_count sc and n = sc.Scenario.n in
    if (c < c0 || (c = c0 && n < n0)) && !attempts < budget then fixpoint sc
    else sc
  in
  fixpoint sc

let minimize ?mutate_lgc ?scratch_dir ?budget ~oracle sc =
  minimize_with ?budget
    ~check:(fun cand -> reproduces ?mutate_lgc ?scratch_dir ~oracle cand)
    sc
