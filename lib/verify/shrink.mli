(** Reproducer shrinking (delta debugging).

    Minimizes a failing scenario while preserving {e which} oracle fails:
    chunked op removal (ddmin) interleaved with whole-process removal and
    a greedy single-op pass, iterated to a fixpoint.  Candidates are
    statically {!Scenario.normalize}d, so blind removal cannot produce an
    ill-formed scenario. *)

val reproduces :
  ?mutate_lgc:bool -> ?scratch_dir:string -> oracle:string -> Scenario.t -> bool
(** Re-run the scenario; does it still violate [oracle]? *)

val default_budget : int

val minimize :
  ?mutate_lgc:bool ->
  ?scratch_dir:string ->
  ?budget:int ->
  oracle:string ->
  Scenario.t ->
  Scenario.t
(** [budget] caps the number of candidate executions (default
    {!default_budget}); the result is the smallest reproducer found
    within it.  Deterministic. *)

val minimize_with :
  ?budget:int -> check:(Scenario.t -> bool) -> Scenario.t -> Scenario.t
(** The same ddmin/drop-procs/greedy fixpoint with a caller-supplied
    execution: [check cand] must re-run the (already normalized)
    candidate and report whether it still exhibits the original
    failure.  For campaigns whose backend is not {!Harness.run} — the
    live cluster shrinks failing scenarios through this. *)
