module Prng = Rdt_sim.Prng

type failure = {
  run : int;
  scenario : Scenario.t;
  violation : Oracles.violation;
  shrunk : Scenario.t option;
}

type report = {
  runs : int;
  failures : failure list;
  corpus_replayed : int;
  corpus_failed : int;
}

let passed r = List.is_empty r.failures && r.corpus_failed = 0

(* Output discipline: every logged line is a pure function of the
   arguments (seeds, scenarios, verdicts) — no timestamps, no absolute
   paths — so a campaign's output is byte-reproducible. *)

let verdict_of (r : Harness.result) =
  match r.violations with
  | [] -> "ok"
  | v :: _ -> Printf.sprintf "VIOLATION(%s@%d)" v.Oracles.oracle v.op

let replay_corpus ~mutate_lgc ~log ?scratch_dir dir =
  if not (Sys.file_exists dir) then (0, 0)
  else begin
    let files =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".scn")
      |> List.sort compare
    in
    List.fold_left
      (fun (seen, failed) file ->
        match Scenario.load (Filename.concat dir file) with
        | Error e ->
          log (Printf.sprintf "corpus %s: unreadable (%s)" file e);
          (seen + 1, failed + 1)
        | Ok sc ->
          let r = Harness.run ~mutate_lgc ?scratch_dir sc in
          log (Printf.sprintf "corpus %s: %s" file (verdict_of r));
          ( seen + 1,
            if List.is_empty r.Harness.violations then failed else failed + 1 ))
      (0, 0) files
  end

let save_failure ~log ~dir ~sub_seed sc shrunk =
  Harness.mkdir_p dir;
  let base = Printf.sprintf "seed-%x" sub_seed in
  Scenario.save sc (Filename.concat dir (base ^ ".scn"));
  log (Printf.sprintf "saved %s.scn" base);
  match shrunk with
  | None -> ()
  | Some min_sc ->
    Scenario.save min_sc (Filename.concat dir (base ^ ".min.scn"));
    let oc = open_out (Filename.concat dir (base ^ ".ml")) in
    output_string oc (Scenario.to_script_ml min_sc);
    close_out oc;
    log (Printf.sprintf "saved %s.min.scn and %s.ml" base base)

let campaign ?(mutate_lgc = false) ?(shrink = true) ?corpus
    ?(log = fun _ -> ()) ?scratch_dir ?(shards = 1) ~seed ~runs ~max_procs ()
    =
  let corpus_replayed, corpus_failed =
    match corpus with
    | Some dir -> replay_corpus ~mutate_lgc ~log ?scratch_dir dir
    | None -> (0, 0)
  in
  let root = Prng.create ~seed in
  let failures = ref [] in
  for run = 0 to runs - 1 do
    let sub_seed = Int64.to_int (Prng.bits64 root) land max_int in
    let sc = Scenario.generate ~shards ~seed:sub_seed ~max_procs () in
    let r = Harness.run ~mutate_lgc ?scratch_dir sc in
    log (Printf.sprintf "run %04d %s: %s" run (Fmt.str "%a" Scenario.pp sc)
           (verdict_of r));
    match r.Harness.violations with
    | [] -> ()
    | violation :: _ ->
      let shrunk =
        if shrink then begin
          let min_sc =
            Shrink.minimize ~mutate_lgc ?scratch_dir
              ~oracle:violation.Oracles.oracle sc
          in
          log
            (Printf.sprintf "shrunk 0x%x: %d ops, %d procs (from %d ops, %d \
                             procs)"
               sub_seed (Scenario.op_count min_sc) min_sc.Scenario.n
               (Scenario.op_count sc) sc.Scenario.n);
          Some min_sc
        end
        else None
      in
      (match corpus with
      | Some dir -> save_failure ~log ~dir ~sub_seed sc shrunk
      | None -> ());
      failures := { run; scenario = sc; violation; shrunk } :: !failures
  done;
  let report =
    { runs; failures = List.rev !failures; corpus_replayed; corpus_failed }
  in
  log
    (Printf.sprintf "campaign: %d runs, %d failures%s" runs
       (List.length report.failures)
       (if corpus_replayed > 0 then
          Printf.sprintf ", corpus %d/%d ok" (corpus_replayed - corpus_failed)
            corpus_replayed
        else ""));
  report
