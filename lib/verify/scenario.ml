module Prng = Rdt_sim.Prng
module Protocol = Rdt_protocols.Protocol
module Fault = Rdt_store.Fault
module Trace = Rdt_ccp.Trace
module Workload = Rdt_workload.Workload
module Sim_config = Rdt_core.Sim_config
module Runner = Rdt_core.Runner

type op =
  | Checkpoint of int
  | Send of { id : int; src : int; dst : int }
  | Deliver of int
  | Drop of int
  | Crash of int list

type store_fault = { fault_pid : int; fault_op : int; fault_kind : Fault.kind }

type t = {
  seed : int;
  n : int;
  protocol : Protocol.t;
  knowledge : Rdt_recovery.Session.knowledge;
  durable : bool;
  store_fault : store_fault option;
  ops : op list;
}

let op_count t = List.length t.ops

let op_equal a b =
  match (a, b) with
  | Checkpoint a, Checkpoint b -> a = b
  | Send a, Send b -> a.id = b.id && a.src = b.src && a.dst = b.dst
  | Deliver a, Deliver b | Drop a, Drop b -> a = b
  | Crash a, Crash b -> List.equal Int.equal a b
  | (Checkpoint _ | Send _ | Deliver _ | Drop _ | Crash _), _ -> false

let knowledge_equal a b =
  match (a, b) with
  | `Global, `Global | `Causal, `Causal -> true
  | (`Global | `Causal), _ -> false

let store_fault_equal a b =
  a.fault_pid = b.fault_pid && a.fault_op = b.fault_op
  && (match (a.fault_kind, b.fault_kind) with
     | Fault.Short_write, Fault.Short_write
     | Crash_before_sync, Crash_before_sync
     | Bit_flip, Bit_flip -> true
     | (Fault.Short_write | Crash_before_sync | Bit_flip), _ -> false)

let equal a b =
  a.seed = b.seed && a.n = b.n
  && a.protocol.Protocol.id = b.protocol.Protocol.id
  && knowledge_equal a.knowledge b.knowledge
  && a.durable = b.durable
  && Option.equal store_fault_equal a.store_fault b.store_fault
  && List.equal op_equal a.ops b.ops

(* --- static normalization --------------------------------------------- *)

(* Make an op list well formed without running it: delivery/drop only of
   messages that are in flight at that point, crashes flush the in-flight
   set, out-of-range pids disappear.  Shrinking removes ops blindly and
   relies on this to restore well-formedness. *)
let normalize sc =
  (* [seen]: every message id ever sent (ids are never reused); [inflight]:
     sent but not yet delivered/dropped/flushed by a crash.  Two tables so a
     crash can clear the in-flight set without Hashtbl iteration, whose
     order rdt_lint (det/hashtbl-order) bans in this library. *)
  let seen = Hashtbl.create 64 in
  let inflight = Hashtbl.create 64 in
  let valid p = p >= 0 && p < sc.n in
  let ops =
    List.filter_map
      (fun op ->
        match op with
        | Checkpoint p -> if valid p then Some op else None
        | Send { id; src; dst } ->
          if valid src && valid dst && src <> dst && not (Hashtbl.mem seen id)
          then begin
            Hashtbl.replace seen id ();
            Hashtbl.replace inflight id ();
            Some op
          end
          else None
        | Deliver id | Drop id ->
          if Hashtbl.mem inflight id then begin
            Hashtbl.remove inflight id;
            Some op
          end
          else None
        | Crash faulty ->
          let faulty = List.sort_uniq Int.compare (List.filter valid faulty) in
          if List.is_empty faulty then None
          else begin
            (* a recovery session discards every in-flight message *)
            Hashtbl.reset inflight;
            Some (Crash faulty)
          end)
      sc.ops
  in
  let store_fault = if sc.durable then sc.store_fault else None in
  { sc with ops; store_fault }

let remove_process sc pid =
  if sc.n <= 2 || pid < 0 || pid >= sc.n then None
  else begin
    let remap p = if p > pid then p - 1 else p in
    let ops =
      List.filter_map
        (fun op ->
          match op with
          | Checkpoint p -> if p = pid then None else Some (Checkpoint (remap p))
          | Send { id; src; dst } ->
            if src = pid || dst = pid then None
            else Some (Send { id; src = remap src; dst = remap dst })
          | Deliver _ | Drop _ -> Some op
          | Crash faulty ->
            let faulty =
              List.filter_map (fun p -> if p = pid then None else Some (remap p))
                faulty
            in
            if List.is_empty faulty then None else Some (Crash faulty))
        sc.ops
    in
    let store_fault =
      match sc.store_fault with
      | Some f when f.fault_pid = pid -> None
      | Some f -> Some { f with fault_pid = remap f.fault_pid }
      | None -> None
    in
    Some (normalize { sc with n = sc.n - 1; ops; store_fault })
  end

(* --- generation ------------------------------------------------------- *)

let pick_protocol rng =
  let ps = Array.of_list Protocol.rdt_protocols in
  Prng.pick rng ps

let gen_store_fault rng ~n ~durable =
  if durable && Prng.bool rng then
    Some
      {
        fault_pid = Prng.int rng n;
        fault_op = 1 + Prng.int rng 30;
        fault_kind =
          (match Prng.int rng 3 with
          | 0 -> Fault.Short_write
          | 1 -> Fault.Crash_before_sync
          | _ -> Fault.Bit_flip);
      }
  else None

(* Direct mode: the op list itself is random.  Message delay and
   reordering are modeled by how long a send id lingers in [pending] and
   by the [fifo_bias] coin (probability of delivering the oldest pending
   message rather than a uniformly random one). *)
let gen_direct rng ~seed ~max_procs =
  let n = 2 + Prng.int rng (max 1 (max_procs - 1)) in
  let protocol = pick_protocol rng in
  let knowledge = if Prng.bool rng then `Global else `Causal in
  let durable = Prng.int rng 4 = 0 in
  let pattern = Prng.int rng 3 in
  let fifo_bias = [| 0.0; 0.5; 0.9 |].(Prng.int rng 3) in
  let crashes_allowed = Prng.bool rng in
  let len = 8 + Prng.int rng 120 in
  let dst_of src =
    match pattern with
    | 0 -> (src + 1 + Prng.int rng (n - 1)) mod n (* uniform *)
    | 1 -> (src + 1) mod n (* ring *)
    | _ -> if src = 0 then 1 + Prng.int rng (n - 1) else 0 (* hub *)
  in
  let ops = ref [] in
  let pending = ref [] (* in-flight send ids, oldest first *) in
  let next_id = ref 0 in
  let take_pending id =
    pending := List.filter (fun i -> i <> id) !pending;
    id
  in
  for _ = 1 to len do
    let roll = Prng.int rng 100 in
    if roll < 34 then begin
      let src = Prng.int rng n in
      let id = !next_id in
      incr next_id;
      pending := !pending @ [ id ];
      ops := Send { id; src; dst = dst_of src } :: !ops
    end
    else if roll < 70 && not (List.is_empty !pending) then begin
      let id =
        if Prng.bernoulli rng ~p:fifo_bias then List.hd !pending
        else List.nth !pending (Prng.int rng (List.length !pending))
      in
      ops := Deliver (take_pending id) :: !ops
    end
    else if roll < 88 then ops := Checkpoint (Prng.int rng n) :: !ops
    else if roll < 94 && not (List.is_empty !pending) then begin
      let id = List.nth !pending (Prng.int rng (List.length !pending)) in
      ops := Drop (take_pending id) :: !ops
    end
    else if crashes_allowed && roll >= 94 then begin
      let f1 = Prng.int rng n in
      let faulty =
        if n > 2 && Prng.int rng 3 = 0 then
          List.sort_uniq compare [ f1; (f1 + 1 + Prng.int rng (n - 1)) mod n ]
        else [ f1 ]
      in
      pending := [];
      ops := Crash faulty :: !ops
    end
  done;
  {
    seed;
    n;
    protocol;
    knowledge;
    durable;
    store_fault = gen_store_fault rng ~n ~durable;
    ops = List.rev !ops;
  }

(* Simulated mode: run the discrete-event engine on a random
   configuration (real workload patterns, network delay/loss/reordering)
   and transcribe the recorded trace into an op list.  The transcript is a
   pattern donor, not an exact replay — forced checkpoints are replayed as
   basic ones, on top of which the protocol may force more; both are legal
   executions. *)
let max_transcribed_ops = 250

let gen_simulated rng ~seed ~max_procs ~shards =
  let n = 2 + Prng.int rng (max 1 (max_procs - 1)) in
  let protocol = pick_protocol rng in
  let knowledge = if Prng.bool rng then `Global else `Causal in
  let durable = Prng.int rng 4 = 0 in
  let patterns =
    [|
      Workload.Uniform;
      Workload.Ring;
      Workload.Client_server { servers = 1 };
      Workload.Pipeline;
      Workload.Broadcast;
      Workload.Bursty { burst = 3 };
    |]
  in
  let cfg =
    {
      Sim_config.default with
      n;
      seed = Prng.int rng 1_000_000;
      duration = 8.0 +. Prng.float rng 12.0;
      protocol;
      gc = Sim_config.No_gc;
      faults = [];
      workload =
        {
          Workload.default with
          pattern = Prng.pick rng patterns;
          send_mean_interval = [| 0.5; 1.0; 2.0 |].(Prng.int rng 3);
          basic_ckpt_mean_interval = [| 2.0; 4.0; 8.0 |].(Prng.int rng 3);
        };
      net =
        {
          Rdt_sim.Network.default with
          loss_probability = (if Prng.int rng 3 = 0 then 0.1 else 0.0);
          fifo = Prng.bool rng;
        };
      sample_interval = 1_000_000.0;
      shards;
    }
  in
  let r = Runner.create cfg in
  Runner.run r;
  let ops = ref [] in
  let next_id = ref 0 in
  let idmap = Hashtbl.create 64 in
  List.iter
    (fun (e : Trace.event) ->
      match e.kind with
      | Trace.Checkpoint { index } ->
        if index > 0 then ops := Checkpoint e.pid :: !ops
      | Trace.Send { msg_id; dst } ->
        let id = !next_id in
        incr next_id;
        Hashtbl.replace idmap msg_id id;
        ops := Send { id; src = e.pid; dst } :: !ops
      | Trace.Receive { msg_id; _ } -> (
        match Hashtbl.find_opt idmap msg_id with
        | Some id -> ops := Deliver id :: !ops
        | None -> ()))
    (Trace.all_events (Runner.trace r));
  let ops = List.rev !ops in
  let ops = List.filteri (fun i _ -> i < max_transcribed_ops) ops in
  let ops =
    (* sometimes finish with a crash so recovery paths get simulated
       coverage too *)
    if Prng.int rng 3 = 0 then ops @ [ Crash [ Prng.int rng n ] ] else ops
  in
  {
    seed;
    n;
    protocol;
    knowledge;
    durable;
    store_fault = gen_store_fault rng ~n ~durable;
    ops;
  }

let generate ?(shards = 1) ~seed ~max_procs () =
  let max_procs = max 2 max_procs in
  let rng = Prng.create ~seed in
  let sc =
    if Prng.int rng 3 = 0 then gen_simulated rng ~seed ~max_procs ~shards
    else gen_direct rng ~seed ~max_procs
  in
  normalize sc

(* --- corpus serialization --------------------------------------------- *)

let magic = "rdtgc-scenario 1"

let kind_of_string = function
  | "short-write" -> Some Fault.Short_write
  | "crash-before-sync" -> Some Fault.Crash_before_sync
  | "bit-flip" -> Some Fault.Bit_flip
  | _ -> None

let to_string sc =
  let b = Buffer.create 512 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "%s\n" magic;
  pf "seed 0x%x\n" sc.seed;
  pf "n %d\n" sc.n;
  pf "protocol %s\n" sc.protocol.Protocol.id;
  pf "knowledge %s\n"
    (match sc.knowledge with `Global -> "global" | `Causal -> "causal");
  pf "durable %b\n" sc.durable;
  (match sc.store_fault with
  | Some f ->
    pf "store-fault %d %d %s\n" f.fault_pid f.fault_op
      (Fault.kind_name f.fault_kind)
  | None -> ());
  pf "ops\n";
  List.iter
    (fun op ->
      match op with
      | Checkpoint p -> pf "C %d\n" p
      | Send { id; src; dst } -> pf "S %d %d %d\n" id src dst
      | Deliver id -> pf "D %d\n" id
      | Drop id -> pf "L %d\n" id
      | Crash faulty ->
        pf "X%s\n" (String.concat "" (List.map (Printf.sprintf " %d") faulty)))
    sc.ops;
  pf "end\n";
  Buffer.contents b

let of_string s =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let lines =
    String.split_on_char '\n' s
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  match lines with
  | m :: rest when m = magic -> begin
    let seed = ref 0
    and n = ref 0
    and protocol = ref None
    and knowledge = ref `Global
    and durable = ref false
    and store_fault = ref None
    and ops = ref []
    and in_ops = ref false
    and ended = ref false
    and bad = ref None in
    let fail fmt = Printf.ksprintf (fun m -> bad := Some m) fmt in
    List.iter
      (fun line ->
        if Option.is_some !bad || !ended then ()
        else if not !in_ops then begin
          match String.split_on_char ' ' line with
          | [ "seed"; v ] -> (
            match int_of_string_opt v with
            | Some v -> seed := v
            | None -> fail "bad seed %S" v)
          | [ "n"; v ] -> (
            match int_of_string_opt v with
            | Some v when v >= 2 -> n := v
            | _ -> fail "bad n %S" v)
          | [ "protocol"; id ] -> (
            match Protocol.by_id id with
            | Some p -> protocol := Some p
            | None -> fail "unknown protocol %S" id)
          | [ "knowledge"; "global" ] -> knowledge := `Global
          | [ "knowledge"; "causal" ] -> knowledge := `Causal
          | [ "durable"; v ] -> (
            match bool_of_string_opt v with
            | Some v -> durable := v
            | None -> fail "bad durable %S" v)
          | [ "store-fault"; p; o; k ] -> (
            match (int_of_string_opt p, int_of_string_opt o, kind_of_string k)
            with
            | Some fault_pid, Some fault_op, Some fault_kind ->
              store_fault := Some { fault_pid; fault_op; fault_kind }
            | _ -> fail "bad store-fault line %S" line)
          | [ "ops" ] -> in_ops := true
          | _ -> fail "bad header line %S" line
        end
        else begin
          match String.split_on_char ' ' line with
          | [ "end" ] -> ended := true
          | [ "C"; p ] -> (
            match int_of_string_opt p with
            | Some p -> ops := Checkpoint p :: !ops
            | None -> fail "bad op %S" line)
          | [ "S"; id; src; dst ] -> (
            match
              ( int_of_string_opt id,
                int_of_string_opt src,
                int_of_string_opt dst )
            with
            | Some id, Some src, Some dst -> ops := Send { id; src; dst } :: !ops
            | _ -> fail "bad op %S" line)
          | [ "D"; id ] -> (
            match int_of_string_opt id with
            | Some id -> ops := Deliver id :: !ops
            | None -> fail "bad op %S" line)
          | [ "L"; id ] -> (
            match int_of_string_opt id with
            | Some id -> ops := Drop id :: !ops
            | None -> fail "bad op %S" line)
          | "X" :: faulty -> (
            match
              List.fold_left
                (fun acc v ->
                  match (acc, int_of_string_opt v) with
                  | Some l, Some p -> Some (p :: l)
                  | _ -> None)
                (Some []) faulty
            with
            | Some (_ :: _ as l) -> ops := Crash (List.rev l) :: !ops
            | _ -> fail "bad op %S" line)
          | _ -> fail "bad op %S" line
        end)
      rest;
    match (!bad, !protocol, !ended) with
    | Some m, _, _ -> Error m
    | _, None, _ -> err "missing protocol line"
    | _, _, false -> err "missing end line"
    | None, Some protocol, true ->
      if !n < 2 then err "missing or bad n line"
      else
        Ok
          (normalize
             {
               seed = !seed;
               n = !n;
               protocol;
               knowledge = !knowledge;
               durable = !durable;
               store_fault = !store_fault;
               ops = List.rev !ops;
             })
  end
  | _ -> err "not a %s file" magic

let save sc path =
  let oc = open_out path in
  output_string oc (to_string sc);
  close_out oc

let load path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  of_string s

(* --- reproducer emission ---------------------------------------------- *)

let to_script_ml sc =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "(* Reproducer emitted by the differential fuzzer (seed 0x%x).\n" sc.seed;
  pf "   Replays a shrunk scenario through Rdt_scenarios.Script%s. *)\n"
    (if sc.durable then
       " — in-memory\n   stores; attach a Log_store backend via ~store_of to re-add durability"
     else "");
  pf "let scenario () =\n";
  pf "  let protocol =\n";
  pf "    Option.get (Rdt_protocols.Protocol.by_id %S)\n" sc.protocol.Protocol.id;
  pf "  in\n";
  pf "  let s =\n";
  pf "    Rdt_scenarios.Script.create ~knowledge:%s ~n:%d ~protocol\n"
    (match sc.knowledge with `Global -> "`Global" | `Causal -> "`Causal")
    sc.n;
  pf "      ~with_lgc:true ()\n";
  pf "  in\n";
  let used = Hashtbl.create 16 in
  List.iter
    (function
      | Deliver id | Drop id -> Hashtbl.replace used id ()
      | _ -> ())
    sc.ops;
  List.iter
    (fun op ->
      match op with
      | Checkpoint p -> pf "  Rdt_scenarios.Script.checkpoint s %d;\n" p
      | Send { id; src; dst } ->
        pf "  let %sm%d = Rdt_scenarios.Script.send s ~src:%d ~dst:%d in\n"
          (if Hashtbl.mem used id then "" else "_")
          id src dst
      | Deliver id -> pf "  Rdt_scenarios.Script.deliver s m%d;\n" id
      | Drop id -> pf "  Rdt_scenarios.Script.drop s m%d;\n" id
      | Crash faulty ->
        pf "  ignore (Rdt_scenarios.Script.crash s ~faulty:[%s]);\n"
          (String.concat "; " (List.map string_of_int faulty)))
    sc.ops;
  pf "  s\n";
  Buffer.contents b

(* --- printing --------------------------------------------------------- *)

let pp_op ppf = function
  | Checkpoint p -> Fmt.pf ppf "C%d" p
  | Send { id; src; dst } -> Fmt.pf ppf "S%d:%d>%d" id src dst
  | Deliver id -> Fmt.pf ppf "D%d" id
  | Drop id -> Fmt.pf ppf "L%d" id
  | Crash faulty -> Fmt.pf ppf "X[%a]" Fmt.(list ~sep:comma int) faulty

let pp ppf sc =
  Fmt.pf ppf "seed=0x%x n=%d proto=%s know=%s%s%s ops=%d" sc.seed sc.n
    sc.protocol.Protocol.id
    (match sc.knowledge with `Global -> "global" | `Causal -> "causal")
    (if sc.durable then " durable" else "")
    (match sc.store_fault with
    | Some f ->
      Printf.sprintf " fault=%s@p%d#%d"
        (Fault.kind_name f.fault_kind)
        f.fault_pid f.fault_op
    | None -> "")
    (op_count sc)

let pp_ops ppf sc = Fmt.(list ~sep:sp pp_op) ppf sc.ops
