(** Synthetic application workloads.

    The paper fixes no application; what matters for checkpointing and
    garbage collection is the *shape* of the communication pattern (who
    talks to whom, how often, and how often basic checkpoints are taken).
    A workload drives two decisions in the runner: where a process sends
    when its send timer fires, and whether it replies when it receives —
    replies are what create the send/receive interleavings from which
    non-causal zigzag paths arise.

    All patterns draw from the generator they are given, so runs are
    reproducible from the seed. *)

type pattern =
  | Uniform  (** each send goes to a uniformly random peer *)
  | Ring  (** process [i] sends to [(i+1) mod n] *)
  | Client_server of { servers : int }
      (** the first [servers] processes are servers; clients send to a
          random server, servers answer their clients and spontaneously
          gossip to other servers *)
  | Pipeline  (** [i] sends to [i+1]; the last process only receives *)
  | Broadcast  (** each send goes to every other process *)
  | Bursty of { burst : int }
      (** like [Uniform], but each firing of the send timer emits a burst
          of [burst] messages to random peers — models phase-structured
          applications whose communication comes in waves *)

val pattern_of_string : string -> pattern option
(** Parses ["uniform"], ["ring"], ["client-server:<k>"], ["pipeline"],
    ["broadcast"], ["bursty:<k>"]. *)

val pattern_name : pattern -> string

type config = {
  pattern : pattern;
  send_mean_interval : float;
      (** mean of the exponential inter-send time of each process *)
  basic_ckpt_mean_interval : float;
      (** mean of the exponential time between basic checkpoints *)
  reply_probability : float;
      (** probability that receiving a message triggers an immediate
          send (per the pattern's reply rule) *)
}

val default : config

type t

val create : config -> n:int -> rng:Rdt_sim.Prng.t -> ?shards:int -> unit -> t
(** [?shards] (default [1]) groups the per-process generator streams into
    one sub-array per engine shard (the engine's contiguous-block
    partition), so sharded runs touch shard-local structures rather than
    interleaving through one shared array.  Memory layout only: stream
    [me] is the indexed split [me] of [rng] at every shard count, so
    workload randomness is identical whatever value is passed. *)

val config : t -> config

val next_send_delay : t -> me:int -> float
(** Draw the delay until process [me]'s next spontaneous send. *)

val next_basic_ckpt_delay : t -> me:int -> float
(** Draw the delay until process [me]'s next basic checkpoint. *)

val destinations : t -> me:int -> int list
(** Destinations of a spontaneous send of [me] (empty when the pattern
    gives [me] nothing to do, e.g. the pipeline sink). *)

val reply_destinations : t -> me:int -> src:int -> int list
(** Destinations to which [me] replies upon receiving from [src]
    (already includes the [reply_probability] coin flip). *)
