module Prng = Rdt_sim.Prng

type pattern =
  | Uniform
  | Ring
  | Client_server of { servers : int }
  | Pipeline
  | Broadcast
  | Bursty of { burst : int }

let pattern_of_string s =
  match String.lowercase_ascii s with
  | "uniform" -> Some Uniform
  | "ring" -> Some Ring
  | "pipeline" -> Some Pipeline
  | "broadcast" -> Some Broadcast
  | s -> begin
    match String.split_on_char ':' s with
    | [ "client-server"; k ] -> begin
      match int_of_string_opt k with
      | Some servers when servers > 0 -> Some (Client_server { servers })
      | Some _ | None -> None
    end
    | [ "bursty"; k ] -> begin
      match int_of_string_opt k with
      | Some burst when burst > 0 -> Some (Bursty { burst })
      | Some _ | None -> None
    end
    | _ -> None
  end

let pattern_name = function
  | Uniform -> "uniform"
  | Ring -> "ring"
  | Client_server { servers } -> Printf.sprintf "client-server:%d" servers
  | Pipeline -> "pipeline"
  | Broadcast -> "broadcast"
  | Bursty { burst } -> Printf.sprintf "bursty:%d" burst

type config = {
  pattern : pattern;
  send_mean_interval : float;
  basic_ckpt_mean_interval : float;
  reply_probability : float;
}

let default =
  {
    pattern = Uniform;
    send_mean_interval = 1.0;
    basic_ckpt_mean_interval = 5.0;
    reply_probability = 0.3;
  }

(* One PRNG stream per process, derived from the supplied root by indexed
   split: each process's draws are consumed in its own deterministic
   execution order, so workload randomness is independent of how the
   engine interleaves processes — a prerequisite for shard-count-invariant
   simulations. *)
type t = { cfg : config; n : int; streams : Prng.t array }

let create cfg ~n ~rng =
  if n < 2 then invalid_arg "Workload.create: need at least two processes";
  if cfg.send_mean_interval <= 0.0 || cfg.basic_ckpt_mean_interval <= 0.0 then
    invalid_arg "Workload.create: intervals must be positive";
  (match cfg.pattern with
  | Client_server { servers } ->
    if servers <= 0 || servers >= n then
      invalid_arg "Workload.create: server count out of range"
  | Bursty { burst } ->
    if burst <= 0 then invalid_arg "Workload.create: burst must be positive"
  | Uniform | Ring | Pipeline | Broadcast -> ());
  { cfg; n; streams = Array.init n (fun me -> Prng.split_at rng ~index:me) }

let config t = t.cfg

let next_send_delay t ~me =
  Prng.exponential t.streams.(me) ~mean:t.cfg.send_mean_interval

let next_basic_ckpt_delay t ~me =
  Prng.exponential t.streams.(me) ~mean:t.cfg.basic_ckpt_mean_interval

let random_peer t ~me =
  let other = Prng.int t.streams.(me) (t.n - 1) in
  if other >= me then other + 1 else other

let destinations t ~me =
  match t.cfg.pattern with
  | Uniform -> [ random_peer t ~me ]
  | Bursty { burst } -> List.init burst (fun _ -> random_peer t ~me)
  | Ring -> [ (me + 1) mod t.n ]
  | Pipeline -> if me + 1 < t.n then [ me + 1 ] else []
  | Broadcast -> List.filter (fun p -> p <> me) (List.init t.n Fun.id)
  | Client_server { servers } ->
    if me < servers then begin
      (* a server spontaneously gossips to another server when possible *)
      if servers > 1 then begin
        let other = Prng.int t.streams.(me) (servers - 1) in
        [ (if other >= me then other + 1 else other) ]
      end
      else []
    end
    else [ Prng.int t.streams.(me) servers ] (* client calls a random server *)

let reply_destinations t ~me ~src =
  if src = me then []
  else if not (Prng.bernoulli t.streams.(me) ~p:t.cfg.reply_probability) then
    []
  else begin
    match t.cfg.pattern with
    | Uniform | Bursty _ -> [ src ]
    | Ring -> [ (me + 1) mod t.n ]
    | Pipeline -> if me + 1 < t.n then [ me + 1 ] else []
    | Broadcast -> [ src ]
    | Client_server { servers } ->
      if me < servers then [ src ] (* server answers the client *)
      else [ Prng.int t.streams.(me) servers ]
      (* client follows up with a server *)
  end
