module Prng = Rdt_sim.Prng

type pattern =
  | Uniform
  | Ring
  | Client_server of { servers : int }
  | Pipeline
  | Broadcast
  | Bursty of { burst : int }

let pattern_of_string s =
  match String.lowercase_ascii s with
  | "uniform" -> Some Uniform
  | "ring" -> Some Ring
  | "pipeline" -> Some Pipeline
  | "broadcast" -> Some Broadcast
  | s -> begin
    match String.split_on_char ':' s with
    | [ "client-server"; k ] -> begin
      match int_of_string_opt k with
      | Some servers when servers > 0 -> Some (Client_server { servers })
      | Some _ | None -> None
    end
    | [ "bursty"; k ] -> begin
      match int_of_string_opt k with
      | Some burst when burst > 0 -> Some (Bursty { burst })
      | Some _ | None -> None
    end
    | _ -> None
  end

let pattern_name = function
  | Uniform -> "uniform"
  | Ring -> "ring"
  | Client_server { servers } -> Printf.sprintf "client-server:%d" servers
  | Pipeline -> "pipeline"
  | Broadcast -> "broadcast"
  | Bursty { burst } -> Printf.sprintf "bursty:%d" burst

type config = {
  pattern : pattern;
  send_mean_interval : float;
  basic_ckpt_mean_interval : float;
  reply_probability : float;
}

let default =
  {
    pattern = Uniform;
    send_mean_interval = 1.0;
    basic_ckpt_mean_interval = 5.0;
    reply_probability = 0.3;
  }

(* One PRNG stream per process, derived from the supplied root by indexed
   split: each process's draws are consumed in its own deterministic
   execution order, so workload randomness is independent of how the
   engine interleaves processes — a prerequisite for shard-count-invariant
   simulations.

   Streams are stored grouped by engine shard (one sub-array per shard of
   [block = ceil(n / shards)] processes, the engine's partition), so a
   sharded run's domains each walk their own sub-array instead of
   interleaving accesses through one shared array of mutable generator
   records.  The grouping changes only memory layout: stream [me] is
   [split_at rng ~index:me] at every shard count. *)
type t = {
  cfg : config;
  n : int;
  block : int;
  streams : Prng.t array array;
}

let[@inline] stream t me = t.streams.(me / t.block).(me mod t.block)

let create cfg ~n ~rng ?(shards = 1) () =
  if n < 2 then invalid_arg "Workload.create: need at least two processes";
  if shards < 1 then invalid_arg "Workload.create: shards must be >= 1";
  if cfg.send_mean_interval <= 0.0 || cfg.basic_ckpt_mean_interval <= 0.0 then
    invalid_arg "Workload.create: intervals must be positive";
  (match cfg.pattern with
  | Client_server { servers } ->
    if servers <= 0 || servers >= n then
      invalid_arg "Workload.create: server count out of range"
  | Bursty { burst } ->
    if burst <= 0 then invalid_arg "Workload.create: burst must be positive"
  | Uniform | Ring | Pipeline | Broadcast -> ());
  let shards = min shards n in
  let block = (n + shards - 1) / shards in
  let streams =
    Array.init shards (fun s ->
        (* trailing shards can be empty under ceil-division blocks *)
        let lo = min n (s * block) in
        let len = min n ((s + 1) * block) - lo in
        Array.init len (fun i -> Prng.split_at rng ~index:(lo + i)))
  in
  { cfg; n; block; streams }

let config t = t.cfg

let next_send_delay t ~me =
  Prng.exponential (stream t me) ~mean:t.cfg.send_mean_interval

let next_basic_ckpt_delay t ~me =
  Prng.exponential (stream t me) ~mean:t.cfg.basic_ckpt_mean_interval

let random_peer t ~me =
  let other = Prng.int (stream t me) (t.n - 1) in
  if other >= me then other + 1 else other

let destinations t ~me =
  match t.cfg.pattern with
  | Uniform -> [ random_peer t ~me ]
  | Bursty { burst } -> List.init burst (fun _ -> random_peer t ~me)
  | Ring -> [ (me + 1) mod t.n ]
  | Pipeline -> if me + 1 < t.n then [ me + 1 ] else []
  | Broadcast -> List.filter (fun p -> p <> me) (List.init t.n Fun.id)
  | Client_server { servers } ->
    if me < servers then begin
      (* a server spontaneously gossips to another server when possible *)
      if servers > 1 then begin
        let other = Prng.int (stream t me) (servers - 1) in
        [ (if other >= me then other + 1 else other) ]
      end
      else []
    end
    else [ Prng.int (stream t me) servers ] (* client calls a random server *)

let reply_destinations t ~me ~src =
  if src = me then []
  else if not (Prng.bernoulli (stream t me) ~p:t.cfg.reply_probability) then []
  else begin
    match t.cfg.pattern with
    | Uniform | Bursty _ -> [ src ]
    | Ring -> [ (me + 1) mod t.n ]
    | Pipeline -> if me + 1 < t.n then [ me + 1 ] else []
    | Broadcast -> [ src ]
    | Client_server { servers } ->
      if me < servers then [ src ] (* server answers the client *)
      else [ Prng.int (stream t me) servers ]
      (* client follows up with a server *)
  end
