module Ccp = Rdt_ccp.Ccp
module Consistency = Rdt_ccp.Consistency
module Global_gc = Rdt_gc.Global_gc
module Stable_store = Rdt_storage.Stable_store

let check_faulty ~n faulty =
  if List.is_empty faulty then invalid_arg "Recovery_line: empty faulty set";
  List.iter
    (fun f ->
      if f < 0 || f >= n then invalid_arg "Recovery_line: bad faulty pid")
    faulty

let lemma1 ccp ~faulty =
  let n = Ccp.n ccp in
  check_faulty ~n faulty;
  let last_of_faulty = List.map (Ccp.last_stable_ckpt ccp) faulty in
  let component i =
    (* max gamma such that no faulty last stable checkpoint precedes
       c^gamma_i; the violating set is upward-closed, so scan downwards *)
    let rec scan gamma =
      if gamma < 0 then
        invalid_arg "Recovery_line.lemma1: no admissible checkpoint"
      else begin
        let c : Ccp.ckpt = { pid = i; index = gamma } in
        if List.exists (fun lf -> Ccp.precedes ccp lf c) last_of_faulty then
          scan (gamma - 1)
        else gamma
      end
    in
    scan (Ccp.volatile_index ccp i)
  in
  Array.init n component

let by_max_consistent ccp ~faulty =
  let n = Ccp.n ccp in
  check_faulty ~n faulty;
  let bound =
    Array.init n (fun i ->
        if List.mem i faulty then Ccp.last_stable ccp i
        else Ccp.volatile_index ccp i)
  in
  match Consistency.max_consistent ccp ~bound with
  | Some line -> line
  | None -> failwith "Recovery_line.by_max_consistent: no consistent line"

let from_snapshots snaps ~faulty =
  let n = Array.length snaps in
  check_faulty ~n faulty;
  let last_index i =
    let entries = snaps.(i).Global_gc.entries in
    entries.(Array.length entries - 1).Stable_store.index
  in
  let component i =
    let entries = snaps.(i).Global_gc.entries in
    let preceded_by_faulty dv =
      List.exists (fun f -> last_index f < dv.(f)) faulty
    in
    if
      (not (List.mem i faulty))
      && not (preceded_by_faulty snaps.(i).Global_gc.live_dv)
    then last_index i + 1 (* the volatile checkpoint survives *)
    else begin
      let rec scan pos =
        if pos < 0 then
          invalid_arg "Recovery_line.from_snapshots: no admissible checkpoint"
        else begin
          let entry : Stable_store.entry = entries.(pos) in
          if preceded_by_faulty entry.dv then scan (pos - 1) else entry.index
        end
      in
      scan (Array.length entries - 1)
    end
  in
  Array.init n component

let rolled_back = Consistency.count_rolled_back
