module Middleware = Rdt_protocols.Middleware
module Global_gc = Rdt_gc.Global_gc
module Stable_store = Rdt_storage.Stable_store
module Dependency_vector = Rdt_causality.Dependency_vector

type knowledge = [ `Global | `Causal ]

type report = {
  faulty : int list;
  line : int array;
  rolled_back : int list;
  checkpoints_rolled_back : int;
}

let snapshot_of mw =
  {
    Global_gc.entries = Array.of_list (Stable_store.retained (Middleware.store mw));
    live_dv = Dependency_vector.to_array (Middleware.dv mw);
  }

type plan = {
  p_line : int array;
  p_li : int array;
  p_last : int array;
  p_rollback : bool array;
  p_undone : int;
}

(* The pure decision step of a session, shared with the live runtime's
   coordinator (which gathers snapshots over the wire and drives each
   rollback as a command instead of a direct call). *)
let plan ~snapshots ~last ~faulty =
  let n = Array.length snapshots in
  let line = Recovery_line.from_snapshots snapshots ~faulty in
  (* LI in the post-rollback CCP: rolled-back processes end at their line
     component, the others keep their last stable checkpoint *)
  let li = Array.init n (fun j -> min line.(j) last.(j) + 1) in
  let rollback = Array.init n (fun i -> line.(i) <= last.(i)) in
  let undone = ref 0 in
  for i = 0 to n - 1 do
    undone := !undone + (last.(i) + 1 - line.(i))
  done;
  { p_line = line; p_li = li; p_last = last; p_rollback = rollback;
    p_undone = !undone }

let report_of_plan plan ~faulty =
  let rolled = ref [] in
  for i = Array.length plan.p_rollback - 1 downto 0 do
    if plan.p_rollback.(i) then rolled := i :: !rolled
  done;
  {
    faulty;
    line = plan.p_line;
    rolled_back = !rolled;
    checkpoints_rolled_back = plan.p_undone;
  }

let run ~middlewares ~faulty ~knowledge ~release_outdated =
  let n = Array.length middlewares in
  let snapshots = Array.map snapshot_of middlewares in
  let last =
    Array.map
      (fun mw -> Stable_store.last_index (Middleware.store mw))
      middlewares
  in
  let plan = plan ~snapshots ~last ~faulty in
  for i = 0 to n - 1 do
    if plan.p_rollback.(i) then begin
      let li_arg =
        match knowledge with `Global -> Some plan.p_li | `Causal -> None
      in
      Middleware.rollback middlewares.(i) ~to_index:plan.p_line.(i) ~li:li_arg
    end
    else begin
      match knowledge with
      | `Global -> release_outdated i ~li:plan.p_li
      | `Causal -> ()
    end
  done;
  report_of_plan plan ~faulty

let pp_report ppf r =
  let pp_ints ppf l =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
      Format.pp_print_int ppf l
  in
  Format.fprintf ppf
    "@[<h>recovery: faulty={%a} line=(%a) rolled_back={%a} undone=%d@]"
    pp_ints r.faulty pp_ints
    (Array.to_list r.line)
    pp_ints r.rolled_back r.checkpoints_rolled_back
