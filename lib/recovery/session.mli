(** Centralized recovery sessions (paper, Section 2.4 and Algorithm 3).

    The recovery manager stops the execution of non-faulty processes,
    gathers every process's stable state, computes the recovery line
    [R_F] from stored dependency vectors, and drives each process's
    rollback.  In the simulator the session is atomic (it runs inside one
    engine event), which models the stop-world assumption; the runner is
    responsible for flushing in-transit messages around it.

    Two knowledge modes, as in the paper:
    - [`Global]: every process receives the last-interval vector [LI]
      ([LI.(j) = last_s(j) + 1] in the post-rollback CCP), so rolled-back
      processes run Algorithm 3 against Theorem 1 knowledge, and processes
      that did not roll back release outdated [UC] entries.
    - [`Causal]: no global information is disseminated (decentralized
      recovery-line calculation); rolled-back processes run Algorithm 3
      with their own DV (Theorem 2 knowledge) and the others do nothing. *)

type knowledge = [ `Global | `Causal ]

type report = {
  faulty : int list;
  line : int array;  (** the recovery line (general checkpoint indices) *)
  rolled_back : int list;  (** processes that had to roll back *)
  checkpoints_rolled_back : int;
      (** general checkpoints undone across all processes *)
}

val snapshot_of : Rdt_protocols.Middleware.t -> Rdt_gc.Global_gc.snapshot
(** One process's reply to the manager's state query. *)

type plan = {
  p_line : int array;  (** the recovery line *)
  p_li : int array;  (** LI of the post-rollback CCP *)
  p_last : int array;  (** last stable index per process, as gathered *)
  p_rollback : bool array;  (** [p_line.(i) <= p_last.(i)] *)
  p_undone : int;  (** general checkpoints the plan rolls back *)
}

val plan :
  snapshots:Rdt_gc.Global_gc.snapshot array ->
  last:int array ->
  faulty:int list ->
  plan
(** The pure decision step of a session: compute the recovery line, LI and
    who must roll back from the gathered snapshots.  {!run} applies it to
    in-memory middlewares; the live runtime's coordinator applies the same
    plan over the wire, so both deployments roll back to the identical
    line by construction. *)

val report_of_plan : plan -> faulty:int list -> report

val run :
  middlewares:Rdt_protocols.Middleware.t array ->
  faulty:int list ->
  knowledge:knowledge ->
  release_outdated:(int -> li:int array -> unit) ->
  report
(** Run a recovery session.  [release_outdated pid ~li] is called for
    every process that did not roll back when global knowledge is
    disseminated (wire it to {!Rdt_gc.Rdt_lgc.release_outdated}, or pass
    a no-op for other collectors).  Rollbacks themselves go through
    {!Rdt_protocols.Middleware.rollback}, which fires the collector's
    [on_rollback] hook. *)

val pp_report : Format.formatter -> report -> unit
