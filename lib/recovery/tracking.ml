module Global_gc = Rdt_gc.Global_gc
module Stable_store = Rdt_storage.Stable_store
module Dv_archive = Rdt_storage.Dv_archive

type target = { pid : int; index : int }

(* Internal view: a complete DV table per process, however it is backed. *)
type view = {
  n : int;
  last : int array;  (* last stable checkpoint index per process *)
  dv_at : int -> int -> int array;  (* pid -> checkpoint index -> DV *)
  live : int -> int array;  (* pid -> DV of the volatile state *)
}

let view_of_snapshots snaps =
  Array.iter
    (fun (snap : Global_gc.snapshot) ->
      if Array.length snap.entries = 0 then
        invalid_arg "Tracking: empty snapshot";
      Array.iteri
        (fun pos (e : Stable_store.entry) ->
          if e.index <> pos then
            invalid_arg
              "Tracking: snapshots must contain every checkpoint (use the \
               archived variants when a collector is running)")
        snap.entries)
    snaps;
  {
    n = Array.length snaps;
    last =
      Array.map
        (fun (s : Global_gc.snapshot) -> Array.length s.entries - 1)
        snaps;
    dv_at =
      (fun pid index -> snaps.(pid).entries.(index).Stable_store.dv);
    live = (fun pid -> snaps.(pid).Global_gc.live_dv);
  }

let view_of_archives ~archives ~live_dvs =
  if Array.length archives <> Array.length live_dvs then
    invalid_arg "Tracking: archives / live_dvs arity mismatch";
  Array.iter
    (fun a ->
      if Dv_archive.count a = 0 then invalid_arg "Tracking: empty archive")
    archives;
  {
    n = Array.length archives;
    last = Array.map Dv_archive.last_index archives;
    dv_at =
      (fun pid index ->
        match Dv_archive.find archives.(pid) ~index with
        | Some dv -> dv
        | None -> invalid_arg "Tracking: checkpoint index out of range");
    live = (fun pid -> live_dvs.(pid));
  }

let volatile_index v pid = v.last.(pid) + 1

let dv_of v { pid; index } =
  if index < 0 || index > volatile_index v pid then
    invalid_arg "Tracking: checkpoint index out of range";
  if index <= v.last.(pid) then v.dv_at pid index else v.live pid

(* Equation 2, extended to volatile checkpoints (which precede nothing). *)
let precedes_v v a b =
  if a.pid = b.pid then a.index < b.index
  else if a.index > v.last.(a.pid) then false
  else a.index < (dv_of v b).(a.pid)

let consistent_pair_v v a b =
  (not (precedes_v v a b)) && not (precedes_v v b a)

let check_targets v targets =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun t ->
      if t.pid < 0 || t.pid >= v.n then invalid_arg "Tracking: bad target pid";
      if t.index < 0 || t.index > volatile_index v t.pid then
        invalid_arg "Tracking: bad target index";
      if Hashtbl.mem seen t.pid then
        invalid_arg "Tracking: two targets on one process";
      Hashtbl.add seen t.pid t.index)
    targets;
  seen

let verify_consistent v (global : int array) =
  let ok = ref true in
  for i = 0 to v.n - 1 do
    for j = 0 to v.n - 1 do
      if
        i <> j
        && precedes_v v { pid = i; index = global.(i) }
             { pid = j; index = global.(j) }
      then ok := false
    done
  done;
  !ok

let build v targets ~component =
  let fixed = check_targets v targets in
  if
    not
      (List.for_all
         (fun a ->
           List.for_all
             (fun b ->
               (a.pid = b.pid && a.index = b.index)
               || consistent_pair_v v a b)
             targets)
         targets)
  then None
  else begin
    let global =
      Array.init v.n (fun pid ->
          match Hashtbl.find_opt fixed pid with
          | Some index -> index
          | None -> component pid)
    in
    (* Wang's closed forms are exact on RD-trackable patterns; a failure
       here means the input was not RDT (or the DV table incomplete). *)
    if verify_consistent v global then Some global
    else
      failwith
        "Tracking: closed form produced an inconsistent global checkpoint \
         — is the execution RD-trackable?"
  end

let max_component v targets pid =
  (* last checkpoint preceded by no target; the violating set is upward
     closed in the index *)
  let rec scan gamma =
    if gamma < 0 then
      invalid_arg "Tracking: no admissible checkpoint (malformed pattern)"
    else if
      List.exists
        (fun s ->
          precedes_v v { pid = s.pid; index = s.index } { pid; index = gamma })
        targets
    then scan (gamma - 1)
    else gamma
  in
  scan (volatile_index v pid)

let min_component v targets pid =
  (* first checkpoint that precedes no target; the violating set is
     downward closed in the index *)
  let rec scan gamma =
    if gamma > volatile_index v pid then
      invalid_arg "Tracking: no admissible checkpoint (malformed pattern)"
    else if
      List.exists
        (fun s ->
          precedes_v v { pid; index = gamma } { pid = s.pid; index = s.index })
        targets
    then scan (gamma + 1)
    else gamma
  in
  scan 0

(* --- public API -------------------------------------------------------- *)

let max_consistent_containing snaps targets =
  let v = view_of_snapshots snaps in
  build v targets ~component:(max_component v targets)

let min_consistent_containing snaps targets =
  let v = view_of_snapshots snaps in
  build v targets ~component:(min_component v targets)

let consistent_pair snaps a b = consistent_pair_v (view_of_snapshots snaps) a b

let max_consistent_containing_archived ~archives ~live_dvs targets =
  let v = view_of_archives ~archives ~live_dvs in
  build v targets ~component:(max_component v targets)

let min_consistent_containing_archived ~archives ~live_dvs targets =
  let v = view_of_archives ~archives ~live_dvs in
  build v targets ~component:(min_component v targets)
