(** The deterministic simulator adapted behind the transport seam.

    A cluster is one {!Rdt_sim.Engine.t} hosting [n] node endpoints plus
    the coordinator ({!Transport.coordinator_id}); frames travel as
    simulated messages over FIFO lossless channels, so a cluster run is a
    pure function of [(n, seed)].  {!Transport.poll} pumps the engine;
    [`Idle] means the simulation has no further events — a caller still
    waiting has deadlocked. *)

type cluster

val create :
  n:int -> seed:int -> ?net:Rdt_sim.Network.config -> unit -> cluster
(** [?net] defaults to the engine's default delays with [fifo = true] and
    no loss.
    @raise Invalid_argument if [net] is lossy or non-FIFO — the transport
    models a connection-oriented medium. *)

val transport : cluster -> me:int -> Transport.t
(** The endpoint of node [me] (or of the coordinator for
    [me = Transport.coordinator_id]).  Call once per endpoint. *)

val kill : cluster -> pid:int -> unit
(** Simulate a process kill: the endpoint's pending and future events are
    discarded until a new handler is installed ({!Transport.set_handler}
    by the respawned node). *)
