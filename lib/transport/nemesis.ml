(* Deterministic fault injection at the transport seam (DESIGN.md §15).

   The decorator intercepts [send]: each outbound frame is classified
   into (class, content key) and the fault decision is a pure keyed hash
   of (seed, link, class, key, transmission attempt) — splitmix64's
   finalizer over the tuple, no generator state, no wall clock.  Replaying
   the same config against the same frame flow reproduces the same
   schedule bit for bit, which is what makes live campaign failures
   replayable from their seed.

   Termination discipline: a frame the protocol cannot retransmit (App —
   staged delivery sends it exactly once) is never dropped, only delayed;
   a frame the protocol does retransmit (all control traffic, covered by
   the coordinator's bounded retry and the node's Hello timer) may be
   dropped, but partitions suppress only the first [pt_attempts]
   transmissions per key and stochastic drops only the first, so retries
   always punch through. *)

module Wire = Wire
module Prng = Rdt_sim.Prng
module Crc32 = Rdt_store.Crc32

type partition = {
  pt_from : int;
  pt_to : int;
  pt_start : int;
  pt_len : int;
  pt_attempts : int;
}

type config = {
  seed : int;
  drop_p : float;
  delay_p : float;
  max_delay : float;
  dup_p : float;
  corrupt_p : float;
  partitions : partition list;
}

let default =
  {
    seed = 0;
    drop_p = 0.0;
    delay_p = 0.0;
    max_delay = 0.05;
    dup_p = 0.0;
    corrupt_p = 0.0;
    partitions = [];
  }

(* --- config generation + serialization --------------------------------- *)

let gen ~seed ~n =
  let g = Prng.create ~seed:(seed lxor 0x6d736e31) in
  let maybe ~p ~lo ~hi =
    (* draw both so the stream shape is independent of the outcomes *)
    let on = Prng.bernoulli g ~p in
    let v = Prng.uniform_in g ~lo ~hi in
    if on then v else 0.0
  in
  let drop_p = maybe ~p:0.6 ~lo:0.02 ~hi:0.12 in
  let delay_p = maybe ~p:0.6 ~lo:0.03 ~hi:0.15 in
  let max_delay = Prng.uniform_in g ~lo:0.02 ~hi:0.12 in
  let dup_p = maybe ~p:0.5 ~lo:0.02 ~hi:0.10 in
  let corrupt_p = maybe ~p:0.4 ~lo:0.02 ~hi:0.08 in
  let count = Prng.int g 3 in
  let rec gen_parts k acc =
    if k = 0 then List.rev acc
    else begin
      let pt_from = Prng.int g (n + 1) - 1 in
      let rec other () =
        let v = Prng.int g (n + 1) - 1 in
        if v = pt_from then other () else v
      in
      let p =
        {
          pt_from;
          pt_to = other ();
          pt_start = Prng.int g 24;
          pt_len = 1 + Prng.int g 6;
          pt_attempts = 1 + Prng.int g 3;
        }
      in
      gen_parts (k - 1) (p :: acc)
    end
  in
  { seed; drop_p; delay_p; max_delay; dup_p; corrupt_p;
    partitions = gen_parts count [] }

let part_to_string p =
  Printf.sprintf "%d>%d@%d+%dx%d" p.pt_from p.pt_to p.pt_start p.pt_len
    p.pt_attempts

let to_string cfg =
  let parts =
    match cfg.partitions with
    | [] -> "-"
    | ps -> String.concat "," (List.map part_to_string ps)
  in
  (* %h renders the exact float bits, so of_string roundtrips losslessly *)
  Printf.sprintf "nms1 seed=0x%x drop=%h delay=%h maxd=%h dup=%h corrupt=%h part=%s"
    cfg.seed cfg.drop_p cfg.delay_p cfg.max_delay cfg.dup_p cfg.corrupt_p parts

let of_string line =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  match String.split_on_char ' ' (String.trim line) with
  | "nms1" :: fields -> begin
    let parse_part s =
      match Scanf.sscanf s "%d>%d@%d+%dx%d%!" (fun a b c d e -> (a, b, c, d, e)) with
      | pt_from, pt_to, pt_start, pt_len, pt_attempts ->
        if pt_len <= 0 || pt_attempts <= 0 || pt_start < 0 then
          Error (Printf.sprintf "nemesis: bad partition window %S" s)
        else Ok { pt_from; pt_to; pt_start; pt_len; pt_attempts }
      | exception (Scanf.Scan_failure _ | Failure _ | End_of_file) ->
        Error (Printf.sprintf "nemesis: bad partition window %S" s)
    in
    let rec go cfg = function
      | [] -> Ok cfg
      | "" :: rest -> go cfg rest
      | field :: rest -> begin
        match String.index_opt field '=' with
        | None -> fail "nemesis: bad field %S" field
        | Some i -> begin
          let k = String.sub field 0 i in
          let v = String.sub field (i + 1) (String.length field - i - 1) in
          let num next =
            match float_of_string_opt v with
            | Some f when f >= 0.0 -> go (next f) rest
            | _ -> fail "nemesis: bad number %S for %s" v k
          in
          match k with
          | "seed" -> begin
            match int_of_string_opt v with
            | Some seed -> go { cfg with seed } rest
            | None -> fail "nemesis: bad seed %S" v
          end
          | "drop" -> num (fun f -> { cfg with drop_p = f })
          | "delay" -> num (fun f -> { cfg with delay_p = f })
          | "maxd" -> num (fun f -> { cfg with max_delay = f })
          | "dup" -> num (fun f -> { cfg with dup_p = f })
          | "corrupt" -> num (fun f -> { cfg with corrupt_p = f })
          | "part" ->
            if String.equal v "-" then go { cfg with partitions = [] } rest
            else begin
              let rec parts acc = function
                | [] -> Ok (List.rev acc)
                | s :: more -> begin
                  match parse_part s with
                  | Ok p -> parts (p :: acc) more
                  | Error e -> Error e
                end
              in
              match parts [] (String.split_on_char ',' v) with
              | Ok partitions -> go { cfg with partitions } rest
              | Error e -> Error e
            end
          | _ -> fail "nemesis: unknown field %S" k
        end
      end
    in
    go default fields
  end
  | _ -> fail "nemesis: expected a \"nms1 ...\" line"

let pp ppf cfg =
  Format.fprintf ppf
    "seed=0x%x drop=%.3f delay=%.3f(max %.3fs) dup=%.3f corrupt=%.3f parts=[%s]"
    cfg.seed cfg.drop_p cfg.delay_p cfg.max_delay cfg.dup_p cfg.corrupt_p
    (String.concat "," (List.map part_to_string cfg.partitions))

(* --- corruption --------------------------------------------------------- *)

type style = Flip_payload | Forge_tag | Trailing

let raw_frame payload =
  let len = String.length payload in
  let out = Bytes.create (Wire.header_bytes + len) in
  Bytes.set_int32_be out 0 (Int32.of_int len);
  Bytes.set_int32_be out 4 (Crc32.string payload);
  Bytes.blit_string payload 0 out Wire.header_bytes len;
  out

let flip_payload encoded =
  let b = Bytes.copy encoded in
  let pos = Wire.header_bytes + ((Bytes.length b - Wire.header_bytes) / 2) in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x20));
  b

let garble style encoded =
  match style with
  | Flip_payload -> flip_payload encoded
  | Forge_tag -> raw_frame "\xee"
  | Trailing ->
    let plen = Bytes.length encoded - Wire.header_bytes in
    if plen + 1 > Wire.max_frame_bytes then flip_payload encoded
    else raw_frame (Bytes.sub_string encoded Wire.header_bytes plen ^ "\x00")

(* --- the pure decision core --------------------------------------------- *)

type fault = Drop | Delay of float | Duplicate | Corrupt of style

let cls_app = 0
let cls_cmd = 1
let cls_reply = 2
let cls_config = 3
let cls_hello = 4
let cls_ready = 5

let cls_name = function
  | 0 -> "app"
  | 1 -> "cmd"
  | 2 -> "reply"
  | 3 -> "config"
  | 4 -> "hello"
  | 5 -> "ready"
  | _ -> "?"

(* how long a partition holds an App frame (they cannot be dropped) *)
let partition_hold = 0.1

let h64 cfg ~from_ ~to_ ~cls ~key =
  let link = from_ + 2 + ((to_ + 2) * 0x10001) + (cls * 0x4000000) in
  Prng.mix
    (Int64.logxor
       (Int64.of_int cfg.seed)
       (Prng.mix
          (Int64.logxor (Int64.of_int link) (Prng.mix (Int64.of_int key)))))

let u01_of h =
  Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.0

let partition_for cfg ~from_ ~to_ ~ord =
  List.find_opt
    (fun p ->
      p.pt_from = from_ && p.pt_to = to_ && ord >= p.pt_start
      && ord < p.pt_start + p.pt_len)
    cfg.partitions

let decide cfg ~from_ ~to_ ~cls ~key ~ord ~attempt =
  let h = h64 cfg ~from_ ~to_ ~cls ~key in
  let delay_of () =
    let u = u01_of (Prng.mix (Int64.logxor h 0x9E3779B97F4A7C15L)) in
    Float.max 0.005 (u *. cfg.max_delay)
  in
  match partition_for cfg ~from_ ~to_ ~ord with
  | Some p when attempt < p.pt_attempts ->
    Some (if cls = cls_app then Delay partition_hold else Drop)
  | _ ->
    if attempt > 0 then None (* retransmissions of a faulted frame pass *)
    else begin
      let u = u01_of h in
      let d1 = cfg.drop_p in
      let d2 = d1 +. cfg.delay_p in
      let d3 = d2 +. cfg.dup_p in
      let d4 = d3 +. cfg.corrupt_p in
      if u < d1 then
        (* App frames are sent exactly once and cannot be re-requested:
           losing one would wedge staged delivery, so "drop" degrades to
           a delay for them *)
        Some (if cls = cls_app then Delay (delay_of ()) else Drop)
      else if u < d2 then Some (Delay (delay_of ()))
      else if u < d3 then Some Duplicate
      else if u < d4 then begin
        let s = Int64.to_int (Prng.mix (Int64.logxor h 0x5851F42D4C957F2DL)) in
        Some
          (Corrupt
             (match (s land max_int) mod 3 with
             | 0 -> Flip_payload
             | 1 -> Forge_tag
             | _ -> Trailing))
      end
      else None
    end

(* --- the decorator ------------------------------------------------------ *)

type stats = {
  mutable st_passed : int;
  mutable st_dropped : int;
  mutable st_delayed : int;
  mutable st_duplicated : int;
  mutable st_corrupted : int;
}

type kstate = { ks_ord : int; mutable ks_attempts : int }

type link = {
  lk_keys : (int, kstate) Hashtbl.t;  (* (key lsl 3) lor cls -> state *)
  mutable lk_next_ord : int;
  mutable lk_ready : int;  (* Ready frames carry no distinguishing field *)
}

type held = { hd_dst : int; hd_frame : Wire.frame }

type t = {
  cfg : config;
  inner : Transport.t;
  stats : stats;
  links : (int, link) Hashtbl.t;  (* dst -> link state *)
  held : (int, held) Hashtbl.t;  (* timer id -> frame awaiting release *)
  mutable next_timer : int;
  mutable owner : (Transport.event -> unit) option;
  mutable log : string list;  (* newest first *)
}

let timer_base = 0x40000000

let stats t = t.stats
let schedule t = List.rev t.log
let flush_held t = Hashtbl.reset t.held

let link_of t dst =
  match Hashtbl.find_opt t.links dst with
  | Some lk -> lk
  | None ->
    let lk = { lk_keys = Hashtbl.create 32; lk_next_ord = 0; lk_ready = 0 } in
    Hashtbl.replace t.links dst lk;
    lk

let fault_name = function
  | None -> "pass"
  | Some Drop -> "drop"
  | Some (Delay d) -> Printf.sprintf "delay=%.3f" d
  | Some Duplicate -> "dup"
  | Some (Corrupt Flip_payload) -> "corrupt:flip"
  | Some (Corrupt Forge_tag) -> "corrupt:tag"
  | Some (Corrupt Trailing) -> "corrupt:trailing"

let send t ~dst frame =
  match frame with
  | Wire.Ident _ ->
    (* the link-mapping preamble is the one frame faults may not touch *)
    Transport.send t.inner ~dst frame
  | _ ->
    let lk = link_of t dst in
    let cls, key =
      match frame with
      | Wire.App { msg_id; src; _ } -> (cls_app, (msg_id lsl 8) lor (src land 0xff))
      | Wire.Cmd { seq; _ } -> (cls_cmd, seq)
      | Wire.Reply { seq; _ } -> (cls_reply, seq)
      | Wire.Config { epoch; _ } -> (cls_config, epoch)
      | Wire.Hello { port; _ } -> (cls_hello, port)
      | Wire.Ready _ ->
        let k = lk.lk_ready in
        lk.lk_ready <- k + 1;
        (cls_ready, k)
      | Wire.Ident _ -> assert false
    in
    let ck = (key lsl 3) lor cls in
    let ks =
      match Hashtbl.find_opt lk.lk_keys ck with
      | Some ks -> ks
      | None ->
        let ks = { ks_ord = lk.lk_next_ord; ks_attempts = 0 } in
        lk.lk_next_ord <- lk.lk_next_ord + 1;
        Hashtbl.replace lk.lk_keys ck ks;
        ks
    in
    let attempt = ks.ks_attempts in
    ks.ks_attempts <- attempt + 1;
    let from_ = Transport.me t.inner in
    let fault =
      decide t.cfg ~from_ ~to_:dst ~cls ~key ~ord:ks.ks_ord ~attempt
    in
    t.log <-
      Printf.sprintf "%d>%d %s key=%d ord=%d att=%d %s" from_ dst
        (cls_name cls) key ks.ks_ord attempt (fault_name fault)
      :: t.log;
    (match fault with
    | None ->
      t.stats.st_passed <- t.stats.st_passed + 1;
      Transport.send t.inner ~dst frame
    | Some Drop -> t.stats.st_dropped <- t.stats.st_dropped + 1
    | Some (Delay d) ->
      t.stats.st_delayed <- t.stats.st_delayed + 1;
      let id = timer_base + t.next_timer in
      t.next_timer <- t.next_timer + 1;
      Hashtbl.replace t.held id { hd_dst = dst; hd_frame = frame };
      Transport.set_timer t.inner ~id ~after:d
    | Some Duplicate ->
      t.stats.st_duplicated <- t.stats.st_duplicated + 1;
      Transport.send t.inner ~dst frame;
      Transport.send t.inner ~dst frame
    | Some (Corrupt style) ->
      t.stats.st_corrupted <- t.stats.st_corrupted + 1;
      (* a garbled copy precedes the intact frame: the receiver must
         report a decode error and resynchronize, and the run's
         semantics must be unchanged *)
      Transport.send_raw t.inner ~dst (garble style (Wire.encode frame));
      Transport.send t.inner ~dst frame)

let intercept t ev =
  match ev with
  | Transport.Timer { id } when id >= timer_base -> begin
    match Hashtbl.find_opt t.held id with
    | Some h ->
      Hashtbl.remove t.held id;
      Transport.send t.inner ~dst:h.hd_dst h.hd_frame
    | None -> ()  (* flushed: the endpoint was killed while this hung *)
  end
  | ev -> ( match t.owner with Some f -> f ev | None -> ())

let wrap cfg inner =
  let t =
    {
      cfg;
      inner;
      stats =
        { st_passed = 0; st_dropped = 0; st_delayed = 0; st_duplicated = 0;
          st_corrupted = 0 };
      links = Hashtbl.create 8;
      held = Hashtbl.create 8;
      next_timer = 0;
      owner = None;
      log = [];
    }
  in
  let tr =
    {
      inner with
      Transport.send = (fun ~dst frame -> send t ~dst frame);
      set_handler =
        (fun f ->
          t.owner <- Some f;
          Transport.set_handler inner (intercept t));
    }
  in
  (t, tr)
