(** Transport abstraction for the live runtime (DESIGN.md §14).

    One endpoint per process plus one for the coordinator
    ({!coordinator_id}).  Events arrive through a handler installed with
    {!set_handler}; {!poll} drives the backend (real I/O for TCP, engine
    steps for the simulator) until it delivered at least one event, timed
    out, or ran out of work. *)

type event =
  | Frame of { src : int; frame : Wire.frame }
  | Garbled of { peer : int option; error : Wire.error }
      (** bytes on the link failed to decode ([peer] unknown when the
          connection had not yet identified itself); the receiver
          resynchronized at the next frame when the boundary was intact
          and dropped the link otherwise.  Informational: owners ignore
          it, tests assert on it.  Never raised by the simulator backend
          (frames travel unencoded there). *)
  | Peer_down of { peer : int }
      (** the link to [peer] died (socket EOF / reset); never raised by
          the simulator backend *)
  | Timer of { id : int }

type poll_result = [ `Progress | `Timeout | `Idle ]

type t = {
  me : int;
  now : unit -> float;
      (** wall clock on TCP, virtual engine clock in the simulator *)
  send : dst:int -> Wire.frame -> unit;
      (** asynchronous; TCP queues frames for peers whose connection is
          not yet established and flushes on identification *)
  send_raw : dst:int -> Bytes.t -> unit;
      (** write raw pre-framed bytes to an established link, bypassing
          {!Wire.encode} — the {!Nemesis} corruption hatch.  Dropped
          silently when no link to [dst] exists; a no-op in the
          simulator backend. *)
  connect : dst:int -> port:int -> unit;
      (** establish a peer link (TCP dial; no-op in the simulator) *)
  listen_port : int;  (** 0 in the simulator *)
  set_timer : id:int -> after:float -> unit;
  set_handler : (event -> unit) -> unit;
      (** events delivered before installation are buffered and replayed *)
  poll : timeout:float -> poll_result;
      (** [`Idle] means the backend can make no further progress without
          external input — for the simulator, the event queue drained, so
          waiting longer is a deadlock *)
  close : unit -> unit;
}

val coordinator_id : int
(** [-1]; node ids are [0..n-1]. *)

val me : t -> int
val now : t -> float
val send : t -> dst:int -> Wire.frame -> unit
val send_raw : t -> dst:int -> Bytes.t -> unit
val connect : t -> dst:int -> port:int -> unit
val listen_port : t -> int
val set_timer : t -> id:int -> after:float -> unit
val set_handler : t -> (event -> unit) -> unit
val poll : t -> timeout:float -> poll_result
val close : t -> unit

(** Handler buffering shared by backends. *)
module Mailbox : sig
  type nonrec t

  val create : unit -> t
  val deliver : t -> event -> unit
  val set : t -> (event -> unit) -> unit

  val drop : t -> unit
  (** Enter the dead state: discard buffered and future events until the
      next {!set} (a respawned process installing its handler). *)

  val delivered : t -> int
  (** Events delivered or buffered so far; {!poll} implementations use
      this to detect progress. *)
end
