(** Wire format for the live runtime (DESIGN.md §14).

    Every frame is [u32 length | u32 crc32(payload) | payload], big-endian,
    with the CRC (the store's {!Rdt_store.Crc32}) covering the payload.
    Payloads are a tag byte plus fixed-width big-endian fields (ints and
    float bits as i64, counted arrays/strings).  The same frame values
    travel unencoded through the simulator backend, so the two backends
    exchange identical protocol states by construction; the encoding is
    exercised by the TCP backend and pinned by test/test_wire.ml. *)

val header_bytes : int
val max_frame_bytes : int

val max_count : int
(** Upper bound accepted for any embedded array/list/string length. *)

type error =
  | Oversized of { len : int; max : int }
      (** length prefix exceeds {!max_frame_bytes} *)
  | Bad_length of { len : int }  (** length prefix is negative garbage *)
  | Crc_mismatch of { expected : int32; actual : int32 }
  | Truncated of { wanted : int; have : int }
  | Bad_tag of { tag : int }
  | Malformed of string

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

type knowledge = [ `Global | `Causal ]

type state = {
  st_dv : int array;  (** live dependency vector *)
  st_uc : int option array;  (** RDT-LGC UC as checkpoint indices *)
  st_retained : int array;  (** retained stable indices, ascending *)
  st_app : int;  (** volatile application state *)
}
(** The per-node protocol state the checker compares against the simulator
    replay.  Deliberately excludes counters that do not survive a process
    respawn (basic/forced counts, store statistics): the determinism
    contract covers protocol state, not process-lifetime bookkeeping. *)

type tev =
  | T_ckpt of { index : int }
  | T_send of { msg_id : int; dst : int }
  | T_recv of { msg_id : int; src : int }
      (** One trace event of the reporting node, mirrored into the
          coordinator's transcript. *)

type entry = Rdt_storage.Stable_store.entry

type cmd =
  | C_checkpoint
  | C_send of { dst : int }
  | C_deliver of { src : int; msg_id : int }
  | C_drop of { src : int; msg_id : int }
  | C_flush of { epoch : int }
      (** discard staged frames; [epoch] is the new message epoch *)
  | C_snapshot  (** recovery manager state query *)
  | C_rollback of { to_index : int; li : int array option }
  | C_release of { li : int array }
  | C_state
  | C_shutdown

type reply =
  | R_done of { events : tev list; state : state }
  | R_sent of { msg_id : int; events : tev list; state : state }
  | R_snapshot of { entries : entry list; live_dv : int array; last : int }
  | R_state of { state : state }
  | R_error of { message : string }

type frame =
  | App of { epoch : int; msg_id : int; src : int; dv : int array; index : int }
      (** an application message with its piggybacked control data
          (dependency vector + protocol control index) *)
  | Ident of { pid : int }
      (** transport-level preamble identifying an outbound connection;
          consumed by the receiving transport, never surfaced *)
  | Hello of { pid : int; port : int; recovering : bool }
      (** node registration with the coordinator *)
  | Config of {
      n : int;
      protocol : string;
      knowledge : knowledge;
      ckpt_bytes : int;
      epoch : int;
      ports : int array;
      history : tev list;
          (** the node's own pre-crash trace events, for transcript and
              message-id restoration; empty on a fresh start *)
      sends_ever : int;
          (** sends the node ever performed — message ids are monotone and
              survive rollbacks, so the counter must be restored past the
              truncated history *)
      last_seq : int;
          (** highest command seq the coordinator has completed against
              this node: restores the node's at-most-once dedup watermark
              across a respawn, so a delayed retransmission of an old
              command can never re-execute (0 on a fresh start) *)
    }
  | Ready of { pid : int }
  | Cmd of { seq : int; now : float; cmd : cmd }
      (** [now] is the coordinator's virtual clock, mirroring the
          simulator's tick, so stored [taken_at] stamps are identical *)
  | Reply of { seq : int; reply : reply }

val encode : frame -> Bytes.t
(** Header plus payload, ready to write.
    @raise Invalid_argument if the payload exceeds {!max_frame_bytes}. *)

val encode_payload : frame -> string
(** Payload bytes only (golden tests). *)

type header = { h_len : int; h_crc : int32 }

val decode_header : Bytes.t -> pos:int -> len:int -> (header, error) result
(** Validate the 8-byte frame header found at [pos] given [len] available
    bytes.  [Truncated] here means "read more"; [Bad_length]/[Oversized]
    mean the stream is corrupt and the connection must be dropped. *)

val decode_body : header -> Bytes.t -> pos:int -> len:int -> (frame, error) result
(** Check the CRC over the [h_len] payload bytes at [pos] and parse the
    frame.  Rejects trailing garbage inside the payload. *)

val decode : Bytes.t -> (frame * int, error) result
(** One-shot: parse a complete frame from the start of [buf]; returns the
    frame and the number of bytes consumed. *)
