module Crc32 = Rdt_store.Crc32

(* Framing: every frame on the wire is

     u32 length | u32 crc32(payload) | payload (length bytes)

   big-endian, with [length] covering the payload only.  The payload is a
   tag byte followed by fixed-width big-endian fields: ints are i64
   (two's complement), floats are IEEE-754 bits as i64, arrays/lists are
   an i64 count followed by the elements, strings an i64 length followed
   by the bytes.  The layout is pinned by the golden-bytes test in
   test/test_wire.ml — change it only with a version bump. *)

let header_bytes = 8
let max_frame_bytes = 1 lsl 20

(* a DV has one slot per process; nothing in a frame is longer than a
   recovery history, and even that is bounded by the scenario size *)
let max_count = 1 lsl 16

type error =
  | Oversized of { len : int; max : int }
  | Bad_length of { len : int }
  | Crc_mismatch of { expected : int32; actual : int32 }
  | Truncated of { wanted : int; have : int }
  | Bad_tag of { tag : int }
  | Malformed of string

let pp_error ppf = function
  | Oversized { len; max } ->
    Format.fprintf ppf "frame length %d exceeds limit %d" len max
  | Bad_length { len } -> Format.fprintf ppf "garbage frame length %d" len
  | Crc_mismatch { expected; actual } ->
    Format.fprintf ppf "crc mismatch: header %08lx, payload %08lx" expected
      actual
  | Truncated { wanted; have } ->
    Format.fprintf ppf "truncated frame: wanted %d bytes, have %d" wanted have
  | Bad_tag { tag } -> Format.fprintf ppf "unknown frame tag 0x%02x" tag
  | Malformed msg -> Format.fprintf ppf "malformed frame: %s" msg

let error_to_string e = Format.asprintf "%a" pp_error e

type knowledge = [ `Global | `Causal ]

type state = {
  st_dv : int array;  (** live dependency vector *)
  st_uc : int option array;  (** RDT-LGC UC as checkpoint indices *)
  st_retained : int array;  (** retained stable indices, ascending *)
  st_app : int;  (** volatile application state *)
}

type tev =
  | T_ckpt of { index : int }
  | T_send of { msg_id : int; dst : int }
  | T_recv of { msg_id : int; src : int }

type entry = Rdt_storage.Stable_store.entry

type cmd =
  | C_checkpoint
  | C_send of { dst : int }
  | C_deliver of { src : int; msg_id : int }
  | C_drop of { src : int; msg_id : int }
  | C_flush of { epoch : int }
  | C_snapshot
  | C_rollback of { to_index : int; li : int array option }
  | C_release of { li : int array }
  | C_state
  | C_shutdown

type reply =
  | R_done of { events : tev list; state : state }
  | R_sent of { msg_id : int; events : tev list; state : state }
  | R_snapshot of { entries : entry list; live_dv : int array; last : int }
  | R_state of { state : state }
  | R_error of { message : string }

type frame =
  | App of { epoch : int; msg_id : int; src : int; dv : int array; index : int }
  | Ident of { pid : int }
  | Hello of { pid : int; port : int; recovering : bool }
  | Config of {
      n : int;
      protocol : string;
      knowledge : knowledge;
      ckpt_bytes : int;
      epoch : int;
      ports : int array;
      history : tev list;
      sends_ever : int;
      last_seq : int;
    }
  | Ready of { pid : int }
  | Cmd of { seq : int; now : float; cmd : cmd }
  | Reply of { seq : int; reply : reply }

(* --- encoding --------------------------------------------------------- *)

let put_u8 b v = Buffer.add_uint8 b (v land 0xff)
let put_i64 b v = Buffer.add_int64_be b (Int64.of_int v)
let put_f64 b v = Buffer.add_int64_be b (Int64.bits_of_float v)

let put_string b s =
  put_i64 b (String.length s);
  Buffer.add_string b s

let put_int_array b a =
  put_i64 b (Array.length a);
  Array.iter (fun v -> put_i64 b v) a

(* UC entries are checkpoint indices (>= 0), so -1 encodes Null *)
let put_opt_array b a =
  put_i64 b (Array.length a);
  Array.iter (fun v -> put_i64 b (match v with Some i -> i | None -> -1)) a

let put_tev b = function
  | T_ckpt { index } ->
    put_u8 b 0;
    put_i64 b index
  | T_send { msg_id; dst } ->
    put_u8 b 1;
    put_i64 b msg_id;
    put_i64 b dst
  | T_recv { msg_id; src } ->
    put_u8 b 2;
    put_i64 b msg_id;
    put_i64 b src

let put_tevs b evs =
  put_i64 b (List.length evs);
  List.iter (put_tev b) evs

let put_state b st =
  put_int_array b st.st_dv;
  put_opt_array b st.st_uc;
  put_int_array b st.st_retained;
  put_i64 b st.st_app

let put_entry b (e : entry) =
  put_i64 b e.index;
  put_int_array b e.dv;
  put_f64 b e.taken_at;
  put_i64 b e.size_bytes;
  put_i64 b e.payload

let put_cmd b = function
  | C_checkpoint -> put_u8 b 0
  | C_send { dst } ->
    put_u8 b 1;
    put_i64 b dst
  | C_deliver { src; msg_id } ->
    put_u8 b 2;
    put_i64 b src;
    put_i64 b msg_id
  | C_drop { src; msg_id } ->
    put_u8 b 3;
    put_i64 b src;
    put_i64 b msg_id
  | C_flush { epoch } ->
    put_u8 b 4;
    put_i64 b epoch
  | C_snapshot -> put_u8 b 5
  | C_rollback { to_index; li } ->
    put_u8 b 6;
    put_i64 b to_index;
    (match li with
    | None -> put_u8 b 0
    | Some li ->
      put_u8 b 1;
      put_int_array b li)
  | C_release { li } ->
    put_u8 b 7;
    put_int_array b li
  | C_state -> put_u8 b 8
  | C_shutdown -> put_u8 b 9

let put_reply b = function
  | R_done { events; state } ->
    put_u8 b 0;
    put_tevs b events;
    put_state b state
  | R_sent { msg_id; events; state } ->
    put_u8 b 1;
    put_i64 b msg_id;
    put_tevs b events;
    put_state b state
  | R_snapshot { entries; live_dv; last } ->
    put_u8 b 2;
    put_i64 b (List.length entries);
    List.iter (put_entry b) entries;
    put_int_array b live_dv;
    put_i64 b last
  | R_state { state } ->
    put_u8 b 3;
    put_state b state
  | R_error { message } ->
    put_u8 b 4;
    put_string b message

let put_frame b = function
  | App { epoch; msg_id; src; dv; index } ->
    put_u8 b 0;
    put_i64 b epoch;
    put_i64 b msg_id;
    put_i64 b src;
    put_int_array b dv;
    put_i64 b index
  | Ident { pid } ->
    put_u8 b 1;
    put_i64 b pid
  | Hello { pid; port; recovering } ->
    put_u8 b 2;
    put_i64 b pid;
    put_i64 b port;
    put_u8 b (if recovering then 1 else 0)
  | Config { n; protocol; knowledge; ckpt_bytes; epoch; ports; history;
             sends_ever; last_seq } ->
    put_u8 b 3;
    put_i64 b n;
    put_string b protocol;
    put_u8 b (match knowledge with `Global -> 0 | `Causal -> 1);
    put_i64 b ckpt_bytes;
    put_i64 b epoch;
    put_int_array b ports;
    put_tevs b history;
    put_i64 b sends_ever;
    put_i64 b last_seq
  | Ready { pid } ->
    put_u8 b 4;
    put_i64 b pid
  | Cmd { seq; now; cmd } ->
    put_u8 b 5;
    put_i64 b seq;
    put_f64 b now;
    put_cmd b cmd
  | Reply { seq; reply } ->
    put_u8 b 6;
    put_i64 b seq;
    put_reply b reply

let encode_payload frame =
  let b = Buffer.create 128 in
  put_frame b frame;
  Buffer.contents b

let encode frame =
  let payload = encode_payload frame in
  let len = String.length payload in
  if len > max_frame_bytes then
    invalid_arg (Printf.sprintf "Wire.encode: frame of %d bytes" len);
  let out = Bytes.create (header_bytes + len) in
  Bytes.set_int32_be out 0 (Int32.of_int len);
  Bytes.set_int32_be out 4 (Crc32.string payload);
  Bytes.blit_string payload 0 out header_bytes len;
  out

(* --- decoding --------------------------------------------------------- *)

exception Bad of error

type cursor = { buf : string; mutable pos : int; stop : int }

let need c k =
  if c.pos + k > c.stop then
    raise (Bad (Truncated { wanted = c.pos + k; have = c.stop }))

let get_u8 c =
  need c 1;
  let v = Char.code c.buf.[c.pos] in
  c.pos <- c.pos + 1;
  v

let get_i64 c =
  need c 8;
  let v = Int64.to_int (String.get_int64_be c.buf c.pos) in
  c.pos <- c.pos + 8;
  v

let get_f64 c =
  need c 8;
  let v = Int64.float_of_bits (String.get_int64_be c.buf c.pos) in
  c.pos <- c.pos + 8;
  v

let get_count c what =
  let v = get_i64 c in
  if v < 0 || v > max_count then
    raise (Bad (Malformed (Printf.sprintf "%s count %d out of range" what v)));
  v

let get_string c =
  let len = get_count c "string" in
  need c len;
  let s = String.sub c.buf c.pos len in
  c.pos <- c.pos + len;
  s

let get_int_array c =
  let len = get_count c "array" in
  Array.init len (fun _ -> get_i64 c)

let get_opt_array c =
  let len = get_count c "array" in
  Array.init len (fun _ ->
      let v = get_i64 c in
      if v < 0 then None else Some v)

let get_tev c =
  match get_u8 c with
  | 0 -> T_ckpt { index = get_i64 c }
  | 1 ->
    let msg_id = get_i64 c in
    T_send { msg_id; dst = get_i64 c }
  | 2 ->
    let msg_id = get_i64 c in
    T_recv { msg_id; src = get_i64 c }
  | t -> raise (Bad (Malformed (Printf.sprintf "trace-event tag %d" t)))

let get_tevs c =
  let len = get_count c "events" in
  List.init len (fun _ -> get_tev c)

let get_state c =
  let st_dv = get_int_array c in
  let st_uc = get_opt_array c in
  let st_retained = get_int_array c in
  { st_dv; st_uc; st_retained; st_app = get_i64 c }

let get_entry c : entry =
  let index = get_i64 c in
  let dv = get_int_array c in
  let taken_at = get_f64 c in
  let size_bytes = get_i64 c in
  { index; dv; taken_at; size_bytes; payload = get_i64 c }

let get_cmd c =
  match get_u8 c with
  | 0 -> C_checkpoint
  | 1 -> C_send { dst = get_i64 c }
  | 2 ->
    let src = get_i64 c in
    C_deliver { src; msg_id = get_i64 c }
  | 3 ->
    let src = get_i64 c in
    C_drop { src; msg_id = get_i64 c }
  | 4 -> C_flush { epoch = get_i64 c }
  | 5 -> C_snapshot
  | 6 ->
    let to_index = get_i64 c in
    let li =
      match get_u8 c with
      | 0 -> None
      | 1 -> Some (get_int_array c)
      | t -> raise (Bad (Malformed (Printf.sprintf "li presence byte %d" t)))
    in
    C_rollback { to_index; li }
  | 7 -> C_release { li = get_int_array c }
  | 8 -> C_state
  | 9 -> C_shutdown
  | t -> raise (Bad (Malformed (Printf.sprintf "command tag %d" t)))

let get_reply c =
  match get_u8 c with
  | 0 ->
    let events = get_tevs c in
    R_done { events; state = get_state c }
  | 1 ->
    let msg_id = get_i64 c in
    let events = get_tevs c in
    R_sent { msg_id; events; state = get_state c }
  | 2 ->
    let count = get_count c "entries" in
    let entries = List.init count (fun _ -> get_entry c) in
    let live_dv = get_int_array c in
    R_snapshot { entries; live_dv; last = get_i64 c }
  | 3 -> R_state { state = get_state c }
  | 4 -> R_error { message = get_string c }
  | t -> raise (Bad (Malformed (Printf.sprintf "reply tag %d" t)))

let get_frame c =
  match get_u8 c with
  | 0 ->
    let epoch = get_i64 c in
    let msg_id = get_i64 c in
    let src = get_i64 c in
    let dv = get_int_array c in
    App { epoch; msg_id; src; dv; index = get_i64 c }
  | 1 -> Ident { pid = get_i64 c }
  | 2 ->
    let pid = get_i64 c in
    let port = get_i64 c in
    Hello { pid; port; recovering = get_u8 c <> 0 }
  | 3 ->
    let n = get_i64 c in
    let protocol = get_string c in
    let knowledge =
      match get_u8 c with
      | 0 -> `Global
      | 1 -> `Causal
      | t -> raise (Bad (Malformed (Printf.sprintf "knowledge byte %d" t)))
    in
    let ckpt_bytes = get_i64 c in
    let epoch = get_i64 c in
    let ports = get_int_array c in
    let history = get_tevs c in
    let sends_ever = get_i64 c in
    Config
      { n; protocol; knowledge; ckpt_bytes; epoch; ports; history;
        sends_ever; last_seq = get_i64 c }
  | 4 -> Ready { pid = get_i64 c }
  | 5 ->
    let seq = get_i64 c in
    let now = get_f64 c in
    Cmd { seq; now; cmd = get_cmd c }
  | 6 ->
    let seq = get_i64 c in
    Reply { seq; reply = get_reply c }
  | tag -> raise (Bad (Bad_tag { tag }))

type header = { h_len : int; h_crc : int32 }

let decode_header buf ~pos ~len =
  if len < header_bytes then Error (Truncated { wanted = header_bytes; have = len })
  else begin
    let raw = Int32.to_int (Bytes.get_int32_be buf pos) in
    (* a negative u32 read as int32 surfaces as < 0: garbage, not merely big *)
    if raw < 0 then Error (Bad_length { len = raw })
    else if raw > max_frame_bytes then
      Error (Oversized { len = raw; max = max_frame_bytes })
    else Ok { h_len = raw; h_crc = Bytes.get_int32_be buf (pos + 4) }
  end

let decode_body header buf ~pos ~len =
  if len < header.h_len then
    Error (Truncated { wanted = header.h_len; have = len })
  else begin
    let actual = Crc32.bytes buf ~pos ~len:header.h_len in
    if not (Int32.equal actual header.h_crc) then
      Error (Crc_mismatch { expected = header.h_crc; actual })
    else begin
      let c =
        { buf = Bytes.sub_string buf pos header.h_len; pos = 0;
          stop = header.h_len }
      in
      match get_frame c with
      | frame ->
        if c.pos <> c.stop then
          Error
            (Malformed
               (Printf.sprintf "%d trailing bytes after frame" (c.stop - c.pos)))
        else Ok frame
      | exception Bad e -> Error e
    end
  end

let decode buf =
  let len = Bytes.length buf in
  match decode_header buf ~pos:0 ~len with
  | Error e -> Error e
  | Ok h -> begin
    match decode_body h buf ~pos:header_bytes ~len:(len - header_bytes) with
    | Error e -> Error e
    | Ok frame -> Ok (frame, header_bytes + h.h_len)
  end
