(** Deterministic fault injection at the transport seam.

    [wrap cfg inner] decorates any {!Transport.t} with a nemesis that
    drops, delays, duplicates and corrupts outbound frames according to
    a fault schedule that is a {e pure function} of [(cfg, frame)]: the
    decision for a frame depends only on the config (seed included), the
    directed link it travels, the frame's class and content key, and how
    many times that exact frame has been transmitted — never on wall
    time, hash order, or allocation order.  Two runs with the same
    config and the same frame flow therefore produce byte-identical
    fault schedules ({!schedule}), which is what makes every live
    failure replayable from its seed.

    Fault semantics, chosen so a hardened cluster always terminates:
    - {b Partitions} are directed per-link windows over the link's
      frame-key ordinals.  A partitioned control frame is dropped, but
      only for its first [pt_attempts] transmissions — retransmissions
      beyond that punch through, modelling a heal, so bounded
      retry always converges.  Application frames are never dropped
      (the staged-delivery protocol sends them exactly once and cannot
      re-request them): a partition {e delays} them instead.
    - {b Drop} (stochastic) likewise applies only to control frames and
      only to a frame's first transmission; retransmissions pass.
    - {b Delay} holds the frame for a bounded duration via the inner
      transport's timers, releasing it out of band — bounded reorder.
    - {b Duplicate} sends the frame twice back-to-back.
    - {b Corrupt} writes a garbled copy of the encoded frame ({!garble})
      on the raw socket {e before} the real frame: receivers must surface
      a {!Wire} decode error and resynchronize, never accept the bytes,
      and the run's semantics are otherwise unchanged.  A no-op under
      the simulator backend, whose frames travel unencoded.

    [Ident] preambles are exempt (they are the link mapping itself). *)

module Wire = Wire

(** A directed partition window on link [pt_from -> pt_to]. *)
type partition = {
  pt_from : int;
  pt_to : int;  (** endpoints; {!Transport.coordinator_id} allowed *)
  pt_start : int;  (** first affected frame-key ordinal on the link *)
  pt_len : int;  (** number of consecutive ordinals affected *)
  pt_attempts : int;
      (** transmissions suppressed per frame key before punch-through;
          must stay below the coordinator's retry budget *)
}

type config = {
  seed : int;
  drop_p : float;  (** control-frame first-transmission drop probability *)
  delay_p : float;
  max_delay : float;  (** delays are uniform in [(0, max_delay]] seconds *)
  dup_p : float;
  corrupt_p : float;
  partitions : partition list;
}

val default : config
(** All probabilities zero, no partitions: a transparent wrapper. *)

val gen : seed:int -> n:int -> config
(** A random-but-reproducible config for an [n]-node cluster: moderate
    fault rates, small delays, up to two partition windows.  Pure in
    [(seed, n)]. *)

val to_string : config -> string
(** One-line machine-readable form ([nms1 ...]); floats rendered as hex
    so {!of_string} roundtrips exactly. *)

val of_string : string -> (config, string) result
val pp : Format.formatter -> config -> unit

(** {2 Corruption} *)

type style =
  | Flip_payload  (** flip a payload bit: CRC mismatch *)
  | Forge_tag  (** valid header + CRC over an unknown tag byte *)
  | Trailing  (** valid CRC over the payload plus a trailing byte *)

val garble : style -> Bytes.t -> Bytes.t
(** [garble style encoded] returns a corrupted variant of an encoded
    frame.  Every style keeps the length prefix intact and within
    bounds, so a receiver can always resynchronize at the next frame;
    decoding the result must fail with, respectively, [Crc_mismatch],
    [Bad_tag], [Malformed]. *)

(** {2 The decorator} *)

type stats = {
  mutable st_passed : int;
  mutable st_dropped : int;
  mutable st_delayed : int;
  mutable st_duplicated : int;
  mutable st_corrupted : int;
}

type t

val timer_base : int
(** Timer ids at or above this value are reserved for the nemesis's
    delayed-frame releases; owners of a wrapped transport must keep
    their own timer ids below it. *)

val wrap : config -> Transport.t -> t * Transport.t
(** Decorate [inner].  The returned transport is [inner] with [send]
    and [set_handler] replaced; everything else passes through.  The
    handle gives access to {!stats}, {!schedule} and {!flush_held}. *)

val stats : t -> stats

val schedule : t -> string list
(** Chronological log of every per-frame decision (passes included) —
    the replayability witness: identical [(config, frame flow)] yields
    an identical list. *)

val flush_held : t -> unit
(** Discard frames currently held for delayed release.  In-process
    cluster harnesses call this when they kill the wrapped endpoint: a
    real process's held frames die with it, and the simulator must
    match that. *)
