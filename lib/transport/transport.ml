(* The seam between the protocol stack and the world (DESIGN.md §14): a
   node or coordinator owns exactly one [t] and interacts with peers only
   through it.  Two implementations exist — the deterministic simulator
   engine ({!Sim_backend}) and real TCP sockets
   ({!Rdt_live.Tcp_transport}); the node logic cannot tell them apart. *)

type event =
  | Frame of { src : int; frame : Wire.frame }
  | Garbled of { peer : int option; error : Wire.error }
  | Peer_down of { peer : int }
  | Timer of { id : int }

type poll_result = [ `Progress | `Timeout | `Idle ]

type t = {
  me : int;  (* -1 = coordinator, 0..n-1 = nodes *)
  now : unit -> float;
  send : dst:int -> Wire.frame -> unit;
  send_raw : dst:int -> Bytes.t -> unit;
  connect : dst:int -> port:int -> unit;
  listen_port : int;
  set_timer : id:int -> after:float -> unit;
  set_handler : (event -> unit) -> unit;
  poll : timeout:float -> poll_result;
  close : unit -> unit;
}

let coordinator_id = -1

let me t = t.me
let now t = t.now ()
let send t ~dst frame = t.send ~dst frame
let send_raw t ~dst bytes = t.send_raw ~dst bytes
let connect t ~dst ~port = t.connect ~dst ~port
let listen_port t = t.listen_port
let set_timer t ~id ~after = t.set_timer ~id ~after
let set_handler t f = t.set_handler f
let poll t ~timeout = t.poll ~timeout
let close t = t.close ()

(* Backends deliver events before the owner has installed its handler
   (e.g. engine deliveries racing a respawn); a mailbox buffers them and
   replays on installation.  [drop] models a dead process: frames to a
   killed node vanish, exactly as they do when its socket dies. *)
module Mailbox = struct
  type nonrec t = {
    mutable handler : (event -> unit) option;
    mutable pending : event list;  (* newest first *)
    mutable dropping : bool;
    mutable delivered : int;
  }

  let create () = { handler = None; pending = []; dropping = false; delivered = 0 }

  let deliver mb ev =
    if not mb.dropping then begin
      mb.delivered <- mb.delivered + 1;
      match mb.handler with
      | Some h -> h ev
      | None -> mb.pending <- ev :: mb.pending
    end

  let set mb h =
    mb.dropping <- false;
    mb.handler <- Some h;
    let pending = List.rev mb.pending in
    mb.pending <- [];
    List.iter h pending

  let drop mb =
    mb.dropping <- true;
    mb.handler <- None;
    mb.pending <- []

  let delivered mb = mb.delivered
end
