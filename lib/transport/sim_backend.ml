(* Simulator-backed transport: the deterministic engine becomes one
   backend of the transport seam, so the exact node/coordinator logic
   that runs over TCP also runs inside the simulation (FoundationDB-style
   test double, SNIPPETS.md Snippet 2).  Endpoint [me] maps to engine
   process [me + 1]; the coordinator (-1) is engine process 0, so one
   engine hosts [n] nodes plus the coordinator and every frame exchange
   is an ordinary simulated message. *)

module Engine = Rdt_sim.Engine
module Network = Rdt_sim.Network

type cluster = {
  engine : Wire.frame Engine.t;
  mailboxes : Transport.Mailbox.t array;  (* engine-process indexed *)
}

let proc_of_endpoint me = me + 1
let endpoint_of_proc p = p - 1

let create ~n ~seed ?(net : Network.config option) () =
  let net =
    match net with
    | Some net -> net
    | None ->
      (* FIFO, lossless, positive delay: TCP's delivery contract *)
      { Network.default with fifo = true; loss_probability = 0.0 }
  in
  if net.loss_probability <> 0.0 || not net.fifo then
    invalid_arg "Sim_backend.create: transport channels are FIFO and lossless";
  let engine = Engine.create ~n:(n + 1) ~seed ~net () in
  let mailboxes = Array.init (n + 1) (fun _ -> Transport.Mailbox.create ()) in
  Array.iteri
    (fun p mb ->
      Engine.set_receiver engine p (fun ~src frame ->
          Transport.Mailbox.deliver mb
            (Transport.Frame { src = endpoint_of_proc src; frame })))
    mailboxes;
  { engine; mailboxes }

let kill cl ~pid = Transport.Mailbox.drop cl.mailboxes.(proc_of_endpoint pid)

let transport cl ~me =
  let proc = proc_of_endpoint me in
  if proc < 0 || proc >= Array.length cl.mailboxes then
    invalid_arg "Sim_backend.transport: endpoint out of range";
  let mb = cl.mailboxes.(proc) in
  let poll ~timeout:_ =
    (* virtual time: pump the engine until this endpoint saw an event or
       the queue drained (which a waiting caller must treat as deadlock) *)
    let before = Transport.Mailbox.delivered mb in
    let rec pump () =
      if Transport.Mailbox.delivered mb > before then `Progress
      else if Engine.step cl.engine then pump ()
      else if Transport.Mailbox.delivered mb > before then `Progress
      else `Idle
    in
    pump ()
  in
  {
    Transport.me;
    now = (fun () -> Engine.now cl.engine);
    send =
      (fun ~dst frame ->
        Engine.send cl.engine ~reliable:true ~src:proc
          ~dst:(proc_of_endpoint dst) frame);
    (* frames travel unencoded through the engine: raw corrupt bytes have
       no representation here, so injected corruption is a no-op *)
    send_raw = (fun ~dst:_ _ -> ());
    connect = (fun ~dst:_ ~port:_ -> ());
    listen_port = 0;
    set_timer =
      (fun ~id ~after ->
        ignore
          (Engine.schedule_in cl.engine ~pin:proc ~delay:after (fun () ->
               Transport.Mailbox.deliver mb (Transport.Timer { id }))));
    set_handler = (fun h -> Transport.Mailbox.set mb h);
    poll;
    close = (fun () -> ());
  }
