(** Simulation runner: wires the engine, workload, checkpointing
    middleware, garbage collector, fault injection and recovery manager
    into one executable scenario, and collects the metrics the
    experiments report.

    Typical use:
    {[
      let cfg = { Sim_config.default with n = 8; seed = 42 } in
      let t = Runner.create cfg in
      Runner.run t;
      let s = Runner.summary t in
      Format.printf "%a@." Runner.pp_summary s
    ]}

    The runner exposes its internals (middlewares, collectors, trace,
    engine) so tests can drive executions step by step and audit
    invariants against the trace-based oracle. *)

type t

val create : Sim_config.t -> t
(** Builds the whole scenario (validated); nothing has executed yet
    beyond each process storing its initial checkpoint. *)

val run : t -> unit
(** Execute until the configured duration. *)

val step : t -> bool
(** Execute a single engine event (or, with [shards > 1], one conservative
    time window); [false] when nothing is left. *)

val set_on_sample : t -> (t -> unit) -> unit
(** Callback invoked at every metrics sample (tests hook invariant audits
    here). *)

(* Internals *)

val config : t -> Sim_config.t
val engine : t -> Sim_msg.t Rdt_sim.Engine.t
val now : t -> float
val trace : t -> Rdt_ccp.Trace.t
val middleware : t -> int -> Rdt_protocols.Middleware.t
val collector : t -> int -> Rdt_gc.Rdt_lgc.t option
val ccp : t -> Rdt_ccp.Ccp.t
(** Ground-truth CCP of the execution so far.  Maintained incrementally:
    the first call attaches a {!Rdt_ccp.Ccp.Incremental} view to the
    trace, after which each query folds only the events recorded since
    the previous one (a rollback triggers one full rebuild).  The result
    is a live view — do not retain it across further simulation steps;
    query again instead. *)

(* Metrics *)

val retained_series : t -> Rdt_metrics.Series.t array
val total_retained_series : t -> Rdt_metrics.Series.t
val optimal_retained_series : t -> Rdt_metrics.Series.t
(** Total retained under idealized Theorem-1 collection, sampled at the
    same instants (only recorded for RDT protocols). *)

val recoveries : t -> Rdt_recovery.Session.report list

(* Durable store *)

val durable : t -> bool
(** [true] iff the scenario runs the log-structured on-disk backend. *)

val log_store : t -> int -> Rdt_store.Log_store.t option
(** Process [pid]'s on-disk store ([None] under the memory backend). *)

val sync_stores : t -> unit
(** Force every pending store write to disk (fsync). *)

val close_stores : t -> unit
(** Flush, sync and close every on-disk store.  Call once the run (and
    any post-run inspection through {!log_store}) is finished. *)

val store_live_bytes_series : t -> Rdt_metrics.Series.t
val store_dead_bytes_series : t -> Rdt_metrics.Series.t
(** Summed on-disk live/dead bytes across processes, sampled at the
    metrics interval (empty under the memory backend). *)

type summary = {
  n : int;
  duration : float;
  protocol : string;
  gc : string;
  basic_checkpoints : int;
  forced_checkpoints : int;
  stored_total : int;  (** checkpoints ever written, all processes *)
  eliminated_total : int;
  final_retained : int array;
  peak_retained : int array;  (** per-process peak simultaneous *)
  peak_retained_global : int;  (** peak of the sampled global total *)
  mean_total_retained : float;
  mean_optimal_retained : float;  (** nan for non-RDT protocols *)
  app_messages : int;
  piggyback_words : int;
      (** control information carried by the application messages
          themselves ([n+1] words each: the DV plus the protocol index) —
          the asynchronous approach's entire communication cost *)
  control_messages : int;  (** GC control messages (coordinated modes) *)
  gc_rounds : int;
  recovery_sessions : int;
  checkpoints_rolled_back : int;
  store_segments : int;  (** on-disk segment files, all processes (0 = memory backend) *)
  store_live_bytes : int;
  store_dead_bytes : int;
  store_compactions : int;
}

val summary : t -> summary
val pp_summary : Format.formatter -> summary -> unit
