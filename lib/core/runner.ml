module Engine = Rdt_sim.Engine
module Prng = Rdt_sim.Prng
module Trace = Rdt_ccp.Trace
module Ccp = Rdt_ccp.Ccp
module Middleware = Rdt_protocols.Middleware
module Stable_store = Rdt_storage.Stable_store
module Log_store = Rdt_store.Log_store
module Rdt_lgc = Rdt_gc.Rdt_lgc
module Global_gc = Rdt_gc.Global_gc
module Session = Rdt_recovery.Session
module Workload = Rdt_workload.Workload
module Series = Rdt_metrics.Series

(* The coordinator of the round-based GC baselines.  Process 0 plays the
   role; if it is down, rounds stall until it recovers (coordinated
   collection depends on synchronization — the paper's point). *)
let coordinator = 0

(* The runner's window-side seams.  [handle_message] is the receiver the
   engine invokes inside a window on the owning process's shard;
   [control_send] stripes its counter by the sending process's shard.
   The round functions ([start_round], [finish_round], [on_gc_reply])
   also run inside windows, but every path into them is pinned to the
   coordinator's shard, so [t.rounds] has a single writing domain — the
   [@@lint.single_writer] on each says exactly that.  [crash], [recover]
   and [sample] run as unrouted global actions at a window barrier and
   are not scopes. *)
[@@@lint.domain_scope
  "control_send:src" "handle_message:pid" "start_round" "finish_round"
  "on_gc_reply"]

type round_state = {
  mutable next_round : int;
  mutable open_round : int option;
  mutable replies : (int * Global_gc.snapshot) list;
  mutable expected : int list;
  mutable rounds_completed : int;
}

type t = {
  cfg : Sim_config.t;
  engine : Sim_msg.t Engine.t;
  trace : Trace.t;
  middlewares : Middleware.t array;
  collectors : Rdt_lgc.t option array;
  log_stores : Log_store.t option array;
  workload : Workload.t;
  series_retained : Series.t array;
  series_total : Series.t;
  series_optimal : Series.t;
  series_store_live_bytes : Series.t;
  series_store_dead_bytes : Series.t;
  rounds : round_state;
  (* striped by executing shard: control sends happen inside routed
     handlers, so a single shared cell would race under [shards > 1] *)
  control_sent : Rdt_metrics.Shard_counter.t;
  mutable crashed_pending : int list;
  mutable recoveries : Session.report list;
  mutable on_sample : (t -> unit) option;
  (* Live CCP view, created on first [ccp] query so runs that never ask
     for the ground truth pay nothing; once created it folds each trace
     event as it is recorded instead of rebuilding from scratch. *)
  mutable ccp_incr : Ccp.Incremental.t option;
}

let config t = t.cfg
let engine t = t.engine
let now t = Engine.now t.engine
let trace t = t.trace
let middleware t pid = t.middlewares.(pid)
let collector t pid = t.collectors.(pid)
let ccp t =
  Trace.finalize t.trace;
  match t.ccp_incr with
  | Some incr -> Ccp.Incremental.ccp incr
  | None ->
    let incr = Ccp.Incremental.of_trace t.trace in
    t.ccp_incr <- Some incr;
    Ccp.Incremental.ccp incr
let retained_series t = t.series_retained
let total_retained_series t = t.series_total
let optimal_retained_series t = t.series_optimal
let store_live_bytes_series t = t.series_store_live_bytes
let store_dead_bytes_series t = t.series_store_dead_bytes
let recoveries t = List.rev t.recoveries
let set_on_sample t f = t.on_sample <- Some f
let log_store t pid = t.log_stores.(pid)
let durable t = Array.exists Option.is_some t.log_stores

let sync_stores t =
  Array.iter (function Some ls -> Log_store.sync ls | None -> ()) t.log_stores

let close_stores t =
  Array.iter (function Some ls -> Log_store.close ls | None -> ()) t.log_stores

let snapshots t = Array.map Session.snapshot_of t.middlewares

(* --- application activity ------------------------------------------- *)

let app_send t ~src ~dst =
  let msg =
    Middleware.prepare_send t.middlewares.(src) ~dst ~now:(Engine.now t.engine)
  in
  Engine.send t.engine ~src ~dst (Sim_msg.App msg)

let spontaneous_sends t pid =
  List.iter
    (fun dst -> app_send t ~src:pid ~dst)
    (Workload.destinations t.workload ~me:pid)

let reply_sends t pid ~src =
  List.iter
    (fun dst -> app_send t ~src:pid ~dst)
    (Workload.reply_destinations t.workload ~me:pid ~src)

(* Per-process timers are [pin]ned (not [owner]ed): they execute on the
   process's shard, but keep firing while it is down so they can re-arm —
   the explicit [is_up] guard reproduces the skip. *)
let rec arm_send_timer t pid =
  let delay = Workload.next_send_delay t.workload ~me:pid in
  ignore
    (Engine.schedule_in t.engine ~pin:pid ~delay (fun () ->
         if Engine.is_up t.engine pid then spontaneous_sends t pid;
         arm_send_timer t pid))

let rec arm_ckpt_timer t pid =
  let delay = Workload.next_basic_ckpt_delay t.workload ~me:pid in
  ignore
    (Engine.schedule_in t.engine ~pin:pid ~delay (fun () ->
         if Engine.is_up t.engine pid then
           Middleware.basic_checkpoint t.middlewares.(pid)
             ~now:(Engine.now t.engine);
         arm_ckpt_timer t pid))

(* --- coordinated GC rounds ------------------------------------------ *)

let control_send t ~src ~dst msg =
  (* always called from [src]'s own shard, so the slot write is owned *)
  Rdt_metrics.Shard_counter.incr t.control_sent
    (Engine.shard_of_pid t.engine src);
  Engine.send t.engine ~reliable:true ~src ~dst msg

let control_messages t = Rdt_metrics.Shard_counter.total t.control_sent

let start_round t =
  if Engine.is_up t.engine coordinator then begin
    (* abandon any round still open (a participant crashed mid-round) *)
    let round = t.rounds.next_round in
    t.rounds.next_round <- round + 1;
    t.rounds.open_round <- Some round;
    t.rounds.replies <- [];
    let up =
      List.filter
        (Engine.is_up t.engine)
        (List.init t.cfg.Sim_config.n Fun.id)
    in
    t.rounds.expected <- up;
    List.iter
      (fun pid ->
        if pid = coordinator then
          t.rounds.replies <-
            (pid, Session.snapshot_of t.middlewares.(pid)) :: t.rounds.replies
        else control_send t ~src:coordinator ~dst:pid (Sim_msg.Gc_query { round }))
      up
  end
[@@lint.single_writer
  "t.rounds is coordinator round state: this only runs from the gc timer \
   pinned to the coordinator's shard"]

let apply_collect t pid indices =
  let store = Middleware.store t.middlewares.(pid) in
  List.iter
    (fun index ->
      (* the checkpoint may already be gone if a rollback truncated it *)
      if Stable_store.mem store ~index then Stable_store.eliminate store ~index)
    indices

let finish_round t round =
  (* one reply per pid, so ordering by pid alone is total *)
  let members =
    List.sort (fun (a, _) (b, _) -> Int.compare a b) t.rounds.replies
  in
  let participants = Array.of_list (List.map fst members) in
  let snaps = Array.of_list (List.map snd members) in
  (* The computations below see only the participants' state.  With a
     partial view, a missing (down) process's last checkpoint is unknown,
     so collecting based on it would be unsafe; rounds therefore only
     complete with full membership. *)
  if Array.length snaps = t.cfg.Sim_config.n then begin
    let plan me =
      match t.cfg.Sim_config.gc with
      | Sim_config.Coordinated _ ->
        let li = Global_gc.last_interval_vector snaps in
        Global_gc.theorem1_collectable snaps ~me ~li
      | Sim_config.Simple _ -> Global_gc.below_total_line snaps ~me
      | Sim_config.No_gc | Sim_config.Local | Sim_config.Local_lazy _
      | Sim_config.Oracle_periodic _ ->
        []
    in
    Array.iteri
      (fun pos pid ->
        let indices = plan pos in
        if not (List.is_empty indices) then
          if pid = coordinator then apply_collect t pid indices
          else
            control_send t ~src:coordinator ~dst:pid
              (Sim_msg.Gc_collect { round; indices }))
      participants;
    t.rounds.rounds_completed <- t.rounds.rounds_completed + 1
  end;
  t.rounds.open_round <- None
[@@lint.single_writer
  "t.rounds is coordinator round state: only reached from on_gc_reply, \
   which executes on the coordinator's shard"]

let on_gc_reply t ~round ~pid snapshot =
  match t.rounds.open_round with
  | Some r when r = round ->
    if not (List.mem_assoc pid t.rounds.replies) then begin
      t.rounds.replies <- (pid, snapshot) :: t.rounds.replies;
      if List.length t.rounds.replies = List.length t.rounds.expected then
        finish_round t round
    end
  | Some _ | None -> ()
[@@lint.single_writer
  "t.rounds is coordinator round state: replies are control messages \
   addressed to the coordinator, so this executes on its shard"]

let rec arm_gc_timer t ~period =
  (* pinned to the coordinator: the round logic only touches the
     coordinator's state and sends control messages from it *)
  ignore
    (Engine.schedule_in t.engine ~pin:coordinator ~delay:period (fun () ->
         start_round t;
         arm_gc_timer t ~period))

(* Lazy Theorem-2 collection: the same causal knowledge as RDT-LGC,
   recomputed per process from scratch on a timer (ablation). *)
let lazy_local_collect t pid =
  let mw = t.middlewares.(pid) in
  let store = Middleware.store mw in
  let entries = Array.of_list (Stable_store.retained store) in
  (* borrowed: [theorem2_collectable] only reads it during the call *)
  let live_dv =
    Rdt_causality.Dependency_vector.view (Middleware.dv mw)
  in
  List.iter
    (fun index -> Stable_store.eliminate store ~index)
    (Global_gc.theorem2_collectable ~entries ~live_dv)

let rec arm_lazy_local_timer t pid ~period =
  ignore
    (Engine.schedule_in t.engine ~pin:pid ~delay:period (fun () ->
         if Engine.is_up t.engine pid then lazy_local_collect t pid;
         arm_lazy_local_timer t pid ~period))

(* Idealized oracle: instant global knowledge, no messages. *)
let oracle_collect t =
  let snaps = snapshots t in
  let li = Global_gc.last_interval_vector snaps in
  for pid = 0 to t.cfg.Sim_config.n - 1 do
    apply_collect t pid (Global_gc.theorem1_collectable snaps ~me:pid ~li)
  done

let rec arm_oracle_timer t ~period =
  ignore
    (Engine.schedule_in t.engine ~delay:period (fun () ->
         if Array.for_all Fun.id
              (Array.init t.cfg.Sim_config.n (Engine.is_up t.engine))
         then oracle_collect t;
         arm_oracle_timer t ~period))

(* --- receive path ---------------------------------------------------- *)

let handle_message t pid ~src msg =
  match msg with
  | Sim_msg.App m ->
    Middleware.receive t.middlewares.(pid) m ~now:(Engine.now t.engine);
    reply_sends t pid ~src
  | Sim_msg.Gc_query { round } ->
    control_send t ~src:pid ~dst:coordinator
      (Sim_msg.Gc_reply
         { round; pid; snapshot = Session.snapshot_of t.middlewares.(pid) })
  | Sim_msg.Gc_reply { round; pid = replier; snapshot } ->
    on_gc_reply t ~round ~pid:replier snapshot
  | Sim_msg.Gc_collect { round = _; indices } -> apply_collect t pid indices

(* --- faults and recovery -------------------------------------------- *)

let crash t pid =
  Engine.set_up t.engine pid false;
  t.crashed_pending <- pid :: t.crashed_pending

let recover t pid =
  Engine.set_up t.engine pid true;
  match t.crashed_pending with
  | [] -> () (* already rolled back during a concurrent session *)
  | faulty ->
    t.crashed_pending <- [];
    (* stop-world session: atomic in virtual time; in-transit messages are
       discarded (the CCP excludes lost and in-transit messages) *)
    Engine.flush_in_flight t.engine;
    t.rounds.open_round <- None;
    let release_outdated p ~li =
      match t.collectors.(p) with
      | Some lgc -> Rdt_lgc.release_outdated lgc ~li
      | None -> ()
    in
    let report =
      Session.run ~middlewares:t.middlewares ~faulty
        ~knowledge:t.cfg.Sim_config.knowledge ~release_outdated
    in
    t.recoveries <- report :: t.recoveries

(* --- sampling --------------------------------------------------------- *)

let sample t =
  let time = Engine.now t.engine in
  let total = ref 0 in
  Array.iteri
    (fun pid mw ->
      let count = Stable_store.count (Middleware.store mw) in
      total := !total + count;
      Series.add_int t.series_retained.(pid) ~time ~value:count)
    t.middlewares;
  Series.add_int t.series_total ~time ~value:!total;
  if durable t then begin
    let live = ref 0 and dead = ref 0 in
    Array.iter
      (function
        | Some ls ->
          let s = Log_store.stats ls in
          live := !live + s.Log_store.live_bytes;
          dead := !dead + s.Log_store.dead_bytes
        | None -> ())
      t.log_stores;
    Series.add_int t.series_store_live_bytes ~time ~value:!live;
    Series.add_int t.series_store_dead_bytes ~time ~value:!dead
  end;
  if t.cfg.Sim_config.protocol.Rdt_protocols.Protocol.rdt then begin
    let snaps = snapshots t in
    let li = Global_gc.last_interval_vector snaps in
    let optimal = ref 0 in
    for pid = 0 to t.cfg.Sim_config.n - 1 do
      optimal := !optimal + Global_gc.theorem1_retained_count snaps ~me:pid ~li
    done;
    Series.add_int t.series_optimal ~time ~value:!optimal
  end;
  match t.on_sample with Some f -> f t | None -> ()

let rec arm_sample_timer t =
  ignore
    (Engine.schedule_in t.engine ~delay:t.cfg.Sim_config.sample_interval
       (fun () ->
         sample t;
         arm_sample_timer t))

(* --- construction ----------------------------------------------------- *)

let create (cfg : Sim_config.t) =
  Sim_config.validate cfg;
  let engine =
    Engine.create ~n:cfg.n ~seed:cfg.seed ~net:cfg.net ~shards:cfg.shards
      ~autotune:cfg.autotune ()
  in
  let trace = Trace.create ~n:cfg.n in
  (* Sequential and merged-inline engines record in canonical order
     already; only parallel dispatch — where processes append from
     different domains — needs the trace to defer sequencing until the
     stamps can be merged. *)
  if Engine.parallel_dispatch engine then
    Trace.set_order_source trace (Engine.read_stamp engine);
  (* Per-process state is built shard block by shard block (the engine's
     contiguous partition), so the objects a domain touches during its
     windows were allocated together rather than interleaved with every
     other shard's.  The flat arrays — and therefore every observable
     result — are identical to a pid-ordered build. *)
  let init_by_shard : 'a. (int -> 'a) -> 'a array =
   fun f ->
    Array.concat
      (List.init (Engine.shards engine) (fun s ->
           let lo, hi = Engine.shard_bounds engine s in
           Array.init (hi - lo) (fun i -> f (lo + i))))
  in
  let log_stores =
    init_by_shard (fun me ->
        match cfg.store with
        | Sim_config.Memory -> None
        | Sim_config.Durable { dir; config } ->
          let ls =
            Log_store.create ~config ~pid:me
              ~dir:(Filename.concat dir (Printf.sprintf "p%d" me))
              ()
          in
          if not (List.is_empty (Log_store.recovery ls).Log_store.recovered)
          then
            invalid_arg
              (Printf.sprintf
                 "Runner.create: store directory %s already holds \
                  checkpoints; use a fresh directory (recover existing \
                  ones through Rdt_store.Log_store)"
                 dir);
          Some ls)
  in
  let middlewares =
    init_by_shard (fun me ->
        let store =
          match log_stores.(me) with
          | None -> None
          | Some ls ->
            let store = Stable_store.create ~me in
            Stable_store.set_backend store (Log_store.backend ls);
            Some store
        in
        Middleware.create ~n:cfg.n ~me ~protocol:cfg.protocol ~trace
          ~ckpt_bytes:cfg.ckpt_bytes ?store ())
  in
  let collectors =
    init_by_shard (fun me ->
        match cfg.gc with
        | Sim_config.Local ->
          let mw = middlewares.(me) in
          let lgc =
            Rdt_lgc.create ~me ~store:(Middleware.store mw)
              ~dv:(Middleware.dv mw) ~n:cfg.n
          in
          Rdt_lgc.attach lgc mw;
          Some lgc
        | Sim_config.No_gc | Sim_config.Local_lazy _ | Sim_config.Coordinated _
        | Sim_config.Simple _ | Sim_config.Oracle_periodic _ ->
          None)
  in
  let workload =
    Workload.create cfg.workload ~n:cfg.n
      ~rng:(Prng.split (Engine.rng engine))
      ~shards:(Engine.shards engine) ()
  in
  let t =
    {
      cfg;
      engine;
      trace;
      middlewares;
      collectors;
      log_stores;
      workload;
      series_retained =
        Array.init cfg.n (fun pid ->
            Series.create ~name:(Printf.sprintf "retained-p%d" pid));
      series_total = Series.create ~name:"retained-total";
      series_optimal = Series.create ~name:"retained-optimal";
      series_store_live_bytes = Series.create ~name:"store-live-bytes";
      series_store_dead_bytes = Series.create ~name:"store-dead-bytes";
      rounds =
        {
          next_round = 0;
          open_round = None;
          replies = [];
          expected = [];
          rounds_completed = 0;
        };
      control_sent =
        Rdt_metrics.Shard_counter.create ~slots:(Engine.shards engine);
      crashed_pending = [];
      recoveries = [];
      on_sample = None;
      ccp_incr = None;
    }
  in
  for pid = 0 to cfg.n - 1 do
    Engine.set_receiver engine pid (fun ~src msg -> handle_message t pid ~src msg);
    arm_send_timer t pid;
    arm_ckpt_timer t pid
  done;
  (match cfg.gc with
  | Sim_config.Coordinated { period } | Sim_config.Simple { period } ->
    arm_gc_timer t ~period
  | Sim_config.Oracle_periodic { period } -> arm_oracle_timer t ~period
  | Sim_config.Local_lazy { period } ->
    for pid = 0 to cfg.n - 1 do
      arm_lazy_local_timer t pid ~period
    done
  | Sim_config.No_gc | Sim_config.Local -> ());
  List.iter
    (fun { Sim_config.crash_at; pid; repair_after } ->
      ignore (Engine.schedule t.engine ~at:crash_at (fun () -> crash t pid));
      ignore
        (Engine.schedule t.engine ~at:(crash_at +. repair_after) (fun () ->
             recover t pid)))
    cfg.faults;
  arm_sample_timer t;
  t

let run t =
  Engine.run ~until:t.cfg.Sim_config.duration t.engine;
  (* flush deferred trace sequencing so [on_event] subscribers are current *)
  Trace.finalize t.trace
let step t = Engine.step t.engine

(* --- summary ----------------------------------------------------------- *)

type summary = {
  n : int;
  duration : float;
  protocol : string;
  gc : string;
  basic_checkpoints : int;
  forced_checkpoints : int;
  stored_total : int;
  eliminated_total : int;
  final_retained : int array;
  peak_retained : int array;
  peak_retained_global : int;
  mean_total_retained : float;
  mean_optimal_retained : float;
  app_messages : int;
  piggyback_words : int;
  control_messages : int;
  gc_rounds : int;
  recovery_sessions : int;
  checkpoints_rolled_back : int;
  store_segments : int;
  store_live_bytes : int;
  store_dead_bytes : int;
  store_compactions : int;
}

let summary t =
  let stores = Array.map Middleware.store t.middlewares in
  let store_stats = Array.map Stable_store.stats stores in
  let sum f = Array.fold_left (fun acc x -> acc + f x) 0 in
  let engine_stats = Engine.stats t.engine in
  let log_stats =
    Array.to_list t.log_stores
    |> List.filter_map (Option.map Log_store.stats)
  in
  let sum_log f = List.fold_left (fun acc s -> acc + f s) 0 log_stats in
  {
    n = t.cfg.Sim_config.n;
    duration = t.cfg.Sim_config.duration;
    protocol = t.cfg.Sim_config.protocol.Rdt_protocols.Protocol.id;
    gc = Sim_config.gc_policy_name t.cfg.Sim_config.gc;
    basic_checkpoints = sum Middleware.basic_count t.middlewares;
    forced_checkpoints = sum Middleware.forced_count t.middlewares;
    stored_total =
      sum (fun (s : Stable_store.stats) -> s.stored_total) store_stats;
    eliminated_total =
      sum (fun (s : Stable_store.stats) -> s.eliminated_total) store_stats;
    final_retained = Array.map Stable_store.count stores;
    peak_retained =
      Array.map (fun (s : Stable_store.stats) -> s.peak_count) store_stats;
    peak_retained_global =
      (let m = Series.max_value t.series_total in
       if m = neg_infinity then 0 else int_of_float m);
    mean_total_retained = Rdt_metrics.Stats.mean (Series.stats t.series_total);
    mean_optimal_retained =
      (if Series.length t.series_optimal = 0 then nan
       else Rdt_metrics.Stats.mean (Series.stats t.series_optimal));
    app_messages = engine_stats.Engine.sent - control_messages t;
    piggyback_words =
      (engine_stats.Engine.sent - control_messages t)
      * (t.cfg.Sim_config.n + 1);
    control_messages = control_messages t;
    gc_rounds = t.rounds.rounds_completed;
    recovery_sessions = List.length t.recoveries;
    checkpoints_rolled_back =
      List.fold_left
        (fun acc (r : Session.report) -> acc + r.checkpoints_rolled_back)
        0 t.recoveries;
    store_segments = sum_log (fun (s : Log_store.stats) -> s.segments);
    store_live_bytes = sum_log (fun (s : Log_store.stats) -> s.live_bytes);
    store_dead_bytes = sum_log (fun (s : Log_store.stats) -> s.dead_bytes);
    store_compactions = sum_log (fun (s : Log_store.stats) -> s.compactions);
  }

let pp_summary ppf s =
  let pp_ints ppf a =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
      Format.pp_print_int ppf (Array.to_list a)
  in
  Format.fprintf ppf
    "@[<v>%d processes, %.0f time units, protocol=%s, gc=%s@,\
     checkpoints: %d basic + %d forced = %d stored, %d eliminated@,\
     retained: final=(%a) peak=(%a) global-peak=%d@,\
     mean total retained %.2f (optimal %.2f)@,\
     messages: %d app (%d piggybacked control words), %d control (%d gc rounds)@,\
     recoveries: %d sessions, %d checkpoints rolled back"
    s.n s.duration s.protocol s.gc s.basic_checkpoints s.forced_checkpoints
    s.stored_total s.eliminated_total pp_ints s.final_retained pp_ints
    s.peak_retained s.peak_retained_global s.mean_total_retained
    s.mean_optimal_retained s.app_messages s.piggyback_words
    s.control_messages s.gc_rounds s.recovery_sessions
    s.checkpoints_rolled_back;
  if s.store_segments > 0 then
    Format.fprintf ppf
      "@,durable store: %d segments, %d live B / %d dead B, %d compactions"
      s.store_segments s.store_live_bytes s.store_dead_bytes
      s.store_compactions;
  Format.fprintf ppf "@]"
