type gc_policy =
  | No_gc
  | Local
  | Local_lazy of { period : float }
  | Coordinated of { period : float }
  | Simple of { period : float }
  | Oracle_periodic of { period : float }

let gc_policy_name = function
  | No_gc -> "no-gc"
  | Local -> "rdt-lgc"
  | Local_lazy _ -> "rdt-lgc-lazy"
  | Coordinated _ -> "coordinated"
  | Simple _ -> "simple"
  | Oracle_periodic _ -> "oracle"

type fault = { crash_at : float; pid : int; repair_after : float }

type store_backend =
  | Memory
  | Durable of { dir : string; config : Rdt_store.Log_store.config }

let store_backend_name = function
  | Memory -> "memory"
  | Durable { dir; _ } -> Printf.sprintf "durable:%s" dir

type t = {
  n : int;
  seed : int;
  duration : float;
  net : Rdt_sim.Network.config;
  workload : Rdt_workload.Workload.config;
  protocol : Rdt_protocols.Protocol.t;
  gc : gc_policy;
  faults : fault list;
  knowledge : Rdt_recovery.Session.knowledge;
  sample_interval : float;
  ckpt_bytes : int;
  store : store_backend;
  shards : int;
  autotune : bool;
}

let default =
  {
    n = 4;
    seed = 1;
    duration = 100.0;
    net = Rdt_sim.Network.default;
    workload = Rdt_workload.Workload.default;
    protocol = Rdt_protocols.Protocol.fdas;
    gc = Local;
    faults = [];
    knowledge = `Global;
    sample_interval = 5.0;
    ckpt_bytes = 1;
    store = Memory;
    shards = 1;
    autotune = true;
  }

let validate t =
  if t.n < 2 then invalid_arg "Sim_config: n must be at least 2";
  if t.duration <= 0.0 then invalid_arg "Sim_config: duration must be positive";
  if t.sample_interval <= 0.0 then
    invalid_arg "Sim_config: sample interval must be positive";
  if t.shards < 1 then invalid_arg "Sim_config: shards must be at least 1";
  if t.shards > 1 && t.net.Rdt_sim.Network.min_delay <= 0.0 then
    invalid_arg
      "Sim_config: shards > 1 needs a positive network min_delay (the \
       conservative lookahead)";
  (match t.gc with
  | Coordinated { period }
  | Simple { period }
  | Oracle_periodic { period }
  | Local_lazy { period } ->
    if period <= 0.0 then invalid_arg "Sim_config: GC period must be positive"
  | No_gc | Local -> ());
  (* every collector in this library reasons over dependency vectors via
     Equation 2, which is only exact on RD-trackable executions; pairing
     one with a non-RDT protocol would be unsound *)
  (match t.gc with
  | No_gc -> ()
  | Local | Local_lazy _ | Coordinated _ | Simple _ | Oracle_periodic _ ->
    if not t.protocol.Rdt_protocols.Protocol.rdt then
      invalid_arg
        "Sim_config: garbage collection requires an RDT protocol (Equation 2)");
  let check_fault f =
    if f.pid < 0 || f.pid >= t.n then invalid_arg "Sim_config: fault pid";
    if f.crash_at <= 0.0 || f.repair_after <= 0.0 then
      invalid_arg "Sim_config: fault times must be positive"
  in
  List.iter check_fault t.faults;
  (* reject overlapping fault windows for the same process *)
  let sorted =
    List.sort
      (fun a b ->
        match Int.compare a.pid b.pid with
        | 0 -> Float.compare a.crash_at b.crash_at
        | c -> c)
      t.faults
  in
  let rec overlap = function
    | a :: (b :: _ as rest) ->
      if a.pid = b.pid && a.crash_at +. a.repair_after >= b.crash_at then
        invalid_arg "Sim_config: overlapping fault windows for one process";
      overlap rest
    | [ _ ] | [] -> ()
  in
  overlap sorted
