(** Configuration of a full checkpointing simulation. *)

type gc_policy =
  | No_gc  (** keep everything (lower baseline) *)
  | Local  (** RDT-LGC — the paper's asynchronous collector *)
  | Local_lazy of { period : float }
      (** ablation: the same causal knowledge as RDT-LGC (Theorem 2 from
          the process's own DV), but recomputed from scratch every
          [period] instead of maintained incrementally on every event.
          Still asynchronous (no control messages); quantifies what the
          paper's "as soon as they satisfy the condition" immediacy and
          the UC/CCB bookkeeping buy *)
  | Coordinated of { period : float }
      (** Wang-style coordinated collection: every [period], a coordinator
          gathers all processes' state over reliable control messages,
          evaluates Theorem 1 globally, and disseminates collect orders *)
  | Simple of { period : float }
      (** the survey's simple baseline: collect everything strictly below
          the recovery line for the failure of all processes (also over
          control-message rounds) *)
  | Oracle_periodic of { period : float }
      (** idealized instant global knowledge, no messages: Theorem 1
          applied every [period] with zero latency (upper baseline) *)

val gc_policy_name : gc_policy -> string

type fault = {
  crash_at : float;  (** virtual time of the crash *)
  pid : int;
  repair_after : float;  (** downtime before the process recovers *)
}
(** Fault windows must not overlap the same process crashing twice;
    concurrent crashes of different processes are supported. *)

type store_backend =
  | Memory  (** the historical in-memory stable-storage model *)
  | Durable of { dir : string; config : Rdt_store.Log_store.config }
      (** every process [p] persists its checkpoints in a log-structured
          store under [dir/p<pid>]; [dir] must be fresh (recovery of an
          existing directory goes through {!Rdt_store.Log_store} directly) *)

val store_backend_name : store_backend -> string

type t = {
  n : int;
  seed : int;
  duration : float;
  net : Rdt_sim.Network.config;
  workload : Rdt_workload.Workload.config;
  protocol : Rdt_protocols.Protocol.t;
  gc : gc_policy;
  faults : fault list;
  knowledge : Rdt_recovery.Session.knowledge;
      (** recovery-session mode: [`Global] disseminates the LI vector,
          [`Causal] leaves each process to its own dependency vector *)
  sample_interval : float;  (** metrics sampling period *)
  ckpt_bytes : int;  (** synthetic size of one checkpoint *)
  store : store_backend;  (** where stable storage actually lives *)
  shards : int;
      (** engine shard (domain) count; results are identical at every
          value, only wall-clock time changes.  [> 1] requires
          [net.min_delay > 0] (it is the conservative lookahead) *)
  autotune : bool;
      (** enable the engine's asymmetric per-shard window boundaries and
          hardware-aware dispatch (default [true]); [false] forces the
          symmetric [w + L] window on a full domain team — an A/B knob,
          never an output change *)
}

val default : t
(** 4 processes, FDAS + RDT-LGC, uniform workload, no faults, seed 1,
    duration 100. *)

val validate : t -> unit
(** @raise Invalid_argument on out-of-range parameters. *)
