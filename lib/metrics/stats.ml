type t = {
  mutable count : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
  mutable sum : float;
}

let create () =
  { count = 0; mean = 0.0; m2 = 0.0; min = nan; max = nan; sum = 0.0 }

let add t x =
  t.count <- t.count + 1;
  t.sum <- t.sum +. x;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.count);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if t.count = 1 then begin
    t.min <- x;
    t.max <- x
  end
  else begin
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x
  end

let add_int t x = add t (float_of_int x)

let count t = t.count
let mean t = if t.count = 0 then 0.0 else t.mean

let stddev t =
  if t.count < 2 then 0.0 else sqrt (t.m2 /. float_of_int (t.count - 1))

let min t = t.min
let max t = t.max
let sum t = t.sum

let of_list l =
  let t = create () in
  List.iter (add t) l;
  t

let percentile l ~p =
  if List.is_empty l then invalid_arg "Stats.percentile: empty list";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = List.sort compare l in
  let arr = Array.of_list sorted in
  let len = Array.length arr in
  let rank =
    int_of_float (ceil (p /. 100.0 *. float_of_int len)) - 1
  in
  arr.(Stdlib.max 0 (Stdlib.min (len - 1) rank))

let pp ppf t =
  if t.count = 0 then Format.pp_print_string ppf "(no samples)"
  else
    Format.fprintf ppf "%.3f ± %.3f [%.3f, %.3f] (%d)" (mean t) (stddev t)
      t.min t.max t.count
