(** Slot-striped event counter for sharded simulations.

    A plain shared [int ref] bumped from event handlers would race once the
    engine runs handlers on multiple domains, and even without tearing the
    final value would depend on interleaving.  Instead each shard (or any
    other disjoint slot owner) increments its own slot — no two domains
    ever write the same cell, the engine's window barrier publishes the
    writes — and {!total} merges the slots deterministically when the run
    is over.

    Slots are plain [int] cells, not [Atomic.t]: the whole point is that
    ownership, not synchronization, makes the counts race-free, matching
    the engine's shard-confinement discipline (and the [det/atomic] lint
    rule that keeps [Atomic] out of simulation code). *)

type t

val create : slots:int -> t
(** @raise Invalid_argument if [slots <= 0]. *)

val slots : t -> int

val incr : t -> int -> unit
(** [incr t slot] adds one to [slot].  Callers must ensure each slot is
    only ever written by one domain at a time (e.g. slot = executing
    shard).
    @raise Invalid_argument on an out-of-range slot. *)

val add : t -> int -> int -> unit
(** [add t slot k] adds [k] to [slot]; same ownership contract as
    {!incr}. *)

val get : t -> int -> int
val total : t -> int
val per_slot : t -> int array
(** A copy; mutating it does not affect the counter. *)

val reset : t -> unit
