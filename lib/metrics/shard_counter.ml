type t = int array

(* The whole point of this type is the stripe discipline the mt/* rules
   check: a writer may only touch the slot it owns (its shard index), so
   concurrent increments never share a cell.  [total]/[per_slot]/[reset]
   are barrier-side aggregation. *)
[@@@lint.domain_scope "incr:slot" "add:slot"]

let create ~slots =
  if slots <= 0 then invalid_arg "Shard_counter.create: slots must be positive";
  Array.make slots 0

let slots = Array.length

let incr t slot =
  if slot < 0 || slot >= Array.length t then
    invalid_arg "Shard_counter.incr: bad slot";
  t.(slot) <- t.(slot) + 1

let add t slot k =
  if slot < 0 || slot >= Array.length t then
    invalid_arg "Shard_counter.add: bad slot";
  t.(slot) <- t.(slot) + k

let get t slot = t.(slot)
let total t = Array.fold_left ( + ) 0 t
let per_slot t = Array.copy t
let reset t = Array.fill t 0 (Array.length t) 0
