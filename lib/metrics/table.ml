type align = Left | Right

type row = Cells of string list | Separator

type t = {
  columns : (string * align) list;
  mutable rev_rows : row list;
}

let create ~columns =
  if List.is_empty columns then invalid_arg "Table.create: no columns";
  { columns; rev_rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg "Table.add_row: arity mismatch";
  t.rev_rows <- Cells cells :: t.rev_rows

let add_rows t rows = List.iter (add_row t) rows
let add_separator t = t.rev_rows <- Separator :: t.rev_rows

let render t =
  let headers = List.map fst t.columns in
  let rows = List.rev t.rev_rows in
  let widths =
    List.mapi
      (fun i (header, _) ->
        List.fold_left
          (fun acc -> function
            | Separator -> acc
            | Cells cells -> max acc (String.length (List.nth cells i)))
          (String.length header) rows)
      t.columns
  in
  let pad align width s =
    let fill = String.make (max 0 (width - String.length s)) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  in
  let render_cells cells =
    let padded =
      List.map2
        (fun (s, (_, align)) width -> pad align width s)
        (List.combine cells t.columns)
        widths
    in
    String.concat " | " padded
  in
  let rule =
    String.concat "-+-" (List.map (fun w -> String.make w '-') widths)
  in
  let body =
    List.map
      (function Cells cells -> render_cells cells | Separator -> rule)
      rows
  in
  String.concat "\n" ((render_cells headers :: rule :: body) @ [])

let print t =
  print_string (render t);
  print_newline ()

let fmt_float ?(decimals = 2) v = Printf.sprintf "%.*f" decimals v

let fmt_ratio a b =
  if b = 0.0 then "-"
  else Printf.sprintf "%.0f/%.0f (%.1f%%)" a b (100.0 *. a /. b)
