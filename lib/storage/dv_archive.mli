(** Archive of dependency vectors, one per checkpoint ever taken.

    Garbage collection eliminates checkpoint *states* (which are large);
    the dependency vectors stored with them are [n] machine words each and
    can be kept forever at negligible cost.  Keeping them preserves the
    ability to answer causality queries about collected checkpoints —
    which is what the decentralized min/max consistent-global-checkpoint
    computations ({!Rdt_recovery.Tracking}) need to work alongside an
    aggressive collector.

    A rollback rewinds the archive too ({!truncate_above}): the undone
    checkpoints never existed as far as future queries are concerned. *)

type t

val create : me:int -> t
val me : t -> int

val restore : me:int -> entries:(int * int array) list -> t
(** Rebuild an archive from the [(index, dv)] pairs that survived a crash
    (ascending indices, as the durable store recovers them — the vectors
    of already-eliminated checkpoints are lost).  The archive's size
    resumes at one past the last surviving index, so subsequent
    {!record}s continue correctly; {!find} answers [None] inside the
    gaps.
    @raise Invalid_argument if indices are not ascending. *)

val record : t -> index:int -> dv:int array -> unit
(** Archive the vector stored with checkpoint [s^index] (copies [dv]).
    @raise Invalid_argument unless [index] is exactly one past the last
    recorded index (checkpoints are taken in order). *)

val record_shared : t -> index:int -> dv:int array -> unit
(** Like {!record} but takes shared ownership of [dv] without copying:
    the caller guarantees the array is immutable from now on — e.g. the
    snapshot a {!Rdt_storage.Stable_store.store_from} entry already owns.
    This keeps the checkpoint hot path at exactly one copy (DESIGN.md
    §10). *)

val truncate_above : t -> index:int -> unit
(** Forget every archived vector with index strictly greater than
    [index]. *)

val last_index : t -> int
(** Greatest archived index; [-1] when empty. *)

val find : t -> index:int -> int array option
(** The archived vector (not a copy — do not mutate). *)

val count : t -> int
