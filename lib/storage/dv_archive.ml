module Vec = struct
  (* minimal growable array, local to avoid a dependency cycle *)
  type 'a t = { mutable data : 'a array; mutable size : int }

  let create () = { data = [||]; size = 0 }

  let push t v =
    if t.size = Array.length t.data then begin
      let data = Array.make (max 8 (2 * t.size)) v in
      Array.blit t.data 0 data 0 t.size;
      t.data <- data
    end;
    t.data.(t.size) <- v;
    t.size <- t.size + 1
end

type t = { me : int; vectors : int array Vec.t }

(* Gap sentinel for [restore]: a crash loses the vectors of eliminated
   checkpoints (only retained entries are on disk), and a real DV always
   has [n >= 2] slots, so the empty array can mark the holes. *)
let absent : int array = [||]

let create ~me = { me; vectors = Vec.create () }
let me t = t.me

let restore ~me ~entries =
  let t = create ~me in
  List.iter
    (fun (index, dv) ->
      if index < t.vectors.Vec.size then
        invalid_arg "Dv_archive.restore: entries must have ascending indices";
      while t.vectors.Vec.size < index do
        Vec.push t.vectors absent
      done;
      Vec.push t.vectors (Array.copy dv))
    entries;
  t

let record_shared t ~index ~dv =
  if index <> t.vectors.Vec.size then
    invalid_arg
      (Printf.sprintf "Dv_archive.record: p%d expected index %d, got %d" t.me
         t.vectors.Vec.size index);
  Vec.push t.vectors dv

let record t ~index ~dv = record_shared t ~index ~dv:(Array.copy dv)

let truncate_above t ~index =
  if index + 1 < t.vectors.Vec.size then t.vectors.Vec.size <- index + 1

let last_index t = t.vectors.Vec.size - 1

let find t ~index =
  if index < 0 || index >= t.vectors.Vec.size then None
  else
    let dv = t.vectors.Vec.data.(index) in
    if dv == absent then None else Some dv

let count t = t.vectors.Vec.size
