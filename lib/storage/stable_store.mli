(** Per-process stable-storage model.

    Holds the stable checkpoints a process currently retains, together with
    the dependency vector stored alongside each one (the paper stores DV
    with every checkpoint for recovery purposes).  Storage survives
    crashes; garbage collectors call {!eliminate} and rollbacks call
    {!truncate_above}.  The module keeps byte and count accounting so the
    space-overhead experiments can report peak and current usage. *)

type entry = {
  index : int;  (** checkpoint index gamma of [s^gamma] *)
  dv : int array;  (** dependency vector stored with the checkpoint *)
  taken_at : float;  (** virtual time at which it was stored *)
  size_bytes : int;  (** synthetic application-state size *)
  payload : int;
      (** the checkpointed application state itself (synthetic: a
          deterministic digest of the process's history) — what a rollback
          restores *)
}

type stats = {
  stored_total : int;  (** checkpoints ever written *)
  eliminated_total : int;  (** checkpoints ever collected *)
  peak_count : int;  (** maximum simultaneously retained *)
  peak_bytes : int;
}

type backend = {
  b_store : entry -> unit;  (** a checkpoint was written *)
  b_eliminate : entry -> unit;  (** a checkpoint was collected *)
  b_truncate_above : index:int -> unit;
      (** a rollback removed everything above [index] *)
}
(** Durability mirror.  The in-memory map stays the source of truth for
    queries ([find]/[mem]/[retained] never touch the disk); every
    *mutation* is forwarded to the backend after the map is updated, so a
    log-structured store ({!Rdt_store.Log_store}) can persist the same
    history the simulator sees.  A backend call that raises (injected
    storage crash) leaves the in-memory map updated — the volatile state
    is ahead of the durable one, exactly the situation crash recovery must
    cope with. *)

type t

val create : me:int -> t
(** No backend: the pure in-memory model. *)

val set_backend : t -> backend -> unit
(** Attach the durability mirror.  Must happen before the first mutation
    (i.e. before the middleware stores [s^0]); mutations already applied
    are not replayed into the backend. *)

val restore : me:int -> entries:entry list -> t
(** Rebuild a store from checkpoints that survived a crash ([entries] in
    ascending index order, as {!Rdt_store.Log_store} recovers them).  A
    backend attached afterwards sees only *new* mutations — the restored
    entries are already durable.  The statistics restart from the restored
    population ([stored_total] = number of entries, nothing
    eliminated). *)

val me : t -> int

val store :
  t ->
  index:int ->
  dv:int array ->
  now:float ->
  size_bytes:int ->
  ?payload:int ->
  unit ->
  unit
(** Writes [s^index].
    @raise Invalid_argument if the index is already present or is not
    greater than every retained index (checkpoints are written in order;
    after a rollback the undone ones are truncated first). *)

val store_from :
  t ->
  index:int ->
  dv:int array ->
  now:float ->
  size_bytes:int ->
  ?payload:int ->
  unit ->
  entry
(** Borrow-style {!store}: [dv] is only read during the call (a borrowed
    {!Rdt_causality.Dependency_vector.view} is fine) and is copied
    internally exactly once — the store-boundary copy of DESIGN.md §10.
    Returns the stored entry so callers that need the same snapshot
    elsewhere (e.g. the DV archive) can share [entry.dv] instead of
    copying again; the entry's vector is immutable from here on. *)

val eliminate : t -> index:int -> unit
(** Collects one checkpoint.  @raise Invalid_argument if not retained. *)

val truncate_above : t -> index:int -> int
(** Eliminates every retained checkpoint with index strictly greater than
    [index] (a rollback to [s^index]); returns how many were removed. *)

val mem : t -> index:int -> bool
val find : t -> index:int -> entry option

val last_index : t -> int
(** Greatest retained index; [-1] when empty. *)

val retained : t -> entry list
(** Retained checkpoints, in increasing index order. *)

val retained_indices : t -> int list
val count : t -> int
val bytes : t -> int
val stats : t -> stats

val pp : Format.formatter -> t -> unit
