type entry = {
  index : int;
  dv : int array;
  taken_at : float;
  size_bytes : int;
  payload : int;
}

type stats = {
  stored_total : int;
  eliminated_total : int;
  peak_count : int;
  peak_bytes : int;
}

type backend = {
  b_store : entry -> unit;
  b_eliminate : entry -> unit;
  b_truncate_above : index:int -> unit;
}

module Int_map = Map.Make (Int)

type t = {
  me : int;
  mutable backend : backend option;
  mutable entries : entry Int_map.t;
  mutable bytes : int;
  mutable stored_total : int;
  mutable eliminated_total : int;
  mutable peak_count : int;
  mutable peak_bytes : int;
}

let create ~me =
  {
    me;
    backend = None;
    entries = Int_map.empty;
    bytes = 0;
    stored_total = 0;
    eliminated_total = 0;
    peak_count = 0;
    peak_bytes = 0;
  }

let set_backend t backend = t.backend <- Some backend

let restore ~me ~entries =
  let t = create ~me in
  List.iter
    (fun entry ->
      if entry.index <= (match Int_map.max_binding_opt t.entries with
                         | None -> -1
                         | Some (i, _) -> i)
      then invalid_arg "Stable_store.restore: entries not ascending";
      t.entries <- Int_map.add entry.index entry t.entries;
      t.bytes <- t.bytes + entry.size_bytes)
    entries;
  t.stored_total <- Int_map.cardinal t.entries;
  t.peak_count <- Int_map.cardinal t.entries;
  t.peak_bytes <- t.bytes;
  t

let me t = t.me

let last_index t =
  match Int_map.max_binding_opt t.entries with
  | None -> -1
  | Some (index, _) -> index

let store_from t ~index ~dv ~now ~size_bytes ?(payload = 0) () =
  if index <= last_index t then
    invalid_arg
      (Printf.sprintf
         "Stable_store.store: p%d writing s^%d but already holds s^%d" t.me
         index (last_index t));
  (* the single store-boundary copy: the entry owns its snapshot of the
     borrowed vector and never mutates it afterwards *)
  let entry =
    { index; dv = Array.copy dv; taken_at = now; size_bytes; payload }
  in
  t.entries <- Int_map.add index entry t.entries;
  t.bytes <- t.bytes + size_bytes;
  t.stored_total <- t.stored_total + 1;
  t.peak_count <- max t.peak_count (Int_map.cardinal t.entries);
  t.peak_bytes <- max t.peak_bytes t.bytes;
  (match t.backend with Some b -> b.b_store entry | None -> ());
  entry

let store t ~index ~dv ~now ~size_bytes ?payload () =
  ignore (store_from t ~index ~dv ~now ~size_bytes ?payload ())

let eliminate t ~index =
  match Int_map.find_opt index t.entries with
  | None ->
    invalid_arg
      (Printf.sprintf "Stable_store.eliminate: p%d does not hold s^%d" t.me
         index)
  | Some entry ->
    t.entries <- Int_map.remove index t.entries;
    t.bytes <- t.bytes - entry.size_bytes;
    t.eliminated_total <- t.eliminated_total + 1;
    (match t.backend with Some b -> b.b_eliminate entry | None -> ())

let truncate_above t ~index =
  let doomed =
    Int_map.fold
      (fun idx entry acc -> if idx > index then (idx, entry) :: acc else acc)
      t.entries []
  in
  List.iter
    (fun (idx, entry) ->
      t.entries <- Int_map.remove idx t.entries;
      t.bytes <- t.bytes - entry.size_bytes;
      t.eliminated_total <- t.eliminated_total + 1)
    doomed;
  (* one truncation record, not one tombstone per checkpoint: a rollback
     is a single durable event *)
  if not (List.is_empty doomed) then
    (match t.backend with Some b -> b.b_truncate_above ~index | None -> ());
  List.length doomed

let mem t ~index = Int_map.mem index t.entries
let find t ~index = Int_map.find_opt index t.entries
let retained t = List.map snd (Int_map.bindings t.entries)
let retained_indices t = List.map fst (Int_map.bindings t.entries)
let count t = Int_map.cardinal t.entries
let bytes t = t.bytes

let stats t =
  {
    stored_total = t.stored_total;
    eliminated_total = t.eliminated_total;
    peak_count = t.peak_count;
    peak_bytes = t.peak_bytes;
  }

let pp ppf t =
  Format.fprintf ppf "p%d:{%a}" t.me
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    (retained_indices t)
