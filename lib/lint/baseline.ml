(* The baseline is a committed text file of finding fingerprints
   (Finding.fingerprints), one per line, '#' comments allowed.  Findings
   whose fingerprint appears in the baseline are reported as baselined and
   do not fail the build, which is what lets the pass land strict only for
   new code.  The policy for this repo is an empty baseline: fix or
   [@lint.allow] everything instead. *)

type t = { entries : string list }

let empty = { entries = [] }

let load path =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in path in
    let entries = ref [] in
    (try
       while true do
         let line = String.trim (input_line ic) in
         if String.length line > 0 && line.[0] <> '#' then
           entries := line :: !entries
       done
     with End_of_file -> ());
    close_in ic;
    Some { entries = List.rev !entries }
  end

let save path findings =
  let oc = open_out path in
  output_string oc
    "# rdt_lint baseline: one finding fingerprint per line.\n\
     # Regenerate with `rdtgc_cli lint --update-baseline`; the project\n\
     # policy is to keep this file empty (fix or [@lint.allow] instead).\n";
  List.iter
    (fun fp ->
      output_string oc fp;
      output_char oc '\n')
    (Finding.fingerprints findings);
  close_out oc

(* Split findings into (new, baselined, stale-entries).  Each baseline
   entry absorbs at most one finding. *)
let apply t findings =
  let remaining = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let n =
        match Hashtbl.find_opt remaining e with None -> 0 | Some n -> n
      in
      Hashtbl.replace remaining e (n + 1))
    t.entries;
  let fresh = ref [] and baselined = ref [] in
  List.iter2
    (fun f fp ->
      match Hashtbl.find_opt remaining fp with
      | Some n when n > 0 ->
        Hashtbl.replace remaining fp (n - 1);
        baselined := f :: !baselined
      | _ -> fresh := f :: !fresh)
    (Finding.sort findings)
    (Finding.fingerprints findings);
  let stale =
    Hashtbl.fold
      (fun e n acc -> if n > 0 then e :: acc else acc)
      remaining []
    |> List.sort String.compare
  in
  (List.rev !fresh, List.rev !baselined, stale)
