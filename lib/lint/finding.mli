(** A single diagnostic produced by the lint engine. *)

type severity = Error | Warning

type t = {
  rule : string;
  severity : severity;
  file : string;
  line : int;
  col : int;
  context : string;
  message : string;
}

val severity_label : severity -> string
val compare_by_site : t -> t -> int
val sort : t list -> t list

val fingerprints : t list -> string list
(** Line-number-independent identities used by the baseline file, in the
    same order as [sort]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val to_json : t -> string
val json_escape : string -> string
