(* Scopes are matched against the compilation unit's source path as the
   compiler recorded it (relative to the build root, forward slashes), so
   the same config works from a source checkout, from _build/default and
   from dune's sandboxes. *)

type t = {
  lib_prefixes : string list;
      (* determinism, unsafe and polycmp rules apply here *)
  parallel_prefixes : string list;
      (* Domain.spawn and Atomic are legal here *)
  hashtbl_det_prefixes : string list;
      (* order-dependent Hashtbl iteration is banned here *)
  realtime_prefixes : string list;
      (* wall-clock reads are legal here: code that runs on real time
         (the live TCP runtime), never under the simulator's clock *)
  unsafe_allowlist : string list;
      (* files where annotated unsafe indexing is legal *)
}

let default =
  {
    lib_prefixes = [ "lib/" ];
    parallel_prefixes = [ "lib/parallel/" ];
    hashtbl_det_prefixes =
      [
        (* simulation + verification proper *)
        "lib/sim/"; "lib/verify/"; "lib/scenarios/";
        (* shard-merge paths: trace stamping, the runner's window barrier
           bookkeeping and the sharded counters must merge in canonical
           order, never hash order *)
        "lib/ccp/"; "lib/core/"; "lib/metrics/";
      ];
    realtime_prefixes =
      [
        (* the live-process runtime: OS processes, sockets and timers run
           on the wall clock by design.  lib/transport is deliberately
           NOT here — its simulator backend must stay deterministic *)
        "lib/live/";
      ];
    unsafe_allowlist =
      [
        "lib/causality/dependency_vector.ml";
        "lib/sim/event_queue.ml";
        "lib/store/crc32.ml";
        "lib/gc/merged_fdas.ml";
      ];
  }

let normalize_path p =
  String.map (fun c -> if c = '\\' then '/' else c) p

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let matches prefixes path =
  let path = normalize_path path in
  List.exists (fun prefix -> has_prefix ~prefix path) prefixes

let in_lib t path = matches t.lib_prefixes path
let in_parallel t path = matches t.parallel_prefixes path
let in_hashtbl_det t path = matches t.hashtbl_det_prefixes path
let in_realtime t path = matches t.realtime_prefixes path

let unsafe_allowed t path =
  let path = normalize_path path in
  List.exists (fun f -> String.equal f path) t.unsafe_allowlist
