(** Per-site suppression: [@lint.allow "rule-id" "justification"]. *)

type allow = {
  rule : string;
  justification : string option;
  loc : Location.t;
  mutable used : bool;
}

type parsed = Allow of allow | Malformed of string * Location.t

val family_of : string -> string

val allow_matches : allow_rule:string -> justified:bool -> rule:string -> bool
(** Pure matching core: an allow silences [rule] iff it is justified and
    names the exact rule id or the rule's family. *)

val silences : allows:(string * bool) list -> rule:string -> bool
(** [silences ~allows ~rule] over (rule, justified) pairs; the qcheck
    property in test_lint.ml checks this against a model. *)

val strings_of_payload : Parsetree.payload -> string list option
(** String literals of an attribute payload ([Some []] for an empty
    payload, [None] when the payload is not string literals). *)

val parse_attribute : Parsetree.attribute -> parsed option
val parse_attributes : Parsetree.attributes -> parsed list

(** [@lint.single_writer "why"]: scoped assertion that a flagged write is
    reached by one domain only; silences the mt/* write rules
    (escape-mutable, shared-write, stripe-index) and nothing else. *)

type single_writer = {
  sw_justification : string option;
  sw_loc : Location.t;
  mutable sw_used : bool;
}

type sw_parsed = Sw of single_writer | Sw_malformed of string * Location.t

val single_writer_silences : string -> bool
(** Whether [@lint.single_writer] applies to the given rule id. *)

val parse_single_writer : Parsetree.attribute -> sw_parsed option
val parse_single_writers : Parsetree.attributes -> sw_parsed list
