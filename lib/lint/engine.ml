(* The typed-AST pass.  One [scan_cmt] per compilation unit: load the
   .cmt, walk the typedtree with a Tast_iterator, apply the four rule
   families (DESIGN.md §12) under the path scopes of [Lint_config], and
   honour [@lint.allow]/[@@@lint.zero_alloc_hot]/[@@lint.bounds_checked]
   attributes as they come into scope. *)

open Typedtree

type scan = {
  findings : Finding.t list;
  suppressed : (Finding.t * string) list;
      (* finding silenced by a justified allow, with its justification *)
}

let empty_scan = { findings = []; suppressed = [] }

let merge a b =
  {
    findings = a.findings @ b.findings;
    suppressed = a.suppressed @ b.suppressed;
  }

(* ------------------------------------------------------------------ *)
(* Identifier tables                                                   *)
(* ------------------------------------------------------------------ *)

let norm_path p =
  let n = Path.name p in
  let prefix = "Stdlib." in
  if
    String.length n > String.length prefix
    && String.equal (String.sub n 0 (String.length prefix)) prefix
  then String.sub n (String.length prefix) (String.length n - String.length prefix)
  else n

let mem_name name set = List.exists (String.equal name) set

let self_init_names = [ "Random.self_init"; "Random.State.make_self_init" ]
let wall_clock_names = [ "Unix.gettimeofday"; "Unix.time"; "Sys.time" ]
let domain_spawn_names = [ "Domain.spawn" ]

(* any Atomic.* operation: matched by module prefix rather than an
   explicit list because the whole module is off-limits outside the
   barrier code — shard-confined plain state plus the window barrier is
   the project's synchronization discipline *)
let atomic_name name = String.length name > 7 && String.sub name 0 7 = "Atomic."

let hashtbl_order_names =
  [
    "Hashtbl.iter";
    "Hashtbl.fold";
    "Hashtbl.to_seq";
    "Hashtbl.to_seq_keys";
    "Hashtbl.to_seq_values";
  ]

let unsafe_names =
  [
    "Array.unsafe_get";
    "Array.unsafe_set";
    "Bytes.unsafe_get";
    "Bytes.unsafe_set";
  ]

let alloc_array_names =
  [
    "Array.copy"; "Array.append"; "Array.sub"; "Array.init"; "Array.make";
    "Array.create_float"; "Array.make_matrix"; "Array.of_list";
    "Array.to_list"; "Array.of_seq"; "Array.to_seq"; "Array.to_seqi";
    "Array.map"; "Array.mapi"; "Array.map2"; "Array.concat"; "Array.split";
    "Array.combine";
  ]

let alloc_list_names =
  [
    "List.map"; "List.mapi"; "List.map2"; "List.rev"; "List.rev_map";
    "List.append"; "List.rev_append"; "List.concat"; "List.concat_map";
    "List.flatten"; "List.filter"; "List.filteri"; "List.filter_map";
    "List.partition"; "List.init"; "List.sort"; "List.stable_sort";
    "List.fast_sort"; "List.sort_uniq"; "List.merge"; "List.split";
    "List.combine"; "List.of_seq"; "List.cons"; "@";
  ]

let alloc_string_names =
  [
    "^"; "String.make"; "String.init"; "String.sub"; "String.concat";
    "String.cat"; "String.map"; "String.mapi"; "String.split_on_char";
    "String.to_bytes"; "String.of_bytes"; "String.uppercase_ascii";
    "String.lowercase_ascii"; "String.capitalize_ascii"; "Bytes.create";
    "Bytes.make"; "Bytes.init"; "Bytes.sub"; "Bytes.copy"; "Bytes.extend";
    "Bytes.cat"; "Bytes.concat"; "Bytes.of_string"; "Bytes.to_string";
    "Printf.sprintf"; "Format.sprintf"; "Format.asprintf";
  ]

let alloc_ref_names = [ "ref" ]
let polycmp_equal_names = [ "="; "<>" ]
let polycmp_order_names = [ "compare"; "min"; "max"; "<"; ">"; "<="; ">=" ]
let polycmp_hash_names = [ "Hashtbl.hash"; "Hashtbl.seeded_hash" ]

(* ------------------------------------------------------------------ *)
(* Type scrutiny for the polycmp family                                *)
(* ------------------------------------------------------------------ *)

let scalar_paths =
  [
    Predef.path_int; Predef.path_char; Predef.path_bool; Predef.path_unit;
    Predef.path_float; Predef.path_string; Predef.path_bytes;
    Predef.path_int32; Predef.path_int64; Predef.path_nativeint;
  ]

let env_of exp =
  match Envaux.env_of_only_summary exp.exp_env with
  | env -> env
  | exception _ -> Env.empty

(* A type is "scalar" when polymorphic compare on it is both correct and
   cheap: the predefined immediates plus float/string/bytes and boxed
   integers.  Type variables are skipped: a genuinely polymorphic helper
   is not an instantiation site. *)
let rec head_is_scalar env ty ~fuel =
  match Types.get_desc ty with
  | Tvar _ | Tunivar _ -> true
  | Tpoly (ty, _) -> head_is_scalar env ty ~fuel
  | Tconstr (p, _, _) ->
    List.exists (fun sp -> Path.same p sp) scalar_paths
    || fuel > 0
       && begin
         match Ctype.expand_head env ty with
         | ty' -> begin
           match Types.get_desc ty' with
           | Tconstr (p', _, _) when Path.same p p' -> false
           | _ -> head_is_scalar env ty' ~fuel:(fuel - 1)
         end
         | exception _ -> false
       end
  | _ -> false

let first_arg_type ty =
  match Types.get_desc ty with
  | Tarrow (_, arg, _, _) -> Some arg
  | _ -> None

let rec result_type ty =
  match Types.get_desc ty with
  | Tarrow (_, _, res, _) -> result_type res
  | _ -> ty

let is_function_type ty =
  match Types.get_desc ty with Tarrow _ -> true | _ -> false

let type_to_string ty =
  match Format.asprintf "%a" Printtyp.type_expr ty with
  | s -> s
  | exception _ -> "<type>"

(* ------------------------------------------------------------------ *)
(* Traversal context                                                   *)
(* ------------------------------------------------------------------ *)

type ctx = {
  cfg : Lint_config.t;
  file : string;
  mutable top : string;
  mutable findings : Finding.t list;
  mutable suppressed : (Finding.t * string) list;
  mutable allows : Suppress.allow list;  (* innermost first *)
  mutable all_allows : Suppress.allow list;
  mutable hot_module : bool;
  mutable hot_names : string list;
  mutable hot_depth : int;
  mutable bounds_depth : int;
  globals : (Ident.t, unit) Hashtbl.t;
  rec_ids : (Ident.t, unit) Hashtbl.t;
  mutable peeled : expression list;
}

let loc_pos (loc : Location.t) =
  (loc.loc_start.pos_lnum, loc.loc_start.pos_cnum - loc.loc_start.pos_bol)

let report ctx ~loc ~rule ~severity ~msg =
  let line, col = loc_pos loc in
  let finding =
    {
      Finding.rule;
      severity;
      file = ctx.file;
      line;
      col;
      context = ctx.top;
      message = msg;
    }
  in
  let matching =
    List.find_opt
      (fun (a : Suppress.allow) ->
        Option.is_some a.justification
        && Suppress.allow_matches ~allow_rule:a.rule ~justified:true ~rule)
      ctx.allows
  in
  match matching with
  | Some a ->
    a.used <- true;
    let why = Option.value a.justification ~default:"" in
    ctx.suppressed <- (finding, why) :: ctx.suppressed
  | None -> ctx.findings <- finding :: ctx.findings

let error ctx ~loc ~rule ~msg =
  report ctx ~loc ~rule ~severity:Finding.Error ~msg

(* Parse and activate [@lint.allow] attributes; returns how many allows
   were pushed so the caller can pop them when the scope closes. *)
let push_allows ctx (attrs : Parsetree.attributes) =
  let pushed = ref 0 in
  List.iter
    (fun parsed ->
      match parsed with
      | Suppress.Malformed (msg, loc) ->
        error ctx ~loc ~rule:"lint/bad-allow" ~msg
      | Suppress.Allow a ->
        if Option.is_none a.justification then
          error ctx ~loc:a.loc ~rule:"lint/missing-justification"
            ~msg:
              (Printf.sprintf
                 "[@lint.allow \"%s\"] needs a justification string" a.rule);
        ctx.allows <- a :: ctx.allows;
        ctx.all_allows <- a :: ctx.all_allows;
        incr pushed)
    (Suppress.parse_attributes attrs);
  !pushed

let pop_allows ctx n =
  for _ = 1 to n do
    match ctx.allows with [] -> () | _ :: rest -> ctx.allows <- rest
  done

let has_attr name (attrs : Parsetree.attributes) =
  List.exists
    (fun (a : Parsetree.attribute) -> String.equal a.attr_name.txt name)
    attrs

(* ------------------------------------------------------------------ *)
(* Closure analysis                                                    *)
(* ------------------------------------------------------------------ *)

let is_lambda e = Option.is_some (Lint_compat.lambda_bodies e)

(* Mark a lambda and, through single-case chains, the lambdas that are
   really just its further curried arguments, so only genuinely nested
   closures are flagged. *)
let rec peel_chain ctx e =
  ctx.peeled <- e :: ctx.peeled;
  match Lint_compat.lambda_bodies e with
  | Some (bodies, true) ->
    List.iter (fun b -> if is_lambda b then peel_chain ctx b) bodies
  | Some (_, false) | None -> ()

let lambda_captures ctx e =
  let used = Hashtbl.create 16 in
  let bound = Hashtbl.create 16 in
  let expr_hook sub ex =
    (match ex.exp_desc with
     | Texp_ident (Path.Pident id, _, _) -> Hashtbl.replace used id ()
     | Texp_let (Recursive, vbs, _) ->
       List.iter
         (fun id -> Hashtbl.replace bound id ())
         (let_bound_idents vbs)
     | _ -> ());
    Tast_iterator.default_iterator.expr sub ex
  in
  let pat_hook : 'k. Tast_iterator.iterator -> 'k general_pattern -> unit =
   fun sub p ->
    List.iter (fun id -> Hashtbl.replace bound id ()) (pat_bound_idents p);
    Tast_iterator.default_iterator.pat sub p
  in
  let it =
    { Tast_iterator.default_iterator with expr = expr_hook; pat = pat_hook }
  in
  it.expr it e;
  Hashtbl.fold
    (fun id () acc ->
      if
        Hashtbl.mem bound id
        || Hashtbl.mem ctx.globals id
        || Hashtbl.mem ctx.rec_ids id
      then acc
      else Ident.name id :: acc)
    used []
  |> List.sort_uniq String.compare

(* ------------------------------------------------------------------ *)
(* Per-identifier checks                                               *)
(* ------------------------------------------------------------------ *)

let check_ident ctx e path =
  let name = norm_path path in
  let loc = e.exp_loc in
  let in_lib = Lint_config.in_lib ctx.cfg ctx.file in
  (* determinism *)
  if in_lib then begin
    if mem_name name self_init_names then
      error ctx ~loc ~rule:"det/random-self-init"
        ~msg:(name ^ " seeds from the environment; use Prng with an explicit seed");
    if
      mem_name name wall_clock_names
      && not (Lint_config.in_realtime ctx.cfg ctx.file)
    then
      error ctx ~loc ~rule:"det/wall-clock"
        ~msg:(name ^ " reads the wall clock; simulated time must come from the engine");
    if
      mem_name name domain_spawn_names
      && not (Lint_config.in_parallel ctx.cfg ctx.file)
    then
      error ctx ~loc ~rule:"det/domain-spawn"
        ~msg:(name ^ " outside lib/parallel; use Domain_pool");
    if atomic_name name && not (Lint_config.in_parallel ctx.cfg ctx.file) then
      error ctx ~loc ~rule:"det/atomic"
        ~msg:
          (name
         ^ " outside lib/parallel; shard-confined plain state synchronized \
            at the window barrier is the concurrency discipline");
    if
      mem_name name hashtbl_order_names
      && Lint_config.in_hashtbl_det ctx.cfg ctx.file
    then
      error ctx ~loc ~rule:"det/hashtbl-order"
        ~msg:(name ^ " visits bindings in hash order; iterate a sorted key list instead")
  end;
  (* unsafe-op hygiene *)
  if in_lib && mem_name name unsafe_names then begin
    if ctx.bounds_depth = 0 then
      error ctx ~loc ~rule:"unsafe/array"
        ~msg:(name ^ " outside a [@@lint.bounds_checked] function")
    else if not (Lint_config.unsafe_allowed ctx.cfg ctx.file) then
      error ctx ~loc ~rule:"unsafe/file"
        ~msg:(name ^ " in a file not on the unsafe-op allowlist")
  end;
  (* allocation, only on the hot path *)
  if ctx.hot_depth > 0 then begin
    if mem_name name alloc_array_names then
      error ctx ~loc ~rule:"alloc/array"
        ~msg:(name ^ " allocates a fresh array on the hot path")
    else if mem_name name alloc_list_names then
      error ctx ~loc ~rule:"alloc/list"
        ~msg:(name ^ " allocates list cells on the hot path")
    else if mem_name name alloc_string_names then
      error ctx ~loc ~rule:"alloc/string"
        ~msg:(name ^ " builds a fresh string/bytes on the hot path")
    else if mem_name name alloc_ref_names then
      error ctx ~loc ~rule:"alloc/construct"
        ~msg:"ref allocates a mutable cell on the hot path"
  end;
  (* polymorphic compare *)
  if in_lib then begin
    let poly_rule =
      if mem_name name polycmp_equal_names then Some "polycmp/equal"
      else if mem_name name polycmp_order_names then Some "polycmp/compare"
      else if mem_name name polycmp_hash_names then Some "polycmp/hash"
      else None
    in
    match poly_rule with
    | None -> ()
    | Some rule -> begin
      match first_arg_type e.exp_type with
      | None -> ()
      | Some arg ->
        let env = env_of e in
        if not (head_is_scalar env arg ~fuel:8) then
          error ctx ~loc ~rule
            ~msg:
              (Printf.sprintf "polymorphic %s instantiated at type %s" name
                 (type_to_string arg))
    end
  end

(* ------------------------------------------------------------------ *)
(* Expression / binding traversal                                      *)
(* ------------------------------------------------------------------ *)

let rec expr_hook ctx it e =
  let pushed = push_allows ctx e.exp_attributes in
  (match e.exp_desc with
   | Texp_let (Recursive, vbs, _) ->
     List.iter
       (fun id -> Hashtbl.replace ctx.rec_ids id ())
       (let_bound_idents vbs)
   | _ -> ());
  if is_lambda e && not (List.memq e ctx.peeled) then begin
    peel_chain ctx e;
    if ctx.hot_depth > 0 then begin
      match lambda_captures ctx e with
      | [] -> ()
      | captured ->
        error ctx ~loc:e.exp_loc ~rule:"alloc/closure"
          ~msg:
            ("closure capturing " ^ String.concat ", " captured
           ^ " allocates on the hot path")
    end
  end;
  (match e.exp_desc with
   | Texp_ident (path, _, _) -> check_ident ctx e path
   | _ when ctx.hot_depth = 0 -> ()
   | Texp_tuple _ ->
     error ctx ~loc:e.exp_loc ~rule:"alloc/tuple"
       ~msg:"tuple construction allocates on the hot path"
   | Texp_record _ ->
     error ctx ~loc:e.exp_loc ~rule:"alloc/record"
       ~msg:"record construction allocates on the hot path"
   | Texp_array _ ->
     error ctx ~loc:e.exp_loc ~rule:"alloc/array"
       ~msg:"array literal allocates on the hot path"
   | Texp_construct (_, cd, args) -> begin
     match args with
     | [] -> ()
     | _ :: _ ->
       error ctx ~loc:e.exp_loc ~rule:"alloc/construct"
         ~msg:(cd.Types.cstr_name ^ " application allocates on the hot path")
   end
   | Texp_variant (_, Some _) ->
     error ctx ~loc:e.exp_loc ~rule:"alloc/construct"
       ~msg:"polymorphic-variant application allocates on the hot path"
   | Texp_lazy _ ->
     error ctx ~loc:e.exp_loc ~rule:"alloc/construct"
       ~msg:"lazy suspension allocates on the hot path"
   | _ -> ());
  Tast_iterator.default_iterator.expr it e;
  pop_allows ctx pushed

and process_binding ctx it ~top vb =
  let name =
    match let_bound_idents [ vb ] with
    | [ id ] -> Ident.name id
    | _ -> ctx.top
  in
  let saved_top = ctx.top in
  if top then ctx.top <- name;
  let pushed = push_allows ctx vb.vb_attributes in
  let is_hot =
    has_attr "lint.zero_alloc_hot" vb.vb_attributes
    || (top && (ctx.hot_module || mem_name name ctx.hot_names))
  in
  let is_bounds = has_attr "lint.bounds_checked" vb.vb_attributes in
  if is_hot then ctx.hot_depth <- ctx.hot_depth + 1;
  if is_bounds then ctx.bounds_depth <- ctx.bounds_depth + 1;
  if is_hot && is_function_type vb.vb_pat.pat_type then begin
    let res = result_type vb.vb_pat.pat_type in
    let env = env_of vb.vb_expr in
    let is_float =
      match Types.get_desc res with
      | Tconstr (p, _, _) ->
        Path.same p Predef.path_float
        || begin
          match Ctype.expand_head env res with
          | res' -> begin
            match Types.get_desc res' with
            | Tconstr (p', _, _) -> Path.same p' Predef.path_float
            | _ -> false
          end
          | exception _ -> false
        end
      | _ -> false
    in
    if is_float then
      error ctx ~loc:vb.vb_loc ~rule:"alloc/boxed-float"
        ~msg:(name ^ " returns float; the result is boxed on every call")
  end;
  (* the outermost lambda chain of a top-level binding is the function
     itself, not a per-call closure *)
  if top && is_lambda vb.vb_expr then peel_chain ctx vb.vb_expr;
  expr_hook ctx it vb.vb_expr;
  if is_hot then ctx.hot_depth <- ctx.hot_depth - 1;
  if is_bounds then ctx.bounds_depth <- ctx.bounds_depth - 1;
  pop_allows ctx pushed;
  if not top then ctx.top <- saved_top

(* Floating [@@@lint.zero_alloc_hot] / file-scoped [@@@lint.allow]: the
   pre-pass collects them wherever they appear so placement is free. *)
let pre_pass ctx (str : structure) =
  List.iter
    (fun item ->
      match item.str_desc with
      | Tstr_attribute attr ->
        if String.equal attr.Parsetree.attr_name.txt "lint.zero_alloc_hot"
        then begin
          match Suppress.strings_of_payload attr.Parsetree.attr_payload with
          | Some [] -> ctx.hot_module <- true
          | Some names -> ctx.hot_names <- names @ ctx.hot_names
          | None ->
            error ctx ~loc:attr.Parsetree.attr_loc ~rule:"lint/bad-allow"
              ~msg:
                "[@@@lint.zero_alloc_hot] payload must be function-name \
                 string literals"
        end
        else if String.equal attr.Parsetree.attr_name.txt "lint.allow" then
          ignore (push_allows ctx [ attr ])
      | Tstr_value (_, vbs) ->
        List.iter
          (fun id -> Hashtbl.replace ctx.globals id ())
          (let_bound_idents vbs)
      | _ -> ())
    str.str_items

let scan_structure ~cfg ~file (str : structure) =
  let ctx =
    {
      cfg;
      file;
      top = "<toplevel>";
      findings = [];
      suppressed = [];
      allows = [];
      all_allows = [];
      hot_module = false;
      hot_names = [];
      hot_depth = 0;
      bounds_depth = 0;
      globals = Hashtbl.create 64;
      rec_ids = Hashtbl.create 16;
      peeled = [];
    }
  in
  pre_pass ctx str;
  let it = ref Tast_iterator.default_iterator in
  let structure_item sub (item : structure_item) =
    match item.str_desc with
    | Tstr_value (rf, vbs) ->
      (match rf with
       | Recursive ->
         List.iter
           (fun id -> Hashtbl.replace ctx.rec_ids id ())
           (let_bound_idents vbs)
       | Nonrecursive -> ());
      List.iter (fun vb -> process_binding ctx sub ~top:true vb) vbs
    | Tstr_attribute _ -> ()  (* handled by the pre-pass *)
    | _ -> Tast_iterator.default_iterator.structure_item sub item
  in
  it :=
    {
      Tast_iterator.default_iterator with
      structure_item;
      expr = (fun sub e -> expr_hook ctx sub e);
      value_binding = (fun sub vb -> process_binding ctx sub ~top:false vb);
    };
  !it.structure !it str;
  (* justified allows that silenced nothing are themselves suspicious *)
  List.iter
    (fun (a : Suppress.allow) ->
      if Option.is_some a.justification && not a.used then begin
        let line, col = loc_pos a.loc in
        ctx.findings <-
          {
            Finding.rule = "lint/unused-allow";
            severity = Finding.Warning;
            file = ctx.file;
            line;
            col;
            context = "<attribute>";
            message =
              Printf.sprintf "[@lint.allow \"%s\"] suppresses nothing" a.rule;
          }
          :: ctx.findings
      end)
    ctx.all_allows;
  {
    findings = Finding.sort ctx.findings;
    suppressed =
      List.sort
        (fun (a, _) (b, _) -> Finding.compare_by_site a b)
        ctx.suppressed;
  }

(* ------------------------------------------------------------------ *)
(* Cmt entry points                                                    *)
(* ------------------------------------------------------------------ *)

let source_of_cmt (cmt : Cmt_format.cmt_infos) ~cmt_path =
  let raw =
    match cmt.cmt_sourcefile with
    | Some f -> f
    | None -> Filename.basename cmt_path
  in
  let raw = Lint_config.normalize_path raw in
  (* strip any build prefix so scope matching sees lib/...; the compiler
     usually records the path relative to the build root already *)
  let marker = "_build/default/" in
  let mlen = String.length marker in
  let rec find i =
    if i + mlen > String.length raw then raw
    else if String.equal (String.sub raw i mlen) marker then
      String.sub raw (i + mlen) (String.length raw - i - mlen)
    else find (i + 1)
  in
  find 0

type cmt_result =
  | Scanned of string * scan  (* source path, results *)
  | Skipped of string  (* warning *)

let scan_cmt ~cfg cmt_path =
  match Cmt_format.read_cmt cmt_path with
  | exception exn ->
    Skipped
      (Printf.sprintf "lint: cannot read %s (%s); skipped" cmt_path
         (Printexc.to_string exn))
  | cmt -> begin
    match cmt.cmt_annots with
    | Implementation str ->
      let file = source_of_cmt cmt ~cmt_path in
      Scanned (file, scan_structure ~cfg ~file str)
    | _ -> Skipped (Printf.sprintf "lint: %s is not an implementation; skipped" cmt_path)
  end
